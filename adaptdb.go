// Package adaptdb is an adaptive storage manager for analytical,
// join-heavy workloads — a from-scratch Go reproduction of
// "AdaptDB: Adaptive Partitioning for Distributed Joins" (Lu, Shanbhag,
// Jindal, Madden; PVLDB 10(5), 2017).
//
// AdaptDB stores each table as blocks on a (simulated) distributed file
// system, organized by partitioning trees. It answers predicate scans by
// reading only matching blocks, executes joins with the shuffle-free
// hyper-join algorithm whenever block overlap permits, and — as queries
// arrive — smoothly repartitions tables onto the join attributes the
// workload actually uses, a few blocks at a time.
//
// Quick start:
//
//	db := adaptdb.Open(adaptdb.Options{})
//	tbl, _ := db.CreateTable("users", adaptdb.NewSchema(
//	    adaptdb.Col("id", adaptdb.KindInt),
//	    adaptdb.Col("age", adaptdb.KindInt),
//	), rows)
//	res, _ := db.Query("users").Where("age", adaptdb.GT, adaptdb.Int(30)).Run()
//
// See the examples directory for joins, adaptation, and the paper's
// workloads, and EXPERIMENTS.md for the reproduced evaluation.
package adaptdb

import (
	"fmt"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/query"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Re-exported core types: rows are slices of Values conforming to a
// Schema.
type (
	// Value is a typed scalar cell.
	Value = value.Value
	// Row is one tuple.
	Row = tuple.Tuple
	// Schema describes a table's columns.
	Schema = schema.Schema
	// Column is one schema column.
	Column = schema.Column
	// Kind is a column type.
	Kind = value.Kind
)

// Column kinds.
const (
	KindInt    = value.Int
	KindFloat  = value.Float
	KindString = value.String
	KindDate   = value.Date
	KindBool   = value.Bool
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = value.NewInt
	// Float builds a float value.
	Float = value.NewFloat
	// String builds a string value.
	String = value.NewString
	// Date builds a date value from days since 1970-01-01.
	Date = value.NewDate
	// DateOf builds a date value from a calendar date.
	DateOf = value.DateOf
	// Bool builds a boolean value.
	Bool = value.NewBool
)

// CmpOp is a predicate comparison operator.
type CmpOp = predicate.Op

// Comparison operators for Where clauses.
const (
	EQ = predicate.EQ
	NE = predicate.NE
	LT = predicate.LT
	LE = predicate.LE
	GT = predicate.GT
	GE = predicate.GE
	IN = predicate.In
)

// NewSchema builds a schema from columns; it panics on duplicates, like
// schema.MustNew, since schemas are almost always statically known.
func NewSchema(cols ...Column) *Schema { return schema.MustNew(cols...) }

// Col is shorthand for a schema column.
func Col(name string, kind Kind) Column { return Column{Name: name, Kind: kind} }

// Mode selects the repartitioning policy.
type Mode = optimizer.Mode

// Repartitioning policies.
const (
	// ModeAdaptive (default): smooth repartitioning plus selection
	// adaptation — the full AdaptDB behaviour.
	ModeAdaptive = optimizer.ModeAdaptive
	// ModeFullRepartition: rebuild a whole table when half the query
	// window wants a new join attribute (the paper's baseline).
	ModeFullRepartition = optimizer.ModeFullRepartition
	// ModeStatic: never repartition.
	ModeStatic = optimizer.ModeStatic
)

// Options configures a DB instance.
type Options struct {
	// Nodes is the simulated cluster size (default 10, as the paper).
	Nodes int
	// Replication is the block replica count (default 2).
	Replication int
	// RowsPerBlock is the block-size analogue (default 1024).
	RowsPerBlock int
	// WindowSize is the query window |W| (default 10).
	WindowSize int
	// BudgetBlocks is the hyper-join memory budget in blocks (default 8).
	BudgetBlocks int
	// Mode is the repartitioning policy (default ModeAdaptive).
	Mode Mode
	// EnableSelectionAdaptation turns on Amoeba-style leaf transformations
	// for selection predicates.
	EnableSelectionAdaptation bool
	// Seed makes all internal randomness reproducible.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 10
	}
	if o.Replication <= 0 {
		o.Replication = 2
	}
	if o.RowsPerBlock <= 0 {
		o.RowsPerBlock = 1024
	}
	if o.WindowSize <= 0 {
		o.WindowSize = 10
	}
	if o.BudgetBlocks <= 0 {
		o.BudgetBlocks = 8
	}
	return o
}

// DB is an AdaptDB instance: a simulated cluster, a set of tables, and
// the adaptive optimizer that repartitions them as queries run.
type DB struct {
	opts   Options
	store  *dfs.Store
	model  cluster.CostModel
	opt    *optimizer.Optimizer
	tables map[string]*core.Table
	total  cluster.Counters
}

// Open creates an empty database over a fresh simulated cluster.
func Open(opts Options) *DB {
	opts = opts.withDefaults()
	model := cluster.Default()
	model.Nodes = opts.Nodes
	return &DB{
		opts:  opts,
		store: dfs.NewStore(opts.Nodes, opts.Replication, opts.Seed),
		model: model,
		opt: optimizer.New(optimizer.Config{
			Mode:         opts.Mode,
			WindowSize:   opts.WindowSize,
			EnableAmoeba: opts.EnableSelectionAdaptation,
			Seed:         opts.Seed,
		}),
		tables: make(map[string]*core.Table),
	}
}

// Table provides table-level introspection.
type Table struct {
	db  *DB
	tbl *core.Table
}

// CreateTable loads rows into a new table using the upfront partitioner
// (no workload knowledge, as in §3.1). Rows must conform to the schema.
func (db *DB) CreateTable(name string, sch *Schema, rows []Row) (*Table, error) {
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("adaptdb: table %q already exists", name)
	}
	for i, r := range rows {
		if err := r.Conforms(sch); err != nil {
			return nil, fmt.Errorf("adaptdb: row %d: %w", i, err)
		}
	}
	tbl, err := core.Load(db.store, name, sch, rows, core.LoadOptions{
		RowsPerBlock: db.opts.RowsPerBlock,
		JoinAttr:     -1,
		Seed:         db.opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	db.tables[name] = tbl
	return &Table{db: db, tbl: tbl}, nil
}

// Table returns a handle to an existing table, or nil.
func (db *DB) Table(name string) *Table {
	tbl, ok := db.tables[name]
	if !ok {
		return nil
	}
	return &Table{db: db, tbl: tbl}
}

// TableStats summarizes a table's physical organization.
type TableStats struct {
	Rows   int
	Trees  int
	Blocks int
	// JoinAttrs lists the join attribute (column name) of each live
	// partitioning tree; selection-only trees report "".
	JoinAttrs []string
}

// Stats returns current physical statistics.
func (t *Table) Stats() TableStats {
	st := TableStats{Rows: t.tbl.TotalRows()}
	for _, i := range t.tbl.LiveTrees() {
		ti := t.tbl.Trees[i]
		st.Trees++
		st.Blocks += len(ti.Metas)
		name := ""
		if ti.Tree.JoinAttr >= 0 {
			name = t.tbl.Schema.Name(ti.Tree.JoinAttr)
		}
		st.JoinAttrs = append(st.JoinAttrs, name)
	}
	return st
}

// Name returns the table name.
func (t *Table) Name() string { return t.tbl.Name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.tbl.Schema }

// QueryBuilder assembles a declarative query — a scan, an n-way join,
// optionally grouped and aggregated. Run lowers it through the
// query.Spec layer: names resolve at bind time, and the planner's
// greedy zone-map ordering picks the join order (results always come
// back in table reference order, so the ordering is invisible).
type QueryBuilder struct {
	db   *DB
	err  error
	base string
	// per-table predicate lists (named form) and join structure
	preds   map[string][]query.Pred
	joins   []joinClause
	groupBy []query.Col
	aggs    []query.Agg
}

type joinClause struct {
	table    string
	leftCol  string // resolved against the accumulated output
	rightCol string
}

// Query starts a query over a base table.
func (db *DB) Query(table string) *QueryBuilder {
	qb := &QueryBuilder{db: db, base: table, preds: map[string][]query.Pred{}}
	if _, ok := db.tables[table]; !ok {
		qb.err = fmt.Errorf("adaptdb: no table %q", table)
	}
	return qb
}

// Where adds a comparison predicate on a column of the most recently
// referenced table (the base table before any Join, the joined table
// after).
func (qb *QueryBuilder) Where(col string, op CmpOp, v Value) *QueryBuilder {
	return qb.wherePred(col, query.Pred{Col: col, Op: op, Val: v})
}

// WhereIn adds a membership predicate.
func (qb *QueryBuilder) WhereIn(col string, vs ...Value) *QueryBuilder {
	return qb.wherePred(col, query.Pred{Col: col, Op: predicate.In, Vals: vs})
}

func (qb *QueryBuilder) wherePred(col string, p query.Pred) *QueryBuilder {
	if qb.err != nil {
		return qb
	}
	tname := qb.base
	if len(qb.joins) > 0 {
		tname = qb.joins[len(qb.joins)-1].table
	}
	if qb.db.tables[tname].Schema.Index(col) < 0 {
		qb.err = fmt.Errorf("adaptdb: table %q has no column %q", tname, col)
		return qb
	}
	qb.preds[tname] = append(qb.preds[tname], p)
	return qb
}

// Join adds an equi-join with another table: leftCol names a column of
// any previously referenced table; rightCol a column of the joined one.
func (qb *QueryBuilder) Join(table, leftCol, rightCol string) *QueryBuilder {
	if qb.err != nil {
		return qb
	}
	if _, ok := qb.db.tables[table]; !ok {
		qb.err = fmt.Errorf("adaptdb: no table %q", table)
		return qb
	}
	qb.joins = append(qb.joins, joinClause{table: table, leftCol: leftCol, rightCol: rightCol})
	return qb
}

// GroupBy groups the result on the named columns (each resolved across
// the referenced tables, base first). With grouping or aggregates, each
// result row is the group columns followed by the aggregate values.
func (qb *QueryBuilder) GroupBy(cols ...string) *QueryBuilder {
	for _, col := range cols {
		if qb.err != nil {
			return qb
		}
		c, err := qb.resolveAnywhere(col)
		if err != nil {
			qb.err = err
			return qb
		}
		qb.groupBy = append(qb.groupBy, c)
	}
	return qb
}

// Count adds a COUNT(*) aggregate.
func (qb *QueryBuilder) Count() *QueryBuilder {
	qb.aggs = append(qb.aggs, query.Count())
	return qb
}

// Sum adds SUM(col).
func (qb *QueryBuilder) Sum(col string) *QueryBuilder { return qb.agg(query.AggSum, col) }

// Min adds MIN(col).
func (qb *QueryBuilder) Min(col string) *QueryBuilder { return qb.agg(query.AggMin, col) }

// Max adds MAX(col).
func (qb *QueryBuilder) Max(col string) *QueryBuilder { return qb.agg(query.AggMax, col) }

// Avg adds AVG(col).
func (qb *QueryBuilder) Avg(col string) *QueryBuilder { return qb.agg(query.AggAvg, col) }

func (qb *QueryBuilder) agg(fn query.AggFunc, col string) *QueryBuilder {
	if qb.err != nil {
		return qb
	}
	c, err := qb.resolveAnywhere(col)
	if err != nil {
		qb.err = err
		return qb
	}
	qb.aggs = append(qb.aggs, query.Agg{Func: fn, Col: c})
	return qb
}

// resolveAnywhere finds which referenced table owns col, scanning the
// base table then the joins in order.
func (qb *QueryBuilder) resolveAnywhere(col string) (query.Col, error) {
	names := []string{qb.base}
	for _, jc := range qb.joins {
		names = append(names, jc.table)
	}
	for _, name := range names {
		if qb.db.tables[name].Schema.Index(col) >= 0 {
			return query.C(name, col), nil
		}
	}
	return query.Col{}, fmt.Errorf("adaptdb: column %q not found in %v", col, names)
}

// Stats describes one executed query.
type Stats struct {
	// SimSeconds is the simulated execution time under the paper's cost
	// model (§4.2).
	SimSeconds float64
	// BlocksScanned counts distinct block reads (scan + hyper-join build).
	BlocksScanned int
	// ProbeBlocks counts hyper-join probe reads, with multiplicity.
	ProbeBlocks int
	// Strategies lists the join strategy per join, in plan order
	// ("hyper", "shuffle", "combination", "semi-shuffle").
	Strategies []string
	// RepartitionedRows is how much data the optimizer migrated on this
	// query (smooth repartitioning overhead).
	RepartitionedRows int
}

// Result is a query outcome.
type Result struct {
	Rows  []Row
	Stats Stats
}

// Run executes the query: the spec binds against the catalog, the
// optimizer adapts partitioning per the query window (touch
// descriptors derived from the join graph — never hand-maintained),
// then the planner greedily orders the join graph and picks join
// strategies per the cost model, and the executor runs them.
func (qb *QueryBuilder) Run() (*Result, error) {
	if qb.err != nil {
		return nil, qb.err
	}
	db := qb.db
	meter := &cluster.Meter{}

	spec, err := qb.buildSpec()
	if err != nil {
		return nil, err
	}
	bound, err := spec.Bind(query.Catalog(db.tables))
	if err != nil {
		return nil, err
	}

	// Optimizer step: record usage and repartition.
	rep, err := db.opt.OnQuery(bound.Uses(), meter)
	if err != nil {
		return nil, err
	}

	runner := planner.NewRunner(exec.New(db.store, meter), db.model)
	runner.BudgetBlocks = db.opts.BudgetBlocks
	rows, prep, err := runner.RunSpec(bound)
	if err != nil {
		return nil, err
	}
	c := meter.Snapshot()
	db.total = mergeCounters(db.total, c)
	st := Stats{
		SimSeconds:        c.SimSeconds(db.model),
		BlocksScanned:     c.BlocksScanned,
		ProbeBlocks:       c.ProbeBlocks,
		RepartitionedRows: rep.MovedRows,
	}
	for _, j := range prep.Joins {
		st.Strategies = append(st.Strategies, j.Strategy)
	}
	return &Result{Rows: rows, Stats: st}, nil
}

// resolveLeft finds which previously referenced table owns leftCol,
// scanning the base table then earlier joins (tables before `until`).
func (qb *QueryBuilder) resolveLeft(col, until string) (string, error) {
	candidates := []string{qb.base}
	for _, jc := range qb.joins {
		if jc.table == until {
			break
		}
		candidates = append(candidates, jc.table)
	}
	for _, name := range candidates {
		if qb.db.tables[name].Schema.Index(col) >= 0 {
			return name, nil
		}
	}
	return "", fmt.Errorf("adaptdb: join column %q not found in %v", col, candidates)
}

// buildSpec renders the builder state as a declarative query.Spec —
// the single source the planner lowers; nothing positional survives
// the public API.
func (qb *QueryBuilder) buildSpec() (query.Spec, error) {
	s := query.Spec{Label: qb.base}
	add := func(name string) {
		s.Tables = append(s.Tables, query.TableRef{Name: name, Preds: qb.preds[name]})
	}
	add(qb.base)
	for _, jc := range qb.joins {
		add(jc.table)
		lTable, err := qb.resolveLeft(jc.leftCol, jc.table)
		if err != nil {
			return query.Spec{}, err
		}
		s.Joins = append(s.Joins, query.On(query.C(lTable, jc.leftCol), query.C(jc.table, jc.rightCol)))
	}
	s.GroupBy = qb.groupBy
	s.Aggs = qb.aggs
	return s, nil
}

func mergeCounters(a, b cluster.Counters) cluster.Counters {
	var m cluster.Meter
	m.Merge(a)
	m.Merge(b)
	return m.Snapshot()
}

// TotalSimSeconds returns cumulative simulated time across all queries.
func (db *DB) TotalSimSeconds() float64 { return db.total.SimSeconds(db.model) }

// TotalCounters returns the cumulative I/O counters.
func (db *DB) TotalCounters() cluster.Counters { return db.total }
