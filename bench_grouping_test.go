package adaptdb

// Ablation micro-benchmarks for the hyper-join grouping algorithms: the
// wall-clock cost of planning itself (the paper's Fig. 17(b) measures
// the same thing for ILP vs approximate), plus solution quality.

import (
	"math/rand"
	"testing"

	"adaptdb/internal/hyperjoin"
	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
)

func groupingInstance(n, m int, seed int64) []hyperjoin.BitVec {
	rng := rand.New(rand.NewSource(seed))
	const keys = 1 << 20
	rSpan, sSpan := keys/n, keys/m
	rr := make([]predicate.Range, n)
	for i := 0; i < n; i++ {
		lo := int64(i*rSpan) - rng.Int63n(int64(rSpan/4+1))
		hi := int64((i+1)*rSpan) + rng.Int63n(int64(rSpan/4+1))
		rr[i] = predicate.Closed(value.NewInt(lo), value.NewInt(hi))
	}
	ss := make([]predicate.Range, m)
	for j := 0; j < m; j++ {
		lo := int64(j*sSpan) - rng.Int63n(int64(sSpan/4+1))
		hi := int64((j+1)*sSpan) + rng.Int63n(int64(sSpan/4+1))
		ss[j] = predicate.Closed(value.NewInt(lo), value.NewInt(hi))
	}
	return hyperjoin.OverlapVectors(rr, ss)
}

func benchGrouping(b *testing.B) {
	V := groupingInstance(128, 32, 1)
	b.Run("first-fit", func(b *testing.B) {
		cost := 0
		for i := 0; i < b.N; i++ {
			cost = hyperjoin.Cost(hyperjoin.FirstFit(V, 16), V)
		}
		b.ReportMetric(float64(cost), "probe-blocks")
	})
	b.Run("bottom-up", func(b *testing.B) {
		cost := 0
		for i := 0; i < b.N; i++ {
			cost = hyperjoin.Cost(hyperjoin.BottomUp(V, 16), V)
		}
		b.ReportMetric(float64(cost), "probe-blocks")
	})
	b.Run("greedy-seed", func(b *testing.B) {
		cost := 0
		for i := 0; i < b.N; i++ {
			cost = hyperjoin.Cost(hyperjoin.GreedyBestSeed(V, 16), V)
		}
		b.ReportMetric(float64(cost), "probe-blocks")
	})
}

// BenchmarkOverlapVectors measures the O(n·m) overlap computation that
// precedes every hyper-join plan.
func BenchmarkOverlapVectors(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n, m := 256, 128
	rr := make([]predicate.Range, n)
	ss := make([]predicate.Range, m)
	for i := range rr {
		lo := rng.Int63n(1 << 20)
		rr[i] = predicate.Closed(value.NewInt(lo), value.NewInt(lo+4096))
	}
	for j := range ss {
		lo := rng.Int63n(1 << 20)
		ss[j] = predicate.Closed(value.NewInt(lo), value.NewInt(lo+8192))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hyperjoin.OverlapVectors(rr, ss)
	}
}

// BenchmarkFacadeJoinQuery measures an end-to-end hyper-join through the
// public API on converged tables.
func BenchmarkFacadeJoinQuery(b *testing.B) {
	db := Open(Options{RowsPerBlock: 256, Seed: 5})
	rng := rand.New(rand.NewSource(5))
	var users, orders []Row
	for i := 0; i < 2000; i++ {
		users = append(users, Row{Int(int64(i)), Int(rng.Int63n(80))})
	}
	for i := 0; i < 8000; i++ {
		orders = append(orders, Row{Int(int64(i)), Int(rng.Int63n(2000))})
	}
	if _, err := db.CreateTable("users", NewSchema(Col("id", KindInt), Col("age", KindInt)), users); err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateTable("orders", NewSchema(Col("oid", KindInt), Col("uid", KindInt)), orders); err != nil {
		b.Fatal(err)
	}
	// Converge first.
	for i := 0; i < 12; i++ {
		if _, err := db.Query("orders").Join("users", "uid", "id").Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query("orders").Join("users", "uid", "id").Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 8000 {
			b.Fatalf("join rows %d", len(res.Rows))
		}
	}
}
