package adaptdb

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§7). Each runs the corresponding experiment from
// internal/experiments and reports the headline series as custom
// metrics, so `go test -bench=. -benchmem` regenerates every figure.
// Run `go run ./cmd/adaptdb-bench` for the full printed tables.

import (
	"testing"

	"adaptdb/internal/experiments"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.SF = 0.001
	cfg.RowsPerBlock = 128
	return cfg
}

// BenchmarkFig01_ShuffleVsCopartitioned regenerates Figure 1.
func BenchmarkFig01_ShuffleVsCopartitioned(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig01(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Series["shuffle"][0], "shuffle-sim-s")
	b.ReportMetric(res.Series["copartitioned"][0], "copart-sim-s")
	b.ReportMetric(res.Series["shuffle"][0]/res.Series["copartitioned"][0], "speedup-x")
}

// BenchmarkFig07_DataLocality regenerates Figure 7.
func BenchmarkFig07_DataLocality(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig07(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	slow := res.Series["slowdown"]
	b.ReportMetric(slow[len(slow)-1], "slowdown-at-27pct-x")
}

// BenchmarkFig08_DatasetSize regenerates Figure 8.
func BenchmarkFig08_DatasetSize(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig08(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	secs := res.Series["seconds"]
	b.ReportMetric(secs[len(secs)-1]/secs[0], "time-ratio-4x-data")
}

// BenchmarkFig12_TPCHQueries regenerates Figure 12.
func BenchmarkFig12_TPCHQueries(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	sum, max := 0.0, 0.0
	for _, s := range res.Series["speedup"] {
		sum += s
		if s > max {
			max = s
		}
	}
	b.ReportMetric(sum/float64(len(res.Series["speedup"])), "avg-hyper-speedup-x")
	b.ReportMetric(max, "max-hyper-speedup-x")
}

// BenchmarkFig13a_SwitchingWorkload regenerates Figure 13(a).
func BenchmarkFig13a_SwitchingWorkload(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	fs, _ := experiments.Summarize(res.Series["FullScan"])
	ad, adPeak := experiments.Summarize(res.Series["AdaptDB"])
	_, rpPeak := experiments.Summarize(res.Series["Repartitioning"])
	b.ReportMetric(fs/ad, "adaptdb-vs-fullscan-x")
	b.ReportMetric(rpPeak/adPeak, "spike-damping-x")
}

// BenchmarkFig13b_ShiftingWorkload regenerates Figure 13(b).
func BenchmarkFig13b_ShiftingWorkload(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	fs, _ := experiments.Summarize(res.Series["FullScan"])
	ad, _ := experiments.Summarize(res.Series["AdaptDB"])
	b.ReportMetric(fs/ad, "adaptdb-vs-fullscan-x")
}

// BenchmarkFig14_MemoryBuffer regenerates Figure 14.
func BenchmarkFig14_MemoryBuffer(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	blocks := res.Series["blocks"]
	b.ReportMetric(blocks[0], "probe-blocks-B1")
	b.ReportMetric(blocks[len(blocks)-1], "probe-blocks-Bmax")
}

// BenchmarkFig15_QueryWindow regenerates Figure 15.
func BenchmarkFig15_QueryWindow(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	t5, p5 := experiments.Summarize(res.Series["w5"])
	t35, p35 := experiments.Summarize(res.Series["w35"])
	b.ReportMetric(t5, "w5-total-sim-s")
	b.ReportMetric(t35, "w35-total-sim-s")
	b.ReportMetric(p5/p35, "w5-vs-w35-peak-x")
}

// BenchmarkFig16_JoinLevels regenerates Figure 16 (both variants).
func BenchmarkFig16_JoinLevels(b *testing.B) {
	cfg := benchConfig()
	var withPred, noPred *experiments.Result
	for i := 0; i < b.N; i++ {
		r1, err := experiments.Fig16(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := experiments.Fig16(cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		withPred, noPred = r1, r2
	}
	min := 1e18
	for _, row := range withPred.Series {
		for _, v := range row {
			if v < min {
				min = v
			}
		}
	}
	b.ReportMetric(withPred.Series["line0"][0], "pred-blocks-at-0-0")
	b.ReportMetric(min, "pred-blocks-at-best")
	b.ReportMetric(noPred.Series["line0"][0], "nopred-blocks-at-0-0")
}

// BenchmarkFig17_ILPvsApprox regenerates Figure 17 at a size where the
// exact search completes in bench time; use cmd/adaptdb-bench for the
// paper-size 128/32 instance.
func BenchmarkFig17_ILPvsApprox(b *testing.B) {
	cfg := benchConfig()
	opt := experiments.Fig17Options{
		NBlocks: 32, MBlocks: 16, MaxSteps: 200_000, Buffers: []int{4, 8, 16, 32},
	}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	var gap, ms float64
	for i := range res.Series["ilp"] {
		gap += res.Series["approx"][i] / res.Series["ilp"][i]
		ms += res.Series["approx_ms"][i]
	}
	n := float64(len(res.Series["ilp"]))
	b.ReportMetric(gap/n, "approx-vs-exact-x")
	b.ReportMetric(ms/n, "approx-ms")
}

// BenchmarkFig18_CMTWorkload regenerates Figure 18.
func BenchmarkFig18_CMTWorkload(b *testing.B) {
	cfg := benchConfig()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig18(cfg, 1500)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	fs, _ := experiments.Summarize(res.Series["FullScan"])
	ad, _ := experiments.Summarize(res.Series["AdaptDB"])
	bg, _ := experiments.Summarize(res.Series["BestGuess"])
	b.ReportMetric(fs/ad, "adaptdb-vs-fullscan-x")
	b.ReportMetric(ad/bg, "adaptdb-vs-handtuned-x")
}

// BenchmarkGroupingAlgorithms is an ablation of the §4.1 grouping
// algorithms themselves (not in the paper's figures, but the design
// choices DESIGN.md calls out): first-fit vs bottom-up vs best-seed
// greedy on a 128x32 instance.
func BenchmarkGroupingAlgorithms(b *testing.B) {
	benchGrouping(b)
}
