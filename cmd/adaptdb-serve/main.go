// adaptdb-serve: the concurrent multi-tenant serving benchmark and
// self-gating acceptance harness. N goroutine clients replay the
// adaptive TPC-H stream (the PR-3 orderkey→partkey shift) through one
// serve.Service sharing a store, a plan cache, and a global admission
// budget; a serial replay of the identical streams is the oracle. The
// run fails (non-zero exit) when any per-(client, query) result
// checksum drifts from the serial replay, or when the plan-cache hit
// rate on the repeated-query phases falls under the gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sync"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	adbnet "adaptdb/internal/net"
	"adaptdb/internal/net/datasets"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/query"
	"adaptdb/internal/serve"
	"adaptdb/internal/session"
	"adaptdb/internal/tpch"
	"adaptdb/internal/tuple"
)

// sessionSchedule mirrors cmd/adaptdb-bench: 24 orderkey-phase queries
// (q5/q3 alternating) then 24 partkey-phase queries (q8/q14) — the
// §7.3 join-attribute shift compressed to bench size.
func sessionSchedule() []tpch.Template {
	var out []tpch.Template
	for i := 0; i < 24; i++ {
		out = append(out, []tpch.Template{tpch.Q5, tpch.Q3}[i%2])
	}
	for i := 0; i < 24; i++ {
		out = append(out, []tpch.Template{tpch.Q8, tpch.Q14}[i%2])
	}
	return out
}

type queryKey struct {
	Client int
	Query  int
}

type queryDigest struct {
	Checksum uint64
	Rows     int
}

type report struct {
	SF           float64 `json:"sf"`
	RowsPerBlock int     `json:"rows_per_block"`
	Nodes        int     `json:"nodes"`
	Clients      int     `json:"clients"`
	QueriesEach  int     `json:"queries_each"`
	MemBudget    int64   `json:"mem_budget"`
	Seed         int64   `json:"seed"`

	SerialWallMs     int64 `json:"serial_wall_ms"`
	ConcurrentWallMs int64 `json:"concurrent_wall_ms"`

	ChecksumMatch bool `json:"checksum_match"`
	Mismatches    int  `json:"mismatches"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	HitRateGate  float64 `json:"hit_rate_gate"`

	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	Shed     int64 `json:"shed"`

	ResultRows int `json:"result_rows"`
}

func main() {
	// The TCP transport re-execs this binary as worker processes: the
	// dataset registry must be populated before MaybeWorker takes over
	// a re-exec'd child.
	datasets.Register()
	adbnet.MaybeWorker()

	var (
		sf        = flag.Float64("sf", 0.01, "TPC-H micro scale factor")
		rpb       = flag.Int("rows-per-block", 256, "rows per block")
		nodes     = flag.Int("nodes", 4, "simulated cluster nodes")
		clients   = flag.Int("clients", 8, "concurrent client streams (tenants)")
		mem       = flag.Int64("mem", 64<<20, "global admission memory budget in bytes (0 = unlimited)")
		seed      = flag.Int64("seed", 42, "random seed (shared by every client: identical streams = the repeated-query phases)")
		gate      = flag.Float64("hit-gate", 0.5, "minimum plan-cache hit rate; 0 disables the gate")
		transport = flag.String("transport", "sim", "execution transport: sim (in-process simulated fabric) or tcp (real worker processes; -nodes workers, serial replay vs in-process oracle)")
		tcpQ      = flag.Int("tcp-queries", 16, "schedule length for -transport tcp")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON on stdout")
		outPath   = flag.String("out", "", "also write the JSON report to this file (e.g. BENCH_PR8.json)")
	)
	flag.Parse()
	var err error
	switch *transport {
	case "sim":
		err = run(*sf, *rpb, *nodes, *clients, *mem, *seed, *gate, *jsonOut, *outPath)
	case "tcp":
		err = runTCP(*sf, *rpb, *nodes, *tcpQ, *seed, *jsonOut)
	default:
		err = fmt.Errorf("unknown -transport %q (want sim or tcp)", *transport)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptdb-serve:", err)
		os.Exit(1)
	}
}

// runTCP is the multi-process smoke: the adaptive shift schedule
// replayed serially through a session dispatching to -nodes real TCP
// worker processes, self-gated on per-query checksum equality with the
// same stream over the in-process simulated fabric.
func runTCP(sf float64, rpb, nodes, queries int, seed int64, jsonOut bool) error {
	sched := sessionSchedule()
	if queries > 0 && queries < len(sched) {
		half := sched[:24]
		sched = append(append([]tpch.Template(nil), half[:(queries+1)/2]...), sched[24:24+queries/2]...)
	}
	model := cluster.Default()
	model.Nodes = nodes
	optCfg := optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 5, Seed: seed}
	params := datasets.TPCHParams{SF: sf, RowsPerBlock: rpb, Nodes: nodes, Seed: seed}

	digest := func(rows []tuple.Tuple) uint64 {
		var sum uint64
		var scratch []byte
		for _, r := range rows {
			scratch = r.AppendBinary(scratch[:0])
			h := fnv.New64a()
			h.Write(scratch)
			sum += h.Sum64()
		}
		return sum
	}
	replay := func(s *session.Session, cat query.Catalog, data *tpch.Dataset) ([]uint64, error) {
		rng := rand.New(rand.NewSource(seed))
		out := make([]uint64, 0, len(sched))
		for qi, tpl := range sched {
			q, err := session.FromSpec(cat, tpch.NewInstance(tpl, data, rng).Spec())
			if err != nil {
				return nil, fmt.Errorf("q%d (%s): %w", qi, tpl, err)
			}
			res, err := s.Execute(q)
			if err != nil {
				return nil, fmt.Errorf("q%d (%s): %w", qi, tpl, err)
			}
			out = append(out, digest(res.Rows))
		}
		return out, nil
	}

	store, data, tables, err := datasets.BuildTPCH(params)
	if err != nil {
		return err
	}
	sim := session.New(store, session.Config{Model: model, Optimizer: optCfg, Distributed: nodes > 1})
	simStart := time.Now()
	want, err := replay(sim, tables.Catalog(), data)
	if err != nil {
		return fmt.Errorf("sim oracle: %w", err)
	}
	simWall := time.Since(simStart)

	cl, err := adbnet.Start(adbnet.Options{
		Workers:   nodes,
		Fragments: nodes,
		Dataset:   datasets.TPCHName,
		Params:    params,
		Exec: adbnet.ExecConfig{
			Model:     model,
			Optimizer: adbnet.OptimizerConfig{Mode: int(optCfg.Mode), WindowSize: optCfg.WindowSize, Seed: optCfg.Seed},
		},
		KeepAlive:    2 * time.Second,
		SetupTimeout: 10 * time.Minute,
	})
	if err != nil {
		return fmt.Errorf("start cluster: %w", err)
	}
	defer cl.Close()
	store2, data2, tables2, err := datasets.BuildTPCH(params)
	if err != nil {
		return err
	}
	s := session.New(store2, session.Config{Model: model, Optimizer: optCfg, Net: cl})
	tcpStart := time.Now()
	got, err := replay(s, tables2.Catalog(), data2)
	if err != nil {
		return fmt.Errorf("tcp replay: %w", err)
	}
	tcpWall := time.Since(tcpStart)

	mismatches := 0
	for qi := range want {
		if got[qi] != want[qi] {
			mismatches++
			fmt.Fprintf(os.Stderr, "checksum drift: q%d: tcp %016x, sim %016x\n", qi, got[qi], want[qi])
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"sf": sf, "nodes": nodes, "queries": len(sched), "seed": seed,
			"sim_wall_ms": simWall.Milliseconds(), "tcp_wall_ms": tcpWall.Milliseconds(),
			"checksum_match": mismatches == 0, "mismatches": mismatches,
		}); err != nil {
			return err
		}
	} else {
		fmt.Printf("adaptdb-serve tcp smoke: SF=%.4g, %d workers, %d queries\n", sf, nodes, len(sched))
		fmt.Printf("  sim %6d ms / tcp %6d ms, checksums match=%v\n",
			simWall.Milliseconds(), tcpWall.Milliseconds(), mismatches == 0)
	}
	if mismatches > 0 {
		return fmt.Errorf("%d checksum mismatches between TCP and simulated execution", mismatches)
	}
	return nil
}

func run(sf float64, rpb, nodes, clients int, mem, seed int64, gate float64, jsonOut bool, outPath string) error {
	schedule := sessionSchedule()
	data := tpch.Generate(sf, seed)
	model := cluster.Default()
	model.Nodes = nodes

	cfg := serve.Config{
		Model:       model,
		Optimizer:   optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 5, Seed: seed},
		MemBudget:   mem,
		Distributed: true,
	}
	build := func() (*serve.Service, *tpch.Tables, error) {
		store := dfs.NewStore(nodes, 2, seed)
		tables, err := tpch.LoadAll(store, data, tpch.LoadConfig{RowsPerBlock: rpb, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return serve.New(store, cfg), tables, nil
	}

	rep := report{
		SF: sf, RowsPerBlock: rpb, Nodes: nodes, Clients: clients,
		QueriesEach: len(schedule), MemBudget: mem, Seed: seed, HitRateGate: gate,
	}

	// Serial oracle: the same per-client streams, one query at a time,
	// round-robin across clients (close to the concurrent arrival
	// order, though correctness is interleaving-independent).
	svc, tbls, err := build()
	if err != nil {
		return err
	}
	cat := tbls.Catalog()
	serial := make(map[queryKey]queryDigest, clients*len(schedule))
	rngs := make([]*rand.Rand, clients)
	for c := range rngs {
		rngs[c] = rand.New(rand.NewSource(seed))
	}
	start := time.Now()
	for qi, tpl := range schedule {
		for c := 0; c < clients; c++ {
			q, err := session.FromSpec(cat, tpch.NewInstance(tpl, data, rngs[c]).Spec())
			if err != nil {
				return fmt.Errorf("serial c%d q%d (%s): %w", c, qi, tpl, err)
			}
			res, err := svc.Stream(context.Background(), tenantID(c), q, nil)
			if err != nil {
				return fmt.Errorf("serial c%d q%d (%s): %w", c, qi, tpl, err)
			}
			serial[queryKey{c, qi}] = queryDigest{res.Checksum, res.RowCount}
		}
	}
	rep.SerialWallMs = time.Since(start).Milliseconds()

	// Concurrent run: fresh identical service, one goroutine per
	// client, same per-client streams.
	svc, tbls, err = build()
	if err != nil {
		return err
	}
	cat = tbls.Catalog()
	var (
		mu         sync.Mutex
		concurrent = make(map[queryKey]queryDigest, clients*len(schedule))
		wg         sync.WaitGroup
		firstErr   error
	)
	start = time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for qi, tpl := range schedule {
				var res *serve.Result
				q, err := session.FromSpec(cat, tpch.NewInstance(tpl, data, rng).Spec())
				if err == nil {
					res, err = svc.Stream(context.Background(), tenantID(c), q, nil)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("concurrent c%d q%d (%s): %w", c, qi, tpl, err)
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				concurrent[queryKey{c, qi}] = queryDigest{res.Checksum, res.RowCount}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	rep.ConcurrentWallMs = time.Since(start).Milliseconds()
	if firstErr != nil {
		return firstErr
	}

	rep.ChecksumMatch = true
	for k, want := range serial {
		got, ok := concurrent[k]
		if !ok || got != want {
			rep.ChecksumMatch = false
			rep.Mismatches++
			if rep.Mismatches <= 5 {
				fmt.Fprintf(os.Stderr, "checksum drift: client %d query %d: serial %016x/%d rows, concurrent %016x/%d rows\n",
					k.Client, k.Query, want.Checksum, want.Rows, got.Checksum, got.Rows)
			}
		}
		rep.ResultRows += want.Rows
	}

	hits, misses := svc.CacheStats()
	rep.CacheHits, rep.CacheMisses = hits, misses
	if hits+misses > 0 {
		rep.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	adm := svc.Admission().Stats()
	rep.Admitted, rep.Queued, rep.Shed = adm.Admitted, adm.Queued, adm.Shed

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("adaptdb-serve replay: SF=%.4g, %d nodes, %d clients × %d queries, mem=%dMB\n",
			sf, nodes, clients, len(schedule), mem>>20)
		fmt.Printf("  serial     %6d ms\n", rep.SerialWallMs)
		fmt.Printf("  concurrent %6d ms  (%.2fx)\n", rep.ConcurrentWallMs,
			float64(rep.SerialWallMs)/float64(maxInt64(rep.ConcurrentWallMs, 1)))
		fmt.Printf("  checksums: match=%v (%d queries, %d rows)\n",
			rep.ChecksumMatch, len(serial), rep.ResultRows)
		fmt.Printf("  plan cache: %d hits / %d misses (%.0f%% hit rate)\n",
			hits, misses, 100*rep.CacheHitRate)
		fmt.Printf("  admission: %d admitted, %d queued, %d shed\n",
			adm.Admitted, adm.Queued, adm.Shed)
	}

	if !rep.ChecksumMatch {
		return fmt.Errorf("%d checksum mismatches between serial and concurrent replay", rep.Mismatches)
	}
	if gate > 0 && clients > 1 && rep.CacheHitRate <= gate {
		return fmt.Errorf("plan-cache hit rate %.2f below gate %.2f", rep.CacheHitRate, gate)
	}
	return nil
}

func tenantID(c int) string { return fmt.Sprintf("c%d", c) }

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
