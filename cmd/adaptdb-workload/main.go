// Command adaptdb-workload replays a changing workload against AdaptDB
// and the §7.3/§7.6 baselines, printing per-query simulated times. It is
// the interactive counterpart to the fig13/fig18 harnesses.
//
// Usage:
//
//	adaptdb-workload -kind switching          # 160-query TPC-H switching workload
//	adaptdb-workload -kind shifting           # 140-query TPC-H shifting workload
//	adaptdb-workload -kind cmt -trips 4000    # the 103-query CMT trace
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptdb/internal/experiments"
)

func main() {
	var (
		kind  = flag.String("kind", "switching", "workload: switching | shifting | cmt")
		sf    = flag.Float64("sf", 0.002, "TPC-H micro scale factor")
		trips = flag.Int("trips", 4000, "CMT trips (kind=cmt)")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.SF = *sf
	cfg.Seed = *seed

	var (
		res *experiments.Result
		err error
	)
	switch *kind {
	case "switching":
		res, err = experiments.Fig13a(cfg)
	case "shifting":
		res, err = experiments.Fig13b(cfg)
	case "cmt":
		res, err = experiments.Fig18(cfg, *trips)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res.Fprint(os.Stdout)

	fmt.Println("totals (sim-seconds):")
	for name, series := range res.Series {
		total, peak := experiments.Summarize(series)
		fmt.Printf("  %-16s total=%-10.1f peak-query=%.1f\n", name, total, peak)
	}
}
