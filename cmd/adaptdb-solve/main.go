// Command adaptdb-solve explores the hyper-join block-grouping problem
// (§4.1) on synthetic overlap instances: it generates the overlap
// vectors of two interval-partitioned relations, runs every grouping
// algorithm in the library, and prints costs and runtimes.
//
// Usage:
//
//	adaptdb-solve -n 64 -m 32 -b 8          # 64 build blocks, 32 probe blocks, budget 8
//	adaptdb-solve -n 16 -m 8 -b 4 -exact -mip
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adaptdb/internal/hyperjoin"
	"adaptdb/internal/ilp"
	"adaptdb/internal/predicate"
	"adaptdb/internal/value"

	"math/rand"
)

func main() {
	var (
		n       = flag.Int("n", 64, "build-side blocks")
		m       = flag.Int("m", 32, "probe-side blocks")
		b       = flag.Int("b", 8, "memory budget (blocks per group)")
		seed    = flag.Int64("seed", 42, "random seed")
		jitter  = flag.Float64("jitter", 0.25, "block boundary jitter (0 = perfectly co-partitioned)")
		doExact = flag.Bool("exact", false, "also run the exact branch-and-bound")
		doMIP   = flag.Bool("mip", false, "also run the §4.1.2 MIP via the LP solver (small instances)")
		steps   = flag.Int64("steps", 5_000_000, "exact-search step cap")
		groups  = flag.Bool("groups", false, "print the chosen groups")
	)
	flag.Parse()

	V := makeOverlaps(*n, *m, *jitter, *seed)
	fmt.Printf("instance: %d build blocks x %d probe blocks, budget %d (c=%d groups)\n",
		*n, *m, *b, (*n+*b-1)/(*b))
	lower := hyperjoin.Union(V, allIdx(*n)).PopCount()
	fmt.Printf("lower bound (every probe block once): %d\n\n", lower)

	report := func(name string, g hyperjoin.Grouping, d time.Duration, extra string) {
		fmt.Printf("%-14s cost=%-5d CHyJ=%.2f  time=%-12s %s\n",
			name, hyperjoin.Cost(g, V), float64(hyperjoin.Cost(g, V))/float64(lower), d, extra)
		if *groups {
			for i, grp := range g {
				fmt.Printf("    p%-3d %v\n", i, grp)
			}
		}
	}

	t0 := time.Now()
	ff := hyperjoin.FirstFit(V, *b)
	report("first-fit", ff, time.Since(t0), "")

	t0 = time.Now()
	bu := hyperjoin.BottomUp(V, *b)
	report("bottom-up", bu, time.Since(t0), "(Fig. 6, production algorithm)")

	t0 = time.Now()
	gr := hyperjoin.GreedyBestSeed(V, *b)
	report("greedy-seed", gr, time.Since(t0), "(Fig. 5 approximation)")

	if *doExact {
		t0 = time.Now()
		ex := hyperjoin.Exact(V, *b, hyperjoin.ExactOptions{MaxSteps: *steps})
		note := fmt.Sprintf("(optimal=%v, %d nodes)", ex.Optimal, ex.Steps)
		report("exact-b&b", ex.Grouping, time.Since(t0), note)
	}
	if *doMIP {
		if *n > 32 {
			fmt.Fprintln(os.Stderr, "mip: instance too large; use -n <= 32")
			os.Exit(2)
		}
		t0 = time.Now()
		res := hyperjoin.SolveMIP(V, *b, ilp.Options{MaxNodes: 200_000})
		note := fmt.Sprintf("(optimal=%v, %d B&B nodes)", res.Optimal, res.Nodes)
		report("mip", res.Grouping, time.Since(t0), note)
	}
}

func makeOverlaps(n, m int, jitter float64, seed int64) []hyperjoin.BitVec {
	rng := rand.New(rand.NewSource(seed))
	const keys = 1 << 20
	rSpan, sSpan := keys/n, keys/m
	j := func(span int) int64 {
		if jitter <= 0 {
			return 0
		}
		return rng.Int63n(int64(float64(span)*jitter) + 1)
	}
	rr := make([]predicate.Range, n)
	for i := 0; i < n; i++ {
		rr[i] = predicate.Closed(value.NewInt(int64(i*rSpan)-j(rSpan)), value.NewInt(int64((i+1)*rSpan)+j(rSpan)))
	}
	sr := make([]predicate.Range, m)
	for i := 0; i < m; i++ {
		sr[i] = predicate.Closed(value.NewInt(int64(i*sSpan)-j(sSpan)), value.NewInt(int64((i+1)*sSpan)+j(sSpan)))
	}
	return hyperjoin.OverlapVectors(rr, sr)
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
