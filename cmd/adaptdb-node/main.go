// adaptdb-node: the multi-process distribution acceptance harness and
// worker-process entry point. One invocation is both sides of the
// cluster: re-exec'd children (spawned with the internal worker env
// var) enter the worker runtime inside MaybeWorker and never return;
// the parent is the coordinator, which replays the adaptive TPC-H
// shift schedule twice per node count — once over the in-process
// simulated fabric (the oracle) and once over real TCP worker
// processes — and self-gates on per-query checksum equality. With
// -kill (the default when there is a worker to spare) it also arms a
// mid-query node kill and requires the query to complete via replica
// failover with the oracle's exact checksum.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"adaptdb/internal/cluster"
	adbnet "adaptdb/internal/net"
	"adaptdb/internal/net/datasets"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/session"
	"adaptdb/internal/tpch"
	"adaptdb/internal/tuple"
)

type killReport struct {
	Armed      bool `json:"armed"`
	QueryIndex int  `json:"query_index"`
	LiveBefore int  `json:"live_before"`
	LiveAfter  int  `json:"live_after"`
	FailedOver bool `json:"failed_over"`
}

type nodeReport struct {
	Nodes         int        `json:"nodes"`
	Workers       int        `json:"workers"`
	SimWallMs     int64      `json:"sim_wall_ms"`
	TCPWallMs     int64      `json:"tcp_wall_ms"`
	ChecksumMatch bool       `json:"checksum_match"`
	Mismatches    int        `json:"mismatches"`
	ResultRows    int        `json:"result_rows"`
	Kill          killReport `json:"kill"`
}

type report struct {
	SF           float64      `json:"sf"`
	RowsPerBlock int          `json:"rows_per_block"`
	Seed         int64        `json:"seed"`
	Queries      int          `json:"queries"`
	InProcess    bool         `json:"in_process"`
	Runs         []nodeReport `json:"runs"`
	AllMatch     bool         `json:"all_match"`
}

func main() {
	// Order matters: the dataset registry must be populated before a
	// re-exec'd worker process enters its runtime.
	datasets.Register()
	adbnet.MaybeWorker()

	var (
		sf        = flag.Float64("sf", 0.1, "TPC-H micro scale factor")
		rpb       = flag.Int("rows-per-block", 256, "rows per block")
		nodeList  = flag.String("nodes", "1,4,8", "comma-separated fragment counts to sweep")
		queries   = flag.Int("queries", 8, "schedule length (half orderkey phase, half partkey phase)")
		seed      = flag.Int64("seed", 42, "deterministic seed shared by every process")
		kill      = flag.Bool("kill", true, "arm a mid-query node kill when a replica remains to fail over to")
		inProcess = flag.Bool("inprocess", false, "run workers as goroutines instead of spawned processes")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON on stdout")
		outPath   = flag.String("out", "", "also write the JSON report to this file (e.g. BENCH_PR10.json)")
	)
	flag.Parse()
	nodes, err := parseNodes(*nodeList)
	if err == nil {
		err = run(*sf, *rpb, nodes, *queries, *seed, *kill, *inProcess, *jsonOut, *outPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptdb-node:", err)
		os.Exit(1)
	}
}

func parseNodes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -nodes entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// schedule is the compressed §7.3 join-attribute shift: orderkey
// queries (q5/q3), then partkey queries (q8/q14).
func schedule(n int) []tpch.Template {
	var out []tpch.Template
	for i := 0; i < (n+1)/2; i++ {
		out = append(out, []tpch.Template{tpch.Q5, tpch.Q3}[i%2])
	}
	for i := 0; i < n/2; i++ {
		out = append(out, []tpch.Template{tpch.Q8, tpch.Q14}[i%2])
	}
	return out
}

// rowsChecksum is the order-independent result digest used across the
// serve and net layers: the sum of per-row 64-bit FNV-1a hashes.
func rowsChecksum(rows []tuple.Tuple) uint64 {
	var sum uint64
	var scratch []byte
	for _, r := range rows {
		scratch = r.AppendBinary(scratch[:0])
		h := fnv.New64a()
		h.Write(scratch)
		sum += h.Sum64()
	}
	return sum
}

func run(sf float64, rpb int, nodeCounts []int, queries int, seed int64, kill, inProcess, jsonOut bool, outPath string) error {
	sched := schedule(queries)
	rep := report{SF: sf, RowsPerBlock: rpb, Seed: seed, Queries: len(sched), InProcess: inProcess, AllMatch: true}

	for _, nodes := range nodeCounts {
		nr, err := runNodes(sf, rpb, nodes, sched, seed, kill, inProcess)
		if err != nil {
			return fmt.Errorf("nodes=%d: %w", nodes, err)
		}
		rep.Runs = append(rep.Runs, nr)
		if !nr.ChecksumMatch || (nr.Kill.Armed && !nr.Kill.FailedOver) {
			rep.AllMatch = false
		}
		if !jsonOut {
			fmt.Printf("nodes=%d workers=%d: sim %dms, tcp %dms, match=%v", nodes, nr.Workers, nr.SimWallMs, nr.TCPWallMs, nr.ChecksumMatch)
			if nr.Kill.Armed {
				fmt.Printf(", kill@q%d failed over %d→%d live", nr.Kill.QueryIndex, nr.Kill.LiveBefore, nr.Kill.LiveAfter)
			}
			fmt.Println()
		}
	}

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	if !rep.AllMatch {
		return fmt.Errorf("acceptance gate failed: TCP execution diverged from the simulated fabric")
	}
	return nil
}

func runNodes(sf float64, rpb, nodes int, sched []tpch.Template, seed int64, kill, inProcess bool) (nodeReport, error) {
	workers := nodes
	nr := nodeReport{Nodes: nodes, Workers: workers, ChecksumMatch: true}
	model := cluster.Default()
	model.Nodes = nodes
	optCfg := optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 5, Seed: seed}
	params := datasets.TPCHParams{SF: sf, RowsPerBlock: rpb, Nodes: nodes, Seed: seed}

	// Simulated-fabric oracle over its own replica.
	store, data, tables, err := datasets.BuildTPCH(params)
	if err != nil {
		return nr, fmt.Errorf("build sim replica: %w", err)
	}
	sim := session.New(store, session.Config{Model: model, Optimizer: optCfg, Distributed: nodes > 1})
	cat := tables.Catalog()
	rng := rand.New(rand.NewSource(seed))
	want := make([]uint64, 0, len(sched))
	start := time.Now()
	for qi, tpl := range sched {
		q, err := session.FromSpec(cat, tpch.NewInstance(tpl, data, rng).Spec())
		if err != nil {
			return nr, fmt.Errorf("sim q%d (%s): %w", qi, tpl, err)
		}
		res, err := sim.Execute(q)
		if err != nil {
			return nr, fmt.Errorf("sim q%d (%s): %w", qi, tpl, err)
		}
		want = append(want, rowsChecksum(res.Rows))
		nr.ResultRows += res.RowCount
	}
	nr.SimWallMs = time.Since(start).Milliseconds()

	// The same stream over real TCP worker processes.
	cl, err := adbnet.Start(adbnet.Options{
		Workers:   workers,
		Fragments: nodes,
		Dataset:   datasets.TPCHName,
		Params:    params,
		Exec: adbnet.ExecConfig{
			Model:     model,
			Optimizer: adbnet.OptimizerConfig{Mode: int(optCfg.Mode), WindowSize: optCfg.WindowSize, Seed: optCfg.Seed},
		},
		InProcess:    inProcess,
		KeepAlive:    2 * time.Second,
		SetupTimeout: 15 * time.Minute, // replica builds serialize on small machines
	})
	if err != nil {
		return nr, fmt.Errorf("start cluster: %w", err)
	}
	defer cl.Close()
	store2, data2, tables2, err := datasets.BuildTPCH(params)
	if err != nil {
		return nr, fmt.Errorf("build coordinator replica: %w", err)
	}
	s := session.New(store2, session.Config{Model: model, Optimizer: optCfg, Net: cl})
	cat2 := tables2.Catalog()

	// The kill lands mid-schedule, on a worker whose fragments have a
	// surviving replica holder to fail over to.
	killAt := -1
	if kill && workers >= 2 {
		killAt = len(sched) / 2
		nr.Kill = killReport{Armed: true, QueryIndex: killAt}
	}

	rng2 := rand.New(rand.NewSource(seed))
	start = time.Now()
	for qi, tpl := range sched {
		if qi == killAt {
			nr.Kill.LiveBefore = cl.LiveWorkers()
			cl.ArmFault(&adbnet.FaultPlan{Proc: 2, Peer: -1, Msg: "data", After: 2, Kind: adbnet.FaultKill})
		}
		q, err := session.FromSpec(cat2, tpch.NewInstance(tpl, data2, rng2).Spec())
		if err != nil {
			return nr, fmt.Errorf("tcp q%d (%s): %w", qi, tpl, err)
		}
		res, err := s.Execute(q)
		if err != nil {
			return nr, fmt.Errorf("tcp q%d (%s): %w", qi, tpl, err)
		}
		if got := rowsChecksum(res.Rows); got != want[qi] {
			nr.ChecksumMatch = false
			nr.Mismatches++
			fmt.Fprintf(os.Stderr, "checksum drift: nodes=%d q%d (%s): tcp %016x, sim %016x\n", nodes, qi, tpl, got, want[qi])
		}
		if qi == killAt {
			nr.Kill.LiveAfter = cl.LiveWorkers()
			nr.Kill.FailedOver = nr.Kill.LiveAfter == nr.Kill.LiveBefore-1
		}
	}
	nr.TCPWallMs = time.Since(start).Milliseconds()
	return nr, nil
}
