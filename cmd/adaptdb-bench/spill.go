package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/experiments"
	"adaptdb/internal/tpch"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// spillRecord is one memory-budget point of the spill sweep. Checksum
// is an order-independent digest of the result multiset: identical
// checksums across budgets mean the spilling runs produced bit-
// identical results to the unbudgeted one, which is the PR-5
// acceptance gate (the bench exits non-zero on drift).
type spillRecord struct {
	Op           string  `json:"op"`
	BudgetBytes  int64   `json:"budget_bytes"`
	BudgetFrac   string  `json:"budget_frac"`
	Rows         int     `json:"rows"`
	NsPerOp      int64   `json:"ns_per_op"`
	SpilledBytes int64   `json:"spilled_bytes"`
	SpillRows    int64   `json:"spill_rows"`
	SkippedRows  int64   `json:"spill_skipped_rows"`
	Checksum     string  `json:"checksum"`
	VsUnbudgeted float64 `json:"vs_unbudgeted"`
}

// spillReport is the machine-readable output of -spill -json — the
// BENCH_PR6.json series. Disjoint holds the Bloom-filter A/B: the same
// starved join probed with keys that match nothing, filters on vs off.
type spillReport struct {
	SF                 float64       `json:"sf"`
	RowsPerBlock       int           `json:"rows_per_block"`
	BatchSize          int           `json:"batch_size"`
	BuildRows          int           `json:"build_rows"`
	BuildMemBytes      int64         `json:"build_mem_bytes"`
	Results            []spillRecord `json:"results"`
	ChecksumsEqual     bool          `json:"checksums_equal"`
	Disjoint           []spillRecord `json:"disjoint_probe"`
	DisjointSpillSaved float64       `json:"disjoint_bloom_spill_saved"`
}

// runSpillBench sweeps the SF-scale lineitem ⋈ orders shuffle join
// (build on orders, probe streamed) across memory budgets {∞, 1/2
// build, 1/8 build}, streaming the output through an order-independent
// checksum so no run materializes anything. Budgeted runs demote build
// partitions to run files (the spilling hybrid hash join); the report
// carries their spilled bytes and wall-time ratio against the
// unbudgeted run.
func runSpillBench(cfg experiments.Config, jsonOut bool) error {
	ds := tpch.Generate(cfg.SF, cfg.Seed)
	store := dfs.NewStore(cfg.Nodes, 3, cfg.Seed)
	line, err := core.Load(store, "lineitem", tpch.LineitemSchema, ds.Lineitem, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed, JoinAttr: tpch.LOrderKey,
	})
	if err != nil {
		return err
	}
	ord, err := core.Load(store, "orders", tpch.OrdersSchema, ds.Orders, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed + 1, JoinAttr: tpch.OOrderKey,
	})
	if err != nil {
		return err
	}
	buildBytes := int64(0)
	for _, r := range ds.Orders {
		buildBytes += int64(r.MemBytes())
	}
	report := spillReport{
		SF: cfg.SF, RowsPerBlock: cfg.RowsPerBlock, BatchSize: exec.DefaultBatchSize,
		BuildRows: len(ds.Orders), BuildMemBytes: buildBytes,
	}
	if !jsonOut {
		fmt.Printf("spilling shuffle join sweep (SF=%.4g, build side %d rows ≈ %.1f MiB)\n\n",
			cfg.SF, len(ds.Orders), float64(buildBytes)/(1<<20))
		fmt.Printf("%-24s %12s %12s %14s %10s %8s\n", "budget", "wall", "rows", "spilled", "checksum", "vs-inf")
	}
	budgets := []struct {
		frac  string
		bytes int64
	}{
		{"inf", 0},
		{"build/2", buildBytes / 2},
		{"build/8", buildBytes / 8},
	}
	var baseNs int64
	var baseSum string
	for _, b := range budgets {
		meter := &cluster.Meter{}
		ex := exec.New(store, meter)
		ex.Mem = exec.NewMemBudget(b.bytes)
		op := ex.JoinOp(
			ex.TableScanOp(ord, nil), tpch.OOrderKey,
			ex.TableScanOp(line, nil), tpch.LOrderKey,
			// The exact build cardinality, as the planner would thread it:
			// sizes the dynamic radix fan-out and the spill Bloom filters.
			exec.JoinOptions{BuildIsRight: true, BuildRowsEst: len(ds.Orders)},
		)
		start := time.Now()
		rows, sum, err := checksumDrain(op)
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("budget %s: %w", b.frac, err)
		}
		c := meter.Snapshot()
		rec := spillRecord{
			Op:           "spill-join/mem=" + b.frac,
			BudgetBytes:  b.bytes,
			BudgetFrac:   b.frac,
			Rows:         rows,
			NsPerOp:      wall.Nanoseconds(),
			SpilledBytes: int64(c.SpillBytes),
			SpillRows:    int64(c.SpillRows),
			SkippedRows:  int64(c.SpillSkippedRows),
			Checksum:     sum,
		}
		if b.frac == "inf" {
			baseNs, baseSum = rec.NsPerOp, rec.Checksum
			rec.VsUnbudgeted = 1
		} else if baseNs > 0 {
			rec.VsUnbudgeted = float64(rec.NsPerOp) / float64(baseNs)
		}
		report.Results = append(report.Results, rec)
		if !jsonOut {
			fmt.Printf("%-24s %12s %12d %14s %10s %7.2fx\n", rec.Op, wall.Round(time.Millisecond),
				rows, fmtBytes(uint64(rec.SpilledBytes)), sum[:8], rec.VsUnbudgeted)
		}
	}
	report.ChecksumsEqual = true
	for _, rec := range report.Results {
		if rec.Checksum != baseSum || rec.Rows != report.Results[0].Rows {
			report.ChecksumsEqual = false
		}
	}

	// Disjoint-probe A/B: every probe orderkey shifted past the build key
	// range, so no probe row can match and every spill write of the probe
	// side is pure waste. With Bloom filters on, those writes are skipped
	// (SpillSkippedRows); with filters off, the classic Grace join pays
	// them. The delta is the filter's I/O saving; both runs must agree on
	// the (empty) result.
	maxKey := int64(0)
	for _, r := range ds.Orders {
		if k := r[tpch.OOrderKey].I; k > maxKey {
			maxKey = k
		}
	}
	disjoint := make([]tuple.Tuple, len(ds.Lineitem))
	for i, r := range ds.Lineitem {
		nr := make(tuple.Tuple, len(r))
		copy(nr, r)
		nr[tpch.LOrderKey] = value.NewInt(maxKey + 1 + nr[tpch.LOrderKey].I)
		disjoint[i] = nr
	}
	if !jsonOut {
		fmt.Printf("\ndisjoint-key probe at mem=build/8 (%d probe rows, zero matches)\n\n", len(disjoint))
	}
	for _, noBloom := range []bool{false, true} {
		meter := &cluster.Meter{}
		ex := exec.New(store, meter)
		ex.Mem = exec.NewMemBudget(buildBytes / 8)
		op := ex.JoinOp(
			ex.TableScanOp(ord, nil), tpch.OOrderKey,
			exec.NewSource(disjoint), tpch.LOrderKey,
			exec.JoinOptions{BuildIsRight: true, BuildRowsEst: len(ds.Orders), DisableBloom: noBloom},
		)
		start := time.Now()
		rows, sum, err := checksumDrain(op)
		wall := time.Since(start)
		variant := "bloom"
		if noBloom {
			variant = "nobloom"
		}
		if err != nil {
			return fmt.Errorf("disjoint %s: %w", variant, err)
		}
		c := meter.Snapshot()
		rec := spillRecord{
			Op:           "disjoint-probe/mem=build/8/" + variant,
			BudgetBytes:  buildBytes / 8,
			BudgetFrac:   "build/8",
			Rows:         rows,
			NsPerOp:      wall.Nanoseconds(),
			SpilledBytes: int64(c.SpillBytes),
			SpillRows:    int64(c.SpillRows),
			SkippedRows:  int64(c.SpillSkippedRows),
			Checksum:     sum,
		}
		report.Disjoint = append(report.Disjoint, rec)
		if !jsonOut {
			fmt.Printf("%-32s %12s %8d rows %14s spilled %10d skipped\n", rec.Op,
				wall.Round(time.Millisecond), rows, fmtBytes(uint64(rec.SpilledBytes)), rec.SkippedRows)
		}
	}
	ab := report.Disjoint
	bloomOK := len(ab) == 2 &&
		ab[0].Rows == ab[1].Rows && ab[0].Checksum == ab[1].Checksum &&
		ab[0].SkippedRows > 0 && ab[1].SkippedRows == 0 &&
		ab[0].SpilledBytes < ab[1].SpilledBytes
	if bloomOK {
		report.DisjointSpillSaved = 1 - float64(ab[0].SpilledBytes)/float64(ab[1].SpilledBytes)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	}
	if !report.ChecksumsEqual {
		return fmt.Errorf("budgeted results drifted from the unbudgeted run — spill path is WRONG")
	}
	if !bloomOK {
		return fmt.Errorf("disjoint-probe A/B failed: bloom run must skip rows, spill fewer bytes, and match the no-bloom result")
	}
	if !jsonOut {
		fmt.Printf("\nall budgets bit-identical to the unbudgeted run; bloom saved %.0f%% of disjoint-probe spill bytes\n",
			100*report.DisjointSpillSaved)
	}
	return nil
}

// checksumDrain pulls an operator to exhaustion, folding every row's
// binary encoding into an order-independent (commutative-sum) FNV
// digest — result identity across nondeterministically ordered parallel
// runs, with nothing materialized.
func checksumDrain(op exec.Operator) (int, string, error) {
	if err := op.Open(); err != nil {
		return 0, "", err
	}
	defer op.Close()
	var sum uint64
	var enc []byte
	n := 0
	for {
		b, err := op.Next()
		if err != nil {
			return n, "", err
		}
		if b == nil {
			return n, fmt.Sprintf("%016x", sum), nil
		}
		for _, r := range b.Rows() {
			enc = r.AppendBinary(enc[:0])
			h := fnv.New64a()
			h.Write(enc)
			sum += h.Sum64() // commutative: batch order cannot matter
		}
		n += b.Len()
		b.Release()
	}
}
