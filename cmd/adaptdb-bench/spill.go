package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/experiments"
	"adaptdb/internal/tpch"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// spillRecord is one memory-budget point of the spill sweep. Checksum
// is an order-independent digest of the result multiset: identical
// checksums across budgets AND across the columnar/row paths mean every
// run produced bit-identical results to the unbudgeted columnar one —
// the self-gate (the bench exits non-zero on drift).
type spillRecord struct {
	Op           string  `json:"op"`
	Path         string  `json:"path"` // "columnar" | "row"
	BudgetBytes  int64   `json:"budget_bytes"`
	BudgetFrac   string  `json:"budget_frac"`
	Rows         int     `json:"rows"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	SpilledBytes int64   `json:"spilled_bytes"`
	SpillRows    int64   `json:"spill_rows"`
	SkippedRows  int64   `json:"spill_skipped_rows"`
	Checksum     string  `json:"checksum"`
	VsUnbudgeted float64 `json:"vs_unbudgeted"`
	// ColumnarSpeedup on a columnar record is row-path wall time over
	// columnar wall time at the same budget — the A/B this PR tracks.
	ColumnarSpeedup float64 `json:"columnar_speedup,omitempty"`
}

// spillReport is one node count's sweep: every budget tier run through
// both the columnar (default) and row execution paths, plus the
// Bloom-filter disjoint-probe A/B from PR 6.
type spillReport struct {
	Nodes              int           `json:"nodes"`
	BuildRows          int           `json:"build_rows"`
	BuildMemBytes      int64         `json:"build_mem_bytes"`
	Results            []spillRecord `json:"results"`
	ChecksumsEqual     bool          `json:"checksums_equal"`
	ColumnarVsRowEqual bool          `json:"columnar_vs_row_equal"`
	Disjoint           []spillRecord `json:"disjoint_probe"`
	DisjointSpillSaved float64       `json:"disjoint_bloom_spill_saved"`
}

// spillSweepReport is the machine-readable output of -spill -json — the
// BENCH_PR7.json series: one spillReport per simulated node count.
type spillSweepReport struct {
	SF           float64       `json:"sf"`
	RowsPerBlock int           `json:"rows_per_block"`
	BatchSize    int           `json:"batch_size"`
	Sweeps       []spillReport `json:"sweeps"`
}

// runSpillBench sweeps the SF-scale lineitem ⋈ orders shuffle join
// (build on orders, probe streamed) across memory budgets {∞, 1/2
// build, 1/8 build} and across the columnar and row execution paths,
// streaming the output through an order-independent checksum so no run
// materializes anything. When the -nodes flag is unset the whole sweep
// repeats at 1, 4 and 8 simulated nodes (the BENCH_PR7.json series);
// an explicit -nodes N runs just that width.
func runSpillBench(cfg experiments.Config, jsonOut, nodesSet bool) error {
	ds := tpch.Generate(cfg.SF, cfg.Seed)
	buildBytes := int64(0)
	for _, r := range ds.Orders {
		buildBytes += int64(r.MemBytes())
	}
	nodeCounts := []int{1, 4, 8}
	if nodesSet {
		nodeCounts = []int{cfg.Nodes}
	}
	sweep := spillSweepReport{
		SF: cfg.SF, RowsPerBlock: cfg.RowsPerBlock, BatchSize: exec.DefaultBatchSize,
	}
	if !jsonOut {
		fmt.Printf("spilling shuffle join sweep (SF=%.4g, build side %d rows ≈ %.1f MiB, columnar vs row)\n",
			cfg.SF, len(ds.Orders), float64(buildBytes)/(1<<20))
	}
	for _, n := range nodeCounts {
		rep, err := runSpillSweepAt(cfg, ds, n, buildBytes, jsonOut)
		if err != nil {
			return err
		}
		sweep.Sweeps = append(sweep.Sweeps, *rep)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sweep); err != nil {
			return err
		}
	}
	for _, rep := range sweep.Sweeps {
		if !rep.ChecksumsEqual {
			return fmt.Errorf("nodes=%d: budgeted results drifted from the unbudgeted run — spill path is WRONG", rep.Nodes)
		}
		if !rep.ColumnarVsRowEqual {
			return fmt.Errorf("nodes=%d: columnar and row paths disagree — vectorized join is WRONG", rep.Nodes)
		}
		if rep.DisjointSpillSaved <= 0 {
			return fmt.Errorf("nodes=%d: disjoint-probe A/B failed: bloom run must skip rows, spill fewer bytes, and match the no-bloom result", rep.Nodes)
		}
	}
	if !jsonOut {
		fmt.Printf("\nall budgets and both paths bit-identical at every node count\n")
	}
	return nil
}

// runSpillSweepAt runs one node count's budget × path sweep.
func runSpillSweepAt(cfg experiments.Config, ds *tpch.Dataset, nodes int, buildBytes int64, jsonOut bool) (*spillReport, error) {
	store := dfs.NewStore(nodes, 3, cfg.Seed)
	line, err := core.Load(store, "lineitem", tpch.LineitemSchema, ds.Lineitem, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed, JoinAttr: tpch.LOrderKey,
	})
	if err != nil {
		return nil, err
	}
	ord, err := core.Load(store, "orders", tpch.OrdersSchema, ds.Orders, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed + 1, JoinAttr: tpch.OOrderKey,
	})
	if err != nil {
		return nil, err
	}
	report := &spillReport{Nodes: nodes, BuildRows: len(ds.Orders), BuildMemBytes: buildBytes}
	if !jsonOut {
		fmt.Printf("\n--- %d node(s) ---\n%-28s %-9s %12s %12s %14s %10s %8s\n",
			nodes, "budget", "path", "wall", "rows", "spilled", "checksum", "vs-inf")
	}
	budgets := []struct {
		frac  string
		bytes int64
	}{
		{"inf", 0},
		{"build/2", buildBytes / 2},
		{"build/8", buildBytes / 8},
	}
	var baseNs int64
	var baseSum string
	for _, b := range budgets {
		var colNs int64
		for _, rowPath := range []bool{false, true} {
			meter := &cluster.Meter{}
			ex := exec.New(store, meter)
			ex.Mem = exec.NewMemBudget(b.bytes)
			ex.DisableColumnar = rowPath
			op := ex.JoinOp(
				ex.TableScanOp(ord, nil), tpch.OOrderKey,
				ex.TableScanOp(line, nil), tpch.LOrderKey,
				// The exact build cardinality, as the planner would thread it:
				// sizes the dynamic radix fan-out, the pre-sized hash tables
				// and the spill Bloom filters.
				exec.JoinOptions{BuildIsRight: true, BuildRowsEst: len(ds.Orders)},
			)
			var mBefore, mAfter runtime.MemStats
			runtime.ReadMemStats(&mBefore)
			start := time.Now()
			rows, sum, err := checksumDrain(op)
			wall := time.Since(start)
			runtime.ReadMemStats(&mAfter)
			if err != nil {
				return nil, fmt.Errorf("nodes=%d budget %s: %w", nodes, b.frac, err)
			}
			c := meter.Snapshot()
			rec := spillRecord{
				Op:           "spill-join/mem=" + b.frac,
				Path:         "columnar",
				BudgetBytes:  b.bytes,
				BudgetFrac:   b.frac,
				Rows:         rows,
				NsPerOp:      wall.Nanoseconds(),
				AllocsPerOp:  mAfter.Mallocs - mBefore.Mallocs,
				SpilledBytes: int64(c.SpillBytes),
				SpillRows:    int64(c.SpillRows),
				SkippedRows:  int64(c.SpillSkippedRows),
				Checksum:     sum,
			}
			if rowPath {
				rec.Op += "/rowpath"
				rec.Path = "row"
			} else {
				colNs = rec.NsPerOp
			}
			if b.frac == "inf" && !rowPath {
				baseNs, baseSum = rec.NsPerOp, rec.Checksum
				rec.VsUnbudgeted = 1
			} else if baseNs > 0 {
				rec.VsUnbudgeted = float64(rec.NsPerOp) / float64(baseNs)
			}
			report.Results = append(report.Results, rec)
			if !jsonOut {
				fmt.Printf("%-28s %-9s %12s %12d %14s %10s %7.2fx\n", rec.Op, rec.Path,
					wall.Round(time.Millisecond), rows, fmtBytes(uint64(rec.SpilledBytes)), sum[:8], rec.VsUnbudgeted)
			}
		}
		// Stamp the A/B ratio on the columnar record of this tier.
		rowRec := &report.Results[len(report.Results)-1]
		colRec := &report.Results[len(report.Results)-2]
		if colNs > 0 {
			colRec.ColumnarSpeedup = float64(rowRec.NsPerOp) / float64(colNs)
		}
	}
	report.ChecksumsEqual = true
	report.ColumnarVsRowEqual = true
	for _, rec := range report.Results {
		if rec.Checksum != baseSum || rec.Rows != report.Results[0].Rows {
			report.ChecksumsEqual = false
			if rec.Path == "row" {
				report.ColumnarVsRowEqual = false
			}
		}
	}

	// Disjoint-probe A/B: every probe orderkey shifted past the build key
	// range, so no probe row can match and every spill write of the probe
	// side is pure waste. With Bloom filters on, those writes are skipped
	// (SpillSkippedRows); with filters off, the classic Grace join pays
	// them. The delta is the filter's I/O saving; both runs must agree on
	// the (empty) result.
	maxKey := int64(0)
	for _, r := range ds.Orders {
		if k := r[tpch.OOrderKey].I; k > maxKey {
			maxKey = k
		}
	}
	disjoint := make([]tuple.Tuple, len(ds.Lineitem))
	for i, r := range ds.Lineitem {
		nr := make(tuple.Tuple, len(r))
		copy(nr, r)
		nr[tpch.LOrderKey] = value.NewInt(maxKey + 1 + nr[tpch.LOrderKey].I)
		disjoint[i] = nr
	}
	for _, noBloom := range []bool{false, true} {
		meter := &cluster.Meter{}
		ex := exec.New(store, meter)
		ex.Mem = exec.NewMemBudget(buildBytes / 8)
		op := ex.JoinOp(
			ex.TableScanOp(ord, nil), tpch.OOrderKey,
			exec.NewSource(disjoint), tpch.LOrderKey,
			exec.JoinOptions{BuildIsRight: true, BuildRowsEst: len(ds.Orders), DisableBloom: noBloom},
		)
		start := time.Now()
		rows, sum, err := checksumDrain(op)
		wall := time.Since(start)
		variant := "bloom"
		if noBloom {
			variant = "nobloom"
		}
		if err != nil {
			return nil, fmt.Errorf("nodes=%d disjoint %s: %w", nodes, variant, err)
		}
		c := meter.Snapshot()
		rec := spillRecord{
			Op:           "disjoint-probe/mem=build/8/" + variant,
			Path:         "columnar",
			BudgetBytes:  buildBytes / 8,
			BudgetFrac:   "build/8",
			Rows:         rows,
			NsPerOp:      wall.Nanoseconds(),
			SpilledBytes: int64(c.SpillBytes),
			SpillRows:    int64(c.SpillRows),
			SkippedRows:  int64(c.SpillSkippedRows),
			Checksum:     sum,
		}
		report.Disjoint = append(report.Disjoint, rec)
		if !jsonOut {
			fmt.Printf("%-38s %12s %8d rows %14s spilled %10d skipped\n", rec.Op,
				wall.Round(time.Millisecond), rows, fmtBytes(uint64(rec.SpilledBytes)), rec.SkippedRows)
		}
	}
	ab := report.Disjoint
	bloomOK := len(ab) == 2 &&
		ab[0].Rows == ab[1].Rows && ab[0].Checksum == ab[1].Checksum &&
		ab[0].SkippedRows > 0 && ab[1].SkippedRows == 0 &&
		ab[0].SpilledBytes < ab[1].SpilledBytes
	if bloomOK {
		report.DisjointSpillSaved = 1 - float64(ab[0].SpilledBytes)/float64(ab[1].SpilledBytes)
	}
	return report, nil
}

// fnv-1a constants for the streaming row digest.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// checksumDrain pulls an operator to exhaustion, folding every row's
// binary encoding into an order-independent (commutative-sum) FNV
// digest — result identity across nondeterministically ordered parallel
// runs, with nothing materialized. Columnar batches are walked through
// the vector encoder (byte-identical to the row encoding, see
// Columns.AppendRowBinary) so draining them never boxes a value.
func checksumDrain(op exec.Operator) (int, string, error) {
	if err := op.Open(); err != nil {
		return 0, "", err
	}
	defer op.Close()
	var sum uint64
	var enc []byte
	n := 0
	fold := func(b []byte) {
		h := uint64(fnvOffset64)
		for _, c := range b {
			h ^= uint64(c)
			h *= fnvPrime64
		}
		sum += h // commutative: batch order cannot matter
	}
	for {
		b, err := op.Next()
		if err != nil {
			return n, "", err
		}
		if b == nil {
			return n, fmt.Sprintf("%016x", sum), nil
		}
		if cb := b.Cols(); cb != nil {
			sel := cb.Sel()
			for k := 0; k < cb.Len(); k++ {
				i := k
				if sel != nil {
					i = int(sel[k])
				}
				enc = cb.AppendRowBinary(enc[:0], i)
				fold(enc)
			}
		} else {
			for _, r := range b.Rows() {
				enc = r.AppendBinary(enc[:0])
				fold(enc)
			}
		}
		n += b.Len()
		b.Release()
	}
}
