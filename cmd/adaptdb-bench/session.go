package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/experiments"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/session"
	"adaptdb/internal/tpch"
)

// sessionOpRecord is one per-operator measurement from a session query:
// how many rows/batches flowed out of the operator and the inclusive
// wall time spent in it. These are the records BENCH_PR3.json tracks.
type sessionOpRecord struct {
	Mode     string `json:"mode"`
	Query    int    `json:"query"`
	Template string `json:"template"`
	Op       string `json:"op"`
	// Node is the cluster node the operator ran on (-1 for
	// coordinator-side operators such as a gathered hyper-join).
	Node    int   `json:"node"`
	Rows    int64 `json:"rows"`
	Batches int64 `json:"batches"`
	WallNs  int64 `json:"wall_ns"`
}

// sessionQueryRecord summarizes one query of the replayed stream.
type sessionQueryRecord struct {
	Mode       string   `json:"mode"`
	Query      int      `json:"query"`
	Template   string   `json:"template"`
	Strategies []string `json:"strategies"`
	Rows       int      `json:"rows"`
	SimSeconds float64  `json:"sim_s"`
	MovedRows  int      `json:"moved_rows"`
}

// sessionModeSummary aggregates one full replay (adaptation on or off).
type sessionModeSummary struct {
	Mode         string  `json:"mode"`
	SimSeconds   float64 `json:"sim_s"`
	WallMs       int64   `json:"wall_ms"`
	MovedRows    int     `json:"moved_rows"`
	TreesCreated int     `json:"trees_created"`
	ResultRows   int     `json:"result_rows"`
}

// sessionReport is the machine-readable output of -session -json.
type sessionReport struct {
	SF           float64              `json:"sf"`
	RowsPerBlock int                  `json:"rows_per_block"`
	Nodes        int                  `json:"nodes"`
	Window       int                  `json:"window"`
	Budget       int                  `json:"budget"`
	Schedule     []string             `json:"schedule"`
	Modes        []sessionModeSummary `json:"modes"`
	SimSpeedup   float64              `json:"sim_speedup"`
	Queries      []sessionQueryRecord `json:"queries"`
	Ops          []sessionOpRecord    `json:"ops"`
}

// sessionSchedule is the join-attribute-shifting stream: an orderkey
// phase (q5 joins lineitem⋈orders⋈customer with no lineitem filter,
// q3 the same shape filtered) followed by a partkey phase (q8's bushy
// (lineitem⋈part)⋈(orders⋈customer) plan, again unfiltered on
// lineitem, and q14) — the §7.3 shift compressed to bench size. The
// join-dominated templates are where co-partitioning pays; selective
// templates (q6/q12/q19) are already well served by zone-map pruning.
func sessionSchedule() []tpch.Template {
	var out []tpch.Template
	for i := 0; i < 24; i++ {
		out = append(out, []tpch.Template{tpch.Q5, tpch.Q3}[i%2])
	}
	for i := 0; i < 24; i++ {
		out = append(out, []tpch.Template{tpch.Q8, tpch.Q14}[i%2])
	}
	return out
}

// runSessionCompare replays the same TPC-H query stream through two
// sessions — adaptation on (smooth repartitioning) and off (static
// random partitioning) — over identical data and query parameters, and
// reports per-query strategies, per-operator stats, and the total
// simulated time of each mode.
func runSessionCompare(cfg experiments.Config, jsonOut bool, mem int64) error {
	// |W|=5 (the small end of the Fig. 15 sweep): the migration fraction
	// ramps by n/|W| per query, so a short window converges in ~5
	// queries — at bench-sized phases (24 queries vs the paper's 100+)
	// that leaves room for co-partitioned steady state to amortize the
	// transition. The speedup grows with phase length.
	const window = 5
	schedule := sessionSchedule()
	data := tpch.Generate(cfg.SF, cfg.Seed)
	// Fold -nodes into the cost model, as the experiment harness does,
	// so SimSeconds are priced on the cluster the blocks actually
	// spread over.
	model := cfg.Model
	if model.Nodes == 0 {
		model = cluster.Default()
	}
	if cfg.Nodes > 0 {
		model.Nodes = cfg.Nodes
	}

	report := sessionReport{
		SF: cfg.SF, RowsPerBlock: cfg.RowsPerBlock, Nodes: cfg.Nodes,
		Window: window, Budget: cfg.Budget,
	}
	for _, tpl := range schedule {
		report.Schedule = append(report.Schedule, string(tpl))
	}
	if !jsonOut {
		fmt.Printf("adaptive session replay (SF=%.4g, rows/block=%d, %d node executors, |W|=%d, %d queries: orderkey→partkey shift)\n\n",
			cfg.SF, cfg.RowsPerBlock, cfg.Nodes, window, len(schedule))
	}

	for _, mode := range []struct {
		name string
		mode optimizer.Mode
	}{
		{"adaptive", optimizer.ModeAdaptive},
		{"static", optimizer.ModeStatic},
	} {
		// Fresh store and a fresh random (no join tree) load per mode, so
		// both replays start from the same §7.3 initial state.
		store := dfs.NewStore(cfg.Nodes, 2, cfg.Seed)
		tables, err := tpch.LoadAll(store, data, tpch.LoadConfig{
			RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		// Distributed: every store node runs its own executor; scans run
		// where their blocks live and joins exchange rows between nodes.
		s := session.New(store, session.Config{
			Model:        model,
			Optimizer:    optimizer.Config{Mode: mode.mode, WindowSize: window, Seed: cfg.Seed},
			BudgetBlocks: cfg.Budget,
			MemBudget:    mem,
			Distributed:  true,
		})
		// Same rng seed per mode: both replays see identical query
		// parameters.
		rng := rand.New(rand.NewSource(cfg.Seed))
		cat := tables.Catalog()
		sum := sessionModeSummary{Mode: mode.name}
		if !jsonOut {
			fmt.Printf("--- %s ---\n", mode.name)
			fmt.Printf("%4s %-4s %-36s %9s %9s %7s\n", "q", "tpl", "strategies", "rows", "sim-s", "moved")
		}
		start := time.Now()
		for qi, tpl := range schedule {
			in := tpch.NewInstance(tpl, data, rng)
			q, err := session.FromSpec(cat, in.Spec())
			if err != nil {
				return fmt.Errorf("%s q%d (%s): %w", mode.name, qi, tpl, err)
			}
			res, err := s.Stream(q, nil)
			if err != nil {
				return fmt.Errorf("%s q%d (%s): %w", mode.name, qi, tpl, err)
			}
			var strategies []string
			for _, j := range res.Report.Joins {
				strategies = append(strategies, j.Strategy)
			}
			qr := sessionQueryRecord{
				Mode: mode.name, Query: qi, Template: string(tpl),
				Strategies: strategies, Rows: res.RowCount,
				SimSeconds: res.SimSeconds, MovedRows: res.Adapt.MovedRows,
			}
			report.Queries = append(report.Queries, qr)
			for _, op := range res.Ops {
				report.Ops = append(report.Ops, sessionOpRecord{
					Mode: mode.name, Query: qi, Template: string(tpl),
					Op: op.Label, Node: op.Node, Rows: op.Rows, Batches: op.Batches, WallNs: op.WallNs,
				})
			}
			sum.SimSeconds += res.SimSeconds
			sum.MovedRows += res.Adapt.MovedRows
			sum.TreesCreated += res.Adapt.CreatedTrees
			sum.ResultRows += res.RowCount
			if !jsonOut {
				fmt.Printf("%4d %-4s %-36s %9d %9.1f %7d\n",
					qi, tpl, joinStrategies(strategies), res.RowCount, res.SimSeconds, res.Adapt.MovedRows)
			}
		}
		sum.WallMs = time.Since(start).Milliseconds()
		report.Modes = append(report.Modes, sum)
		if !jsonOut {
			fmt.Printf("%s total: %.1f sim-s, %d ms wall, %d rows moved, %d trees created\n\n",
				mode.name, sum.SimSeconds, sum.WallMs, sum.MovedRows, sum.TreesCreated)
		}
	}

	if report.Modes[0].SimSeconds > 0 {
		report.SimSpeedup = report.Modes[1].SimSeconds / report.Modes[0].SimSeconds
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Printf("adaptation speedup (simulated time, static/adaptive): %.2fx\n", report.SimSpeedup)
	return nil
}

// replayAdaptiveOnce replays the full adaptive schedule through a
// distributed session over a fresh `nodes`-node store, returning the
// total result rows — the unit the -json node sweep times at 1/4/8
// nodes. The records exist so the whole distributed path is exercised
// and timed at several cluster widths on every CI run; cmd/benchdiff
// fails the build on a >2.5x wall-time cliff against BENCH_PR4.json
// (result-row drift always fails). Absolute node scaling is hardware-
// bound (GOMAXPROCS), so the gate guards regressions, not speedups.
func replayAdaptiveOnce(cfg experiments.Config, data *tpch.Dataset, nodes int, mem int64) (int, error) {
	model := cfg.Model
	if model.Nodes == 0 {
		model = cluster.Default()
	}
	model.Nodes = nodes
	store := dfs.NewStore(nodes, 2, cfg.Seed)
	tables, err := tpch.LoadAll(store, data, tpch.LoadConfig{
		RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed,
	})
	if err != nil {
		return 0, err
	}
	s := session.New(store, session.Config{
		Model:        model,
		Optimizer:    optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 5, Seed: cfg.Seed},
		BudgetBlocks: cfg.Budget,
		MemBudget:    mem,
		Distributed:  true,
	})
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := tables.Catalog()
	total := 0
	for qi, tpl := range sessionSchedule() {
		in := tpch.NewInstance(tpl, data, rng)
		q, err := session.FromSpec(cat, in.Spec())
		if err != nil {
			return total, fmt.Errorf("nodes=%d q%d (%s): %w", nodes, qi, tpl, err)
		}
		res, err := s.Stream(q, nil)
		if err != nil {
			return total, fmt.Errorf("nodes=%d q%d (%s): %w", nodes, qi, tpl, err)
		}
		total += res.RowCount
	}
	return total, nil
}

// joinStrategies renders a strategy list compactly ("scan" when the
// query has no join).
func joinStrategies(ss []string) string {
	if len(ss) == 0 {
		return "scan"
	}
	out := ss[0]
	for _, s := range ss[1:] {
		out += "+" + s
	}
	return out
}
