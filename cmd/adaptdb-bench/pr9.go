// The PR-9 acceptance benchmarks behind -pr9: (a) greedy zone-map
// join ordering vs the fixed declaration (left-deep) order on a
// grouped three-way TPC-H query whose selective edge sits last in
// declaration order, and (b) the RDF-style subject→object shifting
// workload replayed through adaptive vs static sessions. Both halves
// self-gate on result equality between the compared configurations;
// the JSON report is what BENCH_PR9.json tracks.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/experiments"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/query"
	"adaptdb/internal/rdf"
	"adaptdb/internal/session"
	"adaptdb/internal/tpch"
	"adaptdb/internal/value"
)

type pr9GreedyReport struct {
	Query        string  `json:"query"`
	Rows         int     `json:"rows"`
	GreedySimS   float64 `json:"greedy_sim_s"`
	FixedSimS    float64 `json:"fixed_sim_s"`
	GreedyWallMs int64   `json:"greedy_wall_ms"`
	FixedWallMs  int64   `json:"fixed_wall_ms"`
	// SimSpeedup is fixed/greedy in simulated seconds (>1 = greedy wins).
	SimSpeedup float64 `json:"sim_speedup"`
}

type pr9RDFReport struct {
	Triples      int     `json:"triples"`
	Entities     int     `json:"entities"`
	Queries      int     `json:"queries"`
	AdaptiveSimS float64 `json:"adaptive_sim_s"`
	StaticSimS   float64 `json:"static_sim_s"`
	MovedRows    int     `json:"moved_rows"`
	// Speedup is static/adaptive in simulated seconds (>1 = the window wins).
	Speedup float64 `json:"speedup"`
}

type pr9Report struct {
	SF     float64         `json:"sf"`
	Nodes  int             `json:"nodes"`
	Seed   int64           `json:"seed"`
	Greedy pr9GreedyReport `json:"greedy_vs_fixed"`
	RDF    pr9RDFReport    `json:"rdf_shift"`
}

// runPR9 runs both acceptance benchmarks and writes the report.
func runPR9(cfg experiments.Config, jsonOut bool) error {
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 4
	}
	model := cfg.Model
	if model.Nodes == 0 {
		model = cluster.Default()
	}
	model.Nodes = nodes

	rep := pr9Report{SF: cfg.SF, Nodes: nodes, Seed: cfg.Seed}
	var err error
	if rep.Greedy, err = pr9GreedyVsFixed(cfg, model, nodes); err != nil {
		return err
	}
	if rep.RDF, err = pr9RDFShift(cfg, model, nodes); err != nil {
		return err
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("PR-9 acceptance benchmarks (SF=%.4g, %d nodes, seed %d)\n\n", cfg.SF, nodes, cfg.Seed)
	fmt.Printf("greedy vs fixed order on %s (%d result rows):\n", rep.Greedy.Query, rep.Greedy.Rows)
	fmt.Printf("  greedy %8.1f sim-s  %5d ms wall\n", rep.Greedy.GreedySimS, rep.Greedy.GreedyWallMs)
	fmt.Printf("  fixed  %8.1f sim-s  %5d ms wall\n", rep.Greedy.FixedSimS, rep.Greedy.FixedWallMs)
	fmt.Printf("  speedup (fixed/greedy, sim): %.2fx\n\n", rep.Greedy.SimSpeedup)
	fmt.Printf("rdf shift (%d triples / %d entities, %d queries):\n", rep.RDF.Triples, rep.RDF.Entities, rep.RDF.Queries)
	fmt.Printf("  adaptive %8.1f sim-s (%d rows migrated)\n", rep.RDF.AdaptiveSimS, rep.RDF.MovedRows)
	fmt.Printf("  static   %8.1f sim-s\n", rep.RDF.StaticSimS)
	fmt.Printf("  speedup (static/adaptive, sim): %.2fx\n", rep.RDF.Speedup)
	return nil
}

// pr9GreedyVsFixed runs one grouped three-way join — lineitem, orders,
// customer declared in that (worst) order with a selective customer
// predicate — once with greedy ordering and once pinned to the
// declaration order, over identically loaded stores. Greedy starts
// from the cheap orders⋈customer edge, so the expensive lineitem rows
// join a pre-filtered intermediate; fixed pays the full
// lineitem⋈orders build first.
func pr9GreedyVsFixed(cfg experiments.Config, model cluster.CostModel, nodes int) (pr9GreedyReport, error) {
	rep := pr9GreedyReport{Query: "q5-selective-customer-grouped"}
	data := tpch.Generate(cfg.SF, cfg.Seed)
	custCut := int64(len(data.Customer) / 8)
	if custCut < 1 {
		custCut = 1
	}
	spec := query.Spec{
		Label: rep.Query,
		Tables: []query.TableRef{
			{Name: "lineitem"},
			{Name: "orders"},
			{Name: "customer", Preds: []query.Pred{
				{Col: "c_custkey", Op: predicate.LT, Val: value.NewInt(custCut)},
			}},
		},
		Joins: []query.JoinEdge{
			query.On(query.C("lineitem", "l_orderkey"), query.C("orders", "o_orderkey")),
			query.On(query.C("orders", "o_custkey"), query.C("customer", "c_custkey")),
		},
		GroupBy: []query.Col{query.C("customer", "c_nationkey")},
		Aggs: []query.Agg{
			query.Count(),
			query.Sum(query.C("lineitem", "l_orderkey")),
			query.Max(query.C("lineitem", "l_partkey")),
		},
	}

	var rows [2]int
	for i, fixed := range []bool{false, true} {
		store := dfs.NewStore(nodes, 2, cfg.Seed)
		tables, err := tpch.LoadAll(store, data, tpch.LoadConfig{
			RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed,
		})
		if err != nil {
			return rep, err
		}
		meter := &cluster.Meter{}
		ex := exec.New(store, meter)
		ex.EnableNodes(1)
		runner := planner.NewRunner(ex, model)
		runner.FixedOrder = fixed
		if cfg.Budget > 0 {
			runner.BudgetBlocks = cfg.Budget
		}
		bound, err := spec.Bind(tables.Catalog())
		if err != nil {
			return rep, err
		}
		// Simulated cost is deterministic; wall time takes the best of
		// three runs to filter scheduler noise.
		var wall time.Duration
		var sim float64
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			out, _, err := runner.RunSpec(bound)
			if err != nil {
				return pr9GreedyReport{}, err
			}
			if w := time.Since(start); rep == 0 || w < wall {
				wall = w
			}
			rows[i] = len(out)
			// Per-node meter shards merge into the parent only on Flush.
			ex.Nodes().Flush()
			sim = meter.Reset().SimSeconds(model)
		}
		if fixed {
			rep.FixedSimS, rep.FixedWallMs = sim, wall.Milliseconds()
		} else {
			rep.GreedySimS, rep.GreedyWallMs = sim, wall.Milliseconds()
		}
	}
	if rows[0] != rows[1] {
		return rep, fmt.Errorf("greedy and fixed orders disagree: %d vs %d rows", rows[0], rows[1])
	}
	rep.Rows = rows[0]
	if rep.GreedySimS > 0 {
		rep.SimSpeedup = rep.FixedSimS / rep.GreedySimS
	}
	return rep, nil
}

// pr9RDFShift replays the subject→object shifting RDF workload through
// an adaptive and a static session over identically loaded stores and
// compares total simulated time. Per-query result counts must agree
// exactly between the modes.
func pr9RDFShift(cfg experiments.Config, model cluster.CostModel, nodes int) (pr9RDFReport, error) {
	nTriples := int(4_000_000 * cfg.SF) // scaled like the TPC-H micro tables
	if nTriples < 4000 {
		nTriples = 4000
	}
	// Entities at a third of the triples: the build side must be big
	// enough that its shuffle fan-out dominates the metered cost — the
	// component co-partitioning removes.
	nEntities := nTriples / 3
	rep := pr9RDFReport{Triples: nTriples, Entities: nEntities}
	d := rdf.Generate(nTriples, nEntities, cfg.Seed)

	const perPhase = 32
	rep.Queries = 2 * perPhase
	var counts [2][]int
	for i, mode := range []optimizer.Mode{optimizer.ModeAdaptive, optimizer.ModeStatic} {
		store := dfs.NewStore(nodes, 2, cfg.Seed)
		tb, err := d.Load(store, cfg.RowsPerBlock, cfg.Seed)
		if err != nil {
			return rep, err
		}
		s := session.New(store, session.Config{
			Model:       model,
			Optimizer:   optimizer.Config{Mode: mode, WindowSize: 5, Seed: cfg.Seed},
			Distributed: true,
		})
		cat := tb.Catalog()
		rng := rand.New(rand.NewSource(cfg.Seed))
		sim, moved := 0.0, 0
		for qi := 0; qi < 2*perPhase; qi++ {
			lo := rng.Int63n(int64(nEntities))
			hi := lo + int64(nEntities/8)
			spec := rdf.SubjectSpec(lo, hi)
			if qi >= perPhase {
				spec = rdf.ObjectSpec(lo, hi)
			}
			q, err := session.FromSpec(cat, spec)
			if err != nil {
				return rep, err
			}
			res, err := s.Execute(q)
			if err != nil {
				return rep, fmt.Errorf("rdf %s q%d: %w", spec.Label, qi, err)
			}
			sim += res.SimSeconds
			moved += res.Adapt.MovedRows
			counts[i] = append(counts[i], res.RowCount)
		}
		if mode == optimizer.ModeAdaptive {
			rep.AdaptiveSimS, rep.MovedRows = sim, moved
		} else {
			rep.StaticSimS = sim
		}
	}
	for qi := range counts[0] {
		if counts[0][qi] != counts[1][qi] {
			return rep, fmt.Errorf("rdf q%d: adaptive %d rows, static %d rows", qi, counts[0][qi], counts[1][qi])
		}
	}
	if rep.AdaptiveSimS > 0 {
		rep.Speedup = rep.StaticSimS / rep.AdaptiveSimS
	}
	return rep, nil
}
