// Command adaptdb-bench regenerates every table and figure of the
// paper's evaluation (§7) and prints the series in plain-text tables.
//
// Usage:
//
//	adaptdb-bench                 # run everything at the default scale
//	adaptdb-bench -fig fig12      # one experiment
//	adaptdb-bench -sf 0.004       # larger micro scale factor
//	adaptdb-bench -list           # list experiments
//	adaptdb-bench -pipeline -sf 0.1   # materialized vs pipelined executor
//	adaptdb-bench -json -sf 0.01      # machine-readable pipeline results
//	                                  # + adaptive replay at 1/4/8 node
//	                                  # executors (BENCH_PR4.json, CI-gated
//	                                  # by cmd/benchdiff)
//	adaptdb-bench -session -sf 0.01   # adaptive session replay, on vs off,
//	                                  # on per-node executors (-nodes N)
//	adaptdb-bench -session -json      # per-operator records (BENCH_PR3.json)
//	adaptdb-bench -spill -sf 0.1      # shuffle join across memory budgets
//	                                  # {inf, 1/2, 1/8 build} × columnar/row
//	                                  # paths × 1/4/8 nodes; -json emits
//	                                  # BENCH_PR7.json (self-gates on result
//	                                  # checksums and the columnar A/B)
//	adaptdb-bench -mem 50000000 ...   # budget the -pipeline/-session runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/experiments"
	"adaptdb/internal/tpch"
)

type runner struct {
	name string
	desc string
	run  func(experiments.Config) (*experiments.Result, error)
}

func allRunners(trips int, fig17 experiments.Fig17Options) []runner {
	return []runner{
		{"fig01", "shuffle vs co-partitioned join", experiments.Fig01},
		{"fig07", "varying data locality", experiments.Fig07},
		{"fig08", "varying dataset size", experiments.Fig08},
		{"fig12", "TPC-H per-template comparison", experiments.Fig12},
		{"fig13a", "switching workload", experiments.Fig13a},
		{"fig13b", "shifting workload", experiments.Fig13b},
		{"fig14", "hyper-join memory buffer sweep", experiments.Fig14},
		{"fig15", "query window length sweep", experiments.Fig15},
		{"fig16a", "join-levels sweep (with predicates)", func(c experiments.Config) (*experiments.Result, error) {
			return experiments.Fig16(c, true)
		}},
		{"fig16b", "join-levels sweep (no predicates)", func(c experiments.Config) (*experiments.Result, error) {
			return experiments.Fig16(c, false)
		}},
		{"fig17", "ILP vs approximate grouping", func(c experiments.Config) (*experiments.Result, error) {
			return experiments.Fig17(c, fig17)
		}},
		{"fig18", "CMT 103-query trace", func(c experiments.Config) (*experiments.Result, error) {
			return experiments.Fig18(c, trips)
		}},
	}
}

func main() {
	var (
		fig      = flag.String("fig", "", "run a single experiment (e.g. fig12); empty = all")
		list     = flag.Bool("list", false, "list experiments and exit")
		pipeline = flag.Bool("pipeline", false, "compare materialized vs pipelined executor paths and exit")
		spill    = flag.Bool("spill", false, "sweep the shuffle join across memory budgets {inf, 1/2 build, 1/8 build}, columnar vs row paths, at 1/4/8 nodes unless -nodes is set, and exit (BENCH_PR7.json with -json)")
		sess     = flag.Bool("session", false, "replay a join-attribute-shifting TPC-H stream through adaptive sessions (adaptation on vs off) and exit")
		pr9      = flag.Bool("pr9", false, "run the PR-9 acceptance benchmarks — greedy vs fixed join order, and the RDF-style shifting workload adaptive vs static — and exit (BENCH_PR9.json with -json)")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON (implies -pipeline, or the session replay with -session); track results in BENCH_*.json")
		sf       = flag.Float64("sf", 0, "TPC-H micro scale factor (default 0.002)")
		rpb      = flag.Int("rows-per-block", 0, "rows per block (default 256)")
		budget   = flag.Int("budget", 0, "hyper-join buffer in blocks (default 8)")
		nodes    = flag.Int("nodes", 0, "simulated cluster nodes; with -session, also the per-node executor count (default 10)")
		seed     = flag.Int64("seed", 0, "random seed (default 42)")
		mem      = flag.Int64("mem", 0, "operator memory budget in bytes for -pipeline/-session runs (0 = unlimited; joins spill to disk run files beyond it)")
		trips    = flag.Int("trips", 4000, "CMT trips for fig18")
		ilpSteps = flag.Int64("ilp-steps", 0, "exact-search step cap for fig17")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (pprof format)")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file (pprof format)")
	)
	flag.Parse()

	// Profile artifacts ride along with regression reports: when benchdiff
	// flags a slowdown, the same command re-run with -cpuprofile hands the
	// investigation a pprof file instead of a guess.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			pprof.WriteHeapProfile(f)
			f.Close()
		}()
	}

	cfg := experiments.DefaultConfig()
	if *sf > 0 {
		cfg.SF = *sf
	}
	if *rpb > 0 {
		cfg.RowsPerBlock = *rpb
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *nodes > 0 {
		cfg.Nodes = *nodes
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	f17 := experiments.DefaultFig17Options()
	f17.IncludeMIP = true
	if *ilpSteps > 0 {
		f17.MaxSteps = *ilpSteps
	}

	if *spill {
		if err := runSpillBench(cfg, *jsonOut, *nodes > 0); err != nil {
			fmt.Fprintf(os.Stderr, "spill: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *sess {
		if err := runSessionCompare(cfg, *jsonOut, *mem); err != nil {
			fmt.Fprintf(os.Stderr, "session: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *pr9 {
		if err := runPR9(cfg, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "pr9: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *pipeline || *jsonOut {
		if err := runPipelineCompare(cfg, *jsonOut, *mem); err != nil {
			fmt.Fprintf(os.Stderr, "pipeline: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runners := allRunners(*trips, f17)
	if *list {
		for _, r := range runners {
			fmt.Printf("%-8s %s\n", r.name, r.desc)
		}
		return
	}
	fmt.Printf("AdaptDB evaluation harness (SF=%.4g, rows/block=%d, budget=%d blocks, %d nodes, seed=%d)\n\n",
		cfg.SF, cfg.RowsPerBlock, cfg.Budget, cfg.Nodes, cfg.Seed)
	ran := 0
	for _, r := range runners {
		if *fig != "" && !strings.EqualFold(*fig, r.name) {
			continue
		}
		res, err := r.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		res.Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *fig)
		os.Exit(2)
	}
}

// benchRecord is one machine-readable benchmark measurement, the unit
// future PRs track in BENCH_*.json to follow the perf trajectory.
type benchRecord struct {
	Op          string `json:"op"`
	Rows        int    `json:"rows"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

// benchReport wraps the records with enough configuration to make runs
// comparable across PRs.
type benchReport struct {
	SF           float64       `json:"sf"`
	RowsPerBlock int           `json:"rows_per_block"`
	Nodes        int           `json:"nodes"`
	BatchSize    int           `json:"batch_size"`
	Results      []benchRecord `json:"results"`
}

// runPipelineCompare loads TPC-H lineitem and orders co-partitioned on
// orderkey at the configured scale factor and runs the same scan and
// shuffle-join work through the legacy materializing executor methods
// and the batched Operator pipeline, reporting wall time, result rows,
// and allocations per path — as a plain-text table, or as JSON when
// jsonOut is set.
func runPipelineCompare(cfg experiments.Config, jsonOut bool, mem int64) error {
	if !jsonOut {
		fmt.Printf("executor pipeline comparison (SF=%.4g, rows/block=%d, %d nodes, batch=%d rows, mem=%d)\n\n",
			cfg.SF, cfg.RowsPerBlock, cfg.Nodes, exec.DefaultBatchSize, mem)
	}
	ds := tpch.Generate(cfg.SF, cfg.Seed)
	store := dfs.NewStore(cfg.Nodes, 3, cfg.Seed)
	line, err := core.Load(store, "lineitem", tpch.LineitemSchema, ds.Lineitem, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed, JoinAttr: tpch.LOrderKey,
	})
	if err != nil {
		return err
	}
	ord, err := core.Load(store, "orders", tpch.OrdersSchema, ds.Orders, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed + 1, JoinAttr: tpch.OOrderKey,
	})
	if err != nil {
		return err
	}
	ex := exec.New(store, &cluster.Meter{})
	ex.Mem = exec.NewMemBudget(mem)

	report := benchReport{
		SF: cfg.SF, RowsPerBlock: cfg.RowsPerBlock, Nodes: cfg.Nodes, BatchSize: exec.DefaultBatchSize,
	}
	if !jsonOut {
		fmt.Printf("%-28s %12s %12s %14s %12s\n", "path", "wall", "rows", "allocated", "allocs")
	}
	measure := func(name string, run func() (int, error)) error {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		rows, err := run()
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		runtime.ReadMemStats(&after)
		rec := benchRecord{
			Op:          name,
			Rows:        rows,
			NsPerOp:     wall.Nanoseconds(),
			AllocsPerOp: after.Mallocs - before.Mallocs,
			BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
		}
		report.Results = append(report.Results, rec)
		if !jsonOut {
			fmt.Printf("%-28s %12s %12d %14s %12d\n", name, wall.Round(time.Millisecond), rows,
				fmtBytes(rec.BytesPerOp), rec.AllocsPerOp)
		}
		return nil
	}

	steps := []struct {
		name string
		run  func() (int, error)
	}{
		{"scan/materialized", func() (int, error) {
			return len(ex.Scan(line, nil)), nil
		}},
		{"scan/pipelined", func() (int, error) {
			return exec.Count(ex.TableScanOp(line, nil))
		}},
		{"shuffle-join/materialized", func() (int, error) {
			return len(ex.ShuffleJoinTables(line, nil, tpch.LOrderKey, ord, nil, tpch.OOrderKey)), nil
		}},
		{"shuffle-join/pipelined", func() (int, error) {
			return exec.Count(ex.JoinOp(
				ex.TableScanOp(ord, nil), tpch.OOrderKey,
				ex.TableScanOp(line, nil), tpch.LOrderKey,
				exec.JoinOptions{BuildIsRight: true, BuildCharge: exec.ChargeShuffle, ProbeCharge: exec.ChargeShuffle},
			))
		}},
		{"hyper-join/materialized", func() (int, error) {
			rows, _ := ex.HyperJoin(line.Refs(0, nil), nil, tpch.LOrderKey,
				ord.Refs(0, nil), nil, tpch.OOrderKey, cfg.Budget)
			return len(rows), nil
		}},
		{"hyper-join/pipelined", func() (int, error) {
			return exec.Count(ex.NewHyperJoinOp(line.Refs(0, nil), nil, tpch.LOrderKey,
				ord.Refs(0, nil), nil, tpch.OOrderKey, cfg.Budget))
		}},
	}
	for _, s := range steps {
		if err := measure(s.name, s.run); err != nil {
			return err
		}
	}
	// The locality sweep: the PR-3 adaptive session stream replayed on
	// per-node executors at 1, 4, and 8 nodes. On multi-core hardware
	// cross-node parallelism shows up as falling wall time; on the
	// 1-core CI container node counts only add exchange overhead (see
	// ARCHITECTURE.md), so BENCH_PR4.json + cmd/benchdiff gate these
	// records against gross wall-time cliffs relative to the checked-in
	// baseline, not against an absolute scaling curve.
	for _, n := range []int{1, 4, 8} {
		n := n
		if err := measure(fmt.Sprintf("adaptive-session/nodes=%d", n), func() (int, error) {
			return replayAdaptiveOnce(cfg, ds, n, mem)
		}); err != nil {
			return err
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
