package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// defGates mirrors the flag defaults.
var defGates = gates{maxRatio: 2.5, minNs: 5_000_000, maxAllocs: 2.0, minAllocs: 10_000}

func rec(op string, rows int, ns int64) record {
	return record{Op: op, Rows: rows, NsPerOp: ns}
}

func recA(op string, rows int, ns int64, allocs uint64) record {
	return record{Op: op, Rows: rows, NsPerOp: ns, AllocsPerOp: allocs}
}

func asMap(recs ...record) map[string]record {
	m := make(map[string]record, len(recs))
	for _, r := range recs {
		m[r.Op] = r
	}
	return m
}

func ops(recs ...record) []string {
	var out []string
	for _, r := range recs {
		out = append(out, r.Op)
	}
	return out
}

func TestMinOfTwoFiltersSchedulerNoise(t *testing.T) {
	// Run 1 caught a scheduler hiccup (10x); run 2 is honest (1.1x).
	// The min over runs must rescue the op from a false regression.
	base := asMap(rec("join", 100, 100_000_000))
	run1 := asMap(rec("join", 100, 1_000_000_000))
	run2 := asMap(rec("join", 100, 110_000_000))
	cur := minOverRuns([]map[string]record{run1, run2})
	if cur["join"].NsPerOp != 110_000_000 {
		t.Fatalf("min-of-two kept %d, want the faster run", cur["join"].NsPerOp)
	}
	_, failed := compare(base, []string{"join"}, cur, defGates)
	if failed {
		t.Error("min-of-two should have filtered the noisy run")
	}
	// A single noisy run, by contrast, trips the gate.
	_, failed = compare(base, []string{"join"}, minOverRuns([]map[string]record{run1}), defGates)
	if !failed {
		t.Error("10x on the only run must fail")
	}
}

func TestNoiseFloorIsInformationalOnly(t *testing.T) {
	// Baseline 1ms < the 5ms floor: even a 100x blowup must not fail —
	// micro-ops jitter too much on shared runners to gate on.
	base := asMap(rec("tiny", 10, 1_000_000))
	cur := asMap(rec("tiny", 10, 100_000_000))
	lines, failed := compare(base, ops(rec("tiny", 0, 0)), cur, defGates)
	if failed {
		t.Error("op below the noise floor must never fail on time")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "below -min-ns") {
		t.Error("noise-floor verdict missing from output")
	}
	// Exactly at the floor the gate applies again (< is the contract).
	base = asMap(rec("at-floor", 10, 5_000_000))
	cur = asMap(rec("at-floor", 10, 100_000_000))
	if _, failed := compare(base, []string{"at-floor"}, cur, defGates); !failed {
		t.Error("op at the floor with a 20x regression must fail")
	}
}

func TestRowDriftFailsEvenUnderNoiseFloor(t *testing.T) {
	// A perf gate that lets results drift is worse than none: row
	// mismatches fail regardless of timing noise.
	base := asMap(rec("tiny", 10, 1_000_000))
	cur := asMap(rec("tiny", 11, 900_000))
	if _, failed := compare(base, []string{"tiny"}, cur, defGates); !failed {
		t.Error("row drift under the noise floor must still fail")
	}
}

func TestMissingOpFails(t *testing.T) {
	base := asMap(rec("join", 100, 100_000_000), rec("scan", 50, 80_000_000))
	cur := asMap(rec("join", 100, 100_000_000))
	lines, failed := compare(base, []string{"join", "scan"}, cur, defGates)
	if !failed {
		t.Error("op missing from every run must fail")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "MISSING") {
		t.Error("missing-op verdict absent from output")
	}
}

func TestExtraOpsInRunsAreIgnored(t *testing.T) {
	// New ops with no baseline yet (a PR adding benchmarks) must not
	// fail the gate — only baseline ops are compared.
	base := asMap(rec("join", 100, 100_000_000))
	cur := asMap(rec("join", 100, 100_000_000), rec("brand-new", 7, 1))
	if _, failed := compare(base, []string{"join"}, cur, defGates); failed {
		t.Error("extra run-only ops must not trip the gate")
	}
}

func TestAllocsGateIndependentOfTime(t *testing.T) {
	// Wall time holds steady but allocations triple: the per-row boxing
	// the columnar path eliminated has crept back, and time noise must
	// not mask it. 2.0x is the contract; 3x fails.
	base := asMap(recA("join", 100, 100_000_000, 50_000))
	cur := asMap(recA("join", 100, 100_000_000, 150_000))
	lines, failed := compare(base, []string{"join"}, cur, defGates)
	if !failed {
		t.Error("3x allocs at flat time must fail the allocs gate")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "allocs") {
		t.Error("allocs verdict missing from output")
	}
	// At exactly the ratio the gate holds (> is the contract)...
	cur = asMap(recA("join", 100, 100_000_000, 100_000))
	if _, failed := compare(base, []string{"join"}, cur, defGates); failed {
		t.Error("exactly 2.0x allocs must pass")
	}
	// ...and a time pass plus allocs pass is clean.
	cur = asMap(recA("join", 100, 110_000_000, 55_000))
	if _, failed := compare(base, []string{"join"}, cur, defGates); failed {
		t.Error("mild drift on both axes must pass")
	}
}

func TestAllocsGateSkipsSmallAndAbsentBaselines(t *testing.T) {
	// A 10-alloc op tripling is not a perf cliff: baselines under
	// -min-allocs are exempt.
	base := asMap(recA("tiny-allocs", 10, 50_000_000, 10))
	cur := asMap(recA("tiny-allocs", 10, 50_000_000, 9_000))
	if _, failed := compare(base, []string{"tiny-allocs"}, cur, defGates); failed {
		t.Error("baseline below -min-allocs must skip the allocs gate")
	}
	// Baselines written before allocs_per_op existed decode as 0 and
	// must not turn every run into a division-free failure.
	base = asMap(rec("legacy", 10, 50_000_000))
	cur = asMap(recA("legacy", 10, 50_000_000, 1_000_000))
	if _, failed := compare(base, []string{"legacy"}, cur, defGates); failed {
		t.Error("zero-alloc baseline (legacy report) must skip the allocs gate")
	}
}

func TestAllocsGateAppliesUnderTimeNoiseFloor(t *testing.T) {
	// The time noise floor exempts an op from the TIME gate only; a
	// genuine allocation regression on a fast op still fails.
	base := asMap(recA("fast", 10, 1_000_000, 500_000))
	cur := asMap(recA("fast", 10, 1_500_000, 2_000_000))
	if _, failed := compare(base, []string{"fast"}, cur, defGates); !failed {
		t.Error("4x allocs must fail even below the time noise floor")
	}
}

func TestMinOverRunsFoldsAllocsIndependently(t *testing.T) {
	// Run 1: honest time, GC-inflated allocs. Run 2: noisy time, honest
	// allocs. The fold must take the best of each axis, or one noisy
	// axis per run would defeat the min-of-two protocol.
	run1 := asMap(recA("join", 100, 100_000_000, 900_000))
	run2 := asMap(recA("join", 100, 300_000_000, 50_000))
	cur := minOverRuns([]map[string]record{run1, run2})
	got := cur["join"]
	if got.NsPerOp != 100_000_000 || got.AllocsPerOp != 50_000 {
		t.Fatalf("fold kept ns=%d allocs=%d, want best of each axis", got.NsPerOp, got.AllocsPerOp)
	}
}

func TestLoadFixtureRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	fixture := `{"results":[
		{"op":"a","rows":1,"ns_per_op":10},
		{"op":"b","rows":2,"ns_per_op":20,"allocs_per_op":777},
		{"op":"a","rows":9,"ns_per_op":99}
	]}`
	if err := os.WriteFile(path, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	m, order, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate op names keep the last record but only one order slot.
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if m["a"].Rows != 9 {
		t.Errorf("duplicate op should keep the last record, got %+v", m["a"])
	}
	if m["b"].AllocsPerOp != 777 {
		t.Errorf("allocs_per_op not decoded: %+v", m["b"])
	}
	if m["a"].AllocsPerOp != 0 {
		t.Errorf("absent allocs_per_op should decode to 0, got %+v", m["a"])
	}
	if _, _, err := load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, _, err := load(bad); err == nil {
		t.Error("malformed JSON must error")
	}
}
