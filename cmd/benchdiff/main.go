// Command benchdiff compares adaptdb-bench -json runs against a
// checked-in baseline and fails when an op regresses past a threshold —
// the CI gate that keeps the node executors from accidentally
// serializing (or any other perf cliff) without anyone noticing.
//
// Usage:
//
//	adaptdb-bench -json -sf 0.001 -nodes 4 > run1.json
//	adaptdb-bench -json -sf 0.001 -nodes 4 > run2.json
//	benchdiff -baseline BENCH_PR4.json run1.json run2.json
//
// For each op present in both the baseline and the runs, the current
// time is the MINIMUM over the runs (that is why CI runs the bench
// twice: the min filters scheduler noise). Ops whose baseline time is
// under -min-ns are reported but never fail — micro-ops jitter too much
// on shared runners to gate on. Any remaining op slower than
// -max-ratio × baseline fails the build. Row-count mismatches against
// the baseline always fail: a perf gate that lets results drift is
// worse than none.
//
// Allocation counts gate independently of time: an op whose
// allocs_per_op exceeds -max-allocs-ratio × baseline fails even when
// its wall time passes, because host noise that hides a time regression
// cannot hide a per-row allocation creeping back into a vectorized
// path. Baselines below -min-allocs (or without alloc counts at all)
// skip the allocs gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

type record struct {
	Op          string `json:"op"`
	Rows        int    `json:"rows"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
}

// gates bundles the thresholds compare applies. Time and allocation
// regressions gate independently: allocations are far less noisy than
// wall time, so their ratio can be tighter, but they need their own
// floor — a 10-alloc op tripling is not a perf cliff.
type gates struct {
	maxRatio  float64 // fail when ns_per_op exceeds this multiple of baseline
	minNs     int64   // baselines under this many ns are informational
	maxAllocs float64 // fail when allocs_per_op exceeds this multiple of baseline
	minAllocs uint64  // baselines under this many allocs skip the allocs gate
}

type report struct {
	Results []record `json:"results"`
}

func load(path string) (map[string]record, []string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]record, len(r.Results))
	var order []string
	for _, rec := range r.Results {
		if _, dup := out[rec.Op]; !dup {
			order = append(order, rec.Op)
		}
		out[rec.Op] = rec
	}
	return out, order, nil
}

// minOverRuns folds several runs into the least-noisy observation per
// op: the minimum ns_per_op and, independently, the minimum
// allocs_per_op (a GC-triggered pool miss can inflate one run's allocs
// just like the scheduler inflates its time). Row counts ride along
// with the fastest run; they are identical across honest runs and the
// comparison flags any drift.
func minOverRuns(runs []map[string]record) map[string]record {
	cur := map[string]record{}
	for _, run := range runs {
		for op, rec := range run {
			old, ok := cur[op]
			if !ok {
				cur[op] = rec
				continue
			}
			if rec.NsPerOp < old.NsPerOp {
				rec.AllocsPerOp = min(rec.AllocsPerOp, old.AllocsPerOp)
				cur[op] = rec
			} else if rec.AllocsPerOp < old.AllocsPerOp {
				old.AllocsPerOp = rec.AllocsPerOp
				cur[op] = old
			}
		}
	}
	return cur
}

// compare applies the gates to every baseline op in order: row drift
// always fails, ops under the time noise floor are informational no
// matter how slow, anything else fails past maxRatio. Allocation counts
// gate separately — an op can pass on time and still fail on allocs
// (the vectorized paths exist to kill per-row allocation; time noise
// must not mask its return). Baselines without alloc counts (older
// reports, or ops below minAllocs) skip the allocs gate. Returns the
// rendered table lines and whether any gate tripped.
func compare(base map[string]record, order []string, cur map[string]record, g gates) (lines []string, failed bool) {
	lines = append(lines, fmt.Sprintf("%-30s %12s %12s %7s %s", "op", "baseline", "current", "ratio", "verdict"))
	for _, op := range order {
		b := base[op]
		c, ok := cur[op]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-30s %12s %12s %7s %s", op, fmtNs(b.NsPerOp), "-", "-", "MISSING from runs"))
			failed = true
			continue
		}
		ratio := float64(c.NsPerOp) / float64(b.NsPerOp)
		verdict := "ok"
		switch {
		case c.Rows != b.Rows:
			verdict = fmt.Sprintf("FAIL: rows %d != baseline %d", c.Rows, b.Rows)
			failed = true
		case b.NsPerOp < g.minNs:
			verdict = "info (below -min-ns)"
		case ratio > g.maxRatio:
			verdict = fmt.Sprintf("FAIL: > %.1fx", g.maxRatio)
			failed = true
		}
		if verdict == "ok" || verdict == "info (below -min-ns)" {
			if b.AllocsPerOp >= g.minAllocs && float64(c.AllocsPerOp) > g.maxAllocs*float64(b.AllocsPerOp) {
				verdict = fmt.Sprintf("FAIL: allocs %d > %.1fx baseline %d", c.AllocsPerOp, g.maxAllocs, b.AllocsPerOp)
				failed = true
			}
		}
		lines = append(lines, fmt.Sprintf("%-30s %12s %12s %6.2fx %s", op, fmtNs(b.NsPerOp), fmtNs(c.NsPerOp), ratio, verdict))
	}
	return lines, failed
}

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_PR4.json", "baseline report to compare against")
		maxRatio  = flag.Float64("max-ratio", 2.5, "fail when current ns_per_op exceeds this multiple of the baseline")
		minNs     = flag.Int64("min-ns", 5_000_000, "ops with a baseline under this many ns are informational only")
		maxAllocs = flag.Float64("max-allocs-ratio", 2.0, "fail when current allocs_per_op exceeds this multiple of the baseline")
		minAllocs = flag.Uint64("min-allocs", 10_000, "ops with a baseline under this many allocs skip the allocs gate")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-baseline f] [-max-ratio r] [-min-ns n] run.json [run2.json ...]")
		os.Exit(2)
	}
	base, order, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var runs []map[string]record
	for _, path := range flag.Args() {
		run, _, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		runs = append(runs, run)
	}
	lines, failed := compare(base, order, minOverRuns(runs), gates{
		maxRatio: *maxRatio, minNs: *minNs,
		maxAllocs: *maxAllocs, minAllocs: *minAllocs,
	})
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: regression detected")
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
