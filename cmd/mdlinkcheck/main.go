// Command mdlinkcheck walks a directory tree for Markdown files and
// verifies that every relative link target exists, so docs can't rot as
// files move. CI runs it over the repo root; it exits non-zero and
// lists the dead links when any are found.
//
// Checked: [text](path) and [text](path#anchor) where path has no URL
// scheme. Skipped: absolute URLs (http:, https:, mailto:, …),
// pure-anchor links (#section), and anything inside fenced code blocks.
//
// Usage:
//
//	mdlinkcheck [dir]   # default "."
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline Markdown links/images; group 1 is the target.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)\)`)

// schemeRe detects URL schemes ("http:", "mailto:", …) to skip.
var schemeRe = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9+.-]*:`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dead := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "vendor" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		n, err := checkFile(path)
		dead += n
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %v\n", err)
		os.Exit(2)
	}
	if dead > 0 {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %d dead relative link(s)\n", dead)
		os.Exit(1)
	}
}

// checkFile reports the number of dead relative links in one file; an
// unreadable file is an I/O error, not a dead link.
func checkFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	dead := 0
	inFence := false
	for lineNo, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if schemeRe.MatchString(target) || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: dead link %q\n", path, lineNo+1, m[1])
				dead++
			}
		}
	}
	return dead, nil
}
