package core

import (
	"math/rand"
	"testing"

	"adaptdb/internal/block"
	"adaptdb/internal/cluster"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tree"
	"adaptdb/internal/twophase"
	"adaptdb/internal/value"
)

// These integration tests exercise the durability path end to end:
// partitioning trees and blocks round-trip through the simulated
// distributed store's serialized forms, and a rebuilt catalog answers
// queries identically — the contract AdaptDB-on-HDFS relies on when a
// node restarts.

func TestTreePersistenceRoundTripAnswersIdentically(t *testing.T) {
	rows := genRows(2048, 21)
	tbl, store := loadTable(t, rows, LoadOptions{RowsPerBlock: 128, Seed: 3, JoinAttr: 0})

	// Recover the tree purely from store metadata.
	raw, err := store.GetBytes("lineitem/meta/tree0")
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := tree.Decode(raw, sch)
	if err != nil {
		t.Fatal(err)
	}
	preds := []predicate.Predicate{
		predicate.NewCmp(0, predicate.LT, value.NewInt(3000)),
		predicate.NewCmp(2, predicate.GE, value.NewInt(500)),
	}
	orig := tbl.Trees[0].Tree.Lookup(preds)
	got := recovered.Lookup(preds)
	if len(orig) != len(got) {
		t.Fatalf("recovered tree lookup differs: %v vs %v", orig, got)
	}
	for i := range orig {
		if orig[i] != got[i] {
			t.Fatalf("bucket %d differs after recovery", i)
		}
	}
	// Routing behaviour must also survive.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		r := rows[rng.Intn(len(rows))]
		if recovered.Route(r) != tbl.Trees[0].Tree.Route(r) {
			t.Fatalf("recovered tree routes differently")
		}
	}
}

func TestBlockSerializationThroughStore(t *testing.T) {
	rows := genRows(512, 22)
	tbl, store := loadTable(t, rows, LoadOptions{RowsPerBlock: 64, Seed: 3, JoinAttr: -1})
	// Serialize every block, wipe it, restore from bytes, and verify the
	// table still answers exactly.
	ti := tbl.Trees[0]
	for _, b := range ti.LiveBuckets() {
		path := tbl.BlockPath(0, b)
		blk, _, err := store.GetBlock(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		buf := blk.AppendBinary(nil)
		store.Delete(path)
		restored, err := block.Decode(buf, sch)
		if err != nil {
			t.Fatal(err)
		}
		store.PutBlock(path, restored)
	}
	total := 0
	for _, b := range ti.LiveBuckets() {
		blk, _, err := store.GetBlock(tbl.BlockPath(0, b), 0)
		if err != nil {
			t.Fatal(err)
		}
		total += blk.Len()
	}
	if total != len(rows) {
		t.Fatalf("rows after serialize/restore cycle: %d, want %d", total, len(rows))
	}
}

// TestSmoothMigrationUnderConcurrentScans injects the failure mode the
// HDFS-append design guards against (§5.2): scans racing a migration
// must never observe duplicated rows once quiesced, and the final state
// is complete.
func TestMigrationPreservesEveryRowExactlyOnce(t *testing.T) {
	rows := genRows(1024, 23)
	tbl, store := loadTable(t, rows, LoadOptions{RowsPerBlock: 64, Seed: 3, JoinAttr: -1})
	nt := twophase.Builder{Schema: sch, JoinAttr: 1, JoinLevels: 2, TotalDepth: 4, Seed: 8}.Build(tbl.SampleRows)
	idx := tbl.AddTree(nt)
	var meter cluster.Meter
	// Move everything in three waves, verifying multiset preservation
	// after each.
	counts := func() map[string]int {
		out := make(map[string]int)
		for _, ti := range tbl.LiveTrees() {
			for _, b := range tbl.Trees[ti].LiveBuckets() {
				blk, _, err := store.GetBlock(tbl.BlockPath(ti, b), 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range blk.Tuples {
					out[string(r.AppendBinary(nil))]++
				}
			}
		}
		return out
	}
	want := make(map[string]int)
	for _, r := range rows {
		want[string(r.AppendBinary(nil))]++
	}
	for wave := 0; wave < 3; wave++ {
		live := tbl.Trees[0].LiveBuckets()
		if len(live) == 0 {
			break
		}
		n := len(live)/2 + 1
		if n > len(live) {
			n = len(live)
		}
		if err := tbl.MoveBuckets(0, idx, live[:n], &meter, nil); err != nil {
			t.Fatal(err)
		}
		got := counts()
		if len(got) != len(want) {
			t.Fatalf("wave %d: distinct rows %d, want %d", wave, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("wave %d: row multiplicity changed", wave)
			}
		}
	}
}
