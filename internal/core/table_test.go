package core

import (
	"math/rand"
	"testing"

	"adaptdb/internal/block"
	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tree"
	"adaptdb/internal/tuple"
	"adaptdb/internal/twophase"
	"adaptdb/internal/value"
)

var sch = schema.MustNew(
	schema.Column{Name: "orderkey", Kind: value.Int},
	schema.Column{Name: "partkey", Kind: value.Int},
	schema.Column{Name: "shipdate", Kind: value.Int},
)

func genRows(n int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{
			value.NewInt(rng.Int63n(10000)),
			value.NewInt(rng.Int63n(2000)),
			value.NewInt(rng.Int63n(2500)),
		}
	}
	return rows
}

func loadTable(t *testing.T, rows []tuple.Tuple, opts LoadOptions) (*Table, *dfs.Store) {
	t.Helper()
	store := dfs.NewStore(4, 2, 1)
	tbl, err := Load(store, "lineitem", sch, rows, opts)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return tbl, store
}

func countRows(t *testing.T, tbl *Table) int {
	t.Helper()
	total := 0
	for _, i := range tbl.LiveTrees() {
		total += tbl.RowsUnder(i)
	}
	return total
}

func TestLoadUpfront(t *testing.T) {
	rows := genRows(2048, 1)
	tbl, store := loadTable(t, rows, LoadOptions{RowsPerBlock: 128, Seed: 1, JoinAttr: -1})
	if tbl.TotalRows() != 2048 {
		t.Fatalf("TotalRows = %d", tbl.TotalRows())
	}
	if got := countRows(t, tbl); got != 2048 {
		t.Fatalf("rows in store = %d, want 2048", got)
	}
	if len(tbl.LiveTrees()) != 1 {
		t.Fatalf("trees = %v", tbl.LiveTrees())
	}
	ti := tbl.Trees[0]
	if ti.Tree.NumBuckets() < 8 {
		t.Errorf("expected ≥8 buckets for 2048 rows @128/blk, got %d", ti.Tree.NumBuckets())
	}
	// Every live bucket's block exists in the store.
	for _, b := range ti.LiveBuckets() {
		if !store.Exists(tbl.BlockPath(0, b)) {
			t.Errorf("block %d missing from store", b)
		}
	}
	// Tree metadata persisted.
	raw, err := store.GetBytes("lineitem/meta/tree0")
	if err != nil {
		t.Fatalf("tree metadata not persisted: %v", err)
	}
	decoded, err := tree.Decode(raw, sch)
	if err != nil {
		t.Fatalf("persisted tree corrupt: %v", err)
	}
	if decoded.String() != ti.Tree.String() {
		t.Errorf("persisted tree differs")
	}
}

func TestLoadTwoPhase(t *testing.T) {
	rows := genRows(2048, 2)
	tbl, _ := loadTable(t, rows, LoadOptions{RowsPerBlock: 128, Seed: 1, JoinAttr: 0})
	ti := tbl.Trees[0]
	if ti.Tree.JoinAttr != 0 {
		t.Fatalf("join attr = %d", ti.Tree.JoinAttr)
	}
	if ti.Tree.JoinLevels == 0 {
		t.Errorf("two-phase default should reserve half the levels")
	}
	if tbl.TreeFor(0) != 0 || tbl.TreeFor(1) != -1 {
		t.Errorf("TreeFor wrong: %d %d", tbl.TreeFor(0), tbl.TreeFor(1))
	}
}

func TestRefsPruning(t *testing.T) {
	rows := genRows(4096, 3)
	tbl, _ := loadTable(t, rows, LoadOptions{RowsPerBlock: 128, Seed: 1, JoinAttr: -1})
	all := tbl.Refs(0, nil)
	narrow := tbl.Refs(0, []predicate.Predicate{
		predicate.NewCmp(0, predicate.LT, value.NewInt(500)),
	})
	if len(narrow) >= len(all) {
		t.Errorf("selective predicate should prune blocks: %d vs %d", len(narrow), len(all))
	}
	// Soundness: matching rows only in returned refs.
	matchBuckets := make(map[block.ID]bool)
	for _, ref := range narrow {
		matchBuckets[ref.Bucket] = true
	}
	for _, r := range rows {
		if r[0].Int64() < 500 {
			b := tbl.Trees[0].Tree.Route(r)
			if !matchBuckets[b] {
				t.Fatalf("row with orderkey %d routed to pruned bucket %d", r[0].Int64(), b)
			}
		}
	}
}

func TestAllRefsSpansTrees(t *testing.T) {
	rows := genRows(1024, 4)
	tbl, _ := loadTable(t, rows, LoadOptions{RowsPerBlock: 128, Seed: 1, JoinAttr: -1})
	// Add a second tree and move some buckets into it.
	newTree := twophase.Builder{Schema: sch, JoinAttr: 1, JoinLevels: 2, TotalDepth: 3, Seed: 5}.Build(tbl.SampleRows)
	idx := tbl.AddTree(newTree)
	live := tbl.Trees[0].LiveBuckets()
	var meter cluster.Meter
	if err := tbl.MoveBuckets(0, idx, live[:2], &meter, nil); err != nil {
		t.Fatalf("MoveBuckets: %v", err)
	}
	if got := countRows(t, tbl); got != 1024 {
		t.Fatalf("rows after move = %d, want 1024", got)
	}
	refs := tbl.AllRefs(nil)
	seen := make(map[string]bool)
	rowsSeen := 0
	for _, ref := range refs {
		if seen[ref.Path] {
			t.Fatalf("duplicate ref %s", ref.Path)
		}
		seen[ref.Path] = true
		rowsSeen += ref.Meta.Count
	}
	if rowsSeen != 1024 {
		t.Fatalf("AllRefs covers %d rows, want 1024", rowsSeen)
	}
}

func TestMoveBucketsMetersAndEmits(t *testing.T) {
	rows := genRows(512, 5)
	tbl, _ := loadTable(t, rows, LoadOptions{RowsPerBlock: 64, Seed: 1, JoinAttr: -1})
	newTree := twophase.Builder{Schema: sch, JoinAttr: 0, JoinLevels: 2, TotalDepth: 3, Seed: 6}.Build(tbl.SampleRows)
	idx := tbl.AddTree(newTree)
	var meter cluster.Meter
	emitted := 0
	live := tbl.Trees[0].LiveBuckets()
	moved := 0
	for _, b := range live[:3] {
		moved += tbl.Trees[0].Metas[b].Count
	}
	if err := tbl.MoveBuckets(0, idx, live[:3], &meter, func(tuple.Tuple) { emitted++ }); err != nil {
		t.Fatalf("MoveBuckets: %v", err)
	}
	if emitted != moved {
		t.Errorf("emitted %d rows, want %d", emitted, moved)
	}
	c := meter.Snapshot()
	if int(c.ScanLocal+c.ScanRemote) != moved {
		t.Errorf("scan meter = %v, want %d rows", c.ScanLocal+c.ScanRemote, moved)
	}
	if int(c.RepartRows) != moved {
		t.Errorf("repart meter = %v, want %d", c.RepartRows, moved)
	}
	if tbl.RowsUnder(idx) != moved {
		t.Errorf("destination tree holds %d rows, want %d", tbl.RowsUnder(idx), moved)
	}
	// Moved rows route correctly in the destination tree.
	for _, b := range tbl.Trees[idx].LiveBuckets() {
		blk, _, err := tbl.Store().GetBlock(tbl.BlockPath(idx, b), 0)
		if err != nil {
			t.Fatalf("GetBlock: %v", err)
		}
		for _, r := range blk.Tuples {
			if newTree.Route(r) != b {
				t.Fatalf("moved row in wrong destination bucket")
			}
		}
	}
}

func TestMoveBucketsErrors(t *testing.T) {
	rows := genRows(256, 6)
	tbl, _ := loadTable(t, rows, LoadOptions{RowsPerBlock: 64, Seed: 1, JoinAttr: -1})
	var meter cluster.Meter
	if err := tbl.MoveBuckets(0, 5, []block.ID{0}, &meter, nil); err == nil {
		t.Errorf("bad destination accepted")
	}
	newTree := twophase.Builder{Schema: sch, JoinAttr: 0, JoinLevels: 1, TotalDepth: 2, Seed: 6}.Build(tbl.SampleRows)
	idx := tbl.AddTree(newTree)
	if err := tbl.MoveBuckets(0, idx, []block.ID{9999}, &meter, nil); err == nil {
		t.Errorf("missing bucket accepted")
	}
}

func TestDropTree(t *testing.T) {
	rows := genRows(256, 7)
	tbl, store := loadTable(t, rows, LoadOptions{RowsPerBlock: 64, Seed: 1, JoinAttr: -1})
	if err := tbl.DropTree(0); err == nil {
		t.Fatalf("dropping non-empty tree should fail")
	}
	newTree := twophase.Builder{Schema: sch, JoinAttr: 0, JoinLevels: 2, TotalDepth: 3, Seed: 6}.Build(tbl.SampleRows)
	idx := tbl.AddTree(newTree)
	var meter cluster.Meter
	if err := tbl.MoveBuckets(0, idx, tbl.Trees[0].LiveBuckets(), &meter, nil); err != nil {
		t.Fatalf("MoveBuckets: %v", err)
	}
	if err := tbl.DropTree(0); err != nil {
		t.Fatalf("DropTree after drain: %v", err)
	}
	if store.Exists("lineitem/meta/tree0") {
		t.Errorf("dropped tree metadata still in store")
	}
	if got := tbl.LiveTrees(); len(got) != 1 || got[0] != idx {
		t.Errorf("LiveTrees = %v", got)
	}
	if countRows(t, tbl) != 256 {
		t.Errorf("rows lost through drain+drop")
	}
	if err := tbl.DropTree(0); err == nil {
		t.Errorf("double drop accepted")
	}
}

func TestPrimaryTree(t *testing.T) {
	rows := genRows(512, 8)
	tbl, _ := loadTable(t, rows, LoadOptions{RowsPerBlock: 64, Seed: 1, JoinAttr: -1})
	if tbl.PrimaryTree() != 0 {
		t.Errorf("primary = %d, want 0", tbl.PrimaryTree())
	}
	newTree := twophase.Builder{Schema: sch, JoinAttr: 0, JoinLevels: 2, TotalDepth: 3, Seed: 6}.Build(tbl.SampleRows)
	idx := tbl.AddTree(newTree)
	var meter cluster.Meter
	if err := tbl.MoveBuckets(0, idx, tbl.Trees[0].LiveBuckets(), &meter, nil); err != nil {
		t.Fatalf("MoveBuckets: %v", err)
	}
	if tbl.PrimaryTree() != idx {
		t.Errorf("primary after drain = %d, want %d", tbl.PrimaryTree(), idx)
	}
}

func TestReplaceTreeData(t *testing.T) {
	rows := genRows(1024, 9)
	tbl, _ := loadTable(t, rows, LoadOptions{RowsPerBlock: 128, Seed: 1, JoinAttr: -1})
	newTree := twophase.Builder{Schema: sch, JoinAttr: 2, JoinLevels: 2, TotalDepth: 3, Seed: 4}.Build(tbl.SampleRows)
	var meter cluster.Meter
	if err := tbl.ReplaceTreeData(0, newTree, &meter); err != nil {
		t.Fatalf("ReplaceTreeData: %v", err)
	}
	if countRows(t, tbl) != 1024 {
		t.Fatalf("rows after replace = %d", countRows(t, tbl))
	}
	if tbl.Trees[0].Tree.JoinAttr != 2 {
		t.Errorf("tree not replaced")
	}
	c := meter.Snapshot()
	if int(c.RepartRows) != 1024 {
		t.Errorf("full repartition should write all rows: %v", c.RepartRows)
	}
	// Rows route correctly under the new tree.
	for _, b := range tbl.Trees[0].LiveBuckets() {
		blk, _, err := tbl.Store().GetBlock(tbl.BlockPath(0, b), 0)
		if err != nil {
			t.Fatalf("GetBlock: %v", err)
		}
		for _, r := range blk.Tuples {
			if newTree.Route(r) != b {
				t.Fatalf("row misplaced after replace")
			}
		}
	}
	if err := tbl.ReplaceTreeData(7, newTree, &meter); err == nil {
		t.Errorf("replacing missing tree accepted")
	}
}

func TestZoneMapsMatchDataAfterMoves(t *testing.T) {
	rows := genRows(512, 10)
	tbl, _ := loadTable(t, rows, LoadOptions{RowsPerBlock: 64, Seed: 1, JoinAttr: -1})
	newTree := twophase.Builder{Schema: sch, JoinAttr: 0, JoinLevels: 2, TotalDepth: 3, Seed: 3}.Build(tbl.SampleRows)
	idx := tbl.AddTree(newTree)
	var meter cluster.Meter
	live := tbl.Trees[0].LiveBuckets()
	if err := tbl.MoveBuckets(0, idx, live[:len(live)/2], &meter, nil); err != nil {
		t.Fatalf("MoveBuckets: %v", err)
	}
	for _, ti := range []int{0, idx} {
		for _, b := range tbl.Trees[ti].LiveBuckets() {
			blk, _, err := tbl.Store().GetBlock(tbl.BlockPath(ti, b), 0)
			if err != nil {
				t.Fatalf("GetBlock: %v", err)
			}
			meta := tbl.Trees[ti].Metas[b]
			if meta.Count != blk.Len() {
				t.Errorf("meta count %d != block %d", meta.Count, blk.Len())
			}
			for col := 0; col < sch.NumCols(); col++ {
				if value.Compare(meta.Mins[col], blk.Min(col)) != 0 ||
					value.Compare(meta.Maxs[col], blk.Max(col)) != 0 {
					t.Errorf("tree %d bucket %d col %d zone map stale", ti, b, col)
				}
			}
		}
	}
}
