// Package core implements the AdaptDB storage manager: tables whose rows
// live in data blocks on the distributed store, organized by one or more
// partitioning trees (§2). A table normally has a single tree; during
// smooth repartitioning (§5.2) it temporarily holds several — one per
// join attribute — and every row lives in exactly one tree.
package core

import (
	"fmt"
	"sort"

	"adaptdb/internal/block"
	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
	"adaptdb/internal/sample"
	"adaptdb/internal/schema"
	"adaptdb/internal/tree"
	"adaptdb/internal/tuple"
	"adaptdb/internal/twophase"
	"adaptdb/internal/upfront"
)

// TreeInfo pairs a partitioning tree with the live-bucket metadata
// (tuple counts and zone maps — the paper keeps Ranget per block in the
// tree).
type TreeInfo struct {
	Tree  *tree.Tree
	Metas map[block.ID]block.Meta
}

// Rows returns the number of rows held under this tree (|T| in the
// Fig. 11 algorithm).
func (ti *TreeInfo) Rows() int {
	n := 0
	for _, m := range ti.Metas {
		n += m.Count
	}
	return n
}

// LiveBuckets returns the bucket IDs that actually hold data, sorted.
func (ti *TreeInfo) LiveBuckets() []block.ID {
	out := make([]block.ID, 0, len(ti.Metas))
	for b := range ti.Metas {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Table is a relation managed by AdaptDB.
type Table struct {
	Name   string
	Schema *schema.Schema
	// Trees is indexed by tree ID; removed trees leave a nil slot so
	// block paths stay stable.
	Trees []*TreeInfo
	// SampleRows is the retained data sample used to build new trees
	// ("Sampled records" in the Fig. 2 architecture).
	SampleRows []tuple.Tuple

	store     *dfs.Store
	totalRows int
}

// LoadOptions configures the upfront partitioner run for a table.
type LoadOptions struct {
	// RowsPerBlock is the block-size analogue (64 MB in the paper).
	RowsPerBlock int
	// Depth overrides the computed tree depth when > 0.
	Depth int
	// JoinAttr, when ≥ 0, loads with a two-phase tree on that attribute.
	JoinAttr int
	// JoinLevels is the number of top levels for JoinAttr (default: half
	// the depth, the paper's default).
	JoinLevels int
	// Attrs restricts candidate selection attributes (default: all).
	Attrs []int
	// SampleSize bounds the retained sample (default 2048).
	SampleSize int
	Seed       int64
}

// Load runs the upfront partitioner: samples rows, builds the
// partitioning tree, routes every row to its bucket and writes the
// blocks to the distributed store.
func Load(store *dfs.Store, name string, sch *schema.Schema, rows []tuple.Tuple, opts LoadOptions) (*Table, error) {
	if opts.RowsPerBlock <= 0 {
		opts.RowsPerBlock = 1024
	}
	if opts.SampleSize <= 0 {
		opts.SampleSize = 2048
	}
	depth := opts.Depth
	if depth <= 0 {
		depth = upfront.DepthForBlocks(len(rows), opts.RowsPerBlock)
	}
	res := sample.NewReservoir(opts.SampleSize, opts.Seed)
	for _, r := range rows {
		res.Observe(r)
	}
	smp := append([]tuple.Tuple(nil), res.Sample()...)

	var tr *tree.Tree
	if opts.JoinAttr >= 0 {
		jl := opts.JoinLevels
		if jl <= 0 {
			jl = depth / 2
		}
		tr = twophase.Builder{
			Schema:     sch,
			JoinAttr:   opts.JoinAttr,
			JoinLevels: jl,
			SelAttrs:   opts.Attrs,
			TotalDepth: depth,
			Seed:       opts.Seed,
		}.Build(smp)
	} else {
		tr = upfront.Builder{Schema: sch, Attrs: opts.Attrs, Depth: depth, Seed: opts.Seed}.Build(smp)
	}

	t := &Table{
		Name:       name,
		Schema:     sch,
		SampleRows: smp,
		store:      store,
		totalRows:  len(rows),
	}
	ti := &TreeInfo{Tree: tr, Metas: make(map[block.ID]block.Meta)}
	t.Trees = append(t.Trees, ti)
	parts := upfront.Partition(tr, rows)
	for b, blk := range parts {
		path := t.BlockPath(0, b)
		store.PutBlock(path, blk)
		ti.Metas[b] = block.MetaOf(b, blk)
	}
	t.Persist()
	return t, nil
}

// Store returns the underlying distributed store.
func (t *Table) Store() *dfs.Store { return t.store }

// TotalRows returns the table's row count across all trees.
func (t *Table) TotalRows() int { return t.totalRows }

// BlockPath is the store path of a bucket's block.
func (t *Table) BlockPath(treeIdx int, b block.ID) string {
	return fmt.Sprintf("%s/t%d/b%d", t.Name, treeIdx, b)
}

// treePath is the store path of a tree's serialized metadata.
func (t *Table) treePath(treeIdx int) string {
	return fmt.Sprintf("%s/meta/tree%d", t.Name, treeIdx)
}

// Persist writes every live tree's structure to the store, as the paper
// stores tree metadata on HDFS alongside the data.
func (t *Table) Persist() {
	for i, ti := range t.Trees {
		if ti == nil {
			continue
		}
		t.store.PutBytes(t.treePath(i), ti.Tree.AppendBinary(nil))
	}
}

// LiveTrees returns the indexes of non-removed trees.
func (t *Table) LiveTrees() []int {
	var out []int
	for i, ti := range t.Trees {
		if ti != nil {
			out = append(out, i)
		}
	}
	return out
}

// TreeFor returns the index of the live tree whose join attribute is
// attr, or -1.
func (t *Table) TreeFor(attr int) int {
	for i, ti := range t.Trees {
		if ti != nil && ti.Tree.JoinAttr == attr {
			return i
		}
	}
	return -1
}

// PrimaryTree returns the index of the live tree holding the most rows,
// or -1 when the table is empty.
func (t *Table) PrimaryTree() int {
	best, bestRows := -1, -1
	for i, ti := range t.Trees {
		if ti == nil {
			continue
		}
		if r := ti.Rows(); r > bestRows {
			best, bestRows = i, r
		}
	}
	return best
}

// AddTree registers a new (initially empty) tree and returns its index.
func (t *Table) AddTree(tr *tree.Tree) int {
	t.Trees = append(t.Trees, &TreeInfo{Tree: tr, Metas: make(map[block.ID]block.Meta)})
	idx := len(t.Trees) - 1
	t.Persist()
	return idx
}

// DropTree removes an empty tree. Dropping a tree that still holds rows
// is an error — smooth repartitioning only removes trees once drained
// ("After the dataset finishes repartitioning, the old partitioning tree
// ... is removed", §5.2).
func (t *Table) DropTree(idx int) error {
	if idx < 0 || idx >= len(t.Trees) || t.Trees[idx] == nil {
		return fmt.Errorf("core: no tree %d on %s", idx, t.Name)
	}
	if t.Trees[idx].Rows() != 0 {
		return fmt.Errorf("core: tree %d on %s still holds %d rows", idx, t.Name, t.Trees[idx].Rows())
	}
	t.store.Delete(t.treePath(idx))
	t.Trees[idx] = nil
	return nil
}

// BlockRef identifies one readable block of a table for the executor.
type BlockRef struct {
	Table   string
	TreeIdx int
	Bucket  block.ID
	Path    string
	Meta    block.Meta
}

// JoinRange returns the block's zone-map interval on the given column.
func (r BlockRef) JoinRange(col int) predicate.Range { return r.Meta.Range(col) }

// treeAt returns the live tree at idx, or nil when out of range or
// removed.
func (t *Table) treeAt(idx int) *TreeInfo {
	if idx < 0 || idx >= len(t.Trees) {
		return nil
	}
	return t.Trees[idx]
}

// Refs returns the blocks of one tree that may satisfy the predicates:
// the tree lookup (structural pruning) intersected with zone-map
// pruning, sorted by bucket.
func (t *Table) Refs(treeIdx int, preds []predicate.Predicate) []BlockRef {
	ti := t.treeAt(treeIdx)
	if ti == nil {
		return nil
	}
	ranges := predicate.ColumnRanges(preds)
	var out []BlockRef
	for _, b := range ti.Tree.Lookup(preds) {
		meta, live := ti.Metas[b]
		if !live || !meta.MaybeMatches(ranges) {
			continue
		}
		out = append(out, BlockRef{
			Table:   t.Name,
			TreeIdx: treeIdx,
			Bucket:  b,
			Path:    t.BlockPath(treeIdx, b),
			Meta:    meta,
		})
	}
	return out
}

// AllRefs returns matching blocks from every live tree. Because each row
// lives in exactly one tree, the union over trees is a complete,
// non-duplicated scan set.
func (t *Table) AllRefs(preds []predicate.Predicate) []BlockRef {
	var out []BlockRef
	for _, i := range t.LiveTrees() {
		out = append(out, t.Refs(i, preds)...)
	}
	return out
}

// MoveBuckets migrates whole buckets from one tree to another: each
// row is re-routed through the destination tree and appended to its
// bucket's block (HDFS-append semantics; coordination handled by the
// store). The source buckets are deleted. Emit, when non-nil, receives
// every moved row so a query can piggyback its scan on the migration
// (the optimizer's Type-2 blocks, §6). Reads and writes are metered as
// scan + repartition-write.
func (t *Table) MoveBuckets(fromIdx, toIdx int, buckets []block.ID, meter *cluster.Meter, emit func(tuple.Tuple)) error {
	from := t.treeAt(fromIdx)
	to := t.treeAt(toIdx)
	if from == nil || to == nil {
		return fmt.Errorf("core: bad tree pair %d -> %d on %s", fromIdx, toIdx, t.Name)
	}
	touched := make(map[block.ID]bool)
	for _, b := range buckets {
		meta, ok := from.Metas[b]
		if !ok {
			return fmt.Errorf("core: bucket %d not live in tree %d of %s", b, fromIdx, t.Name)
		}
		path := t.BlockPath(fromIdx, b)
		blk, local, err := t.store.GetBlock(path, 0)
		if err != nil {
			return err
		}
		if meter != nil {
			meter.AddScan(blk.Len(), local)
			meter.AddRepartWrite(blk.Len())
		}
		byDest := make(map[block.ID][]tuple.Tuple)
		for _, row := range blk.Tuples {
			dest := to.Tree.Route(row)
			byDest[dest] = append(byDest[dest], row)
			if emit != nil {
				emit(row)
			}
		}
		for dest, rows := range byDest {
			t.store.Append(t.BlockPath(toIdx, dest), t.Schema, rows)
			touched[dest] = true
		}
		t.store.Delete(path)
		delete(from.Metas, b)
		_ = meta
	}
	// Refresh destination metadata from the stored blocks.
	for dest := range touched {
		blk, _, err := t.store.GetBlock(t.BlockPath(toIdx, dest), 0)
		if err != nil {
			return err
		}
		to.Metas[dest] = block.MetaOf(dest, blk)
	}
	return nil
}

// ReplaceTreeData rewrites one tree in place with a new structure — the
// full-repartitioning baseline (§7.3 "Repartitioning") and Amoeba's
// selection-driven subtree rebuilds both land here. All rows currently
// under tree srcIdx are re-routed through newTree; blocks are rewritten;
// the tree metadata is replaced. Costs are metered as scan +
// repartition-write of everything moved.
func (t *Table) ReplaceTreeData(srcIdx int, newTree *tree.Tree, meter *cluster.Meter) error {
	src := t.treeAt(srcIdx)
	if src == nil {
		return fmt.Errorf("core: no tree %d on %s", srcIdx, t.Name)
	}
	parts := make(map[block.ID]*block.Block)
	for b := range src.Metas {
		path := t.BlockPath(srcIdx, b)
		blk, local, err := t.store.GetBlock(path, 0)
		if err != nil {
			return err
		}
		if meter != nil {
			meter.AddScan(blk.Len(), local)
			meter.AddRepartWrite(blk.Len())
		}
		for _, row := range blk.Tuples {
			dest := newTree.Route(row)
			nb, ok := parts[dest]
			if !ok {
				nb = block.New(t.Schema)
				parts[dest] = nb
			}
			nb.Append(row)
		}
		t.store.Delete(path)
	}
	src.Tree = newTree
	src.Metas = make(map[block.ID]block.Meta)
	for b, blk := range parts {
		t.store.PutBlock(t.BlockPath(srcIdx, b), blk)
		src.Metas[b] = block.MetaOf(b, blk)
	}
	t.Persist()
	return nil
}

// RowsUnder returns the row count currently held by tree idx (0 for
// removed trees).
func (t *Table) RowsUnder(idx int) int {
	if idx < 0 || idx >= len(t.Trees) || t.Trees[idx] == nil {
		return 0
	}
	return t.Trees[idx].Rows()
}
