// endpoint is the per-process networking runtime shared by the
// coordinator and the workers: the connection per peer process, the
// active attempt per qid, and the demux that routes stream frames into
// attempt queues. The demux never blocks — queue depth is bounded by
// the senders' credit windows — so a connection's reader loop is
// always able to drain control traffic even when a consumer is slow.
package net

import (
	"encoding/binary"
	"fmt"
	"sync"
)

type endpoint struct {
	proc   int // my proc id; 0 is the coordinator
	window int

	mu    sync.Mutex
	peers map[int]*conn
	atts  map[uint64]*attempt
	tombs map[uint64]bool // finished/aborted qids: late frames dropped
}

func newEndpoint(proc, window int) *endpoint {
	if window <= 0 {
		window = defaultWindow
	}
	return &endpoint{
		proc:   proc,
		window: window,
		peers:  make(map[int]*conn),
		atts:   make(map[uint64]*attempt),
		tombs:  make(map[uint64]bool),
	}
}

func (ep *endpoint) setPeer(proc int, c *conn) {
	ep.mu.Lock()
	ep.peers[proc] = c
	ep.mu.Unlock()
}

func (ep *endpoint) peerConn(proc int) *conn {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	c := ep.peers[proc]
	if c != nil && c.isDead() {
		return nil
	}
	return c
}

// attemptFor returns the attempt runtime for qid, creating a shell on
// first sight (a data frame can outrun the query message on another
// connection). Tombstoned qids return nil: the attempt is over and its
// frames are discarded.
func (ep *endpoint) attemptFor(qid uint64) *attempt {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.tombs[qid] {
		return nil
	}
	at := ep.atts[qid]
	if at == nil {
		at = newAttempt(ep, qid)
		ep.atts[qid] = at
	}
	return at
}

// retire tombstones a qid and fails its attempt (idempotent), so late
// frames and blocked senders resolve.
func (ep *endpoint) retire(qid uint64, err error) {
	ep.mu.Lock()
	ep.tombs[qid] = true
	at := ep.atts[qid]
	delete(ep.atts, qid)
	ep.mu.Unlock()
	if at != nil {
		if err == nil {
			err = fmt.Errorf("net: attempt %d retired", qid)
		}
		at.fail(err)
	}
}

// peerDied fails every active attempt — the session stream is serial,
// so any in-flight query involved the dead peer's replica or its
// traffic and cannot complete.
func (ep *endpoint) peerDied(proc int, cause error) {
	ep.mu.Lock()
	if c := ep.peers[proc]; c != nil && c.isDead() {
		delete(ep.peers, proc)
	}
	atts := make([]*attempt, 0, len(ep.atts))
	for _, at := range ep.atts {
		atts = append(atts, at)
	}
	ep.mu.Unlock()
	err := &NetError{Msg: fmt.Sprintf("peer died: %v", cause), Peer: proc}
	for _, at := range atts {
		at.fail(err)
	}
}

// sendCredit returns window bytes to a remote producer (best effort —
// if the connection is gone the producer's gates are failing anyway).
func (ep *endpoint) sendCredit(proc int, qid uint64, key streamKey, bytes int) {
	c := ep.peerConn(proc)
	if c == nil {
		return
	}
	p := appendStreamHdr(nil, streamHdr{qid: qid, exch: key.exch, src: key.src, dst: key.dst})
	p = binary.AppendUvarint(p, uint64(bytes))
	c.writeFrame(msgCredit, p)
}

// handleStreamFrame demuxes data/eos/credit frames into the owning
// attempt. Unknown (tombstoned) qids are dropped silently.
func (ep *endpoint) handleStreamFrame(from *conn, typ byte, payload []byte) error {
	h, rest, err := decodeStreamHdr(payload)
	if err != nil {
		return err
	}
	switch typ {
	case msgData:
		at := ep.attemptFor(h.qid)
		if at == nil {
			return nil
		}
		return at.deliverData(from.peer, h, rest)
	case msgEOS:
		at := ep.attemptFor(h.qid)
		if at == nil {
			return nil
		}
		at.queueFor(qkey{h.exch, h.dst}).eosFrom(h.src)
		return nil
	case msgCredit:
		n, k := binary.Uvarint(rest)
		if k <= 0 {
			return fmt.Errorf("net: credit frame: bad byte count")
		}
		ep.mu.Lock()
		at := ep.atts[h.qid] // no shell for credits: unknown qid is stale
		ep.mu.Unlock()
		if at != nil {
			at.gateFor(streamKey{h.exch, h.src, h.dst}).grant(int(n))
		}
		return nil
	}
	return fmt.Errorf("net: unexpected stream frame %s", msgName(typ))
}
