// The worker runtime: one process holding a full deterministic replica
// of the store. On setup it builds the dataset through the process-
// local registry (same generator parameters in every process → byte-
// identical replicas), dials its mesh peers, and reports ready. Each
// query message then replays the session loop deterministically:
// adapt once per stream sequence number (a retry of the same seq never
// re-adapts, so layouts stay in lockstep across processes and across
// failover attempts), compile the identical plan against the worker's
// netFabric view, and run the pumps for the fragments this worker was
// assigned. Execution counters and per-link traffic return to the
// coordinator in the qdone message.
package net

import (
	"context"
	"encoding/json"
	"fmt"
	gonet "net"
	"os"
	"sync"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/query"
)

// DatasetBuilder deterministically builds a store replica and its
// catalog from serialized parameters. Every process of a cluster runs
// the same builder with the same parameters; determinism is the
// replication mechanism — there is no data shipping at setup.
type DatasetBuilder func(params json.RawMessage) (*dfs.Store, query.Catalog, error)

var (
	dsMu       sync.Mutex
	dsRegistry = map[string]DatasetBuilder{}
)

// RegisterDataset registers a named deterministic dataset builder.
// Binaries and test mains must register their datasets before
// MaybeWorker, so re-exec'd worker processes can build their replicas.
func RegisterDataset(name string, build DatasetBuilder) {
	dsMu.Lock()
	defer dsMu.Unlock()
	dsRegistry[name] = build
}

func datasetFor(name string) (DatasetBuilder, error) {
	dsMu.Lock()
	defer dsMu.Unlock()
	b, ok := dsRegistry[name]
	if !ok {
		return nil, fmt.Errorf("net: dataset %q not registered in this process", name)
	}
	return b, nil
}

// worker is one worker process's runtime.
type worker struct {
	proc  int
	ep    *endpoint
	coord *conn
	ln    gonet.Listener
	ka    time.Duration

	setup setupMsg
	ex    *exec.Executor // template executor over the replica store
	cat   query.Catalog
	opt   *optimizer.Optimizer
	spill string

	lastSeq int
	queryCh chan queryMsg
	closing chan struct{}
	meshKA  sync.Once
}

// RunWorker connects to a coordinator and serves queries until the
// coordinator connection dies. It is the blocking body of a worker
// process (spawned via SpawnWorkers/MaybeWorker) or an in-process
// worker goroutine in tests.
func RunWorker(coordAddr string, proc int) error {
	w := &worker{proc: proc, lastSeq: -1, queryCh: make(chan queryMsg, 16), closing: make(chan struct{})}
	defer w.cleanup()

	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("net: worker %d: listen: %w", proc, err)
	}
	w.ln = ln

	nc, err := gonet.Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("net: worker %d: dial coordinator: %w", proc, err)
	}
	c := newConn(nc, 0) // keepalive configured by setup
	c.peer = 0
	w.coord = c
	if err := c.writeJSON(msgHello, helloMsg{Proc: proc, Addr: ln.Addr().String()}); err != nil {
		return err
	}

	// The setup frame arrives before the endpoint exists; read it
	// synchronously, then start the demux loops.
	typ, payload, _, err := c.readFrame(nil)
	if err != nil {
		return fmt.Errorf("net: worker %d: await setup: %w", proc, err)
	}
	if typ != msgSetup {
		return fmt.Errorf("net: worker %d: expected setup, got %s", proc, msgName(typ))
	}
	if err := json.Unmarshal(payload, &w.setup); err != nil {
		return fmt.Errorf("net: worker %d: decode setup: %w", proc, err)
	}
	w.ka = time.Duration(w.setup.KeepAliveMs) * time.Millisecond
	w.ep = newEndpoint(proc, w.setup.Window)
	w.ep.setPeer(0, c)

	if err := w.buildReplica(); err != nil {
		// Report the failure so the coordinator surfaces it instead of
		// timing out on a missing ready.
		c.writeJSON(msgQErr, qerrMsg{Msg: err.Error()})
		return err
	}
	go w.acceptLoop()
	if err := w.dialPeers(); err != nil {
		c.writeJSON(msgQErr, qerrMsg{Msg: err.Error()})
		return err
	}
	if err := c.writeFrame(msgReady, nil); err != nil {
		return err
	}
	// Keepalive starts only after ready: replica builds are silent and
	// can outlast the ping deadline, so the build phase runs without
	// read deadlines on both ends of the coordinator link.
	c.enableKeepAlive(w.ka)

	go w.queryLoop()
	c.serve(w.handleFrame(c), func(err error) {
		w.ep.peerDied(0, err)
		close(w.closing)
	})
	return nil
}

func (w *worker) cleanup() {
	if w.ln != nil {
		w.ln.Close()
	}
	// Drop every mesh/coordinator connection so their reader and pinger
	// goroutines exit with the worker.
	if w.ep != nil {
		w.ep.mu.Lock()
		conns := make([]*conn, 0, len(w.ep.peers))
		for _, c := range w.ep.peers {
			conns = append(conns, c)
		}
		w.ep.mu.Unlock()
		for _, c := range conns {
			c.die(fmt.Errorf("net: worker %d shutting down", w.proc))
		}
	}
	if w.spill != "" {
		os.RemoveAll(w.spill)
	}
}

// buildReplica builds the store, catalog, template executor and
// optimizer from the setup's dataset parameters.
func (w *worker) buildReplica() error {
	build, err := datasetFor(w.setup.Dataset)
	if err != nil {
		return err
	}
	store, cat, err := build(w.setup.Params)
	if err != nil {
		return fmt.Errorf("net: worker %d: build dataset %q: %w", w.proc, w.setup.Dataset, err)
	}
	if store.NumNodes() != w.setup.N {
		return fmt.Errorf("net: worker %d: dataset has %d nodes, setup says %d", w.proc, store.NumNodes(), w.setup.N)
	}
	w.cat = cat
	cfg := w.setup.Exec
	ex := exec.New(store, &cluster.Meter{})
	ex.Workers = cfg.Workers
	w.ex = ex
	w.opt = optimizer.New(optimizer.Config{
		Mode:         optimizer.Mode(cfg.Optimizer.Mode),
		WindowSize:   cfg.Optimizer.WindowSize,
		FMin:         cfg.Optimizer.FMin,
		EnableAmoeba: cfg.Optimizer.Amoeba,
		Seed:         cfg.Optimizer.Seed,
	})
	dir, err := os.MkdirTemp("", fmt.Sprintf("adaptdb-net-w%d-", w.proc))
	if err != nil {
		return err
	}
	w.spill = dir
	return nil
}

// acceptLoop accepts mesh connections from higher-numbered peers.
func (w *worker) acceptLoop() {
	for {
		nc, err := w.ln.Accept()
		if err != nil {
			return
		}
		c := newConn(nc, 0) // keepalive deferred until the first query
		go func() {
			// The first frame must identify the dialer.
			typ, payload, _, err := c.readFrame(nil)
			if err != nil || typ != msgHello {
				c.die(fmt.Errorf("net: mesh accept: bad hello"))
				return
			}
			var h helloMsg
			if json.Unmarshal(payload, &h) != nil {
				c.die(fmt.Errorf("net: mesh accept: bad hello"))
				return
			}
			c.peer = h.Proc
			w.ep.setPeer(h.Proc, c)
			c.serve(w.handleFrame(c), func(err error) { w.ep.peerDied(h.Proc, err) })
		}()
	}
}

// dialPeers establishes the mesh: worker i dials every lower-numbered
// worker (one connection per pair; the lower side accepts).
func (w *worker) dialPeers() error {
	for proc, addr := range w.setup.Procs {
		if proc >= w.proc {
			continue
		}
		if err := w.dialPeer(proc, addr); err != nil {
			return err
		}
	}
	return nil
}

func (w *worker) dialPeer(proc int, addr string) error {
	nc, err := gonet.Dial("tcp", addr)
	if err != nil {
		return &NetError{Msg: fmt.Sprintf("dial peer: %v", err), Peer: proc}
	}
	c := newConn(nc, 0) // keepalive deferred until the first query
	c.peer = proc
	if err := c.writeJSON(msgHello, helloMsg{Proc: w.proc}); err != nil {
		return &NetError{Msg: err.Error(), Peer: proc}
	}
	w.ep.setPeer(proc, c)
	go c.serve(w.handleFrame(c), func(err error) { w.ep.peerDied(proc, err) })
	return nil
}

// handleFrame demuxes one connection's frames into the worker.
func (w *worker) handleFrame(c *conn) func(typ byte, payload []byte) error {
	return func(typ byte, payload []byte) error {
		switch typ {
		case msgData, msgEOS, msgCredit:
			return w.ep.handleStreamFrame(c, typ, payload)
		case msgQuery:
			var qm queryMsg
			if err := json.Unmarshal(payload, &qm); err != nil {
				return fmt.Errorf("net: decode query: %w", err)
			}
			select {
			case w.queryCh <- qm:
			case <-w.closing:
			}
			return nil
		case msgAbort:
			var am abortMsg
			if err := json.Unmarshal(payload, &am); err != nil {
				return fmt.Errorf("net: decode abort: %w", err)
			}
			w.ep.retire(am.QID, &NetError{Msg: "attempt aborted by coordinator", Peer: -1})
			return nil
		default:
			return fmt.Errorf("net: worker %d: unexpected frame %s", w.proc, msgName(typ))
		}
	}
}

// queryLoop runs dispatched attempts serially, in arrival order — the
// session stream is serial, so at most one attempt is live; running
// them on one goroutine also serializes adaptation.
func (w *worker) queryLoop() {
	for {
		select {
		case <-w.closing:
			return
		case qm := <-w.queryCh:
			// A dispatched query means every worker reported ready, so
			// all mesh ends are serving — safe to start ping deadlines.
			w.meshKA.Do(w.enableMeshKeepAlive)
			w.runQuery(qm)
		}
	}
}

// report sends the attempt outcome to the coordinator.
func (w *worker) report(qid uint64, counters cluster.Counters, links cluster.LinkStats, err error) {
	if err != nil {
		w.coord.writeJSON(msgQErr, qerrMsg{QID: qid, Msg: err.Error(), Net: IsNetError(err)})
		return
	}
	w.coord.writeJSON(msgQDone, qdoneMsg{QID: qid, Counters: counters, Links: linksToRecs(links)})
}

// runQuery executes one attempt end to end.
func (w *worker) runQuery(qm queryMsg) {
	at := w.ep.attemptFor(qm.QID)
	if at == nil {
		return // aborted before we dequeued it
	}
	counters, links, err := w.attemptRun(qm, at)
	w.ep.retire(qm.QID, fmt.Errorf("net: attempt %d finished", qm.QID))
	// An aborted attempt reports its abort error; the coordinator has
	// tombstoned the qid and discards the stale report.
	w.report(qm.QID, counters, links, err)
}

func (w *worker) attemptRun(qm queryMsg, at *attempt) (cluster.Counters, cluster.LinkStats, error) {
	var zero cluster.Counters
	if f := qm.Fault; f != nil && f.Proc == w.proc {
		w.armFault(f)
	}

	// Bind against this replica's catalog; identical spec + identical
	// catalog → identical bound query in every process.
	bound, err := qm.Spec.Bind(w.cat)
	if err != nil {
		return zero, nil, fmt.Errorf("net: worker %d: bind: %w", w.proc, err)
	}

	// Adapt exactly once per stream sequence number (a failover retry
	// reuses its seq and must not re-adapt). The adaptation meter is
	// discarded: the coordinator's own replica meters migration I/O
	// into the query's counters — once, not once per process.
	if qm.Seq > w.lastSeq {
		if _, err := w.opt.OnQuery(bound.Uses(), &cluster.Meter{}); err != nil {
			return zero, nil, fmt.Errorf("net: worker %d: adapt: %w", w.proc, err)
		}
		w.lastSeq = qm.Seq
	}

	// A worker with no assigned fragments only adapts.
	mine := 0
	for _, p := range qm.Assign {
		if p == w.proc {
			mine++
		}
	}
	if mine == 0 {
		return zero, nil, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-at.done
		cancel()
	}()

	// Per-query executor view: own meter, own budget (split per
	// fragment by EnableNodes), own spill dir, own node set.
	qmeter := &cluster.Meter{}
	qmeter.SetLinkWeights(recsToWeights(qm.Weights))
	qex := w.ex.ForQuery(exec.QueryCtx{
		Ctx:            ctx,
		Meter:          qmeter,
		Mem:            exec.NewMemBudget(w.setup.Exec.MemBudget),
		SpillDir:       w.spill,
		Workers:        w.setup.Exec.Workers,
		Distributed:    true,
		WorkersPerNode: w.setup.Exec.WorkersPerNode,
	})

	fb, err := newNetFabric(w.ep, at, qex, qm.Assign)
	if err != nil {
		return zero, nil, err
	}
	runner := w.newRunner(qex, recsToWeights(qm.Weights))
	qex.SetFabric(fb)
	_, err = runner.CompileSpec(bound)
	qex.SetFabric(nil)
	if err != nil {
		return zero, nil, fmt.Errorf("net: worker %d: compile: %w", w.proc, err)
	}

	fb.Run(ctx)
	err = fb.Wait()
	if ns := qex.Nodes(); ns != nil {
		ns.Flush()
	}
	counters := qmeter.Reset()
	links := qmeter.ResetLinks()
	if err == nil {
		err = at.failure() // an abort or peer death is the attempt's error
	}
	if err != nil {
		return zero, nil, err
	}
	return counters, links, nil
}

// newRunner replicates the planner configuration every process must
// share for identical compiles.
func (w *worker) newRunner(qex *exec.Executor, lw cluster.LinkWeights) *planner.Runner {
	cfg := w.setup.Exec
	r := planner.NewRunner(qex, cfg.Model)
	if cfg.BudgetBlocks > 0 {
		r.BudgetBlocks = cfg.BudgetBlocks
	}
	r.ForceShuffle = cfg.ForceShuffle
	r.FixedOrder = cfg.FixedOrder
	r.EstScale = cfg.EstScale
	r.LinkWeights = lw
	return r
}

// enableMeshKeepAlive arms ping deadlines on the mesh connections.
// Deferred until the first query: during setup a dialed peer may still
// be building its replica and would miss the ping deadline.
func (w *worker) enableMeshKeepAlive() {
	w.ep.mu.Lock()
	conns := make([]*conn, 0, len(w.ep.peers))
	for proc, c := range w.ep.peers {
		if proc != 0 { // the coordinator link is enabled at ready
			conns = append(conns, c)
		}
	}
	w.ep.mu.Unlock()
	for _, c := range conns {
		c.enableKeepAlive(w.ka)
	}
}

// armFault installs a query's fault plan on this process's
// connections (all of them, or just the one toward Fault.Peer).
func (w *worker) armFault(f *FaultPlan) {
	w.ep.mu.Lock()
	defer w.ep.mu.Unlock()
	for proc, c := range w.ep.peers {
		if f.Peer >= 0 && proc != f.Peer {
			continue
		}
		c.arm(f, w.killSelf)
	}
}

// killSelf is the kill fault: a real worker process exits mid-write;
// an in-process worker emulates node death by dropping every
// connection abruptly — peers see resets, the coordinator fails the
// attempt over to a replica, exactly as with a true process death.
func (w *worker) killSelf() {
	if realWorkerProcess {
		os.Exit(1)
	}
	w.ep.mu.Lock()
	conns := make([]*conn, 0, len(w.ep.peers))
	for _, c := range w.ep.peers {
		conns = append(conns, c)
	}
	w.ep.mu.Unlock()
	for _, c := range conns {
		abruptClose(c)
	}
	w.ln.Close()
}
