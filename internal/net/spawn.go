// Worker process lifecycle. A cluster spawns workers by re-executing
// its own binary with ADAPTDB_NET_WORKER set; the child's main (or
// TestMain) calls MaybeWorker after registering its datasets and never
// returns. Tests that don't need real process isolation run workers as
// goroutines instead — same sockets, same protocol, no exec.
package net

import (
	"fmt"
	"os"
	osexec "os/exec"
	"strconv"
	"strings"
	"time"
)

// WorkerEnv is the environment variable that turns a process into a
// worker: "coordinatorAddr|procID".
const WorkerEnv = "ADAPTDB_NET_WORKER"

// realWorkerProcess is true in a re-exec'd worker process — the kill
// fault then genuinely exits the process.
var realWorkerProcess bool

// MaybeWorker turns the current process into a worker when WorkerEnv
// is set: it runs the worker loop and exits, never returning to the
// caller. Call it from main/TestMain after RegisterDataset.
func MaybeWorker() {
	v := os.Getenv(WorkerEnv)
	if v == "" {
		return
	}
	addr, procStr, ok := strings.Cut(v, "|")
	proc := 0
	if ok {
		proc, _ = strconv.Atoi(procStr)
	}
	if !ok || addr == "" || proc < 1 {
		fmt.Fprintf(os.Stderr, "adaptdb worker: bad %s=%q\n", WorkerEnv, v)
		os.Exit(2)
	}
	realWorkerProcess = true
	if err := RunWorker(addr, proc); err != nil {
		fmt.Fprintf(os.Stderr, "adaptdb worker %d: %v\n", proc, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnedWorker is the coordinator's handle on one launched worker.
type spawnedWorker struct {
	proc int
	cmd  *osexec.Cmd // nil for an in-process worker
	done chan struct{}
}

// launchWorker starts worker proc: a goroutine running RunWorker when
// inProcess, otherwise a re-exec of this binary with WorkerEnv set.
func launchWorker(coordAddr string, proc int, inProcess bool) (*spawnedWorker, error) {
	sw := &spawnedWorker{proc: proc, done: make(chan struct{})}
	if inProcess {
		go func() {
			defer close(sw.done)
			RunWorker(coordAddr, proc)
		}()
		return sw, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("net: locate executable for worker re-exec: %w", err)
	}
	cmd := osexec.Command(exe)
	cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%s|%d", WorkerEnv, coordAddr, proc))
	cmd.Stdout = os.Stderr // a worker never owns the parent's stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("net: spawn worker %d: %w", proc, err)
	}
	sw.cmd = cmd
	go func() {
		defer close(sw.done)
		cmd.Wait()
	}()
	return sw, nil
}

// stop terminates the worker (kill for a process; an in-process worker
// winds down when its coordinator connection dies) and waits briefly
// for it to finish.
func (sw *spawnedWorker) stop() {
	if sw.cmd != nil && sw.cmd.Process != nil {
		sw.cmd.Process.Kill()
	}
	select {
	case <-sw.done:
	case <-time.After(5 * time.Second):
	}
}

// Kill force-terminates one worker by proc id — the test wall's
// external node-death hook for spawned processes (in-process tests use
// the kill fault instead).
func (c *Cluster) Kill(proc int) {
	for _, sw := range c.procs {
		if sw.proc == proc && sw.cmd != nil && sw.cmd.Process != nil {
			sw.cmd.Process.Kill()
		}
	}
}
