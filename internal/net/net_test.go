// End-to-end tests of the TCP fabric: a session over real sockets must
// be bit-identical to the same stream over the in-process simulated
// fabric, at every node count, with and without worker death.
package net_test

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"testing"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/exec"
	adbnet "adaptdb/internal/net"
	"adaptdb/internal/net/datasets"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/query"
	"adaptdb/internal/session"
	"adaptdb/internal/tpch"
	"adaptdb/internal/tuple"
)

func TestMain(m *testing.M) {
	datasets.Register()
	adbnet.MaybeWorker() // re-exec'd worker processes never return from this
	os.Exit(m.Run())
}

// rowsChecksum is the order-independent result digest (the serve-layer
// convention): the sum of per-row 64-bit FNV-1a hashes. Gather arrival
// order is nondeterministic on both fabrics, so digests must not
// depend on it.
func rowsChecksum(rows []tuple.Tuple) uint64 {
	var sum uint64
	var scratch []byte
	for _, r := range rows {
		scratch = r.AppendBinary(scratch[:0])
		h := fnv.New64a()
		h.Write(scratch)
		sum += h.Sum64()
	}
	return sum
}

// shiftSchedule is a compressed §7.3 join-attribute shift: orderkey
// phase (q5/q3) then partkey phase (q8/q14).
func shiftSchedule(n int) []tpch.Template {
	var out []tpch.Template
	for i := 0; i < n; i++ {
		out = append(out, []tpch.Template{tpch.Q5, tpch.Q3}[i%2])
	}
	for i := 0; i < n; i++ {
		out = append(out, []tpch.Template{tpch.Q8, tpch.Q14}[i%2])
	}
	return out
}

const (
	testSF   = 0.01
	testRPB  = 128
	testSeed = 42
)

func testParams(nodes int) datasets.TPCHParams {
	return datasets.TPCHParams{SF: testSF, RowsPerBlock: testRPB, Nodes: nodes, Seed: testSeed}
}

func testModel(nodes int) cluster.CostModel {
	m := cluster.Default()
	m.Nodes = nodes
	return m
}

// startTPCH starts a cluster and builds the coordinator's session over
// its own replica of the same dataset.
func startTPCH(t *testing.T, workers, nodes int, inProcess bool) (*adbnet.Cluster, *session.Session, query.Catalog, *tpch.Dataset) {
	t.Helper()
	p := testParams(nodes)
	cl, err := adbnet.Start(adbnet.Options{
		Workers:   workers,
		Fragments: nodes,
		Dataset:   datasets.TPCHName,
		Params:    p,
		Exec: adbnet.ExecConfig{
			Model:     testModel(nodes),
			Optimizer: adbnet.OptimizerConfig{Mode: int(optimizer.ModeAdaptive), WindowSize: 5, Seed: testSeed},
		},
		InProcess: inProcess,
		KeepAlive: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	store, data, tables, err := datasets.BuildTPCH(p)
	if err != nil {
		t.Fatalf("build coordinator replica: %v", err)
	}
	s := session.New(store, session.Config{
		Model:     testModel(nodes),
		Optimizer: optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 5, Seed: testSeed},
		Net:       cl,
	})
	return cl, s, tables.Catalog(), data
}

// simDigests replays the schedule over the in-process simulated fabric
// (a fresh identical store) — the oracle every TCP run must match.
func simDigests(t *testing.T, nodes int, schedule []tpch.Template) []uint64 {
	t.Helper()
	store, data, tables, err := datasets.BuildTPCH(testParams(nodes))
	if err != nil {
		t.Fatalf("build sim replica: %v", err)
	}
	s := session.New(store, session.Config{
		Model:       testModel(nodes),
		Optimizer:   optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 5, Seed: testSeed},
		Distributed: nodes > 1,
	})
	cat := tables.Catalog()
	rng := rand.New(rand.NewSource(testSeed))
	out := make([]uint64, 0, len(schedule))
	for qi, tpl := range schedule {
		q, err := session.FromSpec(cat, tpch.NewInstance(tpl, data, rng).Spec())
		if err != nil {
			t.Fatalf("sim q%d (%s): %v", qi, tpl, err)
		}
		res, err := s.Execute(q)
		if err != nil {
			t.Fatalf("sim q%d (%s): %v", qi, tpl, err)
		}
		out = append(out, rowsChecksum(res.Rows))
	}
	return out
}

// TestTCPSessionMatchesSim is the tentpole assertion: the adaptive
// TPC-H stream over real sockets is bit-identical to the simulated
// fabric at 1, 4, and 8 fragments.
func TestTCPSessionMatchesSim(t *testing.T) {
	defer exec.VerifyNoLeaks(t)
	schedule := shiftSchedule(3)
	for _, nodes := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			want := simDigests(t, nodes, schedule)
			cl, s, cat, data := startTPCH(t, nodes, nodes, true)
			rng := rand.New(rand.NewSource(testSeed))
			for qi, tpl := range schedule {
				q, err := session.FromSpec(cat, tpch.NewInstance(tpl, data, rng).Spec())
				if err != nil {
					t.Fatalf("tcp q%d (%s): %v", qi, tpl, err)
				}
				res, err := s.Execute(q)
				if err != nil {
					t.Fatalf("tcp q%d (%s): %v", qi, tpl, err)
				}
				if got := rowsChecksum(res.Rows); got != want[qi] {
					t.Fatalf("q%d (%s): tcp checksum %016x != sim %016x (%d rows)", qi, tpl, got, want[qi], res.RowCount)
				}
			}
			if live := cl.LiveWorkers(); live != nodes {
				t.Fatalf("expected %d live workers, have %d", nodes, live)
			}
		})
	}
}

// TestTCPFailover kills a worker mid-query (the kill fault on its Nth
// data frame) and asserts the query still completes — on a surviving
// replica — with the simulated fabric's exact checksum.
func TestTCPFailover(t *testing.T) {
	defer exec.VerifyNoLeaks(t)
	const nodes = 4
	schedule := []tpch.Template{tpch.Q5, tpch.Q3, tpch.Q5}
	want := simDigests(t, nodes, schedule)

	cl, s, cat, data := startTPCH(t, nodes, nodes, true)
	rng := rand.New(rand.NewSource(testSeed))
	for qi, tpl := range schedule {
		if qi == 1 {
			// Worker 2 dies on its 2nd data frame of this query.
			cl.ArmFault(&adbnet.FaultPlan{Proc: 2, Peer: -1, Msg: "data", After: 2, Kind: adbnet.FaultKill})
		}
		q, err := session.FromSpec(cat, tpch.NewInstance(tpl, data, rng).Spec())
		if err != nil {
			t.Fatalf("q%d (%s): %v", qi, tpl, err)
		}
		res, err := s.Execute(q)
		if err != nil {
			t.Fatalf("q%d (%s): %v", qi, tpl, err)
		}
		if got := rowsChecksum(res.Rows); got != want[qi] {
			t.Fatalf("q%d (%s): checksum %016x != sim %016x (%d rows)", qi, tpl, got, want[qi], res.RowCount)
		}
	}
	if live := cl.LiveWorkers(); live != nodes-1 {
		t.Fatalf("expected %d live workers after the kill, have %d", nodes-1, live)
	}
	cl.Close() // before the deferred leak check (t.Cleanup runs after it)
}

// TestTCPRealProcesses runs the differential through genuinely spawned
// worker processes — the re-exec path CI's smoke job drives.
func TestTCPRealProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	defer exec.VerifyNoLeaks(t)
	const nodes = 4
	schedule := []tpch.Template{tpch.Q5, tpch.Q3}
	want := simDigests(t, nodes, schedule)
	cl, s, cat, data := startTPCH(t, nodes, nodes, false)
	rng := rand.New(rand.NewSource(testSeed))
	for qi, tpl := range schedule {
		q, err := session.FromSpec(cat, tpch.NewInstance(tpl, data, rng).Spec())
		if err != nil {
			t.Fatalf("q%d (%s): %v", qi, tpl, err)
		}
		res, err := s.Execute(q)
		if err != nil {
			t.Fatalf("q%d (%s): %v", qi, tpl, err)
		}
		if got := rowsChecksum(res.Rows); got != want[qi] {
			t.Fatalf("q%d (%s): tcp checksum %016x != sim %016x", qi, tpl, got, want[qi])
		}
	}
	cl.Close() // before the deferred leak check (t.Cleanup runs after it)
}

// startSweep is startTPCH with tight memory budgets (so spill paths run
// under the faults too) and an observable coordinator spill dir.
func startSweep(t *testing.T, workers, nodes int) (*adbnet.Cluster, *session.Session, query.Catalog, *tpch.Dataset) {
	t.Helper()
	const memBudget = 1 << 20
	p := testParams(nodes)
	cl, err := adbnet.Start(adbnet.Options{
		Workers:   workers,
		Fragments: nodes,
		Dataset:   datasets.TPCHName,
		Params:    p,
		Exec: adbnet.ExecConfig{
			Model:     testModel(nodes),
			MemBudget: memBudget,
			Optimizer: adbnet.OptimizerConfig{Mode: int(optimizer.ModeAdaptive), WindowSize: 5, Seed: testSeed},
		},
		InProcess: true,
		KeepAlive: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	store, data, tables, err := datasets.BuildTPCH(p)
	if err != nil {
		t.Fatalf("build coordinator replica: %v", err)
	}
	s := session.New(store, session.Config{
		Model:     testModel(nodes),
		Optimizer: optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 5, Seed: testSeed},
		MemBudget: memBudget,
		SpillDir:  t.TempDir(),
		Net:       cl,
	})
	return cl, s, tables.Catalog(), data
}

// TestTCPFaultSweep drives every fault kind through every protocol
// point (the Nth data / eos / credit / qdone frame a worker writes
// toward the coordinator) and pins the fault contract: each injected
// fault either surfaces an error or the query transparently retries on
// a replica with the simulated fabric's exact checksum — and after
// every successful query the coordinator's memory budget is fully
// released and its spill dir is empty. A clean query closes each sweep
// to prove the cluster still works on the survivors.
func TestTCPFaultSweep(t *testing.T) {
	defer exec.VerifyNoLeaks(t)
	const (
		nodes   = 4
		workers = 5 // one spare beyond the four fault targets
	)
	schedule := []tpch.Template{tpch.Q5, tpch.Q3, tpch.Q14, tpch.Q5, tpch.Q3}
	want := simDigests(t, nodes, schedule)
	points := []struct {
		msg   string
		after int
	}{{"data", 2}, {"eos", 1}, {"credit", 1}, {"qdone", 1}}

	for _, kind := range []string{adbnet.FaultReset, adbnet.FaultPartial, adbnet.FaultStall, adbnet.FaultKill} {
		t.Run(kind, func(t *testing.T) {
			cl, s, cat, data := startSweep(t, workers, nodes)
			spill := s.Executor().SpillDir
			rng := rand.New(rand.NewSource(testSeed))
			for qi, tpl := range schedule {
				if qi < len(points) {
					cl.ArmFault(&adbnet.FaultPlan{
						Proc: qi + 1, Peer: 0,
						Msg: points[qi].msg, After: points[qi].after, Kind: kind,
					})
				}
				q, err := session.FromSpec(cat, tpch.NewInstance(tpl, data, rng).Spec())
				if err != nil {
					t.Fatalf("q%d (%s): %v", qi, tpl, err)
				}
				res, err := s.Execute(q)
				if err != nil {
					// A surfaced error is an accepted outcome for an
					// injected fault — never for the closing clean query.
					if qi >= len(points) {
						t.Fatalf("clean query after the sweep failed: %v", err)
					}
					t.Logf("q%d %s@%s: surfaced: %v", qi, kind, points[qi].msg, err)
					continue
				}
				if got := rowsChecksum(res.Rows); got != want[qi] {
					t.Fatalf("q%d (%s): checksum %016x != sim %016x", qi, tpl, got, want[qi])
				}
				if used := s.Executor().Mem.Used(); used != 0 {
					t.Fatalf("q%d: %d bytes still charged to the memory budget", qi, used)
				}
				if ents, err := os.ReadDir(spill); err != nil || len(ents) != 0 {
					t.Fatalf("q%d: spill dir not empty after query: %d entries (%v)", qi, len(ents), err)
				}
			}
			cl.Close() // before the parent's deferred leak check
		})
	}
}

// TestTCPFewerWorkersThanFragments covers the round-robin assignment:
// 8 fragments over 3 workers.
func TestTCPFewerWorkersThanFragments(t *testing.T) {
	defer exec.VerifyNoLeaks(t)
	const nodes = 8
	schedule := []tpch.Template{tpch.Q3, tpch.Q14}
	want := simDigests(t, nodes, schedule)
	cl, s, cat, data := startTPCH(t, 3, nodes, true)
	rng := rand.New(rand.NewSource(testSeed))
	for qi, tpl := range schedule {
		q, err := session.FromSpec(cat, tpch.NewInstance(tpl, data, rng).Spec())
		if err != nil {
			t.Fatalf("q%d: %v", qi, err)
		}
		res, err := s.Execute(q)
		if err != nil {
			t.Fatalf("q%d (%s): %v", qi, tpl, err)
		}
		if got := rowsChecksum(res.Rows); got != want[qi] {
			t.Fatalf("q%d (%s): checksum %016x != sim %016x", qi, tpl, got, want[qi])
		}
	}
	cl.Close() // before the deferred leak check (t.Cleanup runs after it)
}
