// Package datasets holds the deterministic dataset builders shared by
// every process of a TCP cluster. Replication in internal/net is
// determinism, not data shipping: the coordinator and each worker run
// the same builder with the same parameters and get byte-identical
// store replicas. Binaries and test mains call Register (then
// net.MaybeWorker) so re-exec'd worker processes can rebuild them.
package datasets

import (
	"encoding/json"
	"fmt"

	"adaptdb/internal/dfs"
	adbnet "adaptdb/internal/net"
	"adaptdb/internal/query"
	"adaptdb/internal/tpch"
)

// TPCHName is the registry name of the TPC-H builder.
const TPCHName = "tpch"

// TPCHParams parameterizes one deterministic TPC-H replica.
type TPCHParams struct {
	SF           float64
	RowsPerBlock int
	Nodes        int
	Seed         int64
}

// BuildTPCH builds the replica: generate the micro TPC-H dataset from
// the seed, load it over a fresh nodes-wide store.
func BuildTPCH(p TPCHParams) (*dfs.Store, *tpch.Dataset, *tpch.Tables, error) {
	if p.Nodes < 1 || p.SF <= 0 || p.RowsPerBlock < 1 {
		return nil, nil, nil, fmt.Errorf("datasets: bad tpch params %+v", p)
	}
	store := dfs.NewStore(p.Nodes, 2, p.Seed)
	data := tpch.Generate(p.SF, p.Seed)
	tables, err := tpch.LoadAll(store, data, tpch.LoadConfig{RowsPerBlock: p.RowsPerBlock, Seed: p.Seed})
	if err != nil {
		return nil, nil, nil, err
	}
	return store, data, tables, nil
}

// Register installs the builders into the process-local registry.
func Register() {
	adbnet.RegisterDataset(TPCHName, func(raw json.RawMessage) (*dfs.Store, query.Catalog, error) {
		var p TPCHParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, nil, fmt.Errorf("datasets: decode tpch params: %w", err)
		}
		store, _, tables, err := BuildTPCH(p)
		if err != nil {
			return nil, nil, err
		}
		return store, tables.Catalog(), nil
	})
}
