// The coordinator: spawns and meshes the worker processes, dispatches
// query attempts, and owns the failover policy. One query of the
// session stream becomes one or more attempts; each attempt assigns
// every plan fragment to a live worker (round-robin over the live
// set), dispatches the serialized spec, and runs the coordinator's own
// compiled view of the plan. When an attempt fails with a transport
// error — a worker death, a reset or stalled stream — the coordinator
// aborts it everywhere, drops the dead worker from the live set, and
// the session retries: the next attempt reassigns the dead worker's
// fragments to a surviving replica holder, and because every process
// is a full deterministic replica, any survivor can host any fragment.
// Non-transport errors surface to the caller unchanged.
package net

import (
	"context"
	"encoding/json"
	"fmt"
	gonet "net"
	"sync"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/exec"
	"adaptdb/internal/query"
)

// Options configures Start.
type Options struct {
	// Workers is the number of worker processes (≥ 1).
	Workers int
	// Fragments is the plan fragment count — the store's node count.
	// Every process's replica must be built with this many nodes.
	Fragments int
	// Dataset names the registered dataset builder; Params is its
	// JSON-serializable parameter block.
	Dataset string
	Params  any
	// Exec is the shared execution configuration. A zero Model is
	// normalized to cluster.Default() before shipping.
	Exec ExecConfig
	// Window overrides the per-stream credit window bytes (0 = 256KiB).
	Window int
	// KeepAlive is the connection ping interval; a peer silent for 3×
	// this is declared dead. 0 means 2s. Negative disables keepalive.
	KeepAlive time.Duration
	// InProcess runs workers as goroutines in this process instead of
	// spawned child processes — same sockets, same protocol, no exec.
	// The fault and flow-control suites use it; the differential wall
	// uses real processes.
	InProcess bool
	// SetupTimeout bounds worker spawn+replica build (0 = 60s).
	SetupTimeout time.Duration
	// FinishTimeout bounds the wait for worker completion reports after
	// a successful drain (0 = 30s).
	FinishTimeout time.Duration
	// MaxAttempts bounds attempts per query, first try included (0 = 3).
	MaxAttempts int
}

func (o *Options) normalize() {
	if o.Exec.Model == (cluster.CostModel{}) {
		o.Exec.Model = cluster.Default()
	}
	if o.KeepAlive == 0 {
		o.KeepAlive = 2 * time.Second
	}
	if o.KeepAlive < 0 {
		o.KeepAlive = 0
	}
	if o.SetupTimeout <= 0 {
		o.SetupTimeout = 60 * time.Second
	}
	if o.FinishTimeout <= 0 {
		o.FinishTimeout = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Window <= 0 {
		o.Window = defaultWindow
	}
}

// Cluster is the coordinator's handle on a running worker fleet.
type Cluster struct {
	opts Options
	ep   *endpoint
	ln   gonet.Listener

	mu      sync.Mutex
	conns   map[int]*conn // live worker control connections
	active  map[uint64]*Attempt
	nextQID uint64
	fault   *FaultPlan // armed for the next Begin, one-shot

	linkHist cluster.LinkStats
	weights  cluster.LinkWeights

	helloCh chan helloMsg
	readyCh chan readyEvent

	closed   chan struct{}
	closeOne sync.Once
	procs    []*spawnedWorker
}

type readyEvent struct {
	proc int
	err  error
}

// Start listens, spawns the workers, ships them the setup, and waits
// until every replica is built and meshed.
func Start(opts Options) (*Cluster, error) {
	opts.normalize()
	if opts.Workers < 1 {
		return nil, fmt.Errorf("net: need at least one worker")
	}
	if opts.Fragments < 1 {
		return nil, fmt.Errorf("net: need at least one plan fragment")
	}
	params, err := json.Marshal(opts.Params)
	if err != nil {
		return nil, fmt.Errorf("net: encode dataset params: %w", err)
	}
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		opts:     opts,
		ep:       newEndpoint(0, opts.Window),
		ln:       ln,
		conns:    make(map[int]*conn),
		active:   make(map[uint64]*Attempt),
		linkHist: make(cluster.LinkStats),
		helloCh:  make(chan helloMsg, opts.Workers),
		readyCh:  make(chan readyEvent, opts.Workers),
		closed:   make(chan struct{}),
	}
	go c.acceptLoop()

	for proc := 1; proc <= opts.Workers; proc++ {
		sw, err := launchWorker(ln.Addr().String(), proc, opts.InProcess)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.procs = append(c.procs, sw)
	}

	// Gather hellos, then ship the setup with the full mesh address map.
	deadline := time.After(opts.SetupTimeout)
	addrs := make(map[int]string, opts.Workers)
	for len(addrs) < opts.Workers {
		select {
		case h := <-c.helloCh:
			addrs[h.Proc] = h.Addr
		case <-deadline:
			c.Close()
			return nil, fmt.Errorf("net: %d/%d workers connected before setup timeout", len(addrs), opts.Workers)
		case <-c.closed:
			return nil, fmt.Errorf("net: cluster closed during setup")
		}
	}
	setup := setupMsg{
		N:           opts.Fragments,
		Dataset:     opts.Dataset,
		Params:      params,
		Procs:       addrs,
		Exec:        opts.Exec,
		Window:      opts.Window,
		KeepAliveMs: opts.KeepAlive.Milliseconds(),
	}
	c.mu.Lock()
	conns := make([]*conn, 0, len(c.conns))
	for _, cc := range c.conns {
		conns = append(conns, cc)
	}
	c.mu.Unlock()
	for _, cc := range conns {
		if err := cc.writeJSON(msgSetup, setup); err != nil {
			c.Close()
			return nil, err
		}
	}
	ready := 0
	for ready < opts.Workers {
		select {
		case ev := <-c.readyCh:
			if ev.err != nil {
				c.Close()
				return nil, fmt.Errorf("net: worker %d setup: %w", ev.proc, ev.err)
			}
			ready++
		case <-deadline:
			c.Close()
			return nil, fmt.Errorf("net: %d/%d workers ready before setup timeout", ready, opts.Workers)
		case <-c.closed:
			return nil, fmt.Errorf("net: cluster closed during setup")
		}
	}
	return c, nil
}

// Close tears the fleet down: connections close, spawned processes are
// killed, in-process workers wind down with their connections.
func (c *Cluster) Close() error {
	c.closeOne.Do(func() {
		close(c.closed)
		c.ln.Close()
		c.mu.Lock()
		conns := make([]*conn, 0, len(c.conns))
		for _, cc := range c.conns {
			conns = append(conns, cc)
		}
		c.mu.Unlock()
		for _, cc := range conns {
			cc.die(fmt.Errorf("net: cluster closed"))
		}
		for _, sw := range c.procs {
			sw.stop()
		}
	})
	return nil
}

func (c *Cluster) acceptLoop() {
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			return
		}
		// No keepalive until the worker is ready: replica builds take
		// arbitrarily long and the worker is silent throughout.
		cc := newConn(nc, 0)
		go func() {
			typ, payload, _, err := cc.readFrame(nil)
			if err != nil || typ != msgHello {
				cc.die(fmt.Errorf("net: accept: bad hello"))
				return
			}
			var h helloMsg
			if json.Unmarshal(payload, &h) != nil || h.Proc < 1 {
				cc.die(fmt.Errorf("net: accept: bad hello"))
				return
			}
			cc.peer = h.Proc
			c.mu.Lock()
			c.conns[h.Proc] = cc
			c.mu.Unlock()
			c.ep.setPeer(h.Proc, cc)
			select {
			case c.helloCh <- h:
			default:
			}
			cc.serve(c.handleFrame(cc), func(err error) { c.workerDied(h.Proc, err) })
		}()
	}
}

func (c *Cluster) workerDied(proc int, cause error) {
	c.mu.Lock()
	if cc := c.conns[proc]; cc != nil && cc.isDead() {
		delete(c.conns, proc)
	}
	atts := make([]*Attempt, 0, len(c.active))
	for _, a := range c.active {
		atts = append(atts, a)
	}
	c.mu.Unlock()
	c.ep.peerDied(proc, cause)
	err := &NetError{Msg: fmt.Sprintf("worker died: %v", cause), Peer: proc}
	for _, a := range atts {
		a.noteReport(proc, report{err: err})
	}
}

func (c *Cluster) handleFrame(cc *conn) func(typ byte, payload []byte) error {
	return func(typ byte, payload []byte) error {
		switch typ {
		case msgData, msgEOS, msgCredit:
			return c.ep.handleStreamFrame(cc, typ, payload)
		case msgReady:
			cc.enableKeepAlive(c.opts.KeepAlive)
			select {
			case c.readyCh <- readyEvent{proc: cc.peer}:
			default:
			}
			return nil
		case msgQErr:
			var m qerrMsg
			if err := json.Unmarshal(payload, &m); err != nil {
				return err
			}
			if m.QID == 0 {
				// Setup-phase failure.
				select {
				case c.readyCh <- readyEvent{proc: cc.peer, err: fmt.Errorf("%s", m.Msg)}:
				default:
				}
				return nil
			}
			var rerr error = fmt.Errorf("worker %d: %s", cc.peer, m.Msg)
			if m.Net {
				rerr = &NetError{Msg: m.Msg, Peer: cc.peer}
			}
			c.routeReport(m.QID, cc.peer, report{err: rerr})
			// Fail the local attempt so a blocked coordinator drain
			// surfaces the worker's error instead of hanging.
			if at := c.lookupAttempt(m.QID); at != nil {
				at.fail(rerr)
			}
			return nil
		case msgQDone:
			var m qdoneMsg
			if err := json.Unmarshal(payload, &m); err != nil {
				return err
			}
			c.routeReport(m.QID, cc.peer, report{counters: m.Counters, links: recsToLinks(m.Links), done: true})
			return nil
		default:
			return fmt.Errorf("net: coordinator: unexpected frame %s", msgName(typ))
		}
	}
}

func (c *Cluster) lookupAttempt(qid uint64) *attempt {
	c.ep.mu.Lock()
	defer c.ep.mu.Unlock()
	return c.ep.atts[qid]
}

func (c *Cluster) routeReport(qid uint64, proc int, r report) {
	c.mu.Lock()
	a := c.active[qid]
	c.mu.Unlock()
	if a != nil {
		a.noteReport(proc, r)
	}
}

// liveProcs returns the live worker ids, ascending.
func (c *Cluster) liveProcs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.conns))
	for proc, cc := range c.conns {
		if !cc.isDead() {
			out = append(out, proc)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// LiveWorkers reports how many workers are still alive.
func (c *Cluster) LiveWorkers() int { return len(c.liveProcs()) }

// MaxAttempts is the per-query attempt bound the session retries under.
func (c *Cluster) MaxAttempts() int { return c.opts.MaxAttempts }

// Weights returns link weights derived from all measured traffic so
// far (nil until something was measured).
func (c *Cluster) Weights() cluster.LinkWeights {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.linkHist.Weights()
}

// ArmFault arms a one-shot fault plan for the next Begin — the test
// wall's injection point.
func (c *Cluster) ArmFault(f *FaultPlan) {
	c.mu.Lock()
	c.fault = f
	c.mu.Unlock()
}

// report is one worker's attempt outcome.
type report struct {
	counters cluster.Counters
	links    cluster.LinkStats
	err      error
	done     bool
}

// Attempt is one dispatched attempt of one query: the coordinator's
// fabric view plus the worker completion ledger.
type Attempt struct {
	c      *Cluster
	qid    uint64
	seq    int
	assign []int
	procs  []int // dispatched workers
	at     *attempt
	fb     *netFabric
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	reports map[int]report
	expired bool // the Finish report-wait deadline passed
}

// Assign exposes the fragment→worker assignment of this attempt.
func (a *Attempt) Assign() []int { return append([]int(nil), a.assign...) }

// Begin dispatches a new attempt for one query of the stream: assign
// fragments round-robin over the live workers, send the serialized
// spec (with the stream seq, the link weights, and any armed fault) to
// every live worker.
func (c *Cluster) Begin(spec query.Spec, seq int, lw cluster.LinkWeights) (*Attempt, error) {
	live := c.liveProcs()
	if len(live) == 0 {
		return nil, &NetError{Msg: "no live workers", Peer: -1}
	}
	c.mu.Lock()
	c.nextQID++
	qid := c.nextQID
	fault := c.fault
	c.fault = nil
	c.mu.Unlock()

	assign := make([]int, c.opts.Fragments)
	for i := range assign {
		assign[i] = live[i%len(live)]
	}
	a := &Attempt{
		c:       c,
		qid:     qid,
		seq:     seq,
		assign:  assign,
		procs:   live,
		at:      c.ep.attemptFor(qid),
		reports: make(map[int]report),
	}
	a.cond = sync.NewCond(&a.mu)
	c.mu.Lock()
	c.active[qid] = a
	c.mu.Unlock()

	if fault != nil && fault.Proc == 0 {
		// A coordinator-side fault arms here; worker-side faults ride the
		// query message and arm in their target process.
		c.mu.Lock()
		for proc, cc := range c.conns {
			if fault.Peer >= 0 && proc != fault.Peer {
				continue
			}
			cc.arm(fault, nil)
		}
		c.mu.Unlock()
	}
	qm := queryMsg{QID: qid, Seq: seq, Spec: spec, Assign: assign, Weights: weightsToRecs(lw), Fault: fault}
	for _, proc := range live {
		cc := c.ep.peerConn(proc)
		if cc == nil {
			continue // death races dispatch; the report ledger notices
		}
		if err := cc.writeJSON(msgQuery, qm); err != nil {
			continue
		}
	}
	return a, nil
}

// Fabric builds the coordinator's fabric view over its own executor
// (which must have a NodeSet of Fragments nodes). Install it with
// SetFabric, compile, then Start.
func (a *Attempt) Fabric(ex *exec.Executor) (exec.Fabric, error) {
	fb, err := newNetFabric(a.c.ep, a.at, ex, a.assign)
	if err != nil {
		return nil, err
	}
	a.fb = fb
	return fb, nil
}

// Start launches the coordinator's pumps (the src -1 streams: gathered
// intermediates feeding broadcasts, deals and global shuffles). ctx
// cancellation aborts the attempt everywhere.
func (a *Attempt) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	a.cancel = cancel
	go func() {
		select {
		case <-ctx.Done():
			a.at.fail(ctx.Err())
		case <-a.at.done:
		}
	}()
	if a.fb != nil {
		a.fb.Run(ctx)
	}
}

func (a *Attempt) noteReport(proc int, r report) {
	a.mu.Lock()
	if _, dup := a.reports[proc]; !dup {
		a.reports[proc] = r
	}
	a.cond.Broadcast()
	a.mu.Unlock()
}

// abort cancels the attempt everywhere: an abort message to every live
// worker, tombstone locally so late frames drop.
func (a *Attempt) abort(cause error) {
	for _, proc := range a.procs {
		if cc := a.c.ep.peerConn(proc); cc != nil {
			cc.writeJSON(msgAbort, abortMsg{QID: a.qid})
		}
	}
	a.c.ep.retire(a.qid, cause)
}

// Finish completes the attempt. With a nil execErr it waits (bounded)
// for every dispatched worker's completion report and merges their
// execution counters and measured link traffic into m and the link
// history; a worker that died after delivering all its data does not
// fail the attempt — the result is already complete. With a non-nil
// execErr it aborts the attempt everywhere and reports whether the
// session should retry: true only for transport-class failures with a
// surviving worker to fail over to.
func (a *Attempt) Finish(execErr error, m *cluster.Meter) (retry bool, err error) {
	defer func() {
		if a.cancel != nil {
			a.cancel()
		}
		a.c.mu.Lock()
		delete(a.c.active, a.qid)
		a.c.mu.Unlock()
		a.c.ep.retire(a.qid, fmt.Errorf("net: attempt %d finished", a.qid))
		if a.fb != nil {
			a.fb.Wait()
		}
	}()
	if execErr == nil {
		if pumpErr := a.pumpFailure(); pumpErr != nil {
			execErr = pumpErr
		}
	}
	if execErr != nil {
		a.abort(execErr)
		if !IsNetError(execErr) {
			// Also inspect the attempt's recorded cause: a drain error is
			// often the generic wrapper around a transport failure.
			if cause := a.at.failure(); cause == nil || !IsNetError(cause) {
				return false, execErr
			}
		}
		return a.c.LiveWorkers() > 0, execErr
	}

	// Drain completed: collect worker reports (bounded wait — a worker
	// that died after delivering all its data doesn't fail the query,
	// its counters are just missing from the merge).
	timer := time.NewTimer(a.c.opts.FinishTimeout)
	waited := make(chan struct{})
	go func() {
		select {
		case <-timer.C:
			a.mu.Lock()
			a.expired = true
			a.cond.Broadcast()
			a.mu.Unlock()
		case <-waited:
		}
	}()
	a.mu.Lock()
	for len(a.reports) < len(a.procs) && !a.expired {
		a.cond.Wait()
	}
	reports := make(map[int]report, len(a.reports))
	for p, r := range a.reports {
		reports[p] = r
	}
	a.mu.Unlock()
	close(waited)
	timer.Stop()

	a.c.mu.Lock()
	for _, r := range reports {
		if r.done {
			m.Merge(r.counters)
			a.c.linkHist.Merge(r.links)
		}
	}
	// The coordinator's own measured links join the history too.
	a.c.linkHist.Merge(m.ResetLinks())
	a.c.mu.Unlock()
	return false, nil
}

// pumpFailure surfaces a coordinator pump error that the root drain
// may not have observed (e.g. a broadcast source failing after the
// root's gather completed).
func (a *Attempt) pumpFailure() error {
	if a.fb == nil {
		return nil
	}
	a.fb.errMu.Lock()
	defer a.fb.errMu.Unlock()
	return a.fb.err
}
