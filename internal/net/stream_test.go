// Flow-control unit suite: the credit gate's window arithmetic, and —
// over a real socket pair — the backpressure contract (a slow consumer
// bounds the sender's outstanding bytes to the credit window) and the
// cancellation contract (failing an attempt unblocks a sender stuck in
// acquire and a consumer stuck in next, on both ends, leaking nothing).
package net

import (
	"errors"
	gonet "net"
	"sync/atomic"
	"testing"
	"time"

	"adaptdb/internal/exec"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func TestCreditGateWindow(t *testing.T) {
	g := newCreditGate(100)
	if err := g.acquire(60); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(40); err != nil {
		t.Fatal(err)
	}
	// Window exhausted: the next acquire must block until a grant.
	done := make(chan error, 1)
	go func() { done <- g.acquire(30) }()
	select {
	case <-done:
		t.Fatal("acquire returned with no window available")
	case <-time.After(20 * time.Millisecond):
	}
	g.grant(30)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCreditGateOversizeClamps(t *testing.T) {
	// A frame larger than the whole window must still flow: acquire
	// clamps to the window size and overdraws once it is fully idle.
	g := newCreditGate(100)
	if err := g.acquire(1000); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.acquire(1000) }()
	select {
	case <-done:
		t.Fatal("second oversize acquire should wait for a full window")
	case <-time.After(20 * time.Millisecond):
	}
	g.grant(1000) // grant is capped at max
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCreditGateFailUnblocks(t *testing.T) {
	g := newCreditGate(10)
	if err := g.acquire(10); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.acquire(10) }()
	boom := errors.New("boom")
	g.fail(boom)
	if err := <-done; err != boom {
		t.Fatalf("blocked acquire returned %v, want the failure", err)
	}
	if err := g.acquire(1); err != boom {
		t.Fatalf("post-failure acquire returned %v, want the failure", err)
	}
}

// pairEndpoints joins two endpoints with one real TCP connection, each
// serving stream frames into its own attempt table — the minimal
// producer/consumer topology of the full fabric.
func pairEndpoints(t *testing.T, window int) (*endpoint, *endpoint, func()) {
	t.Helper()
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan gonet.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err == nil {
			accepted <- nc
		}
	}()
	ncA, err := gonet.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ncB := <-accepted
	ln.Close()

	epA, epB := newEndpoint(0, window), newEndpoint(1, window)
	ca, cb := newConn(ncA, 0), newConn(ncB, 0)
	ca.peer, cb.peer = 1, 0
	epA.setPeer(1, ca)
	epB.setPeer(0, cb)
	go ca.serve(func(typ byte, p []byte) error { return epA.handleStreamFrame(ca, typ, p) },
		func(err error) { epA.peerDied(1, err) })
	go cb.serve(func(typ byte, p []byte) error { return epB.handleStreamFrame(cb, typ, p) },
		func(err error) { epB.peerDied(0, err) })
	closer := func() {
		ca.die(errors.New("test over"))
		cb.die(errors.New("test over"))
	}
	t.Cleanup(closer) // backstop for Fatal exits
	return epA, epB, closer
}

func testFrame(t *testing.T, rows int) []byte {
	t.Helper()
	tuples := make([]tuple.Tuple, rows)
	for i := range tuples {
		tuples[i] = tuple.Tuple{value.NewInt(int64(i)), value.NewString("backpressure-payload")}
	}
	frame, err := tuple.AppendFrame(nil, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestBackpressureBoundsSender pins the flow-control contract: with a
// deliberately slow consumer, the producer can never be more than one
// credit window of bytes ahead of consumption.
func TestBackpressureBoundsSender(t *testing.T) {
	defer exec.VerifyNoLeaks(t)
	frame := testFrame(t, 32)
	window := 4 * len(frame) // fits 4 frames in flight
	epA, epB, closePair := pairEndpoints(t, window)
	defer closePair() // runs before the leak check above

	const qid, nFrames = 1, 40
	key := streamKey{exch: 7, src: 1, dst: 0}
	hdr := appendStreamHdr(nil, streamHdr{qid: qid, exch: key.exch, src: key.src, dst: key.dst})
	payload := append(append([]byte(nil), hdr...), frame...)

	atB := epB.attemptFor(qid) // producer side
	atA := epA.attemptFor(qid) // consumer side
	q := atA.queueFor(qkey{key.exch, key.dst})
	q.setExpect(1)

	var sent atomic.Int64 // bytes acquired by the producer
	sendErr := make(chan error, 1)
	go func() {
		gate := atB.gateFor(key)
		c := epB.peerConn(0)
		for i := 0; i < nFrames; i++ {
			if err := gate.acquire(len(frame)); err != nil {
				sendErr <- err
				return
			}
			sent.Add(int64(len(frame)))
			if err := c.writeFrame(msgData, payload); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- c.writeFrame(msgEOS, hdr)
	}()

	var consumed int64
	batches := 0
	for {
		// The producer's acquired bytes can exceed consumption by at
		// most the window: credits only flow back on consumption.
		if ahead := sent.Load() - consumed; ahead > int64(window) {
			t.Fatalf("sender ran %d bytes ahead of the consumer; window is %d", ahead, window)
		}
		b, err := q.next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		b.Release()
		consumed += int64(len(frame))
		batches++
		time.Sleep(2 * time.Millisecond) // the slow consumer
	}
	if batches != nFrames {
		t.Fatalf("consumed %d frames, want %d", batches, nFrames)
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	epA.retire(qid, nil)
	epB.retire(qid, nil)
}

// TestCancelUnblocksBothEnds wedges a producer in acquire (window
// exhausted, nothing consumed) and a consumer in next (nothing left to
// read) and asserts that retiring the attempt releases both promptly.
func TestCancelUnblocksBothEnds(t *testing.T) {
	defer exec.VerifyNoLeaks(t)
	frame := testFrame(t, 32)
	window := len(frame) // one frame in flight, then the gate is shut
	epA, epB, closePair := pairEndpoints(t, window)
	defer closePair() // runs before the leak check above

	const qid = 9
	key := streamKey{exch: 3, src: 1, dst: 0}
	hdr := appendStreamHdr(nil, streamHdr{qid: qid, exch: key.exch, src: key.src, dst: key.dst})
	payload := append(append([]byte(nil), hdr...), frame...)

	atB := epB.attemptFor(qid)
	atA := epA.attemptFor(qid)

	sendErr := make(chan error, 1)
	go func() {
		gate := atB.gateFor(key)
		c := epB.peerConn(0)
		for {
			if err := gate.acquire(len(frame)); err != nil {
				sendErr <- err
				return
			}
			if err := c.writeFrame(msgData, payload); err != nil {
				sendErr <- err
				return
			}
		}
	}()

	// A consumer on a stream the producer will never finish.
	q := atA.queueFor(qkey{key.exch, key.dst})
	q.setExpect(1)
	recvErr := make(chan error, 1)
	go func() {
		for {
			b, err := q.next()
			if err != nil || b == nil {
				recvErr <- err
				return
			}
			// Do not consume further: leave the item queued so no credit
			// flows back and the producer wedges in acquire.
			b.Release()
			q.mu.Lock()
			q.cond.Wait() // parks until fail broadcasts
			q.mu.Unlock()
		}
	}()

	time.Sleep(50 * time.Millisecond) // let both ends wedge
	cancel := &NetError{Msg: "query canceled"}
	epA.retire(qid, cancel)
	epB.retire(qid, cancel)

	for _, ch := range []chan error{sendErr, recvErr} {
		select {
		case err := <-ch:
			if !IsNetError(err) {
				t.Fatalf("blocked end returned %v, want the cancellation NetError", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("a blocked end did not unblock after retire")
		}
	}
}
