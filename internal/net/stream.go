// Per-query stream multiplexing and credit-based flow control. Every
// exchange stream is addressed (qid, exchange id, src fragment, dst
// fragment) and multiplexed over the single connection between its two
// processes. The sender holds a per-stream credit gate initialized to
// the window; each data frame spends its byte length and blocks when
// the window is exhausted. The receiver queues decoded batches and
// returns credit only when the consuming operator takes delivery — so
// a slow consumer bounds the bytes buffered on BOTH ends to one
// window, which is the backpressure contract the flow-control test
// suite pins. Local (same-process) deliveries ride the same gates and
// queues with no encode/decode, so one bounded path serves both.
package net

import (
	"fmt"
	"sync"

	"adaptdb/internal/exec"
	"adaptdb/internal/tuple"
)

// NetError marks transport-layer failures: peer death, reset or
// stalled streams, injected faults. The coordinator retries attempts
// that fail with a NetError on a surviving replica; any other error
// surfaces to the caller unchanged.
type NetError struct {
	Msg  string
	Peer int // proc id, -1 when not attributable
}

func (e *NetError) Error() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("net: %s (proc %d)", e.Msg, e.Peer)
	}
	return "net: " + e.Msg
}

// IsNetError reports whether err (or anything it wraps) is a transport
// failure — the retryable class.
func IsNetError(err error) bool {
	for err != nil {
		if _, ok := err.(*NetError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// defaultWindow is the per-stream credit window when the setup does
// not override it. Small enough that a genuinely slow consumer exerts
// backpressure quickly, large enough to keep a healthy stream busy.
const defaultWindow = 256 << 10

// streamKey addresses one producer→consumer stream within an attempt
// (qid is implicit): the sender-side unit of credit accounting.
type streamKey struct {
	exch, src, dst int
}

// qkey addresses one consumer inlet: every producer of exchange exch
// delivering to fragment dst lands in the same queue (the consuming
// operator drains one merged stream, as the simulated exchOut does).
type qkey struct {
	exch, dst int
}

// creditGate is a sender-side byte window for one stream.
type creditGate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	avail int
	max   int
	err   error
}

func newCreditGate(window int) *creditGate {
	g := &creditGate{avail: window, max: window}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until n bytes of window are available (a frame larger
// than the whole window waits for the window to be fully idle, then
// overdraws — oversize frames still flow, one at a time).
func (g *creditGate) acquire(n int) error {
	if n > g.max {
		n = g.max
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.avail < n && g.err == nil {
		g.cond.Wait()
	}
	if g.err != nil {
		return g.err
	}
	g.avail -= n
	return nil
}

func (g *creditGate) grant(n int) {
	g.mu.Lock()
	g.avail += n
	if g.avail > g.max {
		g.avail = g.max
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *creditGate) fail(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// inItem is one delivered batch awaiting its consumer.
type inItem struct {
	b     *exec.Batch
	bytes int // credit to return on consumption
	from  int // producing proc; -1 for a local delivery
	key   streamKey
}

// recvQueue is the receiver side of one stream: decoded batches from
// every producing fragment of the exchange, the per-producer EOS set,
// and the failure latch. Buffering is bounded by the senders' credit
// windows, never by this queue.
type recvQueue struct {
	at     *attempt
	key    qkey
	mu     sync.Mutex
	cond   *sync.Cond
	items  []inItem
	eos    map[int]bool
	expect int // producer count; -1 until the local compile registers it
	err    error
	closed bool
}

func newRecvQueue(at *attempt, key qkey) *recvQueue {
	q := &recvQueue{at: at, key: key, eos: make(map[int]bool), expect: -1}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push delivers one batch. A closed or failed queue drops it and
// returns the credit immediately so the producer never wedges.
func (q *recvQueue) push(it inItem) {
	q.mu.Lock()
	if q.closed || q.err != nil {
		q.mu.Unlock()
		it.b.Release()
		q.at.grantCredit(it)
		return
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	q.mu.Unlock()
}

func (q *recvQueue) eosFrom(src int) {
	q.mu.Lock()
	q.eos[src] = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *recvQueue) setExpect(n int) {
	q.mu.Lock()
	q.expect = n
	q.cond.Broadcast()
	q.mu.Unlock()
}

// fail latches the stream error, releasing queued batches and granting
// their credit so no sender stays blocked.
func (q *recvQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	items := q.items
	q.items = nil
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, it := range items {
		it.b.Release()
		q.at.grantCredit(it)
	}
}

// next blocks for the next batch: (nil, nil) on clean exhaustion.
func (q *recvQueue) next() (*exec.Batch, error) {
	q.mu.Lock()
	for {
		if q.err != nil {
			err := q.err
			q.mu.Unlock()
			return nil, err
		}
		if len(q.items) > 0 {
			it := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			q.at.grantCredit(it)
			return it.b, nil
		}
		if q.expect >= 0 && len(q.eos) >= q.expect {
			q.mu.Unlock()
			return nil, nil
		}
		q.cond.Wait()
	}
}

// close marks the consumer gone: queued and future deliveries are
// dropped with their credit returned.
func (q *recvQueue) close() {
	q.mu.Lock()
	q.closed = true
	items := q.items
	q.items = nil
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, it := range items {
		it.b.Release()
		q.at.grantCredit(it)
	}
}

// recvOp adapts a recvQueue to the exec.Operator contract — what a
// consuming plan fragment (or the coordinator's gather) drains.
type recvOp struct {
	q *recvQueue
}

func (o *recvOp) Open() error { return nil }

func (o *recvOp) Next() (*exec.Batch, error) { return o.q.next() }

func (o *recvOp) Close() error {
	o.q.close()
	return nil
}

// attempt is one process's runtime state for one query attempt: the
// streams it consumes (queues), the streams it produces (gates), and
// the cancellation latch. Both the coordinator and every worker hold
// one per active qid.
type attempt struct {
	ep     *endpoint
	qid    uint64
	mu     sync.Mutex
	queues map[qkey]*recvQueue
	gates  map[streamKey]*creditGate
	failed error
	done   chan struct{} // closed on fail or finish
	doneMu sync.Once
}

func newAttempt(ep *endpoint, qid uint64) *attempt {
	return &attempt{
		ep:     ep,
		qid:    qid,
		queues: make(map[qkey]*recvQueue),
		gates:  make(map[streamKey]*creditGate),
		done:   make(chan struct{}),
	}
}

func (at *attempt) queueFor(key qkey) *recvQueue {
	at.mu.Lock()
	defer at.mu.Unlock()
	q := at.queues[key]
	if q == nil {
		q = newRecvQueue(at, key)
		at.queues[key] = q
		if at.failed != nil {
			q.err = at.failed
		}
	}
	return q
}

func (at *attempt) gateFor(key streamKey) *creditGate {
	at.mu.Lock()
	defer at.mu.Unlock()
	g := at.gates[key]
	if g == nil {
		g = newCreditGate(at.ep.window)
		at.gates[key] = g
		if at.failed != nil {
			g.err = at.failed
		}
	}
	return g
}

// grantCredit returns a consumed item's window bytes to its producer:
// directly for a local delivery, as a credit frame for a remote one.
func (at *attempt) grantCredit(it inItem) {
	if it.bytes <= 0 {
		return
	}
	if it.from < 0 {
		at.gateFor(it.key).grant(it.bytes)
		return
	}
	at.ep.sendCredit(it.from, at.qid, it.key, it.bytes)
}

// fail cancels the whole attempt in this process: every queue and gate
// unblocks with err, pumps and consumers wind down.
func (at *attempt) fail(err error) {
	at.mu.Lock()
	if at.failed == nil {
		at.failed = err
	}
	queues := make([]*recvQueue, 0, len(at.queues))
	for _, q := range at.queues {
		queues = append(queues, q)
	}
	gates := make([]*creditGate, 0, len(at.gates))
	for _, g := range at.gates {
		gates = append(gates, g)
	}
	at.mu.Unlock()
	for _, q := range queues {
		q.fail(err)
	}
	for _, g := range gates {
		g.fail(err)
	}
	at.doneMu.Do(func() { close(at.done) })
}

func (at *attempt) failure() error {
	at.mu.Lock()
	defer at.mu.Unlock()
	return at.failed
}

// deliverData routes an incoming data frame: decode the run frame into
// a batch of view rows and queue it for the consuming fragment.
func (at *attempt) deliverData(fromProc int, h streamHdr, frame []byte) error {
	rows, _, err := tuple.DecodeFrame(frame)
	if err != nil {
		return fmt.Errorf("net: stream (%d,%d→%d): %w", h.exch, h.src, h.dst, err)
	}
	b := exec.NewBatch()
	for _, r := range rows {
		b.Append(r)
	}
	at.queueFor(qkey{h.exch, h.dst}).push(inItem{
		b:     b,
		bytes: len(frame),
		from:  fromProc,
		key:   streamKey{h.exch, h.src, h.dst},
	})
	return nil
}
