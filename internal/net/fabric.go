// netFabric implements exec.Fabric over the TCP mesh: the planner's
// distributed compiler lowers plans against it exactly as it does
// against the simulated NodeSet, and cannot tell them apart. Every
// process compiles the identical plan against its own netFabric view;
// exchange ids come from a deterministic per-compile counter, so the
// same exchange gets the same id in every process. A process
// instantiates pumps only for the plan fragments it hosts (its slots
// of the fragment→proc assignment); Output(i) for a fragment hosted
// elsewhere is exec.NotHere. The coordinator (proc 0) hosts no
// fragments — it hosts every coordinator stream (src -1): hyper and
// combination outputs, gathered intermediates feeding broadcasts and
// deals, and the final gather the session drains.
//
// A pump drives one hosted producer: it drains the fragment operator
// and routes rows to destinations with exactly the simulated
// exchange's rules (columnar gather lists, value.Hash64 % N, NULL keys
// to fragment 0, broadcast duplication, per-batch round-robin deal),
// packing per-destination pending batches and shipping each sealed
// batch either in-process (same bounded path, no encode) or as a
// tuple run frame under the stream's credit window.
package net

import (
	"context"
	"fmt"
	"sync"
	"time"

	"adaptdb/internal/core"
	"adaptdb/internal/exec"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
)

// route markers beyond shuffle key columns, matching the simulated
// exchange's conventions (-1 broadcast, -2 deal) plus -3 for the
// gather pump, which has the single destination -1 (the coordinator).
const (
	routeBroadcast = -1
	routeDeal      = -2
	routeGather    = -3
)

type netFabric struct {
	ep     *endpoint
	at     *attempt
	ex     *exec.Executor // this process's parent executor (meter home)
	ns     *exec.NodeSet
	qid    uint64
	assign []int // fragment → hosting proc
	me     int

	nextID int
	pumps  []*pump

	runOnce sync.Once
	wg      sync.WaitGroup
	errMu   sync.Mutex
	err     error
}

// newNetFabric builds one process's fabric view for one attempt. The
// executor must have a NodeSet (per-fragment views) of len(assign)
// fragments.
func newNetFabric(ep *endpoint, at *attempt, ex *exec.Executor, assign []int) (*netFabric, error) {
	ns := ex.Nodes()
	if ns == nil {
		return nil, fmt.Errorf("net: executor has no node set (Distributed not enabled)")
	}
	if ns.N() != len(assign) {
		return nil, fmt.Errorf("net: %d fragments assigned over a %d-node store", len(assign), ns.N())
	}
	return &netFabric{ep: ep, at: at, ex: ex, ns: ns, qid: at.qid, assign: assign, me: ep.proc}, nil
}

func (f *netFabric) hosts(i int) bool { return f.assign[i] == f.me }

func (f *netFabric) N() int                  { return f.ns.N() }
func (f *netFabric) At(i int) *exec.Executor { return f.ns.At(i) }

func (f *netFabric) ScanAt(i int, refs []core.BlockRef, preds []predicate.Predicate) exec.Operator {
	return f.ns.ScanAt(i, refs, preds)
}

func (f *netFabric) SplitRefs(refs []core.BlockRef) [][]core.BlockRef {
	return f.ns.SplitRefs(refs)
}

// addPump registers a hosted producer for one exchange.
func (f *netFabric) addPump(exch, src int, op exec.Operator, route int) {
	f.pumps = append(f.pumps, &pump{f: f, exch: exch, src: src, op: op, route: route})
}

// exchange builds one exchange over per-fragment parts (src i = part
// i) or a single coordinator stream (src -1), registering pumps for
// the hosted producers.
func (f *netFabric) exchange(parts []exec.Operator, srcGlobal exec.Operator, route int) *netExch {
	id := f.nextID
	f.nextID++
	nprod := 1
	if srcGlobal == nil {
		nprod = len(parts)
		for i, p := range parts {
			if f.hosts(i) {
				f.addPump(id, i, p, route)
			}
		}
	} else if f.me == 0 {
		f.addPump(id, -1, srcGlobal, route)
	}
	return &netExch{f: f, id: id, nprod: nprod}
}

func (f *netFabric) Shuffle(parts []exec.Operator, key int) exec.Exchanger {
	return f.exchange(parts, nil, key)
}

func (f *netFabric) ShuffleGlobal(in exec.Operator, key int) exec.Exchanger {
	return f.exchange(nil, in, key)
}

func (f *netFabric) Broadcast(in exec.Operator) exec.Exchanger {
	return f.exchange(nil, in, routeBroadcast)
}

func (f *netFabric) Deal(in exec.Operator) exec.Exchanger {
	return f.exchange(nil, in, routeDeal)
}

// Gather merges per-fragment streams into the coordinator: hosted
// parts pump to destination -1; the coordinator consumes the merged
// queue, everyone else holds a placeholder that is never opened.
func (f *netFabric) Gather(parts []exec.Operator) exec.Operator {
	id := f.nextID
	f.nextID++
	for i, p := range parts {
		if f.hosts(i) {
			f.addPump(id, i, p, routeGather)
		}
	}
	if f.me != 0 {
		return exec.NotHere(-1)
	}
	q := f.at.queueFor(qkey{id, -1})
	q.setExpect(len(parts))
	return &recvOp{q: q}
}

// Run starts every registered pump. Pump failures fail the whole
// attempt in this process, unblocking local consumers.
func (f *netFabric) Run(ctx context.Context) {
	f.runOnce.Do(func() {
		for _, p := range f.pumps {
			f.wg.Add(1)
			go func(p *pump) {
				defer f.wg.Done()
				if err := p.run(ctx); err != nil {
					f.errMu.Lock()
					if f.err == nil {
						f.err = err
					}
					f.errMu.Unlock()
					f.at.fail(err)
				}
			}(p)
		}
	})
}

// Wait blocks until every pump exits and returns the first pump error.
func (f *netFabric) Wait() error {
	f.wg.Wait()
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.err
}

// netExch is one exchange's consumer-side handle.
type netExch struct {
	f     *netFabric
	id    int
	nprod int
}

func (x *netExch) Output(i int) exec.Operator {
	if !x.f.hosts(i) {
		return exec.NotHere(i)
	}
	q := x.f.at.queueFor(qkey{x.id, i})
	q.setExpect(x.nprod)
	return &recvOp{q: q}
}

// pump drives one hosted producer of one exchange.
type pump struct {
	f     *netFabric
	exch  int
	src   int // producing fragment; -1 for a coordinator stream
	op    exec.Operator
	route int // shuffle key column, or routeBroadcast/Deal/Gather
	deal  uint64
}

// dsts returns the destination fragment ids this pump may route to.
func (p *pump) dsts() []int {
	if p.route == routeGather {
		return []int{-1}
	}
	out := make([]int, p.f.N())
	for i := range out {
		out[i] = i
	}
	return out
}

func (p *pump) dstProc(d int) int {
	if d < 0 {
		return 0 // gathers land on the coordinator
	}
	return p.f.assign[d]
}

// meterFor resolves the meter the pump charges exchanges into: the
// source fragment's shard, the parent meter for coordinator streams,
// nil for gathers (the simulated Gather is unmetered — parity).
func (p *pump) meterFor() interface {
	AddExchangeAt(src, dst int, rows, bytes int, remote bool)
} {
	if p.route == routeGather {
		return nil
	}
	if p.src >= 0 {
		return p.f.At(p.src).Meter
	}
	return p.f.ex.Meter
}

func (p *pump) run(ctx context.Context) error {
	n := p.f.N()
	meter := p.meterFor()
	dsts := p.dsts()
	// pend is indexed by destination fragment; slot n holds the gather
	// destination (-1).
	pend := make([]*exec.Batch, n+1)
	slot := func(d int) int {
		if d < 0 {
			return n
		}
		return d
	}
	var hv []uint64
	var dIdx [][]int32

	// A failed pump must NOT send EOS: a clean stream end with data
	// missing would silently truncate the result. Local consumers
	// unblock through at.fail (the Run wrapper); remote consumers
	// through the coordinator's abort broadcast.
	fail := func(err error) error {
		p.op.Close()
		return err
	}
	if err := p.op.Open(); err != nil {
		return fmt.Errorf("net: pump (%d,%d): open: %w", p.exch, p.src, err)
	}
	for {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		if err := p.f.at.failure(); err != nil {
			return fail(err)
		}
		b, err := p.op.Next()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		if cb := b.Cols(); cb != nil {
			// Columnar routing, mirroring the simulated exchange: hash the
			// key column vectorized, split into per-destination gather
			// lists, bulk-gather into pending columnar batches.
			ln := cb.Len()
			sel := cb.Sel()
			if dIdx == nil {
				dIdx = make([][]int32, n)
			}
			switch {
			case p.route < 0:
				list := dIdx[0][:0]
				for k := 0; k < ln; k++ {
					i := k
					if sel != nil {
						i = int(sel[k])
					}
					list = append(list, int32(i))
				}
				dIdx[0] = list
				switch p.route {
				case routeGather:
					if err := p.packColGather(pend, slot, -1, cb, list, meter); err != nil {
						return fail(err)
					}
				case routeDeal:
					d := int(p.deal % uint64(n))
					p.deal++
					if err := p.packColGather(pend, slot, d, cb, list, meter); err != nil {
						return fail(err)
					}
				default: // broadcast
					for d := 0; d < n; d++ {
						if err := p.packColGather(pend, slot, d, cb, list, meter); err != nil {
							return fail(err)
						}
					}
				}
			default:
				hv = cb.Hash64Column(p.route, hv)
				for k := 0; k < ln; k++ {
					i := k
					if sel != nil {
						i = int(sel[k])
					}
					d := 0
					if !cb.IsNull(p.route, i) {
						d = int(hv[i] % uint64(n))
					}
					dIdx[d] = append(dIdx[d], int32(i))
				}
				for d := 0; d < n; d++ {
					if len(dIdx[d]) == 0 {
						continue
					}
					if err := p.packColGather(pend, slot, d, cb, dIdx[d], meter); err != nil {
						return fail(err)
					}
					dIdx[d] = dIdx[d][:0]
				}
			}
			b.Release()
			continue
		}
		owned := b.OwnsRows()
		switch p.route {
		case routeGather:
			for _, r := range b.Rows() {
				if err := p.pack(pend, slot, -1, r, owned, meter); err != nil {
					return fail(err)
				}
			}
		case routeBroadcast:
			for _, r := range b.Rows() {
				for d := 0; d < n; d++ {
					if err := p.pack(pend, slot, d, r, owned, meter); err != nil {
						return fail(err)
					}
				}
			}
		case routeDeal:
			d := int(p.deal % uint64(n))
			p.deal++
			for _, r := range b.Rows() {
				if err := p.pack(pend, slot, d, r, owned, meter); err != nil {
					return fail(err)
				}
			}
		default:
			for _, r := range b.Rows() {
				d := 0
				if k := r[p.route]; !k.IsNull() {
					d = int(k.Hash64() % uint64(n))
				}
				if err := p.pack(pend, slot, d, r, owned, meter); err != nil {
					return fail(err)
				}
			}
		}
		b.Release()
	}
	// Flush pending, then EOS every destination.
	for _, d := range dsts {
		if pb := pend[slot(d)]; pb != nil {
			pend[slot(d)] = nil
			if pb.Len() > 0 {
				if err := p.send(d, pb, meter); err != nil {
					return fail(err)
				}
			} else {
				pb.Release()
			}
		}
	}
	if err := p.op.Close(); err != nil {
		return err
	}
	return p.sendEOSAll(dsts)
}

// pack appends a row to destination d's pending batch, sealing full
// ones — the simulated exchange's packing rules verbatim.
func (p *pump) pack(pend []*exec.Batch, slot func(int) int, d int, r tuple.Tuple, owned bool, meter exchMeter) error {
	s := slot(d)
	pb := pend[s]
	if pb != nil && pb.Cols() != nil {
		if err := p.send(d, pb, meter); err != nil {
			return err
		}
		pb = nil
	}
	if pb == nil {
		pb = exec.NewBatch()
		pend[s] = pb
	}
	if owned {
		pb.AppendConcat(r, nil)
	} else {
		pb.Append(r)
	}
	if pb.Full() {
		pend[s] = nil
		return p.send(d, pb, meter)
	}
	return nil
}

// packColGather bulk-gathers listed rows into destination d's pending
// columnar batch in capacity-sized chunks.
func (p *pump) packColGather(pend []*exec.Batch, slot func(int) int, d int, cb *tuple.Columns, idxs []int32, meter exchMeter) error {
	s := slot(d)
	for len(idxs) > 0 {
		pb := pend[s]
		if pb != nil && pb.Cols() == nil {
			if err := p.send(d, pb, meter); err != nil {
				return err
			}
			pb, pend[s] = nil, nil
		}
		if pb == nil {
			pb = exec.NewColBatch(cb.NumCols())
			pend[s] = pb
		}
		room := exec.DefaultBatchSize - pb.Cols().FullLen()
		if room <= 0 {
			pend[s] = nil
			if err := p.send(d, pb, meter); err != nil {
				return err
			}
			continue
		}
		take := len(idxs)
		if take > room {
			take = room
		}
		pb.AppendColGather(cb, idxs[:take])
		idxs = idxs[take:]
		if pb.Full() {
			pend[s] = nil
			if err := p.send(d, pb, meter); err != nil {
				return err
			}
		}
	}
	return nil
}

type exchMeter interface {
	AddExchangeAt(src, dst int, rows, bytes int, remote bool)
}

// send ships one sealed batch to destination fragment d: metering
// identical to the simulated exchange (wire-byte estimate, fragment-
// level remoteness), then either the in-process bounded path or an
// encoded run frame under the stream's credit window.
func (p *pump) send(d int, b *exec.Batch, meter exchMeter) error {
	if meter != nil {
		remote := p.src != d && p.f.N() > 1
		bytes := 0
		if remote {
			bytes = exec.BatchWireBytes(b)
		}
		meter.AddExchangeAt(p.src, d, b.Len(), bytes, remote)
	}
	key := streamKey{p.exch, p.src, d}
	gate := p.f.at.gateFor(key)
	proc := p.dstProc(d)
	if proc == p.f.me {
		wire := exec.BatchWireBytes(b)
		if wire < 1 {
			wire = 1
		}
		if err := gate.acquire(wire); err != nil {
			b.Release()
			return err
		}
		p.f.at.queueFor(qkey{p.exch, d}).push(inItem{b: b, bytes: wire, from: -1, key: key})
		return nil
	}
	payload := appendStreamHdr(nil, streamHdr{qid: p.f.qid, exch: p.exch, src: p.src, dst: d})
	hdrLen := len(payload)
	payload, err := encodeBatch(payload, b)
	b.Release()
	if err != nil {
		return err
	}
	frameLen := len(payload) - hdrLen
	if err := gate.acquire(frameLen); err != nil {
		return err
	}
	c := p.f.ep.peerConn(proc)
	if c == nil {
		return &NetError{Msg: "no connection for stream destination", Peer: proc}
	}
	t0 := time.Now()
	if err := c.writeFrame(msgData, payload); err != nil {
		return &NetError{Msg: err.Error(), Peer: proc}
	}
	// Measured per-link traffic: actual frame bytes and write time feed
	// the Bala-Join-style link weights of cluster/links.go.
	p.f.ex.Meter.AddLinkNanos(p.src, d, frameLen, time.Since(t0).Nanoseconds())
	return nil
}

// sendEOSAll marks the stream end toward every destination.
func (p *pump) sendEOSAll(dsts []int) error {
	var first error
	for _, d := range dsts {
		proc := p.dstProc(d)
		if proc == p.f.me {
			p.f.at.queueFor(qkey{p.exch, d}).eosFrom(p.src)
			continue
		}
		c := p.f.ep.peerConn(proc)
		if c == nil {
			if first == nil {
				first = &NetError{Msg: "no connection for stream end", Peer: proc}
			}
			continue
		}
		hdr := appendStreamHdr(nil, streamHdr{qid: p.f.qid, exch: p.exch, src: p.src, dst: d})
		if err := c.writeFrame(msgEOS, hdr); err != nil && first == nil {
			first = &NetError{Msg: err.Error(), Peer: proc}
		}
	}
	return first
}

// encodeBatch appends the batch's tuple run frame: the columnar
// encoder for columnar batches (pump-packed batches are always
// selection-free, which the columnar encoder requires), the row
// encoder otherwise.
func encodeBatch(dst []byte, b *exec.Batch) ([]byte, error) {
	if cb := b.Cols(); cb != nil {
		if cb.Sel() != nil {
			return nil, fmt.Errorf("net: cannot encode a columnar batch with a selection")
		}
		return cb.AppendFrame(dst), nil
	}
	return tuple.AppendFrame(dst, b.Rows())
}
