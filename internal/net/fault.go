// Network fault injection — the socket-layer mirror of exec's spillFS
// seam. A FaultPlan rides in a query message and arms exactly one
// process's connections: when the Nth frame of the targeted type is
// about to be written, the connection resets (RST via zero linger),
// writes half a frame and dies, stalls silently (both sides' keepalive
// deadlines then declare it dead), or the whole process exits — the
// mid-stream node kill. Every fault either fails the query with a
// surfaced error or is transparently retried on a replica; the fault
// test wall sweeps kinds × protocol points and asserts exactly that.
package net

import (
	"encoding/binary"
	"os"
)

// Fault kinds.
const (
	FaultReset   = "reset"   // abrupt close with RST
	FaultPartial = "partial" // write a truncated frame, then reset
	FaultStall   = "stall"   // stop writing and answering; deadlines fire
	FaultKill    = "kill"    // os.Exit mid-stream — the node death
)

// FaultPlan arms one fault in one process for one query. Msg names the
// protocol point by frame type ("data", "eos", "credit", "qdone");
// After is the 1-based count of matching frames written before the
// fault fires. Peer restricts the arm to the connection toward one
// process (-1 arms every connection, firing on whichever writes the
// Nth matching frame first).
type FaultPlan struct {
	Proc  int
	Peer  int
	Msg   string
	After int
	Kind  string
}

func (f *FaultPlan) matchesMsg(typ byte) bool {
	return f != nil && f.Msg == msgName(typ)
}

// arm installs the plan on this connection (peer already filtered by
// the caller). onKill, when non-nil, handles a kill fault instead of
// os.Exit — in-process workers emulate node death by dropping all
// their connections, since exiting would take the test binary with
// them.
func (c *conn) arm(f *FaultPlan, onKill func()) {
	c.faultMu.Lock()
	c.fault = f
	c.faultN = 0
	c.onKill = onKill
	c.faultMu.Unlock()
}

func (c *conn) stallActive() bool {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	return c.stalled
}

// checkFault fires an armed fault when the Nth matching frame is about
// to be written. It returns true when the write must be swallowed
// (stall) — reset/partial kill the connection instead, and kill never
// returns. Called under the writer mutex.
func (c *conn) checkFault(typ byte) bool {
	c.faultMu.Lock()
	if c.stalled {
		c.faultMu.Unlock()
		return true
	}
	f := c.fault
	if f == nil || !f.matchesMsg(typ) {
		c.faultMu.Unlock()
		return false
	}
	c.faultN++
	if c.faultN < f.After {
		c.faultMu.Unlock()
		return false
	}
	c.fault = nil // one-shot
	kind := f.Kind
	if kind == FaultStall {
		c.stalled = true
	}
	kill := c.onKill
	c.faultMu.Unlock()

	switch kind {
	case FaultKill:
		if kill != nil {
			kill()
			return true
		}
		os.Exit(1)
	case FaultStall:
		return true
	case FaultPartial:
		// Half a frame: a length prefix promising more than arrives.
		var hdr [5]byte
		binary.LittleEndian.PutUint32(hdr[:4], 64)
		hdr[4] = typ
		c.nc.Write(hdr[:])
		fallthrough
	case FaultReset:
		abruptClose(c)
	}
	return true
}

// abruptClose drops the connection with an RST where the platform
// allows it, so the peer sees a hard failure, not a graceful EOF.
func abruptClose(c *conn) {
	type lingerer interface{ SetLinger(int) error }
	if tc, ok := c.nc.(lingerer); ok {
		tc.SetLinger(0)
	}
	c.die(errFault)
}

var errFault = &NetError{Msg: "injected fault"}
