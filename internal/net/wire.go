// Package net is the TCP execution fabric: the multi-process twin of
// the in-process simulated NodeSet. A coordinator process and W worker
// processes each hold a full deterministic replica of the store (same
// generator seed, same load order, same adaptation sequence), so every
// process compiles the identical distributed plan and instantiates only
// the plan fragments it hosts. Exchange rows travel as length-prefixed
// frames (the tuple run-frame codec) over one TCP connection per
// process pair, multiplexed per query and per stream, under credit-
// based flow control; when a worker dies mid-query the coordinator
// reassigns its fragments to a surviving replica holder and retries,
// and the query still returns the correct result.
//
// This file is the wire layer: framing, message types, and the conn
// wrapper every higher layer writes through — one writer mutex per
// connection, a demux reader loop, keepalive pings with a read
// deadline so a stalled peer becomes a dead connection, and the fault-
// injection arm point the test wall drives.
package net

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/query"
)

// Frame types. Every frame is [uint32 LE length][type byte][payload];
// length counts the type byte plus payload.
const (
	msgHello  byte = 1  // worker → coordinator / mesh peer: identify
	msgSetup  byte = 2  // coordinator → worker: dataset + exec config
	msgReady  byte = 3  // worker → coordinator: replica built, mesh up
	msgQuery  byte = 4  // coordinator → worker: dispatch one attempt
	msgAbort  byte = 5  // coordinator → worker: cancel an attempt
	msgData   byte = 6  // stream frame: header + tuple run frame
	msgEOS    byte = 7  // stream end from one producer
	msgCredit byte = 8  // receiver returns window bytes to a producer
	msgQErr   byte = 9  // worker → coordinator: attempt failed
	msgQDone  byte = 10 // worker → coordinator: attempt done + counters
	msgPing   byte = 11
	msgPong   byte = 12
)

// maxWireFrame bounds a single frame; a corrupt length prefix larger
// than this kills the connection instead of driving an allocation.
const maxWireFrame = 1 << 28

// msgName renders a frame type for errors and fault plans.
func msgName(t byte) string {
	switch t {
	case msgHello:
		return "hello"
	case msgSetup:
		return "setup"
	case msgReady:
		return "ready"
	case msgQuery:
		return "query"
	case msgAbort:
		return "abort"
	case msgData:
		return "data"
	case msgEOS:
		return "eos"
	case msgCredit:
		return "credit"
	case msgQErr:
		return "qerr"
	case msgQDone:
		return "qdone"
	case msgPing:
		return "ping"
	case msgPong:
		return "pong"
	}
	return fmt.Sprintf("msg(%d)", t)
}

// helloMsg identifies the dialing process. Addr is the worker's mesh
// listen address (empty on mesh connections and from the coordinator).
type helloMsg struct {
	Proc int
	Addr string
}

// ExecConfig is the execution configuration every process must share
// for deterministic replicated compilation: any divergence (a different
// cost model, budget, or optimizer seed) would make two processes pick
// different join strategies for the same query and mis-wire the
// exchange streams.
type ExecConfig struct {
	Model          cluster.CostModel
	Optimizer      OptimizerConfig
	BudgetBlocks   int
	ForceShuffle   bool
	FixedOrder     bool
	EstScale       float64
	MemBudget      int64
	Workers        int
	WorkersPerNode int
}

// OptimizerConfig mirrors optimizer.Config field-for-field so the setup
// message stays serializable without importing the optimizer package
// into the wire layer's JSON surface.
type OptimizerConfig struct {
	Mode       int
	WindowSize int
	FMin       int
	Amoeba     bool
	Seed       int64
}

// setupMsg tells a worker how to become a replica: which dataset to
// build (via the process-local registry), the mesh addresses of its
// peers, and the shared execution configuration.
type setupMsg struct {
	N           int    // plan fragments = store nodes
	Dataset     string // registry name
	Params      json.RawMessage
	Procs       map[int]string // proc id → mesh address
	Exec        ExecConfig
	Window      int   // credit window bytes per stream
	KeepAliveMs int64 // keepalive interval; 0 disables
}

// linkRec is one per-link traffic record in a qdone message (a slice,
// not a map: JSON objects cannot key on structs).
type linkRec struct {
	Src, Dst           int
	Rows, Bytes, Nanos float64
}

func linksToRecs(s cluster.LinkStats) []linkRec {
	if len(s) == 0 {
		return nil
	}
	out := make([]linkRec, 0, len(s))
	for _, k := range s.Keys() {
		st := s[k]
		out = append(out, linkRec{Src: k.Src, Dst: k.Dst, Rows: st.Rows, Bytes: st.Bytes, Nanos: st.Nanos})
	}
	return out
}

func recsToLinks(recs []linkRec) cluster.LinkStats {
	if len(recs) == 0 {
		return nil
	}
	s := make(cluster.LinkStats, len(recs))
	for _, r := range recs {
		s[cluster.LinkKey{Src: r.Src, Dst: r.Dst}] = cluster.LinkStat{Rows: r.Rows, Bytes: r.Bytes, Nanos: r.Nanos}
	}
	return s
}

// weightRec ships one measured link weight with a query so every
// process compiles with identical link pricing.
type weightRec struct {
	Src, Dst int
	W        float64
}

func weightsToRecs(w cluster.LinkWeights) []weightRec {
	if len(w) == 0 {
		return nil
	}
	out := make([]weightRec, 0, len(w))
	for k, v := range w {
		out = append(out, weightRec{Src: k.Src, Dst: k.Dst, W: v})
	}
	return out
}

func recsToWeights(recs []weightRec) cluster.LinkWeights {
	if len(recs) == 0 {
		return nil
	}
	w := make(cluster.LinkWeights, len(recs))
	for _, r := range recs {
		w[cluster.LinkKey{Src: r.Src, Dst: r.Dst}] = r.W
	}
	return w
}

// queryMsg dispatches one attempt of one query. Assign maps plan
// fragment → hosting proc; Seq is the query's position in the session
// stream (adaptation replays once per seq, so a retry of the same seq
// never re-adapts). Weights carry the coordinator's measured link
// weights so replicated compiles price shuffles identically.
type queryMsg struct {
	QID     uint64
	Seq     int
	Spec    query.Spec
	Assign  []int
	Weights []weightRec
	Fault   *FaultPlan
}

type abortMsg struct {
	QID uint64
}

// qerrMsg reports a failed attempt. Net marks transport-layer failures
// (peer death, reset streams) — the class the coordinator retries on a
// surviving replica; non-net failures surface to the caller as-is.
type qerrMsg struct {
	QID uint64
	Msg string
	Net bool
}

// qdoneMsg reports a completed attempt with the worker's metered
// execution counters and per-link traffic.
type qdoneMsg struct {
	QID      uint64
	Counters cluster.Counters
	Links    []linkRec
}

// streamHdr addresses one exchange stream within a query: the
// deterministic per-compile exchange id, the producing fragment (-1 for
// a coordinator stream), and the consuming fragment (-1 for a gather
// back to the coordinator).
type streamHdr struct {
	qid  uint64
	exch int
	src  int
	dst  int
}

func appendStreamHdr(b []byte, h streamHdr) []byte {
	b = binary.AppendUvarint(b, h.qid)
	b = binary.AppendUvarint(b, uint64(h.exch))
	b = binary.AppendVarint(b, int64(h.src))
	b = binary.AppendVarint(b, int64(h.dst))
	return b
}

func decodeStreamHdr(b []byte) (streamHdr, []byte, error) {
	var h streamHdr
	qid, n := binary.Uvarint(b)
	if n <= 0 {
		return h, nil, fmt.Errorf("net: stream header: bad qid")
	}
	b = b[n:]
	exch, n := binary.Uvarint(b)
	if n <= 0 {
		return h, nil, fmt.Errorf("net: stream header: bad exchange id")
	}
	b = b[n:]
	src, n := binary.Varint(b)
	if n <= 0 {
		return h, nil, fmt.Errorf("net: stream header: bad src")
	}
	b = b[n:]
	dst, n := binary.Varint(b)
	if n <= 0 {
		return h, nil, fmt.Errorf("net: stream header: bad dst")
	}
	b = b[n:]
	h.qid, h.exch, h.src, h.dst = qid, int(exch), int(src), int(dst)
	return h, b, nil
}

// creditMsg payload: stream header + uvarint byte count.

// conn wraps one TCP connection to a peer process: a writer mutex (any
// goroutine may send), a reader loop that demuxes frames into the
// endpoint, a keepalive pinger, and the fault arm point.
type conn struct {
	nc   gonet.Conn
	peer int // remote proc id; -1 until hello

	wmu    sync.Mutex
	wbuf   []byte // reused frame assembly buffer
	closed sync.Once
	dead   chan struct{}
	err    error // first fatal error, set before dead closes
	errMu  sync.Mutex

	// ka is the keepalive interval in nanoseconds; 0 disables read
	// deadlines. Atomic because the coordinator enables it only once a
	// worker reports ready — a worker is legitimately silent while it
	// builds its replica, and a deadline during the build would declare
	// a healthy worker dead.
	ka       atomic.Int64
	pingOnce sync.Once

	faultMu sync.Mutex
	fault   *FaultPlan
	faultN  int
	stalled bool
	onKill  func() // kill-fault override for in-process workers
}

func newConn(nc gonet.Conn, ka time.Duration) *conn {
	c := &conn{nc: nc, peer: -1, dead: make(chan struct{})}
	if ka > 0 {
		c.ka.Store(int64(ka))
	}
	return c
}

func (c *conn) kaDur() time.Duration { return time.Duration(c.ka.Load()) }

// enableKeepAlive turns on the ping loop and read deadlines (idempotent;
// no-op for a non-positive interval).
func (c *conn) enableKeepAlive(d time.Duration) {
	if d <= 0 {
		return
	}
	c.ka.Store(int64(d))
	c.pingOnce.Do(func() { go c.pinger() })
}

// die records the first fatal error and closes the socket exactly once.
func (c *conn) die(err error) {
	c.errMu.Lock()
	if c.err == nil && err != nil {
		c.err = err
	}
	c.errMu.Unlock()
	c.closed.Do(func() {
		close(c.dead)
		c.nc.Close()
	})
}

func (c *conn) deadErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.err != nil {
		return c.err
	}
	return fmt.Errorf("net: connection to proc %d closed", c.peer)
}

func (c *conn) isDead() bool {
	select {
	case <-c.dead:
		return true
	default:
		return false
	}
}

// writeFrame sends one frame. It is the fault arm point: an armed
// fault matching typ fires here (reset, partial write, stall, or
// process kill) before or instead of the real write.
func (c *conn) writeFrame(typ byte, payload []byte) error {
	if c.isDead() {
		return c.deadErr()
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.checkFault(typ) {
		// Stalled: swallow the write. The peer's read deadline will
		// declare this connection dead; so will ours.
		return nil
	}
	if c.isDead() {
		return c.deadErr()
	}
	n := 1 + len(payload)
	b := c.wbuf[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = append(b, typ)
	b = append(b, payload...)
	c.wbuf = b[:0]
	if _, err := c.nc.Write(b); err != nil {
		c.die(fmt.Errorf("net: write to proc %d: %w", c.peer, err))
		return c.deadErr()
	}
	return nil
}

// writeJSON sends a JSON-encoded control frame.
func (c *conn) writeJSON(typ byte, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("net: encode %s: %w", msgName(typ), err)
	}
	return c.writeFrame(typ, b)
}

// readFrame reads one frame under the keepalive deadline.
func (c *conn) readFrame(buf []byte) (byte, []byte, []byte, error) {
	if d := c.kaDur(); d > 0 {
		c.nc.SetReadDeadline(time.Now().Add(3 * d))
	} else {
		c.nc.SetReadDeadline(time.Time{})
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c.nc, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxWireFrame {
		return 0, nil, buf, fmt.Errorf("net: implausible frame length %d", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(c.nc, buf); err != nil {
		return 0, nil, buf, err
	}
	return buf[0], buf[1:], buf, nil
}

// serve runs the reader loop, dispatching every frame to handle until
// the connection dies. Pings are answered here; pongs (and every other
// frame) refresh the read deadline implicitly. onDead runs once with
// the fatal error.
func (c *conn) serve(handle func(typ byte, payload []byte) error, onDead func(error)) {
	c.enableKeepAlive(c.kaDur())
	var buf []byte
	for {
		typ, payload, nbuf, err := c.readFrame(buf)
		buf = nbuf
		if err != nil {
			c.die(fmt.Errorf("net: read from proc %d: %w", c.peer, err))
			break
		}
		if c.stallActive() {
			// A stalled connection reads nothing more: drop the frame and
			// wait for the deadline to declare the conn dead.
			continue
		}
		switch typ {
		case msgPing:
			c.writeFrame(msgPong, nil)
			continue
		case msgPong:
			continue
		}
		if err := handle(typ, payload); err != nil {
			c.die(err)
			break
		}
	}
	if onDead != nil {
		onDead(c.deadErr())
	}
}

func (c *conn) pinger() {
	t := time.NewTicker(c.kaDur())
	defer t.Stop()
	for {
		select {
		case <-c.dead:
			return
		case <-t.C:
			if c.stallActive() {
				continue // a stalled conn stops pinging so peers notice
			}
			if c.writeFrame(msgPing, nil) != nil {
				return
			}
		}
	}
}
