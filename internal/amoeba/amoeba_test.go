package amoeba

import (
	"math/rand"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
	"adaptdb/internal/workload"
)

var sch = schema.MustNew(
	schema.Column{Name: "a", Kind: value.Int},
	schema.Column{Name: "b", Kind: value.Int},
	schema.Column{Name: "c", Kind: value.Int},
)

func genRows(n int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
		}
	}
	return rows
}

func setup(t *testing.T) (*core.Table, *Adapter, []tuple.Tuple) {
	t.Helper()
	store := dfs.NewStore(4, 2, 1)
	rows := genRows(2048, 1)
	// Partition only on attributes a and b, so predicates on c create
	// adaptation pressure.
	tbl, err := core.Load(store, "t", sch, rows, core.LoadOptions{
		RowsPerBlock: 128, Seed: 1, JoinAttr: -1, Attrs: []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewWindow(10)
	return tbl, New(w), rows
}

func cPred(v int64) []predicate.Predicate {
	return []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(v))}
}

func blocksRead(tbl *core.Table, preds []predicate.Predicate) int {
	return len(tbl.Refs(0, preds))
}

func countAll(t *testing.T, tbl *core.Table) int {
	t.Helper()
	total := 0
	for _, i := range tbl.LiveTrees() {
		total += tbl.RowsUnder(i)
	}
	return total
}

func TestEmptyWindowNoAdaptation(t *testing.T) {
	tbl, a, _ := setup(t)
	var meter cluster.Meter
	n, err := a.Step(tbl, 0, &meter)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("adapted with empty window")
	}
}

func TestAdaptsTowardPredicateColumn(t *testing.T) {
	tbl, a, rows := setup(t)
	before := blocksRead(tbl, cPred(200))
	var meter cluster.Meter
	// Feed a steady stream of c < 200 queries and adapt after each.
	applied := 0
	for i := 0; i < 15; i++ {
		a.Window.Add(workload.Query{JoinAttr: -1, Preds: cPred(200)})
		n, err := a.Step(tbl, 0, &meter)
		if err != nil {
			t.Fatal(err)
		}
		applied += n
	}
	if applied == 0 {
		t.Fatalf("no transformations applied under steady predicate pressure")
	}
	after := blocksRead(tbl, cPred(200))
	if after >= before {
		t.Errorf("blocks read for c<200 did not improve: %d -> %d", before, after)
	}
	// No rows lost and routing stays correct.
	if countAll(t, tbl) != 2048 {
		t.Fatalf("rows lost: %d", countAll(t, tbl))
	}
	matches := 0
	for _, r := range rows {
		if r[2].Int64() < 200 {
			matches++
		}
	}
	// Soundness: scanning the pruned refs yields every matching row.
	got := 0
	for _, ref := range tbl.Refs(0, cPred(200)) {
		blk, _, err := tbl.Store().GetBlock(ref.Path, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range blk.Tuples {
			if r[2].Int64() < 200 {
				got++
			}
		}
	}
	if got != matches {
		t.Errorf("pruned scan found %d matching rows, want %d", got, matches)
	}
}

func TestAdaptationMetersIO(t *testing.T) {
	tbl, a, _ := setup(t)
	var meter cluster.Meter
	for i := 0; i < 5; i++ {
		a.Window.Add(workload.Query{JoinAttr: -1, Preds: cPred(100)})
		if _, err := a.Step(tbl, 0, &meter); err != nil {
			t.Fatal(err)
		}
	}
	c := meter.Snapshot()
	if c.RepartRows == 0 {
		t.Skip("no transformation fired for this data/seed; nothing to meter")
	}
	if c.ScanLocal+c.ScanRemote < c.RepartRows {
		t.Errorf("repartitioned rows must also be scanned: %+v", c)
	}
}

func TestMaxMovesPerStepRespected(t *testing.T) {
	tbl, a, _ := setup(t)
	a.MaxMovesPerStep = 1
	var meter cluster.Meter
	a.Window.Add(workload.Query{JoinAttr: -1, Preds: cPred(500)})
	n, err := a.Step(tbl, 0, &meter)
	if err != nil {
		t.Fatal(err)
	}
	if n > 1 {
		t.Errorf("applied %d moves with budget 1", n)
	}
}

func TestNoBeneficialCandidateNoChange(t *testing.T) {
	tbl, a, _ := setup(t)
	// Predicates on an attribute already in the tree everywhere: swapping
	// to it yields no extra benefit.
	var meter cluster.Meter
	a.Window.Add(workload.Query{JoinAttr: -1, Preds: []predicate.Predicate{
		predicate.NewCmp(0, predicate.LT, value.NewInt(500)),
	}})
	treeBefore := tbl.Trees[0].Tree.String()
	for i := 0; i < 3; i++ {
		if _, err := a.Step(tbl, 0, &meter); err != nil {
			t.Fatal(err)
		}
	}
	_ = treeBefore // tree may legitimately adapt at leaf pairs not split on 0
	if countAll(t, tbl) != 2048 {
		t.Errorf("rows lost: %d", countAll(t, tbl))
	}
}

func TestStepOnMissingTree(t *testing.T) {
	tbl, a, _ := setup(t)
	a.Window.Add(workload.Query{JoinAttr: -1, Preds: cPred(100)})
	var meter cluster.Meter
	if _, err := a.Step(tbl, 7, &meter); err == nil {
		t.Errorf("missing tree accepted")
	}
}
