// Package amoeba implements Amoeba's adaptive repartitioning for
// selection predicates (§3.2): after each query, generate alternative
// partitioning trees by applying transformation rules to the current
// tree ("merge two existing blocks partitioned on A and repartition them
// on B"), estimate each alternative's benefit over the query window
// against its repartitioning cost, and apply the best one when the
// benefit wins.
//
// The transformation implemented is the paper's canonical rule at
// leaf-pair granularity: an internal node whose children are both leaves
// can swap its split attribute for a predicate attribute observed in the
// window, physically re-routing the two buckets' rows. Applied query
// after query, these local moves push frequently filtered attributes
// down into the tree exactly as Amoeba's bottom-up search does.
package amoeba

import (
	"fmt"

	"adaptdb/internal/block"
	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/predicate"
	"adaptdb/internal/sample"
	"adaptdb/internal/tree"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
	"adaptdb/internal/workload"
)

// Adapter drives selection-based adaptation for one table.
type Adapter struct {
	// Window is the table's recent-query window.
	Window *workload.Window
	// RepartCostFactor weighs the cost of repartitioning one row against
	// scanning one row (read + write ≈ 3, like CSJ).
	RepartCostFactor float64
	// MaxMovesPerStep bounds how many transformations one query may
	// trigger, keeping per-query overhead smooth.
	MaxMovesPerStep int
}

// New returns an adapter with the defaults used in the experiments.
func New(w *workload.Window) *Adapter {
	return &Adapter{Window: w, RepartCostFactor: 3.0, MaxMovesPerStep: 2}
}

// candidate is one proposed leaf-pair transformation.
type candidate struct {
	node    *tree.Node
	attr    int
	cut     value.Value
	benefit float64
}

// Step considers transformations on the given tree of the table and
// applies up to MaxMovesPerStep of them. It returns the number applied.
// Join-attribute levels of two-phase trees are never touched: those
// belong to smooth repartitioning.
func (a *Adapter) Step(tbl *core.Table, treeIdx int, meter *cluster.Meter) (int, error) {
	if treeIdx < 0 || treeIdx >= len(tbl.Trees) || tbl.Trees[treeIdx] == nil {
		return 0, fmt.Errorf("amoeba: no tree %d on %s", treeIdx, tbl.Name)
	}
	if a.Window.Len() == 0 {
		return 0, nil
	}
	ti := tbl.Trees[treeIdx]
	applied := 0
	for applied < a.MaxMovesPerStep {
		cand := a.bestCandidate(tbl, ti)
		if cand == nil {
			break
		}
		if err := a.apply(tbl, treeIdx, cand, meter); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// bestCandidate scans leaf-pair nodes bottom-up and returns the highest
// net-benefit transformation, or nil when nothing beats its cost.
func (a *Adapter) bestCandidate(tbl *core.Table, ti *core.TreeInfo) *candidate {
	predCols := a.Window.PredColumns()
	if len(predCols) == 0 {
		return nil
	}
	queries := a.Window.Queries()
	var best *candidate
	ti.Tree.Walk(func(n *tree.Node) {
		if n.Leaf || !n.Left.Leaf || !n.Right.Leaf {
			return
		}
		lMeta, lOK := ti.Metas[n.Left.Bucket]
		rMeta, rOK := ti.Metas[n.Right.Bucket]
		if !lOK && !rOK {
			return // empty pair
		}
		rows := 0
		if lOK {
			rows += lMeta.Count
		}
		if rOK {
			rows += rMeta.Count
		}
		if rows == 0 {
			return
		}
		curSaved := a.savedRows(queries, n.Attr, n.Cut, tbl, ti, n)
		for col := range predCols {
			if col == n.Attr {
				continue
			}
			cut, ok := a.chooseCut(tbl, ti, n, col)
			if !ok {
				continue
			}
			candSaved := a.savedRows(queries, col, cut, tbl, ti, n)
			benefit := candSaved - curSaved
			cost := float64(rows) * a.RepartCostFactor / float64(a.Window.Cap())
			// Benefit accrues per window run; cost is one-time, amortized
			// over the window length.
			if benefit-cost > 0 {
				if best == nil || benefit-cost > best.benefit {
					best = &candidate{node: n, attr: col, cut: cut, benefit: benefit - cost}
				}
			}
		}
	})
	return best
}

// savedRows estimates how many rows per window run a split (attr, cut)
// at node n saves: for each window query, if the query's range on attr
// falls entirely on one side of the cut, half the node's rows are
// skipped.
func (a *Adapter) savedRows(queries []workload.Query, attr int, cut value.Value, tbl *core.Table, ti *core.TreeInfo, n *tree.Node) float64 {
	rows := 0
	if m, ok := ti.Metas[n.Left.Bucket]; ok {
		rows += m.Count
	}
	if m, ok := ti.Metas[n.Right.Bucket]; ok {
		rows += m.Count
	}
	half := float64(rows) / 2
	leftIv := predicate.Range{HasHi: true, Hi: cut}
	rightIv := predicate.Range{HasLo: true, Lo: cut, LoOpen: true}
	saved := 0.0
	for _, q := range queries {
		ranges := predicate.ColumnRanges(q.Preds)
		r, ok := ranges[attr]
		if !ok {
			continue
		}
		hitsLeft := r.Overlaps(leftIv)
		hitsRight := r.Overlaps(rightIv)
		if hitsLeft != hitsRight { // prunes exactly one side
			saved += half
		}
	}
	return saved
}

// chooseCut picks a cut for column col over the rows under node n: the
// median of the two buckets' sampled values. Returns false when the
// local data cannot be split on col.
func (a *Adapter) chooseCut(tbl *core.Table, ti *core.TreeInfo, n *tree.Node, col int) (value.Value, bool) {
	var vals []value.Value
	for _, leaf := range []*tree.Node{n.Left, n.Right} {
		meta, ok := ti.Metas[leaf.Bucket]
		if !ok {
			continue
		}
		blk, _, err := tbl.Store().GetBlock(tbl.BlockPath(treeIndexOf(tbl, ti), leaf.Bucket), 0)
		if err != nil {
			continue
		}
		_ = meta
		for _, r := range blk.Tuples {
			vals = append(vals, r[col])
		}
	}
	if len(vals) < 2 {
		return value.Value{}, false
	}
	sorted := sample.SortValues(vals)
	med := sorted[(len(sorted)-1)/2]
	if value.Compare(med, sorted[len(sorted)-1]) == 0 {
		// Degenerate: median equals max; find a lower distinct value.
		for i := len(sorted) - 1; i >= 0; i-- {
			if value.Compare(sorted[i], med) < 0 {
				return sorted[i], true
			}
		}
		return value.Value{}, false
	}
	return med, true
}

func treeIndexOf(tbl *core.Table, ti *core.TreeInfo) int {
	for i, t := range tbl.Trees {
		if t == ti {
			return i
		}
	}
	return -1
}

// apply physically performs a transformation: reads the two buckets,
// swaps the node's split, re-routes the rows, rewrites both blocks and
// refreshes metadata. Reads and writes are metered like any
// repartitioning I/O.
func (a *Adapter) apply(tbl *core.Table, treeIdx int, c *candidate, meter *cluster.Meter) error {
	ti := tbl.Trees[treeIdx]
	lB, rB := c.node.Left.Bucket, c.node.Right.Bucket
	var rows []tuple.Tuple
	for _, b := range []block.ID{lB, rB} {
		if _, ok := ti.Metas[b]; !ok {
			continue
		}
		blk, local, err := tbl.Store().GetBlock(tbl.BlockPath(treeIdx, b), 0)
		if err != nil {
			return err
		}
		if meter != nil {
			meter.AddScan(blk.Len(), local)
			meter.AddRepartWrite(blk.Len())
		}
		rows = append(rows, blk.Tuples...)
	}
	c.node.Attr = c.attr
	c.node.Cut = c.cut
	left := block.New(tbl.Schema)
	right := block.New(tbl.Schema)
	for _, r := range rows {
		if value.Compare(r[c.attr], c.cut) <= 0 {
			left.Append(r)
		} else {
			right.Append(r)
		}
	}
	writeOrDrop := func(b block.ID, blk *block.Block) {
		path := tbl.BlockPath(treeIdx, b)
		if blk.Len() == 0 {
			tbl.Store().Delete(path)
			delete(ti.Metas, b)
			return
		}
		tbl.Store().PutBlock(path, blk)
		ti.Metas[b] = block.MetaOf(b, blk)
	}
	writeOrDrop(lB, left)
	writeOrDrop(rB, right)
	tbl.Persist()
	return nil
}
