package twophase

import (
	"math/rand"

	"adaptdb/internal/block"
	"adaptdb/internal/sample"
	"adaptdb/internal/schema"
	"adaptdb/internal/tree"
	"adaptdb/internal/tuple"
	"adaptdb/internal/upfront"
	"adaptdb/internal/value"
)

// Builder configures a two-phase partitioning run.
type Builder struct {
	Schema *schema.Schema
	// JoinAttr is the column injected at the top of the tree.
	JoinAttr int
	// JoinLevels is how many top levels split on JoinAttr (the paper
	// defaults to half the tree depth; Fig. 16 sweeps this).
	JoinLevels int
	// SelAttrs are the selection attributes for the lower levels. Empty
	// means all columns except JoinAttr.
	SelAttrs []int
	// TotalDepth is the full tree depth; TotalDepth - JoinLevels levels go
	// to selection attributes.
	TotalDepth int
	Seed       int64
}

// Build constructs the two-phase tree from a data sample. Join-attribute
// cut points are medians computed per subtree over the sorted sample
// ("we do this efficiently by sorting all values of the attribute in the
// sample at the root, and recursively computing medians for each subtree"
// — §5.1); lower levels use upfront.GrowNode.
func (b Builder) Build(rows []tuple.Tuple) *tree.Tree {
	joinLevels := b.JoinLevels
	if joinLevels > b.TotalDepth {
		joinLevels = b.TotalDepth
	}
	selAttrs := b.SelAttrs
	if len(selAttrs) == 0 {
		for i := 0; i < b.Schema.NumCols(); i++ {
			if i != b.JoinAttr {
				selAttrs = append(selAttrs, i)
			}
		}
	}
	rng := rand.New(rand.NewSource(b.Seed))
	ways := make(map[int]int)
	var next block.ID
	alloc := func() block.ID {
		id := next
		next++
		return id
	}
	root := b.growJoinLevels(rows, joinLevels, selAttrs, ways, rng, alloc)
	return tree.NewWithRoot(b.Schema, root, b.JoinAttr, joinLevels)
}

func (b Builder) growJoinLevels(rows []tuple.Tuple, joinLevels int, selAttrs []int, ways map[int]int, rng *rand.Rand, alloc func() block.ID) *tree.Node {
	if joinLevels <= 0 {
		selDepth := b.TotalDepth - b.JoinLevels
		if b.JoinLevels > b.TotalDepth {
			selDepth = 0
		}
		return upfront.GrowNode(rows, selAttrs, selDepth, ways, rng, alloc)
	}
	cut, ok := joinMedian(rows, b.JoinAttr)
	if !ok {
		// Cannot split the join attribute further (e.g. single distinct
		// value in this subtree); fall through to selection levels plus
		// whatever join levels remain as extra selection depth.
		selDepth := b.TotalDepth - b.JoinLevels + joinLevels
		return upfront.GrowNode(rows, selAttrs, selDepth, ways, rng, alloc)
	}
	var left, right []tuple.Tuple
	for _, t := range rows {
		if value.Compare(t[b.JoinAttr], cut) <= 0 {
			left = append(left, t)
		} else {
			right = append(right, t)
		}
	}
	return &tree.Node{
		Attr:  b.JoinAttr,
		Cut:   cut,
		Left:  b.growJoinLevels(left, joinLevels-1, selAttrs, ways, rng, alloc),
		Right: b.growJoinLevels(right, joinLevels-1, selAttrs, ways, rng, alloc),
	}
}

// joinMedian picks the median cut of the join attribute over the local
// sample, guaranteeing a non-degenerate split (cut strictly below max).
func joinMedian(rows []tuple.Tuple, attr int) (value.Value, bool) {
	vals := sample.Column(rows, attr)
	if len(vals) < 2 {
		return value.Value{}, false
	}
	sorted := sample.SortValues(vals)
	med := sorted[(len(sorted)-1)/2]
	maxV := sorted[len(sorted)-1]
	if value.Compare(med, maxV) == 0 {
		// Skewed: median equals max. Find the largest value < max.
		var lower value.Value
		found := false
		for _, v := range sorted {
			if value.Compare(v, maxV) < 0 {
				lower, found = v, true
			}
		}
		if !found {
			return value.Value{}, false
		}
		med = lower
	}
	return med, true
}
