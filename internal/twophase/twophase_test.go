package twophase

import (
	"math/rand"
	"testing"

	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tree"
	"adaptdb/internal/tuple"
	"adaptdb/internal/upfront"
	"adaptdb/internal/value"
)

var sch = schema.MustNew(
	schema.Column{Name: "orderkey", Kind: value.Int},
	schema.Column{Name: "shipdate", Kind: value.Int},
	schema.Column{Name: "quantity", Kind: value.Int},
)

func genRows(n int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{
			value.NewInt(rng.Int63n(100000)),
			value.NewInt(rng.Int63n(2500)),
			value.NewInt(rng.Int63n(50)),
		}
	}
	return rows
}

func TestBuildStructure(t *testing.T) {
	rows := genRows(4096, 1)
	tr := Builder{Schema: sch, JoinAttr: 0, JoinLevels: 2, TotalDepth: 4, Seed: 1}.Build(rows)
	if tr.JoinAttr != 0 || tr.JoinLevels != 2 {
		t.Fatalf("join metadata lost: attr=%d levels=%d", tr.JoinAttr, tr.JoinLevels)
	}
	if tr.NumBuckets() != 16 {
		t.Fatalf("buckets = %d, want 16", tr.NumBuckets())
	}
	// The top two levels must split on the join attribute...
	root := tr.Root
	if root.Leaf || root.Attr != 0 {
		t.Fatalf("root must split on join attr, got %+v", root)
	}
	for _, n := range []*tree.Node{root.Left, root.Right} {
		if n.Leaf || n.Attr != 0 {
			t.Fatalf("level-1 node must split on join attr, got %+v", n)
		}
	}
	// ...and level 2 (first selection level) must not.
	for _, n := range []*tree.Node{root.Left.Left, root.Left.Right, root.Right.Left, root.Right.Right} {
		if !n.Leaf && n.Attr == 0 {
			t.Errorf("selection level split on join attr")
		}
	}
}

func TestJoinRangesDisjointAndBalanced(t *testing.T) {
	rows := genRows(8192, 3)
	tr := Builder{Schema: sch, JoinAttr: 0, JoinLevels: 3, TotalDepth: 3, Seed: 1}.Build(rows)
	if tr.NumBuckets() != 8 {
		t.Fatalf("buckets = %d, want 8", tr.NumBuckets())
	}
	parts := upfront.Partition(tr, rows)
	// Balanced: medians keep buckets within 2x of ideal (§5.1 "medians
	// help avoid this skew").
	want := len(rows) / 8
	for b, blk := range parts {
		if blk.Len() < want/2 || blk.Len() > want*2 {
			t.Errorf("bucket %d has %d rows, want ≈%d", b, blk.Len(), want)
		}
	}
	// Disjoint join ranges: path ranges on the join attribute must not
	// overlap pairwise (this is what makes hyper-join effective).
	pr := tr.PathRange()
	var ranges []predicate.Range
	for _, m := range pr {
		ranges = append(ranges, m[0])
	}
	for i := 0; i < len(ranges); i++ {
		for j := i + 1; j < len(ranges); j++ {
			if ranges[i].Overlaps(ranges[j]) {
				t.Fatalf("join ranges %v and %v overlap", ranges[i], ranges[j])
			}
		}
	}
}

func TestZeroJoinLevelsDegradesToUpfront(t *testing.T) {
	rows := genRows(1024, 4)
	tr := Builder{Schema: sch, JoinAttr: 0, JoinLevels: 0, TotalDepth: 3, Seed: 1}.Build(rows)
	if tr.NumBuckets() != 8 {
		t.Fatalf("buckets = %d, want 8", tr.NumBuckets())
	}
	if tr.Root.Attr == 0 && !tr.Root.Leaf {
		// With join levels 0, the root may still happen to pick attr 0 only
		// if it were in SelAttrs — which it is not by default.
		t.Errorf("join attribute should not be used with 0 join levels")
	}
}

func TestAllJoinLevels(t *testing.T) {
	rows := genRows(1024, 5)
	tr := Builder{Schema: sch, JoinAttr: 0, JoinLevels: 5, TotalDepth: 5, Seed: 1}.Build(rows)
	al := tr.AttrLevels()
	if al[1] != 0 || al[2] != 0 {
		t.Errorf("all-join tree should not use selection attrs: %v", al)
	}
	if al[0] == 0 {
		t.Errorf("join attr unused")
	}
}

func TestJoinLevelsClampedToDepth(t *testing.T) {
	rows := genRows(512, 12)
	tr := Builder{Schema: sch, JoinAttr: 0, JoinLevels: 10, TotalDepth: 3, Seed: 1}.Build(rows)
	if tr.JoinLevels != 3 {
		t.Errorf("JoinLevels = %d, want clamped to 3", tr.JoinLevels)
	}
	if tr.Depth() > 3 {
		t.Errorf("depth = %d exceeds total", tr.Depth())
	}
}

func TestSkewedJoinAttribute(t *testing.T) {
	// 90% of rows share one join value; median splitting must not loop and
	// no rows may be lost.
	rng := rand.New(rand.NewSource(6))
	rows := make([]tuple.Tuple, 2000)
	for i := range rows {
		k := int64(7)
		if rng.Float64() > 0.9 {
			k = rng.Int63n(1000)
		}
		rows[i] = tuple.Tuple{value.NewInt(k), value.NewInt(rng.Int63n(100)), value.NewInt(rng.Int63n(100))}
	}
	tr := Builder{Schema: sch, JoinAttr: 0, JoinLevels: 2, TotalDepth: 4, Seed: 1}.Build(rows)
	parts := upfront.Partition(tr, rows)
	total := 0
	for _, blk := range parts {
		total += blk.Len()
	}
	if total != len(rows) {
		t.Fatalf("lost rows under skew: %d != %d", total, len(rows))
	}
}

func TestConstantJoinAttribute(t *testing.T) {
	// Join attribute has a single value: join levels cannot split, and the
	// tree should still use its depth on selection attributes.
	rng := rand.New(rand.NewSource(8))
	rows := make([]tuple.Tuple, 1000)
	for i := range rows {
		rows[i] = tuple.Tuple{value.NewInt(1), value.NewInt(rng.Int63n(100)), value.NewInt(rng.Int63n(100))}
	}
	tr := Builder{Schema: sch, JoinAttr: 0, JoinLevels: 2, TotalDepth: 4, Seed: 1}.Build(rows)
	if tr.NumBuckets() < 8 {
		t.Errorf("buckets = %d; selection levels should absorb unused join depth", tr.NumBuckets())
	}
	if tr.AttrLevels()[0] != 0 {
		t.Errorf("constant join attribute should not appear in tree")
	}
}

func TestRoutingMatchesPartition(t *testing.T) {
	rows := genRows(2048, 7)
	tr := Builder{Schema: sch, JoinAttr: 0, JoinLevels: 2, TotalDepth: 4, Seed: 2}.Build(rows)
	parts := upfront.Partition(tr, rows)
	for b, blk := range parts {
		for _, r := range blk.Tuples {
			if tr.Route(r) != b {
				t.Fatalf("row routed inconsistently")
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	rows := genRows(512, 8)
	a := Builder{Schema: sch, JoinAttr: 0, JoinLevels: 2, TotalDepth: 4, Seed: 9}.Build(rows)
	b := Builder{Schema: sch, JoinAttr: 0, JoinLevels: 2, TotalDepth: 4, Seed: 9}.Build(rows)
	if a.String() != b.String() {
		t.Errorf("same seed produced different trees")
	}
}
