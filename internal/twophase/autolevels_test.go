package twophase

import (
	"testing"

	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
	"adaptdb/internal/workload"
)

func predQ(cols ...int) workload.Query {
	var ps []predicate.Predicate
	for _, c := range cols {
		ps = append(ps, predicate.NewCmp(c, predicate.LT, value.NewInt(10)))
	}
	return workload.Query{JoinAttr: 0, Preds: ps}
}

func TestSuggestJoinLevelsNoPredicates(t *testing.T) {
	// Fig. 16(b): a predicate-free workload should take every level for
	// the join attribute.
	w := workload.NewWindow(10)
	for i := 0; i < 10; i++ {
		w.Add(predQ())
	}
	if got := SuggestJoinLevels(w, 8); got != 8 {
		t.Errorf("predicate-free window: %d levels, want all 8", got)
	}
}

func TestSuggestJoinLevelsSelectiveWorkload(t *testing.T) {
	// Fig. 16(a): a workload filtering on several columns should keep the
	// half-and-half default.
	w := workload.NewWindow(10)
	for i := 0; i < 10; i++ {
		w.Add(predQ(1, 2, 3, 4, 5))
	}
	if got := SuggestJoinLevels(w, 8); got != 4 {
		t.Errorf("selective window: %d levels, want half (4)", got)
	}
}

func TestSuggestJoinLevelsInterpolates(t *testing.T) {
	w := workload.NewWindow(10)
	for i := 0; i < 10; i++ {
		w.Add(predQ(1)) // one steady predicate column
	}
	if got := SuggestJoinLevels(w, 8); got != 7 {
		t.Errorf("one predicate column: %d levels, want 7", got)
	}
}

func TestSuggestJoinLevelsIgnoresRarePredicates(t *testing.T) {
	w := workload.NewWindow(10)
	for i := 0; i < 9; i++ {
		w.Add(predQ())
	}
	w.Add(predQ(1)) // a single one-off query filters on col 1
	if got := SuggestJoinLevels(w, 8); got != 8 {
		t.Errorf("rare predicate should not cost a level: got %d", got)
	}
}

func TestSuggestJoinLevelsDefaults(t *testing.T) {
	if got := SuggestJoinLevels(nil, 8); got != 4 {
		t.Errorf("nil window: %d, want half", got)
	}
	if got := SuggestJoinLevels(workload.NewWindow(5), 8); got != 4 {
		t.Errorf("empty window: %d, want half", got)
	}
	if got := SuggestJoinLevels(nil, 0); got != 0 {
		t.Errorf("zero depth: %d, want 0", got)
	}
	if got := SuggestJoinLevels(nil, 1); got != 1 {
		t.Errorf("depth 1: %d, want 1", got)
	}
}

func TestWindowSelectivity(t *testing.T) {
	w := workload.NewWindow(4)
	w.Add(predQ())     // selectivity 1
	w.Add(predQ(1))    // 0.5
	w.Add(predQ(1, 2)) // 0.25
	half := func(col int, r predicate.Range) float64 { return 0.5 }
	got := WindowSelectivity(w, half)
	want := (1.0 + 0.5 + 0.25) / 3
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("WindowSelectivity = %v, want %v", got, want)
	}
	if WindowSelectivity(nil, half) != 1.0 {
		t.Errorf("nil window should be fully unselective")
	}
}
