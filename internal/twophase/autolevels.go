package twophase

import (
	"adaptdb/internal/predicate"
	"adaptdb/internal/workload"
)

// SuggestJoinLevels implements the extension §7.4 sketches as future
// work: "a future exploration of adapting the number of join levels in
// the tree could be worthwhile for some non-selective workloads".
//
// The observation behind Fig. 16: when queries carry selective
// predicates, reserving about half the levels for the join attribute
// minimizes blocks read; when they carry none (Fig. 16(b)), every level
// spent on selection attributes is wasted and the join attribute should
// take them all. SuggestJoinLevels interpolates between those extremes
// using the query window: it measures how many distinct predicate
// columns the recent workload actually filters on, and returns
//
//	joinLevels = depth − min(predicateColumns, depth/2)
//
// so a predicate-free window yields all-join trees, and a predicate-rich
// window converges to the paper's half-and-half default.
func SuggestJoinLevels(w *workload.Window, depth int) int {
	if depth <= 0 {
		return 0
	}
	half := depth / 2
	if half < 1 {
		half = 1
	}
	if w == nil || w.Len() == 0 {
		return half
	}
	distinct := 0
	for col, n := range w.PredColumns() {
		_ = col
		// Only count columns that appear in a non-trivial fraction of the
		// window; one-off predicates should not cost join levels.
		if n*4 >= w.Len() {
			distinct++
		}
	}
	sel := distinct
	if sel > half {
		sel = half
	}
	return depth - sel
}

// WindowSelectivity estimates the fraction of a table a window's
// predicate profile retains, given per-column selectivity estimates. It
// exists for diagnostics and tests: SuggestJoinLevels deliberately uses
// only the column *count*, because per-column selectivities require
// statistics the storage manager may not have.
func WindowSelectivity(w *workload.Window, colSel func(col int, r predicate.Range) float64) float64 {
	if w == nil || w.Len() == 0 {
		return 1.0
	}
	total := 0.0
	for _, q := range w.Queries() {
		s := 1.0
		for col, r := range predicate.ColumnRanges(q.Preds) {
			s *= colSel(col, r)
		}
		total += s
	}
	return total / float64(w.Len())
}
