// Package twophase implements AdaptDB's two-phase partitioning (§5.1,
// Fig. 9): a partitioning tree whose first phase splits on a single join
// attribute using recursive medians (producing disjoint, balanced join
// ranges — the property hyper-join needs), and whose second phase splits
// on selection attributes using Amoeba's heterogeneous branching.
//
// Paper mapping:
//
//   - §5.1, Fig. 9 — Builder constructs the two-phase tree from a data
//     sample: JoinLevels median splits on JoinAttr on top, Amoeba-style
//     selection splits below.
//   - §5.5 — autolevels.go picks the number of join levels
//     automatically by balancing hyper-join locality against selection
//     pruning (swept in Fig. 16).
package twophase
