package smooth

import (
	"math/rand"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
	"adaptdb/internal/workload"
)

var sch = schema.MustNew(
	schema.Column{Name: "orderkey", Kind: value.Int},
	schema.Column{Name: "partkey", Kind: value.Int},
	schema.Column{Name: "shipdate", Kind: value.Int},
)

func genRows(n int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{
			value.NewInt(rng.Int63n(10000)),
			value.NewInt(rng.Int63n(2000)),
			value.NewInt(rng.Int63n(2500)),
		}
	}
	return rows
}

func setup(t *testing.T) (*core.Table, *Manager) {
	t.Helper()
	store := dfs.NewStore(4, 2, 1)
	rows := genRows(2048, 1)
	tbl, err := core.Load(store, "lineitem", sch, rows, core.LoadOptions{
		RowsPerBlock: 128, Seed: 1, JoinAttr: 0, // start on orderkey
	})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewWindow(10)
	return tbl, New(w, 99)
}

func totalRows(tbl *core.Table) int {
	total := 0
	for _, i := range tbl.LiveTrees() {
		total += tbl.RowsUnder(i)
	}
	return total
}

func TestNoJoinAttrIsNoop(t *testing.T) {
	tbl, m := setup(t)
	q := workload.Query{JoinAttr: -1}
	m.Window.Add(q)
	var meter cluster.Meter
	res, err := m.Step(tbl, q, &meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedRows != 0 || res.CreatedTree != -1 {
		t.Errorf("no-join query should not repartition: %+v", res)
	}
}

func TestNewAttributeCreatesTreeAndMovesSlice(t *testing.T) {
	tbl, m := setup(t)
	q := workload.Query{JoinAttr: 1} // partkey: new
	m.Window.Add(q)
	var meter cluster.Meter
	res, err := m.Step(tbl, q, &meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CreatedTree < 0 {
		t.Fatalf("expected new tree: %+v", res)
	}
	nt := tbl.Trees[res.CreatedTree].Tree
	if nt.JoinAttr != 1 {
		t.Errorf("new tree join attr = %d, want 1", nt.JoinAttr)
	}
	// 1/|W| = 10% of 2048 ≈ 205 rows, plus-or-minus one bucket.
	if res.MovedRows < 100 || res.MovedRows > 450 {
		t.Errorf("moved %d rows, want ≈205 (1/|W| of the table)", res.MovedRows)
	}
	if totalRows(tbl) != 2048 {
		t.Fatalf("rows lost during smooth step: %d", totalRows(tbl))
	}
	c := meter.Snapshot()
	if int(c.RepartRows) != res.MovedRows {
		t.Errorf("meter repart rows %v != moved %d", c.RepartRows, res.MovedRows)
	}
}

func TestFMinGatesTreeCreation(t *testing.T) {
	tbl, m := setup(t)
	m.FMin = 3
	var meter cluster.Meter
	for i := 0; i < 2; i++ {
		q := workload.Query{JoinAttr: 1}
		m.Window.Add(q)
		res, err := m.Step(tbl, q, &meter, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.CreatedTree >= 0 {
			t.Fatalf("tree created before fmin queries (i=%d)", i)
		}
	}
	q := workload.Query{JoinAttr: 1}
	m.Window.Add(q)
	res, err := m.Step(tbl, q, &meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CreatedTree < 0 {
		t.Fatalf("tree not created at fmin")
	}
	// fmin/|W| = 30% of data moves at creation.
	if res.MovedRows < 400 || res.MovedRows > 850 {
		t.Errorf("moved %d rows at creation, want ≈614 (fmin/|W|)", res.MovedRows)
	}
}

func TestShareTracksWindowFraction(t *testing.T) {
	tbl, m := setup(t)
	var meter cluster.Meter
	// Run 10 partkey queries; by the end the window is 100% partkey and
	// the data should have fully shifted.
	for i := 0; i < 10; i++ {
		q := workload.Query{JoinAttr: 1}
		m.Window.Add(q)
		if _, err := m.Step(tbl, q, &meter, nil); err != nil {
			t.Fatal(err)
		}
		if totalRows(tbl) != 2048 {
			t.Fatalf("rows lost at step %d", i)
		}
		// Invariant: new tree's share never exceeds the window fraction by
		// more than one bucket's worth.
		tIdx := tbl.TreeFor(1)
		if tIdx >= 0 {
			share := float64(tbl.RowsUnder(tIdx)) / 2048
			frac := float64(m.Window.CountJoinAttr(1)) / float64(m.Window.Cap())
			if share > frac+0.2 {
				t.Errorf("step %d: share %.2f races ahead of window fraction %.2f", i, share, frac)
			}
		}
	}
	if !Converged(tbl, 1) {
		t.Errorf("after 10/10 partkey queries the table should converge; trees=%v", tbl.LiveTrees())
	}
}

func TestOldTreeDroppedWhenDrained(t *testing.T) {
	tbl, m := setup(t)
	var meter cluster.Meter
	for i := 0; i < 12; i++ {
		q := workload.Query{JoinAttr: 1}
		m.Window.Add(q)
		res, err := m.Step(tbl, q, &meter, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.DroppedTrees) > 0 {
			// The original orderkey tree (index 0) must be the one dropped.
			if res.DroppedTrees[0] != 0 {
				t.Errorf("dropped tree %d, want 0", res.DroppedTrees[0])
			}
			return
		}
	}
	t.Errorf("old tree never dropped after full shift")
}

func TestEmitDeliversMovedRows(t *testing.T) {
	tbl, m := setup(t)
	q := workload.Query{JoinAttr: 1}
	m.Window.Add(q)
	var meter cluster.Meter
	emitted := 0
	res, err := m.Step(tbl, q, &meter, func(tuple.Tuple) { emitted++ })
	if err != nil {
		t.Fatal(err)
	}
	if emitted != res.MovedRows {
		t.Errorf("emit saw %d rows, moved %d", emitted, res.MovedRows)
	}
}

func TestMixedWorkloadKeepsBothTrees(t *testing.T) {
	tbl, m := setup(t)
	var meter cluster.Meter
	// Alternate orderkey and partkey queries: both trees should persist
	// with roughly half the data each ("multiple trees will be preserved",
	// §5.2).
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		attr := 0
		if rng.Intn(2) == 1 {
			attr = 1
		}
		q := workload.Query{JoinAttr: attr}
		m.Window.Add(q)
		if _, err := m.Step(tbl, q, &meter, nil); err != nil {
			t.Fatal(err)
		}
	}
	i0, i1 := tbl.TreeFor(0), tbl.TreeFor(1)
	if i0 < 0 || i1 < 0 {
		t.Fatalf("both trees should be live: %v", tbl.LiveTrees())
	}
	s0 := float64(tbl.RowsUnder(i0)) / 2048
	s1 := float64(tbl.RowsUnder(i1)) / 2048
	if s0 < 0.15 || s1 < 0.15 {
		t.Errorf("mixed workload shares too skewed: %.2f vs %.2f", s0, s1)
	}
	if totalRows(tbl) != 2048 {
		t.Errorf("rows lost: %d", totalRows(tbl))
	}
}

func TestStepOnEmptyWindowAttr(t *testing.T) {
	tbl, m := setup(t)
	// Query whose join attr matches the existing tree: no movement needed
	// (share is already 100% ≥ n/|W|).
	q := workload.Query{JoinAttr: 0}
	m.Window.Add(q)
	var meter cluster.Meter
	res, err := m.Step(tbl, q, &meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedRows != 0 {
		t.Errorf("fully converged table should not move rows: %+v", res)
	}
}

func TestConvergedHelper(t *testing.T) {
	tbl, _ := setup(t)
	if !Converged(tbl, 0) {
		t.Errorf("single tree on attr 0 should report converged")
	}
	if Converged(tbl, 1) {
		t.Errorf("wrong attribute should not report converged")
	}
}

// selPreds builds a steady selection-predicate list for the auto-level
// tests.
func selPreds() []predicate.Predicate {
	return []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(500))}
}
