// Package smooth implements AdaptDB's smooth repartitioning (§5.2,
// Figs. 10–11): when queries with a new join attribute arrive, create a
// new two-phase partitioning tree for that attribute and migrate data
// into it incrementally — 1/|W| of the table at creation, then after
// each query enough blocks that the new tree's share of the data tracks
// the attribute's share of the query window:
//
//	n ← |{q ∈ W ∧ q's join attribute = t}|
//	p ← n/|W| − |T′|/(|T|+|T′|)
//	if p > 0, repartition p percent of the data from T to T′
//
// Block choice is random ("by randomly selecting blocks and moving
// them"), appends ride HDFS semantics, and a drained old tree is
// removed. The fmin gate avoids building trees for rare queries.
//
// A Manager is invoked between the queries of a stream: the optimizer
// (and through it internal/session) calls Step once per query after the
// query has joined the table's window, so trees are created, blocks
// migrate, and drained trees are dropped while the stream runs — the
// migration I/O is metered into the triggering query's meter. All
// randomness (bucket selection, new-tree build seeds) comes from the
// caller-seeded *rand.Rand (NewWithRand), making session runs
// reproducible from a single seed.
package smooth

import (
	"math/rand"
	"sort"

	"adaptdb/internal/block"
	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/tuple"
	"adaptdb/internal/twophase"
	"adaptdb/internal/workload"
)

// Manager drives smooth repartitioning for one table.
type Manager struct {
	// Window is the table's query window (shared with the optimizer).
	Window *workload.Window
	// FMin is the minimum number of window queries with a new join
	// attribute before a tree is created for it (§5.2).
	FMin int
	// Depth is the total depth of newly created trees; 0 derives it from
	// the table's current primary tree.
	Depth int
	// JoinLevels for new trees; 0 means half of Depth (the default the
	// paper evaluates in Fig. 16 and uses everywhere else).
	JoinLevels int
	// AutoJoinLevels enables the §7.4 future-work extension: derive the
	// join-level count for each new tree from the query window's
	// predicate profile (twophase.SuggestJoinLevels) instead of the fixed
	// half-depth default — non-selective workloads get all-join trees.
	AutoJoinLevels bool
	rng            *rand.Rand
}

// New returns a manager with the paper's defaults: fmin = 1 (create on
// first sight; experiments override), window shared with caller, and a
// private RNG seeded from seed.
func New(w *workload.Window, seed int64) *Manager {
	return NewWithRand(w, rand.New(rand.NewSource(seed)))
}

// NewWithRand returns a manager drawing all randomness (bucket
// selection, new-tree build seeds) from the caller's seeded source, so
// a session run replays bit-identically from one seed. The manager
// owns rng after the call; nil falls back to a fixed default seed.
func NewWithRand(w *workload.Window, rng *rand.Rand) *Manager {
	m := &Manager{Window: w, FMin: 1, rng: rng}
	m.ensureRand()
	return m
}

// ensureRand guarantees a usable RNG even on a zero-value Manager, so
// struct-literal construction cannot panic mid-migration; the fallback
// seed is fixed for reproducibility.
func (m *Manager) ensureRand() {
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(1))
	}
}

// StepResult reports what one smooth-repartitioning step did.
type StepResult struct {
	CreatedTree  int // index of the tree created this step, or -1
	MovedRows    int
	MovedBuckets int
	DroppedTrees []int
}

// Step runs the Fig. 11 algorithm for one incoming query against the
// table. The query must already have been added to the window by the
// caller. Emit, when non-nil, receives migrated rows so the current
// query can scan Type-2 blocks while they move (§6).
func (m *Manager) Step(tbl *core.Table, q workload.Query, meter *cluster.Meter, emit func(tuple.Tuple)) (StepResult, error) {
	m.ensureRand()
	res := StepResult{CreatedTree: -1}
	t := q.JoinAttr
	if t < 0 {
		return res, nil
	}
	n := m.Window.CountJoinAttr(t)
	w := m.Window.Cap()
	total := 0
	for _, i := range tbl.LiveTrees() {
		total += tbl.RowsUnder(i)
	}
	if total == 0 {
		return res, nil
	}

	tIdx := tbl.TreeFor(t)
	if tIdx < 0 {
		// New join attribute: gate on fmin, then create the tree and move
		// fmin/|W| of the data.
		if n < m.FMin {
			return res, nil
		}
		depth := m.Depth
		if depth <= 0 {
			if p := tbl.PrimaryTree(); p >= 0 {
				depth = tbl.Trees[p].Tree.Depth()
			}
			if depth <= 0 {
				depth = 4
			}
		}
		jl := m.JoinLevels
		if jl <= 0 {
			if m.AutoJoinLevels {
				jl = twophase.SuggestJoinLevels(m.Window, depth)
			} else {
				jl = depth / 2
			}
			if jl < 1 {
				jl = 1
			}
		}
		nt := twophase.Builder{
			Schema:     tbl.Schema,
			JoinAttr:   t,
			JoinLevels: jl,
			TotalDepth: depth,
			Seed:       m.rng.Int63(),
		}.Build(tbl.SampleRows)
		tIdx = tbl.AddTree(nt)
		res.CreatedTree = tIdx
		target := float64(m.FMin) / float64(w)
		moved, buckets, err := m.moveFraction(tbl, tIdx, target, total, meter, emit)
		res.MovedRows, res.MovedBuckets = moved, buckets
		if err != nil {
			return res, err
		}
	} else {
		// Existing tree: move p = n/|W| − share(T′) of the data.
		share := float64(tbl.RowsUnder(tIdx)) / float64(total)
		p := float64(n)/float64(w) - share
		if p > 0 {
			moved, buckets, err := m.moveFraction(tbl, tIdx, p, total, meter, emit)
			res.MovedRows, res.MovedBuckets = moved, buckets
			if err != nil {
				return res, err
			}
		}
	}
	// Drop any tree fully drained by migration.
	for _, i := range tbl.LiveTrees() {
		if i != tIdx && tbl.RowsUnder(i) == 0 {
			if err := tbl.DropTree(i); err == nil {
				res.DroppedTrees = append(res.DroppedTrees, i)
			}
		}
	}
	return res, nil
}

// moveFraction migrates ≈ frac × total rows into tree toIdx, pulling
// randomly chosen buckets from the other trees, largest donors first.
func (m *Manager) moveFraction(tbl *core.Table, toIdx int, frac float64, total int, meter *cluster.Meter, emit func(tuple.Tuple)) (int, int, error) {
	budget := int(frac * float64(total))
	if budget <= 0 {
		return 0, 0, nil
	}
	movedRows, movedBuckets := 0, 0
	// Donors: all other live trees, largest first so the dominant old
	// tree drains before stragglers.
	donors := tbl.LiveTrees()
	sort.Slice(donors, func(a, b int) bool {
		return tbl.RowsUnder(donors[a]) > tbl.RowsUnder(donors[b])
	})
	for _, from := range donors {
		if from == toIdx || movedRows >= budget {
			continue
		}
		live := tbl.Trees[from].LiveBuckets()
		m.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		var pick []block.ID
		for _, b := range live {
			if movedRows >= budget {
				break
			}
			cnt := tbl.Trees[from].Metas[b].Count
			// Always move at least one bucket when under budget; stop when a
			// bucket would badly overshoot an almost-met budget.
			if movedRows > 0 && movedRows+cnt > budget+cnt/2 {
				continue
			}
			pick = append(pick, b)
			movedRows += cnt
		}
		if len(pick) == 0 {
			continue
		}
		if err := tbl.MoveBuckets(from, toIdx, pick, meter, emit); err != nil {
			return movedRows, movedBuckets, err
		}
		movedBuckets += len(pick)
	}
	return movedRows, movedBuckets, nil
}

// Converged reports whether the table has a single live tree on the
// given join attribute — the end state in Fig. 10 (3).
func Converged(tbl *core.Table, attr int) bool {
	live := tbl.LiveTrees()
	return len(live) == 1 && tbl.Trees[live[0]].Tree.JoinAttr == attr
}
