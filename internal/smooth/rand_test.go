package smooth

import (
	"math/rand"
	"reflect"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/workload"
)

// replay runs the same mixed-attribute step sequence against a fresh
// table with the given manager and returns the per-step results.
func replay(t *testing.T, m *Manager, storeSeed int64) []StepResult {
	t.Helper()
	store := dfs.NewStore(4, 2, storeSeed)
	tbl, err := core.Load(store, "lineitem", sch, genRows(2048, 1), core.LoadOptions{
		RowsPerBlock: 128, Seed: 1, JoinAttr: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []StepResult
	var meter cluster.Meter
	for i := 0; i < 8; i++ {
		q := workload.Query{JoinAttr: []int{1, 1, 0, 1, 1, 1, 0, 1}[i]}
		m.Window.Add(q)
		res, err := m.Step(tbl, q, &meter, nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

func TestSeededRandReplaysIdentically(t *testing.T) {
	a := replay(t, NewWithRand(workload.NewWindow(10), rand.New(rand.NewSource(42))), 1)
	b := replay(t, NewWithRand(workload.NewWindow(10), rand.New(rand.NewSource(42))), 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
	c := replay(t, NewWithRand(workload.NewWindow(10), rand.New(rand.NewSource(43))), 1)
	if reflect.DeepEqual(a, c) {
		// Different seeds picking identical buckets throughout is
		// astronomically unlikely at 16 buckets/tree over 8 steps.
		t.Fatalf("different seeds produced identical migrations; rng unused?")
	}
}

func TestZeroValueManagerDoesNotPanic(t *testing.T) {
	store := dfs.NewStore(4, 2, 9)
	tbl, err := core.Load(store, "t", sch, genRows(512, 3), core.LoadOptions{RowsPerBlock: 64, Seed: 2, JoinAttr: 0})
	if err != nil {
		t.Fatal(err)
	}
	m := &Manager{Window: workload.NewWindow(5), FMin: 1}
	q := workload.Query{JoinAttr: 1}
	m.Window.Add(q)
	var meter cluster.Meter
	if _, err := m.Step(tbl, q, &meter, nil); err != nil {
		t.Fatal(err)
	}
}
