package smooth

import (
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/workload"
)

// The §7.4 extension: with AutoJoinLevels, a predicate-free window
// produces an all-join tree; a predicate-heavy window keeps selection
// levels.
func TestAutoJoinLevelsNonSelectiveWorkload(t *testing.T) {
	tbl, m := setup(t)
	m.AutoJoinLevels = true
	q := workload.Query{JoinAttr: 1} // no predicates
	m.Window.Add(q)
	var meter cluster.Meter
	res, err := m.Step(tbl, q, &meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CreatedTree < 0 {
		t.Fatalf("tree not created")
	}
	nt := tbl.Trees[res.CreatedTree].Tree
	if nt.JoinLevels != nt.Depth() && nt.JoinLevels < tbl.Trees[0].Tree.Depth() {
		t.Errorf("predicate-free window should reserve (nearly) all levels for the join attribute: join=%d depth=%d",
			nt.JoinLevels, nt.Depth())
	}
	if nt.AttrLevels()[1] == 0 {
		t.Errorf("join attribute unused in new tree")
	}
}

func TestAutoJoinLevelsSelectiveWorkloadKeepsSelectionLevels(t *testing.T) {
	tbl, m := setup(t)
	m.AutoJoinLevels = true
	// Window full of queries filtering on column 2.
	var meter cluster.Meter
	for i := 0; i < 5; i++ {
		m.Window.Add(workload.Query{JoinAttr: 0, Preds: selPreds()})
	}
	q := workload.Query{JoinAttr: 1, Preds: selPreds()}
	m.Window.Add(q)
	res, err := m.Step(tbl, q, &meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CreatedTree < 0 {
		t.Fatalf("tree not created")
	}
	nt := tbl.Trees[res.CreatedTree].Tree
	base := tbl.Trees[0].Tree.Depth()
	if nt.JoinLevels >= base {
		t.Errorf("selective window should keep selection levels: join=%d of depth %d", nt.JoinLevels, base)
	}
}
