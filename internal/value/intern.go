// A bounded string intern cache for the scan decode path.
//
// TPC-H columns repeat a handful of strings millions of times
// (return flags, ship modes, nation names); decoding each occurrence
// into its own allocation both bloats the heap and defeats the cache.
// Intern maps repeated payloads onto one shared backing allocation.
//
// The cache is a direct-mapped, sharded table rather than a map: each
// probe is one hash, one lock, one compare. Collisions simply overwrite
// the slot, so the cache is bounded at internShards×internSlots entries
// no matter what flows through it — a high-cardinality column degrades
// to ordinary allocation, never to unbounded growth.
package value

import "sync"

const (
	internShards = 64
	internSlots  = 256
	// internMaxLen bounds interned payloads: long strings (comments) are
	// rarely duplicated and would evict the short hot ones.
	internMaxLen = 48
)

type internShard struct {
	mu  sync.Mutex
	tab [internSlots]string
}

var internTable [internShards]internShard

// InternBytes returns a string equal to b, shared with every other
// recent caller that passed the same payload. Misses copy b once and
// cache the copy; payloads longer than internMaxLen are never cached.
func InternBytes(b []byte) string {
	if len(b) > internMaxLen {
		return string(b)
	}
	if len(b) == 0 {
		return ""
	}
	h := HashBytes(b)
	sh := &internTable[h%internShards]
	slot := (h / internShards) % internSlots
	sh.mu.Lock()
	if s := sh.tab[slot]; s == string(b) { // compiler-optimized, no alloc
		sh.mu.Unlock()
		return s
	}
	s := string(b)
	sh.tab[slot] = s
	sh.mu.Unlock()
	return s
}

// Intern is InternBytes for an existing string: a hit returns the
// cached backing so duplicates decoded into separate allocations
// collapse onto one.
func Intern(s string) string {
	if len(s) > internMaxLen || len(s) == 0 {
		return s
	}
	h := NewString(s).Hash64()
	sh := &internTable[h%internShards]
	slot := (h / internShards) % internSlots
	sh.mu.Lock()
	if c := sh.tab[slot]; c == s {
		sh.mu.Unlock()
		return c
	}
	sh.tab[slot] = s
	sh.mu.Unlock()
	return s
}
