// Package value defines the typed scalar values stored in AdaptDB tuples.
//
// AdaptDB is a relational storage manager: every column has a fixed Kind
// and every cell is a Value. Values support total ordering within a Kind
// (needed for partitioning-tree cut points and zone maps) and a compact
// binary encoding (needed to persist blocks in the distributed file
// system simulator).
package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported column kinds. Date is stored as days since 1970-01-01 so
// range predicates over dates reduce to integer comparisons, matching how
// the TPC-H templates issue date predicates.
const (
	Null Kind = iota
	Int
	Float
	String
	Date
	Bool
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Date:
		return "date"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is Null.
//
// Value is a small value type passed by copy throughout the system; it
// deliberately has no pointers except the string header so blocks of
// tuples stay cheap to scan.
type Value struct {
	K Kind
	I int64   // Int, Date (days since epoch), Bool (0/1)
	F float64 // Float
	S string  // String
}

// NewInt returns an Int value.
func NewInt(i int64) Value { return Value{K: Int, I: i} }

// NewFloat returns a Float value.
func NewFloat(f float64) Value { return Value{K: Float, F: f} }

// NewString returns a String value.
func NewString(s string) Value { return Value{K: String, S: s} }

// NewBool returns a Bool value.
func NewBool(b bool) Value {
	v := Value{K: Bool}
	if b {
		v.I = 1
	}
	return v
}

// NewDate returns a Date value for the given days-since-epoch ordinal.
func NewDate(days int64) Value { return Value{K: Date, I: days} }

// DateOf converts a calendar date to a Date value.
func DateOf(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return NewDate(t.Unix() / 86400)
}

// IsNull reports whether v is the Null value.
func (v Value) IsNull() bool { return v.K == Null }

// Int64 returns the integer payload (Int, Date and Bool kinds).
func (v Value) Int64() int64 { return v.I }

// Float64 returns the float payload, converting Int/Date if necessary.
func (v Value) Float64() float64 {
	switch v.K {
	case Float:
		return v.F
	case Int, Date, Bool:
		return float64(v.I)
	default:
		return math.NaN()
	}
}

// Str returns the string payload.
func (v Value) Str() string { return v.S }

// Bool reports the boolean payload.
func (v Value) Bool() bool { return v.I != 0 }

// String renders the value for logs and debugging output.
func (v Value) String() string {
	switch v.K {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return v.S
	case Date:
		t := time.Unix(v.I*86400, 0).UTC()
		return t.Format("2006-01-02")
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.K))
	}
}

// Compare totally orders two values of the same Kind. Null sorts before
// everything; comparing distinct non-null kinds orders by Kind so that
// Compare remains a total order even on heterogeneous inputs (needed by
// sort-based median computation over sampled columns).
func Compare(a, b Value) int {
	if a.K != b.K {
		if a.K == Null {
			return -1
		}
		if b.K == Null {
			return 1
		}
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case Null:
		return 0
	case Int, Date, Bool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case Float:
		// IEEE comparisons are all false against NaN, which would make
		// NaN "equal" to every float and break the total order (and
		// disagree with Hash64, which buckets NaNs alone — the PR-5
		// differential harness caught exactly that). Order NaNs
		// explicitly: all NaNs are equal to each other and sort before
		// every other float.
		an, bn := a.F != a.F, b.F != b.F
		if an || bn {
			switch {
			case an && bn:
				return 0
			case an:
				return -1
			}
			return 1
		}
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case String:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	}
	return 0
}

// Less reports a < b under Compare.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Equal reports a == b under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Min returns the smaller of a and b.
func Min(a, b Value) Value {
	if Compare(a, b) <= 0 {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Value) Value {
	if Compare(a, b) >= 0 {
		return a
	}
	return b
}

// Hash64 returns a 64-bit hash of v, consistent with Equal: values equal
// under Compare hash identically (including +0.0 vs -0.0 and any two
// NaNs, which Compare treats as equal), and the Kind is mixed in so
// values of different kinds — never equal under Compare — rarely
// collide. Unlike AppendBinary-based keying, hashing touches no heap:
// numeric kinds finalize the payload with one multiply-shift mix and
// strings run FNV-1a. The join hash table keys on Hash64 and resolves
// residual collisions with Equal.
func (v Value) Hash64() uint64 {
	const kindSalt = 0x9e3779b97f4a7c15 // 2^64/φ, spreads small Kind ints
	switch v.K {
	case Int, Date, Bool:
		return mix64(uint64(v.I) ^ uint64(v.K)*kindSalt)
	case Float:
		f := v.F
		if f == 0 {
			f = 0 // -0.0 == +0.0 under Compare; fold to one bit pattern
		}
		bits := math.Float64bits(f)
		if f != f {
			bits = math.Float64bits(math.NaN()) // all NaNs compare equal
		}
		return mix64(bits ^ uint64(v.K)*kindSalt)
	case String:
		h := uint64(14695981039346656037) ^ uint64(v.K)*kindSalt
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= 1099511628211
		}
		return mix64(h)
	default: // Null: joins skip null keys, any constant works
		return kindSalt
	}
}

// mix64 is the splitmix64 finalizer — a cheap bijective avalanche so
// both the high bits (radix partitioning) and low bits (bucket index)
// of a hash are uniform even for dense integer keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// AppendBinary appends a self-describing encoding of v to dst and returns
// the extended slice. The format is: 1 byte kind, then a kind-specific
// payload (varint for Int/Date/Bool, 8-byte IEEE754 for Float, uvarint
// length + bytes for String).
func (v Value) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case Null:
	case Int, Date, Bool:
		dst = binary.AppendVarint(dst, v.I)
	case Float:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
		dst = append(dst, buf[:]...)
	case String:
		dst = binary.AppendUvarint(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	}
	return dst
}

// DecodeValue decodes a value previously produced by AppendBinary and
// returns it together with the number of bytes consumed.
func DecodeValue(src []byte) (Value, int, error) {
	return decodeValue(src, "", false)
}

// DecodeValuePooled is DecodeValue for batch decoders that have already
// made one string copy of the encoded bytes: pool must be that copy,
// sliced to the same offset as src. String payloads alias pool instead
// of allocating — one allocation per frame instead of one per string
// value, which is most of the GC churn of a spilled-join read-back.
func DecodeValuePooled(src []byte, pool string) (Value, int, error) {
	return decodeValue(src, pool, false)
}

// DecodeValueInterned is DecodeValue with string payloads routed through
// the intern cache: repeated short strings (TPC-H flags, modes, nation
// names) decode onto one shared allocation instead of one per
// occurrence. The long-lived scan decode path uses this; transient
// decoders should prefer DecodeValuePooled.
func DecodeValueInterned(src []byte) (Value, int, error) {
	return decodeValue(src, "", true)
}

func decodeValue(src []byte, pool string, intern bool) (Value, int, error) {
	if len(src) == 0 {
		return Value{}, 0, fmt.Errorf("value: decode: empty input")
	}
	k := Kind(src[0])
	pos := 1
	switch k {
	case Null:
		return Value{}, pos, nil
	case Int, Date, Bool:
		i, n := binary.Varint(src[pos:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("value: decode: bad varint for kind %v", k)
		}
		return Value{K: k, I: i}, pos + n, nil
	case Float:
		if len(src) < pos+8 {
			return Value{}, 0, fmt.Errorf("value: decode: short float payload")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(src[pos:]))
		return Value{K: k, F: f}, pos + 8, nil
	case String:
		l, n := binary.Uvarint(src[pos:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("value: decode: bad string length")
		}
		pos += n
		if uint64(len(src)-pos) < l {
			return Value{}, 0, fmt.Errorf("value: decode: short string payload (want %d have %d)", l, len(src)-pos)
		}
		if intern {
			return Value{K: k, S: InternBytes(src[pos : pos+int(l)])}, pos + int(l), nil
		}
		if len(pool) >= pos+int(l) {
			return Value{K: k, S: pool[pos : pos+int(l)]}, pos + int(l), nil
		}
		return Value{K: k, S: string(src[pos : pos+int(l)])}, pos + int(l), nil
	default:
		return Value{}, 0, fmt.Errorf("value: decode: unknown kind %d", src[0])
	}
}
