// Kind-specialized hash and compare helpers for the columnar hot path.
//
// The vectorized executor stores a column as a flat typed vector
// ([]int64, []float64, byte arena) and hashes or compares whole columns
// without materializing Values. These helpers are the single source of
// truth it shares with the boxed path: each one is definitionally
// equivalent to Value.Hash64 / Equal on the corresponding boxed value,
// pinned by TestColumnHashMatchesBoxed, so a join may hash one side
// boxed and the other flat and still agree bucket-for-bucket.
package value

import "math"

const kindSalt = 0x9e3779b97f4a7c15 // 2^64/φ, spreads small Kind ints

// saltOf is the kind's hash salt as a runtime value (a constant
// expression uint64(k)*kindSalt would overflow at compile time).
func saltOf(k Kind) uint64 { return uint64(k) * kindSalt }

// HashInt64 hashes the integer payload of an Int, Date or Bool value of
// kind k, identically to Value{K: k, I: i}.Hash64().
func HashInt64(k Kind, i int64) uint64 {
	return mix64(uint64(i) ^ saltOf(k))
}

// HashFloat64 hashes a float payload identically to NewFloat(f).Hash64():
// -0.0 folds to +0.0 and every NaN hashes alike, matching Compare's
// equivalence classes.
func HashFloat64(f float64) uint64 {
	if f == 0 {
		f = 0 // -0.0 == +0.0 under Compare; fold to one bit pattern
	}
	bits := math.Float64bits(f)
	if f != f {
		bits = math.Float64bits(math.NaN()) // all NaNs compare equal
	}
	return mix64(bits ^ saltOf(Float))
}

// HashBytes hashes a string payload given as raw bytes, identically to
// NewString(string(b)).Hash64() — FNV-1a with the String kind salt —
// without constructing the string.
func HashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037) ^ saltOf(String)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// HashString is HashBytes for a string payload — identical to
// NewString(s).Hash64() without boxing.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037) ^ saltOf(String)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// HashNull is what Null values hash to (joins skip null keys; any
// constant works, this matches Value{}.Hash64()).
const HashNull = uint64(kindSalt)

// FloatEqual reports Equal semantics on raw float payloads: NaNs equal
// each other, ±0.0 equal, everything else IEEE equality.
func FloatEqual(a, b float64) bool {
	return a == b || (a != a && b != b)
}

// IntClass reports whether k stores its payload in Value.I — the kinds a
// flat []int64 column represents (Int, Date, Bool).
func IntClass(k Kind) bool { return k == Int || k == Date || k == Bool }
