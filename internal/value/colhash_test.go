package value

import (
	"math"
	"testing"
	"unsafe"
)

// TestColumnHashMatchesBoxed pins the contract the columnar hot path
// rests on: the flat helpers hash exactly like Value.Hash64, including
// the ±0.0 fold, NaN canonicalization, and per-kind salting.
func TestColumnHashMatchesBoxed(t *testing.T) {
	ints := []int64{0, 1, -1, 42, math.MaxInt64, math.MinInt64, 1 << 33}
	for _, k := range []Kind{Int, Date, Bool} {
		for _, i := range ints {
			if got, want := HashInt64(k, i), (Value{K: k, I: i}).Hash64(); got != want {
				t.Errorf("HashInt64(%v, %d) = %#x, want %#x", k, i, got, want)
			}
		}
	}
	// Int and Date with the same payload must not collide by construction
	// (different kind salt), matching Compare which never equates kinds.
	if HashInt64(Int, 7) == HashInt64(Date, 7) {
		t.Errorf("Int and Date hashes collide for payload 7")
	}
	floats := []float64{0, math.Copysign(0, -1), 1.5, -1.5, math.Inf(1), math.Inf(-1),
		math.NaN(), math.Float64frombits(0x7ff8000000000001), // NaN with a payload
		math.SmallestNonzeroFloat64, math.MaxFloat64}
	for _, f := range floats {
		if got, want := HashFloat64(f), NewFloat(f).Hash64(); got != want {
			t.Errorf("HashFloat64(%v) = %#x, want %#x", f, got, want)
		}
	}
	if HashFloat64(0) != HashFloat64(math.Copysign(0, -1)) {
		t.Errorf("+0.0 and -0.0 hash differently")
	}
	if HashFloat64(math.NaN()) != HashFloat64(math.Float64frombits(0x7ff8000000000001)) {
		t.Errorf("distinct NaN payloads hash differently")
	}
	for _, s := range []string{"", "a", "TRUCK", "RAIL", "a longer string with spaces", "\x00\xff"} {
		if got, want := HashBytes([]byte(s)), NewString(s).Hash64(); got != want {
			t.Errorf("HashBytes(%q) = %#x, want %#x", s, got, want)
		}
	}
	if HashNull != (Value{}).Hash64() {
		t.Errorf("HashNull = %#x, want %#x", HashNull, (Value{}).Hash64())
	}
}

func TestFloatEqualMatchesEqual(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1, -1, math.NaN(),
		math.Float64frombits(0x7ff8000000000001), math.Inf(1), math.Inf(-1)}
	for _, a := range vals {
		for _, b := range vals {
			if got, want := FloatEqual(a, b), Equal(NewFloat(a), NewFloat(b)); got != want {
				t.Errorf("FloatEqual(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestInternSharesBacking verifies the point of the cache: two equal
// payloads arriving separately come back aliasing one allocation.
func TestInternSharesBacking(t *testing.T) {
	a := InternBytes([]byte("AIR REG"))
	b := InternBytes([]byte("AIR REG"))
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Errorf("equal interned strings do not share backing storage")
	}
	// Intern on an existing string collapses onto the cached copy too.
	dup := string([]byte("AIR REG")) // force a distinct allocation
	c := Intern(dup)
	if unsafe.StringData(c) != unsafe.StringData(a) {
		t.Errorf("Intern(dup) did not return the cached backing")
	}
}

// TestInternBounded floods the cache with distinct strings and checks
// behaviour stays correct (values equal their input) — the table just
// evicts, it never grows.
func TestInternBounded(t *testing.T) {
	long := make([]byte, internMaxLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if got := InternBytes(long); got != string(long) {
		t.Fatalf("oversized payload mangled")
	}
	if got := InternBytes(nil); got != "" {
		t.Fatalf("empty payload: got %q", got)
	}
	buf := []byte("key-00000000")
	for i := 0; i < 100000; i++ {
		for j, d := 11, i; j > 3; j, d = j-1, d/10 {
			buf[j] = byte('0' + d%10)
		}
		if got := InternBytes(buf); got != string(buf) {
			t.Fatalf("interned value %q != input %q", got, buf)
		}
	}
}
