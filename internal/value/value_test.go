package value

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestConstructors(t *testing.T) {
	if v := NewInt(42); v.K != Int || v.Int64() != 42 {
		t.Errorf("NewInt: got %+v", v)
	}
	if v := NewFloat(2.5); v.K != Float || v.Float64() != 2.5 {
		t.Errorf("NewFloat: got %+v", v)
	}
	if v := NewString("abc"); v.K != String || v.Str() != "abc" {
		t.Errorf("NewString: got %+v", v)
	}
	if v := NewBool(true); v.K != Bool || !v.Bool() {
		t.Errorf("NewBool(true): got %+v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false): got %+v", v)
	}
	if v := NewDate(10); v.K != Date || v.Int64() != 10 {
		t.Errorf("NewDate: got %+v", v)
	}
	var z Value
	if !z.IsNull() {
		t.Errorf("zero Value should be Null")
	}
}

func TestDateOf(t *testing.T) {
	v := DateOf(1970, time.January, 1)
	if v.Int64() != 0 {
		t.Errorf("epoch date: got %d want 0", v.Int64())
	}
	v = DateOf(1970, time.January, 11)
	if v.Int64() != 10 {
		t.Errorf("1970-01-11: got %d want 10", v.Int64())
	}
	v = DateOf(1995, time.March, 15)
	if v.String() != "1995-03-15" {
		t.Errorf("date round-trip: got %s", v.String())
	}
}

func TestCompareSameKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(7), NewInt(7), 0},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewFloat(2.5), NewFloat(2.5), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("a"), 1},
		{NewString("x"), NewString("x"), 0},
		{NewDate(5), NewDate(9), -1},
		{NewBool(false), NewBool(true), -1},
		{Value{}, Value{}, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareCrossKind(t *testing.T) {
	// Null sorts first; distinct kinds order by Kind for totality.
	if Compare(Value{}, NewInt(0)) != -1 {
		t.Errorf("null should sort before int")
	}
	if Compare(NewInt(0), Value{}) != 1 {
		t.Errorf("int should sort after null")
	}
	if Compare(NewInt(9), NewString("a")) != -1 {
		t.Errorf("kind ordering: int < string expected")
	}
}

func TestCompareNaNTotalOrder(t *testing.T) {
	// PR-5 regression (found by the join differential harness): IEEE
	// comparisons are all false against NaN, so the old Float case
	// reported NaN "equal" to every float — the nested-loop oracle
	// joined NaN keys with everything while the hash paths did not, and
	// SortRows lost its total order. NaNs are equal to each other and
	// sort before every other float.
	nan := NewFloat(math.NaN())
	if Compare(nan, NewFloat(math.NaN())) != 0 {
		t.Error("NaN must equal NaN")
	}
	for _, f := range []Value{NewFloat(-1e300), NewFloat(0), NewFloat(math.Inf(-1)), NewFloat(math.Inf(1))} {
		if Compare(nan, f) != -1 || Compare(f, nan) != 1 {
			t.Errorf("NaN must sort strictly before %v", f)
		}
		if Equal(nan, f) {
			t.Errorf("NaN must not equal %v", f)
		}
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	vals := []Value{
		{}, NewInt(-3), NewInt(0), NewInt(5), NewFloat(-1.5), NewFloat(3.25),
		NewFloat(math.NaN()), NewFloat(math.Inf(-1)), NewFloat(math.Inf(1)),
		NewString(""), NewString("abc"), NewDate(100), NewBool(true), NewBool(false),
	}
	// Antisymmetry and consistency.
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Fatalf("antisymmetry violated for %v, %v", a, b)
			}
		}
	}
	// Transitivity via sort: sorting must not panic and must be ordered.
	s := append([]Value(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return Less(s[i], s[j]) })
	for i := 1; i < len(s); i++ {
		if Compare(s[i-1], s[i]) > 0 {
			t.Fatalf("sorted slice out of order at %d: %v > %v", i, s[i-1], s[i])
		}
	}
}

func TestMinMax(t *testing.T) {
	a, b := NewInt(1), NewInt(2)
	if Min(a, b) != a || Min(b, a) != a {
		t.Errorf("Min wrong")
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Errorf("Max wrong")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Value{}, "NULL"},
		{NewInt(-17), "-17"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewDate(0), "1970-01-01"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{Null: "null", Int: "int", Float: "float", String: "string", Date: "date", Bool: "bool"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind should render something")
	}
}

func roundTrip(t *testing.T, v Value) {
	t.Helper()
	enc := v.AppendBinary(nil)
	got, n, err := DecodeValue(enc)
	if err != nil {
		t.Fatalf("decode(%v): %v", v, err)
	}
	if n != len(enc) {
		t.Fatalf("decode(%v): consumed %d of %d bytes", v, n, len(enc))
	}
	if Compare(got, v) != 0 || got.K != v.K {
		t.Fatalf("round trip: got %v want %v", got, v)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, v := range []Value{
		{}, NewInt(0), NewInt(-1), NewInt(1 << 40), NewFloat(0), NewFloat(math.Pi),
		NewFloat(math.Inf(1)), NewString(""), NewString("hello world"),
		NewDate(20000), NewBool(true), NewBool(false),
	} {
		roundTrip(t, v)
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, pick uint8) bool {
		var v Value
		switch pick % 5 {
		case 0:
			v = NewInt(i)
		case 1:
			v = NewFloat(fl)
		case 2:
			v = NewString(s)
		case 3:
			v = NewDate(i)
		case 4:
			v = NewBool(i%2 == 0)
		}
		enc := v.AppendBinary(nil)
		got, n, err := DecodeValue(enc)
		if err != nil || n != len(enc) {
			return false
		}
		if v.K == Float && math.IsNaN(v.F) {
			return got.K == Float && math.IsNaN(got.F)
		}
		return Compare(got, v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(Float)},          // short float
		{byte(String), 200},    // bad uvarint / short payload
		{byte(String), 5, 'a'}, // short string body
		{99},                   // unknown kind
	}
	for i, src := range cases {
		if _, _, err := DecodeValue(src); err == nil {
			t.Errorf("case %d: expected decode error for % x", i, src)
		}
	}
}

func TestAppendBinaryConcatenated(t *testing.T) {
	vals := []Value{NewInt(7), NewString("xy"), NewFloat(1.25), {}}
	var buf []byte
	for _, v := range vals {
		buf = v.AppendBinary(buf)
	}
	pos := 0
	for i, want := range vals {
		got, n, err := DecodeValue(buf[pos:])
		if err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		if Compare(got, want) != 0 {
			t.Fatalf("decode #%d: got %v want %v", i, got, want)
		}
		pos += n
	}
	if pos != len(buf) {
		t.Fatalf("trailing bytes: consumed %d of %d", pos, len(buf))
	}
}

func TestHash64EqualValuesHashEqual(t *testing.T) {
	// Equal under Compare must imply equal hashes — including the float
	// edge cases Compare treats as equal.
	pairs := [][2]Value{
		{NewInt(42), NewInt(42)},
		{NewString("orderkey"), NewString("order" + "key")},
		{NewDate(20000), NewDate(20000)},
		{NewBool(true), NewBool(true)},
		{NewFloat(0.0), NewFloat(math.Copysign(0, -1))}, // +0.0 vs -0.0
		{NewFloat(math.NaN()), NewFloat(-math.NaN())},   // NaNs compare equal
		{{}, {}},
	}
	for _, p := range pairs {
		if Compare(p[0], p[1]) != 0 {
			t.Fatalf("test bug: %v and %v not Compare-equal", p[0], p[1])
		}
		if p[0].Hash64() != p[1].Hash64() {
			t.Errorf("Hash64(%v) != Hash64(%v) for Compare-equal values", p[0], p[1])
		}
	}
}

func TestHash64MixesKind(t *testing.T) {
	// Int 5, Date 5, Bool 1/Int 1, Float 5.0 are never Equal across
	// kinds, and the kind salt should keep their hashes apart too.
	groups := []Value{NewInt(5), NewDate(5), NewFloat(5), NewBool(true), NewInt(1), NewString("5")}
	seen := map[uint64]Value{}
	for _, v := range groups {
		h := v.Hash64()
		if prev, dup := seen[h]; dup {
			t.Errorf("Hash64 collision across kinds: %v (%s) and %v (%s)", prev, prev.K, v, v.K)
		}
		seen[h] = v
	}
}

func TestHash64DistributionOverDenseInts(t *testing.T) {
	// Dense integer keys (the common join-key shape) must spread over
	// both the high bits (radix partition) and low bits (bucket index).
	const n = 1 << 12
	hi := map[uint64]int{}
	lo := map[uint64]int{}
	all := map[uint64]bool{}
	for i := int64(0); i < n; i++ {
		h := NewInt(i).Hash64()
		all[h] = true
		hi[h>>59]++
		lo[h&63]++
	}
	if len(all) != n {
		t.Errorf("dense ints collided: %d distinct hashes of %d", len(all), n)
	}
	// Every one of the 32 high-bit partitions and 64 low-bit buckets
	// should be hit, and none should hog more than 4x its fair share.
	if len(hi) != 32 || len(lo) != 64 {
		t.Fatalf("partitions hit: hi=%d/32 lo=%d/64", len(hi), len(lo))
	}
	for p, c := range hi {
		if c > 4*n/32 {
			t.Errorf("high-bit partition %d has %d of %d hashes", p, c, n)
		}
	}
}

func TestHash64Deterministic(t *testing.T) {
	for _, v := range []Value{NewInt(-7), NewFloat(2.5), NewString("abc"), NewDate(123), NewBool(false), {}} {
		if v.Hash64() != v.Hash64() {
			t.Errorf("Hash64(%v) not deterministic", v)
		}
	}
}
