// Package baselines implements the non-AdaptDB comparison systems of
// §7: predicate-based reference partitioning (PREF, Zamanian et al.
// SIGMOD'15) as used in Fig. 12. PREF co-partitions the TPC-H join
// graph by replicating dimension rows into every fact partition that
// references them, so all joins run partition-local with no shuffling —
// at the price of replicated I/O and key-only partitioning that cannot
// skip data on selection predicates.
package baselines

import (
	"fmt"

	"adaptdb/internal/block"
	"adaptdb/internal/cluster"
	"adaptdb/internal/exec"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tpch"
	"adaptdb/internal/tuple"
)

// PREF holds a reference-partitioned copy of the TPC-H tables: orders
// range-partitioned on orderkey into K partitions, lineitem co-located
// by reference on l_orderkey, and customer/part replicated per
// referencing partition.
type PREF struct {
	K int

	line [][]tuple.Tuple
	ord  [][]tuple.Tuple
	cust [][]tuple.Tuple
	part [][]tuple.Tuple

	// Zone maps (one coarse block per table per partition).
	lineZone, ordZone, custZone, partZone []*block.Block
}

// BuildPREF constructs the layout. K plays the role of the paper's
// partition-count knob (they found 200 optimal on 10 nodes at SF 1000;
// scale K with the data).
func BuildPREF(d *tpch.Dataset, k int) *PREF {
	if k < 1 {
		k = 1
	}
	p := &PREF{
		K:    k,
		line: make([][]tuple.Tuple, k),
		ord:  make([][]tuple.Tuple, k),
		cust: make([][]tuple.Tuple, k),
		part: make([][]tuple.Tuple, k),
	}
	// Range-partition orders on orderkey: orderkeys are dense 1..N.
	n := int64(len(d.Orders))
	partOf := func(orderKey int64) int {
		i := int((orderKey - 1) * int64(k) / n)
		if i < 0 {
			i = 0
		}
		if i >= k {
			i = k - 1
		}
		return i
	}
	custKeys := make([]map[int64]bool, k)
	partKeys := make([]map[int64]bool, k)
	for i := 0; i < k; i++ {
		custKeys[i] = make(map[int64]bool)
		partKeys[i] = make(map[int64]bool)
	}
	for _, o := range d.Orders {
		i := partOf(o[tpch.OOrderKey].Int64())
		p.ord[i] = append(p.ord[i], o)
		custKeys[i][o[tpch.OCustKey].Int64()] = true
	}
	for _, l := range d.Lineitem {
		i := partOf(l[tpch.LOrderKey].Int64())
		p.line[i] = append(p.line[i], l)
		partKeys[i][l[tpch.LPartKey].Int64()] = true
	}
	// Replicate dimensions into every partition that references them.
	for _, c := range d.Customer {
		key := c[tpch.CCustKey].Int64()
		for i := 0; i < k; i++ {
			if custKeys[i][key] {
				p.cust[i] = append(p.cust[i], c)
			}
		}
	}
	for _, pt := range d.Part {
		key := pt[tpch.PPartKey].Int64()
		for i := 0; i < k; i++ {
			if partKeys[i][key] {
				p.part[i] = append(p.part[i], pt)
			}
		}
	}
	zone := func(parts [][]tuple.Tuple) []*block.Block {
		out := make([]*block.Block, k)
		for i, rows := range parts {
			b := &block.Block{}
			for _, r := range rows {
				b.Append(r)
			}
			out[i] = b
		}
		return out
	}
	p.lineZone = zone(p.line)
	p.ordZone = zone(p.ord)
	p.custZone = zone(p.cust)
	p.partZone = zone(p.part)
	return p
}

// ReplicationFactor reports the dimension blow-up: replicated rows over
// base rows for customer and part.
func (p *PREF) ReplicationFactor(baseCust, basePart int) (cust, part float64) {
	rc, rp := 0, 0
	for i := 0; i < p.K; i++ {
		rc += len(p.cust[i])
		rp += len(p.part[i])
	}
	return float64(rc) / float64(max(1, baseCust)), float64(rp) / float64(max(1, basePart))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// scanPart reads one table partition if its zone map may match, filters
// rows, and meters the read. Partition-local reads never shuffle.
func scanPart(rows []tuple.Tuple, zone *block.Block, preds []predicate.Predicate, ranges map[int]predicate.Range, meter *cluster.Meter) []tuple.Tuple {
	if len(rows) == 0 || (len(ranges) > 0 && !zone.MaybeMatches(ranges)) {
		return nil
	}
	meter.AddScan(len(rows), true)
	var out []tuple.Tuple
	for _, r := range rows {
		if predicate.MatchesAll(preds, r) {
			out = append(out, r)
		}
	}
	return out
}

// Run executes a TPC-H template instance on the PREF layout with
// partition-local joins, metering all I/O. It returns the number of
// result rows.
func (p *PREF) Run(in *tpch.Instance, meter *cluster.Meter) (int, error) {
	lr := predicate.ColumnRanges(in.LinePreds)
	or := predicate.ColumnRanges(in.OrdPreds)
	cr := predicate.ColumnRanges(in.CustPreds)
	pr := predicate.ColumnRanges(in.PartPreds)
	total := 0
	for i := 0; i < p.K; i++ {
		switch in.Template {
		case tpch.Q6:
			total += len(scanPart(p.line[i], p.lineZone[i], in.LinePreds, lr, meter))
		case tpch.Q3, tpch.Q5, tpch.Q10:
			lf := scanPart(p.line[i], p.lineZone[i], in.LinePreds, lr, meter)
			of := scanPart(p.ord[i], p.ordZone[i], in.OrdPreds, or, meter)
			cf := scanPart(p.cust[i], p.custZone[i], in.CustPreds, cr, meter)
			lo := exec.HashJoinRows(lf, of, tpch.LOrderKey, tpch.OOrderKey)
			total += len(exec.HashJoinRows(lo, cf, tpch.LineitemSchema.NumCols()+tpch.OCustKey, tpch.CCustKey))
		case tpch.Q12:
			lf := scanPart(p.line[i], p.lineZone[i], in.LinePreds, lr, meter)
			of := scanPart(p.ord[i], p.ordZone[i], in.OrdPreds, or, meter)
			total += len(exec.HashJoinRows(lf, of, tpch.LOrderKey, tpch.OOrderKey))
		case tpch.Q14, tpch.Q19:
			lf := scanPart(p.line[i], p.lineZone[i], in.LinePreds, lr, meter)
			pf := scanPart(p.part[i], p.partZone[i], in.PartPreds, pr, meter)
			total += len(exec.HashJoinRows(lf, pf, tpch.LPartKey, tpch.PPartKey))
		case tpch.Q8:
			lf := scanPart(p.line[i], p.lineZone[i], in.LinePreds, lr, meter)
			pf := scanPart(p.part[i], p.partZone[i], in.PartPreds, pr, meter)
			of := scanPart(p.ord[i], p.ordZone[i], in.OrdPreds, or, meter)
			cf := scanPart(p.cust[i], p.custZone[i], in.CustPreds, cr, meter)
			lp := exec.HashJoinRows(lf, pf, tpch.LPartKey, tpch.PPartKey)
			oc := exec.HashJoinRows(of, cf, tpch.OCustKey, tpch.CCustKey)
			// Both intermediates are orderkey-aligned in this partition, so
			// the final join is local too.
			total += len(exec.HashJoinRows(lp, oc, tpch.LOrderKey, tpch.OOrderKey))
		default:
			return 0, fmt.Errorf("baselines: PREF cannot run template %q", in.Template)
		}
	}
	meter.AddResultRows(total)
	return total, nil
}
