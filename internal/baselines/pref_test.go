package baselines

import (
	"math/rand"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/exec"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tpch"
	"adaptdb/internal/tuple"
)

func filterRows(rows []tuple.Tuple, preds []predicate.Predicate) []tuple.Tuple {
	var out []tuple.Tuple
	for _, r := range rows {
		if predicate.MatchesAll(preds, r) {
			out = append(out, r)
		}
	}
	return out
}

func oracle(d *tpch.Dataset, in *tpch.Instance) int {
	lf := filterRows(d.Lineitem, in.LinePreds)
	of := filterRows(d.Orders, in.OrdPreds)
	cf := filterRows(d.Customer, in.CustPreds)
	pf := filterRows(d.Part, in.PartPreds)
	lw := tpch.LineitemSchema.NumCols()
	switch in.Template {
	case tpch.Q6:
		return len(lf)
	case tpch.Q3, tpch.Q5, tpch.Q10:
		lo := exec.NestedLoopJoin(lf, of, tpch.LOrderKey, tpch.OOrderKey)
		return len(exec.NestedLoopJoin(lo, cf, lw+tpch.OCustKey, tpch.CCustKey))
	case tpch.Q8:
		lp := exec.NestedLoopJoin(lf, pf, tpch.LPartKey, tpch.PPartKey)
		oc := exec.NestedLoopJoin(of, cf, tpch.OCustKey, tpch.CCustKey)
		return len(exec.NestedLoopJoin(lp, oc, tpch.LOrderKey, tpch.OOrderKey))
	case tpch.Q12:
		return len(exec.NestedLoopJoin(lf, of, tpch.LOrderKey, tpch.OOrderKey))
	case tpch.Q14, tpch.Q19:
		return len(exec.NestedLoopJoin(lf, pf, tpch.LPartKey, tpch.PPartKey))
	}
	return -1
}

func TestPREFCorrectOnAllTemplates(t *testing.T) {
	d := tpch.Generate(0.0004, 5)
	p := BuildPREF(d, 8)
	rng := rand.New(rand.NewSource(2))
	for _, tpl := range tpch.AllTemplates {
		in := tpch.NewInstance(tpl, d, rng)
		var meter cluster.Meter
		got, err := p.Run(in, &meter)
		if err != nil {
			t.Fatalf("%s: %v", tpl, err)
		}
		if want := oracle(d, in); got != want {
			t.Errorf("%s: PREF returned %d rows, oracle %d", tpl, got, want)
		}
		c := meter.Snapshot()
		if c.ShuffleRows != 0 || c.IntermediateRows != 0 {
			t.Errorf("%s: PREF must never shuffle: %+v", tpl, c)
		}
		if c.ScanLocal == 0 {
			t.Errorf("%s: PREF metered no reads", tpl)
		}
	}
}

func TestPREFReplicationFactor(t *testing.T) {
	d := tpch.Generate(0.001, 7)
	p := BuildPREF(d, 16)
	cust, part := p.ReplicationFactor(len(d.Customer), len(d.Part))
	if cust <= 1.5 {
		t.Errorf("customer replication factor %.2f; reference partitioning should replicate substantially", cust)
	}
	if part <= 1.5 {
		t.Errorf("part replication factor %.2f", part)
	}
	// More partitions → more replication (the paper's partition-count
	// trade-off).
	p2 := BuildPREF(d, 64)
	cust2, _ := p2.ReplicationFactor(len(d.Customer), len(d.Part))
	if cust2 < cust {
		t.Errorf("replication should grow with partition count: %0.2f -> %0.2f", cust, cust2)
	}
}

func TestPREFPartitionLocality(t *testing.T) {
	// Every lineitem row must land in the same partition as its order.
	d := tpch.Generate(0.0005, 9)
	k := 8
	p := BuildPREF(d, k)
	orderPart := make(map[int64]int)
	for i := 0; i < k; i++ {
		for _, o := range p.ord[i] {
			orderPart[o[tpch.OOrderKey].Int64()] = i
		}
	}
	for i := 0; i < k; i++ {
		for _, l := range p.line[i] {
			if orderPart[l[tpch.LOrderKey].Int64()] != i {
				t.Fatalf("lineitem not co-located with its order")
			}
		}
	}
	// Customer replicas must cover every referencing partition.
	for i := 0; i < k; i++ {
		custs := make(map[int64]bool)
		for _, c := range p.cust[i] {
			custs[c[tpch.CCustKey].Int64()] = true
		}
		for _, o := range p.ord[i] {
			if !custs[o[tpch.OCustKey].Int64()] {
				t.Fatalf("partition %d missing replicated customer %d", i, o[tpch.OCustKey].Int64())
			}
		}
	}
}

func TestPREFDegenerateK(t *testing.T) {
	d := tpch.Generate(0.0003, 3)
	p := BuildPREF(d, 0) // clamps to 1
	if p.K != 1 {
		t.Fatalf("K = %d, want 1", p.K)
	}
	rng := rand.New(rand.NewSource(1))
	in := tpch.NewInstance(tpch.Q12, d, rng)
	var meter cluster.Meter
	got, err := p.Run(in, &meter)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle(d, in); got != want {
		t.Errorf("K=1 PREF: %d rows, oracle %d", got, want)
	}
}

func TestPREFZonePruning(t *testing.T) {
	// With one partition per ~order, an orderkey point query should not
	// scan every partition.
	d := tpch.Generate(0.0005, 4)
	p := BuildPREF(d, 32)
	in := &tpch.Instance{
		Template: tpch.Q12,
		LinePreds: []predicate.Predicate{
			predicate.NewCmp(tpch.LOrderKey, predicate.LE, d.Lineitem[0][tpch.LOrderKey]),
		},
	}
	var meter cluster.Meter
	if _, err := p.Run(in, &meter); err != nil {
		t.Fatal(err)
	}
	full := float64(len(d.Lineitem) + len(d.Orders))
	if c := meter.Snapshot(); c.ScanLocal >= full {
		t.Errorf("key-range predicate should prune partitions: read %.0f of %.0f", c.ScanLocal, full)
	}
}
