package rdf

import (
	"testing"

	"adaptdb/internal/dfs"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/session"
	"adaptdb/internal/value"
)

// TestGenerateDeterministic: same seed, same dataset; the Zipf skew
// must actually concentrate triples on hub entities.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(2000, 300, 7)
	b := Generate(2000, 300, 7)
	if len(a.Triples) != 2000 || len(a.Entities) != 300 {
		t.Fatalf("sizes: %d triples, %d entities", len(a.Triples), len(a.Entities))
	}
	for i := range a.Triples {
		for c := range a.Triples[i] {
			if value.Compare(a.Triples[i][c], b.Triples[i][c]) != 0 {
				t.Fatalf("triple %d differs across same-seed generations", i)
			}
		}
	}
	// Hub concentration: the single hottest subject should carry far
	// more than a uniform share (2000/300 ≈ 7 triples).
	counts := map[int64]int{}
	for _, tr := range a.Triples {
		counts[tr[TSubject].Int64()]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 50 {
		t.Errorf("hottest subject has %d of 2000 triples; Zipf skew looks broken", max)
	}
}

// TestShiftWorkloadAdaptiveMatchesStatic replays a short
// subject→object shifting stream through an adaptive and a static
// session and requires identical per-query results — adaptation must
// never change answers — while the adaptive run actually migrates
// rows.
func TestShiftWorkloadAdaptiveMatchesStatic(t *testing.T) {
	d := Generate(4000, 400, 11)
	run := func(mode optimizer.Mode) ([]int, int) {
		store := dfs.NewStore(4, 2, 11)
		tb, err := d.Load(store, 128, 11)
		if err != nil {
			t.Fatal(err)
		}
		s := session.New(store, session.Config{
			Optimizer:   optimizer.Config{Mode: mode, WindowSize: 5, Seed: 11},
			Distributed: true,
		})
		cat := tb.Catalog()
		var rows []int
		moved := 0
		for i := 0; i < 20; i++ {
			lo := int64((i * 37) % 350)
			spec := SubjectSpec(lo, lo+50)
			if i >= 10 {
				spec = ObjectSpec(lo, lo+50)
			}
			q, err := session.FromSpec(cat, spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Execute(q)
			if err != nil {
				t.Fatalf("%s q%d: %v", spec.Label, i, err)
			}
			rows = append(rows, res.RowCount)
			moved += res.Adapt.MovedRows
		}
		return rows, moved
	}
	adaptive, movedA := run(optimizer.ModeAdaptive)
	static, movedS := run(optimizer.ModeStatic)
	for i := range adaptive {
		if adaptive[i] != static[i] {
			t.Errorf("q%d: adaptive %d rows, static %d rows", i, adaptive[i], static[i])
		}
	}
	if movedA == 0 {
		t.Error("adaptive run never migrated a row over the subject→object shift")
	}
	if movedS != 0 {
		t.Errorf("static run migrated %d rows", movedS)
	}
}
