// Package rdf generates an RDF-style skewed workload — the
// non-TPC-H setting the adaptive window is supposed to win in (per
// "Adaptive Partitioning for Very Large RDF Data"). The dataset is a
// single wide triples relation (subject, predicate, object) over a
// Zipf-distributed entity population — a handful of hub entities carry
// most of the triples — plus a small entities relation (id, type).
//
// The workload shifts its join attribute the way RDF query mixes do:
// subject-centric star queries (triples ⋈ entities on t_subject =
// e_id) for a phase, then object-centric ones (t_object = e_id). A
// static random partitioning pays a full shuffle on every query; the
// adaptive session repartitions the triples onto the live join
// attribute mid-stream and converts the rest of the phase to
// co-partitioned hyper joins.
package rdf

import (
	"math/rand"

	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
	"adaptdb/internal/query"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Triples columns.
const (
	TSubject = iota
	TPredicate
	TObject
)

// Entities columns.
const (
	EID = iota
	EType
)

// NumPredicates is the predicate-id domain (RDF vocabularies are
// small; queries filter on one predicate at a time).
const NumPredicates = 16

// NumTypes is the entity-type domain the grouped queries aggregate
// over.
const NumTypes = 8

// TriplesSchema is (subject, predicate, object), all entity/vocab ids.
var TriplesSchema = schema.MustNew(
	schema.Column{Name: "t_subject", Kind: value.Int},
	schema.Column{Name: "t_predicate", Kind: value.Int},
	schema.Column{Name: "t_object", Kind: value.Int},
)

// EntitiesSchema is (id, type).
var EntitiesSchema = schema.MustNew(
	schema.Column{Name: "e_id", Kind: value.Int},
	schema.Column{Name: "e_type", Kind: value.Int},
)

// Dataset is one generated RDF-style instance.
type Dataset struct {
	Triples  []tuple.Tuple
	Entities []tuple.Tuple
}

// Generate builds a dataset: nEntities entities and nTriples triples
// whose subject and object ids follow independent Zipf laws (s≈1.2)
// over the entity population. Deterministic per seed.
func Generate(nTriples, nEntities int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	zSub := rand.NewZipf(rng, 1.2, 1, uint64(nEntities-1))
	zObj := rand.NewZipf(rng, 1.2, 1, uint64(nEntities-1))
	d := &Dataset{
		Triples:  make([]tuple.Tuple, nTriples),
		Entities: make([]tuple.Tuple, nEntities),
	}
	for i := range d.Entities {
		d.Entities[i] = tuple.Tuple{
			value.NewInt(int64(i)),
			value.NewInt(rng.Int63n(NumTypes)),
		}
	}
	for i := range d.Triples {
		d.Triples[i] = tuple.Tuple{
			value.NewInt(int64(zSub.Uint64())),
			value.NewInt(rng.Int63n(NumPredicates)),
			value.NewInt(int64(zObj.Uint64())),
		}
	}
	return d
}

// Tables is a loaded dataset.
type Tables struct {
	Triples  *core.Table
	Entities *core.Table
}

// Load loads the dataset over the store with random upfront
// partitioning (no join trees) — the §7.3-style initial state the
// adaptive session improves on.
func (d *Dataset) Load(store *dfs.Store, rowsPerBlock int, seed int64) (*Tables, error) {
	tr, err := core.Load(store, "triples", TriplesSchema, d.Triples, core.LoadOptions{
		RowsPerBlock: rowsPerBlock, Seed: seed, JoinAttr: -1,
	})
	if err != nil {
		return nil, err
	}
	en, err := core.Load(store, "entities", EntitiesSchema, d.Entities, core.LoadOptions{
		RowsPerBlock: rowsPerBlock, Seed: seed + 1, JoinAttr: -1,
	})
	if err != nil {
		return nil, err
	}
	return &Tables{Triples: tr, Entities: en}, nil
}

// Catalog exposes the loaded tables for spec binding.
func (tb *Tables) Catalog() query.Catalog {
	return query.Catalog{"triples": tb.Triples, "entities": tb.Entities}
}

// star builds the phase query: triples anchored on an entity-id range
// [lo, hi) of the given triple column (the way RDF star queries anchor
// on an entity neighborhood), joined to entities on that column,
// grouped by entity type with COUNT and an exact integer SUM. The
// anchor range is the adaptive win: once the window repartitions
// triples onto the live join column, zone maps prune the blocks
// outside [lo, hi); under the random upfront layout every block spans
// the whole id domain and nothing prunes.
func star(label, joinCol string, lo, hi int64) query.Spec {
	return query.Spec{
		Label: label,
		Tables: []query.TableRef{
			{Name: "triples", Preds: []query.Pred{
				{Col: joinCol, Op: predicate.GE, Val: value.NewInt(lo)},
				{Col: joinCol, Op: predicate.LT, Val: value.NewInt(hi)},
			}},
			{Name: "entities"},
		},
		Joins:   []query.JoinEdge{query.On(query.C("triples", joinCol), query.C("entities", "e_id"))},
		GroupBy: []query.Col{query.C("entities", "e_type")},
		Aggs:    []query.Agg{query.Count(), query.Sum(query.C("triples", "t_object"))},
	}
}

// SubjectSpec is a subject-centric star query over the entity-id
// anchor range [lo, hi).
func SubjectSpec(lo, hi int64) query.Spec { return star("rdf-subject", "t_subject", lo, hi) }

// ObjectSpec is the shifted phase: the same star anchored on the
// object column.
func ObjectSpec(lo, hi int64) query.Spec { return star("rdf-object", "t_object", lo, hi) }
