package session_test

import (
	"fmt"
	"math/rand"

	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/schema"
	"adaptdb/internal/session"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// ExampleSession replays a tiny query stream whose join attribute
// shifts from column a to column b. The session records each query in
// the fact table's window, and smooth repartitioning migrates blocks
// between queries: the first b-join still shuffles, then a b-tree is
// created and the planner switches to hyper-join as data migrates.
func ExampleSession() {
	factSch := schema.MustNew(
		schema.Column{Name: "a", Kind: value.Int},
		schema.Column{Name: "b", Kind: value.Int},
	)
	dimSch := schema.MustNew(
		schema.Column{Name: "key", Kind: value.Int},
	)
	store := dfs.NewStore(4, 2, 1)
	rng := rand.New(rand.NewSource(2))
	var frows, dimrows []tuple.Tuple
	for i := 0; i < 2048; i++ {
		frows = append(frows, tuple.Tuple{
			value.NewInt(rng.Int63n(100)), value.NewInt(rng.Int63n(100)),
		})
	}
	for i := int64(0); i < 100; i++ {
		dimrows = append(dimrows, tuple.Tuple{value.NewInt(i)})
	}
	fact, _ := core.Load(store, "fact", factSch, frows, core.LoadOptions{
		RowsPerBlock: 128, Seed: 3, JoinAttr: 0, // co-partitioned on a
	})
	dim, _ := core.Load(store, "dim", dimSch, dimrows, core.LoadOptions{
		RowsPerBlock: 32, Seed: 4, JoinAttr: 0,
	})

	s := session.New(store, session.Config{
		Optimizer: optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 4, Seed: 7},
	})
	for i, attr := range []int{0, 1, 1, 1, 1} {
		q := session.Query{
			Label: fmt.Sprintf("q%d", i),
			Plan: &planner.Join{
				Left:  &planner.Scan{Table: fact},
				Right: &planner.Scan{Table: dim},
				LCol:  attr, RCol: 0,
			},
			Uses: []optimizer.TableUse{
				{Table: fact, JoinAttr: attr},
				{Table: dim, JoinAttr: 0},
			},
		}
		res, err := s.Execute(q)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s join=%-12s rows=%d moved=%d\n",
			res.Label, res.Report.Joins[0].Strategy, res.RowCount, res.Adapt.MovedRows)
	}
	// Output:
	// q0 join=hyper        rows=2048 moved=0
	// q1 join=combination  rows=2048 moved=507
	// q2 join=combination  rows=2048 moved=543
	// q3 join=combination  rows=2048 moved=498
	// q4 join=hyper        rows=2048 moved=500
}
