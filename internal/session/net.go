// The TCP transport path: a session whose Config carries a net.Cluster
// executes its stream over real worker processes instead of the
// in-process simulated fabric. The session's own store is the
// coordinator's replica — adaptation, compilation and the coordinator-
// side plan fragments (gathers, broadcast sources, hyper-join globals)
// run here exactly as in simulated distributed mode; only the exchange
// transport changes. When an attempt fails with a transport error the
// session retries it: the cluster reassigns the dead worker's
// fragments to a surviving replica holder and the query still returns
// the correct result, which is the failover contract the test wall
// pins.
package session

import (
	"context"
	"fmt"
	"time"

	"adaptdb/internal/exec"
	adbnet "adaptdb/internal/net"
	"adaptdb/internal/planner"
	"adaptdb/internal/tuple"
)

// runNet executes one query of the stream over the TCP fabric, with
// replica failover. Mirrors run()'s accounting contract: adapt first
// (migration I/O on this query's meter, once — workers adapt with
// throwaway meters), counters captured and reset whatever happens.
func (s *Session) runNet(q Query, collect bool, sink func(*exec.Batch) error) (*Result, error) {
	res := &Result{Seq: s.seq, Label: q.Label}
	seq := s.seq
	s.seq++
	start := time.Now()
	defer func() {
		if ns := s.ex.Nodes(); ns != nil {
			ns.Flush()
		}
		res.Wall = time.Since(start)
		res.Counters = s.meter.Reset()
		res.SimSeconds = res.Counters.SimSeconds(s.model)
	}()

	if q.Spec == nil {
		return res, fmt.Errorf("session: %q: the TCP transport requires declarative specs (hand-built plans cannot be dispatched)", q.Label)
	}

	// Adaptation votes come from the spec's join graph, never from a
	// hand-set Uses list: every worker replica derives its votes from
	// the same bound spec, and the coordinator must match them exactly
	// or layouts drift apart.
	adapt, err := s.opt.OnQuery(q.Spec.Uses(), s.meter)
	if err != nil {
		return res, fmt.Errorf("session: adapt %q: %w", q.Label, err)
	}
	res.Adapt = adapt

	ctx := s.ex.Ctx()
	if ctx == nil {
		ctx = context.Background()
	}

	var comp *planner.Compiled
	var rows []tuple.Tuple
	for attemptN := 1; ; attemptN++ {
		at, err := s.net.Begin(q.Spec.Spec, seq, s.runner.LinkWeights)
		if err != nil {
			return res, fmt.Errorf("session: dispatch %q: %w", q.Label, err)
		}
		fb, err := at.Fabric(s.ex)
		if err != nil {
			at.Finish(err, s.meter)
			return res, fmt.Errorf("session: %q: %w", q.Label, err)
		}
		s.ex.SetFabric(fb)
		comp, err = s.runner.CompileSpec(q.Spec)
		s.ex.SetFabric(nil)
		if err != nil {
			at.Finish(err, s.meter)
			return res, fmt.Errorf("session: compile %q: %w", q.Label, err)
		}
		at.Start(ctx)

		rows, err = exec.Collect(comp.Root)
		execErr := err
		retry, ferr := at.Finish(execErr, s.meter)
		if execErr == nil && ferr == nil {
			break
		}
		if ferr == nil {
			ferr = execErr
		}
		if retry && attemptN < s.net.MaxAttempts() {
			continue
		}
		return res, fmt.Errorf("session: execute %q (attempt %d): %w", q.Label, attemptN, ferr)
	}

	// Measured link weights feed the next compile's shuffle pricing.
	if w := s.net.Weights(); w != nil {
		s.runner.LinkWeights = w
	}

	res.Report = comp.Report
	res.Ops = comp.OpStats()
	res.RowCount = len(rows)
	if collect {
		res.Rows = rows
	} else if sink != nil {
		// Replay the materialized result through the sink in batches.
		// (Streaming straight into the sink would hand it rows from
		// attempts that later fail over; materializing first keeps the
		// sink exactly-once.)
		for off := 0; off < len(rows); off += exec.DefaultBatchSize {
			end := off + exec.DefaultBatchSize
			if end > len(rows) {
				end = len(rows)
			}
			b := exec.NewBatch()
			for _, r := range rows[off:end] {
				b.Append(r)
			}
			err := sink(b)
			b.Release()
			if err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// Net exposes the session's cluster handle (nil without TCP transport).
func (s *Session) Net() *adbnet.Cluster { return s.net }
