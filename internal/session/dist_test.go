package session

import (
	"math/rand"
	"testing"

	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/tpch"
	"adaptdb/internal/tuple"
)

// replayTPCH runs the join-attribute-shifting TPC-H stream through a
// distributed session over `nodes` nodes and returns each query's
// materialized rows (plus the session for counter inspection).
func replayTPCH(t *testing.T, data *tpch.Dataset, nodes int) ([][]tuple.Tuple, []*Result) {
	t.Helper()
	store := dfs.NewStore(nodes, 2, 7)
	tables, err := tpch.LoadAll(store, data, tpch.LoadConfig{RowsPerBlock: 96, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := New(store, Config{
		Optimizer:   optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 5, Seed: 7},
		Distributed: true,
	})
	// Same rng seed for every node count: identical query parameters.
	rng := rand.New(rand.NewSource(7))
	schedule := []tpch.Template{
		tpch.Q5, tpch.Q3, tpch.Q5, tpch.Q3, tpch.Q5, tpch.Q3,
		tpch.Q8, tpch.Q14, tpch.Q8, tpch.Q14, tpch.Q8, tpch.Q14,
	}
	var rows [][]tuple.Tuple
	var results []*Result
	for qi, tpl := range schedule {
		in := tpch.NewInstance(tpl, data, rng)
		res, err := s.Execute(Query{Label: string(tpl), Plan: in.Plan(tables), Uses: in.Uses(tables)})
		if err != nil {
			t.Fatalf("nodes=%d q%d (%s): %v", nodes, qi, tpl, err)
		}
		rows = append(rows, res.Rows)
		results = append(results, res)
	}
	return rows, results
}

// TestDistributedSessionOracle4v1: the PR-3 adaptive TPC-H stream
// produces identical sorted results on a 4-node fabric and a 1-node
// fabric, query by query — partitioning the execution across nodes
// must never change an answer.
func TestDistributedSessionOracle4v1(t *testing.T) {
	data := tpch.Generate(0.001, 7)
	one, _ := replayTPCH(t, data, 1)
	four, res4 := replayTPCH(t, data, 4)
	if len(one) != len(four) {
		t.Fatalf("query counts differ: %d vs %d", len(one), len(four))
	}
	for qi := range one {
		sameRows(t, four[qi], one[qi], res4[qi].Label)
	}
	// The 4-node run must actually have spread work: some query's
	// per-node stats should show more than one node touching rows.
	spread := false
	for _, r := range res4 {
		active := 0
		for _, nl := range r.PerNode() {
			if nl.Node >= 0 && nl.Rows > 0 {
				active++
			}
		}
		if active > 1 {
			spread = true
			break
		}
	}
	if !spread {
		t.Fatal("4-node session never ran operators on more than one node")
	}
}

// TestDistributedHyperJoinSessionZeroExchange: once the stream
// converges onto co-partitioned layouts, a hyper-join query moves zero
// rows through exchanges while a broadcast (semi-shuffle) join moves
// only its intermediate.
func TestDistributedHyperJoinSessionZeroExchange(t *testing.T) {
	f := setup(t)
	s := New(f.store, Config{
		Optimizer:   optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 3, Seed: 9},
		Distributed: true,
	})
	// Drive the fact table onto attribute 0 until the layout converges.
	var last *Result
	for i := 0; i < 8; i++ {
		res, err := s.Execute(f.query(0, 1000))
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	if got := len(last.Report.Joins); got != 1 {
		t.Fatalf("expected one join, got %d", got)
	}
	if last.Report.Joins[0].Strategy != "hyper" {
		t.Fatalf("converged stream should hyper-join, got %q", last.Report.Joins[0].Strategy)
	}
	if got := last.Counters.ExchRows(); got != 0 {
		t.Fatalf("co-partitioned hyper-join exchanged %v rows, want 0", got)
	}
	// Sanity: the answer still matches the oracle.
	preds := f.query(0, 1000).Plan.(*planner.Join).Left.(*planner.Scan).Preds
	want := exec.NestedLoopJoin(filterRows(f.frows, preds), f.darows, 0, 0)
	sameRows(t, last.Rows, want, "converged hyper")
}
