package session

import (
	"math/rand"
	"testing"

	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
	"adaptdb/internal/workload"
)

var (
	factSch = schema.MustNew(
		schema.Column{Name: "a", Kind: value.Int},
		schema.Column{Name: "b", Kind: value.Int},
		schema.Column{Name: "v", Kind: value.Int},
	)
	dimSch = schema.MustNew(
		schema.Column{Name: "key", Kind: value.Int},
		schema.Column{Name: "payload", Kind: value.Int},
	)
)

type fixture struct {
	store        *dfs.Store
	fact, da, db *core.Table
	frows        []tuple.Tuple
	darows       []tuple.Tuple
	dbrows       []tuple.Tuple
}

func setup(t *testing.T) *fixture {
	t.Helper()
	store := dfs.NewStore(4, 2, 5)
	rng := rand.New(rand.NewSource(17))
	f := &fixture{store: store}
	for i := 0; i < 4096; i++ {
		f.frows = append(f.frows, tuple.Tuple{
			value.NewInt(rng.Int63n(200)),
			value.NewInt(rng.Int63n(50)),
			value.NewInt(rng.Int63n(1000)),
		})
	}
	for i := int64(0); i < 200; i++ {
		f.darows = append(f.darows, tuple.Tuple{value.NewInt(i), value.NewInt(i * 7)})
	}
	for i := int64(0); i < 50; i++ {
		f.dbrows = append(f.dbrows, tuple.Tuple{value.NewInt(i), value.NewInt(i * 11)})
	}
	var err error
	// The fact table starts randomly partitioned (no join tree), as §7.3
	// does; the dims are co-partitioned on their keys.
	if f.fact, err = core.Load(store, "fact", factSch, f.frows, core.LoadOptions{
		RowsPerBlock: 128, Seed: 2, JoinAttr: -1,
	}); err != nil {
		t.Fatal(err)
	}
	if f.da, err = core.Load(store, "dim_a", dimSch, f.darows, core.LoadOptions{
		RowsPerBlock: 32, Seed: 3, JoinAttr: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if f.db, err = core.Load(store, "dim_b", dimSch, f.dbrows, core.LoadOptions{
		RowsPerBlock: 16, Seed: 4, JoinAttr: 0,
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

// query builds a fact ⋈ dim session query joining on the given fact
// column, with a selection on fact.v to vary instances.
func (f *fixture) query(attr int, vmax int64) Query {
	dim := f.da
	if attr == 1 {
		dim = f.db
	}
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(vmax))}
	return Query{
		Label: "fact-dim",
		Plan: &planner.Join{
			Left:  &planner.Scan{Table: f.fact, Preds: preds},
			Right: &planner.Scan{Table: dim},
			LCol:  attr, RCol: 0,
		},
		Uses: []optimizer.TableUse{
			{Table: f.fact, JoinAttr: attr, Preds: preds},
			{Table: dim, JoinAttr: 0},
		},
	}
}

func filterRows(rows []tuple.Tuple, preds []predicate.Predicate) []tuple.Tuple {
	var out []tuple.Tuple
	for _, r := range rows {
		if predicate.MatchesAll(preds, r) {
			out = append(out, r)
		}
	}
	return out
}

func sameRows(t *testing.T, got, want []tuple.Tuple, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, oracle %d", label, len(got), len(want))
	}
	exec.SortRows(got)
	exec.SortRows(want)
	for i := range got {
		for c := range got[i] {
			if value.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("%s: row %d differs: %v vs %v", label, i, got[i], want[i])
			}
		}
	}
}

// factState snapshots what the Fig. 11 step will see for the fact
// table before a query executes.
type factState struct {
	treeIdx   int
	total     int
	share     float64
	maxBucket int
	nAfterAdd int
}

func snapshotFact(s *Session, f *fixture, attr int) factState {
	st := factState{treeIdx: f.fact.TreeFor(attr)}
	for _, i := range f.fact.LiveTrees() {
		st.total += f.fact.RowsUnder(i)
		for _, b := range f.fact.Trees[i].LiveBuckets() {
			if c := f.fact.Trees[i].Metas[b].Count; c > st.maxBucket {
				st.maxBucket = c
			}
		}
	}
	if st.treeIdx >= 0 && st.total > 0 {
		st.share = float64(f.fact.RowsUnder(st.treeIdx)) / float64(st.total)
	}
	// Predict n = |{q ∈ W : attr}| after this query joins the window.
	w := s.Optimizer().Window("fact")
	qs := append([]workload.Query{}, w.Queries()...)
	qs = append(qs, workload.Query{JoinAttr: attr})
	if len(qs) > w.Cap() {
		qs = qs[1:]
	}
	for _, q := range qs {
		if q.JoinAttr == attr {
			st.nAfterAdd++
		}
	}
	return st
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestSessionAdaptiveStream replays a mixed-attribute query stream and
// checks the full loop: fmin-gated tree creation, Fig. 11 migration
// fractions (p = n/|W| − |T′|/(|T|+|T′|)), result correctness against
// a materialized oracle throughout, and convergence once the workload
// settles on one attribute.
func TestSessionAdaptiveStream(t *testing.T) {
	f := setup(t)
	const fmin, window = 2, 8
	s := New(f.store, Config{
		Optimizer: optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: window, FMin: fmin, Seed: 5},
	})

	// attr per step: a, a, b, a, b, then b-only until convergence.
	attrs := []int{0, 0, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1}
	for i, attr := range attrs {
		pre := snapshotFact(s, f, attr)
		q := f.query(attr, int64(500+i*25))
		res, err := s.Execute(q)
		if err != nil {
			t.Fatal(err)
		}

		// Migration accounting (only the fact table can move: the dims'
		// trees already hold 100% of their rows, so p ≤ 0 for them).
		var budget int
		switch {
		case pre.treeIdx < 0 && pre.nAfterAdd < fmin:
			if f.fact.TreeFor(attr) >= 0 {
				t.Fatalf("q%d: tree on attr %d created before fmin=%d (n=%d)", i, attr, fmin, pre.nAfterAdd)
			}
		case pre.treeIdx < 0:
			if f.fact.TreeFor(attr) < 0 || res.Adapt.CreatedTrees != 1 {
				t.Fatalf("q%d: tree on attr %d not created at fmin (n=%d): %+v", i, attr, pre.nAfterAdd, res.Adapt)
			}
			budget = int(float64(fmin) / float64(window) * float64(pre.total))
		default:
			p := float64(pre.nAfterAdd)/float64(window) - pre.share
			if p > 0 {
				budget = int(p * float64(pre.total))
			}
		}
		if budget == 0 && pre.treeIdx >= 0 {
			if res.Adapt.MovedRows != 0 {
				t.Fatalf("q%d: moved %d rows with p ≤ 0", i, res.Adapt.MovedRows)
			}
		}
		if budget > 0 && abs(res.Adapt.MovedRows-budget) > pre.maxBucket {
			t.Fatalf("q%d: moved %d rows, Fig. 11 target %d (±%d bucket rows)",
				i, res.Adapt.MovedRows, budget, pre.maxBucket)
		}

		// Results must match the materialized oracle at every step, mid
		// transition included.
		preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(int64(500+i*25)))}
		dimRows := f.darows
		if attr == 1 {
			dimRows = f.dbrows
		}
		want := exec.NestedLoopJoin(filterRows(f.frows, preds), dimRows, attr, 0)
		sameRows(t, res.Rows, want, res.Label)

		if res.Report == nil || len(res.Report.Joins) != 1 {
			t.Fatalf("q%d: report = %+v", i, res.Report)
		}
		// A hyper join scans its blocks inside the operator, so the DAG
		// can legitimately be a single instrumented op; it must never be
		// empty or unlabeled.
		if len(res.Ops) < 1 || res.Ops[0].Label == "" {
			t.Fatalf("q%d: expected per-operator stats, got %+v", i, res.Ops)
		}
	}

	// The stream settled on attr b: migration must have fully drained
	// the older trees by now (drop-when-drained in the Fig. 11 loop).
	live := f.fact.LiveTrees()
	if len(live) != 1 || f.fact.Trees[live[0]].Tree.JoinAttr != 1 {
		t.Fatalf("fact table should have converged to one tree on b; live=%v", live)
	}
	if s.Queries() != len(attrs) {
		t.Fatalf("Queries() = %d, want %d", s.Queries(), len(attrs))
	}
}

// TestSessionThreeTableDAG compiles and runs a 3-table plan through the
// session: (fact ⋈ dim_a) ⋈ dim_b with the intermediate streaming into
// the second join's build side — no whole-table slice materialization.
func TestSessionThreeTableDAG(t *testing.T) {
	f := setup(t)
	s := New(f.store, Config{
		Optimizer: optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 8, Seed: 5},
	})
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(700))}
	inner := &planner.Join{
		Left:  &planner.Scan{Table: f.fact, Preds: preds},
		Right: &planner.Scan{Table: f.da},
		LCol:  0, RCol: 0,
	}
	plan := &planner.Join{
		Left:  inner,
		Right: &planner.Scan{Table: f.db},
		LCol:  1, RCol: 0, // fact.b in the concatenated row
	}
	q := Query{
		Label: "three-table",
		Plan:  plan,
		Uses: []optimizer.TableUse{
			{Table: f.fact, JoinAttr: 0, Preds: preds},
			{Table: f.da, JoinAttr: 0},
			{Table: f.db, JoinAttr: 0},
		},
	}
	res, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	lo := exec.NestedLoopJoin(filterRows(f.frows, preds), f.darows, 0, 0)
	want := exec.NestedLoopJoin(lo, f.dbrows, 1, 0)
	sameRows(t, res.Rows, want, "three-table")
	if len(res.Report.Joins) != 2 {
		t.Fatalf("expected 2 join reports, got %+v", res.Report.Joins)
	}
	// The DAG is one operator tree: scans, the inner join, and the outer
	// join all instrumented individually.
	if len(res.Ops) < 5 {
		t.Fatalf("expected ≥5 instrumented operators in the DAG, got %d: %+v", len(res.Ops), res.Ops)
	}
	for _, op := range res.Ops {
		if op.Label == "" {
			t.Fatalf("unlabeled operator stats: %+v", res.Ops)
		}
	}
}

// TestSessionStreamAvoidsMaterialization checks the Stream path counts
// rows identically to Execute without retaining them.
func TestSessionStreamAvoidsMaterialization(t *testing.T) {
	f := setup(t)
	cfg := Config{Optimizer: optimizer.Config{Mode: optimizer.ModeStatic, WindowSize: 8, Seed: 5}}
	a := New(f.store, cfg)
	b := New(f.store, cfg)
	q := f.query(0, 600)
	resA, err := a.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	batches := 0
	resB, err := b.Stream(q, func(batch *exec.Batch) error { batches++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if resB.Rows != nil {
		t.Fatalf("Stream must not materialize rows")
	}
	if resA.RowCount != resB.RowCount {
		t.Fatalf("Execute counted %d rows, Stream %d", resA.RowCount, resB.RowCount)
	}
	if resB.RowCount > 0 && batches == 0 {
		t.Fatalf("sink never saw a batch")
	}
}

// TestSessionReproducible replays the same stream on two sessions built
// from the same seeds and expects identical adaptation and metering.
func TestSessionReproducible(t *testing.T) {
	run := func() []float64 {
		f := setup(t)
		s := New(f.store, Config{
			Optimizer: optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 8, FMin: 2, Seed: 9},
		})
		var sims []float64
		for i, attr := range []int{0, 1, 1, 0, 1, 1} {
			res, err := s.Execute(f.query(attr, int64(400+i*30)))
			if err != nil {
				t.Fatal(err)
			}
			sims = append(sims, res.SimSeconds)
		}
		return sims
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sim-seconds diverged at q%d: %v vs %v", i, a, b)
		}
	}
}
