package session

import (
	"testing"

	"adaptdb/internal/optimizer"
)

// runBudgeted replays the same query through a fresh session configured
// with the given memory budget and returns the result.
func runBudgeted(t *testing.T, budget int64, distributed bool) *Result {
	t.Helper()
	f := setup(t)
	s := New(f.store, Config{
		Optimizer: optimizer.Config{Mode: optimizer.ModeStatic, Seed: 9},
		// Force the shuffle strategy: hyper-join bounds its builds by
		// the block budget and never spills, which is exactly what this
		// test must not silently measure.
		ForceShuffle: true,
		MemBudget:    budget,
		SpillDir:     t.TempDir(),
		Distributed:  distributed,
	})
	res, err := s.Execute(f.query(0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSessionMemBudgetIdenticalResults drives the full session path —
// plan, compile, drain — under no budget, a generous budget, and a
// starved budget, centralized and distributed, asserting the result
// multiset never changes and that the starved runs actually spill
// (visible per-op in OpStats.SpilledBytes and in the query's counters).
func TestSessionMemBudgetIdenticalResults(t *testing.T) {
	for _, distributed := range []bool{false, true} {
		name := "centralized"
		if distributed {
			name = "distributed"
		}
		t.Run(name, func(t *testing.T) {
			base := runBudgeted(t, 0, distributed)
			if base.RowCount == 0 {
				t.Fatal("baseline query returned no rows — test is vacuous")
			}
			if base.Counters.SpillRows != 0 {
				t.Errorf("unbudgeted run spilled %v rows", base.Counters.SpillRows)
			}
			starved := runBudgeted(t, 4096, distributed)
			sameRows(t, starved.Rows, base.Rows, "starved budget")
			if starved.Counters.SpillRows == 0 {
				t.Error("4KB budget spilled nothing — spill path not exercised")
			}
			var spilled int64
			for _, op := range starved.Ops {
				spilled += op.SpilledBytes
			}
			if spilled == 0 {
				t.Error("no operator reported SpilledBytes under a starved budget")
			}
			generous := runBudgeted(t, 64<<20, distributed)
			sameRows(t, generous.Rows, base.Rows, "generous budget")
		})
	}
}
