// Package session drives AdaptDB's full adaptive loop in one process
// off one API — the paper's Fig. 2 storage-manager lifecycle as a
// query-stream service. A Session accepts a stream of planner queries;
// for each one it
//
//  1. records how the query touches every table into that table's
//     workload.Window and runs the optimizer's smooth-repartitioning
//     step (§5.2, Fig. 11) — trees are created, blocks migrate, and
//     drained trees are dropped between queries while the stream runs;
//  2. compiles the plan tree (arbitrary depth, not just two-table)
//     into a DAG of exec.Operators via planner.Compile — pipelined
//     scans with predicate pushdown and the cost-model-selected
//     hyper / shuffle / combination / semi-shuffle join strategies as
//     operator choices, with no intermediate whole-table slice
//     materialization anywhere on the path;
//  3. drains the DAG through the executor's bounded worker pool,
//     collecting per-operator stats (rows / batches / wall ns), the
//     per-join strategy report, and the metered I/O priced by the §4.2
//     cost model.
//
// Repartitioning I/O is metered into the triggering query's counters,
// so per-query SimSeconds reflect adaptation overhead exactly as the
// paper's per-query latency plots do. All randomness (migration bucket
// choice, new-tree build seeds) descends from Config.Seed, so a
// session run replays bit-identically.
package session

import (
	"context"
	"fmt"
	"sort"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	adbnet "adaptdb/internal/net"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/query"
	"adaptdb/internal/tuple"
)

// Query is one query of the stream: a declarative spec (the public
// form) or an executable plan tree (the compiler IR), plus the
// per-table touch descriptors that feed the query windows.
type Query struct {
	// Label tags results (e.g. the TPC-H template name); informational.
	Label string
	// Spec is the bound declarative query — the public query surface.
	// When set, the session lowers it with greedy join ordering
	// (planner.CompileSpec) and Plan is ignored. Build one with
	// FromSpec, which also derives Uses.
	Spec *query.Bound
	// Plan is the query's join tree over loaded tables — the planner's
	// internal IR, still accepted for hand-built plans and tests.
	Plan planner.Node
	// Uses describes how the query touches each table (join attribute +
	// predicates) — what the optimizer records into workload windows
	// before adapting. A query that should not influence adaptation may
	// leave it nil. FromSpec derives it from the join graph.
	Uses []optimizer.TableUse
}

// FromSpec binds a declarative spec against the catalog and wraps it
// as a stream query, deriving the optimizer touch descriptors from the
// join graph — no hand-maintained Uses lists.
func FromSpec(cat query.Catalog, s query.Spec) (Query, error) {
	b, err := s.Bind(cat)
	if err != nil {
		return Query{}, err
	}
	return Query{Label: s.Label, Spec: b, Uses: b.Uses()}, nil
}

// Config tunes a session.
type Config struct {
	// Model prices metered I/O; zero value means cluster.Default().
	Model cluster.CostModel
	// Optimizer configures adaptation (mode, window size, fmin, seed).
	// Zero value means ModeAdaptive with the paper's defaults.
	Optimizer optimizer.Config
	// BudgetBlocks is the hyper-join memory budget in blocks (0 = the
	// planner default of 4).
	BudgetBlocks int
	// ForceShuffle disables hyper-join (baseline configurations).
	ForceShuffle bool
	// Workers bounds executor parallelism; 0 = one per store node.
	Workers int
	// MemBudget bounds operator memory in bytes (0 = unlimited): hash
	// joins charge their build sides against it and demote partitions to
	// disk run files under pressure — the spilling hybrid hash join. In
	// distributed mode the budget splits into equal per-node shares.
	// Per-operator spill volume lands in OpStats.SpilledBytes and the
	// query's Counters.SpillRows/SpillBytes.
	MemBudget int64
	// SpillDir is where budget-pressured joins put run files ("" = the
	// OS temp dir).
	SpillDir string
	// Distributed enables the per-node execution fabric: every store
	// node gets its own executor (worker pool + meter shard), scans run
	// where their blocks live, and joins move rows through exchange
	// operators instead of a central pool. Query results are identical
	// to centralized mode; the metered I/O switches from call-site
	// shuffle charges to exchange-side network accounting.
	Distributed bool
	// WorkersPerNode bounds each node executor's parallelism in
	// distributed mode (0 = one worker per node, so aggregate
	// parallelism scales with the cluster).
	WorkersPerNode int
	// Net switches the exchange transport from the in-process simulated
	// fabric to a running TCP cluster (see internal/net): queries
	// dispatch to real worker processes and results gather back over
	// sockets, with transparent replica failover on worker death. The
	// session's store must be the coordinator replica of the same
	// dataset the cluster's workers built, with NumNodes equal to the
	// cluster's fragment count. Implies Distributed.
	Net *adbnet.Cluster
}

// Session executes a query stream with adaptation interleaved.
// Not safe for concurrent use: queries are a stream, and adaptation
// between them mutates table layouts.
type Session struct {
	ex     *exec.Executor
	runner *planner.Runner
	opt    *optimizer.Optimizer
	model  cluster.CostModel
	meter  *cluster.Meter
	net    *adbnet.Cluster
	seq    int
}

// New builds a session over a store.
func New(store *dfs.Store, cfg Config) *Session {
	model := cfg.Model
	if model == (cluster.CostModel{}) {
		model = cluster.Default()
	}
	meter := &cluster.Meter{}
	ex := exec.New(store, meter)
	ex.Workers = cfg.Workers
	ex.Mem = exec.NewMemBudget(cfg.MemBudget)
	ex.SpillDir = cfg.SpillDir
	if cfg.Distributed || cfg.Net != nil {
		// After the budget: EnableNodes splits it into per-node shares.
		ex.EnableNodes(cfg.WorkersPerNode)
	}
	runner := planner.NewRunner(ex, model)
	if cfg.BudgetBlocks > 0 {
		runner.BudgetBlocks = cfg.BudgetBlocks
	}
	runner.ForceShuffle = cfg.ForceShuffle
	return &Session{
		ex:     ex,
		runner: runner,
		opt:    optimizer.New(cfg.Optimizer),
		model:  model,
		meter:  meter,
		net:    cfg.Net,
	}
}

// Result reports what one query of the stream did.
type Result struct {
	// Seq is the query's position in the stream (0-based).
	Seq int
	// Label echoes Query.Label.
	Label string
	// Rows holds the materialized result (Execute only; nil for Stream).
	Rows []tuple.Tuple
	// RowCount is the result cardinality, set on both paths.
	RowCount int
	// Report lists the join strategy picked per join, in plan
	// post-order.
	Report *planner.Report
	// Ops holds per-operator stats (rows, batches, inclusive wall ns)
	// for every operator of the compiled DAG, in compile order.
	Ops []exec.OpStats
	// Adapt summarizes the smooth-repartitioning work this query
	// triggered (trees created, rows migrated).
	Adapt optimizer.StepReport
	// Counters is the query's metered I/O, including migration I/O.
	Counters cluster.Counters
	// SimSeconds prices Counters with the session's cost model.
	SimSeconds float64
	// Wall is the real time spent adapting + executing.
	Wall time.Duration
}

// Execute runs one query of the stream — adapt, compile, drain — and
// materializes the result rows.
func (s *Session) Execute(q Query) (*Result, error) {
	return s.run(q, true, nil)
}

// Stream runs one query of the stream without materializing the
// result: each output batch is passed to sink (which may be nil to
// just count rows). The batch is only valid during the call — sink
// must copy any owned rows it wants to retain (see exec.Batch).
func (s *Session) Stream(q Query, sink func(*exec.Batch) error) (*Result, error) {
	return s.run(q, false, sink)
}

// ExecuteContext is Execute under a cancellation context: operator
// drain loops check ctx at batch boundaries and the query errors with
// ctx.Err() once it is cancelled or past deadline. The context binds
// to the session's executor for the duration of the call (sessions are
// single-stream, so no other query can observe it).
func (s *Session) ExecuteContext(ctx context.Context, q Query) (*Result, error) {
	s.ex.BindContext(ctx)
	defer s.ex.BindContext(nil)
	return s.run(q, true, nil)
}

// StreamContext is Stream under a cancellation context (see
// ExecuteContext).
func (s *Session) StreamContext(ctx context.Context, q Query, sink func(*exec.Batch) error) (*Result, error) {
	s.ex.BindContext(ctx)
	defer s.ex.BindContext(nil)
	return s.run(q, false, sink)
}

func (s *Session) run(q Query, collect bool, sink func(*exec.Batch) error) (*Result, error) {
	if s.net != nil {
		return s.runNet(q, collect, sink)
	}
	res := &Result{Seq: s.seq, Label: q.Label}
	s.seq++
	start := time.Now()
	// Whatever happens — including a compile or execution error — this
	// query's metered I/O is captured into its result and the shared
	// meter is reset, so a failed query never leaks counters into the
	// next one's accounting. In distributed mode the per-node meter
	// shards are folded in first — the "merge once per query" point.
	defer func() {
		if ns := s.ex.Nodes(); ns != nil {
			ns.Flush()
		}
		res.Wall = time.Since(start)
		res.Counters = s.meter.Reset()
		res.SimSeconds = res.Counters.SimSeconds(s.model)
	}()

	// Adapt first: the query joins the windows, and smooth
	// repartitioning migrates blocks before execution, so this query
	// already scans the trees it voted for. Migration I/O lands on this
	// query's meter (the paper's per-query accounting).
	adapt, err := s.opt.OnQuery(q.Uses, s.meter)
	if err != nil {
		return res, fmt.Errorf("session: adapt %q: %w", q.Label, err)
	}
	res.Adapt = adapt

	var comp *planner.Compiled
	if q.Spec != nil {
		comp, err = s.runner.CompileSpec(q.Spec)
	} else {
		comp, err = s.runner.Compile(q.Plan)
	}
	if err != nil {
		return res, fmt.Errorf("session: compile %q: %w", q.Label, err)
	}
	res.Report = comp.Report
	defer func() { res.Ops = comp.OpStats() }()
	if collect {
		rows, err := exec.Collect(comp.Root)
		if err != nil {
			return res, fmt.Errorf("session: execute %q: %w", q.Label, err)
		}
		res.Rows, res.RowCount = rows, len(rows)
	} else {
		n, err := s.drain(comp.Root, sink)
		if err != nil {
			return res, fmt.Errorf("session: execute %q: %w", q.Label, err)
		}
		res.RowCount = n
	}
	return res, nil
}

// drain pulls the DAG to exhaustion, forwarding batches to sink.
func (s *Session) drain(op exec.Operator, sink func(*exec.Batch) error) (int, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	n := 0
	for {
		b, err := op.Next()
		if err != nil {
			return n, err
		}
		if b == nil {
			return n, nil
		}
		n += b.Len()
		if sink != nil {
			if err := sink(b); err != nil {
				b.Release()
				return n, err
			}
		}
		b.Release()
	}
}

// NodeLoad aggregates one node's share of a query's work — rows and
// wall time summed over every operator that ran at the node. Comparing
// entries exposes execution skew (one node scanning or joining far more
// than its peers).
type NodeLoad struct {
	Node    int
	Ops     int
	Rows    int64
	Batches int64
	WallNs  int64
}

// PerNode folds the per-operator stats by execution node, ascending.
// Coordinator-side operators (node -1, e.g. a gathered hyper-join) fold
// into the leading -1 entry. Empty in centralized mode, where no
// operator carries a node tag.
func (r *Result) PerNode() []NodeLoad {
	byNode := map[int]*NodeLoad{}
	for _, op := range r.Ops {
		nl, ok := byNode[op.Node]
		if !ok {
			nl = &NodeLoad{Node: op.Node}
			byNode[nl.Node] = nl
		}
		nl.Ops++
		nl.Rows += op.Rows
		nl.Batches += op.Batches
		nl.WallNs += op.WallNs
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	out := make([]NodeLoad, 0, len(nodes))
	for _, n := range nodes {
		if n < 0 && len(byNode) == 1 {
			// Centralized runs tag everything -1; per-node loads would
			// be meaningless.
			break
		}
		out = append(out, *byNode[n])
	}
	return out
}

// Queries returns how many queries the session has executed.
func (s *Session) Queries() int { return s.seq }

// Optimizer exposes the session's optimizer — its query windows and
// per-table smooth managers — for inspection and tests.
func (s *Session) Optimizer() *optimizer.Optimizer { return s.opt }

// Executor exposes the underlying executor (workers, pruning flags).
func (s *Session) Executor() *exec.Executor { return s.ex }

// Runner exposes the planner runner the session compiles with.
func (s *Session) Runner() *planner.Runner { return s.runner }
