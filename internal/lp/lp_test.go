package lp

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximizationAsMinimization(t *testing.T) {
	// max x+y s.t. x+y ≤ 4, x ≤ 2, y ≤ 3  →  min -(x+y) = -4.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Sense: LE, RHS: 4},
			{Coef: []float64{1, 0}, Sense: LE, RHS: 2},
			{Coef: []float64{0, 1}, Sense: LE, RHS: 3},
		},
	}
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !almost(s.Objective, -4) {
		t.Errorf("objective = %v, want -4", s.Objective)
	}
	if !almost(s.X[0]+s.X[1], 4) {
		t.Errorf("x = %v", s.X)
	}
}

func TestGEConstraintsTwoPhase(t *testing.T) {
	// min 2x+3y s.t. x+y ≥ 10, x ≥ 2 → optimum x=8? No: coefficient of x
	// is cheaper, so x=10-y; min at y=0, x=10 → 20? But x≥2 already holds.
	// Actually min is x=10, y=0 → 20.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Sense: GE, RHS: 10},
			{Coef: []float64{1, 0}, Sense: GE, RHS: 2},
		},
	}
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !almost(s.Objective, 20) {
		t.Errorf("objective = %v, want 20 (x=%v)", s.Objective, s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+2y s.t. x+y = 5, y ≥ 1 → x=4, y=1, obj 6.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Sense: EQ, RHS: 5},
			{Coef: []float64{0, 1}, Sense: GE, RHS: 1},
		},
	}
	s := Solve(p)
	if s.Status != Optimal || !almost(s.Objective, 6) {
		t.Fatalf("got %v obj %v, want optimal 6", s.Status, s.Objective)
	}
	if !almost(s.X[0], 4) || !almost(s.X[1], 1) {
		t.Errorf("x = %v, want [4 1]", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 3.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Sense: LE, RHS: 1},
			{Coef: []float64{1}, Sense: GE, RHS: 3},
		},
	}
	if s := Solve(p); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x ≥ 0 (no upper bound).
	p := &Problem{
		NumVars:     1,
		Objective:   []float64{-1},
		Constraints: []Constraint{{Coef: []float64{1}, Sense: GE, RHS: 0}},
	}
	if s := Solve(p); s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x ≤ -2  ≡  x ≥ 2; min x → 2.
	p := &Problem{
		NumVars:     1,
		Objective:   []float64{1},
		Constraints: []Constraint{{Coef: []float64{-1}, Sense: LE, RHS: -2}},
	}
	s := Solve(p)
	if s.Status != Optimal || !almost(s.Objective, 2) {
		t.Errorf("got %v obj %v, want optimal 2", s.Status, s.Objective)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicate constraints must not break phase 1.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Sense: EQ, RHS: 2},
			{Coef: []float64{1, 1}, Sense: EQ, RHS: 2},
			{Coef: []float64{2, 2}, Sense: EQ, RHS: 4},
		},
	}
	s := Solve(p)
	if s.Status != Optimal || !almost(s.Objective, 2) {
		t.Errorf("got %v obj %v, want optimal 2", s.Status, s.Objective)
	}
}

func TestZeroVariableProblemRejected(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1}} // arity mismatch
	if s := Solve(p); s.Status != Infeasible {
		t.Errorf("malformed problem should be infeasible, got %v", s.Status)
	}
	p2 := &Problem{
		NumVars:     1,
		Objective:   []float64{1},
		Constraints: []Constraint{{Coef: []float64{1, 2}, Sense: LE, RHS: 1}},
	}
	if s := Solve(p2); s.Status != Infeasible {
		t.Errorf("malformed constraint should be infeasible, got %v", s.Status)
	}
}

func TestKleeMintyDoesNotCycle(t *testing.T) {
	// 3-D Klee–Minty cube; Bland's rule guarantees termination.
	// max 100x1 + 10x2 + x3 s.t. x1≤1, 20x1+x2≤100, 200x1+20x2+x3≤10000.
	p := &Problem{
		NumVars:   3,
		Objective: []float64{-100, -10, -1},
		Constraints: []Constraint{
			{Coef: []float64{1, 0, 0}, Sense: LE, RHS: 1},
			{Coef: []float64{20, 1, 0}, Sense: LE, RHS: 100},
			{Coef: []float64{200, 20, 1}, Sense: LE, RHS: 10000},
		},
	}
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !almost(s.Objective, -10000) {
		t.Errorf("objective = %v, want -10000", s.Objective)
	}
}

// Random LPs: verify optimality via weak duality spot-check — any
// feasible point the test constructs can't beat the solver's optimum.
func TestRandomFeasibleNotBetterThanOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		// Build constraints satisfied by a known point x0 ≥ 0.
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * 5
		}
		cons := make([]Constraint, m)
		for i := range cons {
			coef := make([]float64, n)
			lhs := 0.0
			for j := range coef {
				coef[j] = rng.Float64()*4 - 2
				lhs += coef[j] * x0[j]
			}
			cons[i] = Constraint{Coef: coef, Sense: LE, RHS: lhs + rng.Float64()}
		}
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = rng.Float64() * 3 // nonnegative → bounded below by 0
		}
		p := &Problem{NumVars: n, Objective: obj, Constraints: cons}
		s := Solve(p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		val0 := 0.0
		for j := range obj {
			val0 += obj[j] * x0[j]
		}
		if s.Objective > val0+1e-6 {
			t.Errorf("trial %d: solver obj %v worse than known feasible %v", trial, s.Objective, val0)
		}
		// Solution must satisfy constraints.
		for i, c := range cons {
			lhs := 0.0
			for j := range c.Coef {
				lhs += c.Coef[j] * s.X[j]
			}
			if lhs > c.RHS+1e-6 {
				t.Errorf("trial %d: constraint %d violated: %v > %v", trial, i, lhs, c.RHS)
			}
		}
		for j, xj := range s.X {
			if xj < -1e-9 {
				t.Errorf("trial %d: x[%d] = %v negative", trial, j, xj)
			}
		}
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Infeasible, Unbounded, IterLimit, Status(42)} {
		if s.String() == "" {
			t.Errorf("empty status string for %d", int(s))
		}
	}
}
