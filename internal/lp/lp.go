// Package lp is a small dense linear-programming solver: two-phase
// primal simplex with Bland's anti-cycling rule. It exists to back the
// 0/1 mixed-integer solver in internal/ilp, which stands in for the GLPK
// solver the paper uses for the hyper-join MIP baseline (§4.1.2,
// Fig. 17). Problems are minimization over x ≥ 0 with ≤ / ≥ / =
// constraints.
package lp

import (
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	LE Sense = iota
	GE
	EQ
)

// Constraint is one linear row: Coef · x  (Sense)  RHS.
type Constraint struct {
	Coef  []float64
	Sense Sense
	RHS   float64
}

// Problem is minimize Objective · x subject to Constraints and x ≥ 0.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution holds the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// Solve runs two-phase simplex on a copy of the problem.
func Solve(p *Problem) Solution {
	n := p.NumVars
	m := len(p.Constraints)
	if len(p.Objective) != n {
		return Solution{Status: Infeasible}
	}

	// Column layout: [0,n) structural, then one slack/surplus per
	// inequality, then artificials.
	nSlack := 0
	for _, c := range p.Constraints {
		if c.Sense != EQ {
			nSlack++
		}
	}
	// Artificials: GE and EQ rows always need one; LE rows need one only
	// when RHS < 0 after normalization — we normalize RHS ≥ 0 first, which
	// can flip senses, so compute after normalization.
	type row struct {
		coef  []float64
		sense Sense
		rhs   float64
	}
	rows := make([]row, m)
	for i, c := range p.Constraints {
		if len(c.Coef) != n {
			return Solution{Status: Infeasible}
		}
		r := row{coef: append([]float64(nil), c.Coef...), sense: c.Sense, rhs: c.RHS}
		if r.rhs < 0 {
			for j := range r.coef {
				r.coef[j] = -r.coef[j]
			}
			r.rhs = -r.rhs
			switch r.sense {
			case LE:
				r.sense = GE
			case GE:
				r.sense = LE
			}
		}
		rows[i] = r
	}
	nSlack = 0
	nArt := 0
	for _, r := range rows {
		if r.sense != EQ {
			nSlack++
		}
		if r.sense != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	// tab[i] is row i with total+1 entries (last = RHS).
	tab := make([][]float64, m)
	basis := make([]int, m)
	artStart := n + nSlack
	si, ai := 0, 0
	for i, r := range rows {
		tr := make([]float64, total+1)
		copy(tr, r.coef)
		tr[total] = r.rhs
		switch r.sense {
		case LE:
			tr[n+si] = 1
			basis[i] = n + si
			si++
		case GE:
			tr[n+si] = -1
			si++
			tr[artStart+ai] = 1
			basis[i] = artStart + ai
			ai++
		case EQ:
			tr[artStart+ai] = 1
			basis[i] = artStart + ai
			ai++
		}
		tab[i] = tr
	}

	iterBudget := 200 * (m + total + 10)

	// phase runs simplex for cost vector c (length total), returning the
	// status. banned columns may not enter the basis.
	phase := func(c []float64, banned func(j int) bool) Status {
		// Reduced-cost row: r = c - c_B B^{-1} A; with unit basic columns,
		// start from c and price out each basic row with nonzero cost.
		red := make([]float64, total+1)
		copy(red, c)
		for i, b := range basis {
			if cb := c[b]; cb != 0 {
				for j := 0; j <= total; j++ {
					red[j] -= cb * tab[i][j]
				}
			}
		}
		for iter := 0; iter < iterBudget; iter++ {
			// Bland: entering = smallest index with reduced cost < -eps.
			enter := -1
			for j := 0; j < total; j++ {
				if banned != nil && banned(j) {
					continue
				}
				if red[j] < -eps {
					enter = j
					break
				}
			}
			if enter == -1 {
				return Optimal
			}
			// Ratio test; Bland tie-break on smallest basis index.
			leave := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				a := tab[i][enter]
				if a > eps {
					ratio := tab[i][total] / a
					if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leave == -1 || basis[i] < basis[leave])) {
						best = ratio
						leave = i
					}
				}
			}
			if leave == -1 {
				return Unbounded
			}
			pivot(tab, red, basis, leave, enter, total)
		}
		return IterLimit
	}

	// Phase 1: minimize sum of artificials.
	if nArt > 0 {
		c1 := make([]float64, total+1)
		for j := artStart; j < total; j++ {
			c1[j] = 1
		}
		st := phase(c1, nil)
		if st == IterLimit {
			return Solution{Status: IterLimit}
		}
		// Objective value = sum of artificial basics.
		sum := 0.0
		for i, b := range basis {
			if b >= artStart {
				sum += tab[i][total]
			}
		}
		if sum > 1e-7 {
			return Solution{Status: Infeasible}
		}
		// Drive any degenerate artificial out of the basis.
		for i := 0; i < m; i++ {
			if basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(tab[i][j]) > eps {
					red := make([]float64, total+1) // dummy reduced costs
					pivot(tab, red, basis, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all zeros over real variables: redundant; leave the
				// artificial basic at zero. It stays zero since its column is
				// banned in phase 2.
				_ = pivoted
			}
		}
	}

	// Phase 2: original objective, artificial columns banned.
	c2 := make([]float64, total+1)
	copy(c2, p.Objective)
	st := phase(c2, func(j int) bool { return j >= artStart })
	if st != Optimal {
		return Solution{Status: st}
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.Objective[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}
}

// pivot performs a full-tableau pivot on (leave, enter), updating the
// reduced-cost row as well.
func pivot(tab [][]float64, red []float64, basis []int, leave, enter, total int) {
	pr := tab[leave]
	pv := pr[enter]
	inv := 1.0 / pv
	for j := 0; j <= total; j++ {
		pr[j] *= inv
	}
	pr[enter] = 1 // exact
	for i := range tab {
		if i == leave {
			continue
		}
		f := tab[i][enter]
		if f == 0 {
			continue
		}
		r := tab[i]
		for j := 0; j <= total; j++ {
			r[j] -= f * pr[j]
		}
		r[enter] = 0
	}
	if f := red[enter]; f != 0 {
		for j := 0; j <= total; j++ {
			red[j] -= f * pr[j]
		}
		red[enter] = 0
	}
	basis[leave] = enter
}
