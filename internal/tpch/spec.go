// The declarative form of the TPC-H templates: Catalog exposes the
// loaded tables for spec binding, and Instance.Spec renders each
// template's join graph over named columns — the same graphs Plan
// hand-builds positionally, now declared once and ordered by the
// planner's greedy pass. GroupedSpec is the grouped-aggregate shape
// the end-to-end acceptance runs exercise.
package tpch

import (
	"adaptdb/internal/core"
	"adaptdb/internal/predicate"
	"adaptdb/internal/query"
	"adaptdb/internal/schema"
)

// Catalog exposes the loaded tables under their store names for spec
// binding.
func (tb *Tables) Catalog() query.Catalog {
	cat := query.Catalog{}
	for _, t := range []*core.Table{tb.Lineitem, tb.Orders, tb.Customer, tb.Part, tb.Supplier} {
		if t != nil {
			cat[t.Name] = t
		}
	}
	return cat
}

// namedPreds renders positional predicates back to named form against
// the table's schema — the instance generator works positionally, the
// spec layer by name.
func namedPreds(sch *schema.Schema, preds []predicate.Predicate) []query.Pred {
	out := make([]query.Pred, len(preds))
	for i, p := range preds {
		out[i] = query.Pred{Col: sch.Name(p.Col), Op: p.Op, Val: p.Val, Vals: p.Vals}
	}
	return out
}

// Spec builds the declarative form of the instance: the same join
// graph as Plan, with join order left to the planner's greedy pass
// (declaration order matches Plan's hand-built order, so FixedOrder
// reproduces the legacy trees exactly).
func (in *Instance) Spec() query.Spec {
	line := query.TableRef{Name: "lineitem", Preds: namedPreds(LineitemSchema, in.LinePreds)}
	ord := query.TableRef{Name: "orders", Preds: namedPreds(OrdersSchema, in.OrdPreds)}
	cust := query.TableRef{Name: "customer", Preds: namedPreds(CustomerSchema, in.CustPreds)}
	part := query.TableRef{Name: "part", Preds: namedPreds(PartSchema, in.PartPreds)}
	lo := query.On(query.C("lineitem", "l_orderkey"), query.C("orders", "o_orderkey"))
	oc := query.On(query.C("orders", "o_custkey"), query.C("customer", "c_custkey"))
	lp := query.On(query.C("lineitem", "l_partkey"), query.C("part", "p_partkey"))

	s := query.Spec{Label: string(in.Template)}
	switch in.Template {
	case Q6:
		s.Tables = []query.TableRef{line}
	case Q3, Q5, Q10:
		s.Tables = []query.TableRef{line, ord, cust}
		s.Joins = []query.JoinEdge{lo, oc}
	case Q8:
		s.Tables = []query.TableRef{line, part, ord, cust}
		s.Joins = []query.JoinEdge{lp, lo, oc}
	case Q12:
		s.Tables = []query.TableRef{line, ord}
		s.Joins = []query.JoinEdge{lo}
	case Q14, Q19:
		s.Tables = []query.TableRef{line, part}
		s.Joins = []query.JoinEdge{lp}
	}
	return s
}

// GroupedSpec is the grouped-aggregate form of a 3-table instance
// (q3/q5/q10 shapes): group the joined stream by customer nation and
// reduce with COUNT, SUM and MIN/MAX over integer columns — integer
// aggregates keep the result bit-identical across execution orders,
// node counts and memory budgets, which the differential acceptance
// matrix checks.
func (in *Instance) GroupedSpec() query.Spec {
	s := in.Spec()
	s.Label = s.Label + "-grouped"
	s.GroupBy = []query.Col{query.C("customer", "c_nationkey")}
	s.Aggs = []query.Agg{
		query.Count(),
		query.Sum(query.C("lineitem", "l_orderkey")),
		query.Min(query.C("orders", "o_orderkey")),
		query.Max(query.C("lineitem", "l_partkey")),
	}
	return s
}
