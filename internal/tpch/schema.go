// Package tpch is a deterministic, dbgen-shaped generator for the TPC-H
// tables and the eight query templates the paper evaluates (q3, q5, q6,
// q8, q10, q12, q14, q19 — §7.1). Scale is a continuous factor: SF 1
// corresponds to the standard 6M-row lineitem; experiments here run at
// micro scale factors, which preserves selectivities, join fan-out and
// the relative block counts the cost model depends on.
package tpch

import (
	"adaptdb/internal/schema"
	"adaptdb/internal/value"
)

// Lineitem column indexes.
const (
	LOrderKey = iota
	LPartKey
	LSuppKey
	LLineNumber
	LQuantity
	LExtendedPrice
	LDiscount
	LTax
	LReturnFlag
	LLineStatus
	LShipDate
	LCommitDate
	LReceiptDate
	LShipInstruct
	LShipMode
)

// Orders column indexes.
const (
	OOrderKey = iota
	OCustKey
	OOrderStatus
	OTotalPrice
	OOrderDate
	OOrderPriority
	OShipPriority
)

// Customer column indexes.
const (
	CCustKey = iota
	CNationKey
	CAcctBal
	CMktSegment
)

// Part column indexes.
const (
	PPartKey = iota
	PBrand
	PType
	PSize
	PContainer
	PRetailPrice
)

// Supplier column indexes.
const (
	SSuppKey = iota
	SNationKey
	SAcctBal
)

// Nation column indexes.
const (
	NNationKey = iota
	NRegionKey
)

// Region column indexes.
const (
	RRegionKey = iota
)

// Schemas for the seven tables.
var (
	LineitemSchema = schema.MustNew(
		schema.Column{Name: "l_orderkey", Kind: value.Int},
		schema.Column{Name: "l_partkey", Kind: value.Int},
		schema.Column{Name: "l_suppkey", Kind: value.Int},
		schema.Column{Name: "l_linenumber", Kind: value.Int},
		schema.Column{Name: "l_quantity", Kind: value.Float},
		schema.Column{Name: "l_extendedprice", Kind: value.Float},
		schema.Column{Name: "l_discount", Kind: value.Float},
		schema.Column{Name: "l_tax", Kind: value.Float},
		schema.Column{Name: "l_returnflag", Kind: value.String},
		schema.Column{Name: "l_linestatus", Kind: value.String},
		schema.Column{Name: "l_shipdate", Kind: value.Date},
		schema.Column{Name: "l_commitdate", Kind: value.Date},
		schema.Column{Name: "l_receiptdate", Kind: value.Date},
		schema.Column{Name: "l_shipinstruct", Kind: value.String},
		schema.Column{Name: "l_shipmode", Kind: value.String},
	)
	OrdersSchema = schema.MustNew(
		schema.Column{Name: "o_orderkey", Kind: value.Int},
		schema.Column{Name: "o_custkey", Kind: value.Int},
		schema.Column{Name: "o_orderstatus", Kind: value.String},
		schema.Column{Name: "o_totalprice", Kind: value.Float},
		schema.Column{Name: "o_orderdate", Kind: value.Date},
		schema.Column{Name: "o_orderpriority", Kind: value.String},
		schema.Column{Name: "o_shippriority", Kind: value.Int},
	)
	CustomerSchema = schema.MustNew(
		schema.Column{Name: "c_custkey", Kind: value.Int},
		schema.Column{Name: "c_nationkey", Kind: value.Int},
		schema.Column{Name: "c_acctbal", Kind: value.Float},
		schema.Column{Name: "c_mktsegment", Kind: value.String},
	)
	PartSchema = schema.MustNew(
		schema.Column{Name: "p_partkey", Kind: value.Int},
		schema.Column{Name: "p_brand", Kind: value.String},
		schema.Column{Name: "p_type", Kind: value.String},
		schema.Column{Name: "p_size", Kind: value.Int},
		schema.Column{Name: "p_container", Kind: value.String},
		schema.Column{Name: "p_retailprice", Kind: value.Float},
	)
	SupplierSchema = schema.MustNew(
		schema.Column{Name: "s_suppkey", Kind: value.Int},
		schema.Column{Name: "s_nationkey", Kind: value.Int},
		schema.Column{Name: "s_acctbal", Kind: value.Float},
	)
	NationSchema = schema.MustNew(
		schema.Column{Name: "n_nationkey", Kind: value.Int},
		schema.Column{Name: "n_regionkey", Kind: value.Int},
	)
	RegionSchema = schema.MustNew(
		schema.Column{Name: "r_regionkey", Kind: value.Int},
	)
)

// Domain vocabularies, following dbgen's value sets.
var (
	Segments      = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	ReturnFlags   = []string{"R", "A", "N"}
	LineStatuses  = []string{"O", "F"}
	ShipModes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	ShipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	Containers    = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG"}
	TypeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	TypeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	TypeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	Priorities    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
)

// NumNations and NumRegions follow TPC-H (25 nations over 5 regions).
const (
	NumNations = 25
	NumRegions = 5
)

// Date domain: orderdates span [StartDate, EndDate - 151 days] like
// dbgen; ship/commit/receipt dates trail the orderdate.
var (
	StartDate = value.DateOf(1992, 1, 1).Int64()
	EndDate   = value.DateOf(1998, 8, 2).Int64()
)
