package tpch

import (
	"math/rand"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	return Generate(0.001, 42) // ≈1500 orders → ≈6000 lineitems
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.0005, 7)
	b := Generate(0.0005, 7)
	if len(a.Lineitem) != len(b.Lineitem) || len(a.Orders) != len(b.Orders) {
		t.Fatalf("sizes differ across identical seeds")
	}
	for i := range a.Lineitem {
		for c := range a.Lineitem[i] {
			if value.Compare(a.Lineitem[i][c], b.Lineitem[i][c]) != 0 {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestGenerateShape(t *testing.T) {
	d := smallDataset(t)
	if len(d.Region) != NumRegions || len(d.Nation) != NumNations {
		t.Fatalf("dimension tables wrong: %d regions, %d nations", len(d.Region), len(d.Nation))
	}
	// Lineitem per order averages ≈4 (1..7 uniform).
	ratio := float64(len(d.Lineitem)) / float64(len(d.Orders))
	if ratio < 3.2 || ratio > 4.8 {
		t.Errorf("lineitem/order ratio = %.2f, want ≈4", ratio)
	}
	// Schema conformance on every table.
	check := func(name string, rows []tuple.Tuple, sch interface{ NumCols() int }) {
		for i, r := range rows {
			if len(r) != sch.NumCols() {
				t.Fatalf("%s row %d arity %d != %d", name, i, len(r), sch.NumCols())
			}
		}
	}
	check("lineitem", d.Lineitem, LineitemSchema)
	check("orders", d.Orders, OrdersSchema)
	check("customer", d.Customer, CustomerSchema)
	check("part", d.Part, PartSchema)
	check("supplier", d.Supplier, SupplierSchema)
	for _, r := range d.Lineitem {
		if err := r.Conforms(LineitemSchema); err != nil {
			t.Fatalf("lineitem row: %v", err)
		}
	}
}

func TestReferentialIntegrity(t *testing.T) {
	d := smallDataset(t)
	orderKeys := make(map[int64]bool, len(d.Orders))
	for _, o := range d.Orders {
		orderKeys[o[OOrderKey].Int64()] = true
	}
	custKeys := make(map[int64]bool, len(d.Customer))
	for _, c := range d.Customer {
		custKeys[c[CCustKey].Int64()] = true
	}
	partKeys := make(map[int64]bool, len(d.Part))
	for _, p := range d.Part {
		partKeys[p[PPartKey].Int64()] = true
	}
	for _, l := range d.Lineitem {
		if !orderKeys[l[LOrderKey].Int64()] {
			t.Fatalf("lineitem references missing order %d", l[LOrderKey].Int64())
		}
		if !partKeys[l[LPartKey].Int64()] {
			t.Fatalf("lineitem references missing part %d", l[LPartKey].Int64())
		}
	}
	for _, o := range d.Orders {
		if !custKeys[o[OCustKey].Int64()] {
			t.Fatalf("order references missing customer %d", o[OCustKey].Int64())
		}
	}
}

func TestDateDomains(t *testing.T) {
	d := smallDataset(t)
	for _, l := range d.Lineitem {
		ship := l[LShipDate].Int64()
		receipt := l[LReceiptDate].Int64()
		if ship < StartDate || ship > EndDate {
			t.Fatalf("shipdate %d outside domain", ship)
		}
		if receipt <= ship {
			t.Fatalf("receiptdate must follow shipdate")
		}
	}
	for _, o := range d.Orders {
		od := o[OOrderDate].Int64()
		if od < StartDate || od >= EndDate-150 {
			t.Fatalf("orderdate %d outside dbgen domain", od)
		}
	}
}

func TestNationsOfRegion(t *testing.T) {
	d := smallDataset(t)
	total := 0
	for r := int64(0); r < NumRegions; r++ {
		total += len(d.NationsOfRegion(r))
	}
	if total != NumNations {
		t.Fatalf("regions cover %d nations, want %d", total, NumNations)
	}
}

func loadFixture(t *testing.T, d *Dataset, joinAttrs map[string]int) (*Tables, *planner.Runner, *cluster.Meter) {
	t.Helper()
	store := dfs.NewStore(4, 2, 1)
	tb, err := LoadAll(store, d, LoadConfig{RowsPerBlock: 512, JoinAttrs: joinAttrs, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	meter := &cluster.Meter{}
	return tb, planner.NewRunner(exec.New(store, meter), cluster.Default()), meter
}

func filterRows(rows []tuple.Tuple, preds []predicate.Predicate) []tuple.Tuple {
	var out []tuple.Tuple
	for _, r := range rows {
		if predicate.MatchesAll(preds, r) {
			out = append(out, r)
		}
	}
	return out
}

// oracle computes each template's expected result cardinality with
// nested loops over the raw rows.
func oracle(d *Dataset, in *Instance) int {
	lf := filterRows(d.Lineitem, in.LinePreds)
	of := filterRows(d.Orders, in.OrdPreds)
	cf := filterRows(d.Customer, in.CustPreds)
	pf := filterRows(d.Part, in.PartPreds)
	switch in.Template {
	case Q6:
		return len(lf)
	case Q3, Q5, Q10:
		lo := exec.NestedLoopJoin(lf, of, LOrderKey, OOrderKey)
		return len(exec.NestedLoopJoin(lo, cf, LineitemSchema.NumCols()+OCustKey, CCustKey))
	case Q8:
		lp := exec.NestedLoopJoin(lf, pf, LPartKey, PPartKey)
		oc := exec.NestedLoopJoin(of, cf, OCustKey, CCustKey)
		return len(exec.NestedLoopJoin(lp, oc, LOrderKey, OOrderKey))
	case Q12:
		return len(exec.NestedLoopJoin(lf, of, LOrderKey, OOrderKey))
	case Q14, Q19:
		return len(exec.NestedLoopJoin(lf, pf, LPartKey, PPartKey))
	}
	return -1
}

// Every template must produce exactly the oracle cardinality through
// the full planner/executor stack, on both random and co-partitioned
// layouts.
func TestTemplatesMatchOracle(t *testing.T) {
	d := Generate(0.0004, 11) // keep oracle nested loops fast
	layouts := []map[string]int{
		nil, // random upfront partitioning
		{"lineitem": LOrderKey, "orders": OOrderKey, "customer": CCustKey, "part": PPartKey},
	}
	for li, layout := range layouts {
		tb, runner, _ := loadFixture(t, d, layout)
		rng := rand.New(rand.NewSource(5))
		for _, tpl := range AllTemplates {
			in := NewInstance(tpl, d, rng)
			rows, _, err := runner.Run(in.Plan(tb))
			if err != nil {
				t.Fatalf("layout %d %s: %v", li, tpl, err)
			}
			want := oracle(d, in)
			if len(rows) != want {
				t.Errorf("layout %d %s: %d rows, oracle %d", li, tpl, len(rows), want)
			}
		}
	}
}

func TestInstanceUsesConsistent(t *testing.T) {
	d := smallDataset(t)
	tb, _, _ := loadFixture(t, d, nil)
	rng := rand.New(rand.NewSource(1))
	for _, tpl := range AllTemplates {
		in := NewInstance(tpl, d, rng)
		uses := in.Uses(tb)
		if tpl == Q6 {
			if len(uses) != 1 || uses[0].JoinAttr != -1 {
				t.Errorf("q6 uses wrong: %+v", uses)
			}
			continue
		}
		if len(uses) < 2 {
			t.Errorf("%s: joins should touch ≥2 tables: %+v", tpl, uses)
		}
		if uses[0].Table.Name != "lineitem" {
			t.Errorf("%s: first use should be lineitem", tpl)
		}
		if uses[0].JoinAttr != LineitemJoinAttrFor(tpl) {
			t.Errorf("%s: lineitem join attr %d, want %d", tpl, uses[0].JoinAttr, LineitemJoinAttrFor(tpl))
		}
	}
}

func TestTemplateSelectivityShape(t *testing.T) {
	// The paper motivates template choice by predicate selectivity: q19 is
	// highly selective on lineitem, q5 not at all.
	d := smallDataset(t)
	rng := rand.New(rand.NewSource(3))
	q19 := NewInstance(Q19, d, rng)
	q5 := NewInstance(Q5, d, rng)
	selQ19 := float64(len(filterRows(d.Lineitem, q19.LinePreds))) / float64(len(d.Lineitem))
	selQ5 := float64(len(filterRows(d.Lineitem, q5.LinePreds))) / float64(len(d.Lineitem))
	if selQ5 != 1.0 {
		t.Errorf("q5 must have no lineitem predicate; selectivity %.2f", selQ5)
	}
	if selQ19 > 0.2 {
		t.Errorf("q19 lineitem selectivity %.2f, want < 0.2", selQ19)
	}
}

func TestHyperBeatsShuffleOnConvergedLayout(t *testing.T) {
	// The Fig. 12 headline at unit-test scale: with lineitem/orders
	// co-partitioned on orderkey, q12 with hyper-join must beat q12 with
	// forced shuffle join in cost units.
	d := Generate(0.002, 13)
	layout := map[string]int{"lineitem": LOrderKey, "orders": OOrderKey}
	tb, runner, meter := loadFixture(t, d, layout)
	rng := rand.New(rand.NewSource(8))
	in := NewInstance(Q12, d, rng)
	model := cluster.Default()

	if _, _, err := runner.Run(in.Plan(tb)); err != nil {
		t.Fatal(err)
	}
	hyper := meter.Reset()
	runner.ForceShuffle = true
	if _, _, err := runner.Run(in.Plan(tb)); err != nil {
		t.Fatal(err)
	}
	shuffle := meter.Reset()
	if hyper.SimSeconds(model) >= shuffle.SimSeconds(model) {
		t.Errorf("hyper %.1f should beat shuffle %.1f on co-partitioned q12",
			hyper.SimSeconds(model), shuffle.SimSeconds(model))
	}
}

func TestCountsFloors(t *testing.T) {
	l, o, c, p, s := Counts(0)
	if o < 100 || c < 30 || p < 40 || s < 10 || l < o {
		t.Errorf("floors not applied: %d %d %d %d %d", l, o, c, p, s)
	}
}
