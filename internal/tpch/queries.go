package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
)

// Tables binds the loaded AdaptDB tables for the benchmark.
type Tables struct {
	Lineitem *core.Table
	Orders   *core.Table
	Customer *core.Table
	Part     *core.Table
	Supplier *core.Table
}

// LoadConfig controls how the dataset is loaded into the store.
type LoadConfig struct {
	RowsPerBlock int
	// JoinAttrs maps table name → initial two-phase join attribute, or -1
	// for a random upfront (Amoeba) partitioning. Missing entries mean -1
	// — §7.3 starts "randomly partitioned by the upfront partitioner".
	JoinAttrs map[string]int
	// Attrs restricts each table's selection attributes — used to model
	// layouts already converged to a workload's predicate columns, as the
	// paper's Fig. 12 setup does by running the adapter to convergence.
	Attrs map[string][]int
	// JoinLevels for two-phase loads; 0 = half depth.
	JoinLevels int
	Seed       int64
}

// LoadAll loads every table of the dataset into the store.
func LoadAll(store *dfs.Store, d *Dataset, cfg LoadConfig) (*Tables, error) {
	if cfg.RowsPerBlock <= 0 {
		cfg.RowsPerBlock = 1024
	}
	attr := func(name string) int {
		if a, ok := cfg.JoinAttrs[name]; ok {
			return a
		}
		return -1
	}
	tb := &Tables{}
	var err error
	if tb.Lineitem, err = core.Load(store, "lineitem", LineitemSchema, d.Lineitem, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, JoinAttr: attr("lineitem"), Attrs: cfg.Attrs["lineitem"], JoinLevels: cfg.JoinLevels, Seed: cfg.Seed + 1,
	}); err != nil {
		return nil, fmt.Errorf("tpch: load lineitem: %w", err)
	}
	if tb.Orders, err = core.Load(store, "orders", OrdersSchema, d.Orders, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, JoinAttr: attr("orders"), Attrs: cfg.Attrs["orders"], JoinLevels: cfg.JoinLevels, Seed: cfg.Seed + 2,
	}); err != nil {
		return nil, fmt.Errorf("tpch: load orders: %w", err)
	}
	if tb.Customer, err = core.Load(store, "customer", CustomerSchema, d.Customer, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, JoinAttr: attr("customer"), Attrs: cfg.Attrs["customer"], JoinLevels: cfg.JoinLevels, Seed: cfg.Seed + 3,
	}); err != nil {
		return nil, fmt.Errorf("tpch: load customer: %w", err)
	}
	if tb.Part, err = core.Load(store, "part", PartSchema, d.Part, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, JoinAttr: attr("part"), Attrs: cfg.Attrs["part"], JoinLevels: cfg.JoinLevels, Seed: cfg.Seed + 4,
	}); err != nil {
		return nil, fmt.Errorf("tpch: load part: %w", err)
	}
	if tb.Supplier, err = core.Load(store, "supplier", SupplierSchema, d.Supplier, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, JoinAttr: attr("supplier"), Attrs: cfg.Attrs["supplier"], JoinLevels: cfg.JoinLevels, Seed: cfg.Seed + 5,
	}); err != nil {
		return nil, fmt.Errorf("tpch: load supplier: %w", err)
	}
	return tb, nil
}

// Template identifies one of the eight evaluated query templates.
type Template string

// The eight templates of §7.1 (the rest either skip lineitem or have no
// selective filters, as the paper explains).
const (
	Q3  Template = "q3"
	Q5  Template = "q5"
	Q6  Template = "q6"
	Q8  Template = "q8"
	Q10 Template = "q10"
	Q12 Template = "q12"
	Q14 Template = "q14"
	Q19 Template = "q19"
)

// AllTemplates lists the templates in the §7.3 workload order.
var AllTemplates = []Template{Q3, Q5, Q6, Q8, Q10, Q12, Q14, Q19}

// JoinTemplates lists the templates used in Fig. 12 (q6 has no join).
var JoinTemplates = []Template{Q3, Q5, Q8, Q10, Q12, Q14, Q19}

// Instance is a concrete query drawn from a template: predicates with
// bound parameters plus the join attribute each table is exercised on.
type Instance struct {
	Template  Template
	LinePreds []predicate.Predicate
	OrdPreds  []predicate.Predicate
	CustPreds []predicate.Predicate
	PartPreds []predicate.Predicate
	LineJoin  int
	OrdJoin   int
	CustJoin  int
	PartJoin  int
}

func dateRange(col int, lo, hi int64) []predicate.Predicate {
	return []predicate.Predicate{
		predicate.NewCmp(col, predicate.GE, value.NewDate(lo)),
		predicate.NewCmp(col, predicate.LT, value.NewDate(hi)),
	}
}

// NewInstance draws a concrete query from a template with dbgen-style
// parameter distributions.
func NewInstance(tpl Template, d *Dataset, rng *rand.Rand) *Instance {
	in := &Instance{Template: tpl, LineJoin: -1, OrdJoin: -1, CustJoin: -1, PartJoin: -1}
	switch tpl {
	case Q3:
		// Segment customers, orders before D, shipments after D.
		D := value.DateOf(1995, 3, 1).Int64() + rng.Int63n(31)
		in.CustPreds = []predicate.Predicate{
			predicate.NewCmp(CMktSegment, predicate.EQ, value.NewString(Segments[rng.Intn(len(Segments))])),
		}
		in.OrdPreds = []predicate.Predicate{
			predicate.NewCmp(OOrderDate, predicate.LT, value.NewDate(D)),
		}
		in.LinePreds = []predicate.Predicate{
			predicate.NewCmp(LShipDate, predicate.GT, value.NewDate(D)),
		}
		in.LineJoin, in.OrdJoin, in.CustJoin = LOrderKey, OOrderKey, CCustKey
	case Q5:
		// Region + one order year; no lineitem predicate at all (§5.3).
		y := 1993 + rng.Intn(5)
		lo := value.DateOf(y, 1, 1).Int64()
		hi := value.DateOf(y+1, 1, 1).Int64()
		in.OrdPreds = dateRange(OOrderDate, lo, hi)
		in.CustPreds = []predicate.Predicate{nationIn(CNationKey, d, rng.Int63n(NumRegions))}
		in.LineJoin, in.OrdJoin, in.CustJoin = LOrderKey, OOrderKey, CCustKey
	case Q6:
		// Pure selection on lineitem: one ship year, a discount band and a
		// quantity cap. No join.
		y := 1993 + rng.Intn(5)
		lo := value.DateOf(y, 1, 1).Int64()
		hi := value.DateOf(y+1, 1, 1).Int64()
		disc := 0.02 + float64(rng.Intn(8))/100
		in.LinePreds = append(dateRange(LShipDate, lo, hi),
			predicate.NewCmp(LDiscount, predicate.GE, value.NewFloat(disc-0.01)),
			predicate.NewCmp(LDiscount, predicate.LE, value.NewFloat(disc+0.01)),
			predicate.NewCmp(LQuantity, predicate.LT, value.NewFloat(float64(24+rng.Intn(2)))),
		)
	case Q8:
		// Bushy plan (§4.3): (lineitem ⋈ part) ⋈ (orders ⋈ customer).
		t := TypeSyllable1[rng.Intn(len(TypeSyllable1))] + " " +
			TypeSyllable2[rng.Intn(len(TypeSyllable2))] + " " +
			TypeSyllable3[rng.Intn(len(TypeSyllable3))]
		in.PartPreds = []predicate.Predicate{
			predicate.NewCmp(PType, predicate.EQ, value.NewString(t)),
		}
		in.OrdPreds = dateRange(OOrderDate,
			value.DateOf(1995, 1, 1).Int64(), value.DateOf(1997, 1, 1).Int64())
		in.CustPreds = []predicate.Predicate{nationIn(CNationKey, d, rng.Int63n(NumRegions))}
		in.LineJoin, in.PartJoin = LPartKey, PPartKey
		in.OrdJoin, in.CustJoin = OCustKey, CCustKey
	case Q10:
		// Returned items in a 3-month order window.
		start := value.DateOf(1993, 2, 1).Int64() + int64(rng.Intn(24))*30
		in.OrdPreds = dateRange(OOrderDate, start, start+90)
		in.LinePreds = []predicate.Predicate{
			predicate.NewCmp(LReturnFlag, predicate.EQ, value.NewString("R")),
		}
		in.LineJoin, in.OrdJoin, in.CustJoin = LOrderKey, OOrderKey, CCustKey
	case Q12:
		// Two ship modes and one receipt year. (The paper's cross-column
		// commit/receipt comparisons are not range predicates and are
		// dropped; the selectivity profile is preserved.)
		m1 := rng.Intn(len(ShipModes))
		m2 := (m1 + 1 + rng.Intn(len(ShipModes)-1)) % len(ShipModes)
		y := 1993 + rng.Intn(5)
		in.LinePreds = append(dateRange(LReceiptDate,
			value.DateOf(y, 1, 1).Int64(), value.DateOf(y+1, 1, 1).Int64()),
			predicate.NewIn(LShipMode, value.NewString(ShipModes[m1]), value.NewString(ShipModes[m2])),
		)
		in.LineJoin, in.OrdJoin = LOrderKey, OOrderKey
	case Q14:
		// One ship month; joins part.
		y := 1993 + rng.Intn(5)
		m := 1 + rng.Intn(12)
		lo := value.DateOf(y, time.Month(m), 1).Int64()
		in.LinePreds = dateRange(LShipDate, lo, lo+30)
		in.LineJoin, in.PartJoin = LPartKey, PPartKey
	case Q19:
		// Brand + containers + quantity band + shipping constraints.
		brand := fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))
		var containers []value.Value
		for i := 0; i < 4; i++ {
			containers = append(containers, value.NewString(Containers[rng.Intn(len(Containers))]))
		}
		qlo := float64(1 + rng.Intn(10))
		in.PartPreds = []predicate.Predicate{
			predicate.NewCmp(PBrand, predicate.EQ, value.NewString(brand)),
			predicate.NewIn(PContainer, containers...),
		}
		in.LinePreds = []predicate.Predicate{
			predicate.NewCmp(LQuantity, predicate.GE, value.NewFloat(qlo)),
			predicate.NewCmp(LQuantity, predicate.LE, value.NewFloat(qlo+10)),
			predicate.NewIn(LShipMode, value.NewString("AIR"), value.NewString("REG AIR")),
			predicate.NewCmp(LShipInstruct, predicate.EQ, value.NewString("DELIVER IN PERSON")),
		}
		in.LineJoin, in.PartJoin = LPartKey, PPartKey
	default:
		panic(fmt.Sprintf("tpch: unknown template %q", tpl))
	}
	return in
}

// nationIn folds nation ⋈ region for one region into an IN predicate.
func nationIn(col int, d *Dataset, region int64) predicate.Predicate {
	var vals []value.Value
	for _, n := range d.NationsOfRegion(region) {
		vals = append(vals, value.NewInt(n))
	}
	return predicate.NewIn(col, vals...)
}

// Plan builds the execution plan for the instance over the loaded
// tables, matching the join orders discussed in §4.3.
func (in *Instance) Plan(tb *Tables) planner.Node {
	lw := LineitemSchema.NumCols()
	switch in.Template {
	case Q6:
		return &planner.Scan{Table: tb.Lineitem, Preds: in.LinePreds}
	case Q3, Q5, Q10:
		// (lineitem ⋈ orders) ⋈ customer.
		inner := &planner.Join{
			Left:  &planner.Scan{Table: tb.Lineitem, Preds: in.LinePreds},
			Right: &planner.Scan{Table: tb.Orders, Preds: in.OrdPreds},
			LCol:  LOrderKey, RCol: OOrderKey,
		}
		return &planner.Join{
			Left:  inner,
			Right: &planner.Scan{Table: tb.Customer, Preds: in.CustPreds},
			LCol:  lw + OCustKey, RCol: CCustKey,
		}
	case Q8:
		// (lineitem ⋈ part) ⋈ (orders ⋈ customer) — two hyper-joins plus a
		// shuffle of the intermediates (§4.3).
		lp := &planner.Join{
			Left:  &planner.Scan{Table: tb.Lineitem, Preds: in.LinePreds},
			Right: &planner.Scan{Table: tb.Part, Preds: in.PartPreds},
			LCol:  LPartKey, RCol: PPartKey,
		}
		oc := &planner.Join{
			Left:  &planner.Scan{Table: tb.Orders, Preds: in.OrdPreds},
			Right: &planner.Scan{Table: tb.Customer, Preds: in.CustPreds},
			LCol:  OCustKey, RCol: CCustKey,
		}
		return &planner.Join{Left: lp, Right: oc, LCol: LOrderKey, RCol: OOrderKey}
	case Q12:
		return &planner.Join{
			Left:  &planner.Scan{Table: tb.Lineitem, Preds: in.LinePreds},
			Right: &planner.Scan{Table: tb.Orders, Preds: in.OrdPreds},
			LCol:  LOrderKey, RCol: OOrderKey,
		}
	case Q14, Q19:
		return &planner.Join{
			Left:  &planner.Scan{Table: tb.Lineitem, Preds: in.LinePreds},
			Right: &planner.Scan{Table: tb.Part, Preds: in.PartPreds},
			LCol:  LPartKey, RCol: PPartKey,
		}
	default:
		panic(fmt.Sprintf("tpch: no plan for template %q", in.Template))
	}
}

// Uses lists how this query touches each table, for the optimizer's
// query windows.
func (in *Instance) Uses(tb *Tables) []optimizer.TableUse {
	var out []optimizer.TableUse
	switch in.Template {
	case Q6:
		out = append(out, optimizer.TableUse{Table: tb.Lineitem, JoinAttr: -1, Preds: in.LinePreds})
	case Q3, Q5, Q10:
		out = append(out,
			optimizer.TableUse{Table: tb.Lineitem, JoinAttr: in.LineJoin, Preds: in.LinePreds},
			optimizer.TableUse{Table: tb.Orders, JoinAttr: in.OrdJoin, Preds: in.OrdPreds},
			optimizer.TableUse{Table: tb.Customer, JoinAttr: in.CustJoin, Preds: in.CustPreds},
		)
	case Q8:
		out = append(out,
			optimizer.TableUse{Table: tb.Lineitem, JoinAttr: in.LineJoin, Preds: in.LinePreds},
			optimizer.TableUse{Table: tb.Part, JoinAttr: in.PartJoin, Preds: in.PartPreds},
			optimizer.TableUse{Table: tb.Orders, JoinAttr: in.OrdJoin, Preds: in.OrdPreds},
			optimizer.TableUse{Table: tb.Customer, JoinAttr: in.CustJoin, Preds: in.CustPreds},
		)
	case Q12:
		out = append(out,
			optimizer.TableUse{Table: tb.Lineitem, JoinAttr: in.LineJoin, Preds: in.LinePreds},
			optimizer.TableUse{Table: tb.Orders, JoinAttr: in.OrdJoin, Preds: in.OrdPreds},
		)
	case Q14, Q19:
		out = append(out,
			optimizer.TableUse{Table: tb.Lineitem, JoinAttr: in.LineJoin, Preds: in.LinePreds},
			optimizer.TableUse{Table: tb.Part, JoinAttr: in.PartJoin, Preds: in.PartPreds},
		)
	}
	return out
}

// LineitemJoinAttrFor reports the lineitem join column a template drives
// toward — used by experiments that pre-converge tables (Fig. 12).
func LineitemJoinAttrFor(tpl Template) int {
	switch tpl {
	case Q8, Q14, Q19:
		return LPartKey
	case Q6:
		return -1
	default:
		return LOrderKey
	}
}
