package tpch

import (
	"fmt"
	"math/rand"

	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Dataset holds generated TPC-H tables as row slices.
type Dataset struct {
	SF       float64
	Lineitem []tuple.Tuple
	Orders   []tuple.Tuple
	Customer []tuple.Tuple
	Part     []tuple.Tuple
	Supplier []tuple.Tuple
	Nation   []tuple.Tuple
	Region   []tuple.Tuple
}

// Counts returns the per-table row counts for a scale factor, mirroring
// dbgen's SF-1 cardinalities (lineitem ≈ 6M, orders 1.5M, customer 150k,
// part 200k, supplier 10k), with small floors so micro scale factors stay
// usable.
func Counts(sf float64) (lineitem, orders, customer, part, supplier int) {
	scale := func(base int, floor int) int {
		n := int(float64(base) * sf)
		if n < floor {
			n = floor
		}
		return n
	}
	orders = scale(1_500_000, 100)
	lineitem = orders * 4 // filled precisely during generation (1..7 lines per order)
	customer = scale(150_000, 30)
	part = scale(200_000, 40)
	supplier = scale(10_000, 10)
	return
}

// Generate builds a deterministic dataset for the scale factor and seed.
func Generate(sf float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	_, numOrders, numCust, numPart, numSupp := Counts(sf)

	d := &Dataset{SF: sf}

	// Region and nation are fixed-size dimension tables.
	for r := 0; r < NumRegions; r++ {
		d.Region = append(d.Region, tuple.Tuple{value.NewInt(int64(r))})
	}
	for n := 0; n < NumNations; n++ {
		d.Nation = append(d.Nation, tuple.Tuple{
			value.NewInt(int64(n)),
			value.NewInt(int64(n % NumRegions)),
		})
	}

	// Customer.
	for c := 1; c <= numCust; c++ {
		d.Customer = append(d.Customer, tuple.Tuple{
			value.NewInt(int64(c)),
			value.NewInt(rng.Int63n(NumNations)),
			value.NewFloat(float64(rng.Intn(999999))/100 - 999.99),
			value.NewString(Segments[rng.Intn(len(Segments))]),
		})
	}

	// Part.
	for p := 1; p <= numPart; p++ {
		brand := fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))
		ptype := TypeSyllable1[rng.Intn(len(TypeSyllable1))] + " " +
			TypeSyllable2[rng.Intn(len(TypeSyllable2))] + " " +
			TypeSyllable3[rng.Intn(len(TypeSyllable3))]
		d.Part = append(d.Part, tuple.Tuple{
			value.NewInt(int64(p)),
			value.NewString(brand),
			value.NewString(ptype),
			value.NewInt(1 + rng.Int63n(50)),
			value.NewString(Containers[rng.Intn(len(Containers))]),
			value.NewFloat(900 + float64(p%1000)/10),
		})
	}

	// Supplier.
	for s := 1; s <= numSupp; s++ {
		d.Supplier = append(d.Supplier, tuple.Tuple{
			value.NewInt(int64(s)),
			value.NewInt(rng.Int63n(NumNations)),
			value.NewFloat(float64(rng.Intn(999999))/100 - 999.99),
		})
	}

	// Orders and lineitem. Orderdates leave dbgen's 151-day tail so every
	// lineitem date fits the domain.
	dateSpan := EndDate - StartDate - 151
	for o := 1; o <= numOrders; o++ {
		orderDate := StartDate + rng.Int63n(dateSpan)
		custKey := 1 + rng.Int63n(int64(numCust))
		status := "O"
		if rng.Intn(2) == 0 {
			status = "F"
		}
		nLines := 1 + rng.Intn(7)
		total := 0.0
		for ln := 1; ln <= nLines; ln++ {
			partKey := 1 + rng.Int63n(int64(numPart))
			suppKey := 1 + rng.Int63n(int64(numSupp))
			qty := float64(1 + rng.Intn(50))
			price := qty * (900 + float64(partKey%1000)/10) / 10
			discount := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			shipDate := orderDate + 1 + rng.Int63n(121)
			commitDate := orderDate + 30 + rng.Int63n(61)
			receiptDate := shipDate + 1 + rng.Int63n(30)
			returnFlag := "N"
			if rng.Intn(4) == 0 {
				if rng.Intn(2) == 0 {
					returnFlag = "R"
				} else {
					returnFlag = "A"
				}
			}
			lineStatus := LineStatuses[rng.Intn(len(LineStatuses))]
			d.Lineitem = append(d.Lineitem, tuple.Tuple{
				value.NewInt(int64(o)),
				value.NewInt(partKey),
				value.NewInt(suppKey),
				value.NewInt(int64(ln)),
				value.NewFloat(qty),
				value.NewFloat(price),
				value.NewFloat(discount),
				value.NewFloat(tax),
				value.NewString(returnFlag),
				value.NewString(lineStatus),
				value.NewDate(shipDate),
				value.NewDate(commitDate),
				value.NewDate(receiptDate),
				value.NewString(ShipInstructs[rng.Intn(len(ShipInstructs))]),
				value.NewString(ShipModes[rng.Intn(len(ShipModes))]),
			})
			total += price * (1 - discount) * (1 + tax)
		}
		d.Orders = append(d.Orders, tuple.Tuple{
			value.NewInt(int64(o)),
			value.NewInt(custKey),
			value.NewString(status),
			value.NewFloat(total),
			value.NewDate(orderDate),
			value.NewString(Priorities[rng.Intn(len(Priorities))]),
			value.NewInt(0),
		})
	}
	return d
}

// NationsOfRegion returns the nation keys belonging to a region —
// the pre-join of nation ⋈ region that q5/q8 templates fold into IN
// predicates on c_nationkey / s_nationkey.
func (d *Dataset) NationsOfRegion(region int64) []int64 {
	var out []int64
	for _, n := range d.Nation {
		if n[NRegionKey].Int64() == region {
			out = append(out, n[NNationKey].Int64())
		}
	}
	return out
}
