package dfs

import (
	"fmt"
	"sync"
	"testing"

	"adaptdb/internal/block"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

var sch = schema.MustNew(
	schema.Column{Name: "k", Kind: value.Int},
)

func row(k int64) tuple.Tuple { return tuple.Tuple{value.NewInt(k)} }

func blockOf(ks ...int64) *block.Block {
	b := block.New(sch)
	for _, k := range ks {
		b.Append(row(k))
	}
	return b
}

func TestPutGetBlock(t *testing.T) {
	s := NewStore(4, 2, 1)
	s.PutBlock("t/0/0", blockOf(1, 2, 3))
	placement := s.Placement("t/0/0")
	if len(placement) != 2 {
		t.Fatalf("placement = %v, want 2 replicas", placement)
	}
	got, local, err := s.GetBlock("t/0/0", placement[0])
	if err != nil {
		t.Fatalf("GetBlock: %v", err)
	}
	if !local {
		t.Errorf("read from replica node should be local")
	}
	if got.Len() != 3 {
		t.Errorf("block has %d rows, want 3", got.Len())
	}
	// A node not hosting a replica reads remotely.
	var other NodeID = -1
	for n := NodeID(0); n < 4; n++ {
		isReplica := false
		for _, p := range placement {
			if p == n {
				isReplica = true
			}
		}
		if !isReplica {
			other = n
			break
		}
	}
	if other == -1 {
		t.Fatal("no non-replica node found")
	}
	if _, local, _ := s.GetBlock("t/0/0", other); local {
		t.Errorf("read from non-replica node should be remote")
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore(2, 1, 1)
	if _, _, err := s.GetBlock("nope", 0); err == nil {
		t.Errorf("missing block read should error")
	}
	if _, err := s.GetBytes("nope"); err == nil {
		t.Errorf("missing metadata read should error")
	}
}

func TestReplicationClamped(t *testing.T) {
	s := NewStore(2, 5, 1)
	if s.Replication() != 2 {
		t.Errorf("replication = %d, want clamped to 2", s.Replication())
	}
	s = NewStore(0, 0, 1)
	if s.NumNodes() != 1 || s.Replication() != 1 {
		t.Errorf("degenerate store: nodes=%d repl=%d", s.NumNodes(), s.Replication())
	}
}

func TestPlacementDeterministicAndSpread(t *testing.T) {
	a := NewStore(10, 3, 7)
	b := NewStore(10, 3, 7)
	used := make(map[NodeID]int)
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("tbl/0/%d", i)
		a.PutBlock(p, blockOf(int64(i)))
		b.PutBlock(p, blockOf(int64(i)))
		pa, pb := a.Placement(p), b.Placement(p)
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("placement not deterministic for %s", p)
			}
		}
		used[pa[0]]++
	}
	// All 10 nodes should host some primaries.
	if len(used) < 8 {
		t.Errorf("placement poorly spread: %v", used)
	}
}

func TestAppendCreatesAndAccumulates(t *testing.T) {
	s := NewStore(3, 1, 1)
	s.Append("t/1/5", sch, []tuple.Tuple{row(1), row(2)})
	s.Append("t/1/5", sch, []tuple.Tuple{row(3)})
	got, _, err := s.GetBlock("t/1/5", 0)
	if err != nil {
		t.Fatalf("GetBlock after append: %v", err)
	}
	if got.Len() != 3 {
		t.Errorf("appended block has %d rows, want 3", got.Len())
	}
	if got.Max(0).Int64() != 3 {
		t.Errorf("zone map not maintained on append")
	}
}

func TestConcurrentAppend(t *testing.T) {
	// Several "repartitioners" appending to the same file must not lose
	// rows — the ZooKeeper-coordination substitute.
	s := NewStore(4, 2, 1)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Append("shared", sch, []tuple.Tuple{row(int64(w*perWriter + i))})
			}
		}(w)
	}
	wg.Wait()
	got, _, err := s.GetBlock("shared", 0)
	if err != nil {
		t.Fatalf("GetBlock: %v", err)
	}
	if got.Len() != writers*perWriter {
		t.Errorf("lost appends: %d rows, want %d", got.Len(), writers*perWriter)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	s := NewStore(2, 1, 1)
	s.PutBytes("meta/tree0", []byte{1, 2, 3})
	got, err := s.GetBytes("meta/tree0")
	if err != nil {
		t.Fatalf("GetBytes: %v", err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("bytes mangled: %v", got)
	}
	// Returned slice must be a copy.
	got[0] = 99
	again, _ := s.GetBytes("meta/tree0")
	if again[0] != 1 {
		t.Errorf("GetBytes exposed internal buffer")
	}
}

func TestDeleteAndExists(t *testing.T) {
	s := NewStore(2, 1, 1)
	s.PutBlock("x", blockOf(1))
	if !s.Exists("x") {
		t.Errorf("Exists(x) false after put")
	}
	s.Delete("x")
	if s.Exists("x") {
		t.Errorf("Exists(x) true after delete")
	}
	s.Delete("x") // no-op
}

func TestList(t *testing.T) {
	s := NewStore(2, 1, 1)
	s.PutBlock("t1/0/2", blockOf(1))
	s.PutBlock("t1/0/1", blockOf(1))
	s.PutBlock("t2/0/0", blockOf(1))
	got := s.List("t1/")
	if len(got) != 2 || got[0] != "t1/0/1" || got[1] != "t1/0/2" {
		t.Errorf("List(t1/) = %v", got)
	}
	if n := len(s.List("")); n != 3 {
		t.Errorf("List(\"\") = %d files, want 3", n)
	}
}

func TestSetPlacement(t *testing.T) {
	s := NewStore(4, 1, 1)
	s.PutBlock("x", blockOf(1))
	if err := s.SetPlacement("x", []NodeID{3}); err != nil {
		t.Fatalf("SetPlacement: %v", err)
	}
	if _, local, _ := s.GetBlock("x", 3); !local {
		t.Errorf("read should be local after SetPlacement")
	}
	if _, local, _ := s.GetBlock("x", 0); local {
		t.Errorf("read from node 0 should be remote")
	}
	if err := s.SetPlacement("missing", []NodeID{0}); err == nil {
		t.Errorf("SetPlacement on missing file should error")
	}
}

func TestStats(t *testing.T) {
	s := NewStore(2, 1, 1)
	s.PutBlock("a", blockOf(1, 2))
	s.PutBlock("b", blockOf(3))
	s.PutBytes("m", []byte{0})
	st := s.Stats()
	if st.Files != 3 || st.Blocks != 2 || st.Tuples != 3 {
		t.Errorf("Stats = %+v", st)
	}
}

// TestConcurrentReadersWithMigration hammers the store the way the
// per-node executors do: N reader goroutines (one per node, each
// reading from its own vantage point, like pinned scan workers) race a
// migrator that appends, re-places, and deletes blocks. Run under -race
// by CI; correctness here is just "no panic, no torn reads".
func TestConcurrentReadersWithMigration(t *testing.T) {
	s := NewStore(4, 2, 9)
	for i := 0; i < 16; i++ {
		s.PutBlock(fmt.Sprintf("t/0/%d", i), blockOf(int64(i), int64(i+100)))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for n := 0; n < 4; n++ {
		wg.Add(1)
		go func(node NodeID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 16; i++ {
					blk, _, err := s.GetBlock(fmt.Sprintf("t/0/%d", i), node)
					if err == nil && blk.Len() == 0 {
						t.Error("read an empty block mid-migration")
						return
					}
					s.Placement(fmt.Sprintf("t/0/%d", i))
				}
			}
		}(NodeID(n))
	}
	for round := 0; round < 50; round++ {
		i := round % 16
		s.Append(fmt.Sprintf("t/1/%d", i), sch, []tuple.Tuple{row(int64(round))})
		if err := s.SetPlacement(fmt.Sprintf("t/0/%d", i), []NodeID{NodeID(round % 4)}); err != nil {
			t.Fatal(err)
		}
		s.Delete(fmt.Sprintf("t/1/%d", (i+8)%16))
	}
	close(stop)
	wg.Wait()
}
