// Package dfs is the distributed file system simulator AdaptDB stores its
// blocks in — the stand-in for HDFS in the paper's prototype (§6).
//
// The simulator keeps the exact contract AdaptDB needs from HDFS and
// nothing more: named immutable-ish files holding data blocks, replica
// placement across a fixed set of nodes, append-only writes ("because
// files are only appended in HDFS, it is possible to do this without
// affecting the correctness of any concurrent queries" — §5.2), and the
// ability to tell local from remote reads so the cluster cost model can
// account for locality (§4.2, Fig. 7). Append coordination, done with
// ZooKeeper in the paper, is a per-store mutex here (see DESIGN.md
// substitution table).
package dfs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"adaptdb/internal/block"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
)

// NodeID identifies a simulated cluster node, in [0, NumNodes).
type NodeID int

// Store is the simulated distributed file system. All methods are safe
// for concurrent use.
type Store struct {
	mu          sync.RWMutex
	nodes       int
	replication int
	seed        int64
	files       map[string]*entry
}

type entry struct {
	blk       *block.Block
	raw       []byte
	placement []NodeID
}

// NewStore creates a store spanning `nodes` nodes with the given replica
// count (clamped to [1, nodes]). Placement is deterministic given the
// seed and file path.
func NewStore(nodes, replication int, seed int64) *Store {
	if nodes < 1 {
		nodes = 1
	}
	if replication < 1 {
		replication = 1
	}
	if replication > nodes {
		replication = nodes
	}
	return &Store{
		nodes:       nodes,
		replication: replication,
		seed:        seed,
		files:       make(map[string]*entry),
	}
}

// NumNodes returns the cluster size.
func (s *Store) NumNodes() int { return s.nodes }

// Replication returns the replica count.
func (s *Store) Replication() int { return s.replication }

// place computes the deterministic replica set for a path: a hash-derived
// primary plus consecutive nodes, HDFS-style.
func (s *Store) place(path string) []NodeID {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", s.seed, path)
	primary := int(h.Sum64() % uint64(s.nodes))
	out := make([]NodeID, 0, s.replication)
	for i := 0; i < s.replication; i++ {
		out = append(out, NodeID((primary+i)%s.nodes))
	}
	return out
}

// PutBlock stores (or replaces) a data block at path.
func (s *Store) PutBlock(path string, b *block.Block) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.files[path]
	if !ok {
		e = &entry{placement: s.place(path)}
		s.files[path] = e
	}
	e.blk = b
}

// GetBlock fetches the block at path as read by a task running on node
// `from`. It reports whether the read was local (from holds a replica).
func (s *Store) GetBlock(path string, from NodeID) (*block.Block, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.files[path]
	if !ok || e.blk == nil {
		return nil, false, fmt.Errorf("dfs: no block at %q", path)
	}
	return e.blk, s.isLocal(e, from), nil
}

func (s *Store) isLocal(e *entry, from NodeID) bool {
	for _, n := range e.placement {
		if n == from {
			return true
		}
	}
	return false
}

// Append appends rows to the block at path, creating it when absent.
// This is the repartitioning iterator's flush path; several concurrent
// repartitioners may target the same file, so the whole operation is
// serialized (the paper uses ZooKeeper for this coordination).
func (s *Store) Append(path string, sch *schema.Schema, rows []tuple.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.files[path]
	if !ok {
		e = &entry{placement: s.place(path), blk: block.New(sch)}
		s.files[path] = e
	}
	if e.blk == nil {
		e.blk = block.New(sch)
	}
	for _, r := range rows {
		e.blk.Append(r)
	}
}

// PutBytes stores raw metadata (serialized partitioning trees, catalogs).
func (s *Store) PutBytes(path string, raw []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.files[path]
	if !ok {
		e = &entry{placement: s.place(path)}
		s.files[path] = e
	}
	e.raw = append([]byte(nil), raw...)
}

// GetBytes fetches raw metadata.
func (s *Store) GetBytes(path string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.files[path]
	if !ok || e.raw == nil {
		return nil, fmt.Errorf("dfs: no metadata at %q", path)
	}
	return append([]byte(nil), e.raw...), nil
}

// Delete removes a file. Deleting a missing file is a no-op, like
// `hdfs dfs -rm -f`.
func (s *Store) Delete(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, path)
}

// Exists reports whether a file exists.
func (s *Store) Exists(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.files[path]
	return ok
}

// List returns all paths with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for p := range s.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Placement returns the replica nodes of a path (nil when absent).
func (s *Store) Placement(path string) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.files[path]
	if !ok {
		return nil
	}
	return append([]NodeID(nil), e.placement...)
}

// SetPlacement overrides a file's replica set. The Fig. 7 locality
// experiment uses this to force a chosen fraction of blocks remote.
func (s *Store) SetPlacement(path string, nodes []NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.files[path]
	if !ok {
		return fmt.Errorf("dfs: no file at %q", path)
	}
	e.placement = append([]NodeID(nil), nodes...)
	return nil
}

// Stats summarizes store contents.
type Stats struct {
	Files  int
	Blocks int
	Tuples int
}

// Stats returns current totals.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Files: len(s.files)}
	for _, e := range s.files {
		if e.blk != nil {
			st.Blocks++
			st.Tuples += e.blk.Len()
		}
	}
	return st
}
