// Package sample provides the sampling machinery AdaptDB's partitioners
// rely on. Amoeba "collects a sample from the data and uses it to choose
// the appropriate cut points" (§3.1); two-phase partitioning "sorts all
// values of the attribute in the sample at the root, and recursively
// computes medians for each subtree over this sorted list" (§5.1).
package sample

import (
	"math/rand"
	"sort"

	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Reservoir is a classic reservoir sampler over tuples: after observing
// any number of rows it holds a uniform random sample of at most K.
type Reservoir struct {
	K     int
	rng   *rand.Rand
	seen  int64
	items []tuple.Tuple
}

// NewReservoir creates a sampler holding at most k tuples, seeded
// deterministically so experiment runs are reproducible.
func NewReservoir(k int, seed int64) *Reservoir {
	if k <= 0 {
		k = 1
	}
	return &Reservoir{K: k, rng: rand.New(rand.NewSource(seed))}
}

// Observe offers one tuple to the sampler.
func (r *Reservoir) Observe(t tuple.Tuple) {
	r.seen++
	if len(r.items) < r.K {
		r.items = append(r.items, t)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.K) {
		r.items[j] = t
	}
}

// Seen returns the total number of tuples observed.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns the current sample (shared backing array; callers must
// not mutate).
func (r *Reservoir) Sample() []tuple.Tuple { return r.items }

// Column extracts column col from a tuple sample.
func Column(rows []tuple.Tuple, col int) []value.Value {
	out := make([]value.Value, 0, len(rows))
	for _, t := range rows {
		if col < len(t) && !t[col].IsNull() {
			out = append(out, t[col])
		}
	}
	return out
}

// SortValues sorts values in place under value.Compare and returns them.
func SortValues(vs []value.Value) []value.Value {
	sort.Slice(vs, func(i, j int) bool { return value.Less(vs[i], vs[j]) })
	return vs
}

// Median returns the median of vs (the lower median for even lengths) and
// false when vs is empty.
func Median(vs []value.Value) (value.Value, bool) {
	if len(vs) == 0 {
		return value.Value{}, false
	}
	sorted := SortValues(append([]value.Value(nil), vs...))
	return sorted[(len(sorted)-1)/2], true
}

// Quantiles returns n-1 cut points splitting sorted vs into n roughly
// equal parts: the recursive-median cut points of §5.1 when n is a power
// of two. Returned cuts are a subset of the sample values.
func Quantiles(vs []value.Value, n int) []value.Value {
	if n <= 1 || len(vs) == 0 {
		return nil
	}
	sorted := SortValues(append([]value.Value(nil), vs...))
	cuts := make([]value.Value, 0, n-1)
	for i := 1; i < n; i++ {
		idx := i * len(sorted) / n
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		cuts = append(cuts, sorted[idx])
	}
	return cuts
}

// MedianCuts computes the cut points for `levels` levels of recursive
// median splitting (2^levels partitions), exactly as two-phase
// partitioning injects the join attribute: the root cut is the median of
// the whole sorted sample, the next level the medians of each half, and
// so on. The result is indexed by level: cuts[0] has 1 value, cuts[1] has
// 2, ..., cuts[levels-1] has 2^(levels-1).
func MedianCuts(vs []value.Value, levels int) [][]value.Value {
	if levels <= 0 || len(vs) == 0 {
		return nil
	}
	sorted := SortValues(append([]value.Value(nil), vs...))
	cuts := make([][]value.Value, levels)
	// Segment boundaries per level, as index intervals over sorted.
	type seg struct{ lo, hi int } // [lo, hi)
	segs := []seg{{0, len(sorted)}}
	for l := 0; l < levels; l++ {
		next := make([]seg, 0, len(segs)*2)
		cuts[l] = make([]value.Value, 0, len(segs))
		for _, s := range segs {
			mid := s.lo + (s.hi-s.lo)/2
			if mid <= s.lo {
				mid = s.lo // degenerate segment: reuse lo
			}
			idx := mid
			if idx >= len(sorted) {
				idx = len(sorted) - 1
			}
			// Cut at the element just below the midpoint, so "≤ cut goes
			// left" produces balanced halves.
			cutIdx := idx - 1
			if cutIdx < s.lo {
				cutIdx = s.lo
			}
			cuts[l] = append(cuts[l], sorted[cutIdx])
			next = append(next, seg{s.lo, mid}, seg{mid, s.hi})
		}
		segs = next
	}
	return cuts
}
