package sample

import (
	"math/rand"
	"sort"
	"testing"

	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func intRow(v int64) tuple.Tuple { return tuple.Tuple{value.NewInt(v)} }

func TestReservoirBounded(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := int64(0); i < 1000; i++ {
		r.Observe(intRow(i))
	}
	if len(r.Sample()) != 10 {
		t.Fatalf("sample size %d, want 10", len(r.Sample()))
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen %d, want 1000", r.Seen())
	}
}

func TestReservoirSmallInput(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := int64(0); i < 4; i++ {
		r.Observe(intRow(i))
	}
	if len(r.Sample()) != 4 {
		t.Fatalf("sample size %d, want all 4", len(r.Sample()))
	}
}

func TestReservoirZeroK(t *testing.T) {
	r := NewReservoir(0, 1)
	r.Observe(intRow(1))
	if len(r.Sample()) != 1 {
		t.Fatalf("k<=0 should clamp to 1")
	}
}

func TestReservoirApproxUniform(t *testing.T) {
	// Each of 100 items should land in a k=50 sample about half the time.
	const trials = 400
	counts := make([]int, 100)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(50, int64(trial))
		for i := int64(0); i < 100; i++ {
			r.Observe(intRow(i))
		}
		for _, tp := range r.Sample() {
			counts[tp[0].Int64()]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if frac < 0.3 || frac > 0.7 {
			t.Errorf("item %d selected with frequency %.2f, want ≈0.5", i, frac)
		}
	}
}

func TestColumn(t *testing.T) {
	rows := []tuple.Tuple{intRow(3), intRow(1), {value.Value{}}, intRow(2)}
	vs := Column(rows, 0)
	if len(vs) != 3 {
		t.Fatalf("Column kept %d values, want 3 (nulls dropped)", len(vs))
	}
}

func TestMedian(t *testing.T) {
	if _, ok := Median(nil); ok {
		t.Errorf("median of empty should report !ok")
	}
	vs := []value.Value{value.NewInt(5), value.NewInt(1), value.NewInt(9)}
	m, ok := Median(vs)
	if !ok || m.Int64() != 5 {
		t.Errorf("median = %v, want 5", m)
	}
	vs4 := []value.Value{value.NewInt(1), value.NewInt(2), value.NewInt(3), value.NewInt(4)}
	m, _ = Median(vs4)
	if m.Int64() != 2 {
		t.Errorf("lower median of 1..4 = %v, want 2", m)
	}
}

func TestQuantiles(t *testing.T) {
	var vs []value.Value
	for i := int64(0); i < 100; i++ {
		vs = append(vs, value.NewInt(i))
	}
	cuts := Quantiles(vs, 4)
	if len(cuts) != 3 {
		t.Fatalf("got %d cuts, want 3", len(cuts))
	}
	if cuts[0].Int64() != 25 || cuts[1].Int64() != 50 || cuts[2].Int64() != 75 {
		t.Errorf("quartiles = %v", cuts)
	}
	if Quantiles(vs, 1) != nil || Quantiles(nil, 4) != nil {
		t.Errorf("degenerate quantiles should be nil")
	}
}

func TestMedianCutsBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var vs []value.Value
	for i := 0; i < 1024; i++ {
		vs = append(vs, value.NewInt(rng.Int63n(1<<30)))
	}
	levels := 3
	cuts := MedianCuts(vs, levels)
	if len(cuts) != levels {
		t.Fatalf("levels = %d, want %d", len(cuts), levels)
	}
	for l, row := range cuts {
		if len(row) != 1<<l {
			t.Fatalf("level %d has %d cuts, want %d", l, len(row), 1<<l)
		}
	}
	// Route every sampled value through the implied 3-level tree and check
	// the 8 partitions are roughly balanced (the point of median splits —
	// §5.1 "medians help avoid this skew").
	counts := make([]int, 8)
	for _, v := range vs {
		idx := 0
		for l := 0; l < levels; l++ {
			cut := cuts[l][idx]
			idx <<= 1
			if value.Compare(v, cut) > 0 {
				idx |= 1
			}
		}
		counts[idx]++
	}
	want := len(vs) / 8
	for p, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("partition %d has %d values, want ≈%d", p, c, want)
		}
	}
}

func TestMedianCutsMonotoneWithinLevel(t *testing.T) {
	var vs []value.Value
	for i := int64(0); i < 256; i++ {
		vs = append(vs, value.NewInt(i))
	}
	cuts := MedianCuts(vs, 4)
	for l, row := range cuts {
		if !sort.SliceIsSorted(row, func(i, j int) bool { return value.Less(row[i], row[j]) }) {
			t.Errorf("level %d cuts not monotone: %v", l, row)
		}
	}
}

func TestMedianCutsDegenerate(t *testing.T) {
	if MedianCuts(nil, 3) != nil {
		t.Errorf("no values should produce nil cuts")
	}
	if MedianCuts([]value.Value{value.NewInt(1)}, 0) != nil {
		t.Errorf("zero levels should produce nil cuts")
	}
	// A single repeated value must still produce structurally valid cuts.
	vs := []value.Value{value.NewInt(7), value.NewInt(7), value.NewInt(7)}
	cuts := MedianCuts(vs, 2)
	if len(cuts) != 2 || len(cuts[0]) != 1 || len(cuts[1]) != 2 {
		t.Fatalf("degenerate cuts malformed: %v", cuts)
	}
}
