package cmt

import (
	"fmt"
	"math/rand"

	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Trips column indexes (the named head of the 115-column fact table).
const (
	TTripID = iota
	TUserID
	TStartTime
	TEndTime
	TAvgVelocity
	TMaxVelocity
	TDistance
	namedTripCols
)

// TripCols is the fact table's total column count (115, as in §7.6).
const TripCols = 115

// History column indexes.
const (
	HTripID = iota
	HVersion
	HScore
	HProcessedAt
	namedHistCols
)

// HistCols is the historical-results table width.
const HistCols = 20

// Latest column indexes.
const (
	LTripID = iota
	LScore
	LProcessedAt
	namedLatestCols
)

// LatestCols is the latest-results table width (20 + 13 = 33 dimension
// columns total, as the paper states).
const LatestCols = 13

func buildSchema(name string, named []schema.Column, total int) *schema.Schema {
	cols := append([]schema.Column(nil), named...)
	for i := len(cols); i < total; i++ {
		cols = append(cols, schema.Column{Name: fmt.Sprintf("%s_f%d", name, i), Kind: value.Int})
	}
	return schema.MustNew(cols...)
}

// Schemas of the three tables.
var (
	TripsSchema = buildSchema("t", []schema.Column{
		{Name: "trip_id", Kind: value.Int},
		{Name: "user_id", Kind: value.Int},
		{Name: "start_time", Kind: value.Int},
		{Name: "end_time", Kind: value.Int},
		{Name: "avg_velocity", Kind: value.Float},
		{Name: "max_velocity", Kind: value.Float},
		{Name: "distance", Kind: value.Float},
	}, TripCols)
	HistorySchema = buildSchema("h", []schema.Column{
		{Name: "trip_id", Kind: value.Int},
		{Name: "version", Kind: value.Int},
		{Name: "score", Kind: value.Float},
		{Name: "processed_at", Kind: value.Int},
	}, HistCols)
	LatestSchema = buildSchema("r", []schema.Column{
		{Name: "trip_id", Kind: value.Int},
		{Name: "score", Kind: value.Float},
		{Name: "processed_at", Kind: value.Int},
	}, LatestCols)
)

// TimeSpan is the start_time domain in arbitrary epoch-second units.
const TimeSpan = 1 << 22

// Dataset holds generated CMT rows.
type Dataset struct {
	NumTrips int
	NumUsers int
	Trips    []tuple.Tuple
	History  []tuple.Tuple
	Latest   []tuple.Tuple
}

// Generate builds a deterministic dataset: numTrips trips across
// numTrips/50 users, 1–4 historical results per trip and one latest
// result per trip.
func Generate(numTrips int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	users := numTrips / 50
	if users < 5 {
		users = 5
	}
	d := &Dataset{NumTrips: numTrips, NumUsers: users}
	for id := 1; id <= numTrips; id++ {
		start := rng.Int63n(TimeSpan)
		trip := make(tuple.Tuple, 0, TripCols)
		trip = append(trip,
			value.NewInt(int64(id)),
			value.NewInt(1+rng.Int63n(int64(users))),
			value.NewInt(start),
			value.NewInt(start+600+rng.Int63n(7200)),
			value.NewFloat(20+rng.Float64()*60),
			value.NewFloat(40+rng.Float64()*100),
			value.NewFloat(rng.Float64()*120),
		)
		for c := namedTripCols; c < TripCols; c++ {
			trip = append(trip, value.NewInt(rng.Int63n(1000)))
		}
		d.Trips = append(d.Trips, trip)

		versions := 1 + rng.Intn(4)
		for v := 1; v <= versions; v++ {
			h := make(tuple.Tuple, 0, HistCols)
			h = append(h,
				value.NewInt(int64(id)),
				value.NewInt(int64(v)),
				value.NewFloat(rng.Float64()*100),
				value.NewInt(start+int64(v)*1000),
			)
			for c := namedHistCols; c < HistCols; c++ {
				h = append(h, value.NewInt(rng.Int63n(1000)))
			}
			d.History = append(d.History, h)
		}
		l := make(tuple.Tuple, 0, LatestCols)
		l = append(l,
			value.NewInt(int64(id)),
			value.NewFloat(rng.Float64()*100),
			value.NewInt(start+int64(versions)*1000),
		)
		for c := namedLatestCols; c < LatestCols; c++ {
			l = append(l, value.NewInt(rng.Int63n(1000)))
		}
		d.Latest = append(d.Latest, l)
	}
	return d
}

// Tables binds the loaded CMT tables.
type Tables struct {
	Trips   *core.Table
	History *core.Table
	Latest  *core.Table
}

// LoadConfig controls table loading.
type LoadConfig struct {
	RowsPerBlock int
	// JoinAttrs per table ("trips", "history", "latest"); missing = -1.
	JoinAttrs map[string]int
	// Attrs restricts selection attributes per table (the hand-tuned
	// "Best Guess" baseline uses the trace's predicate columns).
	Attrs map[string][]int
	Seed  int64
}

// LoadAll loads the three tables.
func LoadAll(store *dfs.Store, d *Dataset, cfg LoadConfig) (*Tables, error) {
	if cfg.RowsPerBlock <= 0 {
		cfg.RowsPerBlock = 1024
	}
	attr := func(name string) int {
		if a, ok := cfg.JoinAttrs[name]; ok {
			return a
		}
		return -1
	}
	tb := &Tables{}
	var err error
	if tb.Trips, err = core.Load(store, "trips", TripsSchema, d.Trips, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, JoinAttr: attr("trips"), Attrs: cfg.Attrs["trips"], Seed: cfg.Seed + 1,
	}); err != nil {
		return nil, err
	}
	if tb.History, err = core.Load(store, "history", HistorySchema, d.History, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, JoinAttr: attr("history"), Attrs: cfg.Attrs["history"], Seed: cfg.Seed + 2,
	}); err != nil {
		return nil, err
	}
	if tb.Latest, err = core.Load(store, "latest", LatestSchema, d.Latest, core.LoadOptions{
		RowsPerBlock: cfg.RowsPerBlock, JoinAttr: attr("latest"), Attrs: cfg.Attrs["latest"], Seed: cfg.Seed + 3,
	}); err != nil {
		return nil, err
	}
	return tb, nil
}

// Kind classifies trace queries.
type Kind string

// Trace query kinds, mirroring the §7.6 workload description.
const (
	KindLookup      Kind = "lookup"       // trip metadata only
	KindHistoryJoin Kind = "history-join" // trip ⋈ historical results
	KindLatestJoin  Kind = "latest-join"  // trip ⋈ most recent result
	KindBigScan     Kind = "big-scan"     // large-fraction fetch with join
)

// TraceQuery is one query of the 103-query production trace.
type TraceQuery struct {
	Seq       int
	Kind      Kind
	TripPreds []predicate.Predicate
}

// TraceLen matches the paper's trace (103 queries over three days).
const TraceLen = 103

// Trace generates the 103-query trace: user/time-range sub-selects,
// mostly joining history; queries 30–50 include the batch fetching a
// large fraction of the data.
func Trace(d *Dataset, seed int64) []TraceQuery {
	rng := rand.New(rand.NewSource(seed))
	out := make([]TraceQuery, 0, TraceLen)
	for i := 0; i < TraceLen; i++ {
		q := TraceQuery{Seq: i}
		bigBatch := i >= 30 && i < 50 && rng.Intn(2) == 0
		switch {
		case bigBatch:
			q.Kind = KindBigScan
			// Fetch a ~40–70% time slice.
			width := TimeSpan * (40 + rng.Int63n(30)) / 100
			lo := rng.Int63n(TimeSpan - width)
			q.TripPreds = []predicate.Predicate{
				predicate.NewCmp(TStartTime, predicate.GE, value.NewInt(lo)),
				predicate.NewCmp(TStartTime, predicate.LT, value.NewInt(lo+width)),
			}
		default:
			r := rng.Float64()
			switch {
			case r < 0.20:
				q.Kind = KindLookup
			case r < 0.85:
				q.Kind = KindHistoryJoin
			default:
				q.Kind = KindLatestJoin
			}
			// Small sub-select: one user and a narrow time range.
			user := 1 + rng.Int63n(int64(d.NumUsers))
			width := int64(TimeSpan / 8)
			lo := rng.Int63n(TimeSpan - width)
			q.TripPreds = []predicate.Predicate{
				predicate.NewCmp(TUserID, predicate.EQ, value.NewInt(user)),
				predicate.NewCmp(TStartTime, predicate.GE, value.NewInt(lo)),
				predicate.NewCmp(TStartTime, predicate.LT, value.NewInt(lo+width)),
			}
		}
		out = append(out, q)
	}
	return out
}

// Plan builds the execution plan for a trace query.
func (q *TraceQuery) Plan(tb *Tables) planner.Node {
	trips := &planner.Scan{Table: tb.Trips, Preds: q.TripPreds}
	switch q.Kind {
	case KindLookup:
		return trips
	case KindLatestJoin:
		return &planner.Join{Left: trips, Right: &planner.Scan{Table: tb.Latest},
			LCol: TTripID, RCol: LTripID}
	default: // history-join and big-scan both join history
		return &planner.Join{Left: trips, Right: &planner.Scan{Table: tb.History},
			LCol: TTripID, RCol: HTripID}
	}
}

// Uses lists the optimizer-visible table touches.
func (q *TraceQuery) Uses(tb *Tables) []optimizer.TableUse {
	switch q.Kind {
	case KindLookup:
		return []optimizer.TableUse{{Table: tb.Trips, JoinAttr: -1, Preds: q.TripPreds}}
	case KindLatestJoin:
		return []optimizer.TableUse{
			{Table: tb.Trips, JoinAttr: TTripID, Preds: q.TripPreds},
			{Table: tb.Latest, JoinAttr: LTripID},
		}
	default:
		return []optimizer.TableUse{
			{Table: tb.Trips, JoinAttr: TTripID, Preds: q.TripPreds},
			{Table: tb.History, JoinAttr: HTripID},
		}
	}
}

// BestGuessAttrs returns the hand-tuned fixed-partitioning layout of
// §7.6: trees keyed on trip_id with the trace's selection attributes
// (user_id, start_time) in the lower levels.
func BestGuessAttrs() (joinAttrs map[string]int, attrs map[string][]int) {
	joinAttrs = map[string]int{"trips": TTripID, "history": HTripID, "latest": LTripID}
	attrs = map[string][]int{
		"trips":   {TUserID, TStartTime},
		"history": {HVersion, HProcessedAt},
		"latest":  {LProcessedAt},
	}
	return
}
