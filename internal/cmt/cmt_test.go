package cmt

import (
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func TestGenerateShape(t *testing.T) {
	d := Generate(500, 1)
	if len(d.Trips) != 500 {
		t.Fatalf("trips = %d", len(d.Trips))
	}
	if len(d.Latest) != 500 {
		t.Fatalf("latest = %d, want one per trip", len(d.Latest))
	}
	ratio := float64(len(d.History)) / float64(len(d.Trips))
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("history per trip = %.2f, want ≈2.5", ratio)
	}
	// Column widths per §7.6: 115 fact columns, 33 dimension columns.
	if TripsSchema.NumCols() != 115 {
		t.Errorf("trips schema has %d cols, want 115", TripsSchema.NumCols())
	}
	if HistorySchema.NumCols()+LatestSchema.NumCols() != 33 {
		t.Errorf("dimension columns = %d, want 33",
			HistorySchema.NumCols()+LatestSchema.NumCols())
	}
	for _, r := range d.Trips[:10] {
		if err := r.Conforms(TripsSchema); err != nil {
			t.Fatalf("trip row: %v", err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, 9)
	b := Generate(100, 9)
	if len(a.History) != len(b.History) {
		t.Fatalf("history sizes differ")
	}
	for i := range a.Trips {
		for c := range a.Trips[i] {
			if value.Compare(a.Trips[i][c], b.Trips[i][c]) != 0 {
				t.Fatalf("trip %d differs", i)
			}
		}
	}
}

func TestTraceShape(t *testing.T) {
	d := Generate(500, 1)
	tr := Trace(d, 2)
	if len(tr) != TraceLen {
		t.Fatalf("trace length %d, want %d", len(tr), TraceLen)
	}
	counts := map[Kind]int{}
	for i, q := range tr {
		counts[q.Kind]++
		if q.Seq != i {
			t.Errorf("seq %d != %d", q.Seq, i)
		}
		if q.Kind == KindBigScan && (i < 30 || i >= 50) {
			t.Errorf("big scan outside the 30–50 batch at %d", i)
		}
	}
	if counts[KindHistoryJoin] < 40 {
		t.Errorf("history joins should dominate: %v", counts)
	}
	if counts[KindBigScan] == 0 {
		t.Errorf("trace must include the large-fetch batch")
	}
	if counts[KindLatestJoin] == 0 || counts[KindLookup] == 0 {
		t.Errorf("trace missing minor kinds: %v", counts)
	}
}

func TestTraceDeterministic(t *testing.T) {
	d := Generate(300, 1)
	a := Trace(d, 7)
	b := Trace(d, 7)
	for i := range a {
		if a[i].Kind != b[i].Kind {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
}

func filterRows(rows []tuple.Tuple, preds []predicate.Predicate) []tuple.Tuple {
	var out []tuple.Tuple
	for _, r := range rows {
		if predicate.MatchesAll(preds, r) {
			out = append(out, r)
		}
	}
	return out
}

func TestTraceQueriesMatchOracle(t *testing.T) {
	d := Generate(400, 3)
	store := dfs.NewStore(4, 2, 1)
	tb, err := LoadAll(store, d, LoadConfig{RowsPerBlock: 256, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	meter := &cluster.Meter{}
	runner := planner.NewRunner(exec.New(store, meter), cluster.Default())
	for _, q := range Trace(d, 4)[:25] {
		rows, _, err := runner.Run(q.Plan(tb))
		if err != nil {
			t.Fatalf("q%d: %v", q.Seq, err)
		}
		tf := filterRows(d.Trips, q.TripPreds)
		var want int
		switch q.Kind {
		case KindLookup:
			want = len(tf)
		case KindLatestJoin:
			want = len(exec.NestedLoopJoin(tf, d.Latest, TTripID, LTripID))
		default:
			want = len(exec.NestedLoopJoin(tf, d.History, TTripID, HTripID))
		}
		if len(rows) != want {
			t.Errorf("q%d (%s): %d rows, oracle %d", q.Seq, q.Kind, len(rows), want)
		}
	}
}

func TestUsesJoinAttrs(t *testing.T) {
	d := Generate(200, 3)
	store := dfs.NewStore(2, 1, 1)
	tb, err := LoadAll(store, d, LoadConfig{RowsPerBlock: 128, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := TraceQuery{Kind: KindHistoryJoin}
	uses := q.Uses(tb)
	if len(uses) != 2 || uses[0].JoinAttr != TTripID || uses[1].JoinAttr != HTripID {
		t.Errorf("history join uses wrong: %+v", uses)
	}
	q.Kind = KindLookup
	if u := q.Uses(tb); len(u) != 1 || u[0].JoinAttr != -1 {
		t.Errorf("lookup uses wrong: %+v", u)
	}
}

func TestBestGuessLayoutLoads(t *testing.T) {
	d := Generate(300, 3)
	store := dfs.NewStore(4, 2, 1)
	join, attrs := BestGuessAttrs()
	tb, err := LoadAll(store, d, LoadConfig{RowsPerBlock: 128, JoinAttrs: join, Attrs: attrs, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Trips.TreeFor(TTripID) < 0 {
		t.Errorf("best-guess trips should be keyed on trip_id")
	}
	if tb.History.TreeFor(HTripID) < 0 {
		t.Errorf("best-guess history should be keyed on trip_id")
	}
}

func TestAdaptationConvergesInFirstTenQueries(t *testing.T) {
	// §7.6: "AdaptDB can finish adapting the dataset according to the join
	// attribute in the first 10 queries."
	d := Generate(400, 3)
	store := dfs.NewStore(4, 2, 1)
	tb, err := LoadAll(store, d, LoadConfig{RowsPerBlock: 256, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 10, Seed: 7})
	for _, q := range Trace(d, 4)[:12] {
		var meter cluster.Meter
		if _, err := opt.OnQuery(q.Uses(tb), &meter); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Trips.TreeFor(TTripID) < 0 {
		t.Errorf("trips did not adapt to trip_id within 12 queries")
	}
}
