// Package cmt is the synthetic stand-in for the Cambridge Mobile
// Telematics workload of §7.6. The paper itself ran on "a synthetic
// version of the dataset" generated from company statistics plus a real
// 103-query trace; this package regenerates both one level removed: a
// trips fact table with 115 columns, two processed-results dimension
// tables with 33 columns between them, and a 103-query trace with the
// published shape — mostly small trip lookups and trip⋈history joins, a
// few most-recent-result lookups, and a batch of large-fraction scans
// around queries 30–50.
//
// Paper mapping:
//
//   - §7.6, Fig. 18 — the experiment in internal/experiments replays
//     this trace against AdaptDB, full-scan, and best-guess-upfront
//     configurations to reproduce the CMT comparison.
package cmt
