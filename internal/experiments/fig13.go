package experiments

import (
	"math/rand"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/tpch"
)

// workloadKind selects the §7.3 workload shapes.
type workloadKind int

const (
	switching workloadKind = iota
	shifting
)

// templateSchedule produces the per-query template choice for the two
// §7.3 workloads over the eight templates:
//
//   - switching: 20 queries per template, hard cut-over (160 queries);
//   - shifting: 20-query linear cross-fades between consecutive
//     templates (140 queries).
func templateSchedule(kind workloadKind, rng *rand.Rand) []tpch.Template {
	ts := tpch.AllTemplates
	var out []tpch.Template
	switch kind {
	case switching:
		for _, tpl := range ts {
			for i := 0; i < 20; i++ {
				out = append(out, tpl)
			}
		}
	case shifting:
		// 7 transitions of 20 queries each; the probability of the next
		// template grows 1/20 per query.
		for t := 0; t < len(ts)-1; t++ {
			for i := 0; i < 20; i++ {
				p := float64(i+1) / 20
				if rng.Float64() < p {
					out = append(out, ts[t+1])
				} else {
					out = append(out, ts[t])
				}
			}
		}
	}
	return out
}

// systemConfig describes one line of Fig. 13 / Fig. 18.
type systemConfig struct {
	name string
	mode optimizer.Mode
	// forceShuffle disables hyper-join; noPrune disables all block
	// skipping (the Full Scan baseline does both).
	forceShuffle bool
	noPrune      bool
}

func fig13Systems() []systemConfig {
	return []systemConfig{
		{name: "FullScan", mode: optimizer.ModeStatic, forceShuffle: true, noPrune: true},
		{name: "Repartitioning", mode: optimizer.ModeFullRepartition},
		{name: "AdaptDB", mode: optimizer.ModeAdaptive},
	}
}

// runChangingWorkload executes a template schedule under each system
// config, returning per-query simulated seconds per system.
func runChangingWorkload(cfg Config, schedule []tpch.Template) (map[string][]float64, error) {
	model := cfg.model()
	d := tpch.Generate(cfg.SF, cfg.Seed)
	out := make(map[string][]float64)
	for _, sys := range fig13Systems() {
		store := dfs.NewStore(model.Nodes, 2, cfg.Seed)
		// §7.3: "Initially, each table is randomly partitioned by the
		// upfront partitioner."
		tb, err := tpch.LoadAll(store, d, tpch.LoadConfig{
			RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		opt := optimizer.New(optimizer.Config{
			Mode: sys.mode, WindowSize: 10, Seed: cfg.Seed,
		})
		meter := &cluster.Meter{}
		ex := exec.New(store, meter)
		ex.NoPrune = sys.noPrune
		runner := planner.NewRunner(ex, model)
		runner.BudgetBlocks = cfg.Budget
		runner.ForceShuffle = sys.forceShuffle

		rng := rand.New(rand.NewSource(cfg.Seed + 31))
		var series []float64
		for _, tpl := range schedule {
			in := tpch.NewInstance(tpl, d, rng)
			if _, err := opt.OnQuery(in.Uses(tb), meter); err != nil {
				return nil, err
			}
			if _, _, err := runner.Run(in.Plan(tb)); err != nil {
				return nil, err
			}
			series = append(series, meter.Reset().SimSeconds(model))
		}
		out[sys.name] = series
	}
	return out, nil
}

func changingWorkloadResult(name, title string, series map[string][]float64) *Result {
	res := &Result{
		Name:   name,
		Title:  title,
		Header: []string{"query", "FullScan", "Repartitioning", "AdaptDB"},
		Notes:  "paper: AdaptDB amortizes repartitioning spikes and converges ≥2x below full scan",
	}
	n := len(series["AdaptDB"])
	var totals [3]float64
	for i := 0; i < n; i++ {
		fs, rp, ad := series["FullScan"][i], series["Repartitioning"][i], series["AdaptDB"][i]
		res.AddRow(fi(i), f1(fs), f1(rp), f1(ad))
		totals[0] += fs
		totals[1] += rp
		totals[2] += ad
	}
	res.AddRow("TOTAL", f1(totals[0]), f1(totals[1]), f1(totals[2]))
	res.Series = make(map[string][]float64, len(series))
	for k, v := range series {
		res.Series[k] = v
	}
	return res
}

// Fig13a reproduces Figure 13(a): the switching workload (20 queries
// per template, hard switches, 160 queries).
func Fig13a(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	series, err := runChangingWorkload(cfg, templateSchedule(switching, rng))
	if err != nil {
		return nil, err
	}
	return changingWorkloadResult("fig13a", "Switching workload on TPC-H (sim-seconds per query)", series), nil
}

// Fig13b reproduces Figure 13(b): the shifting workload (gradual 20-query
// cross-fades, 140 queries).
func Fig13b(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	series, err := runChangingWorkload(cfg, templateSchedule(shifting, rng))
	if err != nil {
		return nil, err
	}
	return changingWorkloadResult("fig13b", "Shifting workload on TPC-H (sim-seconds per query)", series), nil
}

// Summarize reduces a per-query series to total and peak seconds —
// handy for the bench reporter.
func Summarize(series []float64) (total float64, peak float64) {
	for _, v := range series {
		total += v
		if v > peak {
			peak = v
		}
	}
	return
}
