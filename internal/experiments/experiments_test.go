package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

// testConfig is small enough to run every figure quickly while keeping
// tables dozens of blocks wide.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SF = 0.001
	cfg.RowsPerBlock = 128
	return cfg
}

func TestFig01ShuffleSlower(t *testing.T) {
	res, err := Fig01(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sh := res.Series["shuffle"][0]
	co := res.Series["copartitioned"][0]
	if sh <= co {
		t.Fatalf("shuffle %.1f must cost more than co-partitioned %.1f", sh, co)
	}
	if ratio := sh / co; ratio < 1.5 {
		t.Errorf("shuffle/co-partitioned ratio %.2f, paper reports ≈2x", ratio)
	}
}

func TestFig07LocalityNearlyIrrelevant(t *testing.T) {
	res, err := Fig07(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	slow := res.Series["slowdown"]
	if len(slow) != 4 {
		t.Fatalf("want 4 locality points, got %d", len(slow))
	}
	// Paper: 27% locality is only ≈18% slower.
	if worst := slow[len(slow)-1]; worst > 1.18 || worst < 1.0 {
		t.Errorf("27%% locality slowdown %.3f outside (1.0, 1.18]", worst)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i]+1e-9 < slow[i-1] {
			t.Errorf("slowdown not monotone: %v", slow)
		}
	}
}

func TestFig08Linear(t *testing.T) {
	res, err := Fig08(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	secs := res.Series["seconds"]
	rows := res.Series["rows"]
	// Cost per row stays within 15% across sizes: linear scaling.
	base := secs[0] / rows[0]
	for i := 1; i < len(secs); i++ {
		perRow := secs[i] / rows[i]
		if perRow < base*0.85 || perRow > base*1.15 {
			t.Errorf("size %d: cost/row %.4g deviates from %.4g — not linear", i, perRow, base)
		}
	}
}

func TestFig12HyperWins(t *testing.T) {
	res, err := Fig12(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	hyper := res.Series["hyper"]
	shuffle := res.Series["shuffle"]
	amoeba := res.Series["amoeba"]
	pref := res.Series["pref"]
	if len(hyper) != 7 {
		t.Fatalf("expected 7 templates, got %d", len(hyper))
	}
	sumSpeedup := 0.0
	amoebaWins := 0
	var hyperTotal, amoebaTotal float64
	for i := range hyper {
		if hyper[i] > shuffle[i]*1.01 {
			t.Errorf("template %d: hyper %.2f slower than shuffle %.2f", i, hyper[i], shuffle[i])
		}
		if hyper[i] > pref[i] {
			t.Errorf("template %d: hyper %.2f slower than PREF %.2f (paper: AdaptDB always beats PREF)", i, hyper[i], pref[i])
		}
		if hyper[i] > amoeba[i] {
			amoebaWins++
		}
		hyperTotal += hyper[i]
		amoebaTotal += amoeba[i]
		sumSpeedup += shuffle[i] / hyper[i]
	}
	// At micro scale the shuffle-avoidance gain on ultra-selective
	// templates (q19) can drop below Amoeba's extra pruning levels; the
	// paper-scale claim we hold is: hyper beats Amoeba on nearly all
	// templates and in total.
	if amoebaWins > 1 {
		t.Errorf("Amoeba beat hyper on %d of 7 templates; at most 1 tolerated", amoebaWins)
	}
	if hyperTotal >= amoebaTotal {
		t.Errorf("hyper total %.1f should beat Amoeba total %.1f", hyperTotal, amoebaTotal)
	}
	if avg := sumSpeedup / float64(len(hyper)); avg < 1.25 {
		t.Errorf("average hyper speedup %.2fx, paper reports 1.60x — too small", avg)
	}
}

func TestFig13aAdaptDBBeatsBaselines(t *testing.T) {
	res, err := Fig13a(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fsTotal, _ := Summarize(res.Series["FullScan"])
	rpTotal, rpPeak := Summarize(res.Series["Repartitioning"])
	adTotal, adPeak := Summarize(res.Series["AdaptDB"])
	if adTotal >= fsTotal {
		t.Errorf("AdaptDB total %.0f should beat FullScan %.0f", adTotal, fsTotal)
	}
	if adPeak >= rpPeak {
		t.Errorf("AdaptDB peak %.0f should be below Repartitioning's spike %.0f", adPeak, rpPeak)
	}
	if len(res.Series["AdaptDB"]) != 160 {
		t.Errorf("switching workload should have 160 queries, got %d", len(res.Series["AdaptDB"]))
	}
	_ = rpTotal
}

func TestFig13bAdaptDBBeatsFullScan(t *testing.T) {
	res, err := Fig13b(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fsTotal, _ := Summarize(res.Series["FullScan"])
	adTotal, adPeak := Summarize(res.Series["AdaptDB"])
	_, rpPeak := Summarize(res.Series["Repartitioning"])
	if adTotal >= fsTotal {
		t.Errorf("AdaptDB total %.0f should beat FullScan %.0f", adTotal, fsTotal)
	}
	if adPeak >= rpPeak {
		t.Errorf("AdaptDB peak %.0f should be below Repartitioning's %.0f", adPeak, rpPeak)
	}
	if len(res.Series["AdaptDB"]) != 140 {
		t.Errorf("shifting workload should have 140 queries, got %d", len(res.Series["AdaptDB"]))
	}
}

func TestFig14BufferMonotone(t *testing.T) {
	res, err := Fig14(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	blocks := res.Series["blocks"]
	for i := 1; i < len(blocks); i++ {
		if blocks[i] > blocks[i-1] {
			t.Errorf("probe blocks increased with larger buffer: %v", blocks)
		}
	}
	// Flattens: the last doubling should improve far less than the first.
	firstGain := blocks[0] - blocks[1]
	lastGain := blocks[len(blocks)-2] - blocks[len(blocks)-1]
	if lastGain > firstGain {
		t.Errorf("no flattening: first gain %.0f, last gain %.0f", firstGain, lastGain)
	}
}

func TestFig15WindowSizes(t *testing.T) {
	res, err := Fig15(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series["w5"]) != 70 || len(res.Series["w35"]) != 70 {
		t.Fatalf("workload should be 70 queries: %d / %d", len(res.Series["w5"]), len(res.Series["w35"]))
	}
	t5, _ := Summarize(res.Series["w5"])
	t35, _ := Summarize(res.Series["w35"])
	if t5 <= 0 || t35 <= 0 {
		t.Errorf("degenerate totals: %v %v", t5, t35)
	}
}

func TestFig16PredicateSweetSpot(t *testing.T) {
	cfg := testConfig()
	res, err := Fig16(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the grid minimum; with predicates the no-join corner (0,0)
	// must not be optimal (paper: minimum near half the levels).
	minV := 1e18
	for _, row := range res.Series {
		for _, v := range row {
			if v < minV {
				minV = v
			}
		}
	}
	zeroZero := res.Series["line0"][0]
	if minV >= zeroZero {
		t.Errorf("(0,0)=%v should be beaten by some join-level configuration (min=%v)", zeroZero, minV)
	}
}

func TestFig16NoPredicatesMoreLevelsBetter(t *testing.T) {
	cfg := testConfig()
	res, err := Fig16(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	// Without predicates the fully joined corner beats the unjoined one.
	maxLine := -1
	for name := range res.Series {
		var idx int
		if _, err := fmt.Sscanf(name, "line%d", &idx); err == nil && idx > maxLine {
			maxLine = idx
		}
	}
	firstRow := res.Series["line0"]
	lastRow := res.Series[fmt.Sprintf("line%d", maxLine)]
	if lastRow[len(lastRow)-1] > firstRow[0] {
		t.Errorf("full join levels %v should not read more than none %v",
			lastRow[len(lastRow)-1], firstRow[0])
	}
}

func TestFig17ApproxNearOptimalAndFast(t *testing.T) {
	cfg := testConfig()
	opt := Fig17Options{
		NBlocks: 32, MBlocks: 16, MaxSteps: 500_000,
		Buffers: []int{4, 8, 16, 32}, IncludeMIP: true,
	}
	res, err := Fig17(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Series["ilp"] {
		ilpCost := res.Series["ilp"][i]
		appCost := res.Series["approx"][i]
		if appCost < ilpCost {
			t.Errorf("buffer %d: approx %v beats exact incumbent %v — exact is broken", i, appCost, ilpCost)
		}
		if appCost > ilpCost*1.6 {
			t.Errorf("buffer %d: approx %v far from exact %v (paper: reasonably good)", i, appCost, ilpCost)
		}
		if res.Series["approx_ms"][i] > 100 {
			t.Errorf("approximate algorithm took %vms; paper: ~1ms", res.Series["approx_ms"][i])
		}
	}
	// The MIP formulation agrees with the specialized search.
	if res.Series["mip_small"][0] != res.Series["exact_small"][0] {
		t.Errorf("MIP %v != exact %v on the cross-check instance",
			res.Series["mip_small"][0], res.Series["exact_small"][0])
	}
}

func TestFig18CMTTrace(t *testing.T) {
	cfg := testConfig()
	res, err := Fig18(cfg, 1500)
	if err != nil {
		t.Fatal(err)
	}
	fsTotal, _ := Summarize(res.Series["FullScan"])
	adTotal, _ := Summarize(res.Series["AdaptDB"])
	if adTotal >= fsTotal {
		t.Errorf("AdaptDB %.0f should beat FullScan %.0f (paper: ≈2.1x)", adTotal, fsTotal)
	}
	// The paper's spike comparison concerns the adaptation period (the
	// full repartition lands around query 5, costing 2945s vs AdaptDB's
	// ≈400s/query overhead); the 30–50 big-scan batch spikes everyone, so
	// compare peaks over the first 15 queries only.
	_, adEarlyPeak := Summarize(res.Series["AdaptDB"][:15])
	_, rpEarlyPeak := Summarize(res.Series["Repartitioning"][:15])
	if adEarlyPeak >= rpEarlyPeak {
		t.Errorf("AdaptDB early peak %.1f should be below Repartitioning's spike %.1f", adEarlyPeak, rpEarlyPeak)
	}
	// AdaptDB converges toward the hand-tuned layout: its tail (after
	// adaptation) should be within 2x of BestGuess's tail.
	tailAD, _ := Summarize(res.Series["AdaptDB"][60:])
	tailBG, _ := Summarize(res.Series["BestGuess"][60:])
	if tailAD > tailBG*2 {
		t.Errorf("AdaptDB tail %.0f too far above BestGuess tail %.0f", tailAD, tailBG)
	}
	if len(res.Series["AdaptDB"]) != 103 {
		t.Errorf("trace should be 103 queries")
	}
}

func TestResultPrinting(t *testing.T) {
	res := &Result{Name: "x", Title: "t", Header: []string{"a", "b"}, Notes: "n"}
	res.AddRow("1", "2")
	var buf bytes.Buffer
	res.Fprint(&buf)
	if buf.Len() == 0 {
		t.Errorf("nothing printed")
	}
}
