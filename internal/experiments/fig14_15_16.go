package experiments

import (
	"fmt"
	"math/rand"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/tpch"
	"adaptdb/internal/tree"
	"adaptdb/internal/twophase"
	"adaptdb/internal/upfront"
)

// Fig14 reproduces Figure 14: join lineitem ⋈ orders with no selection
// predicates under two-phase partitioning, sweeping the hyper-join
// memory buffer. The paper sweeps 64 MB–16 GB and finds performance
// flattens past 4 GB because the number of orders blocks read stops
// shrinking; we sweep the buffer in blocks and report both the time and
// the probe-block count.
func Fig14(cfg Config) (*Result, error) {
	model := cfg.model()
	store := dfs.NewStore(model.Nodes, 2, cfg.Seed)
	d := tpch.Generate(cfg.SF, cfg.Seed)
	tb, err := tpch.LoadAll(store, d, tpch.LoadConfig{
		RowsPerBlock: cfg.RowsPerBlock,
		JoinAttrs:    map[string]int{"lineitem": tpch.LOrderKey, "orders": tpch.OOrderKey},
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "fig14",
		Title:  "Effect of varying hyper-join memory buffer (lineitem ⋈ orders, no predicates)",
		Header: []string{"buffer(blocks)", "sim-seconds", "orders-blocks-read"},
		Notes:  "paper: time and blocks-read improve with buffer size, flattening once sharing saturates (≈4GB there)",
	}
	lRefs := tb.Lineitem.Refs(0, nil)
	sRefs := tb.Orders.Refs(0, nil)
	for _, budget := range []int{1, 2, 4, 8, 16, 32, 64} {
		meter := &cluster.Meter{}
		ex := exec.New(store, meter)
		_, stats := ex.HyperJoin(lRefs, nil, tpch.LOrderKey, sRefs, nil, tpch.OOrderKey, budget)
		secs := meter.Snapshot().SimSeconds(model)
		res.AddRow(fi(budget), f1(secs), fi(stats.ProbeBlocks))
		res.AddSeries("seconds", secs)
		res.AddSeries("blocks", float64(stats.ProbeBlocks))
	}
	return res, nil
}

// Fig15 reproduces Figure 15: the 70-query q14↔q19 shifting workload
// under window sizes 5 and 35. Both templates join lineitem with part,
// so no join-attribute change is involved; the experiment isolates how
// the window size paces Amoeba-style selection adaptation — small
// windows converge faster but spike harder.
func Fig15(cfg Config) (*Result, error) {
	model := cfg.model()
	d := tpch.Generate(cfg.SF, cfg.Seed)
	res := &Result{
		Name:   "fig15",
		Title:  "Execution time while varying query-window length (q14 ↔ q19)",
		Header: []string{"query", "window=5", "window=35"},
		Notes:  "paper: the small window converges first but is more volatile",
	}
	series := make(map[int][]float64)
	for _, winSize := range []int{5, 35} {
		store := dfs.NewStore(model.Nodes, 2, cfg.Seed)
		tb, err := tpch.LoadAll(store, d, tpch.LoadConfig{
			RowsPerBlock: cfg.RowsPerBlock,
			// Both templates drive lineitem to partkey; start converged on
			// the join attribute so only selection adaptation is at play,
			// matching the experiment's intent.
			JoinAttrs: map[string]int{"lineitem": tpch.LPartKey, "part": tpch.PPartKey},
			Seed:      cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		opt := optimizer.New(optimizer.Config{
			Mode: optimizer.ModeAdaptive, WindowSize: winSize,
			EnableAmoeba: true, Seed: cfg.Seed,
		})
		meter := &cluster.Meter{}
		runner := planner.NewRunner(exec.New(store, meter), model)
		runner.BudgetBlocks = cfg.Budget
		rng := rand.New(rand.NewSource(cfg.Seed + 23))
		for _, tpl := range fig15Schedule(rng) {
			in := tpch.NewInstance(tpl, d, rng)
			if _, err := opt.OnQuery(in.Uses(tb), meter); err != nil {
				return nil, err
			}
			if _, _, err := runner.Run(in.Plan(tb)); err != nil {
				return nil, err
			}
			series[winSize] = append(series[winSize], meter.Reset().SimSeconds(model))
		}
	}
	for i := range series[5] {
		res.AddRow(fi(i), f1(series[5][i]), f1(series[35][i]))
	}
	t5, p5 := Summarize(series[5])
	t35, p35 := Summarize(series[35])
	res.AddRow("TOTAL", f1(t5), f1(t35))
	res.AddRow("PEAK", f1(p5), f1(p35))
	res.Series = map[string][]float64{"w5": series[5], "w35": series[35]}
	return res, nil
}

// fig15Schedule builds the §7.4 workload: 10×q14, 20-query shift to
// q19, 10×q19, 20-query shift back, 10×q14 (70 queries).
func fig15Schedule(rng *rand.Rand) []tpch.Template {
	var out []tpch.Template
	add := func(tpl tpch.Template, n int) {
		for i := 0; i < n; i++ {
			out = append(out, tpl)
		}
	}
	shift := func(from, to tpch.Template) {
		for i := 0; i < 20; i++ {
			if rng.Float64() < float64(i+1)/20 {
				out = append(out, to)
			} else {
				out = append(out, from)
			}
		}
	}
	add(tpch.Q14, 10)
	shift(tpch.Q14, tpch.Q19)
	add(tpch.Q19, 10)
	shift(tpch.Q19, tpch.Q14)
	add(tpch.Q14, 10)
	return out
}

// Fig16 reproduces Figure 16: the number of orders blocks scanned while
// probing hyper-join hash tables, sweeping how many tree levels are
// reserved for the join attribute in each table. Variant (a) uses the
// paper's handcrafted q10 without customer (selective predicates on both
// tables); variant (b) drops all predicates. The paper's finding: with
// predicates the minimum sits near half the levels; without predicates,
// more join levels monotonically help.
func Fig16(cfg Config, withPredicates bool) (*Result, error) {
	model := cfg.model()
	d := tpch.Generate(cfg.SF, cfg.Seed)
	// Tree depths at this scale.
	lineDepth := depthFor(len(d.Lineitem), cfg.RowsPerBlock)
	ordDepth := depthFor(len(d.Orders), cfg.RowsPerBlock)

	variant := "a-q10-predicates"
	if !withPredicates {
		variant = "b-no-predicates"
	}
	res := &Result{
		Name:   "fig16" + variant[:1],
		Title:  fmt.Sprintf("Join-attribute levels sweep (%s)", variant),
		Header: []string{"line-levels\\ord-levels"},
		Notes:  "cells: orders blocks read during hyper-join probes (paper Fig. 16: minimum near half levels with predicates)",
	}
	for jo := 0; jo <= ordDepth; jo++ {
		res.Header = append(res.Header, fi(jo))
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 29))
	in := tpch.NewInstance(tpch.Q10, d, rng) // q10 minus customer below
	if !withPredicates {
		in.LinePreds, in.OrdPreds = nil, nil
	}

	grid := make([][]float64, 0, lineDepth+1)
	for jl := 0; jl <= lineDepth; jl++ {
		row := []string{fi(jl)}
		var gridRow []float64
		for jo := 0; jo <= ordDepth; jo++ {
			store := dfs.NewStore(model.Nodes, 2, cfg.Seed)
			tb, err := tpch.LoadAll(store, d, tpch.LoadConfig{
				RowsPerBlock: cfg.RowsPerBlock,
				JoinAttrs:    map[string]int{"lineitem": tpch.LOrderKey, "orders": tpch.OOrderKey},
				JoinLevels:   1, // overridden per table below
				Seed:         cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			// Rebuild the two trees with the exact level splits under test.
			if err := rebuildWithLevels(tb.Lineitem, tpch.LOrderKey, jl, lineDepth, cfg.Seed); err != nil {
				return nil, err
			}
			if err := rebuildWithLevels(tb.Orders, tpch.OOrderKey, jo, ordDepth, cfg.Seed); err != nil {
				return nil, err
			}
			meter := &cluster.Meter{}
			ex := exec.New(store, meter)
			lRefs := tb.Lineitem.Refs(0, in.LinePreds)
			sRefs := tb.Orders.Refs(0, in.OrdPreds)
			_, stats := ex.HyperJoin(lRefs, in.LinePreds, tpch.LOrderKey, sRefs, in.OrdPreds, tpch.OOrderKey, cfg.Budget)
			row = append(row, fi(stats.ProbeBlocks))
			gridRow = append(gridRow, float64(stats.ProbeBlocks))
		}
		res.Rows = append(res.Rows, row)
		grid = append(grid, gridRow)
		res.AddSeries(fmt.Sprintf("line%d", jl), gridRow...)
	}
	_ = grid
	return res, nil
}

func depthFor(rows, perBlock int) int {
	d := 0
	need := (rows + perBlock - 1) / perBlock
	for (1 << d) < need {
		d++
	}
	return d
}

// rebuildWithLevels replaces a table's tree with a fresh two-phase tree
// using exactly `join` of `total` levels on the join attribute (join=0
// builds a selection-only tree).
func rebuildWithLevels(tbl *core.Table, attr, join, total int, seed int64) error {
	var nt *tree.Tree
	if join <= 0 {
		var sel []int
		for i := 0; i < tbl.Schema.NumCols(); i++ {
			if i != attr {
				sel = append(sel, i)
			}
		}
		nt = upfront.Builder{Schema: tbl.Schema, Attrs: sel, Depth: total, Seed: seed}.Build(tbl.SampleRows)
	} else {
		nt = twophase.Builder{
			Schema: tbl.Schema, JoinAttr: attr, JoinLevels: join,
			TotalDepth: total, Seed: seed,
		}.Build(tbl.SampleRows)
	}
	return tbl.ReplaceTreeData(0, nt, nil)
}
