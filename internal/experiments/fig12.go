package experiments

import (
	"fmt"
	"math/rand"

	"adaptdb/internal/baselines"
	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tpch"
)

// Fig12 reproduces Figure 12: per-template execution time on TPC-H for
// four systems — AdaptDB with hyper-join, AdaptDB with shuffle join,
// Amoeba (selection-only partitioning + shuffle joins), and PREF
// (reference partitioning with replication). As in the paper, each
// template runs against a layout already converged for it ("we ran the
// smooth partitioning algorithm for several iterations until just one
// tree with the join attribute existed"), and the reported number is
// the average of several parameterized instances.
func Fig12(cfg Config) (*Result, error) {
	model := cfg.model()
	d := tpch.Generate(cfg.SF, cfg.Seed)
	const runsPerTemplate = 3
	// Deeper trees than the adaptive-workload experiments: the paper's
	// SF-1000 trees have ~14 levels, leaving room for both join and
	// selection levels; quarter-size blocks approximate that here. The
	// same memory budget therefore holds 4x as many blocks.
	cfg.RowsPerBlock = maxInt(cfg.RowsPerBlock/4, 32)
	cfg.Budget *= 4

	res := &Result{
		Name:   "fig12",
		Title:  "Execution time for queries on TPC-H (sim-seconds)",
		Header: []string{"query", "AdaptDB/Hyper", "AdaptDB/Shuffle", "Amoeba", "PREF", "hyper-vs-shuffle"},
		Notes:  "paper: hyper-join 1.60x faster than shuffle on average (max 2.16x), always beats PREF",
	}

	pref := baselines.BuildPREF(d, prefPartitions(cfg))

	for _, tpl := range tpch.JoinTemplates {
		joinAttr := tpch.LineitemJoinAttrFor(tpl)
		// Layouts converged for this template: the paper runs the adaptive
		// partitioner "for several iterations until just one tree with the
		// join attribute existed", which also settles the selection levels
		// on the template's predicate columns.
		selAttrs := templatePredColumns(tpl, d)
		adaptStore := dfs.NewStore(model.Nodes, 2, cfg.Seed)
		adaptTables, err := tpch.LoadAll(adaptStore, d, tpch.LoadConfig{
			RowsPerBlock: cfg.RowsPerBlock,
			JoinAttrs: map[string]int{
				"lineitem": joinAttr,
				"orders":   ordersAttrFor(tpl),
				"customer": tpch.CCustKey,
				"part":     tpch.PPartKey,
			},
			Attrs: selAttrs,
			Seed:  cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Amoeba layout: selection-only trees (no join attribute), equally
		// converged on the template's predicate columns.
		amoebaStore := dfs.NewStore(model.Nodes, 2, cfg.Seed+1)
		amoebaTables, err := tpch.LoadAll(amoebaStore, d, tpch.LoadConfig{
			RowsPerBlock: cfg.RowsPerBlock,
			Attrs:        selAttrs,
			Seed:         cfg.Seed + 1,
		})
		if err != nil {
			return nil, err
		}

		var hyperS, shuffleS, amoebaS, prefS float64
		rng := rand.New(rand.NewSource(cfg.Seed + 100))
		for run := 0; run < runsPerTemplate; run++ {
			in := tpch.NewInstance(tpl, d, rng)

			meter := &cluster.Meter{}
			runner := planner.NewRunner(exec.New(adaptStore, meter), model)
			runner.BudgetBlocks = cfg.Budget
			if _, _, err := runner.Run(in.Plan(adaptTables)); err != nil {
				return nil, err
			}
			hyperS += meter.Reset().SimSeconds(model)

			runner.ForceShuffle = true
			if _, _, err := runner.Run(in.Plan(adaptTables)); err != nil {
				return nil, err
			}
			shuffleS += meter.Reset().SimSeconds(model)

			aMeter := &cluster.Meter{}
			aRunner := planner.NewRunner(exec.New(amoebaStore, aMeter), model)
			aRunner.ForceShuffle = true
			if _, _, err := aRunner.Run(in.Plan(amoebaTables)); err != nil {
				return nil, err
			}
			amoebaS += aMeter.Reset().SimSeconds(model)

			pMeter := &cluster.Meter{}
			if _, err := pref.Run(in, pMeter); err != nil {
				return nil, err
			}
			prefS += pMeter.Snapshot().SimSeconds(model)
		}
		hyperS /= runsPerTemplate
		shuffleS /= runsPerTemplate
		amoebaS /= runsPerTemplate
		prefS /= runsPerTemplate

		res.AddRow(string(tpl), f1(hyperS), f1(shuffleS), f1(amoebaS), f1(prefS),
			fmt.Sprintf("%.2fx", shuffleS/hyperS))
		res.AddSeries("hyper", hyperS)
		res.AddSeries("shuffle", shuffleS)
		res.AddSeries("amoeba", amoebaS)
		res.AddSeries("pref", prefS)
		res.AddSeries("speedup", shuffleS/hyperS)
	}
	return res, nil
}

// templatePredColumns extracts, per table, the columns a template's
// predicates touch — the selection attributes a converged layout would
// carry.
func templatePredColumns(tpl tpch.Template, d *tpch.Dataset) map[string][]int {
	rng := rand.New(rand.NewSource(1))
	in := tpch.NewInstance(tpl, d, rng)
	cols := func(preds []predicate.Predicate) []int {
		seen := map[int]bool{}
		var out []int
		for _, p := range preds {
			if !seen[p.Col] {
				seen[p.Col] = true
				out = append(out, p.Col)
			}
		}
		return out
	}
	out := make(map[string][]int)
	if c := cols(in.LinePreds); len(c) > 0 {
		out["lineitem"] = c
	}
	if c := cols(in.OrdPreds); len(c) > 0 {
		out["orders"] = c
	}
	if c := cols(in.CustPreds); len(c) > 0 {
		out["customer"] = c
	}
	if c := cols(in.PartPreds); len(c) > 0 {
		out["part"] = c
	}
	return out
}

// ordersAttrFor picks the converged orders-tree attribute per template:
// orderkey when orders joins lineitem, custkey for q8's (orders ⋈
// customer) pairing.
func ordersAttrFor(tpl tpch.Template) int {
	if tpl == tpch.Q8 {
		return tpch.OCustKey
	}
	return tpch.OOrderKey
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// prefPartitions scales the paper's 200-partition PREF setting to the
// experiment's data size: roughly one partition per four blocks of
// lineitem, at least 8.
func prefPartitions(cfg Config) int {
	_, orders, _, _, _ := tpch.Counts(cfg.SF)
	k := orders * 4 / (cfg.RowsPerBlock * 4)
	if k < 8 {
		k = 8
	}
	if k > 200 {
		k = 200
	}
	return k
}
