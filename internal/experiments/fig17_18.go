package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/cmt"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/hyperjoin"
	"adaptdb/internal/ilp"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
)

// Fig17Options sizes the ILP-vs-approximate comparison. The paper uses
// TPC-H SF 10 with 128 lineitem and 32 orders blocks, sweeping the
// buffer over {16, 32, 64, 128}; GLPK needed ~20 minutes at 32 and did
// not finish 96 hours at 16. Our exact branch-and-bound gets a step
// budget instead of a wall-clock budget so runs stay reproducible.
type Fig17Options struct {
	NBlocks    int   // lineitem blocks (paper: 128)
	MBlocks    int   // orders blocks (paper: 32)
	MaxSteps   int64 // exact-search step cap per buffer size
	Buffers    []int
	IncludeMIP bool // additionally validate the §4.1.2 MIP at small scale
}

// DefaultFig17Options mirrors the paper's instance sizes.
func DefaultFig17Options() Fig17Options {
	return Fig17Options{
		NBlocks:  128,
		MBlocks:  32,
		MaxSteps: 2_000_000,
		Buffers:  []int{16, 32, 64, 128},
	}
}

// fig17Overlaps builds the overlap structure of two-phase-partitioned
// lineitem/orders blocks: each of n build blocks covers a contiguous
// key interval that overlaps a handful of the m probe blocks, with
// jittered boundaries as real median cuts produce.
func fig17Overlaps(n, m int, seed int64) []hyperjoin.BitVec {
	rng := rand.New(rand.NewSource(seed))
	const keys = 1 << 20
	rSpan := keys / n
	sSpan := keys / m
	rRanges := make([]predicate.Range, n)
	for i := 0; i < n; i++ {
		lo := int64(i*rSpan) - rng.Int63n(int64(rSpan/4+1))
		hi := int64((i+1)*rSpan) + rng.Int63n(int64(rSpan/4+1))
		rRanges[i] = predicate.Closed(value.NewInt(lo), value.NewInt(hi))
	}
	sRanges := make([]predicate.Range, m)
	for j := 0; j < m; j++ {
		lo := int64(j*sSpan) - rng.Int63n(int64(sSpan/4+1))
		hi := int64((j+1)*sSpan) + rng.Int63n(int64(sSpan/4+1))
		sRanges[j] = predicate.Closed(value.NewInt(lo), value.NewInt(hi))
	}
	return hyperjoin.OverlapVectors(rRanges, sRanges)
}

// Fig17 reproduces Figure 17: solution quality (orders blocks read) and
// optimizer runtime for the exact ILP-style optimizer versus the
// approximate bottom-up algorithm, sweeping the buffer size.
func Fig17(cfg Config, opt Fig17Options) (*Result, error) {
	if opt.NBlocks == 0 {
		opt = DefaultFig17Options()
	}
	V := fig17Overlaps(opt.NBlocks, opt.MBlocks, cfg.Seed)
	res := &Result{
		Name:   "fig17",
		Title:  fmt.Sprintf("ILP vs approximate grouping (%d lineitem / %d orders blocks)", opt.NBlocks, opt.MBlocks),
		Header: []string{"buffer", "ILP-blocks", "Approx-blocks", "ILP-ms", "Approx-ms", "ILP-optimal"},
		Notes:  "paper: approximate is near-optimal and runs in ~1ms; exact needs minutes-to-days and times out at the smallest buffer",
	}
	for _, B := range opt.Buffers {
		t0 := time.Now()
		exact := hyperjoin.Exact(V, B, hyperjoin.ExactOptions{MaxSteps: opt.MaxSteps})
		exactMS := float64(time.Since(t0).Microseconds()) / 1000

		t0 = time.Now()
		approx := hyperjoin.BottomUp(V, B)
		approxMS := float64(time.Since(t0).Microseconds()) / 1000
		approxCost := hyperjoin.Cost(approx, V)

		optimal := "yes"
		if !exact.Optimal {
			optimal = "TIMEOUT"
		}
		res.AddRow(fi(B), fi(exact.Cost), fi(approxCost), f2(exactMS), f2(approxMS), optimal)
		res.AddSeries("ilp", float64(exact.Cost))
		res.AddSeries("approx", float64(approxCost))
		res.AddSeries("ilp_ms", exactMS)
		res.AddSeries("approx_ms", approxMS)
	}
	if opt.IncludeMIP {
		// Validate the literal §4.1.2 MIP formulation with the LP-based
		// branch-and-bound at reduced scale.
		smallV := fig17Overlaps(16, 8, cfg.Seed+1)
		mip := hyperjoin.SolveMIP(smallV, 4, ilp.Options{MaxNodes: 50000})
		exact := hyperjoin.Exact(smallV, 4, hyperjoin.ExactOptions{})
		res.Notes += fmt.Sprintf("\nMIP cross-check (16/8 blocks, B=4): MIP=%d exact=%d optimal=%v",
			mip.Cost, exact.Cost, mip.Optimal)
		res.AddSeries("mip_small", float64(mip.Cost))
		res.AddSeries("exact_small", float64(exact.Cost))
	}
	return res, nil
}

// Fig18 reproduces Figure 18: the 103-query CMT trace under Full Scan,
// full Repartitioning, hand-tuned "Best Guess" fixed partitioning, and
// AdaptDB. The paper reports AdaptDB finishing the trace in less than
// half the Full Scan time, adapting within the first ~10 queries, with
// the Repartitioning baseline paying one huge spike at query 5 and the
// 30–50 batch spiking for everyone.
func Fig18(cfg Config, numTrips int) (*Result, error) {
	model := cfg.model()
	if numTrips <= 0 {
		numTrips = 4000
	}
	d := cmt.Generate(numTrips, cfg.Seed)
	trace := cmt.Trace(d, cfg.Seed+1)

	type sys struct {
		name      string
		mode      optimizer.Mode
		bestGuess bool
		noPrune   bool
		shuffle   bool
	}
	systems := []sys{
		{name: "FullScan", mode: optimizer.ModeStatic, noPrune: true, shuffle: true},
		{name: "Repartitioning", mode: optimizer.ModeFullRepartition},
		{name: "BestGuess", mode: optimizer.ModeStatic, bestGuess: true},
		{name: "AdaptDB", mode: optimizer.ModeAdaptive},
	}
	series := make(map[string][]float64)
	for _, s := range systems {
		store := dfs.NewStore(model.Nodes, 2, cfg.Seed)
		lcfg := cmt.LoadConfig{RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed}
		if s.bestGuess {
			lcfg.JoinAttrs, lcfg.Attrs = cmt.BestGuessAttrs()
		}
		tb, err := cmt.LoadAll(store, d, lcfg)
		if err != nil {
			return nil, err
		}
		opt := optimizer.New(optimizer.Config{Mode: s.mode, WindowSize: 10, Seed: cfg.Seed})
		meter := &cluster.Meter{}
		ex := exec.New(store, meter)
		ex.NoPrune = s.noPrune
		runner := planner.NewRunner(ex, model)
		runner.BudgetBlocks = cfg.Budget
		runner.ForceShuffle = s.shuffle
		for i := range trace {
			q := trace[i]
			if _, err := opt.OnQuery(q.Uses(tb), meter); err != nil {
				return nil, err
			}
			if _, _, err := runner.Run(q.Plan(tb)); err != nil {
				return nil, err
			}
			series[s.name] = append(series[s.name], meter.Reset().SimSeconds(model))
		}
	}

	res := &Result{
		Name:   "fig18",
		Title:  "Execution time on the CMT trace (103 queries, sim-seconds per query)",
		Header: []string{"query", "FullScan", "Repartitioning", "BestGuess", "AdaptDB"},
		Notes:  "paper: AdaptDB ≈2.1x faster than full scan overall; converges to the hand-tuned layout within ~10 queries",
	}
	for i := range trace {
		res.AddRow(fi(i),
			f1(series["FullScan"][i]), f1(series["Repartitioning"][i]),
			f1(series["BestGuess"][i]), f1(series["AdaptDB"][i]))
	}
	var totals [4]float64
	for i := range trace {
		totals[0] += series["FullScan"][i]
		totals[1] += series["Repartitioning"][i]
		totals[2] += series["BestGuess"][i]
		totals[3] += series["AdaptDB"][i]
	}
	res.AddRow("TOTAL", f1(totals[0]), f1(totals[1]), f1(totals[2]), f1(totals[3]))
	res.Series = series
	return res, nil
}
