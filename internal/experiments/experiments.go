// Package experiments contains one reproducible harness per table and
// figure in the paper's evaluation (§7). Each harness builds its
// workload from scratch (deterministic seeds), runs it through the full
// AdaptDB stack, and returns a Result whose rows mirror the series the
// paper plots. Absolute magnitudes are simulated seconds from the §4.2
// cost model; the shapes (who wins, by what factor, where curves bend)
// are the reproduction targets — see EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"adaptdb/internal/cluster"
)

// Config holds the common experiment knobs.
type Config struct {
	// SF is the TPC-H scale factor (micro scale; SF 1 ≈ 6M lineitems).
	SF float64
	// RowsPerBlock is the block size analogue.
	RowsPerBlock int
	// Budget is the hyper-join memory budget in blocks (the paper's
	// default splits 4 GB buffers over 64 MB-ish blocks; 8 at our scale).
	Budget int
	// Nodes is the simulated cluster size.
	Nodes int
	// Seed drives all generators.
	Seed int64
	// Model is the cost model (defaults to cluster.Default with Nodes).
	Model cluster.CostModel
}

// DefaultConfig returns the configuration used by the bench harness:
// small enough to run every figure in seconds, large enough that tables
// span dozens of blocks.
func DefaultConfig() Config {
	m := cluster.Default()
	return Config{
		SF:           0.002, // ≈12k lineitem rows
		RowsPerBlock: 256,
		Budget:       8,
		Nodes:        m.Nodes,
		Seed:         42,
		Model:        m,
	}
}

func (c Config) model() cluster.CostModel {
	m := c.Model
	if m.Nodes == 0 {
		m = cluster.Default()
	}
	if c.Nodes > 0 {
		m.Nodes = c.Nodes
	}
	return m
}

// Result is a printable experiment outcome: a header row plus data rows,
// with the raw numeric series kept for tests and benches.
type Result struct {
	Name   string
	Title  string
	Header []string
	Rows   [][]string
	// Series holds named numeric columns for programmatic checks.
	Series map[string][]float64
	Notes  string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddSeries appends values to a named series.
func (r *Result) AddSeries(name string, vs ...float64) {
	if r.Series == nil {
		r.Series = make(map[string][]float64)
	}
	r.Series[name] = append(r.Series[name], vs...)
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.Name, r.Title)
	if r.Notes != "" {
		fmt.Fprintf(w, "%s\n", r.Notes)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(r.Header)
	printRow(dashes(widths))
	for _, row := range r.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func fi(v int) string     { return fmt.Sprintf("%d", v) }
