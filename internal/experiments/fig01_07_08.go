package experiments

import (
	"fmt"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/planner"
	"adaptdb/internal/tpch"
)

// Fig01 reproduces Figure 1: a shuffle join versus a co-partitioned join
// of lineitem ⋈ orders with no predicates. The paper measures the
// co-partitioned join at almost 2× faster; here the co-partitioned case
// runs as a hyper-join with CHyJ ≈ 1.
func Fig01(cfg Config) (*Result, error) {
	model := cfg.model()
	store := dfs.NewStore(model.Nodes, 2, cfg.Seed)
	d := tpch.Generate(cfg.SF, cfg.Seed)
	tb, err := tpch.LoadAll(store, d, tpch.LoadConfig{
		RowsPerBlock: cfg.RowsPerBlock,
		JoinAttrs:    map[string]int{"lineitem": tpch.LOrderKey, "orders": tpch.OOrderKey},
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	meter := &cluster.Meter{}
	runner := planner.NewRunner(exec.New(store, meter), model)
	runner.BudgetBlocks = cfg.Budget
	plan := &planner.Join{
		Left:  &planner.Scan{Table: tb.Lineitem},
		Right: &planner.Scan{Table: tb.Orders},
		LCol:  tpch.LOrderKey, RCol: tpch.OOrderKey,
	}

	runner.ForceShuffle = true
	if _, _, err := runner.Run(plan); err != nil {
		return nil, err
	}
	shuffle := meter.Reset().SimSeconds(model)

	runner.ForceShuffle = false
	_, rep, err := runner.Run(plan)
	if err != nil {
		return nil, err
	}
	coPart := meter.Reset().SimSeconds(model)

	res := &Result{
		Name:   "fig01",
		Title:  "Shuffle vs co-partitioned joins (lineitem ⋈ orders)",
		Header: []string{"join", "sim-seconds"},
		Notes:  fmt.Sprintf("co-partitioned runs as hyper-join, CHyJ=%.2f; paper: co-partitioned ≈2x faster", rep.Joins[0].CHyJ),
	}
	res.AddRow("Shuffle Join", f1(shuffle))
	res.AddRow("Co-partitioned Join", f1(coPart))
	res.AddSeries("shuffle", shuffle)
	res.AddSeries("copartitioned", coPart)
	return res, nil
}

// Fig07 reproduces Figure 7: response time of a map-only scan while
// varying HDFS data locality (100/71/46/27% local). The paper's point:
// even at 27% locality the job is only ≈18% slower, justifying a cost
// model that nearly ignores locality.
func Fig07(cfg Config) (*Result, error) {
	model := cfg.model()
	res := &Result{
		Name:   "fig07",
		Title:  "Varying data locality (map-only scan)",
		Header: []string{"locality", "sim-seconds", "slowdown"},
		Notes:  "paper: 27% locality is just 18% slower than 100%",
	}
	var base float64
	for _, pct := range []int{100, 71, 46, 27} {
		store := dfs.NewStore(model.Nodes, 1, cfg.Seed)
		d := tpch.Generate(cfg.SF, cfg.Seed)
		tb, err := tpch.LoadAll(store, d, tpch.LoadConfig{
			RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Force the locality fraction: tasks run round-robin over nodes;
		// the first pct% of blocks are placed on their task's node, the
		// rest elsewhere.
		refs := tb.Lineitem.AllRefs(nil)
		for i, ref := range refs {
			taskNode := dfs.NodeID(i % model.Nodes)
			local := i*100 < pct*len(refs)
			place := taskNode
			if !local {
				place = dfs.NodeID((int(taskNode) + 1) % model.Nodes)
			}
			if err := store.SetPlacement(ref.Path, []dfs.NodeID{place}); err != nil {
				return nil, err
			}
		}
		meter := &cluster.Meter{}
		ex := exec.New(store, meter)
		ex.RoundRobin = true
		ex.ScanRefs(refs, nil)
		secs := meter.Snapshot().SimSeconds(model)
		if pct == 100 {
			base = secs
		}
		res.AddRow(fmt.Sprintf("%d%%", pct), f1(secs), fmt.Sprintf("%.2fx", secs/base))
		res.AddSeries("seconds", secs)
		res.AddSeries("slowdown", secs/base)
	}
	return res, nil
}

// Fig08 reproduces Figure 8: shuffle-join running time while growing the
// dataset (the paper uses 175–580 GB; we scale SF 1×–4×). The paper's
// point: running time is linear in dataset size, validating the
// blocks-read cost model.
func Fig08(cfg Config) (*Result, error) {
	model := cfg.model()
	res := &Result{
		Name:   "fig08",
		Title:  "Varying dataset size (shuffle join, lineitem ⋈ orders)",
		Header: []string{"scale", "rows", "sim-seconds"},
		Notes:  "paper: running time grows linearly with dataset size",
	}
	for mult := 1; mult <= 4; mult++ {
		sf := cfg.SF * float64(mult)
		store := dfs.NewStore(model.Nodes, 2, cfg.Seed)
		d := tpch.Generate(sf, cfg.Seed)
		tb, err := tpch.LoadAll(store, d, tpch.LoadConfig{
			RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		meter := &cluster.Meter{}
		runner := planner.NewRunner(exec.New(store, meter), model)
		runner.ForceShuffle = true
		plan := &planner.Join{
			Left:  &planner.Scan{Table: tb.Lineitem},
			Right: &planner.Scan{Table: tb.Orders},
			LCol:  tpch.LOrderKey, RCol: tpch.OOrderKey,
		}
		if _, _, err := runner.Run(plan); err != nil {
			return nil, err
		}
		secs := meter.Snapshot().SimSeconds(model)
		res.AddRow(fmt.Sprintf("%dx", mult), fi(len(d.Lineitem)+len(d.Orders)), f1(secs))
		res.AddSeries("seconds", secs)
		res.AddSeries("rows", float64(len(d.Lineitem)+len(d.Orders)))
	}
	return res, nil
}
