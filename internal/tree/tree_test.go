package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptdb/internal/block"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

var sch = schema.MustNew(
	schema.Column{Name: "a", Kind: value.Int},
	schema.Column{Name: "b", Kind: value.Int},
	schema.Column{Name: "c", Kind: value.Int},
)

// figure3Tree builds the paper's Figure 3(a) shape: root on A, then B|C,
// with 8 leaves 0..7.
func figure3Tree() *Tree {
	leaf := func(b block.ID) *Node { return &Node{Leaf: true, Bucket: b} }
	iv := func(i int64) value.Value { return value.NewInt(i) }
	root := &Node{
		Attr: 0, Cut: iv(50),
		Left: &Node{
			Attr: 1, Cut: iv(30),
			Left:  &Node{Attr: 2, Cut: iv(10), Left: leaf(0), Right: leaf(1)},
			Right: &Node{Attr: 2, Cut: iv(10), Left: leaf(2), Right: leaf(3)},
		},
		Right: &Node{
			Attr: 1, Cut: iv(70),
			Left:  &Node{Attr: 2, Cut: iv(10), Left: leaf(4), Right: leaf(5)},
			Right: &Node{Attr: 2, Cut: iv(10), Left: leaf(6), Right: leaf(7)},
		},
	}
	return NewWithRoot(sch, root, -1, 0)
}

func row(a, b, c int64) tuple.Tuple {
	return tuple.Tuple{value.NewInt(a), value.NewInt(b), value.NewInt(c)}
}

func TestNewLeaf(t *testing.T) {
	tr := NewLeaf(sch)
	if tr.NumBuckets() != 1 || tr.Depth() != 0 {
		t.Fatalf("leaf tree: buckets=%d depth=%d", tr.NumBuckets(), tr.Depth())
	}
	if got := tr.Route(row(1, 2, 3)); got != 0 {
		t.Errorf("Route = %d, want 0", got)
	}
	if tr.NextBucket() != 1 {
		t.Errorf("NextBucket = %d, want 1", tr.NextBucket())
	}
}

func TestRoute(t *testing.T) {
	tr := figure3Tree()
	cases := []struct {
		tp   tuple.Tuple
		want block.ID
	}{
		{row(10, 10, 5), 0},  // a≤50, b≤30, c≤10
		{row(10, 10, 50), 1}, // a≤50, b≤30, c>10
		{row(10, 40, 5), 2},
		{row(10, 40, 50), 3},
		{row(90, 60, 5), 4},
		{row(90, 60, 50), 5},
		{row(90, 80, 5), 6},
		{row(90, 80, 50), 7},
		{row(50, 30, 10), 0}, // boundary: ≤ goes left everywhere
	}
	for _, c := range cases {
		if got := tr.Route(c.tp); got != c.want {
			t.Errorf("Route(%v) = %d, want %d", c.tp, got, c.want)
		}
	}
}

func TestBucketsAndDepth(t *testing.T) {
	tr := figure3Tree()
	bs := tr.Buckets()
	if len(bs) != 8 {
		t.Fatalf("buckets = %v", bs)
	}
	for i, b := range bs {
		if b != block.ID(i) {
			t.Fatalf("buckets not dense/sorted: %v", bs)
		}
	}
	if tr.Depth() != 3 {
		t.Errorf("depth = %d, want 3", tr.Depth())
	}
	if tr.NumBuckets() != 8 {
		t.Errorf("NumBuckets = %d", tr.NumBuckets())
	}
	if tr.NextBucket() != 8 {
		t.Errorf("NextBucket = %d, want 8", tr.NextBucket())
	}
}

func TestLookupPrunes(t *testing.T) {
	tr := figure3Tree()
	// a > 50 keeps only the right half (buckets 4..7): skips 50% as §3.1 says.
	got := tr.Lookup([]predicate.Predicate{predicate.NewCmp(0, predicate.GT, value.NewInt(50))})
	if len(got) != 4 || got[0] != 4 || got[3] != 7 {
		t.Errorf("Lookup(a>50) = %v", got)
	}
	// a ≤ 50 AND b ≤ 30: buckets 0,1.
	got = tr.Lookup([]predicate.Predicate{
		predicate.NewCmp(0, predicate.LE, value.NewInt(50)),
		predicate.NewCmp(1, predicate.LE, value.NewInt(30)),
	})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Lookup(a<=50,b<=30) = %v", got)
	}
	// No predicates: everything.
	if got = tr.Lookup(nil); len(got) != 8 {
		t.Errorf("Lookup(nil) = %v", got)
	}
	// Point query routes to exactly one bucket per attribute chain.
	got = tr.Lookup([]predicate.Predicate{
		predicate.NewCmp(0, predicate.EQ, value.NewInt(10)),
		predicate.NewCmp(1, predicate.EQ, value.NewInt(10)),
		predicate.NewCmp(2, predicate.EQ, value.NewInt(5)),
	})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("point lookup = %v", got)
	}
}

// Property: Lookup is sound — the bucket Route() assigns to a tuple
// always appears in Lookup(preds) whenever the tuple matches preds.
func TestLookupSoundQuick(t *testing.T) {
	tr := figure3Tree()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := row(rng.Int63n(100), rng.Int63n(100), rng.Int63n(60))
		ops := []predicate.Op{predicate.EQ, predicate.LT, predicate.LE, predicate.GT, predicate.GE}
		var preds []predicate.Predicate
		for i := 0; i < rng.Intn(4); i++ {
			preds = append(preds, predicate.NewCmp(rng.Intn(3), ops[rng.Intn(len(ops))], value.NewInt(rng.Int63n(100))))
		}
		if !predicate.MatchesAll(preds, tp) {
			return true
		}
		want := tr.Route(tp)
		for _, b := range tr.Lookup(preds) {
			if b == want {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestPathRange(t *testing.T) {
	tr := figure3Tree()
	pr := tr.PathRange()
	if len(pr) != 8 {
		t.Fatalf("PathRange has %d buckets", len(pr))
	}
	// Bucket 0: a ≤ 50, b ≤ 30, c ≤ 10.
	b0 := pr[0]
	if !b0[0].Contains(value.NewInt(50)) || b0[0].Contains(value.NewInt(51)) {
		t.Errorf("bucket 0 range for a wrong: %v", b0[0])
	}
	if !b0[1].Contains(value.NewInt(30)) || b0[1].Contains(value.NewInt(31)) {
		t.Errorf("bucket 0 range for b wrong: %v", b0[1])
	}
	// Bucket 7: a > 50, b > 70, c > 10.
	b7 := pr[7]
	if b7[0].Contains(value.NewInt(50)) || !b7[0].Contains(value.NewInt(51)) {
		t.Errorf("bucket 7 range for a wrong: %v", b7[0])
	}
	if b7[2].Contains(value.NewInt(10)) || !b7[2].Contains(value.NewInt(11)) {
		t.Errorf("bucket 7 range for c wrong: %v", b7[2])
	}
}

// Property: a tuple's routed bucket's path ranges always contain the
// tuple's attribute values.
func TestPathRangeConsistentWithRouteQuick(t *testing.T) {
	tr := figure3Tree()
	pr := tr.PathRange()
	f := func(a, b, c int16) bool {
		tp := row(int64(a), int64(b), int64(c))
		bucket := tr.Route(tp)
		for col, r := range pr[bucket] {
			if !r.Contains(tp[col]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitLeaf(t *testing.T) {
	tr := NewLeaf(sch)
	right, err := tr.SplitLeaf(0, 1, value.NewInt(10))
	if err != nil {
		t.Fatalf("SplitLeaf: %v", err)
	}
	if right != 1 {
		t.Errorf("new bucket = %d, want 1", right)
	}
	if tr.NumBuckets() != 2 || tr.Depth() != 1 {
		t.Errorf("after split: buckets=%d depth=%d", tr.NumBuckets(), tr.Depth())
	}
	if got := tr.Route(row(0, 5, 0)); got != 0 {
		t.Errorf("b<=10 should stay in bucket 0, got %d", got)
	}
	if got := tr.Route(row(0, 50, 0)); got != 1 {
		t.Errorf("b>10 should route to bucket 1, got %d", got)
	}
	if _, err := tr.SplitLeaf(99, 0, value.NewInt(0)); err == nil {
		t.Errorf("splitting unknown bucket should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := figure3Tree()
	cl := tr.Clone()
	if _, err := cl.SplitLeaf(0, 2, value.NewInt(5)); err != nil {
		t.Fatalf("SplitLeaf on clone: %v", err)
	}
	if tr.NumBuckets() != 8 {
		t.Errorf("mutating clone changed original")
	}
	if cl.NumBuckets() != 9 {
		t.Errorf("clone split failed")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	tr := figure3Tree()
	tr.JoinAttr = 1
	tr.JoinLevels = 2
	buf := tr.AppendBinary(nil)
	got, err := Decode(buf, sch)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.JoinAttr != 1 || got.JoinLevels != 2 {
		t.Errorf("header lost: %+v", got)
	}
	if got.NextBucket() != tr.NextBucket() {
		t.Errorf("nextBucket lost")
	}
	if got.String() != tr.String() {
		t.Errorf("structure changed:\n got %s\nwant %s", got.String(), tr.String())
	}
	// Routing behaviour identical.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		tp := row(rng.Int63n(100), rng.Int63n(100), rng.Int63n(60))
		if got.Route(tp) != tr.Route(tp) {
			t.Fatalf("decoded tree routes differently for %v", tp)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil, sch); err == nil {
		t.Errorf("empty input accepted")
	}
	tr := figure3Tree()
	buf := tr.AppendBinary(nil)
	if _, err := Decode(buf[:len(buf)-1], sch); err == nil {
		t.Errorf("truncated tree accepted")
	}
	if _, err := Decode(append(buf, 0), sch); err == nil {
		t.Errorf("trailing bytes accepted")
	}
}

func TestAttrLevels(t *testing.T) {
	tr := figure3Tree()
	al := tr.AttrLevels()
	if al[0] != 1 || al[1] != 2 || al[2] != 4 {
		t.Errorf("AttrLevels = %v, want map[0:1 1:2 2:4]", al)
	}
}

func TestFindLeaf(t *testing.T) {
	tr := figure3Tree()
	if n := tr.FindLeaf(3); n == nil || !n.Leaf || n.Bucket != 3 {
		t.Errorf("FindLeaf(3) = %+v", n)
	}
	if tr.FindLeaf(42) != nil {
		t.Errorf("FindLeaf(42) should be nil")
	}
}

func TestString(t *testing.T) {
	tr := NewLeaf(sch)
	if tr.String() != "b0" {
		t.Errorf("leaf String = %q", tr.String())
	}
	tr.SplitLeaf(0, 0, value.NewInt(5))
	want := "(a<=5 b0 b1)"
	if tr.String() != want {
		t.Errorf("String = %q, want %q", tr.String(), want)
	}
}
