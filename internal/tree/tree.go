package tree

import (
	"encoding/binary"
	"fmt"
	"sort"

	"adaptdb/internal/block"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Node is one tree node. Exactly one of the two shapes is active:
// internal (Left/Right non-nil) or leaf (Leaf true, Bucket valid).
type Node struct {
	// Internal node: split on Attr at Cut; ≤ goes left.
	Attr        int
	Cut         value.Value
	Left, Right *Node

	// Leaf node.
	Leaf   bool
	Bucket block.ID
}

// Tree is a partitioning tree over one table.
type Tree struct {
	Schema *schema.Schema
	Root   *Node

	// JoinAttr is the join attribute injected by two-phase partitioning,
	// or -1 for a selection-only (Amoeba) tree.
	JoinAttr int
	// JoinLevels is how many top levels split on JoinAttr.
	JoinLevels int

	nextBucket block.ID
}

// NewLeaf returns a single-leaf tree: the state of a table before any
// partitioning, one bucket holding everything.
func NewLeaf(s *schema.Schema) *Tree {
	return &Tree{
		Schema:     s,
		Root:       &Node{Leaf: true, Bucket: 0},
		JoinAttr:   -1,
		nextBucket: 1,
	}
}

// NewWithRoot builds a tree around a prebuilt node structure. Bucket IDs
// in the structure must be dense in [0, numBuckets).
func NewWithRoot(s *schema.Schema, root *Node, joinAttr, joinLevels int) *Tree {
	t := &Tree{Schema: s, Root: root, JoinAttr: joinAttr, JoinLevels: joinLevels}
	maxB := block.ID(-1)
	t.Walk(func(n *Node) {
		if n.Leaf && n.Bucket > maxB {
			maxB = n.Bucket
		}
	})
	t.nextBucket = maxB + 1
	return t
}

// AllocBucket reserves and returns a fresh bucket ID.
func (t *Tree) AllocBucket() block.ID {
	id := t.nextBucket
	t.nextBucket++
	return id
}

// NextBucket reports the next bucket ID that AllocBucket would return.
func (t *Tree) NextBucket() block.ID { return t.nextBucket }

// Walk visits every node in preorder.
func (t *Tree) Walk(fn func(*Node)) { walk(t.Root, fn) }

func walk(n *Node, fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	walk(n.Left, fn)
	walk(n.Right, fn)
}

// Route returns the bucket a tuple belongs to.
func (t *Tree) Route(tp tuple.Tuple) block.ID {
	n := t.Root
	for !n.Leaf {
		if value.Compare(tp[n.Attr], n.Cut) <= 0 {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Bucket
}

// Buckets returns all bucket IDs, sorted.
func (t *Tree) Buckets() []block.ID {
	var out []block.ID
	t.Walk(func(n *Node) {
		if n.Leaf {
			out = append(out, n.Bucket)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumBuckets returns the number of leaves.
func (t *Tree) NumBuckets() int {
	c := 0
	t.Walk(func(n *Node) {
		if n.Leaf {
			c++
		}
	})
	return c
}

// Depth returns the maximum leaf depth (root = depth 0 leaf).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil || n.Leaf {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Lookup returns the buckets that may contain tuples satisfying the
// conjunction — the paper's lookup(T, q) (§4.2). Pruning is sound: any
// bucket that could hold a matching tuple is always included.
func (t *Tree) Lookup(preds []predicate.Predicate) []block.ID {
	ranges := predicate.ColumnRanges(preds)
	var out []block.ID
	lookup(t.Root, ranges, &out)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func lookup(n *Node, ranges map[int]predicate.Range, out *[]block.ID) {
	if n == nil {
		return
	}
	if n.Leaf {
		*out = append(*out, n.Bucket)
		return
	}
	r, constrained := ranges[n.Attr]
	goLeft, goRight := true, true
	if constrained {
		// Left holds Attr ∈ (-inf, Cut]; right holds (Cut, +inf).
		leftIv := predicate.Range{HasHi: true, Hi: n.Cut}
		rightIv := predicate.Range{HasLo: true, Lo: n.Cut, LoOpen: true}
		goLeft = r.Overlaps(leftIv)
		goRight = r.Overlaps(rightIv)
	}
	if goLeft {
		lookup(n.Left, ranges, out)
	}
	if goRight {
		lookup(n.Right, ranges, out)
	}
}

// PathRange returns, for every bucket, the per-attribute interval implied
// by the root-to-leaf cut points. The adaptive repartitioner uses these to
// estimate block pruning for hypothetical trees without touching data,
// and two-phase trees use the JoinAttr entry as the bucket's join range.
func (t *Tree) PathRange() map[block.ID]map[int]predicate.Range {
	out := make(map[block.ID]map[int]predicate.Range)
	var rec func(n *Node, cur map[int]predicate.Range)
	rec = func(n *Node, cur map[int]predicate.Range) {
		if n == nil {
			return
		}
		if n.Leaf {
			cp := make(map[int]predicate.Range, len(cur))
			for k, v := range cur {
				cp[k] = v
			}
			out[n.Bucket] = cp
			return
		}
		get := func() predicate.Range {
			if r, ok := cur[n.Attr]; ok {
				return r
			}
			return predicate.Unbounded()
		}
		saved, had := cur[n.Attr]

		cur[n.Attr] = get().Intersect(predicate.Range{HasHi: true, Hi: n.Cut})
		rec(n.Left, cur)

		if had {
			cur[n.Attr] = saved
		} else {
			delete(cur, n.Attr)
		}
		cur[n.Attr] = get().Intersect(predicate.Range{HasLo: true, Lo: n.Cut, LoOpen: true})
		rec(n.Right, cur)

		if had {
			cur[n.Attr] = saved
		} else {
			delete(cur, n.Attr)
		}
	}
	rec(t.Root, make(map[int]predicate.Range))
	return out
}

// FindLeaf returns the leaf node for a bucket, or nil.
func (t *Tree) FindLeaf(b block.ID) *Node {
	var found *Node
	t.Walk(func(n *Node) {
		if n.Leaf && n.Bucket == b {
			found = n
		}
	})
	return found
}

// SplitLeaf replaces leaf bucket b with an internal node splitting on
// (attr, cut); the old bucket ID becomes the left child and a freshly
// allocated bucket becomes the right child. Returns the new right bucket.
// The caller is responsible for physically re-routing the bucket's rows.
func (t *Tree) SplitLeaf(b block.ID, attr int, cut value.Value) (block.ID, error) {
	n := t.FindLeaf(b)
	if n == nil {
		return 0, fmt.Errorf("tree: no leaf with bucket %d", b)
	}
	right := t.AllocBucket()
	n.Leaf = false
	n.Bucket = 0
	n.Attr = attr
	n.Cut = cut
	n.Left = &Node{Leaf: true, Bucket: b}
	n.Right = &Node{Leaf: true, Bucket: right}
	return right, nil
}

// Clone returns a deep copy sharing only the schema.
func (t *Tree) Clone() *Tree {
	return &Tree{
		Schema:     t.Schema,
		Root:       cloneNode(t.Root),
		JoinAttr:   t.JoinAttr,
		JoinLevels: t.JoinLevels,
		nextBucket: t.nextBucket,
	}
}

func cloneNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Left = cloneNode(n.Left)
	c.Right = cloneNode(n.Right)
	return &c
}

// String renders a compact s-expression of the tree for debugging.
func (t *Tree) String() string { return nodeString(t.Root, t.Schema) }

func nodeString(n *Node, s *schema.Schema) string {
	if n == nil {
		return "nil"
	}
	if n.Leaf {
		return fmt.Sprintf("b%d", n.Bucket)
	}
	name := fmt.Sprintf("col%d", n.Attr)
	if s != nil && n.Attr < s.NumCols() {
		name = s.Name(n.Attr)
	}
	return fmt.Sprintf("(%s<=%v %s %s)", name, n.Cut, nodeString(n.Left, s), nodeString(n.Right, s))
}

// --- serialization ---

const (
	tagLeaf     = 0
	tagInternal = 1
)

// AppendBinary serializes the tree: header (join attr+1, join levels,
// next bucket) then preorder nodes.
func (t *Tree) AppendBinary(dst []byte) []byte {
	dst = binary.AppendVarint(dst, int64(t.JoinAttr))
	dst = binary.AppendVarint(dst, int64(t.JoinLevels))
	dst = binary.AppendVarint(dst, int64(t.nextBucket))
	return appendNode(dst, t.Root)
}

func appendNode(dst []byte, n *Node) []byte {
	if n.Leaf {
		dst = append(dst, tagLeaf)
		return binary.AppendVarint(dst, int64(n.Bucket))
	}
	dst = append(dst, tagInternal)
	dst = binary.AppendVarint(dst, int64(n.Attr))
	dst = n.Cut.AppendBinary(dst)
	dst = appendNode(dst, n.Left)
	return appendNode(dst, n.Right)
}

// Decode parses a tree serialized by AppendBinary.
func Decode(src []byte, s *schema.Schema) (*Tree, error) {
	pos := 0
	readVarint := func() (int64, error) {
		v, n := binary.Varint(src[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("tree: bad varint at %d", pos)
		}
		pos += n
		return v, nil
	}
	ja, err := readVarint()
	if err != nil {
		return nil, err
	}
	jl, err := readVarint()
	if err != nil {
		return nil, err
	}
	nb, err := readVarint()
	if err != nil {
		return nil, err
	}
	var decodeNode func() (*Node, error)
	decodeNode = func() (*Node, error) {
		if pos >= len(src) {
			return nil, fmt.Errorf("tree: truncated at %d", pos)
		}
		tag := src[pos]
		pos++
		switch tag {
		case tagLeaf:
			b, err := readVarint()
			if err != nil {
				return nil, err
			}
			return &Node{Leaf: true, Bucket: block.ID(b)}, nil
		case tagInternal:
			attr, err := readVarint()
			if err != nil {
				return nil, err
			}
			cut, n, err := value.DecodeValue(src[pos:])
			if err != nil {
				return nil, err
			}
			pos += n
			left, err := decodeNode()
			if err != nil {
				return nil, err
			}
			right, err := decodeNode()
			if err != nil {
				return nil, err
			}
			return &Node{Attr: int(attr), Cut: cut, Left: left, Right: right}, nil
		default:
			return nil, fmt.Errorf("tree: unknown node tag %d at %d", tag, pos-1)
		}
	}
	root, err := decodeNode()
	if err != nil {
		return nil, err
	}
	if pos != len(src) {
		return nil, fmt.Errorf("tree: %d trailing bytes", len(src)-pos)
	}
	return &Tree{Schema: s, Root: root, JoinAttr: int(ja), JoinLevels: int(jl), nextBucket: block.ID(nb)}, nil
}

// AttrLevels counts, per attribute, how many internal nodes split on it —
// the "number of ways the data is partitioned on that attribute" (§3.1),
// used by the upfront partitioner's balancing and reported in Fig. 16
// sweeps.
func (t *Tree) AttrLevels() map[int]int {
	out := make(map[int]int)
	t.Walk(func(n *Node) {
		if !n.Leaf {
			out[n.Attr]++
		}
	})
	return out
}
