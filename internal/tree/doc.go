// Package tree implements AdaptDB partitioning trees (§3.1, §5.1).
//
// A partitioning tree is a binary tree whose internal nodes are labelled
// Ap — attribute A and cut point p. Records with A ≤ p route to the left
// subtree, the rest to the right. Leaves are data blocks (buckets)
// identified by dense bucket IDs. A tree may be a plain Amoeba tree
// (JoinAttr < 0) or a two-phase tree whose top JoinLevels levels all
// split on JoinAttr using recursive medians (§5.1).
//
// Trees are pure metadata: they route tuples to bucket IDs (Route) and
// prune bucket sets for predicate lookups (Lookup). The physical blocks
// live in the distributed store; the catalog maps (table, tree, bucket)
// to them.
//
// Paper mapping:
//
//   - §3.1 — the partitioning-tree data structure and predicate-based
//     block pruning.
//   - §5.1 — the two-phase shape (join levels above selection levels)
//     produced by internal/twophase and consumed here for routing.
//   - §5.2 — serialization (AppendBinary/Decode) so trees persist in
//     the store alongside the data, as the paper keeps them on HDFS.
package tree
