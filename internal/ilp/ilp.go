// Package ilp is a small branch-and-bound mixed-integer solver over the
// internal/lp simplex. It plays the role of GLPK in the paper's Fig. 17
// experiment: solving the hyper-join minimal-partitioning MIP (§4.1.2)
// exactly, slowly, as the quality baseline for the fast heuristics.
package ilp

import (
	"math"

	"adaptdb/internal/lp"
)

// Problem is a minimization MIP: the embedded LP plus integrality flags.
// Integer variables are assumed bounded (directly or via constraints);
// the hyper-join MIP's variables are all in [0,1] by construction.
type Problem struct {
	LP    lp.Problem
	IsInt []bool
}

// Options bounds the search.
type Options struct {
	// MaxNodes caps branch-and-bound nodes; 0 means a generous default.
	MaxNodes int
}

// Status reports the outcome.
type Status int

// Solve outcomes.
const (
	// Optimal: proven optimal integer solution.
	Optimal Status = iota
	// Feasible: node budget exhausted; best incumbent returned.
	Feasible
	// Infeasible: no integer solution exists.
	Infeasible
	// NoSolution: node budget exhausted before any incumbent was found.
	NoSolution
	// Unbounded: the relaxation is unbounded below.
	Unbounded
)

// Result of a solve.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int
}

const intTol = 1e-6

// Solve runs depth-first branch and bound, branching on the most
// fractional integer variable; the floor branch is explored first.
func Solve(p Problem, opt Options) Result {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}

	type node struct {
		extra []lp.Constraint
	}
	stack := []node{{}}
	best := math.Inf(1)
	var bestX []float64
	nodes := 0
	sawInfeasibleRoot := false

	for len(stack) > 0 {
		if nodes >= maxNodes {
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		sub := lp.Problem{
			NumVars:     p.LP.NumVars,
			Objective:   p.LP.Objective,
			Constraints: append(append([]lp.Constraint(nil), p.LP.Constraints...), nd.extra...),
		}
		sol := lp.Solve(&sub)
		switch sol.Status {
		case lp.Infeasible, lp.IterLimit:
			if nodes == 1 {
				sawInfeasibleRoot = true
			}
			continue
		case lp.Unbounded:
			if nodes == 1 {
				return Result{Status: Unbounded, Nodes: nodes}
			}
			continue
		}
		if sol.Objective >= best-1e-9 {
			continue // bound
		}
		// Find most fractional integer variable.
		branch := -1
		worst := intTol
		for j, isInt := range p.IsInt {
			if !isInt {
				continue
			}
			f := sol.X[j] - math.Floor(sol.X[j])
			frac := math.Min(f, 1-f)
			if frac > worst {
				worst = frac
				branch = j
			}
		}
		if branch == -1 {
			// Integral solution.
			if sol.Objective < best {
				best = sol.Objective
				bestX = roundIntegers(sol.X, p.IsInt)
			}
			continue
		}
		fl := math.Floor(sol.X[branch])
		coefLo := make([]float64, p.LP.NumVars)
		coefLo[branch] = 1
		coefHi := make([]float64, p.LP.NumVars)
		coefHi[branch] = 1
		up := node{extra: append(append([]lp.Constraint(nil), nd.extra...),
			lp.Constraint{Coef: coefHi, Sense: lp.GE, RHS: fl + 1})}
		down := node{extra: append(append([]lp.Constraint(nil), nd.extra...),
			lp.Constraint{Coef: coefLo, Sense: lp.LE, RHS: fl})}
		// DFS: push up first so down (floor) is explored first.
		stack = append(stack, up, down)
	}

	switch {
	case bestX != nil && nodes < maxNodes:
		return Result{Status: Optimal, X: bestX, Objective: best, Nodes: nodes}
	case bestX != nil:
		return Result{Status: Feasible, X: bestX, Objective: best, Nodes: nodes}
	case nodes >= maxNodes:
		return Result{Status: NoSolution, Nodes: nodes}
	default:
		_ = sawInfeasibleRoot
		return Result{Status: Infeasible, Nodes: nodes}
	}
}

// roundIntegers snaps near-integral entries exactly, leaving continuous
// variables untouched.
func roundIntegers(x []float64, isInt []bool) []float64 {
	out := append([]float64(nil), x...)
	for j, ii := range isInt {
		if ii {
			out[j] = math.Round(out[j])
		}
	}
	return out
}
