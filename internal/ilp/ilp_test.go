package ilp

import (
	"math"
	"testing"

	"adaptdb/internal/lp"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestPureLPPassThrough(t *testing.T) {
	// No integer vars: one node, LP optimum.
	p := Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-1, -1},
			Constraints: []lp.Constraint{
				{Coef: []float64{1, 1}, Sense: lp.LE, RHS: 4},
			},
		},
		IsInt: []bool{false, false},
	}
	r := Solve(p, Options{})
	if r.Status != Optimal || !almost(r.Objective, -4) {
		t.Fatalf("got %v obj %v", r.Status, r.Objective)
	}
	if r.Nodes != 1 {
		t.Errorf("nodes = %d, want 1", r.Nodes)
	}
}

func TestKnapsackStyle(t *testing.T) {
	// max 5a+4b+3c s.t. 2a+3b+c ≤ 5, 4a+b+2c ≤ 11, 3a+4b+2c ≤ 8, binary.
	// LP relax is fractional; integer optimum is a=1,b=0,c=1 → 8? Check:
	// a=1,c=1: w1=3≤5, w2=6≤11, w3=5≤8 → value 8. a=1,b=1: w1=5, w3=7 → 9.
	// a=1,b=1,c=0 → value 9, feasible (w2=5). So optimum ≥ 9.
	bound := func(j int) lp.Constraint {
		c := make([]float64, 3)
		c[j] = 1
		return lp.Constraint{Coef: c, Sense: lp.LE, RHS: 1}
	}
	p := Problem{
		LP: lp.Problem{
			NumVars:   3,
			Objective: []float64{-5, -4, -3},
			Constraints: []lp.Constraint{
				{Coef: []float64{2, 3, 1}, Sense: lp.LE, RHS: 5},
				{Coef: []float64{4, 1, 2}, Sense: lp.LE, RHS: 11},
				{Coef: []float64{3, 4, 2}, Sense: lp.LE, RHS: 8},
				bound(0), bound(1), bound(2),
			},
		},
		IsInt: []bool{true, true, true},
	}
	r := Solve(p, Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !almost(r.Objective, -9) {
		t.Errorf("objective = %v, want -9", r.Objective)
	}
	for j, x := range r.X {
		if !almost(x, math.Round(x)) {
			t.Errorf("x[%d] = %v not integral", j, x)
		}
	}
}

func TestIntegerRounding(t *testing.T) {
	// min x s.t. x ≥ 2.5, x integer → 3.
	p := Problem{
		LP: lp.Problem{
			NumVars:     1,
			Objective:   []float64{1},
			Constraints: []lp.Constraint{{Coef: []float64{1}, Sense: lp.GE, RHS: 2.5}},
		},
		IsInt: []bool{true},
	}
	r := Solve(p, Options{})
	if r.Status != Optimal || !almost(r.Objective, 3) {
		t.Fatalf("got %v obj %v, want optimal 3", r.Status, r.Objective)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 ≤ x ≤ 0.6, x integer: LP feasible, no integer point.
	p := Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Constraints: []lp.Constraint{
				{Coef: []float64{1}, Sense: lp.GE, RHS: 0.4},
				{Coef: []float64{1}, Sense: lp.LE, RHS: 0.6},
			},
		},
		IsInt: []bool{true},
	}
	if r := Solve(p, Options{}); r.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", r.Status)
	}
}

func TestInfeasibleLP(t *testing.T) {
	p := Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Constraints: []lp.Constraint{
				{Coef: []float64{1}, Sense: lp.GE, RHS: 3},
				{Coef: []float64{1}, Sense: lp.LE, RHS: 1},
			},
		},
		IsInt: []bool{true},
	}
	if r := Solve(p, Options{}); r.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", r.Status)
	}
}

func TestUnboundedRelaxation(t *testing.T) {
	p := Problem{
		LP: lp.Problem{
			NumVars:     1,
			Objective:   []float64{-1},
			Constraints: []lp.Constraint{{Coef: []float64{1}, Sense: lp.GE, RHS: 0}},
		},
		IsInt: []bool{true},
	}
	if r := Solve(p, Options{}); r.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", r.Status)
	}
}

func TestNodeLimit(t *testing.T) {
	// A 12-variable equality-constrained problem that needs branching;
	// MaxNodes 1 explores only the root.
	n := 12
	obj := make([]float64, n)
	coef := make([]float64, n)
	for j := 0; j < n; j++ {
		obj[j] = float64(j%3 + 1)
		coef[j] = 1
	}
	isInt := make([]bool, n)
	for j := range isInt {
		isInt[j] = true
	}
	cons := []lp.Constraint{{Coef: coef, Sense: lp.EQ, RHS: 5.5}}
	p := Problem{LP: lp.Problem{NumVars: n, Objective: obj, Constraints: cons}, IsInt: isInt}
	r := Solve(p, Options{MaxNodes: 1})
	if r.Status != NoSolution && r.Status != Feasible && r.Status != Infeasible {
		t.Errorf("unexpected status %v under node limit", r.Status)
	}
	if r.Nodes > 1 {
		t.Errorf("explored %d nodes with limit 1", r.Nodes)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 0.5y, x integer ≤ 2.3, y continuous ≤ 1.7, x+y ≤ 3.5.
	// Optimal: x=2, y=1.5 → -2.75.
	p := Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-1, -0.5},
			Constraints: []lp.Constraint{
				{Coef: []float64{1, 0}, Sense: lp.LE, RHS: 2.3},
				{Coef: []float64{0, 1}, Sense: lp.LE, RHS: 1.7},
				{Coef: []float64{1, 1}, Sense: lp.LE, RHS: 3.5},
			},
		},
		IsInt: []bool{true, false},
	}
	r := Solve(p, Options{})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !almost(r.X[0], 2) || !almost(r.X[1], 1.5) {
		t.Errorf("x = %v, want [2 1.5]", r.X)
	}
	if !almost(r.Objective, -2.75) {
		t.Errorf("objective = %v, want -2.75", r.Objective)
	}
}
