// Package optimizer is the component that adjusts partitioning trees as
// queries arrive (Fig. 2, §6 "Optimizer"): it maintains a query window
// per table, drives smooth repartitioning for join attributes and
// Amoeba-style adaptation for selection predicates, and supports the
// §7.3 baseline modes (no adaptation; full immediate repartitioning).
//
// OnQuery is the single lifecycle hook: internal/session calls it once
// per query of a stream, before executing the compiled plan — each
// TableUse joins its table's workload.Window, the policy's
// repartitioning work runs, and the migration I/O is metered into the
// triggering query's meter so per-query latency includes adaptation
// overhead, as in the paper's plots. The experiment harnesses (§7) use
// the same hook; there is no separate experiment-only path.
//
// Paper mapping:
//
//   - §5.2 — deciding when to start smooth repartitioning toward a join
//     attribute, and driving the incremental bucket migration through
//     internal/smooth (randomness seeded from Config.Seed, so streams
//     replay bit-identically).
//   - §5.3 — the query window: which recent queries vote on the next
//     partitioning layout (swept in Fig. 15).
//   - §5.4 — pricing candidate layouts with the executor's hyper-join
//     schedule before committing to a repartition.
//   - §7.3 — the FullScan / Repartitioning / BestGuess baseline modes
//     the evaluation compares against.
package optimizer
