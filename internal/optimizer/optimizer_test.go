package optimizer

import (
	"math/rand"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/smooth"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

var sch = schema.MustNew(
	schema.Column{Name: "orderkey", Kind: value.Int},
	schema.Column{Name: "partkey", Kind: value.Int},
	schema.Column{Name: "shipdate", Kind: value.Int},
)

func loadTable(t *testing.T) *core.Table {
	t.Helper()
	store := dfs.NewStore(4, 2, 1)
	rng := rand.New(rand.NewSource(1))
	rows := make([]tuple.Tuple, 2048)
	for i := range rows {
		rows[i] = tuple.Tuple{
			value.NewInt(rng.Int63n(10000)),
			value.NewInt(rng.Int63n(2000)),
			value.NewInt(rng.Int63n(2500)),
		}
	}
	tbl, err := core.Load(store, "lineitem", sch, rows, core.LoadOptions{
		RowsPerBlock: 128, Seed: 1, JoinAttr: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestStaticModeNeverAdapts(t *testing.T) {
	tbl := loadTable(t)
	o := New(Config{Mode: ModeStatic, WindowSize: 10})
	var meter cluster.Meter
	for i := 0; i < 10; i++ {
		rep, err := o.OnQuery([]TableUse{{Table: tbl, JoinAttr: 1}}, &meter)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MovedRows != 0 || rep.CreatedTrees != 0 {
			t.Fatalf("static mode adapted: %+v", rep)
		}
	}
	if len(tbl.LiveTrees()) != 1 {
		t.Errorf("static mode grew trees")
	}
	if meter.Snapshot().RepartRows != 0 {
		t.Errorf("static mode metered repartitioning")
	}
}

func TestAdaptiveModeShiftsSmoothly(t *testing.T) {
	tbl := loadTable(t)
	o := New(Config{Mode: ModeAdaptive, WindowSize: 10, Seed: 3})
	var perQuery []int
	for i := 0; i < 12; i++ {
		var meter cluster.Meter
		rep, err := o.OnQuery([]TableUse{{Table: tbl, JoinAttr: 1}}, &meter)
		if err != nil {
			t.Fatal(err)
		}
		perQuery = append(perQuery, rep.MovedRows)
	}
	if !smooth.Converged(tbl, 1) {
		t.Fatalf("adaptive mode should converge to partkey tree; trees=%v", tbl.LiveTrees())
	}
	// Smoothness: no single query moves more than ~35% of the table.
	for i, m := range perQuery {
		if m > 2048*35/100 {
			t.Errorf("query %d moved %d rows — not smooth", i, m)
		}
	}
}

func TestFullRepartitionModeSpikes(t *testing.T) {
	tbl := loadTable(t)
	o := New(Config{Mode: ModeFullRepartition, WindowSize: 10, Seed: 4})
	spike := -1
	for i := 0; i < 10; i++ {
		var meter cluster.Meter
		rep, err := o.OnQuery([]TableUse{{Table: tbl, JoinAttr: 1}}, &meter)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FullRepartitions > 0 {
			spike = i
			if rep.MovedRows != 2048 {
				t.Errorf("full repartition moved %d rows, want all 2048", rep.MovedRows)
			}
			break
		}
	}
	// Half the window (5 of 10) must carry the new attribute first.
	if spike != 4 {
		t.Errorf("full repartition at query %d, want 4 (half-window rule)", spike)
	}
	if tbl.TreeFor(1) < 0 {
		t.Errorf("table not repartitioned onto partkey")
	}
	// Subsequent queries are quiet.
	var meter cluster.Meter
	rep, err := o.OnQuery([]TableUse{{Table: tbl, JoinAttr: 1}}, &meter)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullRepartitions != 0 || rep.MovedRows != 0 {
		t.Errorf("repeat full repartition: %+v", rep)
	}
}

func TestFMinGate(t *testing.T) {
	tbl := loadTable(t)
	o := New(Config{Mode: ModeAdaptive, WindowSize: 10, FMin: 3, Seed: 5})
	created := 0
	for i := 0; i < 3; i++ {
		var meter cluster.Meter
		rep, err := o.OnQuery([]TableUse{{Table: tbl, JoinAttr: 1}}, &meter)
		if err != nil {
			t.Fatal(err)
		}
		created += rep.CreatedTrees
		if i < 2 && created > 0 {
			t.Fatalf("tree created before fmin=3 queries (query %d)", i)
		}
	}
	if created != 1 {
		t.Errorf("tree should be created exactly once at fmin; got %d", created)
	}
}

func TestAmoebaEnabled(t *testing.T) {
	tbl := loadTable(t)
	o := New(Config{Mode: ModeAdaptive, WindowSize: 10, EnableAmoeba: true, Seed: 6})
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(300))}
	transforms := 0
	for i := 0; i < 15; i++ {
		var meter cluster.Meter
		rep, err := o.OnQuery([]TableUse{{Table: tbl, JoinAttr: 0, Preds: preds}}, &meter)
		if err != nil {
			t.Fatal(err)
		}
		transforms += rep.AmoebaTransforms
	}
	if transforms == 0 {
		t.Errorf("amoeba adaptation never fired under steady selection pressure")
	}
}

func TestWindowSharedAcrossModes(t *testing.T) {
	tbl := loadTable(t)
	o := New(Config{Mode: ModeAdaptive, WindowSize: 5})
	var meter cluster.Meter
	for i := 0; i < 7; i++ {
		if _, err := o.OnQuery([]TableUse{{Table: tbl, JoinAttr: 0}}, &meter); err != nil {
			t.Fatal(err)
		}
	}
	if o.Window("lineitem").Len() != 5 {
		t.Errorf("window should cap at 5: %d", o.Window("lineitem").Len())
	}
}

func TestDefaults(t *testing.T) {
	o := New(Config{})
	if o.cfg.WindowSize != 10 || o.cfg.FMin != 1 {
		t.Errorf("defaults wrong: %+v", o.cfg)
	}
}
