package optimizer

import (
	"adaptdb/internal/amoeba"
	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/predicate"
	"adaptdb/internal/smooth"
	"adaptdb/internal/twophase"
	"adaptdb/internal/workload"
)

// Mode selects the repartitioning policy.
type Mode int

// Policies evaluated in §7.3 and §7.6.
const (
	// ModeAdaptive is AdaptDB proper: smooth repartitioning + Amoeba
	// selection adaptation.
	ModeAdaptive Mode = iota
	// ModeFullRepartition is the "Repartitioning" baseline: when half the
	// query window carries a new join attribute, repartition the whole
	// table at once.
	ModeFullRepartition
	// ModeStatic never repartitions (the "Full Scan" baseline keeps its
	// initial random partitioning).
	ModeStatic
)

// TableUse describes how the incoming query touches one table.
type TableUse struct {
	Table    *core.Table
	JoinAttr int
	Preds    []predicate.Predicate
}

// Config tunes the optimizer.
type Config struct {
	Mode Mode
	// WindowSize is |W| (default 10, the paper's setting).
	WindowSize int
	// FMin gates new-tree creation in smooth repartitioning.
	FMin int
	// EnableAmoeba toggles selection-predicate adaptation.
	EnableAmoeba bool
	Seed         int64
}

// Optimizer holds per-table adaptation state.
type Optimizer struct {
	cfg     Config
	windows map[string]*workload.Window
	smooth  map[string]*smooth.Manager
	adapter map[string]*amoeba.Adapter
	seq     int64
}

// New builds an optimizer.
func New(cfg Config) *Optimizer {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 10
	}
	if cfg.FMin <= 0 {
		cfg.FMin = 1
	}
	return &Optimizer{
		cfg:     cfg,
		windows: make(map[string]*workload.Window),
		smooth:  make(map[string]*smooth.Manager),
		adapter: make(map[string]*amoeba.Adapter),
	}
}

// Window returns (creating on demand) the query window of a table.
func (o *Optimizer) Window(name string) *workload.Window {
	w, ok := o.windows[name]
	if !ok {
		w = workload.NewWindow(o.cfg.WindowSize)
		o.windows[name] = w
	}
	return w
}

func (o *Optimizer) smoothFor(name string) *smooth.Manager {
	m, ok := o.smooth[name]
	if !ok {
		o.seq++
		m = smooth.New(o.Window(name), o.cfg.Seed+o.seq*7919)
		m.FMin = o.cfg.FMin
		o.smooth[name] = m
	}
	return m
}

func (o *Optimizer) adapterFor(name string) *amoeba.Adapter {
	a, ok := o.adapter[name]
	if !ok {
		a = amoeba.New(o.Window(name))
		o.adapter[name] = a
	}
	return a
}

// StepReport summarizes the adaptation triggered by one query.
type StepReport struct {
	MovedRows        int
	CreatedTrees     int
	FullRepartitions int
	AmoebaTransforms int
}

// Adapted reports whether the step changed any table's physical layout
// — the signal the serving layer's plan cache keys on: a true here
// must bump the touched tables' partitioning epochs so cached
// fragments compiled against the old layout stop being served.
func (r StepReport) Adapted() bool {
	return r.MovedRows > 0 || r.CreatedTrees > 0 || r.FullRepartitions > 0 || r.AmoebaTransforms > 0
}

// OnQuery records the query in each touched table's window and performs
// the policy's repartitioning work, metering its I/O into the query's
// meter (repartitioning overhead lands on the triggering query, as in
// the paper's per-query latency plots).
func (o *Optimizer) OnQuery(uses []TableUse, meter *cluster.Meter) (StepReport, error) {
	var rep StepReport
	for _, use := range uses {
		w := o.Window(use.Table.Name)
		q := workload.Query{JoinAttr: use.JoinAttr, Preds: use.Preds}
		w.Add(q)
		switch o.cfg.Mode {
		case ModeStatic:
			// Baseline: never adapt.
		case ModeFullRepartition:
			if err := o.fullRepartition(use.Table, q, meter, &rep); err != nil {
				return rep, err
			}
		case ModeAdaptive:
			sm := o.smoothFor(use.Table.Name)
			res, err := sm.Step(use.Table, q, meter, nil)
			if err != nil {
				return rep, err
			}
			rep.MovedRows += res.MovedRows
			if res.CreatedTree >= 0 {
				rep.CreatedTrees++
			}
			if o.cfg.EnableAmoeba && len(use.Preds) > 0 {
				idx := use.Table.PrimaryTree()
				if idx >= 0 {
					n, err := o.adapterFor(use.Table.Name).Step(use.Table, idx, meter)
					if err != nil {
						return rep, err
					}
					rep.AmoebaTransforms += n
				}
			}
		}
	}
	return rep, nil
}

// fullRepartition implements the §7.3 "Repartitioning" baseline: once
// half the window's queries use a join attribute the table is not
// partitioned on, rebuild the whole table as a two-phase tree on it.
func (o *Optimizer) fullRepartition(tbl *core.Table, q workload.Query, meter *cluster.Meter, rep *StepReport) error {
	t := q.JoinAttr
	if t < 0 || tbl.TreeFor(t) >= 0 {
		return nil
	}
	w := o.Window(tbl.Name)
	if 2*w.CountJoinAttr(t) < w.Cap() {
		return nil
	}
	primary := tbl.PrimaryTree()
	if primary < 0 {
		return nil
	}
	depth := tbl.Trees[primary].Tree.Depth()
	if depth < 2 {
		depth = 4
	}
	o.seq++
	nt := twophase.Builder{
		Schema:     tbl.Schema,
		JoinAttr:   t,
		JoinLevels: depth / 2,
		TotalDepth: depth,
		Seed:       o.cfg.Seed + o.seq*104729,
	}.Build(tbl.SampleRows)
	if err := tbl.ReplaceTreeData(primary, nt, meter); err != nil {
		return err
	}
	rep.FullRepartitions++
	rep.MovedRows += tbl.RowsUnder(primary)
	return nil
}
