// Package predicate implements the predicate and range algebra AdaptDB
// uses for data access: evaluating selection predicates against tuples,
// converting conjunctions of predicates into per-column ranges, and
// testing ranges against block zone maps (per-attribute min/max) so scans
// and the partitioning-tree lookup can skip irrelevant blocks.
package predicate

import (
	"fmt"
	"strings"

	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Op is a comparison operator.
type Op uint8

// Supported comparison operators. In is a disjunctive membership test
// (col ∈ {v1, v2, ...}) needed by TPC-H q12/q19 templates.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
	In
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case In:
		return "IN"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Predicate is a single comparison over one column. A query's selection
// is a conjunction ([]Predicate). For In, Vals holds the member set and
// Val is unused.
type Predicate struct {
	Col  int // column index in the table schema
	Op   Op
	Val  value.Value
	Vals []value.Value // for In
}

// NewCmp builds a comparison predicate.
func NewCmp(col int, op Op, v value.Value) Predicate {
	return Predicate{Col: col, Op: op, Val: v}
}

// NewIn builds a membership predicate.
func NewIn(col int, vals ...value.Value) Predicate {
	return Predicate{Col: col, Op: In, Vals: vals}
}

// Matches evaluates the predicate against a tuple.
func (p Predicate) Matches(t tuple.Tuple) bool {
	v := t[p.Col]
	switch p.Op {
	case EQ:
		return value.Compare(v, p.Val) == 0
	case NE:
		return value.Compare(v, p.Val) != 0
	case LT:
		return value.Compare(v, p.Val) < 0
	case LE:
		return value.Compare(v, p.Val) <= 0
	case GT:
		return value.Compare(v, p.Val) > 0
	case GE:
		return value.Compare(v, p.Val) >= 0
	case In:
		for _, m := range p.Vals {
			if value.Compare(v, m) == 0 {
				return true
			}
		}
		return false
	}
	return false
}

// String renders the predicate for logs.
func (p Predicate) String() string {
	if p.Op == In {
		parts := make([]string, len(p.Vals))
		for i, v := range p.Vals {
			parts[i] = v.String()
		}
		return fmt.Sprintf("col%d IN (%s)", p.Col, strings.Join(parts, ","))
	}
	return fmt.Sprintf("col%d %s %v", p.Col, p.Op, p.Val)
}

// MatchesAll reports whether t satisfies every predicate in the
// conjunction.
func MatchesAll(preds []Predicate, t tuple.Tuple) bool {
	for _, p := range preds {
		if !p.Matches(t) {
			return false
		}
	}
	return true
}

// Range is a (possibly half-open, possibly unbounded) interval over one
// column's values. The zero Range is fully unbounded: (-inf, +inf).
type Range struct {
	HasLo, HasHi   bool
	Lo, Hi         value.Value
	LoOpen, HiOpen bool // strict bounds
}

// Unbounded returns the full range.
func Unbounded() Range { return Range{} }

// Point returns the degenerate range [v, v].
func Point(v value.Value) Range {
	return Range{HasLo: true, HasHi: true, Lo: v, Hi: v}
}

// Closed returns [lo, hi].
func Closed(lo, hi value.Value) Range {
	return Range{HasLo: true, HasHi: true, Lo: lo, Hi: hi}
}

// Contains reports whether v lies inside the range.
func (r Range) Contains(v value.Value) bool {
	if r.HasLo {
		c := value.Compare(v, r.Lo)
		if c < 0 || (c == 0 && r.LoOpen) {
			return false
		}
	}
	if r.HasHi {
		c := value.Compare(v, r.Hi)
		if c > 0 || (c == 0 && r.HiOpen) {
			return false
		}
	}
	return true
}

// Empty reports whether the range provably contains no values.
func (r Range) Empty() bool {
	if !r.HasLo || !r.HasHi {
		return false
	}
	c := value.Compare(r.Lo, r.Hi)
	if c > 0 {
		return true
	}
	if c == 0 && (r.LoOpen || r.HiOpen) {
		return true
	}
	return false
}

// Overlaps reports whether two ranges can share at least one value.
// This is the core test behind hyper-join's overlap vectors: blocks r_i
// and s_j must be joined iff Ranget(r_i) ∩ Ranget(s_j) ≠ ∅ (§4.1.1).
func (r Range) Overlaps(o Range) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	// r entirely below o?
	if r.HasHi && o.HasLo {
		c := value.Compare(r.Hi, o.Lo)
		if c < 0 || (c == 0 && (r.HiOpen || o.LoOpen)) {
			return false
		}
	}
	// o entirely below r?
	if o.HasHi && r.HasLo {
		c := value.Compare(o.Hi, r.Lo)
		if c < 0 || (c == 0 && (o.HiOpen || r.LoOpen)) {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two ranges.
func (r Range) Intersect(o Range) Range {
	out := r
	if o.HasLo {
		if !out.HasLo {
			out.HasLo, out.Lo, out.LoOpen = true, o.Lo, o.LoOpen
		} else {
			c := value.Compare(o.Lo, out.Lo)
			if c > 0 || (c == 0 && o.LoOpen) {
				out.Lo, out.LoOpen = o.Lo, o.LoOpen
			}
		}
	}
	if o.HasHi {
		if !out.HasHi {
			out.HasHi, out.Hi, out.HiOpen = true, o.Hi, o.HiOpen
		} else {
			c := value.Compare(o.Hi, out.Hi)
			if c < 0 || (c == 0 && o.HiOpen) {
				out.Hi, out.HiOpen = o.Hi, o.HiOpen
			}
		}
	}
	return out
}

// String renders interval notation for logs.
func (r Range) String() string {
	lo, hi := "-inf", "+inf"
	lb, rb := "(", ")"
	if r.HasLo {
		lo = r.Lo.String()
		if !r.LoOpen {
			lb = "["
		}
	}
	if r.HasHi {
		hi = r.Hi.String()
		if !r.HiOpen {
			rb = "]"
		}
	}
	return fmt.Sprintf("%s%s, %s%s", lb, lo, hi, rb)
}

// ToRange narrows an unbounded range by the predicate, returning the
// range of column values that can satisfy p. In predicates narrow to the
// [min, max] hull of the member set (sound for pruning, not exact).
// NE predicates cannot be expressed as a single interval and return the
// unbounded range (again sound).
func (p Predicate) ToRange() Range {
	switch p.Op {
	case EQ:
		return Point(p.Val)
	case LT:
		return Range{HasHi: true, Hi: p.Val, HiOpen: true}
	case LE:
		return Range{HasHi: true, Hi: p.Val}
	case GT:
		return Range{HasLo: true, Lo: p.Val, LoOpen: true}
	case GE:
		return Range{HasLo: true, Lo: p.Val}
	case In:
		if len(p.Vals) == 0 {
			// Empty IN list matches nothing.
			return Range{HasLo: true, HasHi: true, Lo: value.NewInt(1), Hi: value.NewInt(0)}
		}
		lo, hi := p.Vals[0], p.Vals[0]
		for _, v := range p.Vals[1:] {
			lo = value.Min(lo, v)
			hi = value.Max(hi, v)
		}
		return Closed(lo, hi)
	default: // NE
		return Unbounded()
	}
}

// ColumnRanges folds a conjunction of predicates into one range per
// referenced column. Blocks whose zone map does not overlap some
// column's range cannot contain matching tuples.
func ColumnRanges(preds []Predicate) map[int]Range {
	out := make(map[int]Range)
	for _, p := range preds {
		r, ok := out[p.Col]
		if !ok {
			r = Unbounded()
		}
		out[p.Col] = r.Intersect(p.ToRange())
	}
	return out
}
