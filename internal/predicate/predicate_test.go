package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func iv(i int64) value.Value { return value.NewInt(i) }

func TestPredicateMatches(t *testing.T) {
	tp := tuple.Tuple{iv(10), value.NewString("APPLE")}
	cases := []struct {
		p    Predicate
		want bool
	}{
		{NewCmp(0, EQ, iv(10)), true},
		{NewCmp(0, EQ, iv(11)), false},
		{NewCmp(0, NE, iv(11)), true},
		{NewCmp(0, NE, iv(10)), false},
		{NewCmp(0, LT, iv(11)), true},
		{NewCmp(0, LT, iv(10)), false},
		{NewCmp(0, LE, iv(10)), true},
		{NewCmp(0, GT, iv(9)), true},
		{NewCmp(0, GT, iv(10)), false},
		{NewCmp(0, GE, iv(10)), true},
		{NewIn(1, value.NewString("PEAR"), value.NewString("APPLE")), true},
		{NewIn(1, value.NewString("PEAR")), false},
		{NewIn(1), false},
	}
	for _, c := range cases {
		if got := c.p.Matches(tp); got != c.want {
			t.Errorf("%v.Matches = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMatchesAll(t *testing.T) {
	tp := tuple.Tuple{iv(10), iv(20)}
	both := []Predicate{NewCmp(0, GE, iv(10)), NewCmp(1, LT, iv(25))}
	if !MatchesAll(both, tp) {
		t.Errorf("conjunction should match")
	}
	if !MatchesAll(nil, tp) {
		t.Errorf("empty conjunction should match everything")
	}
	fail := append(both, NewCmp(1, GT, iv(100)))
	if MatchesAll(fail, tp) {
		t.Errorf("failing conjunct ignored")
	}
}

func TestRangeContains(t *testing.T) {
	r := Closed(iv(10), iv(20))
	for _, c := range []struct {
		v    int64
		want bool
	}{{9, false}, {10, true}, {15, true}, {20, true}, {21, false}} {
		if got := r.Contains(iv(c.v)); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.v, got, c.want)
		}
	}
	open := Range{HasLo: true, Lo: iv(10), LoOpen: true, HasHi: true, Hi: iv(20), HiOpen: true}
	if open.Contains(iv(10)) || open.Contains(iv(20)) {
		t.Errorf("open bounds included endpoints")
	}
	if !Unbounded().Contains(iv(-1 << 60)) {
		t.Errorf("unbounded should contain anything")
	}
}

func TestRangeEmpty(t *testing.T) {
	if Closed(iv(1), iv(2)).Empty() {
		t.Errorf("[1,2] reported empty")
	}
	if !Closed(iv(3), iv(2)).Empty() {
		t.Errorf("[3,2] not reported empty")
	}
	if Point(iv(5)).Empty() {
		t.Errorf("point range reported empty")
	}
	halfOpenPoint := Range{HasLo: true, Lo: iv(5), LoOpen: true, HasHi: true, Hi: iv(5)}
	if !halfOpenPoint.Empty() {
		t.Errorf("(5,5] not reported empty")
	}
	if Unbounded().Empty() {
		t.Errorf("unbounded reported empty")
	}
}

func TestRangeOverlaps(t *testing.T) {
	// Mirrors the hyper-join Figure 4 intervals: r2=[100,200) vs s1=[0,150) overlap,
	// r1=[0,100) vs s2=[150,250) do not.
	r1 := Range{HasLo: true, Lo: iv(0), HasHi: true, Hi: iv(100), HiOpen: true}
	r2 := Range{HasLo: true, Lo: iv(100), HasHi: true, Hi: iv(200), HiOpen: true}
	s1 := Range{HasLo: true, Lo: iv(0), HasHi: true, Hi: iv(150), HiOpen: true}
	s2 := Range{HasLo: true, Lo: iv(150), HasHi: true, Hi: iv(250), HiOpen: true}
	if !r1.Overlaps(s1) || !s1.Overlaps(r1) {
		t.Errorf("[0,100) should overlap [0,150)")
	}
	if r1.Overlaps(s2) || s2.Overlaps(r1) {
		t.Errorf("[0,100) should not overlap [150,250)")
	}
	if !r2.Overlaps(s1) || !r2.Overlaps(s2) {
		t.Errorf("[100,200) should overlap both")
	}
	// Touching closed endpoints overlap; open ones don't.
	a := Closed(iv(0), iv(10))
	b := Closed(iv(10), iv(20))
	if !a.Overlaps(b) {
		t.Errorf("[0,10] should overlap [10,20]")
	}
	aOpen := Range{HasLo: true, Lo: iv(0), HasHi: true, Hi: iv(10), HiOpen: true}
	if aOpen.Overlaps(b) {
		t.Errorf("[0,10) should not overlap [10,20]")
	}
	if !Unbounded().Overlaps(a) || !a.Overlaps(Unbounded()) {
		t.Errorf("unbounded overlaps everything")
	}
}

func TestRangeIntersect(t *testing.T) {
	a := Closed(iv(0), iv(100))
	b := Closed(iv(50), iv(150))
	got := a.Intersect(b)
	if !got.HasLo || !got.HasHi || got.Lo.Int64() != 50 || got.Hi.Int64() != 100 {
		t.Errorf("intersect = %v", got)
	}
	u := Unbounded().Intersect(b)
	if u.Lo.Int64() != 50 || u.Hi.Int64() != 150 {
		t.Errorf("unbounded intersect = %v", u)
	}
	// Open bound wins over closed at same endpoint.
	c := Range{HasLo: true, Lo: iv(50), LoOpen: true}
	got = b.Intersect(c)
	if !got.LoOpen {
		t.Errorf("open bound lost in intersection")
	}
}

func TestToRange(t *testing.T) {
	cases := []struct {
		p   Predicate
		in  int64
		out int64
	}{
		{NewCmp(0, EQ, iv(5)), 5, 6},
		{NewCmp(0, LT, iv(5)), 4, 5},
		{NewCmp(0, LE, iv(5)), 5, 6},
		{NewCmp(0, GT, iv(5)), 6, 5},
		{NewCmp(0, GE, iv(5)), 5, 4},
		{NewIn(0, iv(3), iv(9), iv(6)), 6, 11},
	}
	for _, c := range cases {
		r := c.p.ToRange()
		if !r.Contains(iv(c.in)) {
			t.Errorf("%v.ToRange()=%v should contain %d", c.p, r, c.in)
		}
		if r.Contains(iv(c.out)) {
			t.Errorf("%v.ToRange()=%v should not contain %d", c.p, r, c.out)
		}
	}
	if !NewCmp(0, NE, iv(5)).ToRange().Contains(iv(5)) {
		t.Errorf("NE range must stay unbounded (sound over-approximation)")
	}
	if !NewIn(0).ToRange().Empty() {
		t.Errorf("empty IN should produce empty range")
	}
}

func TestColumnRanges(t *testing.T) {
	preds := []Predicate{
		NewCmp(2, GE, iv(10)),
		NewCmp(2, LT, iv(20)),
		NewCmp(5, EQ, iv(7)),
	}
	ranges := ColumnRanges(preds)
	if len(ranges) != 2 {
		t.Fatalf("got %d column ranges, want 2", len(ranges))
	}
	r2 := ranges[2]
	if !r2.Contains(iv(10)) || !r2.Contains(iv(19)) || r2.Contains(iv(20)) || r2.Contains(iv(9)) {
		t.Errorf("col2 range wrong: %v", r2)
	}
	r5 := ranges[5]
	if !r5.Contains(iv(7)) || r5.Contains(iv(8)) {
		t.Errorf("col5 range wrong: %v", r5)
	}
}

// Property: a tuple matching the conjunction always lies inside every
// folded column range — i.e., range pruning is sound.
func TestColumnRangesSoundQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nPreds := 1 + r.Intn(4)
		preds := make([]Predicate, 0, nPreds)
		for i := 0; i < nPreds; i++ {
			op := []Op{EQ, LT, LE, GT, GE, In}[r.Intn(6)]
			col := r.Intn(3)
			if op == In {
				preds = append(preds, NewIn(col, iv(r.Int63n(20)), iv(r.Int63n(20))))
			} else {
				preds = append(preds, NewCmp(col, op, iv(r.Int63n(20))))
			}
		}
		tp := tuple.Tuple{iv(rng.Int63n(20)), iv(rng.Int63n(20)), iv(rng.Int63n(20))}
		if !MatchesAll(preds, tp) {
			return true // vacuous
		}
		for col, cr := range ColumnRanges(preds) {
			if !cr.Contains(tp[col]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Overlaps is symmetric and consistent with Intersect being
// non-empty for closed integer ranges.
func TestOverlapsMatchesIntersectQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		lo1, hi1 := int64(min8(a1, a2)), int64(max8(a1, a2))
		lo2, hi2 := int64(min8(b1, b2)), int64(max8(b1, b2))
		ra := Closed(iv(lo1), iv(hi1))
		rb := Closed(iv(lo2), iv(hi2))
		ov := ra.Overlaps(rb)
		if ov != rb.Overlaps(ra) {
			return false
		}
		return ov == !ra.Intersect(rb).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func min8(a, b int8) int8 {
	if a < b {
		return a
	}
	return b
}

func max8(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}

func TestStringRendering(t *testing.T) {
	p := NewCmp(3, GE, iv(7))
	if p.String() == "" {
		t.Errorf("empty predicate string")
	}
	in := NewIn(1, iv(1), iv(2))
	if in.String() == "" {
		t.Errorf("empty IN string")
	}
	if Unbounded().String() != "(-inf, +inf)" {
		t.Errorf("unbounded String = %q", Unbounded().String())
	}
	if Closed(iv(1), iv(2)).String() != "[1, 2]" {
		t.Errorf("closed String = %q", Closed(iv(1), iv(2)).String())
	}
}
