package cluster

import (
	"math"
	"sync"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDefaultModel(t *testing.T) {
	m := Default()
	if m.Nodes != 10 || m.CSJ != 3.0 {
		t.Errorf("Default model should match the paper: %+v", m)
	}
	if m.RemotePenalty < 1.0 || m.RemotePenalty > 1.2 {
		t.Errorf("remote penalty should be ≈8%%: %v", m.RemotePenalty)
	}
}

func TestMeterAccumulation(t *testing.T) {
	var m Meter
	m.AddScan(100, true)
	m.AddScan(50, false)
	m.AddShuffle(30)
	m.AddBuild(20, true)
	m.AddProbe(10, false)
	m.AddRepartWrite(5)
	m.AddResultRows(7)
	c := m.Snapshot()
	if c.ScanLocal != 100 || c.ScanRemote != 50 {
		t.Errorf("scan counters: %+v", c)
	}
	if c.ShuffleRows != 30 || c.BuildLocal != 20 || c.ProbeRemote != 10 || c.RepartRows != 5 {
		t.Errorf("counters: %+v", c)
	}
	if c.BlocksScanned != 3 { // 2 scans + 1 build
		t.Errorf("BlocksScanned = %d, want 3", c.BlocksScanned)
	}
	if c.ProbeBlocks != 1 || c.ResultRows != 7 {
		t.Errorf("probe/result: %+v", c)
	}
}

func TestCostUnitsFormula(t *testing.T) {
	model := CostModel{Nodes: 10, CSJ: 3, RemotePenalty: 1.08, SecPerRow: 1e-3, RepartWriteFactor: 2}
	c := Counters{
		ScanLocal: 100, ScanRemote: 100,
		ShuffleRows: 10,
		BuildLocal:  50, ProbeRemote: 25,
		RepartRows: 4,
	}
	want := 100 + 50.0 + // local
		(100+25)*1.08 + // remote
		10*(3.0-1) + // shuffle write+reread on top of the scan
		4*2.0 // repartition writes
	if got := c.CostUnits(model); !almost(got, want) {
		t.Errorf("CostUnits = %v, want %v", got, want)
	}
}

func TestSimSecondsDividesByNodes(t *testing.T) {
	model := CostModel{Nodes: 10, CSJ: 3, RemotePenalty: 1, SecPerRow: 0.01, RepartWriteFactor: 2}
	c := Counters{ScanLocal: 1000}
	if got := c.SimSeconds(model); !almost(got, 1.0) {
		t.Errorf("SimSeconds = %v, want 1.0", got)
	}
	model.Nodes = 0 // degenerate: treated as 1
	if got := c.SimSeconds(model); !almost(got, 10.0) {
		t.Errorf("SimSeconds with 0 nodes = %v, want 10", got)
	}
}

func TestShuffleCostsCSJTimesScan(t *testing.T) {
	// The motivating observation (Fig. 1): rows that are scanned and then
	// shuffled cost CSJ× a plain scan in total (eq. 1).
	model := Default()
	scan := Counters{ScanLocal: 1000}
	scanAndShuffle := Counters{ScanLocal: 1000, ShuffleRows: 1000}
	ratio := scanAndShuffle.CostUnits(model) / scan.CostUnits(model)
	if !almost(ratio, model.CSJ) {
		t.Errorf("(scan+shuffle)/scan cost ratio = %v, want %v", ratio, model.CSJ)
	}
}

func TestResetAndMerge(t *testing.T) {
	var m Meter
	m.AddScan(10, true)
	old := m.Reset()
	if old.ScanLocal != 10 {
		t.Errorf("Reset returned %+v", old)
	}
	if m.Snapshot().ScanLocal != 0 {
		t.Errorf("meter not zeroed")
	}
	m.AddScan(5, false)
	m.Merge(old)
	c := m.Snapshot()
	if c.ScanLocal != 10 || c.ScanRemote != 5 {
		t.Errorf("Merge wrong: %+v", c)
	}
}

func TestMergeAllFields(t *testing.T) {
	var m Meter
	src := Counters{
		ScanLocal: 1, ScanRemote: 2, ShuffleRows: 3,
		BuildLocal: 4, BuildRemote: 5, ProbeLocal: 6, ProbeRemote: 7,
		RepartRows: 8, BlocksScanned: 9, ProbeBlocks: 10, ResultRows: 11,
	}
	m.Merge(src)
	m.Merge(src)
	c := m.Snapshot()
	if c.ScanLocal != 2 || c.ScanRemote != 4 || c.ShuffleRows != 6 ||
		c.BuildLocal != 8 || c.BuildRemote != 10 || c.ProbeLocal != 12 ||
		c.ProbeRemote != 14 || c.RepartRows != 16 || c.BlocksScanned != 18 ||
		c.ProbeBlocks != 20 || c.ResultRows != 22 {
		t.Errorf("double merge wrong: %+v", c)
	}
}

func TestMeterConcurrentSafety(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.AddScan(1, true)
				m.AddProbe(1, false)
			}
		}()
	}
	wg.Wait()
	c := m.Snapshot()
	if c.ScanLocal != 8000 || c.ProbeRemote != 8000 {
		t.Errorf("lost updates: %+v", c)
	}
}

// TestMeterMergeSnapshotUnderContention is the audit demanded by the
// per-node executors: probe workers hammer Add* methods on shards while
// another goroutine Merges shard snapshots into an aggregate and a
// third keeps Snapshotting it. Run under -race (CI does), this proves
// Merge and Snapshot are safe against concurrent mutation and that the
// shard-then-merge-once scheme loses no updates.
func TestMeterMergeSnapshotUnderContention(t *testing.T) {
	const shards, rounds = 4, 500
	ms, flush := NewShards(shards)
	var agg Meter
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(m *Meter) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				m.AddScan(1, j%2 == 0)
				m.AddExchange(2, 64, true)
				m.AddShuffle(1)
			}
		}(ms[i])
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = agg.Snapshot()
				flush(&agg) // interleaved merges must never lose rows
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	flush(&agg)
	c := agg.Snapshot()
	if got := c.ScanLocal + c.ScanRemote; got != shards*rounds {
		t.Errorf("scan rows lost under contention: got %v want %d", got, shards*rounds)
	}
	if c.ExchRemoteRows != shards*rounds*2 {
		t.Errorf("exchange rows lost: got %v want %d", c.ExchRemoteRows, shards*rounds*2)
	}
	if c.ExchBytes != shards*rounds*64 {
		t.Errorf("exchange bytes lost: got %v want %d", c.ExchBytes, shards*rounds*64)
	}
}

// TestExchangeCostUnits: remote exchange rows are priced by
// ExchangeRowFactor; local ones are free.
func TestExchangeCostUnits(t *testing.T) {
	m := Default()
	local := Counters{ExchLocalRows: 1000}
	if got := local.CostUnits(m); got != 0 {
		t.Errorf("local exchange rows should be free, cost %v", got)
	}
	remote := Counters{ExchRemoteRows: 1000}
	if got := remote.CostUnits(m); got != 1000*m.ExchangeRowFactor {
		t.Errorf("remote exchange cost %v, want %v", got, 1000*m.ExchangeRowFactor)
	}
}

func TestCountersString(t *testing.T) {
	c := Counters{ScanLocal: 1}
	if c.String() == "" {
		t.Errorf("String should render something")
	}
}

func TestRemotePenaltyMatchesFig7Shape(t *testing.T) {
	// Fig. 7: a job at 27% locality is only ≈18% slower than at 100%.
	// With our 1.08 penalty the slowdown is bounded well under that.
	model := Default()
	full := Counters{ScanLocal: 1000}
	low := Counters{ScanLocal: 270, ScanRemote: 730}
	slowdown := low.SimSeconds(model) / full.SimSeconds(model)
	if slowdown > 1.18 {
		t.Errorf("27%% locality slowdown %.3f exceeds the paper's 18%%", slowdown)
	}
	if slowdown <= 1.0 {
		t.Errorf("remote reads should cost something: %.3f", slowdown)
	}
}
