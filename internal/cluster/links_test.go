package cluster

import "testing"

// TestLinkWeightsDerivation: weights come out normalized to mean 1,
// proportional to measured ns-per-byte, and loopback/untimed links are
// excluded.
func TestLinkWeightsDerivation(t *testing.T) {
	s := make(LinkStats)
	// Link 0→1: 1000 bytes in 1000 ns (1 ns/B). Link 1→0: 1000 bytes in
	// 3000 ns (3 ns/B). Loopback and untimed traffic must not skew it.
	s.Add(LinkKey{0, 1}, 10, 1000, 1000)
	s.Add(LinkKey{1, 0}, 10, 1000, 3000)
	s.Add(LinkKey{2, 2}, 99, 1<<20, 1<<30) // loopback: ignored
	s.Add(LinkKey{0, 2}, 10, 500, 0)       // no timing: ignored

	w := s.Weights()
	if got := w.Of(LinkKey{0, 1}); !almost(got, 0.5) {
		t.Errorf("fast link weight = %v, want 0.5", got)
	}
	if got := w.Of(LinkKey{1, 0}); !almost(got, 1.5) {
		t.Errorf("slow link weight = %v, want 1.5", got)
	}
	if got := w.Of(LinkKey{0, 2}); got != 1 {
		t.Errorf("unmeasured link weight = %v, want 1", got)
	}
	if got := w.Mean(); !almost(got, 1.0) {
		t.Errorf("mean weight = %v, want 1", got)
	}
}

// TestLinkWeightsEmpty: nil/empty stats derive nil weights, and a nil
// weights map prices every link at 1 — the flat pre-link behavior.
func TestLinkWeightsEmpty(t *testing.T) {
	var s LinkStats
	if w := s.Weights(); w != nil {
		t.Errorf("empty stats derived weights %v", w)
	}
	var w LinkWeights
	if got := w.Of(LinkKey{3, 4}); got != 1 {
		t.Errorf("nil weights Of = %v, want 1", got)
	}
	if got := w.Mean(); got != 1 {
		t.Errorf("nil weights Mean = %v, want 1", got)
	}
}

// TestAddExchangeAtFlat: without installed weights, AddExchangeAt's
// weighted counter coincides with ExchRemoteRows, so CostUnits is
// bit-identical to the flat pricing.
func TestAddExchangeAtFlat(t *testing.T) {
	m := &Meter{}
	m.AddExchangeAt(0, 1, 100, 4000, true)
	m.AddExchangeAt(1, 1, 50, 0, false)
	c := m.Snapshot()
	if c.ExchRemoteRows != 100 || c.ExchLocalRows != 50 {
		t.Fatalf("rows: remote=%v local=%v", c.ExchRemoteRows, c.ExchLocalRows)
	}
	if c.ExchWeightedRows != c.ExchRemoteRows {
		t.Errorf("unweighted ExchWeightedRows = %v, want %v", c.ExchWeightedRows, c.ExchRemoteRows)
	}
	model := Default()
	flat := Counters{ExchRemoteRows: 100}
	if got, want := c.CostUnits(model), flat.CostUnits(model); got != want {
		t.Errorf("CostUnits = %v, want flat %v", got, want)
	}
}

// TestAddExchangeAtWeighted: installed weights scale the weighted
// counter per link, and CostUnits prefers it.
func TestAddExchangeAtWeighted(t *testing.T) {
	m := &Meter{}
	m.SetLinkWeights(LinkWeights{
		{0, 1}: 2.0,
		{1, 0}: 0.5,
	})
	m.AddExchangeAt(0, 1, 100, 0, true) // ×2
	m.AddExchangeAt(1, 0, 100, 0, true) // ×0.5
	m.AddExchangeAt(2, 3, 100, 0, true) // unmeasured ×1
	c := m.Snapshot()
	if want := 100*2.0 + 100*0.5 + 100*1.0; !almost(c.ExchWeightedRows, want) {
		t.Errorf("ExchWeightedRows = %v, want %v", c.ExchWeightedRows, want)
	}
	model := Default()
	if got, want := c.CostUnits(model), c.ExchWeightedRows*model.ExchangeRowFactor; !almost(got, want) {
		t.Errorf("CostUnits = %v, want %v", got, want)
	}
}

// TestLinkStatsMeterRoundTrip: the meter accumulates per-link traffic
// (AddExchangeAt rows/bytes + AddLinkNanos timing), hands it over via
// ResetLinks, and LinkStats.Merge folds histories together.
func TestLinkStatsMeterRoundTrip(t *testing.T) {
	m := &Meter{}
	m.AddExchangeAt(0, 1, 10, 400, true)
	m.AddLinkNanos(0, 1, 0, 8000)
	s := m.ResetLinks()
	if st := s[LinkKey{0, 1}]; st.Rows != 10 || st.Bytes != 400 || st.Nanos != 8000 {
		t.Fatalf("link stat = %+v", st)
	}
	if again := m.ResetLinks(); len(again) != 0 {
		t.Fatalf("ResetLinks did not clear: %v", again)
	}

	hist := make(LinkStats)
	hist.Merge(s)
	hist.Merge(s)
	if st := hist[LinkKey{0, 1}]; st.Rows != 20 || st.Nanos != 16000 {
		t.Fatalf("merged stat = %+v", st)
	}
	keys := hist.Keys()
	if len(keys) != 1 || keys[0] != (LinkKey{0, 1}) {
		t.Fatalf("keys = %v", keys)
	}
}
