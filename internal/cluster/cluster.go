// Package cluster provides the execution-cost model of §4.2 and the
// metering used by every experiment.
//
// The paper's model: query time is proportional to the number of blocks
// read; remote reads cost nearly the same as local ones (≈8% penalty,
// Fig. 7); a shuffle join charges CSJ = 3 units per block (read,
// partition+write, read again — eq. 1); a hyper-join charges 1 unit per
// build-side block plus CHyJ units per probe-side block where CHyJ
// emerges from how many times each probe block is actually fetched
// (eq. 2). Simulated wall time divides total units by the cluster's
// parallelism.
package cluster

import (
	"fmt"
	"sync"
)

// CostModel holds the constants of the §4.2 analysis.
type CostModel struct {
	// Nodes is the cluster size (the paper evaluates on 10).
	Nodes int
	// CSJ is the per-block shuffle factor; "set to 3 in our evaluation".
	CSJ float64
	// RemotePenalty multiplies remote block reads; the paper cites ≈8%
	// throughput loss for remote disk access.
	RemotePenalty float64
	// SecPerRow converts cost units (row reads) to simulated seconds on
	// one node. Calibrated once so reported magnitudes resemble the
	// paper's; all comparisons are within our own runs.
	SecPerRow float64
	// RepartWriteFactor is the extra per-row cost of writing a row to a
	// new partition during smooth repartitioning (read is charged by the
	// scan; the write costs this much more).
	RepartWriteFactor float64
	// IntermediateShuffleFactor is the per-row cost of shuffling a
	// materialized intermediate (§4.3's tempLO): projected, pipelined
	// rows crossing the network once, cheaper than the disk-based CSJ
	// repartitioning of base tables.
	IntermediateShuffleFactor float64
	// ExchangeRowFactor is the per-row cost of a row crossing the
	// simulated network through an exec.Exchange operator (remote rows
	// only — a row routed back to its own node never leaves the machine).
	// Like IntermediateShuffleFactor it prices a single pipelined network
	// hop, not the disk-based CSJ repartitioning of eq. 1.
	ExchangeRowFactor float64
	// SpillRowFactor is the per-row cost of a hash-join row demoted to a
	// disk run file under memory pressure: one sequential write plus the
	// second-pass read-back, both amortized over large frames. The
	// planner's shuffle estimates include this term when the executor
	// carries a memory budget, so a budget-starved shuffle build makes
	// the (never-spilling, group-bounded) hyper-join comparatively
	// cheaper — exactly the trade §4.1's grouping exists to win.
	SpillRowFactor float64
	// BloomSkipFrac is the fraction of a spilled partition's probe rows
	// the planner expects the join's Bloom filters to spare from the
	// spill round-trip (such rows cost nothing — they are dropped
	// before the run-file write). It discounts only the probe term of
	// the spill estimate; the build side always pays. Conservative by
	// default: on pure FK joins every probe row matches and the true
	// skip fraction is 0, while disjoint-key probes skip ~100%.
	BloomSkipFrac float64
}

// Default returns the model used across the experiments: 10 nodes,
// CSJ=3, 8% remote penalty.
func Default() CostModel {
	return CostModel{
		Nodes:                     10,
		CSJ:                       3.0,
		RemotePenalty:             1.08,
		SecPerRow:                 2e-3,
		RepartWriteFactor:         2.0,
		IntermediateShuffleFactor: 1.0,
		ExchangeRowFactor:         1.0,
		SpillRowFactor:            2.0,
		BloomSkipFrac:             0.25,
	}
}

// Meter accumulates I/O events for one query (or one experiment step).
// All methods are safe for concurrent use by executor tasks.
type Meter struct {
	mu sync.Mutex
	c  Counters
	// links accumulates per-(src,dst) traffic for Weights derivation;
	// lw prices remote exchange rows per link (nil = flat weight 1).
	// Both live outside Counters so Counters stays a comparable value
	// type (links.go).
	links LinkStats
	lw    LinkWeights
}

// Counters is a snapshot of metered work. Units are rows (a block read
// adds its row count), which normalizes partially filled blocks.
type Counters struct {
	// ScanLocal / ScanRemote are rows read by plain scans.
	ScanLocal, ScanRemote float64
	// ShuffleRows are rows that passed through a shuffle join (each is
	// charged CSJ units).
	ShuffleRows float64
	// BuildLocal / BuildRemote are hyper-join build-side rows.
	BuildLocal, BuildRemote float64
	// ProbeLocal / ProbeRemote are hyper-join probe-side rows, counting
	// re-reads (this is what makes CHyJ > 1).
	ProbeLocal, ProbeRemote float64
	// IntermediateRows are materialized intermediate rows shuffled to
	// align with the next join (§4.3).
	IntermediateRows float64
	// RepartRows are rows written into new partitions by the
	// repartitioning iterator.
	RepartRows float64
	// ExchLocalRows / ExchRemoteRows are rows that crossed an
	// exec.Exchange operator, split by whether the destination node is
	// the producing node (local: no network) or another node (remote:
	// one simulated network hop). A hyper-join over co-partitioned
	// tables moves nothing through exchanges, so both stay zero — the
	// §4.2 win the cost model exists to show.
	ExchLocalRows, ExchRemoteRows float64
	// ExchBytes approximates the wire bytes of the remote exchange rows.
	ExchBytes float64
	// ExchWeightedRows are the remote exchange rows scaled by the
	// measured weight of the link each crossed (links.go): with no link
	// weights installed it equals ExchRemoteRows exactly, so the flat
	// pricing is the zero-configuration behavior. CostUnits prefers it
	// over ExchRemoteRows when populated.
	ExchWeightedRows float64
	// SpillRows / SpillBytes are hash-join rows (and their run-file
	// bytes) demoted to disk under memory pressure — each such row is
	// written once and read back in the second probe pass, which
	// SpillRowFactor prices as a pair.
	SpillRows  float64
	SpillBytes float64
	// SpillSkippedRows are probe rows of spilled partitions whose spill
	// write the join's Bloom filter proved unnecessary (the key matches
	// no build row). They cost nothing — that is the point — so
	// CostUnits ignores them; the counter exists to make the saving
	// visible.
	SpillSkippedRows float64

	// Bookkeeping for experiment reporting.
	BlocksScanned int // distinct block read events (scan+build)
	ProbeBlocks   int // probe-side block read events, with multiplicity
	ResultRows    int // rows produced by the query
}

// Add folds another snapshot into this one — the serving layer's
// aggregation path, where per-query counters roll up into per-tenant
// and service totals without touching a live Meter.
func (c *Counters) Add(o Counters) {
	c.ScanLocal += o.ScanLocal
	c.ScanRemote += o.ScanRemote
	c.ShuffleRows += o.ShuffleRows
	c.BuildLocal += o.BuildLocal
	c.BuildRemote += o.BuildRemote
	c.ProbeLocal += o.ProbeLocal
	c.ProbeRemote += o.ProbeRemote
	c.IntermediateRows += o.IntermediateRows
	c.RepartRows += o.RepartRows
	c.ExchLocalRows += o.ExchLocalRows
	c.ExchRemoteRows += o.ExchRemoteRows
	c.ExchBytes += o.ExchBytes
	c.ExchWeightedRows += o.ExchWeightedRows
	c.SpillRows += o.SpillRows
	c.SpillBytes += o.SpillBytes
	c.SpillSkippedRows += o.SpillSkippedRows
	c.BlocksScanned += o.BlocksScanned
	c.ProbeBlocks += o.ProbeBlocks
	c.ResultRows += o.ResultRows
}

// AddScan meters a scanned block.
func (m *Meter) AddScan(rows int, local bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if local {
		m.c.ScanLocal += float64(rows)
	} else {
		m.c.ScanRemote += float64(rows)
	}
	m.c.BlocksScanned++
}

// AddShuffle meters rows flowing through a shuffle join.
func (m *Meter) AddShuffle(rows int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.ShuffleRows += float64(rows)
}

// AddIntermediateShuffle meters intermediate rows shuffled between
// joins.
func (m *Meter) AddIntermediateShuffle(rows int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.IntermediateRows += float64(rows)
}

// AddBuild meters a hyper-join build-side block read.
func (m *Meter) AddBuild(rows int, local bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if local {
		m.c.BuildLocal += float64(rows)
	} else {
		m.c.BuildRemote += float64(rows)
	}
	m.c.BlocksScanned++
}

// AddProbe meters a hyper-join probe-side block read (with
// multiplicity).
func (m *Meter) AddProbe(rows int, local bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if local {
		m.c.ProbeLocal += float64(rows)
	} else {
		m.c.ProbeRemote += float64(rows)
	}
	m.c.ProbeBlocks++
}

// AddExchange meters rows flowing through an exchange operator: rows
// delivered to the producing node itself are local (no network), rows
// delivered to any other node are remote and carry their approximate
// wire bytes. This is the single accounting point for simulated network
// traffic — exchange operators call it, nothing else does.
func (m *Meter) AddExchange(rows, bytes int, remote bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if remote {
		m.c.ExchRemoteRows += float64(rows)
		m.c.ExchBytes += float64(bytes)
		// No link identity: weight 1, the flat pricing.
		m.c.ExchWeightedRows += float64(rows)
	} else {
		m.c.ExchLocalRows += float64(rows)
	}
}

// AddSpill meters hash-join rows written to disk run files under
// memory pressure, with their encoded bytes. The read-back of the
// second pass is not metered separately — SpillRowFactor prices the
// write/read pair per spilled row.
func (m *Meter) AddSpill(rows, bytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.SpillRows += float64(rows)
	m.c.SpillBytes += float64(bytes)
}

// AddSpillSkip meters probe rows whose spill write a Bloom filter
// elided — no I/O happened, so no cost accrues; the counter only
// surfaces the saving.
func (m *Meter) AddSpillSkip(rows int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.SpillSkippedRows += float64(rows)
}

// AddRepartWrite meters rows written to new partitions.
func (m *Meter) AddRepartWrite(rows int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.RepartRows += float64(rows)
}

// AddResultRows meters produced result rows.
func (m *Meter) AddResultRows(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.ResultRows += n
}

// Snapshot returns the current counters.
func (m *Meter) Snapshot() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c
}

// Reset zeroes the meter and returns the previous counters.
func (m *Meter) Reset() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.c
	m.c = Counters{}
	return c
}

// Merge folds another snapshot into the meter.
func (m *Meter) Merge(o Counters) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.ScanLocal += o.ScanLocal
	m.c.ScanRemote += o.ScanRemote
	m.c.ShuffleRows += o.ShuffleRows
	m.c.IntermediateRows += o.IntermediateRows
	m.c.BuildLocal += o.BuildLocal
	m.c.BuildRemote += o.BuildRemote
	m.c.ProbeLocal += o.ProbeLocal
	m.c.ProbeRemote += o.ProbeRemote
	m.c.RepartRows += o.RepartRows
	m.c.ExchLocalRows += o.ExchLocalRows
	m.c.ExchRemoteRows += o.ExchRemoteRows
	m.c.ExchBytes += o.ExchBytes
	m.c.ExchWeightedRows += o.ExchWeightedRows
	m.c.SpillRows += o.SpillRows
	m.c.SpillBytes += o.SpillBytes
	m.c.SpillSkippedRows += o.SpillSkippedRows
	m.c.BlocksScanned += o.BlocksScanned
	m.c.ProbeBlocks += o.ProbeBlocks
	m.c.ResultRows += o.ResultRows
}

// CostUnits computes total row-units of work under the model:
//
//	scan + build + probe rows (remote ones scaled by RemotePenalty)
//	+ (CSJ − 1) × shuffled rows
//	+ RepartWriteFactor × repartition-written rows.
//
// A base-table row that is scanned and then shuffled costs 1 + (CSJ−1) =
// CSJ units in total, exactly eq. 1's CSJ·|b|: the scan meters the
// initial read, the shuffle adds the partition-write and re-read.
// Materialized intermediates that shuffle (§4.3) pay only the CSJ−1
// write+read, since they were never read from disk.
func (c Counters) CostUnits(m CostModel) float64 {
	u := c.ScanLocal + c.BuildLocal + c.ProbeLocal
	u += (c.ScanRemote + c.BuildRemote + c.ProbeRemote) * m.RemotePenalty
	u += c.ShuffleRows * (m.CSJ - 1)
	u += c.IntermediateRows * m.IntermediateShuffleFactor
	u += c.RepartRows * m.RepartWriteFactor
	// Weighted rows (per-link pricing, links.go) when populated; the
	// unweighted counter otherwise — snapshots built before per-link
	// accounting price exactly as they used to.
	exch := c.ExchWeightedRows
	if exch == 0 {
		exch = c.ExchRemoteRows
	}
	u += exch * m.ExchangeRowFactor
	u += c.SpillRows * m.SpillRowFactor
	return u
}

// SimSeconds converts cost units to simulated wall seconds, dividing by
// cluster parallelism.
func (c Counters) SimSeconds(m CostModel) float64 {
	n := m.Nodes
	if n < 1 {
		n = 1
	}
	return c.CostUnits(m) * m.SecPerRow / float64(n)
}

// String renders a compact counters summary.
func (c Counters) String() string {
	return fmt.Sprintf("scan=%.0f(+%.0fr) shuffle=%.0f build=%.0f(+%.0fr) probe=%.0f(+%.0fr) repart=%.0f exch=%.0f(+%.0fr) spill=%.0f(-%.0fskip) blocks=%d probes=%d rows=%d",
		c.ScanLocal, c.ScanRemote, c.ShuffleRows, c.BuildLocal, c.BuildRemote,
		c.ProbeLocal, c.ProbeRemote, c.RepartRows, c.ExchLocalRows, c.ExchRemoteRows,
		c.SpillRows, c.SpillSkippedRows, c.BlocksScanned, c.ProbeBlocks, c.ResultRows)
}

// ExchRows returns the total rows that crossed exchanges, local and
// remote — the acceptance counter for "a co-located hyper-join moves
// nothing".
func (c Counters) ExchRows() float64 { return c.ExchLocalRows + c.ExchRemoteRows }

// NewShards returns n independent meters plus a merge function that
// folds (and resets) every shard into dst exactly once per call. The
// per-node executors each own one shard, so hot-path metering never
// contends on a shared mutex; the session merges after each query's
// drain — "shard the meter per node and merge once".
func NewShards(n int) ([]*Meter, func(dst *Meter)) {
	if n < 1 {
		n = 1
	}
	shards := make([]*Meter, n)
	for i := range shards {
		shards[i] = &Meter{}
	}
	return shards, func(dst *Meter) {
		for _, s := range shards {
			dst.Merge(s.Reset())
		}
	}
}
