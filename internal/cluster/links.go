// Per-link network accounting, the Bala-Join refinement of the flat
// ExchangeRowFactor: once the fabric is real (internal/net), link
// capacities are heterogeneous — a loopback pair moves bytes orders of
// magnitude faster than a congested cross-rack pair — so the meter
// records measured bytes and wall time per (src, dst) pair and derives
// a relative weight per link. The planner scales the network share of
// its shuffle estimates by the mean observed weight, and CostUnits
// prices exchanged rows by the weight of the link they actually
// crossed instead of a cluster-wide constant.
package cluster

import "sort"

// LinkKey identifies one directed node pair. Src == Dst is the
// loopback "link" of same-node deliveries (never weighted — local rows
// cost nothing, as before).
type LinkKey struct {
	Src, Dst int
}

// LinkStat accumulates the measured traffic of one link: rows and wire
// bytes shipped, and the sender-side wall nanoseconds spent moving
// them (TCP fabric only; the simulated fabric ships in memory and
// records no time).
type LinkStat struct {
	Rows  float64
	Bytes float64
	Nanos float64
}

// LinkStats maps directed links to their accumulated traffic.
type LinkStats map[LinkKey]LinkStat

// Add folds one transfer into the stats.
func (s LinkStats) Add(k LinkKey, rows, bytes int, nanos int64) {
	st := s[k]
	st.Rows += float64(rows)
	st.Bytes += float64(bytes)
	st.Nanos += float64(nanos)
	s[k] = st
}

// Merge folds another stats map into this one.
func (s LinkStats) Merge(o LinkStats) {
	for k, st := range o {
		cur := s[k]
		cur.Rows += st.Rows
		cur.Bytes += st.Bytes
		cur.Nanos += st.Nanos
		s[k] = cur
	}
}

// Clone returns an independent copy.
func (s LinkStats) Clone() LinkStats {
	out := make(LinkStats, len(s))
	for k, st := range s {
		out[k] = st
	}
	return out
}

// LinkWeights prices each directed link relative to the cluster mean:
// 1.0 is an average link, 2.0 a link observed twice as slow per byte.
// The zero/nil map means "unmeasured — every link weighs 1", which
// reproduces the flat ExchangeRowFactor pricing exactly.
type LinkWeights map[LinkKey]float64

// Weights derives relative link weights from measured throughput:
// each link's ns-per-byte, normalized so the mean across measured
// remote links is 1. Links without timing data (or without traffic)
// get weight 1. The normalization keeps the CostModel calibration
// stable — installing weights changes the *relative* pricing of links,
// not the overall magnitude of simulated seconds.
func (s LinkStats) Weights() LinkWeights {
	type nsb struct {
		k LinkKey
		v float64
	}
	var measured []nsb
	for k, st := range s {
		if k.Src == k.Dst || st.Bytes <= 0 || st.Nanos <= 0 {
			continue
		}
		measured = append(measured, nsb{k, st.Nanos / st.Bytes})
	}
	if len(measured) == 0 {
		return nil
	}
	mean := 0.0
	for _, m := range measured {
		mean += m.v
	}
	mean /= float64(len(measured))
	if mean <= 0 {
		return nil
	}
	w := make(LinkWeights, len(measured))
	for _, m := range measured {
		w[m.k] = m.v / mean
	}
	return w
}

// Of returns the weight of a link, defaulting to 1 for unmeasured
// links (and for a nil map).
func (w LinkWeights) Of(k LinkKey) float64 {
	if w == nil {
		return 1
	}
	if v, ok := w[k]; ok && v > 0 {
		return v
	}
	return 1
}

// Mean returns the average weight across the map (1 when empty) — the
// scalar the planner folds into the network share of its shuffle
// estimates, since at plan time it cannot know which links a shuffle
// will use.
func (w LinkWeights) Mean() float64 {
	if len(w) == 0 {
		return 1
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w))
}

// Keys returns the links in deterministic (src, dst) order — for
// stable test output and reports.
func (s LinkStats) Keys() []LinkKey {
	keys := make([]LinkKey, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	return keys
}

// AddExchangeAt meters rows flowing through an exchange with the
// directed link they crossed — the placement-aware successor of
// AddExchange. Remote rows accumulate ExchWeightedRows scaled by the
// installed link weight (1 when no weights are installed, making the
// weighted counter coincide with ExchRemoteRows), and per-link traffic
// is recorded for the next Weights derivation.
func (m *Meter) AddExchangeAt(src, dst int, rows, bytes int, remote bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if remote {
		m.c.ExchRemoteRows += float64(rows)
		m.c.ExchBytes += float64(bytes)
		m.c.ExchWeightedRows += float64(rows) * m.lw.Of(LinkKey{src, dst})
	} else {
		m.c.ExchLocalRows += float64(rows)
	}
	if m.links == nil {
		m.links = make(LinkStats)
	}
	m.links.Add(LinkKey{src, dst}, rows, bytes, 0)
}

// AddLinkNanos records sender-side wall time spent moving bytes over a
// link — the TCP fabric's measurement hook. The simulated fabric never
// calls it, so its links stay unweighted.
func (m *Meter) AddLinkNanos(src, dst int, bytes int, nanos int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.links == nil {
		m.links = make(LinkStats)
	}
	m.links.Add(LinkKey{src, dst}, 0, bytes, nanos)
}

// SetLinkWeights installs measured per-link weights for subsequent
// AddExchangeAt calls. Nil restores flat (weight-1) pricing.
func (m *Meter) SetLinkWeights(w LinkWeights) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lw = w
}

// LinkWeightsSnapshot returns the currently installed weights.
func (m *Meter) LinkWeightsSnapshot() LinkWeights {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lw
}

// Links returns a copy of the accumulated per-link traffic.
func (m *Meter) Links() LinkStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.links.Clone()
}

// ResetLinks clears and returns the accumulated per-link traffic —
// sessions fold it into their long-lived link history after each
// query, the way Reset hands over the scalar counters.
func (m *Meter) ResetLinks() LinkStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.links
	m.links = nil
	return s
}
