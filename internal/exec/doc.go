// Package exec is the query executor (§6): it runs scan tasks,
// repartitioning iterators, shuffle joins and hyper-joins over the
// blocks of AdaptDB tables, metering every block read and shuffled row
// through the cluster cost model. It plays the role Spark plays for the
// paper's prototype — a dumb, parallel data plane under a smart storage
// manager.
//
// Paper mapping:
//
//   - §4.1 — HyperJoin / HyperJoinOp execute the grouped build/probe
//     algorithm over the block-grouping produced by internal/hyperjoin;
//     PlanHyper computes the block-read schedule the optimizer prices.
//   - §4.2 — every operator meters block reads and shuffled rows into a
//     cluster.Meter, from which the cost model derives simulated time.
//   - §4.3 — ShuffleJoinIntermediates charges the cheaper pipelined
//     factor for shuffling materialized intermediates between joins.
//   - §6 — Scan/ScanRefs implement predicate-based data access with
//     tree and zone-map pruning; Executor.RoundRobin and NoPrune are
//     the Fig. 7 locality and §7.3 full-scan baseline switches.
//
// The package has two API layers. The batched pipeline layer
// (pipeline.go) is the execution engine proper: fixed-capacity Batch
// chunks stream through Open/Next/Close Operators — block scans
// (ScanOp, TableScanOp), hash joins (JoinOp), hyper-joins
// (NewHyperJoinOp), filters (Where) and in-memory sources (NewSource)
// — with scans, hyper-join groups, and the radix-partitioned join's
// build and probe phases all running on a bounded worker pool. Every
// join path shares the specialized hash table of joinht.go (value.Hash64
// keys, chained row indices, value.Equal collision checks, NULL keys
// never matching). The structural operators of ops.go — Instrument
// (per-operator rows/batches/time + completion hooks), Concat
// (sequential stream union) and SwapSides (column-order repair for
// flipped builds) — are what the planner's compiler wires around these
// to turn a whole plan tree into one executable DAG.
//
// The per-node fabric (nodes.go, exchange.go) turns the executor into
// an N-node simulated cluster: EnableNodes gives every dfs node its own
// executor view (pinned worker pool + meter shard), NodeSet.SplitRefs
// schedules scans where blocks live, and Exchange operators
// (Shuffle/ShuffleGlobal/Broadcast/Deal) move batches between node
// fragments, metering the rows and bytes that cross nodes. Gather
// merges per-node streams at the coordinator. A co-located hyper-join
// uses no exchange at all — zero rows cross the simulated network.
// The legacy slice-returning layer (Scan, ScanRefs, ShuffleJoin*,
// HyperJoin) consists of thin Collect() adapters over those operators,
// kept so the planner, experiments and baselines can stay
// materialization-oriented where result sets are small. New code that
// cares about memory or latency should compose Operators and consume
// batches directly; see README.md in this directory for an example
// pipeline.
package exec
