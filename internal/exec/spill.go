// The spilling half of the hybrid hash join: run-file I/O, partition
// demotion under memory pressure, and the second-pass probe.
//
// The in-memory radix join (pipeline.go) assumes every build-side
// partition fits in RAM; one oversized build OOMs the whole session.
// When the executor carries a MemBudget, the join becomes a classic
// Grace/hybrid hash join instead: build rows charge the budget as they
// accumulate, and on pressure an in-memory partition is demoted to disk
// — its rows (and every later build or probe row that hashes to it)
// stream into columnar run files under a temp dir, while the surviving
// partitions keep the untouched in-memory fast path. After the
// in-memory probe drains, the second pass joins each spilled partition
// from its run files: load-and-probe when either side fits the budget
// (role reversal picks the smaller one), recursive re-partitioning on
// the next radix bit range when neither does, and a chunked build
// (multiple passes over the larger side) as the terminal fallback for
// partitions hash bits cannot split — the all-duplicate-key case.
//
// Three defenses keep the join robust against bad inputs and bad
// estimates (the trade-offs literature on dynamic hybrid hash joins):
//
//   - victim selection is scored, not largest-first: a partition's
//     demotion score is bytes × distinctFrac, where distinctFrac is
//     estimated from a 64-bit sample bitmap of its key hashes.
//     Duplicate-heavy partitions — whose probe rows hit densely and
//     would all pay the spill round-trip — score low and stay in
//     memory; wide sparse partitions go to disk first.
//   - each demoted partition gets a Bloom filter over its build-side
//     key hashes. Probe rows whose key cannot match skip the spill
//     write entirely (a negative is exact — every build row of a
//     demoted partition funnels through the filter before the probe
//     starts). Skips are metered as SpillSkippedRows.
//   - the second pass re-checks both sides' run sizes before loading
//     and swaps roles when the probe run is the smaller one, so a
//     mis-estimated build side degrades into one extra comparison, not
//     a recursive re-partitioning storm.
package exec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"adaptdb/internal/tuple"
)

const (
	// spillFrameRows is the row granularity of run-file frames: big
	// enough that frame headers and write calls amortize, small enough
	// that the writer's pending copies stay a rounding error against the
	// budget.
	spillFrameRows = 256
	// spillSubBits is the radix width of one recursive re-partitioning
	// level: each level splits a spilled partition 16 ways on the next
	// 4 hash bits below the radix bits the first pass consumed.
	spillSubBits = 4
	spillFanout  = 1 << spillSubBits
	// maxSpillDepth bounds recursive re-partitioning. A partition still
	// over budget after this many 16-way splits is dominated by
	// duplicate keys no hash bits can separate; it falls back to the
	// chunked build.
	maxSpillDepth = 6
)

// errSpillClosed unwinds the second pass when the operator is closed
// mid-stream; it is swallowed at the top (early close is not an error).
var errSpillClosed = errors.New("exec: spill join closed")

// runFile is one finished run file: its path and the row/byte totals
// the second pass sizes loads with. memBytes is the in-memory footprint
// of the rows (tuple.MemBytes), the number budget decisions use;
// diskBytes is the encoded size, the number the spill meter charges.
type runFile struct {
	path      string
	rows      int64
	diskBytes int64
	memBytes  int64
}

// runWriter streams rows into one run file, buffering spillFrameRows
// copies and flushing them as a length-prefixed columnar frame
// (tuple.AppendFrame) through a bufio layer, so syscall count scales
// with bytes, not frames. Rows are copied into the writer's arena at
// append, so callers may hand over rows that die with their batch.
type runWriter struct {
	f     io.WriteCloser
	bw    *bufio.Writer
	path  string
	pend  []tuple.Tuple
	arena tuple.Arena
	enc   []byte
	file  runFile

	// pendCols buffers rows spilled from columnar batches: flat typed
	// copies instead of boxed tuples, encoded straight to the (column-
	// major) frame format at flush. Row and columnar rows may interleave
	// on one writer; they flush as separate frames of the same file.
	pendCols *tuple.Columns
}

func newRunWriter(fs spillFS, path string) (*runWriter, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	return &runWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), path: path, file: runFile{path: path}}, nil
}

// append buffers one row for the next frame. copyRow must be true when
// the row dies with its batch (owned rows); view rows referencing block
// storage skip the arena copy — most of the spill stream on scan-fed
// joins, which keeps the demotion path cheap.
func (w *runWriter) append(r tuple.Tuple, copyRow bool) error {
	if copyRow {
		r = w.arena.Concat(r, nil)
	}
	w.pend = append(w.pend, r)
	w.file.memBytes += int64(r.MemBytes())
	if len(w.pend) >= spillFrameRows {
		return w.flush()
	}
	return nil
}

// appendCol buffers physical row i of a columnar batch — a flat typed
// copy into the writer's column store, no boxing, no arena copy. The
// vectorized twin of append(r, true): src may be recycled right after.
func (w *runWriter) appendCol(src *tuple.Columns, i int) error {
	if w.pendCols == nil {
		w.pendCols = tuple.NewColumns(src.NumCols())
	}
	w.pendCols.AppendRowFrom(src, i)
	w.file.memBytes += int64(src.MemBytesRow(i))
	if w.pendCols.FullLen() >= spillFrameRows {
		return w.flush()
	}
	return nil
}

// writeFrame writes one encoded frame with its length prefix.
func (w *runWriter) writeFrame(frame []byte, rows int) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(frame)))
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.bw.Write(frame); err != nil {
		return err
	}
	w.file.rows += int64(rows)
	w.file.diskBytes += int64(n + len(frame))
	return nil
}

func (w *runWriter) flush() error {
	if len(w.pend) > 0 {
		frame, err := tuple.AppendFrame(w.enc[:0], w.pend)
		if err != nil {
			return err
		}
		if err := w.writeFrame(frame, len(w.pend)); err != nil {
			return err
		}
		w.enc = frame[:0]
		w.pend = w.pend[:0]
	}
	if w.pendCols != nil && w.pendCols.FullLen() > 0 {
		frame := w.pendCols.AppendFrame(w.enc[:0])
		if err := w.writeFrame(frame, w.pendCols.FullLen()); err != nil {
			return err
		}
		w.enc = frame[:0]
		w.pendCols.Reset(w.pendCols.NumCols())
	}
	return nil
}

// finish flushes the tail frame and closes the file, returning its
// totals. The writer is dead afterwards.
func (w *runWriter) finish() (runFile, error) {
	ferr := w.flush()
	if ferr == nil {
		ferr = w.bw.Flush()
	} else {
		w.bw.Flush()
	}
	cerr := w.f.Close()
	if ferr != nil {
		return w.file, ferr
	}
	return w.file, cerr
}

// eachRunFrame streams every frame of the given run files through fn in
// file order. With a nil scratch, frames decode into fresh storage and
// fn may retain the rows (the second pass builds tables from them);
// with a scratch, storage is reused across frames — allocation-free
// streaming for fns that drop every row before returning (the probe
// side of a spilled-partition join).
func eachRunFrame(fs spillFS, files []runFile, sc *tuple.FrameScratch, fn func([]tuple.Tuple) error) error {
	buf := make([]byte, 0, 1<<16)
	for _, rf := range files {
		f, err := fs.Open(rf.path)
		if err != nil {
			return err
		}
		br := bufio.NewReaderSize(f, 1<<16)
		for {
			n, err := binary.ReadUvarint(br)
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return fmt.Errorf("exec: run %s: %w", rf.path, err)
			}
			if cap(buf) < int(n) {
				buf = make([]byte, n)
			}
			buf = buf[:n]
			if _, err := io.ReadFull(br, buf); err != nil {
				f.Close()
				return fmt.Errorf("exec: run %s: %w", rf.path, err)
			}
			var rows []tuple.Tuple
			if sc != nil {
				rows, _, err = sc.Decode(buf)
			} else {
				rows, _, err = tuple.DecodeFrame(buf)
			}
			if err != nil {
				f.Close()
				return fmt.Errorf("exec: run %s: %w", rf.path, err)
			}
			if err := fn(rows); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// sumRunBytes totals the in-memory footprint a set of run files would
// load to.
func sumRunBytes(files []runFile) int64 {
	n := int64(0)
	for _, f := range files {
		n += f.memBytes
	}
	return n
}

func removeRuns(fs spillFS, files []runFile) {
	for _, f := range files {
		fs.Remove(f.path)
	}
}

// joinSpill is the shared spill state of one budgeted hashJoinOp. All
// per-partition slices are sized to the join's dynamic fan-out
// (hashJoinOp.nParts).
type joinSpill struct {
	j *hashJoinOp

	dirOnce sync.Once
	dirErr  error
	dir     string

	// spilled marks demoted partitions; set only during the build phase,
	// frozen before the probe starts, so probe routing is consistent.
	spilled []atomic.Bool
	// partBytes tracks the in-memory bytes each partition currently
	// holds across all build workers — the victim-selection ranking and
	// the "pending eviction" correction pressure() applies.
	partBytes []atomic.Int64
	// partRows / partSample feed victim scoring: row count plus a 64-bit
	// bitmap sampling the low 6 bits of each key hash. popcount(sample)
	// saturates at 64 and estimates key diversity — a partition holding
	// one hot key sets one bit no matter how many rows it holds.
	partRows   []atomic.Int64
	partSample []atomic.Uint64
	// blooms[p] is the Bloom filter over partition p's build-side key
	// hashes, created before the spilled flag is published so any worker
	// that observes the demotion also observes the filter. Nil when
	// Bloom filtering is disabled or the partition never spilled.
	blooms []atomic.Pointer[bloomFilter]

	mu         sync.Mutex // victim selection + file registries
	buildFiles [][]runFile
	probeFiles [][]runFile

	fileSeq      atomic.Int64
	spilledRows  atomic.Int64
	spilledBytes atomic.Int64
	skipped      atomic.Int64 // probe rows the Bloom filter spared from spilling
	reversals    atomic.Int64 // second-pass loads that swapped build/probe roles
	memHeld      atomic.Int64 // net budget bytes this join has charged

	// sem gates concurrent second-pass loads: fit decisions use the full
	// operator limit (so a partition that fits never re-partitions), and
	// the semaphore keeps the SUM of simultaneous loads inside that
	// limit — full parallelism for small partitions, graceful
	// serialization when each load needs the whole budget.
	sem *byteSem
}

// byteSem is a weighted semaphore over budget bytes. Requests larger
// than the capacity clamp to it (they could never proceed otherwise),
// so a single oversized load serializes instead of deadlocking.
type byteSem struct {
	mu    sync.Mutex
	cond  *sync.Cond
	avail int64
	cap   int64
}

func newByteSem(n int64) *byteSem {
	if n < 1 {
		n = 1
	}
	s := &byteSem{avail: n, cap: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *byteSem) acquire(n int64) int64 {
	if n > s.cap {
		n = s.cap
	}
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	for s.avail < n {
		s.cond.Wait()
	}
	s.avail -= n
	s.mu.Unlock()
	return n
}

func (s *byteSem) release(n int64) {
	s.mu.Lock()
	s.avail += n
	s.mu.Unlock()
	s.cond.Broadcast()
}

func newJoinSpill(j *hashJoinOp) *joinSpill {
	n := j.nParts
	return &joinSpill{
		j:          j,
		spilled:    make([]atomic.Bool, n),
		partBytes:  make([]atomic.Int64, n),
		partRows:   make([]atomic.Int64, n),
		partSample: make([]atomic.Uint64, n),
		blooms:     make([]atomic.Pointer[bloomFilter], n),
		buildFiles: make([][]runFile, n),
		probeFiles: make([][]runFile, n),
	}
}

// fs returns the run-file filesystem (injectable for fault tests).
func (sp *joinSpill) fs() spillFS { return sp.j.e.spillFS() }

// tempDir lazily creates the join's spill directory — a join that never
// exceeds its budget touches no filesystem at all. The directory itself
// always comes from the real OS (the injected spillFS only mediates the
// run files inside it), so Close's RemoveAll guarantee survives any
// injected fault.
func (sp *joinSpill) tempDir() (string, error) {
	sp.dirOnce.Do(func() {
		sp.dir, sp.dirErr = os.MkdirTemp(sp.j.e.SpillDir, "adaptdb-join-*")
	})
	return sp.dir, sp.dirErr
}

func (sp *joinSpill) isSpilled(p int) bool { return sp.spilled[p].Load() }

// bloomAt returns partition p's Bloom filter, nil when none exists.
func (sp *joinSpill) bloomAt(p int) *bloomFilter { return sp.blooms[p].Load() }

func (sp *joinSpill) anySpilled() bool {
	for p := range sp.spilled {
		if sp.spilled[p].Load() {
			return true
		}
	}
	return false
}

// charge/release wrap the executor budget, tracking the join's net hold
// so Close can return whatever an error path left charged.
func (sp *joinSpill) charge(n int64) bool {
	sp.memHeld.Add(n)
	return sp.j.e.Mem.Charge(n)
}

func (sp *joinSpill) release(n int64) {
	sp.memHeld.Add(-n)
	sp.j.e.Mem.Release(n)
}

// noteBuildRow records one retained build row in partition p's
// victim-scoring stats: bytes, rows, and a sample bit keyed by the low
// 6 hash bits (the high bits picked the partition and are constant
// within it). The sample CAS is cheap — after the first 64-ish distinct
// keys the load-check short-circuits every time.
func (sp *joinSpill) noteBuildRow(p int, h uint64, n int64) {
	sp.partBytes[p].Add(n)
	sp.partRows[p].Add(1)
	bit := uint64(1) << (h & 63)
	for {
		old := sp.partSample[p].Load()
		if old&bit != 0 || sp.partSample[p].CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// victimScore ranks partition p for demotion: resident bytes scaled by
// estimated key diversity. A partition dominated by duplicate keys has
// a near-zero diversity fraction — its probe rows hit densely, so
// spilling it would round-trip the most matches through disk — while a
// wide distinct-key partition scores near its full byte size. Any
// partition with resident bytes scores > 0, so demotion always makes
// progress.
func (sp *joinSpill) victimScore(p int) float64 {
	bytes := sp.partBytes[p].Load()
	if bytes <= 0 {
		return 0
	}
	rows := sp.partRows[p].Load()
	if rows < 1 {
		rows = 1
	}
	if rows > 64 {
		rows = 64
	}
	distinct := bits.OnesCount64(sp.partSample[p].Load())
	if distinct < 1 {
		distinct = 1
	}
	return float64(bytes) * float64(distinct) / float64(rows)
}

// demote publishes partition p's demotion: Bloom filter first (sized
// for the rows seen so far plus the planner's per-partition estimate,
// whichever is larger), then the spilled flag, so observers of the flag
// always see the filter.
func (sp *joinSpill) demote(p int) {
	if !sp.j.opts.DisableBloom {
		est := sp.partRows[p].Load() * 2
		if per := int64(sp.j.opts.BuildRowsEst / sp.j.nParts); per > est {
			est = per
		}
		if est < 1024 {
			est = 1024
		}
		sp.blooms[p].Store(newBloomFilter(int(est), defaultBloomFPR))
	}
	sp.spilled[p].Store(true)
}

// pressure demotes in-memory partitions, best score first, until the
// budget would fit once pending evictions land. Demotion is a flag
// flip: the bytes come back as each build worker flushes its share of
// the victim to disk (evict), so the accounting subtracts every
// already-demoted partition's still-resident bytes before deciding
// whether another victim is needed.
func (sp *joinSpill) pressure() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	mem := sp.j.e.Mem
	pending := int64(0)
	for p := range sp.spilled {
		if sp.spilled[p].Load() {
			pending += sp.partBytes[p].Load()
		}
	}
	for mem.Used()-pending > mem.Limit() {
		best, bestScore := -1, 0.0
		for p := range sp.spilled {
			if !sp.spilled[p].Load() {
				if s := sp.victimScore(p); s > bestScore {
					best, bestScore = p, s
				}
			}
		}
		if best < 0 {
			return // everything is spilled (or empty); nothing left to demote
		}
		sp.demote(best)
		pending += sp.partBytes[best].Load()
	}
}

// noteRun registers a finished run file on one side's registry and
// meters the spill I/O.
func (sp *joinSpill) noteRun(p int, probe bool, rf runFile) {
	if rf.rows == 0 {
		sp.fs().Remove(rf.path)
		return
	}
	sp.mu.Lock()
	if probe {
		sp.probeFiles[p] = append(sp.probeFiles[p], rf)
	} else {
		sp.buildFiles[p] = append(sp.buildFiles[p], rf)
	}
	sp.mu.Unlock()
	sp.spilledRows.Add(rf.rows)
	sp.spilledBytes.Add(rf.diskBytes)
	sp.j.e.Meter.AddSpill(int(rf.rows), int(rf.diskBytes))
}

// takeFiles hands a partition's run files to the second pass, clearing
// the registries.
func (sp *joinSpill) takeFiles(p int) (build, probe []runFile) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	build, probe = sp.buildFiles[p], sp.probeFiles[p]
	sp.buildFiles[p], sp.probeFiles[p] = nil, nil
	return build, probe
}

// cleanup removes the spill directory and returns any budget bytes an
// early close or error path left charged. Called exactly once, from the
// operator's Close, after every goroutine that touches the files has
// exited.
func (sp *joinSpill) cleanup() {
	if held := sp.memHeld.Swap(0); held != 0 {
		sp.j.e.Mem.Release(held)
	}
	if sp.dir != "" {
		os.RemoveAll(sp.dir)
	}
}

// partSpiller owns one worker's lazy per-partition run writers for one
// side of the join. Not safe for concurrent use — each build/probe
// worker has its own.
type partSpiller struct {
	sp    *joinSpill
	side  string // "b" or "p"
	id    int    // worker id, part of the file name
	probe bool
	wr    []*runWriter
}

func (sp *joinSpill) newPartSpiller(id int, probe bool) *partSpiller {
	side := "b"
	if probe {
		side = "p"
	}
	return &partSpiller{sp: sp, side: side, id: id, probe: probe, wr: make([]*runWriter, sp.j.nParts)}
}

// write spills one row of partition p under its key hash. Build-side
// rows also land in the partition's Bloom filter — every spill write of
// a demoted partition's build side passes through here (direct writes,
// evictions, and leftover flushes alike), which is what makes a
// negative filter answer exact.
func (s *partSpiller) write(p int, h uint64, r tuple.Tuple, copyRow bool) error {
	w, err := s.writer(p, h)
	if err != nil {
		return err
	}
	return w.append(r, copyRow)
}

// writeCol spills physical row i of a columnar batch — same protocol as
// write (Bloom maintenance included) without materializing the row.
func (s *partSpiller) writeCol(p int, h uint64, src *tuple.Columns, i int) error {
	w, err := s.writer(p, h)
	if err != nil {
		return err
	}
	return w.appendCol(src, i)
}

// writer returns partition p's run writer, creating it on first use,
// and folds build-side hashes into the partition's Bloom filter.
func (s *partSpiller) writer(p int, h uint64) (*runWriter, error) {
	if !s.probe {
		if bf := s.sp.bloomAt(p); bf != nil {
			bf.add(h)
		}
	}
	w := s.wr[p]
	if w == nil {
		dir, err := s.sp.tempDir()
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%s-p%02d-w%02d-%d.run", s.side, p, s.id, s.sp.fileSeq.Add(1))
		w, err = newRunWriter(s.sp.fs(), filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		s.wr[p] = w
	}
	return w, nil
}

// finish seals every open writer, registering its run file.
func (s *partSpiller) finish() error {
	var first error
	for p, w := range s.wr {
		if w == nil {
			continue
		}
		rf, err := w.finish()
		if err != nil && first == nil {
			first = err
		}
		s.wr[p] = nil
		if err == nil {
			s.sp.noteRun(p, s.probe, rf)
		}
	}
	return first
}

// evict flushes one build worker's in-memory rows for a freshly demoted
// partition into its run file and returns their bytes to the budget.
// bytes is the worker's per-partition byte ledger.
func (s *partSpiller) evict(p int, buf *joinBuf, bytes *int64) error {
	if buf.n == 0 && *bytes == 0 {
		return nil
	}
	for _, c := range buf.chunks {
		for i := range c {
			// Buffered build rows are stable by construction (view rows
			// or the worker's arena copies) — no re-copy on eviction.
			if err := s.write(p, c[i].hash, c[i].row, false); err != nil {
				return err
			}
		}
	}
	*buf = joinBuf{}
	s.sp.partBytes[p].Add(-*bytes)
	s.sp.release(*bytes)
	*bytes = 0
	return nil
}

// flushLeftovers writes every build worker's still-resident rows of
// demoted partitions to one final run file per partition. A partition
// can be demoted AFTER a worker has already drained its input and run
// its final sweep (another worker's charge triggered the demotion), so
// per-worker eviction alone can strand rows in a buffer the seal phase
// would then drop — the exact row-loss the -spill bench self-gate
// caught. Leftovers are only complete once every worker has exited;
// this runs between the build drain and table sealing, with the
// spilled set frozen.
func (sp *joinSpill) flushLeftovers(bufs [][]joinBuf) error {
	var spw *partSpiller
	for p := 0; p < sp.j.nParts; p++ {
		if !sp.spilled[p].Load() {
			continue
		}
		if freed := sp.partBytes[p].Swap(0); freed != 0 {
			sp.release(freed)
		}
		for wi := range bufs {
			buf := &bufs[wi][p]
			if buf.n == 0 {
				continue
			}
			if spw == nil {
				// One extra spiller id past the worker range keeps file
				// names collision-free.
				spw = sp.newPartSpiller(len(bufs), false)
			}
			for _, c := range buf.chunks {
				for i := range c {
					if err := spw.write(p, c[i].hash, c[i].row, false); err != nil {
						return err
					}
				}
			}
			*buf = joinBuf{}
		}
	}
	if spw != nil {
		return spw.finish()
	}
	return nil
}

// ---- second pass ----

// spillEmit accumulates second-pass matches into output batches. The
// second pass runs one worker per spilled partition slot; each worker
// owns its own spillEmit, so one pending batch per emitter suffices.
type spillEmit struct {
	j   *hashJoinOp
	cur *Batch
}

func (e *spillEmit) emit(b, p tuple.Tuple) error {
	if e.cur == nil {
		e.cur = NewBatch()
	}
	if e.j.opts.BuildIsRight {
		e.cur.AppendConcat(p, b)
	} else {
		e.cur.AppendConcat(b, p)
	}
	if e.cur.Full() {
		ok := e.j.send(e.cur)
		e.cur = nil
		if !ok {
			return errSpillClosed
		}
	}
	return nil
}

func (e *spillEmit) finish() {
	if e.cur == nil {
		return
	}
	if e.cur.Len() > 0 {
		e.j.send(e.cur)
	} else {
		e.cur.Release()
	}
	e.cur = nil
}

// secondPass joins every spilled partition from its run files, emitting
// result batches through the operator's normal send path. Runs after
// all probe workers have exited and before the output channel closes.
// Spilled partitions are independent, so the pass runs them on the full
// worker pool — each worker owns its partitions end to end (load,
// recurse, probe, emit via its own batches), matching the first pass's
// partition parallelism instead of serializing the spilled tail.
func (j *hashJoinOp) secondPass() {
	sp := j.spill
	// The first-pass tables are done: their probe stream has drained.
	// Drop them (row tables or the columnar store) and return their
	// budget bytes — that headroom funds the second-pass loads.
	j.cbuild = nil
	for p := range j.parts {
		j.parts[p] = nil
		if held := sp.partBytes[p].Swap(0); held != 0 {
			sp.release(held)
		}
	}
	var parts []int
	for p := 0; p < j.nParts; p++ {
		if sp.isSpilled(p) {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return
	}
	w := j.workerCount()
	if w > len(parts) {
		w = len(parts)
	}
	// Fit decisions use the full operator limit; the byte semaphore
	// keeps the sum of concurrent loads inside it.
	limit := j.e.Mem.Limit()
	sp.sem = newByteSem(limit)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			em := &spillEmit{j: j}
			for {
				if cerr := j.e.ctxErr(); cerr != nil {
					j.fail(cerr)
				}
				k := int(next.Add(1) - 1)
				if k >= len(parts) || j.failed.Load() {
					break
				}
				build, probe := sp.takeFiles(parts[k])
				if err := j.joinSpilled(0, build, probe, em, limit); err != nil {
					removeRuns(sp.fs(), build)
					removeRuns(sp.fs(), probe)
					if err != errSpillClosed {
						j.fail(err)
					}
					break
				}
			}
			em.finish()
		}()
	}
	wg.Wait()
}

// joinSpilled joins one spilled partition. The load side is whichever
// side's run files are smaller — when the probe runs undercut the build
// runs, roles reverse (the classic dynamic-HHJ defense against a
// mis-estimated build side) and the build rows stream instead:
//
//   - the smaller side fits the budget → load it into one table and
//     stream the other side through it;
//   - neither side fits but hash bits remain → re-partition both sides
//     16 ways on the next bit range and recurse (reversal is re-decided
//     per sub-partition from actual sub-run sizes);
//   - bits exhausted or maxSpillDepth reached → chunked build: the
//     terminal fallback that loads budget-sized chunks of the smaller
//     side and re-streams the larger side per chunk (correct for any
//     key distribution, including a single key repeated millions of
//     times).
func (j *hashJoinOp) joinSpilled(level int, build, probe []runFile, em *spillEmit, limit int64) error {
	fs := j.spill.fs()
	// Checked per (sub-)partition: the recursion re-enters here, so a
	// cancelled query abandons a spilled join between loads rather than
	// finishing a multi-level repartition.
	if cerr := j.e.ctxErr(); cerr != nil {
		removeRuns(fs, build)
		removeRuns(fs, probe)
		return cerr
	}
	if len(build) == 0 || len(probe) == 0 {
		removeRuns(fs, build)
		removeRuns(fs, probe)
		return nil
	}
	load, stream := build, probe
	loadCol, streamCol := j.bCol, j.pCol
	reversed := false
	if sumRunBytes(probe) < sumRunBytes(build) {
		load, stream = probe, build
		loadCol, streamCol = j.pCol, j.bCol
		reversed = true
	}
	shift := 64 - j.radixBits - spillSubBits*(level+1)
	switch {
	case sumRunBytes(load) <= limit:
		if reversed {
			j.spill.reversals.Add(1)
		}
		return j.loadAndProbe(load, loadCol, stream, streamCol, reversed, em)
	case level >= maxSpillDepth || shift < 0:
		if reversed {
			j.spill.reversals.Add(1)
		}
		return j.chunkedJoin(load, loadCol, stream, streamCol, reversed, em, limit)
	default:
		return j.repartition(level, shift, build, probe, em, limit)
	}
}

// loadAndProbe is the happy second-pass path: the load side fits, so
// the partition joins exactly like a first-pass partition — one table,
// one probe stream. reversed marks the table as holding probe-side rows
// (role reversal), which only flips the emit orientation.
func (j *hashJoinOp) loadAndProbe(load []runFile, loadCol int, stream []runFile, streamCol int, reversed bool, em *spillEmit) error {
	fs := j.spill.fs()
	defer removeRuns(fs, load)
	defer removeRuns(fs, stream)
	if sem := j.spill.sem; sem != nil {
		granted := sem.acquire(sumRunBytes(load))
		defer sem.release(granted)
	}
	var buf joinBuf
	held := int64(0)
	defer func() { j.spill.release(held) }()
	err := eachRunFrame(fs, load, nil, func(rows []tuple.Tuple) error {
		for _, r := range rows {
			key := r[loadCol]
			buf.add(key.Hash64(), r)
			n := int64(r.MemBytes())
			held += n
			j.spill.charge(n)
		}
		return nil
	})
	if err != nil {
		return err
	}
	ht := newJoinTable(loadCol, &buf)
	var sc tuple.FrameScratch // streamed rows die per frame: reuse storage
	return eachRunFrame(fs, stream, &sc, func(rows []tuple.Tuple) error {
		for _, sr := range rows {
			key := sr[streamCol]
			it := ht.lookup(key.Hash64(), key)
			for {
				tr, ok := it.next()
				if !ok {
					break
				}
				var err error
				if reversed {
					err = em.emit(sr, tr) // table holds probe rows
				} else {
					err = em.emit(tr, sr)
				}
				if err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// repartition splits both sides of an oversized partition on the next
// spillSubBits hash bits and recurses per sub-partition. The parent run
// files are removed as soon as the sub-runs are written, so peak disk
// stays ~2× the spilled data regardless of depth.
func (j *hashJoinOp) repartition(level, shift int, build, probe []runFile, em *spillEmit, limit int64) error {
	fs := j.spill.fs()
	split := func(files []runFile, col int) ([][]runFile, error) {
		defer removeRuns(fs, files)
		var wr [spillFanout]*runWriter
		dir, err := j.spill.tempDir()
		if err != nil {
			return nil, err
		}
		// No scratch: appended rows sit in the sub-writers' pending
		// buffers past the frame that produced them.
		err = eachRunFrame(fs, files, nil, func(rows []tuple.Tuple) error {
			for _, r := range rows {
				h := r[col].Hash64()
				i := int((h >> uint(shift)) & (spillFanout - 1))
				if wr[i] == nil {
					name := fmt.Sprintf("sub-l%d-%d.run", level+1, j.spill.fileSeq.Add(1))
					w, err := newRunWriter(fs, filepath.Join(dir, name))
					if err != nil {
						return err
					}
					wr[i] = w
				}
				// Decoded frame rows are fresh allocations; no copy.
				if err := wr[i].append(r, false); err != nil {
					return err
				}
			}
			return nil
		})
		out := make([][]runFile, spillFanout)
		for i, w := range wr {
			if w == nil {
				continue
			}
			rf, ferr := w.finish()
			if ferr != nil && err == nil {
				err = ferr
			}
			if rf.rows > 0 {
				out[i] = []runFile{rf}
				j.spill.spilledRows.Add(rf.rows)
				j.spill.spilledBytes.Add(rf.diskBytes)
				j.e.Meter.AddSpill(int(rf.rows), int(rf.diskBytes))
			} else {
				fs.Remove(rf.path)
			}
		}
		return out, err
	}
	subBuild, err := split(build, j.bCol)
	if err != nil {
		for _, f := range subBuild {
			removeRuns(fs, f)
		}
		return err
	}
	subProbe, err := split(probe, j.pCol)
	if err != nil {
		for _, f := range subBuild {
			removeRuns(fs, f)
		}
		for _, f := range subProbe {
			removeRuns(fs, f)
		}
		return err
	}
	for i := 0; i < spillFanout; i++ {
		if err := j.joinSpilled(level+1, subBuild[i], subProbe[i], em, limit); err != nil {
			for k := i + 1; k < spillFanout; k++ {
				removeRuns(fs, subBuild[k])
				removeRuns(fs, subProbe[k])
			}
			return err
		}
	}
	return nil
}

// chunkedJoin is the terminal fallback: the load side streams in
// budget-sized chunks, and every chunk re-streams the entire other
// side. Each load row lands in exactly one chunk, so the output
// multiset is exactly the join — only the streamed side's I/O
// multiplies, which is the price of a key distribution hashing cannot
// split. Role reversal applies here too: the chunks come from the
// smaller side, so the re-streaming multiplier hits the side where it
// costs least.
func (j *hashJoinOp) chunkedJoin(load []runFile, loadCol int, stream []runFile, streamCol int, reversed bool, em *spillEmit, limit int64) error {
	fs := j.spill.fs()
	defer removeRuns(fs, load)
	defer removeRuns(fs, stream)
	if sem := j.spill.sem; sem != nil {
		// Chunks grow to the full limit, so a chunked partition owns the
		// whole budget for its duration.
		granted := sem.acquire(limit)
		defer sem.release(granted)
	}
	var buf joinBuf
	held := int64(0)
	var sc tuple.FrameScratch // streamed rows die per frame: reuse storage
	probeChunk := func() error {
		if buf.n == 0 {
			return nil
		}
		ht := newJoinTable(loadCol, &buf)
		err := eachRunFrame(fs, stream, &sc, func(rows []tuple.Tuple) error {
			for _, sr := range rows {
				key := sr[streamCol]
				it := ht.lookup(key.Hash64(), key)
				for {
					tr, ok := it.next()
					if !ok {
						break
					}
					var err error
					if reversed {
						err = em.emit(sr, tr)
					} else {
						err = em.emit(tr, sr)
					}
					if err != nil {
						return err
					}
				}
			}
			return nil
		})
		buf = joinBuf{}
		j.spill.release(held)
		held = 0
		return err
	}
	err := eachRunFrame(fs, load, nil, func(rows []tuple.Tuple) error {
		for _, r := range rows {
			key := r[loadCol]
			buf.add(key.Hash64(), r)
			n := int64(r.MemBytes())
			held += n
			// Flush on global pressure or when this worker's slice of
			// the budget fills — either way the chunk shrinks, never
			// the memory cap.
			if j.spill.charge(n) || held >= limit {
				if err := probeChunk(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		j.spill.release(held)
		return err
	}
	return probeChunk()
}

// SpilledBytes reports the run-file bytes this join wrote (build and
// probe sides, including recursive re-partitioning), 0 for an
// unbudgeted or never-pressured join. Valid once the stream is drained;
// planner instrumentation surfaces it as OpStats.SpilledBytes.
func (j *hashJoinOp) SpilledBytes() int64 {
	if j.spill == nil {
		return 0
	}
	return j.spill.spilledBytes.Load()
}

// SpillSkippedRows reports the probe rows whose spill write the Bloom
// filter proved unnecessary; planner instrumentation surfaces it as
// OpStats.SpillSkippedRows.
func (j *hashJoinOp) SpillSkippedRows() int64 {
	if j.spill == nil {
		return 0
	}
	return j.spill.skipped.Load()
}

// spillReversals reports how many second-pass loads swapped build and
// probe roles (white-box test hook).
func (j *hashJoinOp) spillReversals() int64 {
	if j.spill == nil {
		return 0
	}
	return j.spill.reversals.Load()
}
