// The specialized join hash table: u64 hash → chained row indices over
// flat entry storage, fed by chunked accumulation buffers.
//
// The previous join core keyed a map[string][]tuple.Tuple on each key's
// binary encoding, which paid an encode pass plus a slice allocation per
// distinct key on build and a string hash per row on probe. joinTable
// replaces that with value.Hash64 keys, a power-of-two bucket array of
// chain heads, and an int32 next-link per entry — zero allocations per
// key, and collision safety via an exact value.Equal check on probe.
package exec

import (
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// joinChunkSize is the entry capacity of one accumulation chunk (~72 KB
// per chunk): large enough to amortize allocation, small enough that a
// mostly-empty radix partition wastes little.
const joinChunkSize = 1024

// joinEntry is one build-side row: its precomputed key hash and the
// row. The key value itself is not stored — the hash pre-check makes
// key comparisons rare, and on a probable match the row is about to be
// loaded for output anyway — keeping entries at 32 bytes so a build
// side is cheap to store and cheap for the GC to scan.
type joinEntry struct {
	hash uint64
	row  tuple.Tuple
}

// joinBuf accumulates build-side rows in fixed-size chunks: appending
// never moves existing entries and allocates only when a chunk fills,
// unlike the old per-distinct-key slice growth. Not safe for concurrent
// use — the parallel join gives each worker its own set, one per radix
// partition, and merges them at seal time.
type joinBuf struct {
	chunks [][]joinEntry
	n      int
}

// add records one build row under its key's precomputed hash. Callers
// must skip null join keys before hashing: NULL never equals NULL in a
// join (lookup guards the probe side).
func (p *joinBuf) add(h uint64, row tuple.Tuple) {
	if k := len(p.chunks); k == 0 || len(p.chunks[k-1]) == joinChunkSize {
		p.chunks = append(p.chunks, make([]joinEntry, 0, joinChunkSize))
	}
	k := len(p.chunks) - 1
	p.chunks[k] = append(p.chunks[k], joinEntry{hash: h, row: row})
	p.n++
}

// joinTable is the sealed, probe-ready table. buckets[h&mask] holds the
// 1-based index of the first entry whose hash falls in that bucket
// (0 = empty); next links entries within a bucket the same way. Indexes
// are int32 — a single table is bounded by the build side of one join
// (or one radix partition of it), far below 2³¹ rows.
//
// Sealed tables are immutable, so any number of probe workers may read
// one concurrently.
type joinTable struct {
	entries []joinEntry
	buckets []int32
	next    []int32
	mask    uint64
	col     int // key column of the build rows
	grows   int // bucket-array rehashes since creation (incremental mode)
}

// tableBuckets picks a bucket count: the next power of two ≥ the known
// row count n, raised toward the planner's estimate hint so a table
// that will keep growing is born near its final size. The hint is
// clamped to 4n — a wildly high estimate may only overshoot the
// known-size table by one doubling, bounding wasted memory on
// mispredictions (hint ≤ 0 means no estimate).
func tableBuckets(n, hint int) int {
	target := n
	if hint > target {
		if max := 4 * n; hint > max && max > 0 {
			hint = max
		}
		target = hint
	}
	nb := 1
	for nb < target {
		nb <<= 1
	}
	return nb
}

// newJoinTable seals one or more accumulation buffers (the same radix
// partition from every build worker) into a table. Entry storage is
// compacted into one exact-size flat slice — the copy is a tiny, cache-
// friendly fraction of probe cost — and the bucket array is sized to the
// next power of two ≥ the row count, for load factor ≤ 1.
func newJoinTable(col int, parts ...*joinBuf) *joinTable {
	return newJoinTableHint(col, 0, parts...)
}

// newJoinTableHint is newJoinTable with a planner row estimate: buckets
// are sized from max(rows, clamped hint), so partitions sealed before
// their siblings (or resealed after spill demotions) don't thrash.
func newJoinTableHint(col, hint int, parts ...*joinBuf) *joinTable {
	n := 0
	for _, p := range parts {
		n += p.n
	}
	t := &joinTable{col: col}
	if n == 0 {
		return t
	}
	entries := make([]joinEntry, 0, n)
	for _, p := range parts {
		for _, c := range p.chunks {
			entries = append(entries, c...)
		}
	}
	nb := tableBuckets(n, hint)
	t.entries = entries
	t.buckets = make([]int32, nb)
	t.next = make([]int32, n)
	t.mask = uint64(nb - 1)
	for i := range entries {
		b := entries[i].hash & t.mask
		t.next[i] = t.buckets[b]
		t.buckets[b] = int32(i + 1)
	}
	return t
}

// newJoinTableCap returns an empty table ready for incremental insert,
// with buckets pre-sized to 2× the capacity hint: any estimate within
// 2× of the true row count (high or low) yields zero rehash-grows,
// the property TestJoinTableCapNoGrow pins. Used by builders that
// insert as rows arrive instead of sealing buffers (hyper-join groups,
// the slice-API join).
func newJoinTableCap(col, capHint int) *joinTable {
	if capHint < 1 {
		capHint = 1
	}
	nb := 1
	for nb < 2*capHint {
		nb <<= 1
	}
	return &joinTable{
		col:     col,
		entries: make([]joinEntry, 0, capHint),
		buckets: make([]int32, nb),
		next:    make([]int32, 0, capHint),
		mask:    uint64(nb - 1),
	}
}

// insert adds one build row to an incremental table, growing the bucket
// array (rebuilding chains) when load factor exceeds 1. Callers must
// skip null join keys. Only valid on tables from newJoinTableCap.
func (t *joinTable) insert(h uint64, row tuple.Tuple) {
	if len(t.entries) >= len(t.buckets) {
		nb := len(t.buckets) * 2
		t.buckets = make([]int32, nb)
		t.mask = uint64(nb - 1)
		t.next = t.next[:len(t.entries)]
		for i := range t.entries {
			b := t.entries[i].hash & t.mask
			t.next[i] = t.buckets[b]
			t.buckets[b] = int32(i + 1)
		}
		t.grows++
	}
	t.entries = append(t.entries, joinEntry{hash: h, row: row})
	b := h & t.mask
	t.next = append(t.next, t.buckets[b])
	t.buckets[b] = int32(len(t.entries))
}

// len reports the number of build rows in the table.
func (t *joinTable) len() int { return len(t.entries) }

// lookup starts a scan over build rows matching key under its
// precomputed hash. Null probe keys match nothing.
func (t *joinTable) lookup(h uint64, key value.Value) joinIter {
	if len(t.entries) == 0 || key.IsNull() {
		return joinIter{}
	}
	return joinIter{t: t, hash: h, key: key, idx: t.buckets[h&t.mask]}
}

// joinIter walks one bucket chain, yielding the build rows whose key
// equals the probe key: the hash pre-check skips chain neighbours
// cheaply and value.Equal defeats genuine hash collisions. The zero
// joinIter is an empty stream.
type joinIter struct {
	t    *joinTable
	hash uint64
	key  value.Value
	idx  int32
}

// next returns the next matching build row, or ok=false at chain end.
func (it *joinIter) next() (tuple.Tuple, bool) {
	for it.idx != 0 {
		e := &it.t.entries[it.idx-1]
		it.idx = it.t.next[it.idx-1]
		if e.hash == it.hash && value.Equal(e.row[it.t.col], it.key) {
			return e.row, true
		}
	}
	return nil, false
}
