package exec

import (
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

var kvSch = schema.MustNew(
	schema.Column{Name: "k", Kind: value.Int},
	schema.Column{Name: "v", Kind: value.Int},
)

// TestSpillLateDemotionScanFed is the regression for the row-loss bug
// the -spill bench self-gate caught: with scan-fed inputs and many
// build workers, a partition can be demoted AFTER some worker has
// already drained its share and run its final eviction sweep — that
// worker's resident rows for the partition were then dropped at
// sealing (demoted partitions seal empty). The buffer-leftover flush
// between build drain and sealing (joinSpill.flushLeftovers) closes
// the gap. Source-fed joins never tripped this — scans deliver batches
// slowly and unevenly enough that workers finish staggered while
// demotions are still happening, so this test must stay scan-fed with
// a wide worker pool.
func TestSpillLateDemotionScanFed(t *testing.T) {
	l := make([]tuple.Tuple, 15000)
	r := make([]tuple.Tuple, 40000)
	for i := range l {
		l[i] = tuple.Tuple{value.NewInt(int64(i)), value.NewInt(int64(i) * 3)}
	}
	for i := range r {
		// Every probe row matches exactly one build row, so the
		// expected output cardinality is exact and any stranded build
		// row is visible as missing rows.
		r[i] = tuple.Tuple{value.NewInt(int64(i % 15000)), value.NewInt(int64(i))}
	}
	const wantRows = 40000

	// The sweep matters: div=2..4 demote only a few partitions, the
	// regime where the late-demotion race actually strands rows (at
	// div=8 demotion happens so early every worker still sees it).
	for _, div := range []int64{2, 3, 4, 8} {
		store := dfs.NewStore(10, 3, 1) // 10 nodes = 10 build workers
		lt, err := core.Load(store, "l", kvSch, l, core.LoadOptions{RowsPerBlock: 256, Seed: 1, JoinAttr: 0})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := core.Load(store, "r", kvSch, r, core.LoadOptions{RowsPerBlock: 256, Seed: 2, JoinAttr: 0})
		if err != nil {
			t.Fatal(err)
		}
		ex := New(store, &cluster.Meter{})
		ex.Mem = NewMemBudget(rowsBytes(l) / div)
		ex.SpillDir = t.TempDir()
		got, err := Collect(ex.JoinOp(
			ex.TableScanOp(lt, nil), 0,
			ex.TableScanOp(rt, nil), 0,
			JoinOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != wantRows {
			t.Errorf("budget=build/%d: %d rows, want %d — late-demotion leftovers dropped", div, len(got), wantRows)
		}
		if c := ex.Meter.Snapshot(); c.SpillRows == 0 {
			t.Errorf("budget=build/%d spilled nothing — regression regime not reached", div)
		}
	}
}
