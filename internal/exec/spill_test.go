package exec

import (
	"os"
	"path/filepath"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// rowsEqualSorted asserts two row multisets are identical.
func rowsEqualSorted(t *testing.T, got, want []tuple.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	SortRows(got)
	SortRows(want)
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d arity %d, want %d", i, len(got[i]), len(want[i]))
		}
		for c := range got[i] {
			if value.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d col %d = %v, want %v", i, c, got[i][c], want[i][c])
			}
		}
	}
}

// rowsBytes is the budget footprint of a row set — how tests size
// budgets as fractions of the build side.
func rowsBytes(rows []tuple.Tuple) int64 {
	n := int64(0)
	for _, r := range rows {
		n += int64(r.MemBytes())
	}
	return n
}

// runSpillJoin joins l ⋈ r with the given budget through the pipelined
// join, building on l.
func runSpillJoin(t *testing.T, l, r []tuple.Tuple, lCol, rCol int, budget int64) ([]tuple.Tuple, *Executor) {
	t.Helper()
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(budget)
	ex.SpillDir = t.TempDir()
	got, err := Collect(ex.JoinOp(NewSource(l), lCol, NewSource(r), rCol, JoinOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	return got, ex
}

func TestSpillJoinMatchesOracleAcrossBudgets(t *testing.T) {
	l := genOrders(700, 31)
	r := genLineitem(900, 32)
	want := NestedLoopJoin(l, r, 0, 0)
	full := rowsBytes(l)
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"half-build", full / 2},
		{"eighth-build", full / 8},
		{"starved", 512}, // far below one partition: everything spills
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, ex := runSpillJoin(t, l, r, 0, 0, tc.budget)
			rowsEqualSorted(t, got, want)
			if c := ex.Meter.Snapshot(); c.SpillRows == 0 {
				t.Errorf("budget %d spilled nothing — spill path not exercised", tc.budget)
			}
			if used := ex.Mem.Used(); used != 0 {
				t.Errorf("budget leak: %d bytes still charged after Close", used)
			}
		})
	}
}

func TestSpillJoinUnbudgetedSpillsNothing(t *testing.T) {
	l := genOrders(200, 33)
	r := genLineitem(300, 34)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	got, err := Collect(ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	rowsEqualSorted(t, got, NestedLoopJoin(l, r, 0, 0))
	if c := ex.Meter.Snapshot(); c.SpillRows != 0 || c.SpillBytes != 0 {
		t.Errorf("unbudgeted join metered spill I/O: %+v", c)
	}
}

func TestSpillJoinAllDuplicateKeysChunkedFallback(t *testing.T) {
	// Every key identical: no hash bits can split the partition, so the
	// second pass must fall through recursion to the chunked build. The
	// result is the full cross product.
	const n = 120
	l := make([]tuple.Tuple, n)
	r := make([]tuple.Tuple, n)
	for i := range l {
		l[i] = tuple.Tuple{value.NewInt(7), value.NewInt(int64(i))}
		r[i] = tuple.Tuple{value.NewInt(7), value.NewInt(int64(1000 + i))}
	}
	got, ex := runSpillJoin(t, l, r, 0, 0, 256)
	if len(got) != n*n {
		t.Fatalf("%d rows, want full cross product %d", len(got), n*n)
	}
	rowsEqualSorted(t, got, NestedLoopJoin(l, r, 0, 0))
	if c := ex.Meter.Snapshot(); c.SpillRows == 0 {
		t.Error("all-duplicate join under a starved budget spilled nothing")
	}
}

func TestSpillJoinStringAndNullKeys(t *testing.T) {
	// String keys exercise the variable-width side of the run-file
	// codec; NULL keys must vanish on both sides even when partitions
	// spill.
	var l, r []tuple.Tuple
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", ""}
	for i := 0; i < 400; i++ {
		k := value.NewString(names[i%len(names)])
		if i%7 == 0 {
			k = value.Value{} // NULL
		}
		l = append(l, tuple.Tuple{k, value.NewInt(int64(i))})
		r = append(r, tuple.Tuple{k, value.NewFloat(float64(i) / 3)})
	}
	got, _ := runSpillJoin(t, l, r, 0, 0, 300)
	rowsEqualSorted(t, got, NestedLoopJoin(l, r, 0, 0))
}

func TestSpillJoinBuildIsRightKeepsColumnOrder(t *testing.T) {
	l := genLineitem(300, 35)
	r := genOrders(250, 36)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(rowsBytes(r) / 8)
	ex.SpillDir = t.TempDir()
	// Build on the right side but emit (left, right) order.
	got, err := Collect(ex.JoinOp(NewSource(r), 0, NewSource(l), 0, JoinOptions{BuildIsRight: true}))
	if err != nil {
		t.Fatal(err)
	}
	rowsEqualSorted(t, got, NestedLoopJoin(l, r, 0, 0))
}

func TestSpillJoinReportsSpilledBytes(t *testing.T) {
	l := genOrders(600, 37)
	r := genLineitem(600, 38)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(rowsBytes(l) / 8)
	ex.SpillDir = t.TempDir()
	op := ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{})
	in := Instrument("join", op, nil)
	if _, err := Collect(in); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.SpilledBytes == 0 {
		t.Error("OpStats.SpilledBytes = 0 for a budget-starved join")
	}
	c := ex.Meter.Snapshot()
	if int64(c.SpillBytes) != st.SpilledBytes {
		t.Errorf("meter SpillBytes %v != OpStats.SpilledBytes %d", c.SpillBytes, st.SpilledBytes)
	}
}

func TestSpillJoinCleansUpRunFiles(t *testing.T) {
	l := genOrders(500, 39)
	r := genLineitem(500, 40)
	dir := t.TempDir()
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(rowsBytes(l) / 8)
	ex.SpillDir = dir
	if _, err := Collect(ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{})); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "adaptdb-join-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("spill dirs left behind after Close: %v", left)
	}
}

func TestSpillJoinEarlyCloseCleansUp(t *testing.T) {
	l := genOrders(800, 41)
	r := genLineitem(800, 42)
	dir := t.TempDir()
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(rowsBytes(l) / 8)
	ex.SpillDir = dir
	op := ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{})
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := op.Next(); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	left, _ := filepath.Glob(filepath.Join(dir, "adaptdb-join-*"))
	if len(left) != 0 {
		t.Errorf("early close left spill dirs: %v", left)
	}
	if used := ex.Mem.Used(); used != 0 {
		t.Errorf("early close leaked %d budget bytes", used)
	}
}

// TestSpillProbeArenaRecyclingRegression is the PR-5 regression for the
// batch-arena ownership rule on the spill path: output batches of a
// budgeted join carve rows from recycled arenas (AppendConcat), and
// rows reloaded from run files in the second pass must never end up in
// a pooled array that recycles while a consumer still holds copies of
// earlier output. The test retains every output batch un-Released
// while the stream (first pass, then spilled second pass) keeps
// producing into pool-recycled arenas, snapshots the expected rows
// up front, and verifies nothing it holds was clobbered — run under
// -race in CI.
func TestSpillProbeArenaRecyclingRegression(t *testing.T) {
	l := genOrders(400, 43)
	r := genLineitem(600, 44)
	want := NestedLoopJoin(l, r, 0, 0)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(rowsBytes(l) / 8)
	ex.SpillDir = t.TempDir()
	op := ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{})
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	var held []*Batch
	var got []tuple.Tuple
	for {
		b, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		// Deliberately retain the batch (and its arena) instead of
		// releasing: if any later spill/probe cycle recycled a held
		// arena back through the pool, these rows would be overwritten
		// by the time we compare.
		held = append(held, b)
		got = append(got, b.Rows()...)
	}
	rowsEqualSorted(t, got, want)
	for _, b := range held {
		b.Release()
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillJoinSurfacesDiskErrors(t *testing.T) {
	// A spill directory that cannot be created must fail the query
	// loudly (through Next's error path), not lose rows — and the
	// operator must still tear down cleanly.
	l := genOrders(600, 47)
	r := genLineitem(600, 48)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(512) // starved: first demotion hits the disk
	ex.SpillDir = filepath.Join(t.TempDir(), "does", "not", "exist")
	op := ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{})
	_, err := Collect(op)
	if err == nil {
		t.Fatal("unreachable spill dir must fail the join")
	}
	if used := ex.Mem.Used(); used != 0 {
		t.Errorf("failed join leaked %d budget bytes", used)
	}
}

func TestMemBudgetBasics(t *testing.T) {
	if b := NewMemBudget(0); b != nil {
		t.Error("NewMemBudget(0) should be nil (unlimited)")
	}
	var nilB *MemBudget
	if nilB.Charge(100) || nilB.Over() || nilB.Limit() != 0 || nilB.Used() != 0 {
		t.Error("nil budget must be unlimited and inert")
	}
	nilB.Release(100) // must not panic
	b := NewMemBudget(100)
	if b.Charge(60) {
		t.Error("60/100 should not be over")
	}
	if !b.Charge(60) {
		t.Error("120/100 should be over")
	}
	if !b.Over() {
		t.Error("Over() should agree")
	}
	b.Release(60)
	if b.Over() || b.Used() != 60 {
		t.Errorf("after release: used=%d over=%v", b.Used(), b.Over())
	}
	shares := b.Split(4)
	if len(shares) != 4 {
		t.Fatalf("Split(4) gave %d", len(shares))
	}
	for _, s := range shares {
		if s.Limit() != 25 {
			t.Errorf("share limit %d, want 25", s.Limit())
		}
	}
	if ns := nilB.Split(3); len(ns) != 3 || ns[0] != nil {
		t.Error("nil budget must split into nil shares")
	}
}

func TestSpillDirDefaultsToOSTemp(t *testing.T) {
	// Smoke: no SpillDir configured still works (uses os.TempDir) and
	// cleans up after itself.
	l := genOrders(300, 45)
	r := genLineitem(300, 46)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(rowsBytes(l) / 4)
	before, _ := filepath.Glob(filepath.Join(os.TempDir(), "adaptdb-join-*"))
	got, err := Collect(ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	rowsEqualSorted(t, got, NestedLoopJoin(l, r, 0, 0))
	after, _ := filepath.Glob(filepath.Join(os.TempDir(), "adaptdb-join-*"))
	if len(after) > len(before) {
		t.Errorf("spill dirs leaked into os.TempDir: %d -> %d", len(before), len(after))
	}
}
