// Residual-join filters, projection, and the empty stream — the small
// relational operators the spec compiler wraps around a lowered join
// tree: WhereColsEq applies the join-graph edges the ordered tree did
// not consume (cyclic edges, extra attribute pairs of multi-attribute
// edges), Project restores declaration column order after greedy
// ordering permuted the tables, and Empty is the zero-cost plan for
// queries zone maps prove produce nothing.
package exec

import (
	"adaptdb/internal/tuple"
)

// WhereColsEq filters rows where every listed column pair is equal
// under join-key semantics (NULL never equals anything, matching the
// hash joins) — the residual form of a join-graph edge. pairs index the
// child's output columns.
func WhereColsEq(child Operator, pairs [][2]int) Operator {
	if len(pairs) == 0 {
		return child
	}
	return &colsEqOp{child: child, pairs: pairs}
}

type colsEqOp struct {
	child Operator
	pairs [][2]int
}

func (f *colsEqOp) Open() error { return f.child.Open() }

func (f *colsEqOp) Next() (*Batch, error) {
	for {
		in, err := f.child.Next()
		if err != nil || in == nil {
			return nil, err
		}
		if cb := in.Cols(); cb != nil {
			// Columnar: refine the selection vector in place, reading
			// cells straight from the vectors.
			cb.FilterSel(func(i int) bool {
				for _, p := range f.pairs {
					if !joinKeyEqual(cb.Value(p[0], i), cb.Value(p[1], i)) {
						return false
					}
				}
				return true
			})
			if cb.Len() > 0 {
				return in, nil
			}
			in.Release()
			continue
		}
		out := NewBatch()
		owned := in.OwnsRows()
		for _, r := range in.Rows() {
			keep := true
			for _, p := range f.pairs {
				if !joinKeyEqual(r[p[0]], r[p[1]]) {
					keep = false
					break
				}
			}
			if !keep {
				continue
			}
			if owned {
				out.AppendConcat(r, nil)
			} else {
				out.Append(r)
			}
		}
		in.Release()
		if out.Len() > 0 {
			return out, nil
		}
		out.Release()
	}
}

func (f *colsEqOp) Close() error { return f.child.Close() }

// Project emits only the listed child columns, in the listed order.
// Columnar batches project by gathering whole vectors through the
// selection; row batches gather through a scratch tuple into the
// output batch's arena.
func Project(child Operator, cols []int) Operator {
	return &projectOp{child: child, cols: cols}
}

type projectOp struct {
	child   Operator
	cols    []int
	scratch tuple.Tuple
	idxbuf  []int32
}

func (p *projectOp) Open() error { return p.child.Open() }

func (p *projectOp) Next() (*Batch, error) {
	for {
		in, err := p.child.Next()
		if err != nil || in == nil {
			return nil, err
		}
		if in.Len() == 0 {
			in.Release()
			continue
		}
		if cb := in.Cols(); cb != nil {
			idxs := cb.Sel()
			if idxs == nil {
				n := cb.Len()
				if cap(p.idxbuf) < n {
					p.idxbuf = make([]int32, n)
				}
				idxs = p.idxbuf[:n]
				for i := range idxs {
					idxs[i] = int32(i)
				}
			}
			out := NewColBatch(len(p.cols))
			if out.pooled && len(idxs) > DefaultBatchSize {
				out.pooled = false
			}
			for ci, c := range p.cols {
				out.cols.AppendColumnGather(ci, cb, c, idxs)
			}
			out.cols.AddRows(len(idxs))
			in.Release()
			return out, nil
		}
		out := NewBatch()
		if cap(p.scratch) < len(p.cols) {
			p.scratch = make(tuple.Tuple, len(p.cols))
		}
		s := p.scratch[:len(p.cols)]
		for _, r := range in.Rows() {
			for ci, c := range p.cols {
				s[ci] = r[c]
			}
			out.AppendConcat(s, nil)
		}
		in.Release()
		return out, nil
	}
}

func (p *projectOp) Close() error { return p.child.Close() }

// Empty is the stream with no batches — the compiled form of a plan
// zone maps prove empty.
func Empty() Operator { return emptyOp{} }

type emptyOp struct{}

func (emptyOp) Open() error           { return nil }
func (emptyOp) Next() (*Batch, error) { return nil, nil }
func (emptyOp) Close() error          { return nil }
