// Structural operators for composing plan DAGs: per-operator
// instrumentation (Instrument), sequential stream union (Concat), and
// column-order repair for flipped joins (SwapSides). The planner's
// compiler (internal/planner) wires these around scans and joins to
// turn a plan tree into one executable, fully pipelined Operator.
package exec

import (
	"sync"
	"time"
)

// OpStats describes what one instrumented operator did: how many rows
// and batches flowed out of it and how long the caller spent inside its
// Open/Next calls. WallNs is inclusive time — a pull-based operator
// does its children's work inside Next, so a parent's time contains its
// subtree's.
type OpStats struct {
	Label string
	// Node is the cluster node the operator ran on, or -1 for
	// coordinator-side / centralized operators. Per-node stats are what
	// make execution skew visible in session results.
	Node    int
	Batches int64
	Rows    int64
	WallNs  int64
	// SpilledBytes is what the operator wrote to disk run files under
	// memory pressure (hash joins under a MemBudget); 0 everywhere else.
	SpilledBytes int64
	// SpillSkippedRows are probe rows whose spill write the operator's
	// Bloom filters elided (budgeted hash joins); 0 everywhere else.
	SpillSkippedRows int64
}

// byteSpiller is implemented by operators that can demote state to disk
// (the budgeted hash join); Instrument surfaces the count in OpStats.
type byteSpiller interface {
	SpilledBytes() int64
}

// spillSkipper is implemented by operators whose Bloom filters can
// elide spill writes (the budgeted hash join); Instrument surfaces the
// count in OpStats.
type spillSkipper interface {
	SpillSkippedRows() int64
}

// Instrumented wraps an operator, counting batches/rows and timing
// Open/Next, and fires an optional completion hook exactly once when
// the stream is exhausted (or closed early). The planner uses the hook
// to fill JoinReport entries after a lazy DAG has actually run; session
// consumers read Stats for per-operator accounting.
type Instrumented struct {
	child  Operator
	mu     sync.Mutex
	stats  OpStats
	onDone func(OpStats)
	done   bool
}

// Instrument wraps child with stats collection under the given label.
// onDone (optional) runs once, at end of stream or at Close, whichever
// comes first.
func Instrument(label string, child Operator, onDone func(OpStats)) *Instrumented {
	return &Instrumented{child: child, stats: OpStats{Label: label, Node: -1}, onDone: onDone}
}

// AtNode tags the operator's stats with the cluster node it runs on.
// Returns the receiver for fluent wiring in the distributed compiler.
func (i *Instrumented) AtNode(node int) *Instrumented {
	i.stats.Node = node
	return i
}

// Stats returns a snapshot of the counters; complete once the stream is
// drained or closed.
func (i *Instrumented) Stats() OpStats {
	i.mu.Lock()
	defer i.mu.Unlock()
	st := i.stats
	if s, ok := i.child.(byteSpiller); ok {
		st.SpilledBytes = s.SpilledBytes()
	}
	if s, ok := i.child.(spillSkipper); ok {
		st.SpillSkippedRows = s.SpillSkippedRows()
	}
	return st
}

// Open opens the child, charging setup time (a hash join drains its
// whole build side here) to this operator.
func (i *Instrumented) Open() error {
	start := time.Now()
	err := i.child.Open()
	i.mu.Lock()
	i.stats.WallNs += time.Since(start).Nanoseconds()
	i.mu.Unlock()
	return err
}

// Next forwards to the child, counting the batch through.
func (i *Instrumented) Next() (*Batch, error) {
	start := time.Now()
	b, err := i.child.Next()
	i.mu.Lock()
	i.stats.WallNs += time.Since(start).Nanoseconds()
	if b != nil {
		i.stats.Batches++
		i.stats.Rows += int64(b.Len())
	}
	fire := b == nil && err == nil && !i.done
	if fire {
		i.done = true
	}
	st, hook := i.stats, i.onDone
	i.mu.Unlock()
	if fire && hook != nil {
		hook(st)
	}
	return b, err
}

// Close closes the child and fires the completion hook if the stream
// never reached end (partial drain).
func (i *Instrumented) Close() error {
	err := i.child.Close()
	i.mu.Lock()
	fire := !i.done
	i.done = true
	st, hook := i.stats, i.onDone
	i.mu.Unlock()
	if fire && hook != nil {
		hook(st)
	}
	return err
}

// Concat streams its children one after another — the union operator a
// combination join (§5.4) needs to emit hyper output followed by the
// residual shuffle outputs. Children are opened lazily, one at a time,
// so at most one child's worker pool is live; each child is closed as
// soon as it is exhausted. Row order across children is the
// concatenation order; order within a child is the child's.
func Concat(children ...Operator) Operator {
	if len(children) == 1 {
		return children[0]
	}
	return &concatOp{children: children}
}

type concatOp struct {
	children []Operator
	idx      int
	opened   bool
}

func (c *concatOp) Open() error {
	c.idx = 0
	if len(c.children) == 0 {
		return nil
	}
	if err := c.children[0].Open(); err != nil {
		return err
	}
	c.opened = true
	return nil
}

func (c *concatOp) Next() (*Batch, error) {
	for c.idx < len(c.children) {
		b, err := c.children[c.idx].Next()
		if err != nil || b != nil {
			return b, err
		}
		// Current child exhausted: close it and move on.
		cerr := c.children[c.idx].Close()
		c.opened = false
		c.idx++
		if cerr != nil {
			return nil, cerr
		}
		if c.idx < len(c.children) {
			if err := c.children[c.idx].Open(); err != nil {
				return nil, err
			}
			c.opened = true
		}
	}
	return nil, nil
}

func (c *concatOp) Close() error {
	if c.opened && c.idx < len(c.children) {
		c.opened = false
		return c.children[c.idx].Close()
	}
	return nil
}

// SwapSides moves each row's trailing tail columns to the front:
// x‖y → y‖x with len(y) == tail. A hyper-join that builds on the plan's
// right side emits (right, left) rows; wrapping it in SwapSides(op,
// leftWidth) restores the plan's (left, right) column order without
// materializing anything. Output rows are carved into the output
// batch's own arena (owned rows), so inputs of either lifetime are
// handled.
func SwapSides(child Operator, tail int) Operator {
	return &swapOp{child: child, tail: tail}
}

type swapOp struct {
	child Operator
	tail  int
}

func (s *swapOp) Open() error { return s.child.Open() }

func (s *swapOp) Next() (*Batch, error) {
	for {
		in, err := s.child.Next()
		if err != nil || in == nil {
			return nil, err
		}
		out := NewBatch()
		for _, r := range in.Rows() {
			cut := len(r) - s.tail
			if cut < 0 {
				cut = 0
			}
			out.AppendConcat(r[cut:], r[:cut])
		}
		in.Release()
		if out.Len() > 0 {
			return out, nil
		}
		out.Release()
	}
}

func (s *swapOp) Close() error { return s.child.Close() }
