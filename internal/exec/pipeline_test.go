package exec

import (
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func TestWorkersDefaultsToNodeCount(t *testing.T) {
	store := dfs.NewStore(7, 2, 1)
	ex := New(store, &cluster.Meter{})
	if got := ex.workers(); got != 7 {
		t.Errorf("workers() = %d, want node count 7", got)
	}
	ex.Workers = 3
	if got := ex.workers(); got != 3 {
		t.Errorf("workers() = %d, want override 3", got)
	}
}

func TestWorkersFloorOfOne(t *testing.T) {
	// A store constructed with < 1 nodes clamps to 1; workers() must
	// never return 0 even then.
	store := dfs.NewStore(0, 1, 1)
	ex := New(store, &cluster.Meter{})
	if got := ex.workers(); got < 1 {
		t.Errorf("workers() = %d, want >= 1", got)
	}
}

func TestScanOpMoreWorkersThanBlocks(t *testing.T) {
	f := newFixture(t, true)
	f.ex.Workers = 64 // far more than the fixture's block count
	rows, err := Collect(f.ex.TableScanOp(f.line, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(f.lrows) {
		t.Errorf("64-worker scan returned %d rows, want %d", len(rows), len(f.lrows))
	}
}

func TestScanOpMatchesScan(t *testing.T) {
	f := newFixture(t, true)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(1200))}
	pipelined, err := Collect(f.ex.TableScanOp(f.line, preds))
	if err != nil {
		t.Fatal(err)
	}
	materialized := f.ex.Scan(f.line, preds)
	if len(pipelined) != len(materialized) {
		t.Fatalf("pipelined scan %d rows, materialized %d", len(pipelined), len(materialized))
	}
	SortRows(pipelined)
	SortRows(materialized)
	for i := range pipelined {
		for c := range pipelined[i] {
			if value.Compare(pipelined[i][c], materialized[i][c]) != 0 {
				t.Fatalf("row %d differs between paths", i)
			}
		}
	}
}

func TestScanOpEmptyRefs(t *testing.T) {
	f := newFixture(t, true)
	rows, err := Collect(f.ex.ScanOp(nil, nil))
	if err != nil || rows != nil {
		t.Errorf("empty scan: rows=%v err=%v, want nil/nil", rows, err)
	}
}

func TestScanOpEarlyClose(t *testing.T) {
	// Abandoning a stream mid-drain must not deadlock or leak workers:
	// Close unblocks producers stuck on the bounded channel.
	f := newFixture(t, true)
	op := f.ex.TableScanOp(f.line, nil)
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	b, err := op.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		b.Release()
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close must be safe.
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinOpMatchesHashJoinRows(t *testing.T) {
	l := genLineitem(400, 21)
	r := genOrders(300, 22)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	got, err := Collect(ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	want := HashJoinRows(l, r, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("JoinOp %d rows, HashJoinRows %d", len(got), len(want))
	}
	SortRows(got)
	SortRows(want)
	for i := range got {
		for c := range got[i] {
			if value.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestJoinOpBuildIsRightKeepsColumnOrder(t *testing.T) {
	l := genLineitem(100, 23)
	r := genOrders(80, 24)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	// Build on the right side but emit (left, right) order.
	got, err := Collect(ex.JoinOp(NewSource(r), 0, NewSource(l), 0, JoinOptions{BuildIsRight: true}))
	if err != nil {
		t.Fatal(err)
	}
	want := HashJoinRows(l, r, 0, 0)
	SortRows(got)
	SortRows(want)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		for c := range got[i] {
			if value.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d differs — column order not preserved", i)
			}
		}
	}
}

func TestJoinOpChargesEmptyBuildProbeRows(t *testing.T) {
	// With an empty build side the probe must still drain and meter,
	// matching the legacy ShuffleJoinRows metering.
	r := genOrders(50, 25)
	store := dfs.NewStore(2, 1, 1)
	meter := &cluster.Meter{}
	ex := New(store, meter)
	rows := ex.ShuffleJoinRows(nil, r, 0, 0)
	if rows != nil {
		t.Errorf("empty build side should produce no rows")
	}
	if c := meter.Snapshot(); c.ShuffleRows != 50 {
		t.Errorf("ShuffleRows = %v, want 50 (probe side metered)", c.ShuffleRows)
	}
}

func TestWhereFiltersMidPipeline(t *testing.T) {
	rows := genLineitem(500, 26)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(1000))}
	got, err := Collect(Where(NewSource(rows), preds))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range rows {
		if r[2].Int64() < 1000 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("Where kept %d rows, want %d", len(got), want)
	}
}

func TestHyperJoinOpStreamsSameRowsAsAdapter(t *testing.T) {
	f := newFixture(t, true)
	rRefs := f.line.Refs(0, nil)
	sRefs := f.ord.Refs(0, nil)
	op := f.ex.NewHyperJoinOp(rRefs, nil, 0, sRefs, nil, 0, 4)
	n, err := Count(op)
	if err != nil {
		t.Fatal(err)
	}
	rows, stats := f.ex.HyperJoin(rRefs, nil, 0, sRefs, nil, 0, 4)
	if n != len(rows) {
		t.Errorf("streamed %d rows, adapter materialized %d", n, len(rows))
	}
	st := op.Stats()
	if st.Groups != stats.Groups || st.BuildBlocks != stats.BuildBlocks ||
		st.ProbeBlocks != stats.ProbeBlocks || st.CHyJ != stats.CHyJ {
		t.Errorf("streamed stats %+v, adapter stats %+v", st, stats)
	}
}

func TestSourceBatchesAreViews(t *testing.T) {
	rows := genLineitem(3*DefaultBatchSize+17, 27)
	src := NewSource(rows)
	if err := src.Open(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		b, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if b.Len() > DefaultBatchSize {
			t.Errorf("batch of %d rows exceeds DefaultBatchSize", b.Len())
		}
		if &b.Rows()[0][0] != &rows[total][0] {
			t.Errorf("source batch at row %d is a copy, want a view", total)
		}
		total += b.Len()
		b.Release() // must be a no-op for view batches
	}
	if total != len(rows) {
		t.Errorf("source streamed %d rows, want %d", total, len(rows))
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := NewBatch()
	if b.Len() != 0 || cap(b.rows) != DefaultBatchSize {
		t.Fatalf("fresh batch len=%d cap=%d", b.Len(), cap(b.rows))
	}
	b.Append(tuple.Tuple{value.NewInt(1)})
	if b.Len() != 1 || b.Full() {
		t.Fatalf("after one append: len=%d full=%v", b.Len(), b.Full())
	}
	b.Release()
	b2 := NewBatch()
	if b2.Len() != 0 {
		t.Errorf("pooled batch not reset: len=%d", b2.Len())
	}
	b2.Release()
}

func TestCollectAndCountAgree(t *testing.T) {
	f := newFixture(t, true)
	rows, err := Collect(f.ex.TableScanOp(f.line, nil))
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(f.ex.TableScanOp(f.line, nil))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Errorf("Count = %d, Collect = %d rows", n, len(rows))
	}
}
