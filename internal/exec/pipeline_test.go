package exec

import (
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func TestWorkersDefaultsToNodeCount(t *testing.T) {
	store := dfs.NewStore(7, 2, 1)
	ex := New(store, &cluster.Meter{})
	if got := ex.workers(); got != 7 {
		t.Errorf("workers() = %d, want node count 7", got)
	}
	ex.Workers = 3
	if got := ex.workers(); got != 3 {
		t.Errorf("workers() = %d, want override 3", got)
	}
}

func TestWorkersFloorOfOne(t *testing.T) {
	// A store constructed with < 1 nodes clamps to 1; workers() must
	// never return 0 even then.
	store := dfs.NewStore(0, 1, 1)
	ex := New(store, &cluster.Meter{})
	if got := ex.workers(); got < 1 {
		t.Errorf("workers() = %d, want >= 1", got)
	}
}

func TestScanOpMoreWorkersThanBlocks(t *testing.T) {
	f := newFixture(t, true)
	f.ex.Workers = 64 // far more than the fixture's block count
	rows, err := Collect(f.ex.TableScanOp(f.line, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(f.lrows) {
		t.Errorf("64-worker scan returned %d rows, want %d", len(rows), len(f.lrows))
	}
}

func TestScanOpMatchesScan(t *testing.T) {
	f := newFixture(t, true)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(1200))}
	pipelined, err := Collect(f.ex.TableScanOp(f.line, preds))
	if err != nil {
		t.Fatal(err)
	}
	materialized := f.ex.Scan(f.line, preds)
	if len(pipelined) != len(materialized) {
		t.Fatalf("pipelined scan %d rows, materialized %d", len(pipelined), len(materialized))
	}
	SortRows(pipelined)
	SortRows(materialized)
	for i := range pipelined {
		for c := range pipelined[i] {
			if value.Compare(pipelined[i][c], materialized[i][c]) != 0 {
				t.Fatalf("row %d differs between paths", i)
			}
		}
	}
}

func TestScanOpEmptyRefs(t *testing.T) {
	f := newFixture(t, true)
	rows, err := Collect(f.ex.ScanOp(nil, nil))
	if err != nil || rows != nil {
		t.Errorf("empty scan: rows=%v err=%v, want nil/nil", rows, err)
	}
}

func TestScanOpEarlyClose(t *testing.T) {
	// Abandoning a stream mid-drain must not deadlock or leak workers:
	// Close unblocks producers stuck on the bounded channel.
	f := newFixture(t, true)
	op := f.ex.TableScanOp(f.line, nil)
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	b, err := op.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		b.Release()
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close must be safe.
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinOpMatchesHashJoinRows(t *testing.T) {
	l := genLineitem(400, 21)
	r := genOrders(300, 22)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	got, err := Collect(ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	want := HashJoinRows(l, r, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("JoinOp %d rows, HashJoinRows %d", len(got), len(want))
	}
	SortRows(got)
	SortRows(want)
	for i := range got {
		for c := range got[i] {
			if value.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestJoinOpBuildIsRightKeepsColumnOrder(t *testing.T) {
	l := genLineitem(100, 23)
	r := genOrders(80, 24)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	// Build on the right side but emit (left, right) order.
	got, err := Collect(ex.JoinOp(NewSource(r), 0, NewSource(l), 0, JoinOptions{BuildIsRight: true}))
	if err != nil {
		t.Fatal(err)
	}
	want := HashJoinRows(l, r, 0, 0)
	SortRows(got)
	SortRows(want)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		for c := range got[i] {
			if value.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d differs — column order not preserved", i)
			}
		}
	}
}

func TestJoinOpChargesEmptyBuildProbeRows(t *testing.T) {
	// With an empty build side the probe must still drain and meter,
	// matching the legacy ShuffleJoinRows metering.
	r := genOrders(50, 25)
	store := dfs.NewStore(2, 1, 1)
	meter := &cluster.Meter{}
	ex := New(store, meter)
	rows := ex.ShuffleJoinRows(nil, r, 0, 0)
	if rows != nil {
		t.Errorf("empty build side should produce no rows")
	}
	if c := meter.Snapshot(); c.ShuffleRows != 50 {
		t.Errorf("ShuffleRows = %v, want 50 (probe side metered)", c.ShuffleRows)
	}
}

func TestWhereFiltersMidPipeline(t *testing.T) {
	rows := genLineitem(500, 26)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(1000))}
	got, err := Collect(Where(NewSource(rows), preds))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range rows {
		if r[2].Int64() < 1000 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("Where kept %d rows, want %d", len(got), want)
	}
}

func TestHyperJoinOpStreamsSameRowsAsAdapter(t *testing.T) {
	f := newFixture(t, true)
	rRefs := f.line.Refs(0, nil)
	sRefs := f.ord.Refs(0, nil)
	op := f.ex.NewHyperJoinOp(rRefs, nil, 0, sRefs, nil, 0, 4)
	n, err := Count(op)
	if err != nil {
		t.Fatal(err)
	}
	rows, stats := f.ex.HyperJoin(rRefs, nil, 0, sRefs, nil, 0, 4)
	if n != len(rows) {
		t.Errorf("streamed %d rows, adapter materialized %d", n, len(rows))
	}
	st := op.Stats()
	if st.Groups != stats.Groups || st.BuildBlocks != stats.BuildBlocks ||
		st.ProbeBlocks != stats.ProbeBlocks || st.CHyJ != stats.CHyJ {
		t.Errorf("streamed stats %+v, adapter stats %+v", st, stats)
	}
}

func TestSourceBatchesAreViews(t *testing.T) {
	rows := genLineitem(3*DefaultBatchSize+17, 27)
	src := NewSource(rows)
	if err := src.Open(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		b, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if b.Len() > DefaultBatchSize {
			t.Errorf("batch of %d rows exceeds DefaultBatchSize", b.Len())
		}
		if &b.Rows()[0][0] != &rows[total][0] {
			t.Errorf("source batch at row %d is a copy, want a view", total)
		}
		total += b.Len()
		b.Release() // must be a no-op for view batches
	}
	if total != len(rows) {
		t.Errorf("source streamed %d rows, want %d", total, len(rows))
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := NewBatch()
	if b.Len() != 0 || cap(b.rows) != DefaultBatchSize {
		t.Fatalf("fresh batch len=%d cap=%d", b.Len(), cap(b.rows))
	}
	b.Append(tuple.Tuple{value.NewInt(1)})
	if b.Len() != 1 || b.Full() {
		t.Fatalf("after one append: len=%d full=%v", b.Len(), b.Full())
	}
	b.Release()
	b2 := NewBatch()
	if b2.Len() != 0 {
		t.Errorf("pooled batch not reset: len=%d", b2.Len())
	}
	b2.Release()
}

func TestCollectAndCountAgree(t *testing.T) {
	f := newFixture(t, true)
	rows, err := Collect(f.ex.TableScanOp(f.line, nil))
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(f.ex.TableScanOp(f.line, nil))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Errorf("Count = %d, Collect = %d rows", n, len(rows))
	}
}

func TestBatchAppendBeyondCapacityUnpools(t *testing.T) {
	// Growing a pooled batch past DefaultBatchSize must un-pool it:
	// otherwise the pool silently accumulates oversized backing arrays.
	b := NewBatch()
	if !b.pooled {
		t.Fatal("NewBatch returned an un-pooled batch")
	}
	row := tuple.Tuple{value.NewInt(1)}
	for i := 0; i < DefaultBatchSize; i++ {
		b.Append(row)
	}
	if !b.pooled {
		t.Fatal("batch un-pooled before exceeding capacity")
	}
	b.Append(row) // grows past capacity
	if b.pooled {
		t.Error("grown batch still pooled — oversized array would enter the pool")
	}
	if b.Len() != DefaultBatchSize+1 {
		t.Errorf("grown batch len %d, want %d", b.Len(), DefaultBatchSize+1)
	}
	b.Release() // must be a no-op now
	// Pool round-trips must keep handing out DefaultBatchSize arrays.
	for i := 0; i < 8; i++ {
		nb := NewBatch()
		if cap(nb.rows) != DefaultBatchSize {
			t.Fatalf("pool handed out a batch with cap %d, want %d", cap(nb.rows), DefaultBatchSize)
		}
		nb.Release()
	}
}

// TestColBatchGrowthUnpools is the columnar twin of the test above: a
// pooled columnar batch whose vectors grow past DefaultBatchSize rows
// must leave the pool, both on the row-at-a-time and the bulk transpose
// path, or the pool accumulates ever-larger vector storage (columnar
// pool poisoning).
func TestColBatchGrowthUnpools(t *testing.T) {
	row := tuple.Tuple{value.NewInt(7), value.NewString("x")}

	b := NewColBatch(2)
	if !b.pooled {
		t.Fatal("NewColBatch returned an un-pooled batch")
	}
	for i := 0; i < DefaultBatchSize; i++ {
		b.AppendColRow(row)
	}
	if !b.pooled {
		t.Fatal("columnar batch un-pooled before exceeding capacity")
	}
	b.AppendColRow(row) // grows the vectors past capacity
	if b.pooled {
		t.Error("grown columnar batch still pooled — oversized vectors would enter the pool")
	}
	if b.Len() != DefaultBatchSize+1 {
		t.Errorf("grown columnar batch len %d, want %d", b.Len(), DefaultBatchSize+1)
	}
	b.Release() // must be a no-op on the un-pooled batch

	// Bulk path: one oversized transpose un-pools up front.
	rows := make([]tuple.Tuple, DefaultBatchSize+1)
	for i := range rows {
		rows[i] = row
	}
	bb := NewColBatch(2)
	bb.AppendColRows(rows)
	if bb.pooled {
		t.Error("bulk-grown columnar batch still pooled")
	}
	bb.Release()

	// A bulk append that exactly fills the batch stays pooled, and the
	// pool keeps handing out reset columnar batches afterwards.
	cb := NewColBatch(2)
	cb.AppendColRows(rows[:DefaultBatchSize])
	if !cb.pooled {
		t.Error("exactly-full columnar batch was un-pooled")
	}
	cb.Release()
	for i := 0; i < 8; i++ {
		nb := NewColBatch(2)
		if nb.Len() != 0 || nb.Cols().FullLen() != 0 {
			t.Fatalf("pool handed out a dirty columnar batch: len=%d fullLen=%d", nb.Len(), nb.Cols().FullLen())
		}
		nb.Release()
	}
}

// nullableRows builds rows whose join key (column 0) is NULL every
// nullEvery-th row, tagged in column 1.
func nullableRows(n, nullEvery int, keyMod int64, tagBase int64) []tuple.Tuple {
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		key := value.NewInt(int64(i) % keyMod)
		if nullEvery > 0 && i%nullEvery == 0 {
			key = value.Value{}
		}
		rows[i] = tuple.Tuple{key, value.NewInt(tagBase + int64(i))}
	}
	return rows
}

func TestJoinOpNullKeysNeverMatch(t *testing.T) {
	// Regression: the old map[string] join keyed NULL's binary encoding
	// like any other value, so NULL build rows matched NULL probe rows.
	l := nullableRows(400, 3, 50, 0)
	r := nullableRows(300, 4, 50, 10000)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	got, err := Collect(ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	want := NestedLoopJoin(l, r, 0, 0) // oracle skips null keys
	if len(got) != len(want) {
		t.Fatalf("join with null keys: %d rows, oracle %d", len(got), len(want))
	}
	for _, row := range got {
		if row[0].IsNull() || row[2].IsNull() {
			t.Fatalf("output row joined on a NULL key: %v", row)
		}
	}
}

func TestHashJoinRowsNullKeysNeverMatch(t *testing.T) {
	l := nullableRows(200, 2, 30, 0)
	r := nullableRows(150, 5, 30, 10000)
	got := HashJoinRows(l, r, 0, 0)
	want := NestedLoopJoin(l, r, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("HashJoinRows with null keys: %d rows, oracle %d", len(got), len(want))
	}
	for _, row := range got {
		if row[0].IsNull() || row[2].IsNull() {
			t.Fatalf("HashJoinRows joined on a NULL key: %v", row)
		}
	}
	// All-null sides join to nothing.
	allNull := nullableRows(50, 1, 30, 0)
	if out := HashJoinRows(allNull, allNull, 0, 0); len(out) != 0 {
		t.Errorf("all-null join produced %d rows, want 0", len(out))
	}
}

func TestAppendConcatCarvesOwnedRows(t *testing.T) {
	b := NewBatch()
	if b.OwnsRows() {
		t.Fatal("fresh batch claims to own rows")
	}
	x := tuple.Tuple{value.NewInt(1), value.NewString("a")}
	y := tuple.Tuple{value.NewInt(2)}
	b.AppendConcat(x, y)
	b.AppendConcat(y, x)
	if !b.OwnsRows() {
		t.Fatal("AppendConcat did not mark the batch as owning its rows")
	}
	rows := b.Rows()
	if len(rows) != 2 || len(rows[0]) != 3 || len(rows[1]) != 3 {
		t.Fatalf("carved rows malformed: %v", rows)
	}
	want := tuple.Concat(x, y)
	for c := range want {
		if value.Compare(rows[0][c], want[c]) != 0 {
			t.Fatalf("carved row differs from Concat at column %d", c)
		}
	}
	// Carved rows are capacity-clipped: appending reallocates rather
	// than clobbering the neighbour row.
	_ = append(rows[0], value.NewInt(99))
	if rows[1][0].Int64() != 2 {
		t.Fatalf("append to carved row corrupted its neighbour: %v", rows[1])
	}
	b.Release()
}

func TestOutputBatchArenaRecycles(t *testing.T) {
	// An owned batch released and reacquired must produce correct fresh
	// rows from its recycled arena.
	row := tuple.Tuple{value.NewInt(7)}
	for i := 0; i < 3; i++ {
		b := NewBatch()
		for k := 0; k < DefaultBatchSize; k++ {
			b.AppendConcat(row, row)
		}
		for k, r := range b.Rows() {
			if len(r) != 2 || r[0].Int64() != 7 || r[1].Int64() != 7 {
				t.Fatalf("round %d row %d corrupted: %v", i, k, r)
			}
		}
		b.Release()
	}
}

func TestCollectCopiesOwnedRows(t *testing.T) {
	// Rows Collect returns from a join must stay valid after the join's
	// batches are released and their arenas recycled by other operators.
	l := genLineitem(4000, 28)
	r := genOrders(2000, 29)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	got, err := Collect(ex.JoinOp(NewSource(r), 0, NewSource(l), 0, JoinOptions{BuildIsRight: true}))
	if err != nil {
		t.Fatal(err)
	}
	// Churn the batch pool so recycled join arenas get overwritten.
	junk := tuple.Tuple{value.NewInt(-777), value.NewInt(-777), value.NewInt(-777), value.NewInt(-777), value.NewInt(-777), value.NewInt(-777)}
	for i := 0; i < 64; i++ {
		b := NewBatch()
		for k := 0; k < DefaultBatchSize; k++ {
			b.AppendConcat(junk, junk)
		}
		b.Release()
	}
	for i, row := range got {
		for _, v := range row {
			if v.K == value.Int && v.Int64() == -777 {
				t.Fatalf("collected row %d was clobbered by arena reuse: %v", i, row)
			}
		}
	}
	want := HashJoinRows(l, r, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("join returned %d rows, want %d", len(got), len(want))
	}
}

func TestWhereOverJoinOutputKeepsRowsValid(t *testing.T) {
	// Where repacks join-output batches; the repacked rows must survive
	// the source batch's release (filterOp carves copies).
	l := genLineitem(3000, 33)
	r := genOrders(1500, 34)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	join := ex.JoinOp(NewSource(r), 0, NewSource(l), 0, JoinOptions{BuildIsRight: true})
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(1200))}
	got, err := Collect(Where(join, preds))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, row := range HashJoinRows(l, r, 0, 0) {
		if row[2].Int64() < 1200 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Where over join kept %d rows, want %d", len(got), want)
	}
	for _, row := range got {
		if row[2].Int64() >= 1200 {
			t.Fatalf("non-matching row survived: %v", row)
		}
	}
}

func TestJoinOverJoinBuildSideOwnedRows(t *testing.T) {
	// Regression: a join whose BUILD side is another join receives
	// owned-row batches; the build must copy those rows before releasing
	// the batch, or recycled arenas corrupt the hash table.
	a := genLineitem(2000, 51)
	b := genOrders(1500, 52)
	c := genOrders(2500, 53)
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	inner := ex.JoinOp(NewSource(b), 0, NewSource(a), 0, JoinOptions{BuildIsRight: true})
	outer := ex.JoinOp(inner, 0, NewSource(c), 0, JoinOptions{})
	got, err := Collect(outer)
	if err != nil {
		t.Fatal(err)
	}
	want := HashJoinRows(HashJoinRows(a, b, 0, 0), c, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("join-over-join returned %d rows, oracle %d", len(got), len(want))
	}
	SortRows(got)
	SortRows(want)
	for i := range got {
		for col := range got[i] {
			if value.Compare(got[i][col], want[i][col]) != 0 {
				t.Fatalf("row %d differs from oracle — owned build rows corrupted", i)
			}
		}
	}
}
