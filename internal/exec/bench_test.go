package exec_test

// Benchmarks comparing the materialized (legacy slice-returning) and
// pipelined (Operator/Batch) execution paths on TPC-H-shaped data:
// a predicated lineitem scan and the lineitem⋈orders join on orderkey.
// The pipelined consumer aggregates batch-at-a-time, so the difference
// in B/op is exactly the materialization the legacy API forces.
//
// Run with:
//
//	go test ./internal/exec -bench=Scan -benchmem
//	go test ./internal/exec -bench=ShuffleJoin -benchmem -benchsf 0.1

import (
	"flag"
	"sync"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tpch"
	"adaptdb/internal/value"
)

// benchSF is the TPC-H scale factor for the exec benchmarks. The
// acceptance target is SF ≥ 0.1 (~600k lineitem rows); the default
// stays there while -benchsf lets a laptop run smaller.
var benchSF = flag.Float64("benchsf", 0.1, "TPC-H scale factor for exec benchmarks")

type benchEnv struct {
	store *dfs.Store
	line  *core.Table
	ord   *core.Table
}

var (
	benchOnce sync.Once
	benchData *benchEnv
	benchErr  error
)

// benchTables generates and loads lineitem and orders co-partitioned on
// orderkey, once per process.
func benchTables(b *testing.B) *benchEnv {
	b.Helper()
	benchOnce.Do(func() {
		ds := tpch.Generate(*benchSF, 42)
		store := dfs.NewStore(10, 3, 7)
		line, err := core.Load(store, "lineitem", tpch.LineitemSchema, ds.Lineitem, core.LoadOptions{
			RowsPerBlock: 4096, Seed: 1, JoinAttr: tpch.LOrderKey,
		})
		if err != nil {
			benchErr = err
			return
		}
		ord, err := core.Load(store, "orders", tpch.OrdersSchema, ds.Orders, core.LoadOptions{
			RowsPerBlock: 4096, Seed: 2, JoinAttr: tpch.OOrderKey,
		})
		if err != nil {
			benchErr = err
			return
		}
		benchData = &benchEnv{store: store, line: line, ord: ord}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchData
}

func benchExecutor(env *benchEnv) *exec.Executor {
	return exec.New(env.store, &cluster.Meter{})
}

// shipPreds keeps roughly half of lineitem, so the scan benchmarks
// exercise predicate filtering, not just block reads.
func shipPreds() []predicate.Predicate {
	mid := (tpch.StartDate + tpch.EndDate) / 2
	return []predicate.Predicate{predicate.NewCmp(tpch.LShipDate, predicate.LT, value.NewDate(mid))}
}

func BenchmarkScanMaterialized(b *testing.B) {
	env := benchTables(b)
	ex := benchExecutor(env)
	preds := shipPreds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := ex.Scan(env.line, preds)
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

func BenchmarkScanPipelined(b *testing.B) {
	env := benchTables(b)
	ex := benchExecutor(env)
	preds := shipPreds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := exec.Count(ex.TableScanOp(env.line, preds))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "rows")
	}
}

func BenchmarkShuffleJoinMaterialized(b *testing.B) {
	env := benchTables(b)
	ex := benchExecutor(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := ex.ShuffleJoinTables(env.line, nil, tpch.LOrderKey, env.ord, nil, tpch.OOrderKey)
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

func BenchmarkShuffleJoinPipelined(b *testing.B) {
	env := benchTables(b)
	ex := benchExecutor(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Build on orders (the smaller side), stream lineitem through the
		// probe, and aggregate without materializing the output.
		op := ex.JoinOp(
			ex.TableScanOp(env.ord, nil), tpch.OOrderKey,
			ex.TableScanOp(env.line, nil), tpch.LOrderKey,
			exec.JoinOptions{BuildIsRight: true, BuildCharge: exec.ChargeShuffle, ProbeCharge: exec.ChargeShuffle},
		)
		n, err := exec.Count(op)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "rows")
	}
}

// benchSpillJoin is the shuffle join under a starved memory budget
// (~1/8 of the SF 0.1 build side), the spilling hybrid hash join's hot
// path, with the columnar/row switch exposed for A/B profiling.
func benchSpillJoin(b *testing.B, rowPath bool) {
	env := benchTables(b)
	ex := benchExecutor(env)
	ex.DisableColumnar = rowPath
	ex.Mem = exec.NewMemBudget(6 << 20)
	ex.SpillDir = b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ex.JoinOp(
			ex.TableScanOp(env.ord, nil), tpch.OOrderKey,
			ex.TableScanOp(env.line, nil), tpch.LOrderKey,
			exec.JoinOptions{BuildIsRight: true, BuildRowsEst: 150000},
		)
		n, err := exec.Count(op)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "rows")
	}
}

func BenchmarkSpillJoinPipelined(b *testing.B)    { benchSpillJoin(b, false) }
func BenchmarkSpillJoinPipelinedRow(b *testing.B) { benchSpillJoin(b, true) }

func BenchmarkHyperJoinMaterialized(b *testing.B) {
	env := benchTables(b)
	ex := benchExecutor(env)
	rRefs := env.line.Refs(0, nil)
	sRefs := env.ord.Refs(0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := ex.HyperJoin(rRefs, nil, tpch.LOrderKey, sRefs, nil, tpch.OOrderKey, 8)
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

func BenchmarkHyperJoinPipelined(b *testing.B) {
	env := benchTables(b)
	ex := benchExecutor(env)
	rRefs := env.line.Refs(0, nil)
	sRefs := env.ord.Refs(0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ex.NewHyperJoinOp(rRefs, nil, tpch.LOrderKey, sRefs, nil, tpch.OOrderKey, 8)
		n, err := exec.Count(op)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "rows")
	}
}

// benchJoinWorkers measures the partition-parallel join at a fixed
// worker count, streaming the probe side and aggregating without
// materializing output — the scaling curve of the radix join core.
func benchJoinWorkers(b *testing.B, workers int) {
	env := benchTables(b)
	ex := benchExecutor(env)
	ex.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ex.JoinOp(
			ex.TableScanOp(env.ord, nil), tpch.OOrderKey,
			ex.TableScanOp(env.line, nil), tpch.LOrderKey,
			exec.JoinOptions{BuildIsRight: true, BuildCharge: exec.ChargeShuffle, ProbeCharge: exec.ChargeShuffle},
		)
		n, err := exec.Count(op)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "rows")
	}
}

func BenchmarkShuffleJoinPipelinedWorkers1(b *testing.B) { benchJoinWorkers(b, 1) }
func BenchmarkShuffleJoinPipelinedWorkers2(b *testing.B) { benchJoinWorkers(b, 2) }
func BenchmarkShuffleJoinPipelinedWorkers4(b *testing.B) { benchJoinWorkers(b, 4) }
