package exec

import (
	"math"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func testExec() *Executor {
	return New(dfs.NewStore(2, 1, 1), &cluster.Meter{})
}

// refGroupBy is a plain map-based reference aggregation mirroring
// GroupByOp's documented semantics.
func refGroupBy(rows []tuple.Tuple, spec GroupBySpec) []tuple.Tuple {
	type state struct {
		key  tuple.Tuple
		accs []aggAcc
	}
	var groups []*state
	find := func(key tuple.Tuple) *state {
		for _, g := range groups {
			same := true
			for c := range key {
				if !value.Equal(g.key[c], key[c]) {
					same = false
					break
				}
			}
			if same {
				return g
			}
		}
		g := &state{key: append(tuple.Tuple(nil), key...), accs: make([]aggAcc, len(spec.Aggs))}
		groups = append(groups, g)
		return g
	}
	key := make(tuple.Tuple, len(spec.GroupCols))
	for _, r := range rows {
		for ci, c := range spec.GroupCols {
			key[ci] = r[c]
		}
		g := find(key)
		for ai, a := range spec.Aggs {
			if a.Fn == AggCount && a.Col < 0 {
				g.accs[ai].add(a.Fn, value.Value{})
			} else {
				g.accs[ai].add(a.Fn, r[a.Col])
			}
		}
	}
	if len(spec.GroupCols) == 0 && len(groups) == 0 {
		groups = append(groups, &state{accs: make([]aggAcc, len(spec.Aggs))})
	}
	var out []tuple.Tuple
	for _, g := range groups {
		row := append(tuple.Tuple(nil), g.key...)
		for ai, a := range spec.Aggs {
			row = append(row, g.accs[ai].result(a.Fn))
		}
		out = append(out, row)
	}
	return out
}

func TestGroupByMatchesReference(t *testing.T) {
	rows := genOrders(3000, 91)
	spec := GroupBySpec{
		GroupCols: []int{1}, // custkey: 50 groups
		Aggs: []AggSpec{
			{Fn: AggCount, Col: -1},
			{Fn: AggSum, Col: 2},
			{Fn: AggMin, Col: 0},
			{Fn: AggMax, Col: 2},
			{Fn: AggAvg, Col: 0},
		},
	}
	want := refGroupBy(rows, spec)
	for _, columnar := range []bool{false, true} {
		ex := testExec()
		var src Operator = NewSource(rows)
		name := "rows"
		if columnar {
			src = NewColSource(rows)
			name = "columnar"
		}
		got, err := Collect(ex.GroupByOp(src, spec))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rowsEqualSorted(t, got, want)
	}
}

// TestGroupBySortedOutput: groups come out in key order, so two runs
// over permuted inputs yield identical slices, not just multisets.
func TestGroupBySortedOutput(t *testing.T) {
	rows := genOrders(500, 7)
	rev := make([]tuple.Tuple, len(rows))
	for i, r := range rows {
		rev[len(rows)-1-i] = r
	}
	spec := GroupBySpec{GroupCols: []int{1}, Aggs: []AggSpec{{Fn: AggCount, Col: -1}, {Fn: AggSum, Col: 2}}}
	a, err := Collect(testExec().GroupByOp(NewSource(rows), spec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(testExec().GroupByOp(NewSource(rev), spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("%d vs %d groups", len(a), len(b))
	}
	for i := range a {
		for c := range a[i] {
			if value.Compare(a[i][c], b[i][c]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, c, a[i][c], b[i][c])
			}
		}
	}
	for i := 1; i < len(a); i++ {
		if value.Compare(a[i-1][0], a[i][0]) >= 0 {
			t.Fatalf("output not key-ordered at %d: %v !< %v", i, a[i-1][0], a[i][0])
		}
	}
}

// TestGroupByGlobalAggregate: no group columns — exactly one row, even
// over an empty input, with COUNT 0 and NULL folds.
func TestGroupByGlobalAggregate(t *testing.T) {
	spec := GroupBySpec{Aggs: []AggSpec{
		{Fn: AggCount, Col: -1}, {Fn: AggSum, Col: 0}, {Fn: AggMin, Col: 0}, {Fn: AggAvg, Col: 0},
	}}
	got, err := Collect(testExec().GroupByOp(Empty(), spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d rows over empty input, want 1", len(got))
	}
	r := got[0]
	if r[0].Int64() != 0 || !r[1].IsNull() || !r[2].IsNull() || !r[3].IsNull() {
		t.Fatalf("empty-input global aggregate = %v", r)
	}

	rows := genOrders(100, 5)
	got, err = Collect(testExec().GroupByOp(NewSource(rows), spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].Int64() != 100 {
		t.Fatalf("global aggregate = %v", got)
	}
}

// TestGroupByNullAndNaNKeys: NULL keys form one group and NaN keys
// form one group (value.Compare grouping, unlike join keys).
func TestGroupByNullAndNaNKeys(t *testing.T) {
	rows := []tuple.Tuple{
		{value.Value{}, value.NewInt(1)},
		{value.Value{}, value.NewInt(2)},
		{value.NewFloat(math.NaN()), value.NewInt(3)},
		{value.NewFloat(math.NaN()), value.NewInt(4)},
		{value.NewFloat(1), value.NewInt(5)},
	}
	spec := GroupBySpec{GroupCols: []int{0}, Aggs: []AggSpec{{Fn: AggCount, Col: -1}, {Fn: AggSum, Col: 1}}}
	got, err := Collect(testExec().GroupByOp(NewSource(rows), spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d groups, want 3 (null, NaN, 1)", len(got))
	}
	// Null sorts first, NaN before other floats.
	if !got[0][0].IsNull() || got[0][1].Int64() != 2 || got[0][2].Int64() != 3 {
		t.Errorf("null group = %v", got[0])
	}
	if !math.IsNaN(got[1][0].Float64()) || got[1][1].Int64() != 2 || got[1][2].Int64() != 7 {
		t.Errorf("NaN group = %v", got[1])
	}
}

// TestGroupBySumPromotion: integer inputs keep an exact int64 sum;
// the first float promotes the accumulated total.
func TestGroupBySumPromotion(t *testing.T) {
	rows := []tuple.Tuple{
		{value.NewInt(3)}, {value.NewInt(4)}, {value.NewFloat(0.5)},
	}
	spec := GroupBySpec{Aggs: []AggSpec{{Fn: AggSum, Col: 0}}}
	got, err := Collect(testExec().GroupByOp(NewSource(rows), spec))
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].K != value.Float || got[0][0].Float64() != 7.5 {
		t.Fatalf("promoted sum = %v", got[0][0])
	}
	intsOnly := rows[:2]
	got, err = Collect(testExec().GroupByOp(NewSource(intsOnly), spec))
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].K != value.Int || got[0][0].Int64() != 7 {
		t.Fatalf("integer sum = %v", got[0][0])
	}
}

// TestGroupByBudget: group state is charged while live and fully
// released at Close.
func TestGroupByBudget(t *testing.T) {
	ex := testExec()
	ex.Mem = NewMemBudget(1 << 20)
	op := ex.GroupByOp(NewSource(genOrders(2000, 13)), GroupBySpec{
		GroupCols: []int{0},
		Aggs:      []AggSpec{{Fn: AggCount, Col: -1}},
	})
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	if used := ex.Mem.Used(); used == 0 {
		t.Error("no budget charged for 500 live groups")
	}
	for {
		b, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		b.Release()
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if used := ex.Mem.Used(); used != 0 {
		t.Errorf("budget holds %d bytes after Close, want 0", used)
	}
}

func TestWhereColsEq(t *testing.T) {
	rows := []tuple.Tuple{
		{value.NewInt(1), value.NewInt(1), value.NewInt(9)},
		{value.NewInt(2), value.NewInt(3), value.NewInt(9)},
		{value.Value{}, value.Value{}, value.NewInt(9)}, // NULL != NULL under join semantics
		{value.NewInt(4), value.NewInt(4), value.NewInt(9)},
	}
	want := []tuple.Tuple{rows[0], rows[3]}
	for _, columnar := range []bool{false, true} {
		var src Operator = NewSource(rows)
		if columnar {
			src = NewColSource(rows)
		}
		got, err := Collect(WhereColsEq(src, [][2]int{{0, 1}}))
		if err != nil {
			t.Fatal(err)
		}
		rowsEqualSorted(t, got, want)
	}
	// No pairs: pass-through (same operator back).
	src := NewSource(rows)
	if WhereColsEq(src, nil) != Operator(src) {
		t.Error("empty pair list should return the child unchanged")
	}
}

func TestProject(t *testing.T) {
	rows := genOrders(2100, 17)
	want := make([]tuple.Tuple, len(rows))
	for i, r := range rows {
		want[i] = tuple.Tuple{r[2], r[0]}
	}
	for _, columnar := range []bool{false, true} {
		var src Operator = NewSource(rows)
		if columnar {
			src = NewColSource(rows)
		}
		got, err := Collect(Project(src, []int{2, 0}))
		if err != nil {
			t.Fatal(err)
		}
		rowsEqualSorted(t, got, want)
	}
}

// TestProjectAfterFilterSel: projection through a refined selection
// vector only keeps surviving rows.
func TestProjectAfterFilterSel(t *testing.T) {
	rows := genOrders(1000, 23)
	keep := func(r tuple.Tuple) bool { return r[1].Int64() < 10 }
	var want []tuple.Tuple
	for _, r := range rows {
		if keep(r) {
			want = append(want, tuple.Tuple{r[1], r[2]})
		}
	}
	src := WhereColsEqTestFilter(NewColSource(rows), keep)
	got, err := Collect(Project(src, []int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	rowsEqualSorted(t, got, want)
}

// WhereColsEqTestFilter adapts a row predicate onto the columnar
// selection path for projection tests.
func WhereColsEqTestFilter(child Operator, keep func(tuple.Tuple) bool) Operator {
	return &selTestFilter{child: child, keep: keep}
}

type selTestFilter struct {
	child   Operator
	keep    func(tuple.Tuple) bool
	scratch tuple.Tuple
}

func (f *selTestFilter) Open() error { return f.child.Open() }
func (f *selTestFilter) Next() (*Batch, error) {
	for {
		in, err := f.child.Next()
		if err != nil || in == nil {
			return nil, err
		}
		cb := in.Cols()
		if cb == nil {
			return in, nil
		}
		cb.FilterSel(func(i int) bool {
			f.scratch = cb.RowTo(f.scratch, i)
			return f.keep(f.scratch)
		})
		if cb.Len() > 0 {
			return in, nil
		}
		in.Release()
	}
}
func (f *selTestFilter) Close() error { return f.child.Close() }

// TestCollectAliasesViewRows pins the Batch-ownership contract the
// double-copy audit relies on: Collect over view batches (Source)
// returns the caller's rows without copying, while owned batches are
// copied out. Callers that copy Collect output again are paying twice.
func TestCollectAliasesViewRows(t *testing.T) {
	rows := genOrders(100, 29)
	out, err := Collect(NewSource(rows))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rows) {
		t.Fatalf("%d rows, want %d", len(out), len(rows))
	}
	if &out[0][0] != &rows[0][0] {
		t.Error("Collect copied view rows; they should alias the source")
	}
	// Owned path: a columnar source materializes owned rows, which must
	// NOT alias the (released) batch arena.
	out2, err := Collect(NewColSource(rows))
	if err != nil {
		t.Fatal(err)
	}
	rowsEqualSorted(t, out2, rows)
}
