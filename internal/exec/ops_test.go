package exec

import (
	"errors"
	"testing"

	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func intRows(vals ...int64) []tuple.Tuple {
	out := make([]tuple.Tuple, len(vals))
	for i, v := range vals {
		out[i] = tuple.Tuple{value.NewInt(v)}
	}
	return out
}

func TestInstrumentCountsAndFiresOnce(t *testing.T) {
	rows := intRows(1, 2, 3, 4, 5)
	fired := 0
	var got OpStats
	op := Instrument("src", NewSource(rows), func(st OpStats) { fired++; got = st })
	out, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("rows = %d, want 5", len(out))
	}
	if fired != 1 {
		t.Fatalf("onDone fired %d times, want 1", fired)
	}
	if got.Rows != 5 || got.Batches != 1 || got.Label != "src" {
		t.Fatalf("stats = %+v", got)
	}
	// Close after drain must not re-fire.
	if fired != 1 {
		t.Fatalf("onDone re-fired at Close")
	}
	if st := op.Stats(); st.Rows != 5 {
		t.Fatalf("Stats() = %+v", st)
	}
}

func TestInstrumentFiresOnEarlyClose(t *testing.T) {
	fired := 0
	op := Instrument("src", NewSource(intRows(1, 2, 3)), func(OpStats) { fired++ })
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	// Close without draining: the hook must still fire exactly once.
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("onDone fired %d times on early close, want 1", fired)
	}
}

func TestConcatOrderAndLifecycle(t *testing.T) {
	a := NewSource(intRows(1, 2))
	b := NewSource(nil) // empty child in the middle
	c := NewSource(intRows(3))
	rows, err := Collect(Concat(a, b, c))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, want := range []int64{1, 2, 3} {
		if rows[i][0].Int64() != want {
			t.Fatalf("row %d = %v, want %d", i, rows[i][0], want)
		}
	}
}

func TestConcatEmptyAndSingle(t *testing.T) {
	rows, err := Collect(Concat())
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty concat: rows=%d err=%v", len(rows), err)
	}
	src := NewSource(intRows(7))
	if op := Concat(src); op != Operator(src) {
		t.Fatalf("single-child Concat should return the child itself")
	}
}

type errOp struct{ openErr, nextErr error }

func (e *errOp) Open() error { return e.openErr }
func (e *errOp) Next() (*Batch, error) {
	if e.nextErr != nil {
		return nil, e.nextErr
	}
	return nil, nil
}
func (e *errOp) Close() error { return nil }

func TestConcatPropagatesChildErrors(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Collect(Concat(NewSource(intRows(1)), &errOp{openErr: boom})); !errors.Is(err, boom) {
		t.Fatalf("open error not propagated: %v", err)
	}
	if _, err := Collect(Concat(&errOp{nextErr: boom}, NewSource(intRows(1)))); !errors.Is(err, boom) {
		t.Fatalf("next error not propagated: %v", err)
	}
}

func TestSwapSidesRestoresColumnOrder(t *testing.T) {
	// Rows laid out (right‖left) with left width 1: [r1, r2, l].
	rows := []tuple.Tuple{
		{value.NewInt(10), value.NewInt(11), value.NewInt(1)},
		{value.NewInt(20), value.NewInt(21), value.NewInt(2)},
	}
	out, err := Collect(SwapSides(NewSource(rows), 1))
	if err != nil {
		t.Fatal(err)
	}
	SortRows(out)
	if len(out) != 2 {
		t.Fatalf("rows = %d, want 2", len(out))
	}
	if out[0][0].Int64() != 1 || out[0][1].Int64() != 10 || out[0][2].Int64() != 11 {
		t.Fatalf("swapped row = %v", out[0])
	}
	if out[1][0].Int64() != 2 || out[1][1].Int64() != 20 || out[1][2].Int64() != 21 {
		t.Fatalf("swapped row = %v", out[1])
	}
}
