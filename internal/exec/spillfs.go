// The filesystem seam of the spill path. Run-file I/O goes through a
// three-method interface instead of raw os calls so tests can inject
// faults at exact points — "the Nth write fails", "the second read-back
// fails" — and assert every error path surfaces the error, returns its
// MemBudget charge, and leaves no files behind. Production always uses
// the os-backed implementation; the indirection costs one interface
// call per *file* operation, which run-file buffering already
// amortizes over thousands of rows.
package exec

import (
	"io"
	"os"
)

// spillFS is the file-operation surface of the spill path: create a run
// file for writing, open one for reading, remove one. Directory
// lifecycle (MkdirTemp at first demotion, RemoveAll at Close) stays on
// the os package — the final RemoveAll is the cleanup of last resort
// and must not be failable by injection.
type spillFS interface {
	Create(name string) (io.WriteCloser, error)
	Open(name string) (io.ReadCloser, error)
	Remove(name string) error
}

// osSpillFS is the production implementation.
type osSpillFS struct{}

func (osSpillFS) Create(name string) (io.WriteCloser, error) { return os.Create(name) }
func (osSpillFS) Open(name string) (io.ReadCloser, error)    { return os.Open(name) }
func (osSpillFS) Remove(name string) error                   { return os.Remove(name) }

// spillFS returns the executor's run-file filesystem — the injected
// one, or the os-backed default.
func (e *Executor) spillFS() spillFS {
	if e.fs != nil {
		return e.fs
	}
	return osSpillFS{}
}
