// The per-partition Bloom filter of the spilling hybrid hash join.
//
// When a partition is demoted to disk, every probe row hashing to it
// would classically be written to a run file and re-read in the second
// pass — even rows whose key matches nothing on the build side. A
// filter over the demoted partition's build keys lets such rows skip
// the spill write entirely: a negative answer is exact (every build key
// is inserted before the probe starts), a positive answer merely falls
// back to the write. On disjoint- or sparse-key workloads this removes
// the probe side's spill I/O wholesale; the skipped rows are metered as
// Counters.SpillSkippedRows.
package exec

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// defaultBloomFPR is the false-positive target spill filters are sized
// for. 1% keeps the filter ~10 bits/key — a rounding error against the
// run-file bytes each true positive costs — while skipping ~99% of the
// unmatchable probe rows.
const defaultBloomFPR = 0.01

// bloomFilter is a double-hashed Bloom filter over value.Hash64 keys.
// Inserts are safe for concurrent use (build workers of a demoted
// partition add while flushing); queries must only start once inserts
// have finished — the join's build/probe phase barrier guarantees it.
//
// The bit count is the exact ceil(-n·ln p / ln²2), not rounded to a
// power of two, so the measured false-positive rate tracks the
// configured target instead of whatever the next power of two yields.
type bloomFilter struct {
	words []uint64
	nbits uint64
	k     int
}

// newBloomFilter sizes a filter for expected keys at the target
// false-positive rate (0 = defaultBloomFPR).
func newBloomFilter(expected int, fpr float64) *bloomFilter {
	if expected < 1 {
		expected = 1
	}
	if fpr <= 0 || fpr >= 1 {
		fpr = defaultBloomFPR
	}
	ln2 := math.Ln2
	nbits := uint64(math.Ceil(-float64(expected) * math.Log(fpr) / (ln2 * ln2)))
	if nbits < 64 {
		nbits = 64
	}
	k := int(math.Round(float64(nbits) / float64(expected) * ln2))
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &bloomFilter{words: make([]uint64, (nbits+63)/64), nbits: nbits, k: k}
}

// indexes derives the k probe positions from one Hash64 value with the
// standard Kirsch–Mitzenmacher double hashing: g_i = h1 + i·h2. h2 is
// re-mixed from h so partitions of the radix join (which consumed h's
// top bits) still spread over the whole filter, and forced odd so the
// probe sequence never degenerates.
func (f *bloomFilter) index(h uint64, i int) uint64 {
	h2 := h
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	h2 |= 1
	return (h + uint64(i)*h2) % f.nbits
}

// add inserts a key hash. Safe for concurrent use.
func (f *bloomFilter) add(h uint64) {
	for i := 0; i < f.k; i++ {
		pos := f.index(h, i)
		w, bit := pos>>6, uint64(1)<<(pos&63)
		for {
			old := atomic.LoadUint64(&f.words[w])
			if old&bit != 0 || atomic.CompareAndSwapUint64(&f.words[w], old, old|bit) {
				break
			}
		}
	}
}

// mayContain reports whether h could have been added: false is exact
// (zero false negatives by construction), true may be a false positive
// at roughly the configured rate.
func (f *bloomFilter) mayContain(h uint64) bool {
	for i := 0; i < f.k; i++ {
		pos := f.index(h, i)
		if atomic.LoadUint64(&f.words[pos>>6])&(uint64(1)<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// fillRatio reports the fraction of set bits — a saturation diagnostic
// for tests (a filter past ~50% fill has blown its false-positive
// budget, usually from an undersized expectation).
func (f *bloomFilter) fillRatio() float64 {
	set := 0
	for i := range f.words {
		set += bits.OnesCount64(atomic.LoadUint64(&f.words[i]))
	}
	return float64(set) / float64(len(f.words)*64)
}
