// The columnar hash-join hot path: vectorized build, batch hashing,
// kind-specialized probe, and gathered columnar emission.
//
// The row path (pipeline.go) partitions boxed tuples into per-worker
// joinBufs and probes with value.Equal per candidate. This file is the
// same join with the inner loops de-boxed:
//
//   - build workers transpose incoming batches into per-partition
//     columnar stores (tuple.Columns), hashing key columns a batch at a
//     time via Hash64Column;
//   - sealing bulk-merges the worker stores into ONE global store plus
//     per-partition chained hash tables over global row indices — match
//     pairs from any partition can then gather from a single store;
//   - probe workers compare keys flat (int64 ==, FloatEqual, byte
//     equality) against the store's key vector, falling back to boxed
//     compares only for mixed-kind columns;
//   - matches accumulate as (build row, probe row) index pairs and are
//     gathered column-at-a-time into columnar output batches.
//
// Spill interplay is unchanged: demoted partitions stream rows to the
// same run files (materialized via RowTo), and the second pass joins
// them row-wise exactly as before. Executor.DisableColumnar reverts
// the whole join to the row path for A/B measurement.
package exec

import (
	"sync"

	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// colBuf is one build worker's private slice of one partition: hashes
// plus a columnar store, appended without locks. hint pre-sizes the
// store from the planner's build estimate so steady growth doesn't pay
// append-doubling garbage.
type colBuf struct {
	hashes []uint64
	store  *tuple.Columns
	hint   int
}

func (b *colBuf) init(ncols int) {
	if b.store == nil {
		b.store = tuple.NewColumns(ncols)
		if b.hint > 0 {
			b.store.Reserve(b.hint)
			b.hashes = make([]uint64, 0, b.hint)
		}
	}
}

// addFrom retains physical row i of src (deep copy into the store).
func (b *colBuf) addFrom(h uint64, src *tuple.Columns, i int) {
	b.init(src.NumCols())
	b.store.AppendRowFrom(src, i)
	b.hashes = append(b.hashes, h)
}

// addRow retains one boxed row (deep copy — batch ownership is moot).
func (b *colBuf) addRow(h uint64, r tuple.Tuple) {
	b.init(len(r))
	b.store.AppendRow(r)
	b.hashes = append(b.hashes, h)
}

func (b *colBuf) len() int { return len(b.hashes) }

// reset drops the rows but keeps capacity for the next eviction cycle.
func (b *colBuf) reset() {
	b.hashes = b.hashes[:0]
	if b.store != nil {
		b.store.Reset(b.store.NumCols())
	}
}

// colPart is one radix partition's hash table over the global build
// store: a bucket-headed chain keyed by hash, entries 1-based within
// the partition's contiguous [base, base+n) row range.
type colPart struct {
	base    int32
	buckets []int32 // 1-based entry index, 0 = empty
	next    []int32 // chain links, 1-based, indexed by entry-1
	mask    uint64
}

// colBuild is the sealed columnar build side: one global store, its row
// hashes, and a chained table per partition. Sealed before the probe
// phase starts; read-only (and so safely shared) afterwards.
type colBuild struct {
	store  *tuple.Columns
	hashes []uint64
	parts  []colPart
	keyVec *tuple.ColVec // store.Col(bCol); nil while the store is empty
}

// buildTablesCol is buildTables for the columnar path: same worker
// fan-out, same spill protocol, but batches transpose into columnar
// stores and the key column hashes vectorized.
func (j *hashJoinOp) buildTablesCol() error {
	w := j.workerCount()
	bufs := make([][]colBuf, w)
	in := make(chan *Batch, w)
	// Per-(worker, partition) share of the planner's build estimate; 0
	// (no estimate) falls back to append growth.
	hint := 0
	if j.opts.BuildRowsEst > 0 {
		hint = j.opts.BuildRowsEst / (w * j.nParts)
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		bufs[i] = make([]colBuf, j.nParts)
		for p := range bufs[i] {
			bufs[i][p].hint = hint
		}
		wg.Add(1)
		go func(id int, my []colBuf) {
			defer wg.Done()
			sp := j.spill
			var spw *partSpiller
			myBytes := make([]int64, j.nParts)
			if sp != nil {
				spw = sp.newPartSpiller(id, false)
			}
			var hv []uint64
			for b := range in {
				if cerr := j.e.ctxErr(); cerr != nil {
					j.fail(cerr)
				}
				if j.failed.Load() {
					b.Release()
					continue // keep draining so the feeder never blocks
				}
				if cb := b.Cols(); cb != nil {
					hv = cb.Hash64Column(j.bCol, hv)
					n := cb.Len()
					sel := cb.Sel()
					for k := 0; k < n; k++ {
						i := k
						if sel != nil {
							i = int(sel[k])
						}
						if cb.IsNull(j.bCol, i) {
							continue // NULL never equals NULL in a join
						}
						h := hv[i]
						p := int(h >> j.radixShift)
						if sp != nil && sp.isSpilled(p) {
							if err := spw.evictCol(p, &my[p], &myBytes[p]); err != nil {
								j.fail(err)
								break
							}
							if err := spw.writeCol(p, h, cb, i); err != nil {
								j.fail(err)
								break
							}
							continue
						}
						my[p].addFrom(h, cb, i)
						if sp != nil {
							nb := int64(cb.MemBytesRow(i))
							myBytes[p] += nb
							sp.noteBuildRow(p, h, nb)
							if sp.charge(nb) {
								sp.pressure()
							}
						}
					}
				} else {
					for _, r := range b.Rows() {
						key := r[j.bCol]
						if key.IsNull() {
							continue
						}
						h := key.Hash64()
						p := int(h >> j.radixShift)
						if sp != nil && sp.isSpilled(p) {
							if err := spw.evictCol(p, &my[p], &myBytes[p]); err != nil {
								j.fail(err)
								break
							}
							if err := spw.write(p, h, r, b.OwnsRows()); err != nil {
								j.fail(err)
								break
							}
							continue
						}
						my[p].addRow(h, r)
						if sp != nil {
							nb := int64(r.MemBytes())
							myBytes[p] += nb
							sp.noteBuildRow(p, h, nb)
							if sp.charge(nb) {
								sp.pressure()
							}
						}
					}
				}
				b.Release()
			}
			if spw != nil {
				// Final sweep: partitions demoted after this worker last
				// touched them still hold resident rows here.
				for p := range my {
					if sp.isSpilled(p) {
						if err := spw.evictCol(p, &my[p], &myBytes[p]); err != nil {
							j.fail(err)
							break
						}
					}
				}
				if err := spw.finish(); err != nil {
					j.fail(err)
				}
			}
		}(i, bufs[i])
	}
	var err error
	for {
		b, berr := j.build.Next()
		if berr != nil {
			err = berr
			break
		}
		if b == nil {
			break
		}
		in <- b
	}
	close(in)
	wg.Wait()
	if cerr := j.build.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		j.werrMu.Lock()
		err = j.werr
		j.werrMu.Unlock()
	}
	if err != nil {
		return err
	}
	if j.spill != nil {
		if err := j.spill.flushLeftoversCol(bufs); err != nil {
			return err
		}
	}
	j.sealColTables(bufs)
	return nil
}

// sealColTables merges every worker's per-partition stores into one
// global store (bulk column concatenation — flat memmoves for typed
// vectors) and chains each partition's rows into its hash table.
// Buckets are pre-sized from BuildRowsEst so a decent estimate means
// the table is born at its final size. Runs single-threaded: the merge
// is memmove-bound and partition chains index disjoint ranges.
func (j *hashJoinOp) sealColTables(bufs [][]colBuf) {
	cb := &colBuild{parts: make([]colPart, j.nParts)}
	total, ncols := 0, 0
	for wi := range bufs {
		for p := range bufs[wi] {
			b := &bufs[wi][p]
			total += b.len()
			if b.store != nil && b.store.NumCols() > 0 {
				ncols = b.store.NumCols()
			}
		}
	}
	j.cbuild = cb
	j.buildRows = total
	if total == 0 {
		return
	}
	store := tuple.NewColumns(ncols)
	store.Reserve(total)
	hashes := make([]uint64, 0, total)
	perHint := 0
	if j.opts.BuildRowsEst > 0 {
		perHint = j.opts.BuildRowsEst >> uint(j.radixBits)
	}
	for p := 0; p < j.nParts; p++ {
		base := len(hashes)
		for wi := range bufs {
			b := &bufs[wi][p]
			if b.len() == 0 {
				continue
			}
			store.AppendColumns(b.store)
			hashes = append(hashes, b.hashes...)
			b.reset()
		}
		n := len(hashes) - base
		if n == 0 {
			continue // empty or spilled partition: zero colPart, probe skips
		}
		nb := tableBuckets(n, perHint)
		part := colPart{
			base:    int32(base),
			buckets: make([]int32, nb),
			next:    make([]int32, n),
			mask:    uint64(nb - 1),
		}
		for e := 0; e < n; e++ {
			slot := hashes[base+e] & part.mask
			part.next[e] = part.buckets[slot]
			part.buckets[slot] = int32(e + 1)
		}
		cb.parts[p] = part
	}
	cb.store = store
	cb.hashes = hashes
	cb.keyVec = store.Col(j.bCol)
}

// evictCol flushes one build worker's resident columnar rows for a
// freshly demoted partition into its run file — flat typed copies into
// the writer's column buffer, no row materialized — and returns their
// bytes to the budget.
func (s *partSpiller) evictCol(p int, buf *colBuf, bytes *int64) error {
	if buf.len() == 0 && *bytes == 0 {
		return nil
	}
	for k, h := range buf.hashes {
		if err := s.writeCol(p, h, buf.store, k); err != nil {
			return err
		}
	}
	buf.reset()
	s.sp.partBytes[p].Add(-*bytes)
	s.sp.release(*bytes)
	*bytes = 0
	return nil
}

// flushLeftoversCol is flushLeftovers for columnar build buffers: a
// partition demoted after a worker's final sweep still holds rows in
// that worker's store; flush them once the spilled set is frozen.
func (sp *joinSpill) flushLeftoversCol(bufs [][]colBuf) error {
	var spw *partSpiller
	for p := 0; p < sp.j.nParts; p++ {
		if !sp.spilled[p].Load() {
			continue
		}
		if freed := sp.partBytes[p].Swap(0); freed != 0 {
			sp.release(freed)
		}
		for wi := range bufs {
			buf := &bufs[wi][p]
			if buf.len() == 0 {
				continue
			}
			if spw == nil {
				spw = sp.newPartSpiller(len(bufs), false)
			}
			for k, h := range buf.hashes {
				if err := spw.writeCol(p, h, buf.store, k); err != nil {
					return err
				}
			}
			buf.reset()
		}
	}
	if spw != nil {
		return spw.finish()
	}
	return nil
}

// colProbe is one probe worker's match accumulator: (build row, probe
// row) index pairs, flushed into gathered columnar output batches.
type colProbe struct {
	j     *hashJoinOp
	hv    []uint64
	bIdxs []int32        // global rows in cbuild.store
	pIdxs []int32        // physical rows in cols, or indices into rows
	cols  *tuple.Columns // current probe batch, columnar form...
	rows  []tuple.Tuple  // ...or row form
	ok    bool           // false once the consumer closed the stream
}

func (st *colProbe) addPair(b, p int32) {
	st.bIdxs = append(st.bIdxs, b)
	st.pIdxs = append(st.pIdxs, p)
	if len(st.bIdxs) >= DefaultBatchSize {
		st.flush()
	}
}

// flush gathers the accumulated pairs into one columnar output batch:
// build columns from the global store, probe columns from the current
// batch, each column copied in a monomorphic loop. Must run before the
// probe batch is released — gathered output owns its storage, the pair
// indices do not.
func (st *colProbe) flush() {
	n := len(st.bIdxs)
	if n == 0 {
		return
	}
	if !st.ok {
		st.bIdxs, st.pIdxs = st.bIdxs[:0], st.pIdxs[:0]
		return
	}
	j := st.j
	bs := j.cbuild.store
	nb := bs.NumCols()
	np := 0
	if st.cols != nil {
		np = st.cols.NumCols()
	} else if len(st.rows) > 0 {
		np = len(st.rows[0])
	}
	out := NewColBatch(nb + np)
	oc := out.Cols()
	bOff, pOff := 0, nb
	if j.opts.BuildIsRight {
		bOff, pOff = np, 0
	}
	for c := 0; c < nb; c++ {
		oc.AppendColumnGather(bOff+c, bs, c, st.bIdxs)
	}
	if st.cols != nil {
		for c := 0; c < np; c++ {
			oc.AppendColumnGather(pOff+c, st.cols, c, st.pIdxs)
		}
	} else {
		for c := 0; c < np; c++ {
			oc.AppendColumnValues(pOff+c, st.rows, c, st.pIdxs)
		}
	}
	oc.AddRows(n)
	st.bIdxs, st.pIdxs = st.bIdxs[:0], st.pIdxs[:0]
	if !j.send(out) {
		st.ok = false
	}
}

// probeWorkerCol is the columnar probeWorker body: batches route
// through kind-specialized probe loops and matches leave as gathered
// columnar batches.
func (j *hashJoinOp) probeWorkerCol(spw *partSpiller) {
	st := &colProbe{j: j, ok: true}
	skipped := int64(0)
	for pb := range j.in {
		if cerr := j.e.ctxErr(); cerr != nil {
			j.fail(cerr)
		}
		if (j.buildRows == 0 && spw == nil) || j.failed.Load() {
			pb.Release() // metered by the dispatcher; nothing can match
			continue
		}
		if cb := pb.Cols(); cb != nil {
			j.probeColsBatch(cb, st, spw, &skipped)
		} else {
			j.probeRowsBatch(pb, st, spw, &skipped)
		}
		// Gather pending pairs BEFORE the probe batch's storage recycles:
		// pair indices address it, the gathered output does not.
		st.flush()
		st.cols, st.rows = nil, nil
		pb.Release()
		if !st.ok {
			// Consumer closed (send failed): exit like the row path; the
			// dispatcher releases remaining batches.
			return
		}
	}
	if spw != nil {
		if skipped > 0 {
			j.spill.skipped.Add(skipped)
		}
		if err := spw.finish(); err != nil {
			j.fail(err)
		}
	}
}

// spillRouteCol parks one probe row of a spilled partition beside its
// build runs (Bloom negatives skip the round-trip entirely). Reports
// false when the write failed (error recorded).
func (j *hashJoinOp) spillRouteCol(spw *partSpiller, st *colProbe, cb *tuple.Columns,
	part int, h uint64, i int, skipped *int64) bool {
	if bf := j.spill.bloomAt(part); bf != nil && !bf.mayContain(h) {
		*skipped++
		return true
	}
	if err := spw.writeCol(part, h, cb, i); err != nil {
		j.fail(err)
		return false
	}
	return true
}

// probeColsBatch probes one columnar batch. The key column is hashed
// vectorized, then one of four loops runs depending on how the probe
// key's storage lines up with the build key vector: flat int, flat
// float, flat string, or generic boxed.
func (j *hashJoinOp) probeColsBatch(cb *tuple.Columns, st *colProbe, spw *partSpiller, skipped *int64) {
	st.cols, st.rows = cb, nil
	st.hv = cb.Hash64Column(j.pCol, st.hv)
	t := j.cbuild
	kt := t.keyVec
	kp := cb.Col(j.pCol)
	switch {
	case kt == nil:
		// Empty resident store: only spill routing can matter.
		if spw == nil {
			return
		}
		j.probeColGeneric(cb, st, spw, skipped)
	case kp.Boxed() == nil && kt.Boxed() == nil && kp.Kind() == kt.Kind() && value.IntClass(kt.Kind()):
		j.probeColInts(cb, st, spw, skipped)
	case kp.Boxed() == nil && kt.Boxed() == nil && kp.Kind() == kt.Kind() && kt.Kind() == value.Float:
		j.probeColFloats(cb, st, spw, skipped)
	case kp.Boxed() == nil && kt.Boxed() == nil && kp.Kind() == kt.Kind() && kt.Kind() == value.String:
		j.probeColStrings(cb, st, spw, skipped)
	default:
		j.probeColGeneric(cb, st, spw, skipped)
	}
}

func (j *hashJoinOp) probeColInts(cb *tuple.Columns, st *colProbe, spw *partSpiller, skipped *int64) {
	t := j.cbuild
	kp := cb.Col(j.pCol)
	keys := kp.Ints()
	bkeys := t.keyVec.Ints()
	bh := t.hashes
	hv := st.hv
	sel := cb.Sel()
	n := cb.Len()
	hasNull := kp.Valid() != nil
	for k := 0; k < n; k++ {
		i := k
		if sel != nil {
			i = int(sel[k])
		}
		if hasNull && !kp.IsValid(i) {
			continue
		}
		h := hv[i]
		part := int(h >> j.radixShift)
		if spw != nil && j.spill.isSpilled(part) {
			if !j.spillRouteCol(spw, st, cb, part, h, i, skipped) {
				return
			}
			continue
		}
		p := &t.parts[part]
		if len(p.buckets) == 0 {
			continue
		}
		key := keys[i]
		for e := p.buckets[h&p.mask]; e != 0; {
			g := p.base + e - 1
			e = p.next[e-1]
			if bh[g] == h && bkeys[g] == key {
				st.addPair(g, int32(i))
			}
		}
	}
}

func (j *hashJoinOp) probeColFloats(cb *tuple.Columns, st *colProbe, spw *partSpiller, skipped *int64) {
	t := j.cbuild
	kp := cb.Col(j.pCol)
	keys := kp.Floats()
	bkeys := t.keyVec.Floats()
	bh := t.hashes
	hv := st.hv
	sel := cb.Sel()
	n := cb.Len()
	hasNull := kp.Valid() != nil
	for k := 0; k < n; k++ {
		i := k
		if sel != nil {
			i = int(sel[k])
		}
		if hasNull && !kp.IsValid(i) {
			continue
		}
		h := hv[i]
		part := int(h >> j.radixShift)
		if spw != nil && j.spill.isSpilled(part) {
			if !j.spillRouteCol(spw, st, cb, part, h, i, skipped) {
				return
			}
			continue
		}
		p := &t.parts[part]
		if len(p.buckets) == 0 {
			continue
		}
		key := keys[i]
		for e := p.buckets[h&p.mask]; e != 0; {
			g := p.base + e - 1
			e = p.next[e-1]
			if bh[g] == h && value.FloatEqual(bkeys[g], key) {
				st.addPair(g, int32(i))
			}
		}
	}
}

func (j *hashJoinOp) probeColStrings(cb *tuple.Columns, st *colProbe, spw *partSpiller, skipped *int64) {
	t := j.cbuild
	kp := cb.Col(j.pCol)
	keys := kp.Strs()
	bkeys := t.keyVec.Strs()
	bh := t.hashes
	hv := st.hv
	sel := cb.Sel()
	n := cb.Len()
	hasNull := kp.Valid() != nil
	for k := 0; k < n; k++ {
		i := k
		if sel != nil {
			i = int(sel[k])
		}
		if hasNull && !kp.IsValid(i) {
			continue
		}
		h := hv[i]
		part := int(h >> j.radixShift)
		if spw != nil && j.spill.isSpilled(part) {
			if !j.spillRouteCol(spw, st, cb, part, h, i, skipped) {
				return
			}
			continue
		}
		p := &t.parts[part]
		if len(p.buckets) == 0 {
			continue
		}
		key := keys[i]
		for e := p.buckets[h&p.mask]; e != 0; {
			g := p.base + e - 1
			e = p.next[e-1]
			if bh[g] == h && bkeys[g] == key {
				st.addPair(g, int32(i))
			}
		}
	}
}

// probeColGeneric handles the rare shapes the flat loops can't: boxed
// (mixed-kind) key vectors on either side, or kind mismatch between
// probe and build keys (hash salts make cross-kind matches impossible,
// but collisions still need an exact compare).
func (j *hashJoinOp) probeColGeneric(cb *tuple.Columns, st *colProbe, spw *partSpiller, skipped *int64) {
	t := j.cbuild
	hv := st.hv
	sel := cb.Sel()
	n := cb.Len()
	for k := 0; k < n; k++ {
		i := k
		if sel != nil {
			i = int(sel[k])
		}
		if cb.IsNull(j.pCol, i) {
			continue
		}
		h := hv[i]
		part := int(h >> j.radixShift)
		if spw != nil && j.spill.isSpilled(part) {
			if !j.spillRouteCol(spw, st, cb, part, h, i, skipped) {
				return
			}
			continue
		}
		if t.keyVec == nil {
			continue
		}
		p := &t.parts[part]
		if len(p.buckets) == 0 {
			continue
		}
		key := cb.Value(j.pCol, i)
		for e := p.buckets[h&p.mask]; e != 0; {
			g := p.base + e - 1
			e = p.next[e-1]
			if t.hashes[g] == h && buildKeyEq(t.keyVec, g, key) {
				st.addPair(g, int32(i))
			}
		}
	}
}

// probeRowsBatch probes one row-shaped batch (cold operators upstream)
// against the columnar store: boxed keys, flat table compares.
func (j *hashJoinOp) probeRowsBatch(pb *Batch, st *colProbe, spw *partSpiller, skipped *int64) {
	rows := pb.Rows()
	st.cols, st.rows = nil, rows
	t := j.cbuild
	powned := pb.OwnsRows()
	for ri := range rows {
		key := rows[ri][j.pCol]
		if key.IsNull() {
			continue
		}
		h := key.Hash64()
		part := int(h >> j.radixShift)
		if spw != nil && j.spill.isSpilled(part) {
			if bf := j.spill.bloomAt(part); bf != nil && !bf.mayContain(h) {
				*skipped++
				continue
			}
			if err := spw.write(part, h, rows[ri], powned); err != nil {
				j.fail(err)
				return
			}
			continue
		}
		if t.keyVec == nil {
			continue
		}
		p := &t.parts[part]
		if len(p.buckets) == 0 {
			continue
		}
		for e := p.buckets[h&p.mask]; e != 0; {
			g := p.base + e - 1
			e = p.next[e-1]
			if t.hashes[g] == h && buildKeyEq(t.keyVec, g, key) {
				st.addPair(g, int32(ri))
			}
		}
	}
}

// buildKeyEq compares build store row g's key against a boxed probe
// key, with Equal's semantics (kinds must match; NaNs equal; ±0 equal).
func buildKeyEq(kt *tuple.ColVec, g int32, key value.Value) bool {
	if bx := kt.Boxed(); bx != nil {
		return value.Equal(bx[g], key)
	}
	if !kt.IsValid(int(g)) {
		return false // null build keys are never inserted, but stay exact
	}
	switch k := kt.Kind(); {
	case value.IntClass(k):
		return key.K == k && kt.Ints()[g] == key.I
	case k == value.Float:
		return key.K == value.Float && value.FloatEqual(kt.Floats()[g], key.F)
	case k == value.String:
		return key.K == value.String && kt.Str(int(g)) == key.S
	default:
		return false
	}
}
