package exec

import (
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/tuple"
)

// TestScanRefsMatchesScan: the materializing ref-scan adapter returns
// the same rows as the table scan it wraps.
func TestScanRefsMatchesScan(t *testing.T) {
	f := newFixture(t, true)
	refs := f.ex.TableRefs(f.line, nil)
	got := f.ex.ScanRefs(refs, nil)
	if len(got) != len(f.lrows) {
		t.Fatalf("ScanRefs returned %d rows, want %d", len(got), len(f.lrows))
	}
}

// TestShuffleJoinIntermediates: the §4.3 intermediate-to-intermediate
// join matches the oracle and meters its rows as intermediates, not
// shuffles.
func TestShuffleJoinIntermediates(t *testing.T) {
	f := newFixture(t, true)
	l, r := genOrders(400, 71), genLineitem(600, 72)
	got := f.ex.ShuffleJoinIntermediates(l, r, 0, 0)
	rowsEqualSorted(t, got, NestedLoopJoin(l, r, 0, 0))
	c := f.meter.Snapshot()
	if c.IntermediateRows == 0 {
		t.Error("intermediate join metered no intermediate rows")
	}
	if c.ShuffleRows != 0 {
		t.Errorf("intermediate join metered %v shuffle rows, want 0", c.ShuffleRows)
	}
}

// TestDealRoundRobin: Deal spreads a coordinator stream across every
// node without loss or duplication, batch by batch.
func TestDealRoundRobin(t *testing.T) {
	const n = 4
	ns, _ := nodeSetOf(t, n)
	rows := genOrders(8192, 73) // 8 batches over 4 nodes
	x := ns.Deal(NewSource(rows))
	got := drainOutputs(t, x, n)
	total := 0
	for node, rs := range got {
		if len(rs) == 0 {
			t.Errorf("node %d received nothing from an 8-batch deal", node)
		}
		total += len(rs)
	}
	if total != len(rows) {
		t.Fatalf("deal delivered %d rows, want %d", total, len(rows))
	}
}

// TestExchangeBudgetedBatches: with per-node budgets attached, parked
// exchange batches are charged on send and released on delivery — the
// ledger returns to zero once the exchange drains.
func TestExchangeBudgetedBatches(t *testing.T) {
	const n = 2
	store := dfs.NewStore(n, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(64 << 20)
	ns := ex.EnableNodes(1)

	rows := genOrders(6000, 74)
	parts := make([]Operator, n)
	for i := range parts {
		lo, hi := i*len(rows)/n, (i+1)*len(rows)/n
		parts[i] = NewSource(rows[lo:hi])
	}
	got := drainOutputs(t, ns.Shuffle(parts, 0), n)
	total := 0
	for _, rs := range got {
		total += len(rs)
	}
	if total != len(rows) {
		t.Fatalf("budgeted shuffle delivered %d rows, want %d", total, len(rows))
	}
	for i := 0; i < ns.N(); i++ {
		if used := ns.At(i).Mem.Used(); used != 0 {
			t.Errorf("node %d budget holds %d bytes after drain, want 0", i, used)
		}
	}
}

// TestAppendColRowFrom: single-row columnar appends mirror the source
// row exactly.
func TestAppendColRowFrom(t *testing.T) {
	rows := genOrders(8, 75)
	src := NewColSource(rows)
	if err := src.Open(); err != nil {
		t.Fatal(err)
	}
	sb, err := src.Next()
	if err != nil || sb == nil {
		t.Fatalf("col source: %v %v", sb, err)
	}
	dst := NewColBatch(len(rows[0]))
	for i := 0; i < sb.Len(); i++ {
		dst.AppendColRowFrom(sb.Cols(), i)
	}
	if dst.Len() != len(rows) {
		t.Fatalf("dst has %d rows, want %d", dst.Len(), len(rows))
	}
	// dst is never released, so its materialized rows stay valid —
	// retaining them without a per-row copy is safe here.
	got := append([]tuple.Tuple(nil), dst.Rows()...)
	rowsEqualSorted(t, got, rows)
}
