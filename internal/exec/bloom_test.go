package exec

import (
	"math"
	"math/rand"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// TestBloomZeroFalseNegatives is the correctness contract the spill
// skip rests on: every inserted hash must answer positive. A single
// false negative would silently drop join rows.
func TestBloomZeroFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 63, 1024, 50_000} {
		bf := newBloomFilter(n, 0)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
			bf.add(keys[i])
		}
		for i, h := range keys {
			if !bf.mayContain(h) {
				t.Fatalf("n=%d: false negative on key %d (hash %#x)", n, i, h)
			}
		}
	}
}

// TestBloomFPRNearTarget measures the false-positive rate against
// disjoint query keys: it must stay within 2x the configured 1% target
// (the exact-bit-count sizing is what makes this bound testable — a
// power-of-two rounding could land anywhere below it).
func TestBloomFPRNearTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, probes = 20_000, 200_000
	bf := newBloomFilter(n, 0)
	member := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		h := rng.Uint64()
		member[h] = true
		bf.add(h)
	}
	fp := 0
	for i := 0; i < probes; i++ {
		h := rng.Uint64()
		if member[h] {
			continue
		}
		if bf.mayContain(h) {
			fp++
		}
	}
	fpr := float64(fp) / float64(probes)
	if fpr > 2*defaultBloomFPR {
		t.Fatalf("measured FPR %.4f exceeds 2x target %.4f", fpr, defaultBloomFPR)
	}
	if fill := bf.fillRatio(); fill > 0.55 {
		t.Fatalf("fill ratio %.2f: filter undersized for its expectation", fill)
	}
}

// TestBloomHash64FloatConsistency pins the hash identities the filter
// depends on: +0.0 and -0.0 are Compare-equal, so they must hash
// identically (a build-side +0.0 must make a probe-side -0.0 pass the
// filter), and likewise every NaN bit pattern.
func TestBloomHash64FloatConsistency(t *testing.T) {
	posZero := value.NewFloat(0)
	negZero := value.NewFloat(math.Copysign(0, -1))
	if posZero.Hash64() != negZero.Hash64() {
		t.Fatalf("+0.0 hash %#x != -0.0 hash %#x", posZero.Hash64(), negZero.Hash64())
	}
	nanA := value.NewFloat(math.NaN())
	nanB := value.NewFloat(math.Float64frombits(0x7ff8000000000001)) // distinct NaN payload
	if nanA.Hash64() != nanB.Hash64() {
		t.Fatalf("NaN hashes differ: %#x vs %#x", nanA.Hash64(), nanB.Hash64())
	}
	bf := newBloomFilter(16, 0)
	bf.add(posZero.Hash64())
	if !bf.mayContain(negZero.Hash64()) {
		t.Fatal("filter holding +0.0 rejected -0.0")
	}
}

// TestBloomNullKeysNeverInserted runs a real budgeted join whose build
// side is half NULL keys, forces every partition to spill, and asserts
// no demoted partition's filter contains the NULL hash: NULL keys are
// dropped before hashing, so they must never reach the filter (or the
// run files behind it). A deterministic seed makes the false-positive
// risk of the assertion a fixed, verified-passing outcome.
func TestBloomNullKeysNeverInserted(t *testing.T) {
	build := make([]tuple.Tuple, 2000)
	for i := range build {
		key := value.Value{}
		if i%2 == 0 {
			key = value.NewInt(int64(i))
		}
		build[i] = tuple.Tuple{key, value.NewInt(int64(i))}
	}
	probe := []tuple.Tuple{{value.Value{}, value.NewInt(1)}, {value.NewInt(2), value.NewInt(2)}}

	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(256) // starved: everything demotes
	ex.SpillDir = t.TempDir()
	op := ex.JoinOp(NewSource(build), 0, NewSource(probe), 0, JoinOptions{})
	hj := op.(*hashJoinOp)
	got, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqualSorted(t, got, NestedLoopJoin(build, probe, 0, 0))

	nullHash := value.Value{}.Hash64()
	blooms := 0
	for p := 0; p < hj.nParts; p++ {
		bf := hj.spill.bloomAt(p)
		if bf == nil {
			continue
		}
		blooms++
		if bf.mayContain(nullHash) {
			t.Errorf("partition %d filter contains the NULL key hash", p)
		}
	}
	if blooms == 0 {
		t.Fatal("starved join demoted no partitions; test exercised nothing")
	}
}
