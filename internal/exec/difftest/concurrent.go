// Concurrent-session differential oracle: N goroutine clients replay
// interleaved TPC-H streams through one serve.Service, and every
// per-(client, query) result must be bit-identical to a serial replay
// of the same streams on a twin service. The concurrent run records an
// interleaving log — the global order in which queries entered the
// service — and a third replay executes that exact order serially, so
// any failure is reproducible: same seed ⇒ same streams, and the log
// pins the schedule that broke.
//
// The oracle leans on a structural invariant: query results are
// layout-independent (adaptation moves blocks between trees, never
// changes table contents), so any interleaving of queries and
// adaptation steps must leave every checksum unchanged. A divergence
// means shared state bled between in-flight queries — exactly the bug
// class the serving layer's query-context refactor exists to prevent.
package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/serve"
	"adaptdb/internal/session"
	"adaptdb/internal/tpch"
)

// Step is one entry of the interleaving log: client c started its
// qi-th query. It doubles as the per-query result key.
type Step struct {
	Client, Query int
}

// QueryDigest is one query's comparable outcome.
type QueryDigest struct {
	Checksum uint64
	Rows     int
}

// ConcurrentConfig sizes a concurrent-session differential case.
// Everything descends from Seed: the dataset, each client's query
// stream, and the per-tenant optimizer seeds inside the service.
type ConcurrentConfig struct {
	Seed             int64
	SF               float64
	RowsPerBlock     int
	Nodes            int
	Clients          int
	QueriesPerClient int
	// MemBudget is the service's global admission pool (0 = unlimited).
	MemBudget int64
	// Distributed runs per-node executors and exchanges.
	Distributed bool
}

// ConcurrentReport holds the three replays' digests and the recorded
// interleaving.
type ConcurrentReport struct {
	Serial     map[Step]QueryDigest
	Concurrent map[Step]QueryDigest
	Replayed   map[Step]QueryDigest
	Log        []Step
}

// concurrentSchedule is the adaptive two-phase stream (orderkey-joining
// templates, then partkey-joining ones) cut to n queries.
func concurrentSchedule(n int) []tpch.Template {
	phase1 := []tpch.Template{tpch.Q5, tpch.Q3}
	phase2 := []tpch.Template{tpch.Q8, tpch.Q14}
	out := make([]tpch.Template, n)
	for i := range out {
		if i < n/2 {
			out[i] = phase1[i%2]
		} else {
			out[i] = phase2[i%2]
		}
	}
	return out
}

// clientRng seeds client c's instance-parameter stream. Distinct per
// client: interleaved DIFFERENT streams are a stronger isolation test
// than identical ones.
func clientRng(seed int64, c int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1009 + int64(c)))
}

// RunConcurrent executes the three replays and cross-checks them.
// The returned error carries the first divergence and the case seed;
// the report is returned in every case for inspection.
func RunConcurrent(cfg ConcurrentConfig) (*ConcurrentReport, error) {
	if cfg.RowsPerBlock == 0 {
		cfg.RowsPerBlock = 128
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	data := tpch.Generate(cfg.SF, cfg.Seed)
	sched := concurrentSchedule(cfg.QueriesPerClient)
	model := cluster.Default()
	model.Nodes = cfg.Nodes

	build := func() (*serve.Service, *tpch.Tables, error) {
		store := dfs.NewStore(cfg.Nodes, 2, cfg.Seed)
		tbls, err := tpch.LoadAll(store, data, tpch.LoadConfig{RowsPerBlock: cfg.RowsPerBlock, Seed: cfg.Seed})
		if err != nil {
			return nil, nil, err
		}
		return serve.New(store, serve.Config{
			Model:       model,
			Optimizer:   optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 5, Seed: cfg.Seed},
			MemBudget:   cfg.MemBudget,
			Distributed: cfg.Distributed,
		}), tbls, nil
	}

	run := func(svc *serve.Service, tbls *tpch.Tables, rng *rand.Rand, c, qi int) (QueryDigest, error) {
		in := tpch.NewInstance(sched[qi], data, rng)
		res, err := svc.Stream(context.Background(), fmt.Sprintf("c%d", c), session.Query{
			Label: string(sched[qi]), Plan: in.Plan(tbls), Uses: in.Uses(tbls),
		}, nil)
		if err != nil {
			return QueryDigest{}, fmt.Errorf("client %d query %d (%s): %w", c, qi, sched[qi], err)
		}
		return QueryDigest{res.Checksum, res.RowCount}, nil
	}

	rep := &ConcurrentReport{
		Serial:     make(map[Step]QueryDigest),
		Concurrent: make(map[Step]QueryDigest),
		Replayed:   make(map[Step]QueryDigest),
	}

	// Replay 1 — serial oracle, round-robin client order.
	svc, tbls, err := build()
	if err != nil {
		return rep, err
	}
	rngs := make([]*rand.Rand, cfg.Clients)
	for c := range rngs {
		rngs[c] = clientRng(cfg.Seed, c)
	}
	for qi := 0; qi < cfg.QueriesPerClient; qi++ {
		for c := 0; c < cfg.Clients; c++ {
			d, err := run(svc, tbls, rngs[c], c, qi)
			if err != nil {
				return rep, fmt.Errorf("serial: %w", err)
			}
			rep.Serial[Step{c, qi}] = d
		}
	}

	// Replay 2 — concurrent, one goroutine per client, recording the
	// arrival interleaving.
	svc, tbls, err = build()
	if err != nil {
		return rep, err
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := clientRng(cfg.Seed, c)
			for qi := 0; qi < cfg.QueriesPerClient; qi++ {
				mu.Lock()
				rep.Log = append(rep.Log, Step{c, qi})
				mu.Unlock()
				d, err := run(svc, tbls, rng, c, qi)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("concurrent: %w", err)
				}
				rep.Concurrent[Step{c, qi}] = d
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return rep, firstErr
	}

	// Replay 3 — the recorded interleaving, serially. Per-client query
	// order is preserved by construction (each goroutine logged its own
	// steps in order), so each client's rng advances identically.
	svc, tbls, err = build()
	if err != nil {
		return rep, err
	}
	for c := range rngs {
		rngs[c] = clientRng(cfg.Seed, c)
	}
	for _, s := range rep.Log {
		d, err := run(svc, tbls, rngs[s.Client], s.Client, s.Query)
		if err != nil {
			return rep, fmt.Errorf("log replay: %w", err)
		}
		rep.Replayed[Step{s.Client, s.Query}] = d
	}

	// Cross-check all three.
	for qi := 0; qi < cfg.QueriesPerClient; qi++ {
		for c := 0; c < cfg.Clients; c++ {
			k := Step{c, qi}
			want := rep.Serial[k]
			if got := rep.Concurrent[k]; got != want {
				return rep, fmt.Errorf(
					"seed %d: concurrent diverged at client %d query %d: %016x/%d rows vs serial %016x/%d rows (interleaving log has %d steps)",
					cfg.Seed, c, qi, got.Checksum, got.Rows, want.Checksum, want.Rows, len(rep.Log))
			}
			if got := rep.Replayed[k]; got != want {
				return rep, fmt.Errorf(
					"seed %d: log replay diverged at client %d query %d: %016x/%d rows vs serial %016x/%d rows",
					cfg.Seed, c, qi, got.Checksum, got.Rows, want.Checksum, want.Rows)
			}
		}
	}
	return rep, nil
}
