package difftest

import (
	"testing"
	"time"
)

// TestConcurrentSessionsQuick: the CI-speed concurrent-session
// differential — 4 clients × 8 queries over a tiny TPC-H instance,
// serial vs concurrent vs log-replay all bit-identical. Run with
// -race; the schedule is recorded, so a failure report names the seed
// and the interleaving depth that broke.
func TestConcurrentSessionsQuick(t *testing.T) {
	rep, err := RunConcurrent(ConcurrentConfig{
		Seed: 1, SF: 0.002, Clients: 4, QueriesPerClient: 8,
		MemBudget: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Log) != 4*8 {
		t.Fatalf("interleaving log has %d steps, want %d", len(rep.Log), 4*8)
	}
}

// TestConcurrentSessionsDistributed: the same oracle with per-node
// executors and exchanges under the service.
func TestConcurrentSessionsDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := RunConcurrent(ConcurrentConfig{
		Seed: 2, SF: 0.002, Clients: 3, QueriesPerClient: 6,
		MemBudget: 32 << 20, Distributed: true,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSessionsUnbudgeted: no admission pool — every query
// admitted instantly, maximal overlap.
func TestConcurrentSessionsUnbudgeted(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := RunConcurrent(ConcurrentConfig{
		Seed: 3, SF: 0.002, Clients: 4, QueriesPerClient: 6,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSoak is the -long mode concurrency oracle the nightly
// soak runs: random seeds at a larger scale until the time budget
// (a third of -soak, leaving the rest for the join-path soak) runs
// out. Every seed is fully replayable on failure.
func TestConcurrentSoak(t *testing.T) {
	if !*long {
		t.Skip("quick mode; run with -long for the concurrency soak")
	}
	deadline := time.Now().Add(*soakTime / 3)
	seed := int64(1000)
	cases := 0
	for time.Now().Before(deadline) {
		cfg := ConcurrentConfig{
			Seed: seed, SF: 0.005, Clients: 6, QueriesPerClient: 12,
			MemBudget: 48 << 20, Distributed: seed%2 == 0,
		}
		if _, err := RunConcurrent(cfg); err != nil {
			t.Fatal(err)
		}
		seed++
		cases++
	}
	t.Logf("concurrency soak: %d cases clean", cases)
}
