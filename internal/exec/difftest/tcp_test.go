package difftest

import (
	"fmt"
	"os"
	"testing"

	"adaptdb/internal/exec"
	adbnet "adaptdb/internal/net"
)

// TestMain wires the worker re-exec path: a spawned worker process
// re-enters this test binary, registers the spec dataset, and never
// returns from MaybeWorker.
func TestMain(m *testing.M) {
	RegisterSpecDataset()
	adbnet.MaybeWorker()
	os.Exit(m.Run())
}

// TestSpecTCPQuick is the CI subset of the TCP differential: a fixed
// seed band through 1- and 4-fragment clusters, every case diffed
// against the reference evaluation and a simulated-NodeSet session.
func TestSpecTCPQuick(t *testing.T) {
	defer exec.VerifyNoLeaks(t)
	for seed := int64(1); seed <= 10; seed++ {
		c := GenSpecCase(seed)
		for _, nodes := range []int{1, 4} {
			if err := RunSpecCaseTCP(c, SpecDatasetName, nodes, nodes); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSpecTCPAssignment covers fragment assignment shapes off the CI
// fast path: more fragments than workers and more workers than
// fragments.
func TestSpecTCPAssignment(t *testing.T) {
	defer exec.VerifyNoLeaks(t)
	c := GenSpecCase(3)
	if err := RunSpecCaseTCP(c, SpecDatasetName, 8, 3); err != nil {
		t.Fatal(err)
	}
	if err := RunSpecCaseTCP(c, SpecDatasetName, 2, 5); err != nil {
		t.Fatal(err)
	}
}

// TestSpecTCPFull is the nightly matrix: a wide seed band × {1,4,8}
// fragments. Run with -long.
func TestSpecTCPFull(t *testing.T) {
	if !*long {
		t.Skip("nightly matrix; run with -long")
	}
	defer exec.VerifyNoLeaks(t)
	for seed := int64(1); seed <= 40; seed++ {
		c := GenSpecCase(seed)
		for _, nodes := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("seed=%d/nodes=%d", seed, nodes), func(t *testing.T) {
				if err := RunSpecCaseTCP(c, SpecDatasetName, nodes, nodes); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
