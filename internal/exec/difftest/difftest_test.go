package difftest

import (
	"flag"
	"testing"
	"time"

	"adaptdb/internal/exec"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// -long switches the harness from the seeded quick mode CI runs on
// every push to a time-bounded random soak:
//
//	go test ./internal/exec/difftest -long -soak 60s
var (
	long     = flag.Bool("long", false, "run the randomized differential soak")
	soakTime = flag.Duration("soak", 30*time.Second, "soak duration with -long")
)

// TestQuickCentralized replays a fixed band of seeds through every
// centralized join path. The band is wide enough that generation
// covers every distribution, shape, budget class, and estimate-error
// class (asserted below, so a generator regression cannot silently
// shrink coverage).
func TestQuickCentralized(t *testing.T) {
	seenDist := map[string]bool{}
	seenShape := map[string]bool{}
	budgeted, wrongEst := 0, 0
	for seed := int64(1); seed <= 80; seed++ {
		c := Generate(seed)
		seenDist[c.Dist] = true
		seenShape[c.Shape] = true
		if c.Budget > 0 {
			budgeted++
		}
		if c.EstFactor != 0 && c.EstFactor != 1 {
			wrongEst++
		}
		if err := RunCentralized(c); err != nil {
			t.Error(err)
		}
	}
	for _, d := range Dists {
		if !seenDist[d] {
			t.Errorf("quick band never generated distribution %q", d)
		}
	}
	for _, s := range Shapes {
		if !seenShape[s] {
			t.Errorf("quick band never generated shape %q", s)
		}
	}
	if budgeted < 10 {
		t.Errorf("quick band generated only %d budgeted cases", budgeted)
	}
	if wrongEst < 10 {
		t.Errorf("quick band generated only %d wrong-estimate cases", wrongEst)
	}
}

// TestQuickDistributed replays a narrower seed band through the full
// planner-compiled distributed path at 1, 4, and 8 node executors.
func TestQuickDistributed(t *testing.T) {
	for _, nodes := range []int{1, 4, 8} {
		nodes := nodes
		t.Run(map[int]string{1: "nodes=1", 4: "nodes=4", 8: "nodes=8"}[nodes], func(t *testing.T) {
			for seed := int64(100); seed <= 112; seed++ {
				if err := RunDistributed(Generate(seed), nodes); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestCraftedEdges pins the distributions the generator draws randomly
// as explicit, always-run cases: NULL-only keys, the all-duplicate
// cross product under a starved budget, empty sides, and single rows.
func TestCraftedEdges(t *testing.T) {
	intRow := func(k value.Value, tag int64) tuple.Tuple {
		return tuple.Tuple{k, value.NewInt(tag)}
	}
	nulls := make([]tuple.Tuple, 50)
	for i := range nulls {
		nulls[i] = intRow(value.Value{}, int64(i))
	}
	dups := make([]tuple.Tuple, 80)
	for i := range dups {
		dups[i] = intRow(value.NewInt(3), int64(i))
	}
	mixed := append(append([]tuple.Tuple{}, nulls[:10]...), dups[:20]...)

	base := Generate(1) // donate its schemas' shape: 2-col int-key case
	for _, tc := range []struct {
		name        string
		left, right []tuple.Tuple
		budget      int64
	}{
		{"all-null-keys", nulls, nulls, 0},
		{"all-null-keys-budgeted", nulls, nulls, 512},
		{"all-duplicate-starved", dups, dups, 256},
		{"null-and-dup-mix", mixed, mixed, 512},
		{"empty-left", nil, dups, 512},
		{"empty-right", dups, nil, 512},
		{"both-empty", nil, nil, 256},
		{"single-rows", dups[:1], dups[:1], 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			c.Left, c.Right = tc.left, tc.right
			c.LCol, c.RCol = 0, 0
			c.Budget = tc.budget
			if err := RunCentralized(c); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestNullKeysProduceNothing is the directed NULL semantics check: a
// NULL-keyed row must not join even with itself, on any path, budgeted
// or not.
func TestNullKeysProduceNothing(t *testing.T) {
	rows := []tuple.Tuple{
		{value.Value{}, value.NewInt(1)},
		{value.Value{}, value.NewInt(2)},
	}
	if got := exec.NestedLoopJoin(rows, rows, 0, 0); len(got) != 0 {
		t.Fatalf("oracle joined NULL keys: %d rows", len(got))
	}
	c := Generate(1)
	c.Left, c.Right, c.LCol, c.RCol, c.Budget = rows, rows, 0, 0, 64
	if err := RunCentralized(c); err != nil {
		t.Error(err)
	}
}

// TestSoak is the -long mode: random seeds stream through both
// harness paths until the clock runs out. Distributed rounds cycle the
// node counts; every failure names its seed for replay.
func TestSoak(t *testing.T) {
	if !*long {
		t.Skip("quick mode; run with -long for the randomized soak")
	}
	deadline := time.Now().Add(*soakTime)
	nodes := []int{1, 4, 8}
	n := 0
	for seed := int64(10_000); time.Now().Before(deadline); seed++ {
		c := Generate(seed)
		if err := RunCentralized(c); err != nil {
			t.Fatal(err)
		}
		if seed%5 == 0 {
			if err := RunDistributed(c, nodes[int(seed/5)%len(nodes)]); err != nil {
				t.Fatal(err)
			}
		}
		if seed%7 == 0 {
			if err := RunSpecCase(GenSpecCase(seed), nodes[int(seed/7)%len(nodes)]); err != nil {
				t.Fatal(err)
			}
		}
		n++
	}
	t.Logf("soak: %d cases clean", n)
}

// FuzzJoinDifferential lets go fuzz drive the seed space; the corpus
// seeds are the quick band's first few values, so plain `go test` also
// replays them.
func FuzzJoinDifferential(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := RunCentralized(Generate(seed)); err != nil {
			t.Error(err)
		}
	})
}
