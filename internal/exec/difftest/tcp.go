// The TCP leg of the spec differential: the same generated query
// graphs RunSpecCase proves over the in-process surfaces, executed
// over a real multi-process-style cluster (coordinator session + TCP
// worker endpoints), and diffed bit-for-bit against both the
// centralized reference evaluation and a simulated-NodeSet session.
// Spec cases are pure functions of their seed, which is exactly what
// the cluster's deterministic-replica contract needs: the dataset
// builder re-generates and re-loads the case in every worker process
// from (seed, nodes) alone.
package difftest

import (
	"encoding/json"
	"fmt"
	"time"

	"adaptdb/internal/dfs"
	adbnet "adaptdb/internal/net"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/query"
	"adaptdb/internal/session"
)

// SpecDatasetName is the registered builder for GenSpecCase replicas.
const SpecDatasetName = "difftest-spec"

// SpecDatasetParams serializes a spec-case replica recipe.
type SpecDatasetParams struct {
	Seed  int64
	Nodes int
}

// RegisterSpecDataset installs the spec-case dataset builder; test
// mains must call it before adbnet.MaybeWorker so re-exec'd worker
// processes can rebuild their replicas.
func RegisterSpecDataset() {
	adbnet.RegisterDataset(SpecDatasetName, func(raw json.RawMessage) (*dfs.Store, query.Catalog, error) {
		var p SpecDatasetParams
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, nil, fmt.Errorf("difftest: decode spec params: %w", err)
		}
		return loadSpecTables(GenSpecCase(p.Seed), p.Nodes)
	})
}

// RunSpecCaseTCP runs one case's declarative query through a session
// dispatching to TCP workers and diffs the rows against the reference
// evaluation and against a simulated-NodeSet session over an identical
// store. dataset names the builder the workers rebuild the case from —
// SpecDatasetName for generated cases, or any custom registration that
// reproduces c exactly (the coordinator replica here is always built
// from c itself).
func RunSpecCaseTCP(c SpecCase, dataset string, nodes, workers int) error {
	cl, err := adbnet.Start(adbnet.Options{
		Workers:   workers,
		Fragments: nodes,
		Dataset:   dataset,
		Params:    SpecDatasetParams{Seed: c.Seed, Nodes: nodes},
		Exec: adbnet.ExecConfig{
			MemBudget: c.Budget,
			Optimizer: adbnet.OptimizerConfig{Mode: int(optimizer.ModeStatic), WindowSize: 4, Seed: c.Seed},
		},
		InProcess: true,
		KeepAlive: 500 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("%s: start cluster: %w", c, err)
	}
	defer cl.Close()

	store, cat, err := loadSpecTables(c, nodes)
	if err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}
	bound, err := c.Spec.Bind(cat)
	if err != nil {
		return fmt.Errorf("%s: bind: %w", c, err)
	}
	want := RefSpec(c, bound)

	s := session.New(store, session.Config{
		Optimizer: optimizer.Config{Mode: optimizer.ModeStatic, WindowSize: 4, Seed: c.Seed},
		MemBudget: c.Budget,
		Net:       cl,
	})
	q, err := session.FromSpec(cat, c.Spec)
	if err != nil {
		return fmt.Errorf("%s: FromSpec: %w", c, err)
	}
	res, err := s.Execute(q)
	if err != nil {
		return fmt.Errorf("%s: tcp[nodes=%d,workers=%d]: %w", c, nodes, workers, err)
	}
	if err := diffRows(fmt.Sprintf("tcp[nodes=%d,workers=%d] vs reference", nodes, workers), res.Rows, want); err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}

	// And against the simulated NodeSet over a second identical store:
	// the two fabrics must be interchangeable row for row.
	store2, cat2, err := loadSpecTables(c, nodes)
	if err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}
	sim := session.New(store2, session.Config{
		Optimizer:   optimizer.Config{Mode: optimizer.ModeStatic, WindowSize: 4, Seed: c.Seed},
		MemBudget:   c.Budget,
		Distributed: nodes > 1,
	})
	q2, err := session.FromSpec(cat2, c.Spec)
	if err != nil {
		return fmt.Errorf("%s: FromSpec: %w", c, err)
	}
	sres, err := sim.Execute(q2)
	if err != nil {
		return fmt.Errorf("%s: sim[nodes=%d]: %w", c, nodes, err)
	}
	if err := diffRows(fmt.Sprintf("tcp[nodes=%d,workers=%d] vs sim", nodes, workers), res.Rows, sres.Rows); err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}
	return nil
}
