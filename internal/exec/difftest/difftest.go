// Package difftest is the oracle/fuzz differential harness for the
// join engine: every case generates a random pair of relations —
// random schemas, a key distribution drawn from the nasty end of the
// spectrum (NULL-heavy, heavily skewed, all-duplicate, non-finite
// floats), and a memory budget that may starve the build side — and
// asserts that every production join path produces exactly the
// NestedLoopJoin oracle's multiset:
//
//   - the single-threaded HashJoinRows,
//   - the parallel radix JoinOp, both build orientations, budgeted and
//     not (the budgeted runs exercise the spilling hybrid hash join of
//     exec/spill.go, including recursive re-partitioning and the
//     chunked all-duplicate fallback),
//   - the full planner-compiled distributed path at 1/4/8 node
//     executors, with exchanges, per-node budget shares, and whatever
//     join strategy the cost model picks.
//
// A case is a pure function of its seed, so every failure is
// replayable: report the seed, rerun Generate(seed).
package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Dists enumerates the key distributions cases draw from. zipfdisjoint
// targets the Bloom skip path: the left side's keys pile Zipf-style
// onto a few hot values while the right side draws mostly (80%) from a
// disjoint key range — nearly every probe row of a spilled partition is
// skippable, and the 20% overlap proves skipping never loses a real
// match.
// dupstr forces a string key drawn from three hot values: long
// duplicate chains through the string-specialized columnar probe loop
// and the intern cache, with the chunked fallback in reach under tight
// budgets.
// rdfskew models an RDF-style entity workload: keys are entity ids
// drawn from a true Zipf law (s≈1.3), so a handful of hub entities
// carry most of the triples — hotter than "skewed"'s cubed-uniform
// pile-up, with a long thin tail of rare ids on both sides.
var Dists = []string{"uniform", "skewed", "dup", "nullheavy", "sparse", "weird", "zipfdisjoint", "dupstr", "rdfskew"}

// Shapes enumerates the relation-size shapes cases draw from. The heavy
// shapes put three orders of magnitude between the sides, so budgeted
// runs hit the second pass with one side's run files far smaller than
// the other's — the role-reversal trigger.
var Shapes = []string{"balanced", "leftheavy", "rightheavy"}

// Case is one generated differential scenario.
type Case struct {
	Seed        int64
	Dist        string
	Shape       string
	Left, Right []tuple.Tuple
	LSch, RSch  *schema.Schema
	LCol, RCol  int
	// Budget is the executor memory budget in bytes (0 = unlimited).
	Budget int64
	// EstFactor injects build-size estimate error: the joins receive
	// BuildRowsEst = |build| × EstFactor (planner paths scale through
	// Runner.EstScale). 0 means no estimate at all; the adversarial
	// values are 0.1 and 10 — wrong by 10x in either direction, which
	// must bend only the fan-out choice, never the result.
	EstFactor float64
	// CoPart loads the distributed tables with a join tree on the key
	// (the hyper-join-eligible layout) instead of random partitioning.
	CoPart bool
}

func (c Case) String() string {
	return fmt.Sprintf("seed=%d dist=%s shape=%s |L|=%d |R|=%d budget=%d est=%g copart=%v",
		c.Seed, c.Dist, c.Shape, len(c.Left), len(c.Right), c.Budget, c.EstFactor, c.CoPart)
}

// kindName renders values for schema column kinds.
var kinds = []value.Kind{value.Int, value.Float, value.String, value.Date, value.Bool}

// Generate builds the case for a seed — deterministic, so failures
// replay from the reported seed alone.
func Generate(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	c := Case{Seed: seed, Dist: Dists[rng.Intn(len(Dists))]}
	keyKind := kinds[rng.Intn(4)] // Int, Float, String, Date
	if c.Dist == "weird" {
		keyKind = value.Float // non-finite floats need a float key
	}
	if c.Dist == "dupstr" {
		keyKind = value.String // hot duplicate chains need a string key
	}
	c.LSch, c.LCol = genSchema(rng, "l", keyKind)
	c.RSch, c.RCol = genSchema(rng, "r", keyKind)
	var nL, nR int
	switch rng.Intn(4) {
	case 0:
		c.Shape = "leftheavy"
		nL, nR = 600+rng.Intn(900), 1+rng.Intn(10)
	case 1:
		c.Shape = "rightheavy"
		nL, nR = 1+rng.Intn(10), 600+rng.Intn(900)
	default:
		c.Shape = "balanced"
		nL, nR = genCount(rng), genCount(rng)
	}
	keyRange := int64(1 + (nL+nR)/3) // dense enough that joins hit
	rDist := c.Dist
	if c.Dist == "zipfdisjoint" {
		rDist = "zipfdisjointR" // probe side draws from the disjoint range
	}
	c.Left = genRows(rng, c.LSch, c.LCol, nL, c.Dist, keyKind, keyRange)
	c.Right = genRows(rng, c.RSch, c.RCol, nR, rDist, keyKind, keyRange)
	switch rng.Intn(3) {
	case 0: // unlimited
	case 1:
		c.Budget = int64(512 + rng.Intn(4096)) // starved: everything spills
	case 2:
		if b := rowsMemBytes(c.Left) / int64(2+rng.Intn(7)); b > 0 {
			c.Budget = b // a fraction of the build side
		}
	}
	switch rng.Intn(4) {
	case 0:
		c.EstFactor = 0.1 // 10x under: fan-out too small, spill depth grows
	case 1:
		c.EstFactor = 10 // 10x over: fan-out too large, partitions fragment
	}
	c.CoPart = rng.Intn(2) == 0
	return c
}

// genCount skews small but includes empty and mid-size relations.
func genCount(rng *rand.Rand) int {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1, 2:
		return rng.Intn(8)
	default:
		return 16 + rng.Intn(500)
	}
}

// genSchema builds a 1–4 column schema whose key column (returned
// index) has the given kind.
func genSchema(rng *rand.Rand, prefix string, keyKind value.Kind) (*schema.Schema, int) {
	n := 1 + rng.Intn(4)
	keyCol := rng.Intn(n)
	cols := make([]schema.Column, n)
	for i := range cols {
		k := kinds[rng.Intn(len(kinds))]
		if i == keyCol {
			k = keyKind
		}
		cols[i] = schema.Column{Name: fmt.Sprintf("%s%d", prefix, i), Kind: k}
	}
	return schema.MustNew(cols...), keyCol
}

// genRows materializes n rows whose key column follows the
// distribution; non-key columns are uniform junk of their kind.
func genRows(rng *rand.Rand, sch *schema.Schema, keyCol, n int, dist string, keyKind value.Kind, keyRange int64) []tuple.Tuple {
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		r := make(tuple.Tuple, sch.NumCols())
		for c := range r {
			if c == keyCol {
				r[c] = genKey(rng, dist, keyKind, keyRange)
			} else {
				r[c] = genValue(rng, sch.Kind(c))
			}
		}
		rows[i] = r
	}
	return rows
}

func genKey(rng *rand.Rand, dist string, kind value.Kind, keyRange int64) value.Value {
	var k int64
	switch dist {
	case "uniform":
		k = rng.Int63n(keyRange)
	case "skewed":
		// Cubing the uniform variate piles most keys onto a few hot
		// values — the radix partitions skew hard, so budgeted runs
		// demote the hot partition and recurse.
		f := rng.Float64()
		k = int64(f * f * f * float64(keyRange))
	case "dup":
		k = 7 // every key identical: the chunked-fallback distribution
	case "nullheavy":
		if rng.Float64() < 0.6 {
			return value.Value{} // NULL: must never match anything
		}
		k = rng.Int63n(keyRange)
	case "sparse":
		k = rng.Int63() // almost no matches
	case "zipfdisjoint":
		// Steeper than "skewed": the fourth power piles most keys onto a
		// handful of hot values, so budgeted runs demote skewed
		// partitions whose Bloom filters then carry few distinct keys.
		f := rng.Float64()
		k = int64(f * f * f * f * float64(keyRange))
	case "zipfdisjointR":
		if rng.Float64() < 0.2 {
			// The overlap slice: matches that a broken Bloom skip would
			// lose (a false negative is a correctness bug, not a perf one).
			f := rng.Float64()
			k = int64(f * f * f * f * float64(keyRange))
		} else {
			k = keyRange + 1 + rng.Int63n(4*keyRange+1) // disjoint range
		}
	case "dupstr":
		// Three hot string keys: every build partition is a long duplicate
		// chain, and repeated headers exercise interned-string sharing.
		return value.NewString("hot-duplicate-key-" + strconv.Itoa(rng.Intn(3)))
	case "rdfskew":
		k = int64(rand.NewZipf(rng, 1.3, 1, uint64(keyRange)).Uint64())
	case "weird":
		switch rng.Intn(6) {
		case 0:
			return value.NewFloat(math.NaN()) // NaN == NaN under Compare
		case 1:
			return value.NewFloat(math.Inf(1))
		case 2:
			return value.NewFloat(math.Inf(-1))
		case 3:
			return value.NewFloat(math.Copysign(0, -1)) // -0.0 == +0.0
		case 4:
			return value.NewFloat(0)
		default:
			return value.NewFloat(float64(rng.Int63n(keyRange)))
		}
	}
	switch kind {
	case value.Int:
		return value.NewInt(k)
	case value.Float:
		return value.NewFloat(float64(k) / 2)
	case value.String:
		return value.NewString("k" + strconv.FormatInt(k, 10))
	case value.Date:
		return value.NewDate(k)
	default:
		return value.NewInt(k)
	}
}

func genValue(rng *rand.Rand, kind value.Kind) value.Value {
	if rng.Intn(12) == 0 {
		return value.Value{} // sprinkle NULLs through payload columns too
	}
	switch kind {
	case value.Int:
		return value.NewInt(rng.Int63n(10000))
	case value.Float:
		return value.NewFloat(rng.NormFloat64() * 100)
	case value.String:
		return value.NewString(randString(rng))
	case value.Date:
		return value.NewDate(rng.Int63n(40000))
	case value.Bool:
		return value.NewBool(rng.Intn(2) == 0)
	default:
		return value.Value{}
	}
}

func randString(rng *rand.Rand) string {
	n := rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func rowsMemBytes(rows []tuple.Tuple) int64 {
	n := int64(0)
	for _, r := range rows {
		n += int64(r.MemBytes())
	}
	return n
}

// diffRows compares two row multisets, returning a descriptive error on
// the first divergence.
func diffRows(label string, got, want []tuple.Tuple) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: %d rows, oracle %d", label, len(got), len(want))
	}
	exec.SortRows(got)
	exec.SortRows(want)
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return fmt.Errorf("%s: row %d arity %d, oracle %d", label, i, len(got[i]), len(want[i]))
		}
		for c := range got[i] {
			if value.Compare(got[i][c], want[i][c]) != 0 {
				return fmt.Errorf("%s: row %d col %d = %v, oracle %v", label, i, c, got[i][c], want[i][c])
			}
		}
	}
	return nil
}

// estRows applies the case's injected estimate error to a true build
// cardinality. 0 factor means "no estimate" (the joins fall back to
// their fixed default fan-out).
func (c Case) estRows(n int) int {
	if c.EstFactor <= 0 {
		return 0
	}
	v := int(float64(n) * c.EstFactor)
	if v < 1 {
		v = 1
	}
	return v
}

// RunCentralized checks every centralized join path of a case against
// the oracle: HashJoinRows, then JoinOp in both build orientations
// under the case's budget (nil budget = the untouched fast path;
// non-nil exercises the spilling hybrid hash join — role reversal,
// Bloom-filtered spill writes, and the estimate-steered fan-out). A
// budgeted case also runs once with Bloom filtering disabled, so a
// divergence between the filtered and classic spill paths cannot hide.
func RunCentralized(c Case) error {
	oracle := exec.NestedLoopJoin(c.Left, c.Right, c.LCol, c.RCol)

	if err := diffRows("HashJoinRows", exec.HashJoinRows(c.Left, c.Right, c.LCol, c.RCol), oracle); err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}

	type variant struct {
		name         string
		build, probe []tuple.Tuple
		bCol, pCol   int
		opts         exec.JoinOptions
	}
	variants := []variant{
		{"build-left", c.Left, c.Right, c.LCol, c.RCol,
			exec.JoinOptions{BuildRowsEst: c.estRows(len(c.Left))}},
		{"build-right", c.Right, c.Left, c.RCol, c.LCol,
			exec.JoinOptions{BuildIsRight: true, BuildRowsEst: c.estRows(len(c.Right))}},
	}
	if c.Budget > 0 {
		variants = append(variants, variant{"build-left-nobloom", c.Left, c.Right, c.LCol, c.RCol,
			exec.JoinOptions{DisableBloom: true, BuildRowsEst: c.estRows(len(c.Left))}})
	}
	for _, v := range variants {
		store := dfs.NewStore(2, 1, c.Seed)
		ex := exec.New(store, &cluster.Meter{})
		ex.Mem = exec.NewMemBudget(c.Budget)
		op := ex.JoinOp(exec.NewSource(v.build), v.bCol, exec.NewSource(v.probe), v.pCol, v.opts)
		got, err := exec.Collect(op)
		if err != nil {
			return fmt.Errorf("%s: JoinOp[%s]: %w", c, v.name, err)
		}
		if err := diffRows("JoinOp["+v.name+"]", got, oracle); err != nil {
			return fmt.Errorf("%s: %w", c, err)
		}
		if used := ex.Mem.Used(); used != 0 {
			return fmt.Errorf("%s: JoinOp[%s] leaked %d budget bytes", c, v.name, used)
		}
	}

	// Columnar-source runs: the same join fed columnar batches (the
	// vectorized probe's native input form), once on the columnar path
	// and once forced onto the row path — the inputs then cross the
	// row-view adapter seam — both against the same oracle.
	opts := exec.JoinOptions{BuildRowsEst: c.estRows(len(c.Left))}
	for _, rowPath := range []bool{false, true} {
		name := "colsource"
		if rowPath {
			name = "colsource-rowpath"
		}
		store := dfs.NewStore(2, 1, c.Seed)
		ex := exec.New(store, &cluster.Meter{})
		ex.Mem = exec.NewMemBudget(c.Budget)
		ex.DisableColumnar = rowPath
		op := ex.JoinOp(exec.NewColSource(c.Left), c.LCol, exec.NewColSource(c.Right), c.RCol, opts)
		got, err := exec.Collect(op)
		if err != nil {
			return fmt.Errorf("%s: JoinOp[%s]: %w", c, name, err)
		}
		if err := diffRows("JoinOp["+name+"]", got, oracle); err != nil {
			return fmt.Errorf("%s: %w", c, err)
		}
		if used := ex.Mem.Used(); used != 0 {
			return fmt.Errorf("%s: JoinOp[%s] leaked %d budget bytes", c, name, used)
		}
	}

	// Selection-vector run: both inputs pass a Where whose survivors
	// reach the join only through a sparse (possibly empty) selection
	// vector over the columnar batches. The oracle filters with the same
	// predicate, so NULL and non-finite comparison semantics cancel out.
	if pivot, ok := keyPivot(c.Left, c.LCol); ok {
		lPreds := []predicate.Predicate{predicate.NewCmp(c.LCol, predicate.LT, pivot)}
		rPreds := []predicate.Predicate{predicate.NewCmp(c.RCol, predicate.LT, pivot)}
		fOracle := exec.NestedLoopJoin(
			filterRows(c.Left, lPreds), filterRows(c.Right, rPreds), c.LCol, c.RCol)
		store := dfs.NewStore(2, 1, c.Seed)
		ex := exec.New(store, &cluster.Meter{})
		ex.Mem = exec.NewMemBudget(c.Budget)
		op := ex.JoinOp(
			exec.Where(exec.NewColSource(c.Left), lPreds), c.LCol,
			exec.Where(exec.NewColSource(c.Right), rPreds), c.RCol, opts)
		got, err := exec.Collect(op)
		if err != nil {
			return fmt.Errorf("%s: JoinOp[selfilter]: %w", c, err)
		}
		if err := diffRows("JoinOp[selfilter]", got, fOracle); err != nil {
			return fmt.Errorf("%s: %w", c, err)
		}
		if used := ex.Mem.Used(); used != 0 {
			return fmt.Errorf("%s: JoinOp[selfilter] leaked %d budget bytes", c, used)
		}
	}
	return nil
}

// keyPivot picks a deterministic filter literal from the left side's
// key column — the first non-NULL key at or past the midpoint — so
// Where-filtered runs keep a data-dependent, usually sparse subset.
func keyPivot(rows []tuple.Tuple, col int) (value.Value, bool) {
	for off := range rows {
		r := rows[(len(rows)/2+off)%len(rows)]
		if !r[col].IsNull() {
			return r[col], true
		}
	}
	return value.Value{}, false
}

// filterRows is the oracle-side mirror of exec.Where.
func filterRows(rows []tuple.Tuple, preds []predicate.Predicate) []tuple.Tuple {
	var out []tuple.Tuple
	for _, r := range rows {
		if predicate.MatchesAll(preds, r) {
			out = append(out, r)
		}
	}
	return out
}

// RunDistributed loads the case's relations as tables over an
// nodes-wide store and runs the full planner-compiled distributed DAG —
// per-node scans, exchanges, per-node budget shares, and whichever join
// strategy the cost model picks — against the oracle.
func RunDistributed(c Case, nodes int) error {
	oracle := exec.NestedLoopJoin(c.Left, c.Right, c.LCol, c.RCol)
	store := dfs.NewStore(nodes, 2, c.Seed)
	joinAttr := -1
	if c.CoPart {
		joinAttr = c.LCol
	}
	lt, err := core.Load(store, "dleft", c.LSch, c.Left, core.LoadOptions{
		RowsPerBlock: 64, Seed: c.Seed, JoinAttr: joinAttr,
	})
	if err != nil {
		return fmt.Errorf("%s: load left: %w", c, err)
	}
	rJoinAttr := -1
	if c.CoPart {
		rJoinAttr = c.RCol
	}
	rt, err := core.Load(store, "dright", c.RSch, c.Right, core.LoadOptions{
		RowsPerBlock: 64, Seed: c.Seed + 1, JoinAttr: rJoinAttr,
	})
	if err != nil {
		return fmt.Errorf("%s: load right: %w", c, err)
	}
	plan := &planner.Join{
		Left:  &planner.Scan{Table: lt},
		Right: &planner.Scan{Table: rt},
		LCol:  c.LCol, RCol: c.RCol,
	}
	// Both execution paths run the same compiled DAG: the columnar
	// default (vectorized scans, exchanges, and joins) and the forced
	// row path, each against the oracle — so a divergence between the
	// paths can never hide behind a shared wrong answer.
	for _, rowPath := range []bool{false, true} {
		label := fmt.Sprintf("distributed[nodes=%d]", nodes)
		if rowPath {
			label = fmt.Sprintf("distributed-rowpath[nodes=%d]", nodes)
		}
		ex := exec.New(store, &cluster.Meter{})
		ex.Mem = exec.NewMemBudget(c.Budget)
		ex.DisableColumnar = rowPath
		ex.EnableNodes(1)
		runner := planner.NewRunner(ex, cluster.Default())
		runner.EstScale = c.EstFactor // inject the case's estimate error into every compiled join
		got, _, err := runner.Run(plan)
		if err != nil {
			return fmt.Errorf("%s: %s: %w", c, label, err)
		}
		if err := diffRows(label, got, oracle); err != nil {
			return fmt.Errorf("%s: %w", c, err)
		}
		ex.Nodes().Flush()
	}
	return nil
}
