package difftest

import (
	"fmt"
	"math/rand"
	"testing"

	"adaptdb/internal/predicate"
	"adaptdb/internal/query"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// acceptanceCase is the pinned end-to-end grouped-aggregate scenario:
// three joined tables, a pushdown predicate, a group-by, and three
// aggregates — the shape the PR-9 acceptance matrix replays at every
// budget × node-count combination.
func acceptanceCase() SpecCase {
	rng := rand.New(rand.NewSource(9))
	mk := func(name string, ncols, n int, keyRange int64) SpecTable {
		cols := make([]schema.Column, ncols)
		for i := range cols {
			cols[i] = schema.Column{Name: fmt.Sprintf("%s_c%d", name, i), Kind: value.Int}
		}
		sch := schema.MustNew(cols...)
		rows := make([]tuple.Tuple, n)
		for i := range rows {
			r := make(tuple.Tuple, ncols)
			for c := range r {
				if rng.Intn(16) == 0 {
					r[c] = value.Value{}
				} else {
					r[c] = value.NewInt(rng.Int63n(keyRange))
				}
			}
			rows[i] = r
		}
		return SpecTable{Name: name, Sch: sch, Rows: rows}
	}
	fact := mk("fact", 3, 150, 60)
	dim1 := mk("dim1", 2, 50, 60)
	dim1.Preds = []predicate.Predicate{predicate.NewCmp(1, predicate.LT, value.NewInt(40))}
	dim2 := mk("dim2", 2, 10, 60)
	// Small group domain so every budget/node combination sees several
	// multi-row groups.
	for i, r := range dim2.Rows {
		r[1] = value.NewInt(int64(i % 4))
	}
	return SpecCase{
		Seed:   9,
		Tables: []SpecTable{fact, dim1, dim2},
		Spec: query.Spec{
			Label: "acceptance",
			Tables: []query.TableRef{
				{Name: "fact"},
				{Name: "dim1", Preds: []query.Pred{{Col: "dim1_c1", Op: predicate.LT, Val: value.NewInt(40)}}},
				{Name: "dim2"},
			},
			Joins: []query.JoinEdge{
				query.On(query.C("fact", "fact_c0"), query.C("dim1", "dim1_c0")),
				query.On(query.C("dim1", "dim1_c1"), query.C("dim2", "dim2_c0")),
			},
			GroupBy: []query.Col{query.C("dim2", "dim2_c1")},
			Aggs: []query.Agg{
				query.Count(),
				query.Sum(query.C("fact", "fact_c1")),
				query.Min(query.C("fact", "fact_c2")),
			},
		},
	}
}

// TestSpecAcceptance is the PR-9 acceptance matrix: the pinned 3-table
// grouped-aggregate query must come back bit-identical to the
// reference through both session and serve at {unlimited, build/8}
// memory budgets × {1, 4} node executors.
func TestSpecAcceptance(t *testing.T) {
	base := acceptanceCase()

	// Guard the scenario itself: the reference must see real data — a
	// non-trivial join with several multi-row groups — or the matrix
	// would vacuously pass on an empty result.
	_, cat, err := loadSpecTables(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.Spec.Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if ref := RefSpec(base, b); len(ref) < 2 {
		t.Fatalf("acceptance case degenerated: %d reference groups", len(ref))
	}

	for _, budget := range []int64{0, base.rowBytes() / 8} {
		for _, nodes := range []int{1, 4} {
			c := base
			c.Budget = budget
			t.Run(fmt.Sprintf("budget=%d/nodes=%d", budget, nodes), func(t *testing.T) {
				if err := RunSpecCase(c, nodes); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestSpecQuick replays a fixed band of generated spec cases on one
// node, asserting the band covers every structural feature the
// generator can emit (so a generator regression cannot silently shrink
// coverage).
func TestSpecQuick(t *testing.T) {
	var grouped, global, plain, budgeted, multiAttr, extraEdge int
	for seed := int64(1); seed <= 48; seed++ {
		c := GenSpecCase(seed)
		switch {
		case len(c.Spec.GroupBy) > 0:
			grouped++
		case len(c.Spec.Aggs) > 0:
			global++
		default:
			plain++
		}
		if c.Budget > 0 {
			budgeted++
		}
		for _, e := range c.Spec.Joins {
			if len(e.Left) > 1 {
				multiAttr++
			}
		}
		if len(c.Spec.Joins) > len(c.Tables)-1 {
			extraEdge++
		}
		if err := RunSpecCase(c, 1); err != nil {
			t.Error(err)
		}
	}
	for name, n := range map[string]int{
		"grouped": grouped, "global": global, "plain": plain,
		"budgeted": budgeted, "multi-attribute edge": multiAttr, "cyclic/extra edge": extraEdge,
	} {
		if n == 0 {
			t.Errorf("quick band never generated a %s case", name)
		}
	}
}

// TestSpecQuickDistributed replays a narrower band through 4 node
// executors — exchanges, per-node budget shares, and the greedy order
// lowered over a multi-node store.
func TestSpecQuickDistributed(t *testing.T) {
	for seed := int64(300); seed <= 310; seed++ {
		if err := RunSpecCase(GenSpecCase(seed), 4); err != nil {
			t.Error(err)
		}
	}
}

// FuzzSpecDifferential lets go fuzz drive the spec-case seed space.
func FuzzSpecDifferential(f *testing.F) {
	for seed := int64(1); seed <= 6; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := RunSpecCase(GenSpecCase(seed), 1); err != nil {
			t.Error(err)
		}
	})
}
