// The spec differential harness: the n-way analogue of the pair-join
// oracle. Every SpecCase generates a small random query graph — 3–4
// tables, prefix-connected join edges with occasional multi-attribute
// and cyclic extras, pushdown predicates, and an optional group-by
// aggregation — and asserts that the full declarative path (query.Spec
// → greedy ordering → lowered plan → operators, through both
// session.Session and serve.Service) reproduces the reference result:
// an n-way nested-loop join in declaration order followed by a direct
// reference aggregation. Aggregates are restricted to integer columns
// so the result is bit-identical across join orders, node counts, and
// memory budgets.
//
// A case is a pure function of its seed; failures replay from the seed.
package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/predicate"
	"adaptdb/internal/query"
	"adaptdb/internal/schema"
	"adaptdb/internal/serve"
	"adaptdb/internal/session"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// SpecTable is one generated relation of a spec case. Preds holds the
// positional form of the pushdown predicates; the spec carries the
// same predicates by column name.
type SpecTable struct {
	Name  string
	Sch   *schema.Schema
	Rows  []tuple.Tuple
	Preds []predicate.Predicate
}

// SpecCase is one generated n-way differential scenario.
type SpecCase struct {
	Seed   int64
	Tables []SpecTable
	Spec   query.Spec
	// Budget is the session/serve memory budget in bytes (0 =
	// unlimited); the acceptance matrix overrides it per run.
	Budget int64
}

func (c SpecCase) String() string {
	sizes := ""
	for i, t := range c.Tables {
		if i > 0 {
			sizes += "/"
		}
		sizes += fmt.Sprint(len(t.Rows))
	}
	return fmt.Sprintf("spec seed=%d tables=%d rows=%s edges=%d group=%d aggs=%d budget=%d",
		c.Seed, len(c.Tables), sizes, len(c.Spec.Joins), len(c.Spec.GroupBy), len(c.Spec.Aggs), c.Budget)
}

// GenSpecCase builds the spec case for a seed — deterministic, so
// failures replay from the reported seed alone.
func GenSpecCase(seed int64) SpecCase {
	rng := rand.New(rand.NewSource(seed))
	c := SpecCase{Seed: seed}
	nt := 3 + rng.Intn(2)

	// Tables: column 0 is always Int so every table can join; later
	// columns are mostly Int (join/group/agg candidates) with some
	// payload columns of arbitrary kind.
	intCols := make([][]int, nt)
	for t := 0; t < nt; t++ {
		name := fmt.Sprintf("t%d", t)
		ncols := 2 + rng.Intn(3)
		cols := make([]schema.Column, ncols)
		for i := range cols {
			k := value.Int
			if i > 0 && rng.Intn(4) == 0 {
				k = kinds[rng.Intn(len(kinds))]
			}
			if k == value.Int {
				intCols[t] = append(intCols[t], i)
			}
			cols[i] = schema.Column{Name: fmt.Sprintf("%s_c%d", name, i), Kind: k}
		}
		sch := schema.MustNew(cols...)
		n := 0
		switch rng.Intn(8) {
		case 0:
		case 1:
			n = rng.Intn(6)
		default:
			n = 12 + rng.Intn(110)
		}
		// Key range near the row count keeps expected join fan-out low
		// enough that a 4-way join stays small but still hits.
		keyRange := int64(8 + n)
		rows := make([]tuple.Tuple, n)
		for i := range rows {
			r := make(tuple.Tuple, ncols)
			for cix := range r {
				if sch.Kind(cix) == value.Int {
					if rng.Intn(12) == 0 {
						r[cix] = value.Value{} // NULL keys must never join
					} else {
						r[cix] = value.NewInt(rng.Int63n(keyRange))
					}
				} else {
					r[cix] = genValue(rng, sch.Kind(cix))
				}
			}
			rows[i] = r
		}
		// 0–2 pushdown predicates over Int columns, mirrored into the
		// spec by name below.
		var preds []predicate.Predicate
		for p := rng.Intn(3); p > 0 && len(intCols[t]) > 0; p-- {
			col := intCols[t][rng.Intn(len(intCols[t]))]
			op := []predicate.Op{predicate.LT, predicate.LE, predicate.GT, predicate.GE}[rng.Intn(4)]
			preds = append(preds, predicate.NewCmp(col, op, value.NewInt(rng.Int63n(keyRange))))
		}
		c.Tables = append(c.Tables, SpecTable{Name: name, Sch: sch, Rows: rows, Preds: preds})
		ref := query.TableRef{Name: name}
		for _, p := range preds {
			ref.Preds = append(ref.Preds, query.Pred{Col: sch.Name(p.Col), Op: p.Op, Val: p.Val, Vals: p.Vals})
		}
		c.Spec.Tables = append(c.Spec.Tables, ref)
	}
	c.Spec.Label = fmt.Sprintf("spec-%d", seed)

	pick := func(t int) query.Col {
		cix := intCols[t][rng.Intn(len(intCols[t]))]
		return query.C(c.Tables[t].Name, c.Tables[t].Sch.Name(cix))
	}
	// Prefix-connected declaration order: table t joins some earlier
	// table; 1 in 5 edges carries a second attribute pair.
	for t := 1; t < nt; t++ {
		p := rng.Intn(t)
		e := query.On(pick(p), pick(t))
		if rng.Intn(5) == 0 {
			e = e.And(pick(p), pick(t))
		}
		c.Spec.Joins = append(c.Spec.Joins, e)
	}
	// 1 in 4 cases closes a cycle (or doubles an edge) — the extra
	// edge's equalities apply as a residual filter after the join tree.
	if rng.Intn(4) == 0 {
		a := rng.Intn(nt)
		b := rng.Intn(nt - 1)
		if b >= a {
			b++
		}
		c.Spec.Joins = append(c.Spec.Joins, query.On(pick(a), pick(b)))
	}

	// Aggregation shape: 2 in 5 plain join, 1 in 5 global aggregate,
	// 2 in 5 grouped. Aggregates fold only Int columns so SUM and AVG
	// stay exact (bit-identical across execution orders).
	shape := rng.Intn(5)
	if shape >= 2 {
		for g := 1 + rng.Intn(2); g > 0 && shape >= 3; g-- {
			c.Spec.GroupBy = append(c.Spec.GroupBy, pick(rng.Intn(nt)))
		}
		c.Spec.Aggs = append(c.Spec.Aggs, query.Count())
		for a := 1 + rng.Intn(2); a > 0; a-- {
			col := pick(rng.Intn(nt))
			switch rng.Intn(4) {
			case 0:
				c.Spec.Aggs = append(c.Spec.Aggs, query.Sum(col))
			case 1:
				c.Spec.Aggs = append(c.Spec.Aggs, query.Min(col))
			case 2:
				c.Spec.Aggs = append(c.Spec.Aggs, query.Max(col))
			default:
				c.Spec.Aggs = append(c.Spec.Aggs, query.Avg(col))
			}
		}
	}

	switch rng.Intn(3) {
	case 1:
		c.Budget = int64(4096 + rng.Intn(16384)) // starved
	case 2:
		if b := c.rowBytes() / int64(4+rng.Intn(8)); b > 0 {
			c.Budget = b
		}
	}
	return c
}

func (c SpecCase) rowBytes() int64 {
	var n int64
	for _, t := range c.Tables {
		n += rowsMemBytes(t.Rows)
	}
	return n
}

// RefSpec computes the case's reference result: filter each table with
// its own predicates, nested-loop join the tables in declaration order
// applying every edge's full attribute list, then aggregate directly.
// The output column order is the declaration-order concatenation of
// the table schemas — the same layout CompileSpec restores.
func RefSpec(c SpecCase, b *query.Bound) []tuple.Tuple {
	offs := make([]int, len(c.Tables))
	for i := 1; i < len(c.Tables); i++ {
		offs[i] = offs[i-1] + c.Tables[i-1].Sch.NumCols()
	}
	cur := filterRows(c.Tables[0].Rows, c.Tables[0].Preds)
	for t := 1; t < len(c.Tables); t++ {
		// Equality pairs against the already-joined prefix: every edge
		// whose later endpoint is t lands here exactly once.
		var pairs [][2]int // (accumulated col, table-t col)
		for _, e := range b.Joins {
			for i := range e.LCols {
				l, r := e.LCols[i], e.RCols[i]
				if e.R == t && e.L < t {
					pairs = append(pairs, [2]int{offs[e.L] + l, r})
				} else if e.L == t && e.R < t {
					pairs = append(pairs, [2]int{offs[e.R] + r, l})
				}
			}
		}
		next := filterRows(c.Tables[t].Rows, c.Tables[t].Preds)
		var out []tuple.Tuple
		for _, lr := range cur {
			for _, rr := range next {
				ok := true
				for _, p := range pairs {
					if lr[p[0]].IsNull() || rr[p[1]].IsNull() || !value.Equal(lr[p[0]], rr[p[1]]) {
						ok = false
						break
					}
				}
				if ok {
					out = append(out, tuple.Concat(lr, rr))
				}
			}
		}
		cur = out
	}
	if !b.Grouped() {
		return cur
	}
	return refSpecAggregate(cur, b, offs)
}

// refSpecAggregate mirrors exec.GroupByOp's contract directly: groups
// follow value.Compare's total order (NULL with NULL, NaN with NaN),
// COUNT(*) counts rows, the fold aggregates skip NULLs, integer SUM
// accumulates exactly in int64, and the output is sorted by group key.
func refSpecAggregate(rows []tuple.Tuple, b *query.Bound, offs []int) []tuple.Tuple {
	gcols := make([]int, len(b.GroupBy))
	for i, g := range b.GroupBy {
		gcols[i] = offs[g.Table] + g.Col
	}
	keyOf := func(r tuple.Tuple) tuple.Tuple {
		k := make(tuple.Tuple, len(gcols))
		for i, c := range gcols {
			k[i] = r[c]
		}
		return k
	}
	sorted := append([]tuple.Tuple(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		ki, kj := keyOf(sorted[i]), keyOf(sorted[j])
		for c := range ki {
			if d := value.Compare(ki[c], kj[c]); d != 0 {
				return d < 0
			}
		}
		return false
	})

	type group struct {
		key  tuple.Tuple
		rows []tuple.Tuple
	}
	var groups []group
	for _, r := range sorted {
		k := keyOf(r)
		if len(groups) > 0 {
			last := groups[len(groups)-1].key
			same := true
			for c := range k {
				if value.Compare(k[c], last[c]) != 0 {
					same = false
					break
				}
			}
			if same {
				groups[len(groups)-1].rows = append(groups[len(groups)-1].rows, r)
				continue
			}
		}
		groups = append(groups, group{key: k, rows: []tuple.Tuple{r}})
	}
	if len(gcols) == 0 {
		// Global aggregate: exactly one output row even over no input.
		groups = []group{{key: tuple.Tuple{}, rows: sorted}}
	}

	out := make([]tuple.Tuple, 0, len(groups))
	for _, g := range groups {
		row := append(tuple.Tuple(nil), g.key...)
		for _, a := range b.Aggs {
			col := -1
			if a.Table >= 0 {
				col = offs[a.Table] + a.Col
			}
			row = append(row, refAggValue(a.Func, g.rows, col))
		}
		out = append(out, row)
	}
	return out
}

func refAggValue(fn query.AggFunc, rows []tuple.Tuple, col int) value.Value {
	if fn == query.AggCount && col < 0 {
		return value.NewInt(int64(len(rows)))
	}
	var (
		sum   int64
		count int64
		fold  value.Value
		seen  bool
	)
	for _, r := range rows {
		v := r[col]
		if v.IsNull() {
			continue
		}
		count++
		sum += v.I // agg columns are Int by construction
		if !seen {
			fold, seen = v, true
		} else if fn == query.AggMin {
			fold = value.Min(fold, v)
		} else if fn == query.AggMax {
			fold = value.Max(fold, v)
		}
	}
	switch fn {
	case query.AggCount:
		return value.NewInt(count)
	case query.AggSum:
		if count == 0 {
			return value.Value{}
		}
		return value.NewInt(sum)
	case query.AggAvg:
		if count == 0 {
			return value.Value{}
		}
		return value.NewFloat(float64(sum) / float64(count))
	default: // Min, Max
		if !seen {
			return value.Value{}
		}
		return fold
	}
}

// loadSpecTables loads the case's relations over a fresh nodes-wide
// store and returns the catalog for binding.
func loadSpecTables(c SpecCase, nodes int) (*dfs.Store, query.Catalog, error) {
	store := dfs.NewStore(nodes, 2, c.Seed)
	cat := query.Catalog{}
	for i, t := range c.Tables {
		ct, err := core.Load(store, t.Name, t.Sch, t.Rows, core.LoadOptions{
			RowsPerBlock: 64, Seed: c.Seed + int64(i), JoinAttr: -1,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("load %s: %w", t.Name, err)
		}
		cat[t.Name] = ct
	}
	return store, cat, nil
}

// RunSpecCase runs one case's declarative query end-to-end through both
// public surfaces — a session stream and a serve.Service request — over
// a nodes-wide store each, and diffs both results against RefSpec. Each
// surface gets a freshly loaded store so layouts cannot leak between
// them.
func RunSpecCase(c SpecCase, nodes int) error {
	store, cat, err := loadSpecTables(c, nodes)
	if err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}
	bound, err := c.Spec.Bind(cat)
	if err != nil {
		return fmt.Errorf("%s: bind: %w", c, err)
	}
	want := RefSpec(c, bound)

	s := session.New(store, session.Config{
		Optimizer:   optimizer.Config{Mode: optimizer.ModeStatic, WindowSize: 4, Seed: c.Seed},
		MemBudget:   c.Budget,
		Distributed: nodes > 1,
	})
	q, err := session.FromSpec(cat, c.Spec)
	if err != nil {
		return fmt.Errorf("%s: FromSpec: %w", c, err)
	}
	res, err := s.Execute(q)
	if err != nil {
		return fmt.Errorf("%s: session[nodes=%d]: %w", c, nodes, err)
	}
	if err := diffRows(fmt.Sprintf("session[nodes=%d]", nodes), res.Rows, want); err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}

	store2, cat2, err := loadSpecTables(c, nodes)
	if err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}
	// serve's MemBudget is the admission pool, not a per-operator
	// budget: a reservation above the pool is shed outright, and the
	// floor is minReserve. A budgeted case therefore gets a pool large
	// enough to always admit — the per-query budget is then sized to
	// the planner's footprint estimate, which is the serving-path
	// memory pressure this harness checks results under.
	servePool := c.Budget
	if servePool > 0 {
		servePool = 1 << 30
	}
	svc := serve.New(store2, serve.Config{
		Optimizer:   optimizer.Config{Mode: optimizer.ModeStatic, WindowSize: 4, Seed: c.Seed},
		MemBudget:   servePool,
		Distributed: nodes > 1,
	})
	q2, err := session.FromSpec(cat2, c.Spec)
	if err != nil {
		return fmt.Errorf("%s: FromSpec: %w", c, err)
	}
	sres, err := svc.Execute(context.Background(), "difftest", q2)
	if err != nil {
		return fmt.Errorf("%s: serve[nodes=%d]: %w", c, nodes, err)
	}
	if err := diffRows(fmt.Sprintf("serve[nodes=%d]", nodes), sres.Rows, want); err != nil {
		return fmt.Errorf("%s: %w", c, err)
	}
	return nil
}
