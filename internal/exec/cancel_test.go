// The cancellation/leak test wall: cancel a query at every phase a
// join can be in — mid-build, mid-probe, mid-spill, mid-second-pass,
// mid-scan, mid-exchange, mid-hyper-join — and assert the invariants
// the serving layer depends on: the error surfaces as ctx.Err(), the
// memory budget returns to zero, the spill directory is empty, and no
// operator goroutine outlives Close (VerifyNoLeaks).
package exec

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
)

// cancelSource wraps a Source and pulls the trigger after emitting
// `after` batches — cancellation lands while the consumer is mid-way
// through this input.
type cancelSource struct {
	*Source
	cancel  context.CancelFunc
	after   int
	emitted int
}

func (c *cancelSource) Next() (*Batch, error) {
	b, err := c.Source.Next()
	if b != nil {
		c.emitted++
		if c.emitted == c.after {
			c.cancel()
		}
	}
	return b, err
}

// cancelExec builds a budgeted executor bound to a fresh cancellable
// context, with a temp spill dir to assert emptiness on.
func cancelExec(t *testing.T, budget int64) (*Executor, context.Context, context.CancelFunc, string) {
	t.Helper()
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(budget)
	dir := t.TempDir()
	ex.SpillDir = dir
	ctx, cancel := context.WithCancel(context.Background())
	ex.BindContext(ctx)
	return ex, ctx, cancel, dir
}

// assertTornDown checks the post-cancel invariants: budget at zero,
// spill dir empty, no leaked goroutines.
func assertTornDown(t *testing.T, ex *Executor, spillDir string) {
	t.Helper()
	if used := ex.Mem.Used(); used != 0 {
		t.Errorf("budget leak: %d bytes charged after cancelled query closed", used)
	}
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatalf("spill dir: %v", err)
	}
	if len(ents) != 0 {
		t.Errorf("spill dir not empty after cancel: %d entries", len(ents))
	}
	VerifyNoLeaks(t)
}

// drainCancelling pulls op to exhaustion, cancelling after `after`
// output batches, and returns the terminal error.
func drainCancelling(op Operator, cancel context.CancelFunc, after int) error {
	if err := op.Open(); err != nil {
		return err
	}
	defer op.Close()
	n := 0
	for {
		b, err := op.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		n++
		if n == after {
			cancel()
		}
		b.Release()
	}
}

// TestCancelBeforeExecution: an already-cancelled context fails the
// join on Open/first-Next without running any work.
func TestCancelBeforeExecution(t *testing.T) {
	ex, _, cancel, dir := cancelExec(t, 1<<20)
	cancel()
	l, r := genOrders(500, 51), genLineitem(700, 52)
	_, err := Collect(ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled join error = %v, want context.Canceled", err)
	}
	assertTornDown(t, ex, dir)
}

// TestCancelMidBuild: the build-side source cancels after its second
// batch; the feeder/build workers observe ctx at the next batch
// boundary and the join winds down through the failure path.
func TestCancelMidBuild(t *testing.T) {
	ex, _, cancel, dir := cancelExec(t, 1<<30)
	l, r := genOrders(4000, 53), genLineitem(100, 54)
	build := &cancelSource{Source: NewSource(l), cancel: cancel, after: 2}
	_, err := Collect(ex.JoinOp(build, 0, NewSource(r), 0, JoinOptions{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-build cancel error = %v, want context.Canceled", err)
	}
	assertTornDown(t, ex, dir)
}

// TestCancelMidProbe: the build completes; the probe-side source
// cancels mid-stream and the probe workers stop at a batch boundary.
func TestCancelMidProbe(t *testing.T) {
	ex, _, cancel, dir := cancelExec(t, 1<<30)
	l, r := genOrders(500, 55), genLineitem(5000, 56)
	probe := &cancelSource{Source: NewSource(r), cancel: cancel, after: 2}
	_, err := Collect(ex.JoinOp(NewSource(l), 0, probe, 0, JoinOptions{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-probe cancel error = %v, want context.Canceled", err)
	}
	assertTornDown(t, ex, dir)
}

// TestCancelMidSpill: a starved budget forces every partition to
// demote to run files; cancellation lands while the build is actively
// spilling, and Close must still delete every run.
func TestCancelMidSpill(t *testing.T) {
	ex, _, cancel, dir := cancelExec(t, 512)
	l, r := genOrders(4000, 57), genLineitem(1000, 58)
	build := &cancelSource{Source: NewSource(l), cancel: cancel, after: 4}
	_, err := Collect(ex.JoinOp(build, 0, NewSource(r), 0, JoinOptions{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-spill cancel error = %v, want context.Canceled", err)
	}
	assertTornDown(t, ex, dir)
}

// TestCancelMidSecondPass: with the budget starved, the join's output
// comes from the disk-resident second pass. Cancelling after the first
// output batch hits the per-partition ctx checks in secondPass /
// joinSpilled with most of the work still pending.
func TestCancelMidSecondPass(t *testing.T) {
	ex, _, cancel, dir := cancelExec(t, 512)
	l, r := genOrders(3000, 59), genLineitem(4000, 60)
	op := ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{})
	err := drainCancelling(op, cancel, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-second-pass cancel error = %v, want context.Canceled", err)
	}
	assertTornDown(t, ex, dir)
}

// TestCancelMidScan: the scan workers check ctx per block; a
// pre-cancelled context errors the scan, and a mid-drain cancel stops
// a long scan.
func TestCancelMidScan(t *testing.T) {
	f := newFixture(t, true)
	ctx, cancel := context.WithCancel(context.Background())
	f.ex.BindContext(ctx)
	cancel()
	_, err := Collect(f.ex.TableScanOp(f.line, nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled scan error = %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	f.ex.BindContext(ctx)
	err = drainCancelling(f.ex.TableScanOp(f.line, nil), cancel, 1)
	// A short scan may have finished filling its output buffer before
	// the cancel landed; either a clean EOS or ctx.Err() is acceptable,
	// anything else is not.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-scan cancel error = %v, want nil or context.Canceled", err)
	}
	VerifyNoLeaks(t)
}

// TestCancelMidHyperJoin: the hyper-join's group workers check ctx per
// block pair; a pre-cancelled context surfaces through Next.
func TestCancelMidHyperJoin(t *testing.T) {
	f := newFixture(t, true)
	ctx, cancel := context.WithCancel(context.Background())
	f.ex.BindContext(ctx)
	cancel()
	op := f.ex.NewHyperJoinOp(
		f.ex.TableRefs(f.ord, nil), nil, 0,
		f.ex.TableRefs(f.line, nil), nil, 0, 4)
	_, err := Collect(op)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled hyper-join error = %v, want context.Canceled", err)
	}
	VerifyNoLeaks(t)
}

// TestCancelMidExchange: a distributed shuffle with a producer that
// cancels mid-stream — the exchange produce loops observe ctx, fail
// the exchange, and every consumer unblocks with an error rather than
// hanging.
func TestCancelMidExchange(t *testing.T) {
	const n = 4
	store := dfs.NewStore(n, 1, 1)
	ex := New(store, &cluster.Meter{})
	ns := ex.EnableNodes(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ex.BindContext(ctx)

	// 12000 rows / 4 parts = 3 batches per producer: cancelling after
	// part 0's first batch leaves every producer with work in flight.
	rows := genOrders(12000, 61)
	parts := make([]Operator, n)
	for i := range parts {
		lo, hi := i*len(rows)/n, (i+1)*len(rows)/n
		src := NewSource(rows[lo:hi])
		if i == 0 {
			parts[i] = &cancelSource{Source: src, cancel: cancel, after: 1}
		} else {
			parts[i] = src
		}
	}
	x := ns.Shuffle(parts, 0)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Collect(x.Output(i))
		}(i)
	}
	wg.Wait()
	sawCancel := false
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("output %d error = %v, want context.Canceled", i, err)
		}
		sawCancel = true
	}
	if !sawCancel {
		t.Fatal("no output observed the cancellation")
	}
	VerifyNoLeaks(t)
}

// TestCancelColumnarJoin: the vectorized build/probe loops carry the
// same ctx checks as the row path.
func TestCancelColumnarJoin(t *testing.T) {
	ex, _, cancel, dir := cancelExec(t, 1<<30)
	l, r := genOrders(4000, 62), genLineitem(3000, 63)
	build := &cancelSource{Source: NewSource(l), cancel: cancel, after: 2}
	// Columnar probe side; the build side converts on ingest.
	_, err := Collect(ex.JoinOp(build, 0, NewColSource(r), 0, JoinOptions{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("columnar mid-build cancel error = %v, want context.Canceled", err)
	}
	assertTornDown(t, ex, dir)

	ex2, _, cancel2, dir2 := cancelExec(t, 1<<30)
	probe := &colCancelSource{ColSource: NewColSource(r), cancel: cancel2, after: 2}
	_, err = Collect(ex2.JoinOp(NewColSource(l), 0, probe, 0, JoinOptions{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("columnar mid-probe cancel error = %v, want context.Canceled", err)
	}
	assertTornDown(t, ex2, dir2)
}

type colCancelSource struct {
	*ColSource
	cancel  context.CancelFunc
	after   int
	emitted int
}

func (c *colCancelSource) Next() (*Batch, error) {
	b, err := c.ColSource.Next()
	if b != nil {
		c.emitted++
		if c.emitted == c.after {
			c.cancel()
		}
	}
	return b, err
}

// TestCancelledJoinLeavesExecutorReusable: after a cancelled query,
// rebinding a live context runs the same shapes to completion — the
// serving pattern of a long-lived template surviving query failures.
func TestCancelledJoinLeavesExecutorReusable(t *testing.T) {
	ex, _, cancel, dir := cancelExec(t, 1<<20)
	l, r := genOrders(1500, 64), genLineitem(2000, 65)
	build := &cancelSource{Source: NewSource(l), cancel: cancel, after: 1}
	if _, err := Collect(ex.JoinOp(build, 0, NewSource(r), 0, JoinOptions{})); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled join error = %v", err)
	}

	ex.BindContext(context.Background())
	got, err := Collect(ex.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{}))
	if err != nil {
		t.Fatalf("join after cancel: %v", err)
	}
	rowsEqualSorted(t, got, NestedLoopJoin(l, r, 0, 0))
	assertTornDown(t, ex, dir)
}

// TestVerifyNoLeaksCatchesLeak: the checker itself must flag a stuck
// module goroutine (and not flag it once released).
func TestVerifyNoLeaksCatchesLeak(t *testing.T) {
	block := make(chan struct{})
	done := make(chan struct{})
	go func() { // a leaked "operator" goroutine with a module frame
		leakyHelper(block)
		close(done)
	}()
	rec := &recordingT{}
	VerifyNoLeaks(rec)
	if !rec.failed {
		t.Error("leak checker missed a blocked module goroutine")
	}
	close(block)
	<-done
	VerifyNoLeaks(t) // and it settles once the goroutine exits
}

//go:noinline
func leakyHelper(ch chan struct{}) { <-ch }

type recordingT struct{ failed bool }

func (r *recordingT) Helper()               {}
func (r *recordingT) Errorf(string, ...any) { r.failed = true }
