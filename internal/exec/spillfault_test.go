// Fault injection for the spill path. A faultFS counts every run-file
// write, read, and remove, and fails exactly the Nth one; the sweep
// drives N across the whole range a spilling join performs, asserting
// the three invariants every failure point must hold:
//
//   - injected write/read faults surface as errors (never silent row
//     loss); remove faults are absorbed (removal is best-effort),
//   - the MemBudget is fully released once the operator closes,
//   - no run files survive Close — the RemoveAll of last resort runs on
//     the real filesystem, so even a failing Remove leaks nothing.
package exec

import (
	"errors"
	"io"
	"os"
	"sync/atomic"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/tuple"
)

var errInjected = errors.New("exec: injected spill fault")

// faultFS wraps the production spillFS, failing the Nth write, read, or
// remove operation (1-based; 0 = never). Counters are global across
// files and workers, so a sweep over [1, total] hits build writes,
// probe writes, repartition writes, and second-pass reads alike.
type faultFS struct {
	writes, reads, removes          atomic.Int64
	failWrite, failRead, failRemove int64
}

func (f *faultFS) Create(name string) (io.WriteCloser, error) {
	w, err := osSpillFS{}.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultWriter{fs: f, w: w}, nil
}

func (f *faultFS) Open(name string) (io.ReadCloser, error) {
	r, err := osSpillFS{}.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultReader{fs: f, r: r}, nil
}

func (f *faultFS) Remove(name string) error {
	if n := f.removes.Add(1); f.failRemove != 0 && n == f.failRemove {
		return errInjected
	}
	return osSpillFS{}.Remove(name)
}

type faultWriter struct {
	fs *faultFS
	w  io.WriteCloser
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if n := w.fs.writes.Add(1); w.fs.failWrite != 0 && n == w.fs.failWrite {
		return 0, errInjected
	}
	return w.w.Write(p)
}

func (w *faultWriter) Close() error { return w.w.Close() }

type faultReader struct {
	fs *faultFS
	r  io.ReadCloser
}

func (r *faultReader) Read(p []byte) (int, error) {
	if n := r.fs.reads.Add(1); r.fs.failRead != 0 && n == r.fs.failRead {
		return 0, errInjected
	}
	return r.r.Read(p)
}

func (r *faultReader) Close() error { return r.r.Close() }

// runFaultJoin runs the fixed fault workload — sized so the join
// spills, re-partitions recursively, and second-passes — through the
// given faultFS and checks the always-invariants: budget drained to
// zero and spill dir left empty.
func runFaultJoin(t *testing.T, ff *faultFS) ([]tuple.Tuple, error) {
	t.Helper()
	build := keyedRows(1200, func(i int) int64 { return int64(i % 300) })
	probe := keyedRows(1200, func(i int) int64 { return int64(i % 300) })
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(rowsBytes(build) / 64)
	ex.SpillDir = t.TempDir()
	ex.fs = ff
	got, err := Collect(ex.JoinOp(NewSource(build), 0, NewSource(probe), 0, JoinOptions{}))
	if used := ex.Mem.Used(); used != 0 {
		t.Errorf("fault run left %d budget bytes charged", used)
	}
	ents, derr := os.ReadDir(ex.SpillDir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(ents) != 0 {
		t.Errorf("fault run left %d entries under the spill dir", len(ents))
	}
	return got, err
}

// sweepPoints spreads k fault indexes across [1, total], always
// including both endpoints.
func sweepPoints(total int64, k int) []int64 {
	if total <= 0 {
		return nil
	}
	pts := map[int64]bool{1: true, total: true}
	for i := 1; i < k; i++ {
		n := 1 + total*int64(i)/int64(k)
		if n >= 1 && n <= total {
			pts[n] = true
		}
	}
	out := make([]int64, 0, len(pts))
	for n := range pts {
		out = append(out, n)
	}
	return out
}

func TestSpillFaultSweep(t *testing.T) {
	// Calibration: a fault-free run measures the op counts the sweep
	// ranges over, and pins the oracle result.
	calib := &faultFS{}
	oracle, err := runFaultJoin(t, calib)
	if err != nil {
		t.Fatal(err)
	}
	totalW, totalR, totalM := calib.writes.Load(), calib.reads.Load(), calib.removes.Load()
	if totalW == 0 || totalR == 0 || totalM == 0 {
		t.Fatalf("calibration run did not spill (writes=%d reads=%d removes=%d)", totalW, totalR, totalM)
	}

	// check validates one faulted run. Concurrency moves the op layout
	// between runs, so a chosen index may not be reached; the invariant
	// is conditional — if the fault fired, the error must surface (for
	// writes and reads), and a clean run must produce the exact join.
	check := func(t *testing.T, got []tuple.Tuple, err error, fired, wantErr bool) {
		t.Helper()
		switch {
		case err != nil && !errors.Is(err, errInjected):
			t.Fatalf("unexpected error: %v", err)
		case err != nil && !(fired && wantErr):
			t.Fatalf("injected error surfaced without firing (fired=%v wantErr=%v)", fired, wantErr)
		case err == nil && fired && wantErr:
			t.Fatal("fault fired but the join reported success")
		case err == nil:
			rowsEqualSorted(t, got, oracle)
		}
	}

	t.Run("write", func(t *testing.T) {
		for _, n := range sweepPoints(totalW, 10) {
			ff := &faultFS{failWrite: n}
			got, err := runFaultJoin(t, ff)
			check(t, got, err, ff.writes.Load() >= n, true)
		}
	})
	t.Run("read", func(t *testing.T) {
		for _, n := range sweepPoints(totalR, 10) {
			ff := &faultFS{failRead: n}
			got, err := runFaultJoin(t, ff)
			check(t, got, err, ff.reads.Load() >= n, true)
		}
	})
	t.Run("remove", func(t *testing.T) {
		// Remove faults must be invisible: removal is best-effort and
		// Close's RemoveAll sweeps whatever a failed Remove left behind.
		for _, n := range sweepPoints(totalM, 6) {
			ff := &faultFS{failRemove: n}
			got, err := runFaultJoin(t, ff)
			if err != nil {
				t.Fatalf("remove fault at %d surfaced: %v", n, err)
			}
			rowsEqualSorted(t, got, oracle)
		}
	})
}
