// The transport seam of the distributed compiler. A Fabric is what the
// planner's per-node lowering (planner/distributed.go) compiles
// against: per-node executor views, placement-aware scan splitting, and
// the four exchange shapes plus the coordinator-side gather. Two
// implementations exist — the in-process simulated fabric (a NodeSet
// wrapped by simFabric, exchanges moving batches through channels) and
// the TCP fabric of internal/net (node processes moving length-prefixed
// frames over real sockets). The compiler cannot tell them apart; that
// is the point: one compile path, two physical networks.
package exec

import (
	"fmt"

	"adaptdb/internal/core"
	"adaptdb/internal/predicate"
)

// Exchanger is a built exchange: Output(i) is the operator node i's
// consuming fragment drains. Implementations decide how rows travel
// from the producing fragments to output i — in-memory channels
// (*Exchange) or multiplexed TCP streams (internal/net).
type Exchanger interface {
	Output(i int) Operator
}

// Fabric abstracts the execution substrate the distributed compiler
// lowers onto. N is the number of plan fragments (one per cluster
// node); At/ScanAt/SplitRefs expose per-node executor views and
// placement; the exchange constructors mirror NodeSet's. Gather merges
// per-node fragment streams into the single coordinator stream that
// roots every distributed plan (or feeds a broadcast/deal of an
// intermediate).
//
// A Fabric implementation may live in one process (the simulated
// fabric) or span many (the TCP fabric): in the latter case each
// process compiles the identical plan against its own Fabric view and
// instantiates only the fragments it hosts; Output(i) for a fragment
// hosted elsewhere returns an operator that must never be opened.
type Fabric interface {
	N() int
	At(i int) *Executor
	ScanAt(i int, refs []core.BlockRef, preds []predicate.Predicate) Operator
	SplitRefs(refs []core.BlockRef) [][]core.BlockRef
	Shuffle(parts []Operator, key int) Exchanger
	ShuffleGlobal(in Operator, key int) Exchanger
	Broadcast(in Operator) Exchanger
	Deal(in Operator) Exchanger
	Gather(parts []Operator) Operator
}

// SetFabric overrides the executor's execution fabric for the next
// compiles — the hook the TCP coordinator and workers use to install a
// per-query network fabric. Pass nil to fall back to the simulated
// NodeSet fabric (when EnableNodes was called) or centralized
// compilation.
func (e *Executor) SetFabric(f Fabric) { e.xfabric = f }

// ExecFabric resolves the fabric the planner should compile against:
// the installed override, else the simulated NodeSet fabric, else nil
// (centralized compilation).
func (e *Executor) ExecFabric() Fabric {
	if e.xfabric != nil {
		return e.xfabric
	}
	if e.nodes != nil {
		return simFabric{e.nodes}
	}
	return nil
}

// simFabric adapts a NodeSet to the Fabric interface: the in-process
// simulated network of channel-backed exchanges.
type simFabric struct{ ns *NodeSet }

func (f simFabric) N() int             { return f.ns.N() }
func (f simFabric) At(i int) *Executor { return f.ns.At(i) }

func (f simFabric) ScanAt(i int, refs []core.BlockRef, preds []predicate.Predicate) Operator {
	return f.ns.ScanAt(i, refs, preds)
}

func (f simFabric) SplitRefs(refs []core.BlockRef) [][]core.BlockRef {
	return f.ns.SplitRefs(refs)
}

func (f simFabric) Shuffle(parts []Operator, key int) Exchanger {
	return f.ns.Shuffle(parts, key)
}

func (f simFabric) ShuffleGlobal(in Operator, key int) Exchanger {
	return f.ns.ShuffleGlobal(in, key)
}

func (f simFabric) Broadcast(in Operator) Exchanger { return f.ns.Broadcast(in) }
func (f simFabric) Deal(in Operator) Exchanger      { return f.ns.Deal(in) }

func (f simFabric) Gather(parts []Operator) Operator { return Gather(parts...) }

// BatchWireBytes approximates a batch's serialized size with the same
// estimate the simulated exchanges meter (fixed header per value plus
// string payloads), so a TCP fabric's exchange counters price
// identically to the simulated fabric's for the same row flow.
func BatchWireBytes(b *Batch) int {
	if cb := b.Cols(); cb != nil {
		return colWireBytes(cb)
	}
	n := 0
	for _, r := range b.Rows() {
		n += rowWireBytes(r)
	}
	return n
}

// NotHere returns the placeholder operator a multi-process fabric hands
// out for fragments hosted in another process. Opening one is a plan
// wiring bug — a fragment was driven in a process that does not own it —
// and surfaces as an error rather than silently-empty results.
func NotHere(node int) Operator { return notHereOp{node: node} }

type notHereOp struct{ node int }

func (o notHereOp) Open() error {
	return fmt.Errorf("exec: fragment of node %d is not hosted in this process", o.node)
}
func (o notHereOp) Next() (*Batch, error) {
	return nil, fmt.Errorf("exec: fragment of node %d is not hosted in this process", o.node)
}
func (o notHereOp) Close() error { return nil }
