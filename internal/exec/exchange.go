// Exchange operators: the simulated network between node executors.
//
// An Exchange takes one plan-fragment stream per producing node and
// re-partitions its rows across the consuming nodes — by join-key hash
// (Shuffle) or by duplication (Broadcast). Rows delivered to the node
// that produced them are free; rows delivered anywhere else are charged
// to the producing node's meter as remote exchange rows with their
// approximate wire bytes (cluster.Meter.AddExchange). This is the
// accounting point that replaced the old per-call-site Meter.Add*
// charging inside the join: what the cost model prices is exactly what
// physically crossed between nodes.
//
// Batch row-ownership rules across an exchange: a batch never crosses
// the wire — only rows do. The producer packs rows into fresh batches,
// one pending batch per destination node; ownership of a packed batch
// passes to the destination node's consumer at channel handoff, and the
// consumer Releases it. Rows owned by the source batch (join outputs,
// which die at Release) are carved into the destination batch's own
// arena; view rows (scan outputs, backed by block storage) are
// referenced as-is — the simulated store outlives the query, as HDFS
// blocks outlive a task.
package exec

import (
	"sync"
	"sync/atomic"

	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Exchange moves rows between node executors. Build one with
// NodeSet.Shuffle, NodeSet.ShuffleGlobal, or NodeSet.Broadcast, then
// hand Output(i) to node i's consuming fragment. Opening any output
// starts the producers (one goroutine per input fragment, each owning
// its fragment's full Open/Next/Close lifecycle); every output must be
// opened and drained — or closed — for the exchange to finish.
type Exchange struct {
	ns     *NodeSet
	inputs []Operator
	// srcNode[i] is the node inputs[i] runs on, or -1 for a coordinator
	// stream (a gathered intermediate) whose deliveries are all remote.
	srcNode []int
	// key is the hash column for a shuffle exchange, -1 for broadcast,
	// -2 for round-robin deal.
	key  int
	deal uint64 // round-robin cursor for deal exchanges
	outs []*exchOut

	start   sync.Once
	started atomic.Bool // producers are (about to be) running
	wg      sync.WaitGroup
	closed  atomic.Int64 // outputs closed early; producers bail when all are
	errMu   sync.Mutex
	err     error // first producer error; published before channels close
}

// Shuffle builds a hash exchange over per-node fragments: parts[i] runs
// on node i, and each of its rows is routed to node Hash64(row[key]) %
// N — deterministic, value.Hash64-consistent routing, so equal keys
// always meet at the same node. NULL keys route to node 0; they can
// never match anything (joins skip them), so their destination only
// needs to be deterministic.
func (ns *NodeSet) Shuffle(parts []Operator, key int) *Exchange {
	x := &Exchange{ns: ns, key: key}
	for i, p := range parts {
		x.inputs = append(x.inputs, p)
		x.srcNode = append(x.srcNode, i)
	}
	x.build()
	return x
}

// ShuffleGlobal hash-partitions a single coordinator stream (a gathered
// intermediate) across the nodes. Every delivery is remote: the stream
// has no home node.
func (ns *NodeSet) ShuffleGlobal(in Operator, key int) *Exchange {
	x := &Exchange{ns: ns, key: key, inputs: []Operator{in}, srcNode: []int{-1}}
	x.build()
	return x
}

// Broadcast duplicates a single stream to every node exactly once — the
// one-side exchange of a semi-shuffle join: the small (build) side
// crosses the network N ways while the big side never moves.
func (ns *NodeSet) Broadcast(in Operator) *Exchange {
	x := &Exchange{ns: ns, key: -1, inputs: []Operator{in}, srcNode: []int{-1}}
	x.build()
	return x
}

// Deal spreads a coordinator stream across the nodes batch by batch,
// round-robin. No key is involved: any disjoint split is correct when
// the join's other side is broadcast to every node, and each row
// crosses the network exactly once — the cheap half of a
// broadcast-small/deal-big join on a large intermediate.
func (ns *NodeSet) Deal(in Operator) *Exchange {
	x := &Exchange{ns: ns, key: -2, inputs: []Operator{in}, srcNode: []int{-1}}
	x.build()
	return x
}

func (x *Exchange) build() {
	n := x.ns.N()
	for i := 0; i < n; i++ {
		x.outs = append(x.outs, &exchOut{
			x:      x,
			node:   i,
			mem:    x.ns.execs[i].Mem,
			ch:     make(chan *Batch, 4),
			closed: make(chan struct{}),
		})
	}
}

// batchMemBytes is the budget charge for a batch parked in an exchange
// channel. Only computed when the destination node carries a MemBudget.
func batchMemBytes(b *Batch) int64 {
	n := int64(0)
	if cb := b.Cols(); cb != nil {
		sel := cb.Sel()
		for k, ln := 0, cb.Len(); k < ln; k++ {
			i := k
			if sel != nil {
				i = int(sel[k])
			}
			n += int64(cb.MemBytesRow(i))
		}
		return n
	}
	for _, r := range b.rows {
		n += int64(r.MemBytes())
	}
	return n
}

// Output returns the operator node i's fragment consumes: the stream of
// batches whose rows were routed to node i.
func (x *Exchange) Output(i int) Operator { return x.outs[i] }

// run starts one producer per input fragment and a closer that seals
// the output channels once every producer is done.
func (x *Exchange) run() {
	x.started.Store(true)
	for i := range x.inputs {
		x.wg.Add(1)
		go x.produce(x.inputs[i], x.srcNode[i])
	}
	go func() {
		x.wg.Wait()
		for _, o := range x.outs {
			close(o.ch)
		}
	}()
}

// produce drains one input fragment, routing rows into per-destination
// pending batches and handing full ones to the destination's channel.
// The producer meters each handed-off batch into the source node's
// shard (or the parent meter for coordinator streams).
func (x *Exchange) produce(in Operator, src int) {
	defer x.wg.Done()
	n := x.ns.N()
	meter := x.ns.parent.Meter
	if src >= 0 {
		meter = x.ns.shards[src]
	}
	pend := make([]*Batch, n)
	var hv []uint64    // reused hash vector for columnar shuffle routing
	var dIdx [][]int32 // reused per-destination gather lists
	if err := in.Open(); err != nil {
		x.fail(err)
		return
	}
	for {
		if int(x.closed.Load()) == len(x.outs) {
			break // every consumer is gone; stop pulling
		}
		if cerr := x.ns.parent.ctxErr(); cerr != nil {
			x.fail(cerr)
			break
		}
		b, err := in.Next()
		if err != nil {
			x.fail(err)
			break
		}
		if b == nil {
			break
		}
		if cb := b.Cols(); cb != nil {
			// Columnar batches route without materializing: the key column
			// hashes vectorized (Hash64Column matches value.Hash64, so a
			// row reaches the same node on either path), rows split into
			// per-destination gather lists, and each list bulk-gathers
			// column-at-a-time into the destination's pending batch.
			ln := cb.Len()
			sel := cb.Sel()
			if dIdx == nil {
				dIdx = make([][]int32, n)
			}
			switch {
			case x.key == -1 || x.key == -2:
				// Broadcast and deal move whole row sets: one gather list
				// of every selected row, delivered to all nodes or one.
				list := dIdx[0][:0]
				for k := 0; k < ln; k++ {
					i := k
					if sel != nil {
						i = int(sel[k])
					}
					list = append(list, int32(i))
				}
				dIdx[0] = list
				if x.key == -2 {
					d := int(x.deal % uint64(n))
					x.deal++
					x.packColGather(pend, d, cb, list, src, meter)
				} else {
					for d := 0; d < n; d++ {
						x.packColGather(pend, d, cb, list, src, meter)
					}
				}
			default:
				hv = cb.Hash64Column(x.key, hv)
				for k := 0; k < ln; k++ {
					i := k
					if sel != nil {
						i = int(sel[k])
					}
					d := 0
					if !cb.IsNull(x.key, i) {
						d = int(hv[i] % uint64(n))
					}
					dIdx[d] = append(dIdx[d], int32(i))
				}
				for d := 0; d < n; d++ {
					if len(dIdx[d]) == 0 {
						continue
					}
					x.packColGather(pend, d, cb, dIdx[d], src, meter)
					dIdx[d] = dIdx[d][:0]
				}
			}
			b.Release()
			continue
		}
		owned := b.OwnsRows()
		switch {
		case x.key == -1:
			// Broadcast: every node gets every row exactly once.
			for _, r := range b.Rows() {
				for d := 0; d < n; d++ {
					x.pack(pend, d, r, owned, src, meter)
				}
			}
		case x.key == -2:
			// Deal: the whole batch goes to one node, batches rotate.
			d := int(x.deal % uint64(n))
			x.deal++
			for _, r := range b.Rows() {
				x.pack(pend, d, r, owned, src, meter)
			}
		default:
			for _, r := range b.Rows() {
				d := 0
				if k := r[x.key]; !k.IsNull() {
					d = int(k.Hash64() % uint64(n))
				}
				x.pack(pend, d, r, owned, src, meter)
			}
		}
		b.Release()
	}
	for d, pb := range pend {
		if pb != nil && pb.Len() > 0 {
			x.send(d, pb, src, meter)
		} else if pb != nil {
			pb.Release()
		}
	}
	if err := in.Close(); err != nil {
		x.fail(err)
	}
}

// pack appends a row to the pending batch of destination d, rotating
// full batches onto the destination channel.
func (x *Exchange) pack(pend []*Batch, d int, r tuple.Tuple, owned bool, src int, meter meterSink) {
	pb := pend[d]
	if pb != nil && pb.Cols() != nil {
		// Form flip: a row batch follows columnar packing (e.g. a spill
		// second pass behind gathered first-pass output). Seal the pending
		// columnar batch short rather than materializing it.
		x.send(d, pb, src, meter)
		pb = nil
	}
	if pb == nil {
		pb = NewBatch()
		pend[d] = pb
	}
	if owned {
		// The source batch's rows die at its Release; carve a copy into
		// the destination batch's own arena.
		pb.AppendConcat(r, nil)
	} else {
		pb.Append(r)
	}
	if pb.Full() {
		x.send(d, pb, src, meter)
		pend[d] = nil
	}
}

// packColGather appends the listed physical rows of a columnar source
// to destination d's pending columnar batch in capacity-sized chunks —
// one bulk gather per column per chunk, string payloads shared, never
// boxed. Safe across the source batch's Release: headers are copied
// and payload bytes are immutable.
func (x *Exchange) packColGather(pend []*Batch, d int, cb *tuple.Columns, idxs []int32, src int, meter meterSink) {
	for len(idxs) > 0 {
		pb := pend[d]
		if pb != nil && pb.Cols() == nil {
			x.send(d, pb, src, meter) // form flip, row → columnar
			pb = nil
		}
		if pb == nil {
			pb = NewColBatch(cb.NumCols())
			pend[d] = pb
		}
		room := DefaultBatchSize - pb.Cols().FullLen()
		if room <= 0 {
			x.send(d, pb, src, meter)
			pend[d] = nil
			continue
		}
		take := len(idxs)
		if take > room {
			take = room
		}
		pb.AppendColGather(cb, idxs[:take])
		idxs = idxs[take:]
		if pb.Full() {
			x.send(d, pb, src, meter)
			pend[d] = nil
		}
	}
}

// meterSink is the single method exchanges need from a meter; it keeps
// produce/pack testable and the accounting point explicit. The (src,
// dst) link identity feeds the per-link accounting of cluster/links.go
// (cluster.Meter satisfies this via AddExchangeAt).
type meterSink interface {
	AddExchangeAt(src, dst int, rows, bytes int, remote bool)
}

// send hands a packed batch to destination d's consumer, metering the
// movement: remote when the producing node is not the destination (or
// when the stream has no home node). A one-node cluster has no network
// at all, so nothing it moves is ever remote.
func (x *Exchange) send(d int, b *Batch, src int, meter meterSink) {
	remote := src != d && x.ns.N() > 1
	bytes := 0
	if remote {
		if cb := b.Cols(); cb != nil {
			bytes = colWireBytes(cb)
		} else {
			for _, r := range b.Rows() {
				bytes += rowWireBytes(r)
			}
		}
	}
	meter.AddExchangeAt(src, d, b.Len(), bytes, remote)
	o := x.outs[d]
	if o.mem != nil {
		// In-flight exchange batches charge the destination node's
		// budget (advisory — the bounded channels are the backpressure);
		// the consumer releases the charge as it takes delivery.
		o.mem.Charge(batchMemBytes(b))
	}
	select {
	case o.ch <- b:
	case <-o.closed:
		o.releaseMem(b)
		b.Release() // consumer gone; its share of the stream is dropped
	}
}

func (x *Exchange) fail(err error) {
	x.errMu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.errMu.Unlock()
}

func (x *Exchange) firstErr() error {
	x.errMu.Lock()
	defer x.errMu.Unlock()
	return x.err
}

// rowWireBytes approximates a row's serialized size: the fixed value
// header plus string payloads — cheap to compute per row, stable across
// runs, and close enough for a simulated network's byte counters.
func rowWireBytes(r tuple.Tuple) int {
	n := 0
	for _, v := range r {
		n += 16
		if v.K == value.String {
			n += len(v.S)
		}
	}
	return n
}

// colWireBytes is rowWireBytes over a columnar batch: the same fixed
// header per cell plus string payload lengths, summed column-at-a-time
// (null cells hold zero-length headers, matching the row accounting).
func colWireBytes(c *tuple.Columns) int {
	ln := c.Len()
	ncols := c.NumCols()
	total := ln * 16 * ncols
	sel := c.Sel()
	for ci := 0; ci < ncols; ci++ {
		v := c.Col(ci)
		switch {
		case v.Boxed() != nil:
			bx := v.Boxed()
			for k := 0; k < ln; k++ {
				i := k
				if sel != nil {
					i = int(sel[k])
				}
				if bx[i].K == value.String {
					total += len(bx[i].S)
				}
			}
		case v.Kind() == value.String:
			strs := v.Strs()
			for k := 0; k < ln; k++ {
				i := k
				if sel != nil {
					i = int(sel[k])
				}
				total += len(strs[i])
			}
		}
	}
	return total
}

// exchOut is one destination node's view of an exchange.
type exchOut struct {
	x      *Exchange
	node   int
	mem    *MemBudget // destination node's budget, nil when unlimited
	ch     chan *Batch
	closed chan struct{}
	once   sync.Once
}

// releaseMem returns a delivered (or dropped) batch's charge to the
// destination node's budget.
func (o *exchOut) releaseMem(b *Batch) {
	if o.mem != nil {
		o.mem.Release(batchMemBytes(b))
	}
}

func (o *exchOut) Open() error {
	o.x.start.Do(o.x.run)
	return nil
}

func (o *exchOut) Next() (*Batch, error) {
	b, ok := <-o.ch
	if !ok {
		// Channels close only after every producer exits, so the first
		// error (if any) is published by now.
		return nil, o.x.firstErr()
	}
	o.releaseMem(b)
	return b, nil
}

func (o *exchOut) Close() error {
	o.once.Do(func() {
		close(o.closed)
		o.x.closed.Add(1)
		if !o.x.started.Load() {
			// The exchange never started (e.g. a join's build side
			// errored before its probe output was opened): nothing will
			// ever close ch, so a blocking drain would hang forever.
			// Producers that race past the started check observe the
			// closed channel in send() and release batches themselves;
			// at worst a few buffered batches fall to the GC.
			for {
				select {
				case b := <-o.ch:
					o.releaseMem(b)
					b.Release()
				default:
					return
				}
			}
		}
		// Drain so no producer stays blocked on this destination; the
		// channel closes once every producer exits (all outputs are
		// eventually drained or closed during teardown).
		for b := range o.ch {
			o.releaseMem(b)
			b.Release()
		}
	})
	return nil
}
