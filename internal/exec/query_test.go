package exec

import (
	"context"
	"errors"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
)

// TestForQueryIsolatesPerQueryState: the derived view shares the
// template's store and flags but owns its meter, budget, spill dir and
// context — two views never see each other's accounting.
func TestForQueryIsolatesPerQueryState(t *testing.T) {
	store := dfs.NewStore(2, 1, 1)
	base := New(store, &cluster.Meter{})
	base.Workers = 3
	base.NoPrune = true
	base.RoundRobin = true
	base.SpillDir = "/base/spill"
	base.Mem = NewMemBudget(1 << 30)

	m := &cluster.Meter{}
	mem := NewMemBudget(1 << 20)
	q := base.ForQuery(QueryCtx{Meter: m, Mem: mem, SpillDir: "/q/spill", Workers: 2})
	if q.Meter != m || q.Mem != mem || q.SpillDir != "/q/spill" || q.Workers != 2 {
		t.Fatalf("view didn't take per-query state: %+v", q)
	}
	if q.Store != base.Store || !q.NoPrune || !q.RoundRobin {
		t.Fatal("view didn't share template store/flags")
	}
	// The template is untouched.
	if base.Mem == mem || base.SpillDir != "/base/spill" || base.Workers != 3 {
		t.Fatal("ForQuery mutated the template")
	}

	// Executing through the view meters the view's meter only.
	l, r := genOrders(200, 41), genLineitem(300, 42)
	if _, err := Collect(q.JoinOp(NewSource(l), 0, NewSource(r), 0, JoinOptions{})); err != nil {
		t.Fatal(err)
	}
	if c := m.Snapshot(); c.ResultRows == 0 {
		t.Fatal("query meter saw no result rows")
	}
	if c := base.Meter.Snapshot(); c != (cluster.Counters{}) {
		t.Fatalf("template meter leaked query accounting: %+v", c)
	}
}

// TestForQueryDefaults: nil meter allocates a private one; zero
// Workers/SpillDir inherit the template's.
func TestForQueryDefaults(t *testing.T) {
	store := dfs.NewStore(2, 1, 1)
	base := New(store, &cluster.Meter{})
	base.Workers = 5
	base.SpillDir = "/base/spill"
	q := base.ForQuery(QueryCtx{})
	if q.Meter == nil || q.Meter == base.Meter {
		t.Fatal("nil QueryCtx.Meter must allocate a private meter")
	}
	if q.Workers != 5 || q.SpillDir != "/base/spill" {
		t.Fatalf("defaults not inherited: workers=%d spill=%q", q.Workers, q.SpillDir)
	}
	if q.Mem != nil {
		t.Fatal("nil QueryCtx.Mem must stay unlimited")
	}
}

// TestForQueryDistributed: the view gets its own NodeSet; the template
// stays centralized, and two views never share a fabric.
func TestForQueryDistributed(t *testing.T) {
	store := dfs.NewStore(4, 2, 1)
	base := New(store, &cluster.Meter{})
	a := base.ForQuery(QueryCtx{Distributed: true, WorkersPerNode: 1})
	b := base.ForQuery(QueryCtx{Distributed: true, WorkersPerNode: 1})
	if a.Nodes() == nil || b.Nodes() == nil {
		t.Fatal("distributed views must carry a NodeSet")
	}
	if a.Nodes() == b.Nodes() {
		t.Fatal("views share a NodeSet")
	}
	if base.Nodes() != nil {
		t.Fatal("ForQuery attached a fabric to the template")
	}
	if a.Nodes().N() != 4 {
		t.Fatalf("fabric size %d, want 4", a.Nodes().N())
	}
}

// TestBindContext: the bound context is observed by ctxErr on the
// executor and its node views; rebinding nil clears it.
func TestBindContext(t *testing.T) {
	store := dfs.NewStore(2, 1, 1)
	e := New(store, &cluster.Meter{})
	ns := e.EnableNodes(1)

	if err := e.ctxErr(); err != nil {
		t.Fatalf("unbound ctxErr = %v, want nil", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e.BindContext(ctx)
	if err := e.ctxErr(); err != nil {
		t.Fatalf("live ctxErr = %v, want nil", err)
	}
	cancel()
	if err := e.ctxErr(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctxErr = %v, want context.Canceled", err)
	}
	for i := 0; i < ns.N(); i++ {
		if err := ns.At(i).ctxErr(); !errors.Is(err, context.Canceled) {
			t.Fatalf("node %d ctxErr = %v, want context.Canceled", i, err)
		}
	}
	e.BindContext(nil)
	if err := e.ctxErr(); err != nil {
		t.Fatalf("rebound-nil ctxErr = %v, want nil", err)
	}
	for i := 0; i < ns.N(); i++ {
		if err := ns.At(i).ctxErr(); err != nil {
			t.Fatalf("node %d rebound-nil ctxErr = %v, want nil", i, err)
		}
	}
}
