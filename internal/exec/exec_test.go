package exec

import (
	"math/rand"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

var (
	lineSch = schema.MustNew(
		schema.Column{Name: "orderkey", Kind: value.Int},
		schema.Column{Name: "partkey", Kind: value.Int},
		schema.Column{Name: "shipdate", Kind: value.Int},
	)
	orderSch = schema.MustNew(
		schema.Column{Name: "orderkey", Kind: value.Int},
		schema.Column{Name: "custkey", Kind: value.Int},
		schema.Column{Name: "orderdate", Kind: value.Int},
	)
)

func genLineitem(n int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{
			value.NewInt(rng.Int63n(500)), // orderkey: dense so joins hit
			value.NewInt(rng.Int63n(100)),
			value.NewInt(rng.Int63n(2500)),
		}
	}
	return rows
}

func genOrders(n int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{
			value.NewInt(int64(i) % 500), // every orderkey appears
			value.NewInt(rng.Int63n(50)),
			value.NewInt(rng.Int63n(2500)),
		}
	}
	return rows
}

type fixture struct {
	store *dfs.Store
	meter *cluster.Meter
	ex    *Executor
	line  *core.Table
	ord   *core.Table
	lrows []tuple.Tuple
	orows []tuple.Tuple
}

// newFixture loads lineitem and orders co-partitioned on orderkey.
func newFixture(t *testing.T, coPartitioned bool) *fixture {
	t.Helper()
	store := dfs.NewStore(4, 2, 7)
	meter := &cluster.Meter{}
	lrows := genLineitem(3000, 1)
	orows := genOrders(1000, 2)
	joinAttr := 0
	if !coPartitioned {
		joinAttr = -1
	}
	line, err := core.Load(store, "lineitem", lineSch, lrows, core.LoadOptions{
		RowsPerBlock: 200, Seed: 3, JoinAttr: joinAttr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ord, err := core.Load(store, "orders", orderSch, orows, core.LoadOptions{
		RowsPerBlock: 100, Seed: 4, JoinAttr: joinAttr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{store: store, meter: meter, ex: New(store, meter), line: line, ord: ord, lrows: lrows, orows: orows}
}

func TestScanMatchesNaiveFilter(t *testing.T) {
	f := newFixture(t, true)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(1000))}
	got := f.ex.Scan(f.line, preds)
	want := 0
	for _, r := range f.lrows {
		if r[2].Int64() < 1000 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("scan returned %d rows, want %d", len(got), want)
	}
	for _, r := range got {
		if r[2].Int64() >= 1000 {
			t.Fatalf("scan returned non-matching row %v", r)
		}
	}
}

func TestScanPrunesBlocks(t *testing.T) {
	f := newFixture(t, false)
	f.ex.Scan(f.line, nil)
	full := f.meter.Reset()
	f.ex.Scan(f.line, []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(100))})
	narrow := f.meter.Reset()
	if narrow.BlocksScanned >= full.BlocksScanned {
		t.Errorf("selective scan read %d blocks, full scan %d — no pruning",
			narrow.BlocksScanned, full.BlocksScanned)
	}
}

func TestHashJoinRowsMatchesOracle(t *testing.T) {
	l := genLineitem(300, 5)
	r := genOrders(200, 6)
	got := HashJoinRows(l, r, 0, 0)
	want := NestedLoopJoin(l, r, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("hash join %d rows, oracle %d", len(got), len(want))
	}
	SortRows(got)
	SortRows(want)
	for i := range got {
		for c := range got[i] {
			if value.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d differs", i)
			}
		}
	}
	if HashJoinRows(nil, r, 0, 0) != nil || HashJoinRows(l, nil, 0, 0) != nil {
		t.Errorf("empty side should produce nil")
	}
}

func TestShuffleJoinTablesCorrect(t *testing.T) {
	f := newFixture(t, true)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(1500))}
	got := f.ex.ShuffleJoinTables(f.line, preds, 0, f.ord, nil, 0)
	var lf []tuple.Tuple
	for _, r := range f.lrows {
		if r[2].Int64() < 1500 {
			lf = append(lf, r)
		}
	}
	want := NestedLoopJoin(lf, f.orows, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("shuffle join %d rows, oracle %d", len(got), len(want))
	}
	c := f.meter.Snapshot()
	if c.ShuffleRows == 0 {
		t.Errorf("shuffle join did not meter shuffled rows")
	}
	if c.ResultRows != len(got) {
		t.Errorf("result rows metered %d, want %d", c.ResultRows, len(got))
	}
}

func TestHyperJoinMatchesShuffleJoin(t *testing.T) {
	f := newFixture(t, true)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(2000))}
	rRefs := f.line.Refs(0, preds)
	sRefs := f.ord.Refs(0, nil)
	hyperRows, stats := f.ex.HyperJoin(rRefs, preds, 0, sRefs, nil, 0, 4)
	var lf []tuple.Tuple
	for _, r := range f.lrows {
		if r[2].Int64() < 2000 {
			lf = append(lf, r)
		}
	}
	want := NestedLoopJoin(lf, f.orows, 0, 0)
	if len(hyperRows) != len(want) {
		t.Fatalf("hyper join %d rows, oracle %d", len(hyperRows), len(want))
	}
	SortRows(hyperRows)
	SortRows(want)
	for i := range want {
		for c := range want[i] {
			if value.Compare(hyperRows[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d differs from oracle", i)
			}
		}
	}
	if stats.CHyJ < 1.0 {
		t.Errorf("CHyJ = %v < 1 is impossible when all S blocks overlap", stats.CHyJ)
	}
	if stats.Groups == 0 || stats.BuildBlocks != len(rRefs) {
		t.Errorf("stats wrong: %+v", stats)
	}
	if stats.ProbeBlocks != stats.GroupingCost {
		t.Errorf("executed probes %d != planned grouping cost %d", stats.ProbeBlocks, stats.GroupingCost)
	}
}

func TestHyperJoinCoPartitionedCHyJNearOne(t *testing.T) {
	// Co-partitioned two-phase trees: each lineitem block overlaps few
	// orders blocks, so CHyJ should be near 1 with a decent budget (§4.2).
	f := newFixture(t, true)
	rRefs := f.line.Refs(0, nil)
	sRefs := f.ord.Refs(0, nil)
	_, stats := f.ex.HyperJoin(rRefs, nil, 0, sRefs, nil, 0, 8)
	if stats.CHyJ > 2.5 {
		t.Errorf("co-partitioned CHyJ = %.2f, want ≲ 2 (paper reports ≈2 on real workloads)", stats.CHyJ)
	}
}

func TestHyperJoinCheaperThanShuffleWhenCoPartitioned(t *testing.T) {
	f := newFixture(t, true)
	model := cluster.Default()

	rRefs := f.line.Refs(0, nil)
	sRefs := f.ord.Refs(0, nil)
	f.ex.HyperJoin(rRefs, nil, 0, sRefs, nil, 0, 8)
	hyper := f.meter.Reset()

	f.ex.ShuffleJoinTables(f.line, nil, 0, f.ord, nil, 0)
	shuffle := f.meter.Reset()

	if hyper.CostUnits(model) >= shuffle.CostUnits(model) {
		t.Errorf("hyper-join units %.0f should beat shuffle %.0f on co-partitioned tables",
			hyper.CostUnits(model), shuffle.CostUnits(model))
	}
}

func TestHyperJoinEmptySides(t *testing.T) {
	f := newFixture(t, true)
	rows, stats := f.ex.HyperJoin(nil, nil, 0, f.ord.Refs(0, nil), nil, 0, 4)
	if rows != nil || stats.Groups != 0 {
		t.Errorf("empty build side should produce nothing")
	}
	rows, _ = f.ex.HyperJoin(f.line.Refs(0, nil), nil, 0, nil, nil, 0, 4)
	if rows != nil {
		t.Errorf("empty probe side should produce nothing")
	}
}

func TestHyperJoinWithPredicatesBothSides(t *testing.T) {
	f := newFixture(t, true)
	lPred := []predicate.Predicate{predicate.NewCmp(2, predicate.GE, value.NewInt(500))}
	oPred := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(2000))}
	got, _ := f.ex.HyperJoin(f.line.Refs(0, lPred), lPred, 0, f.ord.Refs(0, oPred), oPred, 0, 4)
	var lf, of []tuple.Tuple
	for _, r := range f.lrows {
		if r[2].Int64() >= 500 {
			lf = append(lf, r)
		}
	}
	for _, r := range f.orows {
		if r[2].Int64() < 2000 {
			of = append(of, r)
		}
	}
	want := NestedLoopJoin(lf, of, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("hyper join with preds: %d rows, oracle %d", len(got), len(want))
	}
}

func TestShuffleJoinRowsMeters(t *testing.T) {
	f := newFixture(t, true)
	l := genLineitem(100, 9)
	r := genOrders(50, 10)
	f.ex.ShuffleJoinRows(l, r, 0, 0)
	c := f.meter.Snapshot()
	if c.ShuffleRows != 150 {
		t.Errorf("ShuffleRows = %v, want 150", c.ShuffleRows)
	}
}

func TestNonCoPartitionedHyperStillCorrect(t *testing.T) {
	// Even when trees are selection-only (blocks overlap heavily on the
	// join attribute), hyper-join must stay correct — just with high CHyJ.
	f := newFixture(t, false)
	rRefs := f.line.Refs(0, nil)
	sRefs := f.ord.Refs(0, nil)
	got, stats := f.ex.HyperJoin(rRefs, nil, 0, sRefs, nil, 0, 4)
	want := NestedLoopJoin(f.lrows, f.orows, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("hyper join on random partitioning: %d rows, oracle %d", len(got), len(want))
	}
	if stats.CHyJ < 1 {
		t.Errorf("CHyJ < 1")
	}
}

func TestBlocksOf(t *testing.T) {
	f := newFixture(t, true)
	blocks := BlocksOf(f.line, 0)
	total := 0
	for _, b := range blocks {
		total += b.Len()
	}
	if total != len(f.lrows) {
		t.Errorf("BlocksOf covers %d rows, want %d", total, len(f.lrows))
	}
}

func TestSortRowsDeterministic(t *testing.T) {
	rows := genLineitem(50, 11)
	a := make([]tuple.Tuple, len(rows))
	copy(a, rows)
	rand.New(rand.NewSource(1)).Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	SortRows(a)
	b := make([]tuple.Tuple, len(rows))
	copy(b, rows)
	SortRows(b)
	for i := range a {
		for c := range a[i] {
			if value.Compare(a[i][c], b[i][c]) != 0 {
				t.Fatalf("SortRows not canonical")
			}
		}
	}
}

func TestExecutorWorkersOverride(t *testing.T) {
	f := newFixture(t, true)
	f.ex.Workers = 1
	rows := f.ex.Scan(f.line, nil)
	if len(rows) != len(f.lrows) {
		t.Errorf("single-worker scan lost rows")
	}
}

func TestHyperJoinNullKeysNeverMatch(t *testing.T) {
	// Regression: the old hyper-join bucketed NULL keys at hashKey()==0
	// and tupleKeyEqual(NULL, NULL) was true, so NULL rows joined. Load
	// tables whose join column is NULL on some rows and cross-check the
	// (null-skipping) oracle.
	store := dfs.NewStore(4, 2, 7)
	meter := &cluster.Meter{}
	lrows := genLineitem(1500, 41)
	orows := genOrders(600, 42)
	for i := 0; i < len(lrows); i += 5 {
		lrows[i][0] = value.Value{}
	}
	for i := 0; i < len(orows); i += 7 {
		orows[i][0] = value.Value{}
	}
	line, err := core.Load(store, "lineitem_nulls", lineSch, lrows, core.LoadOptions{
		RowsPerBlock: 200, Seed: 3, JoinAttr: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ord, err := core.Load(store, "orders_nulls", orderSch, orows, core.LoadOptions{
		RowsPerBlock: 100, Seed: 4, JoinAttr: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := New(store, meter)
	got, _ := ex.HyperJoin(line.Refs(0, nil), nil, 0, ord.Refs(0, nil), nil, 0, 4)
	want := NestedLoopJoin(lrows, orows, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("hyper join with null keys: %d rows, oracle %d", len(got), len(want))
	}
	for _, row := range got {
		if row[0].IsNull() || row[3].IsNull() {
			t.Fatalf("hyper join matched NULL keys: %v", row)
		}
	}
	// The shuffle path over the same tables must agree.
	meter.Reset()
	shuffled := ex.ShuffleJoinTables(line, nil, 0, ord, nil, 0)
	if len(shuffled) != len(want) {
		t.Fatalf("shuffle join with null keys: %d rows, oracle %d", len(shuffled), len(want))
	}
}
