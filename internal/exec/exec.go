// Package exec is the query executor (§6): it runs scan tasks,
// repartitioning iterators, shuffle joins and hyper-joins over the
// blocks of AdaptDB tables, metering every block read and shuffled row
// through the cluster cost model. It plays the role Spark plays for the
// paper's prototype — a dumb, parallel data plane under a smart storage
// manager.
package exec

import (
	"math"
	"sort"
	"sync"

	"adaptdb/internal/block"
	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/hyperjoin"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Executor runs query operators against one store/meter pair.
type Executor struct {
	Store *dfs.Store
	Meter *cluster.Meter
	// Workers bounds task parallelism; 0 means one worker per node.
	Workers int
	// RoundRobin assigns scan tasks to nodes by block index instead of
	// replica locality — the Fig. 7 experiment uses it to control the
	// local-read fraction precisely.
	RoundRobin bool
	// NoPrune disables tree and zone-map pruning: scans read every live
	// block and filter row by row. The "Full Scan" baseline of §7.3 runs
	// this way.
	NoPrune bool
}

// New builds an executor.
func New(store *dfs.Store, meter *cluster.Meter) *Executor {
	return &Executor{Store: store, Meter: meter}
}

func (e *Executor) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	n := e.Store.NumNodes()
	if n < 1 {
		n = 1
	}
	return n
}

// runTasks executes the closures on a bounded worker pool.
func (e *Executor) runTasks(tasks []func()) {
	w := e.workers()
	if w > len(tasks) {
		w = len(tasks)
	}
	if w <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	ch := make(chan func())
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				t()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
}

// taskNode picks the execution node for a block's task: its primary
// replica, mirroring Spark/HDFS locality scheduling (scans are ~100%
// local, Fig. 7's normal case).
func (e *Executor) taskNode(path string) dfs.NodeID {
	if p := e.Store.Placement(path); len(p) > 0 {
		return p[0]
	}
	return 0
}

// ScanRefs reads the given blocks in parallel, filters by the predicate
// conjunction, and returns matching rows. Block reads are metered as
// scans.
func (e *Executor) ScanRefs(refs []core.BlockRef, preds []predicate.Predicate) []tuple.Tuple {
	var mu sync.Mutex
	var out []tuple.Tuple
	tasks := make([]func(), len(refs))
	for i := range refs {
		ref := refs[i]
		idx := i
		tasks[i] = func() {
			node := e.taskNode(ref.Path)
			if e.RoundRobin {
				n := e.Store.NumNodes()
				if n < 1 {
					n = 1
				}
				node = dfs.NodeID(idx % n)
			}
			blk, local, err := e.Store.GetBlock(ref.Path, node)
			if err != nil {
				return // vanished (concurrent repartition): rows moved elsewhere
			}
			e.Meter.AddScan(blk.Len(), local)
			var rows []tuple.Tuple
			for _, r := range blk.Tuples {
				if predicate.MatchesAll(preds, r) {
					rows = append(rows, r)
				}
			}
			mu.Lock()
			out = append(out, rows...)
			mu.Unlock()
		}
	}
	e.runTasks(tasks)
	return out
}

// Scan reads every live tree of a table with predicate and zone-map
// pruning: the paper's predicate-based data access. With NoPrune set it
// reads everything and filters row by row.
func (e *Executor) Scan(tbl *core.Table, preds []predicate.Predicate) []tuple.Tuple {
	if e.NoPrune {
		return e.ScanRefs(tbl.AllRefs(nil), preds)
	}
	return e.ScanRefs(tbl.AllRefs(preds), preds)
}

// HashJoinRows joins two in-memory row sets with a hash join on integer-
// comparable key columns, concatenating matching pairs. No metering —
// callers meter the I/O that produced the inputs.
func HashJoinRows(left, right []tuple.Tuple, lCol, rCol int) []tuple.Tuple {
	if len(left) == 0 || len(right) == 0 {
		return nil
	}
	// Build on the smaller side.
	swapped := false
	build, probe := left, right
	bCol, pCol := lCol, rCol
	if len(right) < len(left) {
		build, probe = right, left
		bCol, pCol = rCol, lCol
		swapped = true
	}
	ht := make(map[string][]tuple.Tuple, len(build))
	var keyBuf []byte
	keyOf := func(t tuple.Tuple, col int) string {
		keyBuf = t[col].AppendBinary(keyBuf[:0])
		return string(keyBuf)
	}
	for _, b := range build {
		k := keyOf(b, bCol)
		ht[k] = append(ht[k], b)
	}
	var out []tuple.Tuple
	for _, p := range probe {
		for _, b := range ht[keyOf(p, pCol)] {
			if swapped {
				out = append(out, tuple.Concat(p, b))
			} else {
				out = append(out, tuple.Concat(b, p))
			}
		}
	}
	return out
}

// ShuffleJoinRows joins two materialized row sets, charging the CSJ
// shuffle factor on every input row (eq. 1: each record is read,
// partitioned and written, and read again).
func (e *Executor) ShuffleJoinRows(left, right []tuple.Tuple, lCol, rCol int) []tuple.Tuple {
	e.Meter.AddShuffle(len(left))
	e.Meter.AddShuffle(len(right))
	out := HashJoinRows(left, right, lCol, rCol)
	e.Meter.AddResultRows(len(out))
	return out
}

// ShuffleJoinIntermediates joins two materialized intermediate row sets,
// charging the cheaper pipelined-shuffle factor per row (§4.3's shuffle
// of two hyper-join outputs).
func (e *Executor) ShuffleJoinIntermediates(left, right []tuple.Tuple, lCol, rCol int) []tuple.Tuple {
	e.Meter.AddIntermediateShuffle(len(left))
	e.Meter.AddIntermediateShuffle(len(right))
	out := HashJoinRows(left, right, lCol, rCol)
	e.Meter.AddResultRows(len(out))
	return out
}

// ShuffleJoinTables scans both tables (with predicate pushdown) and
// shuffle-joins the results — the baseline join strategy.
func (e *Executor) ShuffleJoinTables(left *core.Table, lPreds []predicate.Predicate, lCol int,
	right *core.Table, rPreds []predicate.Predicate, rCol int) []tuple.Tuple {
	l := e.Scan(left, lPreds)
	r := e.Scan(right, rPreds)
	return e.ShuffleJoinRows(l, r, lCol, rCol)
}

// HyperPlan is the block-read schedule of a prospective hyper-join: the
// grouping of build-side blocks plus the probe-side reads (with
// multiplicity) it implies. The optimizer prices plans with it before
// choosing a join strategy (§5.4).
type HyperPlan struct {
	V        []hyperjoin.BitVec
	Grouping hyperjoin.Grouping
	// ProbeIdx lists probe-side ref indexes read across all groups, with
	// multiplicity.
	ProbeIdx []int
}

// PlanHyper computes overlap vectors from the refs' zone maps and groups
// the build side with the bottom-up heuristic.
func PlanHyper(rRefs []core.BlockRef, rCol int, sRefs []core.BlockRef, sCol int, budget int) HyperPlan {
	rRanges := make([]predicate.Range, len(rRefs))
	for i, r := range rRefs {
		rRanges[i] = r.JoinRange(rCol)
	}
	sRanges := make([]predicate.Range, len(sRefs))
	for j, s := range sRefs {
		sRanges[j] = s.JoinRange(sCol)
	}
	V := hyperjoin.OverlapVectors(rRanges, sRanges)
	grouping := hyperjoin.BottomUp(V, budget)
	var probeIdx []int
	for _, g := range grouping {
		for _, j := range hyperjoin.Union(V, g).Ones() {
			if j < len(sRefs) {
				probeIdx = append(probeIdx, j)
			}
		}
	}
	return HyperPlan{V: V, Grouping: grouping, ProbeIdx: probeIdx}
}

// HyperStats reports what a hyper-join did.
type HyperStats struct {
	Groups       int
	BuildBlocks  int
	ProbeBlocks  int // with multiplicity
	SBlocks      int // distinct S blocks needed
	CHyJ         float64
	GroupingCost int
}

// HyperJoin executes the §4.1 algorithm: group the build side's blocks
// with the bottom-up heuristic under memory budget B blocks, then for
// each group build a hash table over the group's R blocks and probe it
// with every overlapping S block. Block reads are metered as build/probe
// reads; probe multiplicity yields the effective CHyJ of eq. 2.
func (e *Executor) HyperJoin(rRefs []core.BlockRef, rPreds []predicate.Predicate, rCol int,
	sRefs []core.BlockRef, sPreds []predicate.Predicate, sCol int, budget int) ([]tuple.Tuple, HyperStats) {
	if len(rRefs) == 0 || len(sRefs) == 0 {
		return nil, HyperStats{}
	}
	plan := PlanHyper(rRefs, rCol, sRefs, sCol, budget)
	V, grouping := plan.V, plan.Grouping
	stats := HyperStats{
		Groups:       len(grouping),
		SBlocks:      len(sRefs),
		GroupingCost: hyperjoin.Cost(grouping, V),
	}

	var mu sync.Mutex
	var out []tuple.Tuple
	tasks := make([]func(), len(grouping))
	for gi := range grouping {
		group := grouping[gi]
		tasks[gi] = func() {
			// The group's task runs where its first R block lives.
			node := e.taskNode(rRefs[group[0]].Path)
			// Build phase.
			var build []tuple.Tuple
			for _, i := range group {
				blk, local, err := e.Store.GetBlock(rRefs[i].Path, node)
				if err != nil {
					continue
				}
				e.Meter.AddBuild(blk.Len(), local)
				for _, r := range blk.Tuples {
					if predicate.MatchesAll(rPreds, r) {
						build = append(build, r)
					}
				}
			}
			ht := make(map[int64][]tuple.Tuple, len(build))
			for _, r := range build {
				ht[hashKey(r[rCol])] = append(ht[hashKey(r[rCol])], r)
			}
			// Probe phase: only overlapping S blocks.
			union := hyperjoin.Union(V, group)
			var rows []tuple.Tuple
			probed := 0
			for _, j := range union.Ones() {
				if j >= len(sRefs) {
					break
				}
				blk, local, err := e.Store.GetBlock(sRefs[j].Path, node)
				if err != nil {
					continue
				}
				e.Meter.AddProbe(blk.Len(), local)
				probed++
				for _, s := range blk.Tuples {
					if !predicate.MatchesAll(sPreds, s) {
						continue
					}
					for _, r := range ht[hashKey(s[sCol])] {
						if tupleKeyEqual(r[rCol], s[sCol]) {
							rows = append(rows, tuple.Concat(r, s))
						}
					}
				}
			}
			mu.Lock()
			out = append(out, rows...)
			stats.BuildBlocks += len(group)
			stats.ProbeBlocks += probed
			mu.Unlock()
		}
	}
	e.runTasks(tasks)
	if stats.SBlocks > 0 {
		stats.CHyJ = float64(stats.ProbeBlocks) / float64(stats.SBlocks)
	}
	e.Meter.AddResultRows(len(out))
	return out, stats
}

// hashKey folds a value into an int64 hash bucket key. Collisions are
// resolved by tupleKeyEqual at probe time.
func hashKey(v value.Value) int64 {
	switch v.K {
	case value.Int, value.Date, value.Bool:
		return v.I
	case value.Float:
		return int64(math.Float64bits(v.F))
	case value.String:
		var h uint64 = 14695981039346656037
		for i := 0; i < len(v.S); i++ {
			h ^= uint64(v.S[i])
			h *= 1099511628211
		}
		return int64(h)
	default:
		return 0
	}
}

func tupleKeyEqual(a, b value.Value) bool { return value.Equal(a, b) }

// NestedLoopJoin is the single-node oracle used by integration tests to
// cross-check join strategies: no pruning, no metering, O(n·m).
func NestedLoopJoin(left, right []tuple.Tuple, lCol, rCol int) []tuple.Tuple {
	var out []tuple.Tuple
	for _, l := range left {
		for _, r := range right {
			if tupleKeyEqual(l[lCol], r[rCol]) {
				out = append(out, tuple.Concat(l, r))
			}
		}
	}
	return out
}

// SortRows orders rows lexicographically by their binary encoding; tests
// use it to compare result multisets across strategies.
func SortRows(rows []tuple.Tuple) {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = string(r.AppendBinary(nil))
	}
	sort.Sort(&rowSorter{rows: rows, keys: keys})
}

type rowSorter struct {
	rows []tuple.Tuple
	keys []string
}

func (s *rowSorter) Len() int           { return len(s.rows) }
func (s *rowSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *rowSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// BlocksOf is a test/experiment helper returning the physical blocks of
// one tree, keyed by bucket.
func BlocksOf(t *core.Table, treeIdx int) map[block.ID]*block.Block {
	out := make(map[block.ID]*block.Block)
	ti := t.Trees[treeIdx]
	if ti == nil {
		return out
	}
	for _, b := range ti.LiveBuckets() {
		blk, _, err := t.Store().GetBlock(t.BlockPath(treeIdx, b), 0)
		if err == nil {
			out[b] = blk
		}
	}
	return out
}
