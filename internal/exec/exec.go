// Legacy slice-returning executor entry points and the hyper-join
// planning/statistics shared with the optimizer. See doc.go for the
// package overview and pipeline.go for the batched engine underneath.
package exec

import (
	"context"
	"sort"

	"adaptdb/internal/block"
	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/hyperjoin"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Executor runs query operators against one store/meter pair.
type Executor struct {
	Store *dfs.Store
	Meter *cluster.Meter
	// Workers bounds task parallelism; 0 means one worker per node.
	Workers int
	// RoundRobin assigns scan tasks to nodes by block index instead of
	// replica locality — the Fig. 7 experiment uses it to control the
	// local-read fraction precisely.
	RoundRobin bool
	// NoPrune disables tree and zone-map pruning: scans read every live
	// block and filter row by row. The "Full Scan" baseline of §7.3 runs
	// this way.
	NoPrune bool
	// Mem is the executor's operator memory budget; nil means unlimited.
	// Hash joins charge their build side against it and demote
	// partitions to disk run files under pressure (the hybrid hash join
	// of spill.go); exchanges charge their in-flight batches. EnableNodes
	// splits it into equal per-node shares.
	Mem *MemBudget
	// SpillDir is where budget-pressured joins place their run-file temp
	// directories ("" = the OS temp dir). Each join creates and removes
	// its own subdirectory.
	SpillDir string
	// DisableColumnar reverts scans, filters and hash joins to the boxed
	// row path (pre-columnar behavior) — the A/B knob the bench harness
	// flips to measure the vectorized hot path against its baseline.
	DisableColumnar bool

	// fs intercepts run-file I/O inside the spill directory; nil means
	// the real filesystem. Package-internal so only white-box tests can
	// inject faults (spillfs.go); EnableNodes propagates it to the
	// per-node executor views.
	fs spillFS

	// pin, when pinned, forces every task of this executor to run at one
	// node — the per-node executor views a NodeSet hands out. Reads of
	// blocks without a local replica are then metered remote instead of
	// chasing the primary replica.
	pin    dfs.NodeID
	pinned bool
	// nodes is the per-node execution fabric, nil in centralized mode.
	nodes *NodeSet
	// xfabric, when set, overrides nodes as the execution fabric the
	// distributed compiler lowers onto (SetFabric/ExecFabric, fabric.go).
	// The TCP coordinator and workers install their per-query network
	// fabric here; nil falls back to the simulated NodeSet fabric.
	xfabric Fabric
	// ctx cancels in-flight operators at batch boundaries; nil means
	// non-cancellable. Set via BindContext or ForQuery (query.go).
	ctx context.Context
}

// New builds an executor.
func New(store *dfs.Store, meter *cluster.Meter) *Executor {
	return &Executor{Store: store, Meter: meter}
}

// MemLimit reports the executor's memory budget in bytes, 0 when
// unlimited — the number the planner's spill cost term reads.
func (e *Executor) MemLimit() int64 { return e.Mem.Limit() }

func (e *Executor) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	n := e.Store.NumNodes()
	if n < 1 {
		n = 1
	}
	return n
}

// taskNode picks the execution node for a block's task: the pinned node
// for a NodeSet's per-node executor view, else the block's primary
// replica, mirroring Spark/HDFS locality scheduling (scans are ~100%
// local, Fig. 7's normal case).
func (e *Executor) taskNode(path string) dfs.NodeID {
	if e.pinned {
		return e.pin
	}
	if p := e.Store.Placement(path); len(p) > 0 {
		return p[0]
	}
	return 0
}

// ScanRefs reads the given blocks in parallel, filters by the predicate
// conjunction, and returns matching rows. Block reads are metered as
// scans. It is the materializing adapter over ScanOp.
func (e *Executor) ScanRefs(refs []core.BlockRef, preds []predicate.Predicate) []tuple.Tuple {
	return MustCollect(e.ScanOp(refs, preds))
}

// Scan reads every live tree of a table with predicate and zone-map
// pruning: the paper's predicate-based data access. With NoPrune set it
// reads everything and filters row by row. It is the materializing
// adapter over TableScanOp.
func (e *Executor) Scan(tbl *core.Table, preds []predicate.Predicate) []tuple.Tuple {
	return MustCollect(e.TableScanOp(tbl, preds))
}

// HashJoinRows joins two in-memory row sets with a single-threaded hash
// join, concatenating matching pairs. Null join keys never match (NULL ≠
// NULL). No metering — callers meter the I/O that produced the inputs.
func HashJoinRows(left, right []tuple.Tuple, lCol, rCol int) []tuple.Tuple {
	if len(left) == 0 || len(right) == 0 {
		return nil
	}
	// Build on the smaller side.
	swapped := false
	build, probe := left, right
	bCol, pCol := lCol, rCol
	if len(right) < len(left) {
		build, probe = right, left
		bCol, pCol = rCol, lCol
		swapped = true
	}
	// The build side's size is exact here, so the incremental table is
	// born at final size — zero rehash-grows by construction.
	ht := newJoinTableCap(bCol, len(build))
	for _, b := range build {
		key := b[bCol]
		if key.IsNull() {
			continue // NULL never equals NULL in a join
		}
		ht.insert(key.Hash64(), b)
	}
	var out []tuple.Tuple
	var arena tuple.Arena
	for _, p := range probe {
		key := p[pCol]
		if key.IsNull() {
			continue
		}
		it := ht.lookup(key.Hash64(), key)
		for {
			b, ok := it.next()
			if !ok {
				break
			}
			if swapped {
				out = append(out, arena.Concat(p, b))
			} else {
				out = append(out, arena.Concat(b, p))
			}
		}
	}
	return out
}

// ShuffleJoinRows joins two materialized row sets, charging the CSJ
// shuffle factor on every input row (eq. 1: each record is read,
// partitioned and written, and read again). It is the materializing
// adapter over JoinOp, building on the smaller side.
func (e *Executor) ShuffleJoinRows(left, right []tuple.Tuple, lCol, rCol int) []tuple.Tuple {
	return e.joinRows(left, right, lCol, rCol, ChargeShuffle)
}

// ShuffleJoinIntermediates joins two materialized intermediate row sets,
// charging the cheaper pipelined-shuffle factor per row (§4.3's shuffle
// of two hyper-join outputs).
func (e *Executor) ShuffleJoinIntermediates(left, right []tuple.Tuple, lCol, rCol int) []tuple.Tuple {
	return e.joinRows(left, right, lCol, rCol, ChargeIntermediate)
}

func (e *Executor) joinRows(left, right []tuple.Tuple, lCol, rCol int, charge JoinCharge) []tuple.Tuple {
	opts := JoinOptions{BuildCharge: charge, ProbeCharge: charge}
	build, probe := left, right
	bCol, pCol := lCol, rCol
	if len(right) < len(left) {
		build, probe = right, left
		bCol, pCol = rCol, lCol
		opts.BuildIsRight = true
	}
	opts.BuildRowsEst = len(build) // materialized input: the estimate is exact
	return MustCollect(e.JoinOp(NewSource(build), bCol, NewSource(probe), pCol, opts))
}

// ShuffleJoinTables scans both tables (with predicate pushdown) and
// shuffle-joins the results — the baseline join strategy. The probe-side
// scan streams straight into the join; only the smaller side (by block
// metadata row counts) is materialized into the hash table.
func (e *Executor) ShuffleJoinTables(left *core.Table, lPreds []predicate.Predicate, lCol int,
	right *core.Table, rPreds []predicate.Predicate, rCol int) []tuple.Tuple {
	opts := JoinOptions{BuildCharge: ChargeShuffle, ProbeCharge: ChargeShuffle}
	build, probe := e.TableRefs(left, lPreds), e.TableRefs(right, rPreds)
	bPreds, pPreds := lPreds, rPreds
	bCol, pCol := lCol, rCol
	if metaRows(probe) < metaRows(build) {
		build, probe = probe, build
		bPreds, pPreds = rPreds, lPreds
		bCol, pCol = rCol, lCol
		opts.BuildIsRight = true
	}
	opts.BuildRowsEst = metaRows(build) // zone-map cardinality, pre-predicate
	return MustCollect(e.JoinOp(e.ScanOp(build, bPreds), bCol, e.ScanOp(probe, pPreds), pCol, opts))
}

// metaRows sums zone-map row counts over a ref set — a pre-scan
// cardinality estimate for build-side selection.
func metaRows(refs []core.BlockRef) int {
	n := 0
	for _, r := range refs {
		n += r.Meta.Count
	}
	return n
}

// HyperPlan is the block-read schedule of a prospective hyper-join: the
// grouping of build-side blocks plus the probe-side reads (with
// multiplicity) it implies. The optimizer prices plans with it before
// choosing a join strategy (§5.4).
type HyperPlan struct {
	V        []hyperjoin.BitVec
	Grouping hyperjoin.Grouping
	// ProbeIdx lists probe-side ref indexes read across all groups, with
	// multiplicity.
	ProbeIdx []int
}

// PlanHyper computes overlap vectors from the refs' zone maps and groups
// the build side with the bottom-up heuristic.
func PlanHyper(rRefs []core.BlockRef, rCol int, sRefs []core.BlockRef, sCol int, budget int) HyperPlan {
	rRanges := make([]predicate.Range, len(rRefs))
	for i, r := range rRefs {
		rRanges[i] = r.JoinRange(rCol)
	}
	sRanges := make([]predicate.Range, len(sRefs))
	for j, s := range sRefs {
		sRanges[j] = s.JoinRange(sCol)
	}
	V := hyperjoin.OverlapVectors(rRanges, sRanges)
	grouping := hyperjoin.BottomUp(V, budget)
	var probeIdx []int
	for _, g := range grouping {
		for _, j := range hyperjoin.Union(V, g).Ones() {
			if j < len(sRefs) {
				probeIdx = append(probeIdx, j)
			}
		}
	}
	return HyperPlan{V: V, Grouping: grouping, ProbeIdx: probeIdx}
}

// HyperStats reports what a hyper-join did.
type HyperStats struct {
	Groups       int
	BuildBlocks  int
	ProbeBlocks  int // with multiplicity
	SBlocks      int // distinct S blocks needed
	CHyJ         float64
	GroupingCost int
}

// HyperJoin executes the §4.1 algorithm: group the build side's blocks
// with the bottom-up heuristic under memory budget B blocks, then for
// each group build a hash table over the group's R blocks and probe it
// with every overlapping S block. Block reads are metered as build/probe
// reads; probe multiplicity yields the effective CHyJ of eq. 2. It is
// the materializing adapter over NewHyperJoinOp.
func (e *Executor) HyperJoin(rRefs []core.BlockRef, rPreds []predicate.Predicate, rCol int,
	sRefs []core.BlockRef, sPreds []predicate.Predicate, sCol int, budget int) ([]tuple.Tuple, HyperStats) {
	op := e.NewHyperJoinOp(rRefs, rPreds, rCol, sRefs, sPreds, sCol, budget)
	rows := MustCollect(op)
	return rows, op.Stats()
}

// joinKeyEqual is SQL join-key equality: NULL never equals NULL (or
// anything else), otherwise value equality.
func joinKeyEqual(a, b value.Value) bool {
	return !a.IsNull() && !b.IsNull() && value.Equal(a, b)
}

// NestedLoopJoin is the single-node oracle used by integration tests to
// cross-check join strategies: no pruning, no metering, O(n·m).
func NestedLoopJoin(left, right []tuple.Tuple, lCol, rCol int) []tuple.Tuple {
	var out []tuple.Tuple
	for _, l := range left {
		for _, r := range right {
			if joinKeyEqual(l[lCol], r[rCol]) {
				out = append(out, tuple.Concat(l, r))
			}
		}
	}
	return out
}

// SortRows orders rows lexicographically by their binary encoding; tests
// use it to compare result multisets across strategies.
func SortRows(rows []tuple.Tuple) {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = string(r.AppendBinary(nil))
	}
	sort.Sort(&rowSorter{rows: rows, keys: keys})
}

type rowSorter struct {
	rows []tuple.Tuple
	keys []string
}

func (s *rowSorter) Len() int           { return len(s.rows) }
func (s *rowSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *rowSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// BlocksOf is a test/experiment helper returning the physical blocks of
// one tree, keyed by bucket.
func BlocksOf(t *core.Table, treeIdx int) map[block.ID]*block.Block {
	out := make(map[block.ID]*block.Block)
	ti := t.Trees[treeIdx]
	if ti == nil {
		return out
	}
	for _, b := range ti.LiveBuckets() {
		blk, _, err := t.Store().GetBlock(t.BlockPath(treeIdx, b), 0)
		if err == nil {
			out[b] = blk
		}
	}
	return out
}
