// White-box tests for the dynamic parts of the hybrid hash join: radix
// fan-out selection, second-pass role reversal, Bloom-filtered probe
// spills, and scored victim selection.
package exec

import (
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func keyedRows(n int, key func(i int) int64) []tuple.Tuple {
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{value.NewInt(key(i)), value.NewInt(int64(i))}
	}
	return rows
}

// runDynJoin joins l ⋈ r on column 0 and hands back the concrete join
// op so tests can read its spill counters.
func runDynJoin(t *testing.T, l, r []tuple.Tuple, budget int64, opts JoinOptions) ([]tuple.Tuple, *hashJoinOp) {
	t.Helper()
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(budget)
	ex.SpillDir = t.TempDir()
	op := ex.JoinOp(NewSource(l), 0, NewSource(r), 0, opts)
	hj := op.(*hashJoinOp)
	got, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if used := ex.Mem.Used(); used != 0 {
		t.Fatalf("budget still holds %d bytes after drain", used)
	}
	return got, hj
}

func TestPickRadixBits(t *testing.T) {
	for _, tc := range []struct {
		estRows int
		limit   int64
		want    int
	}{
		{0, 0, joinRadixBits},    // no estimate: fixed default
		{0, 1024, joinRadixBits}, // budgeted but unknown: same
		{100, 1 << 30, 2},        // tiny build, huge budget: min fan-out
		{16_384, 0, 2},           // unbudgeted small build: min fan-out
		{1 << 20, 0, 6},          // unbudgeted: ~16k rows per partition
		{10_000, 4096, 8},        // starved budget: clamp at max
		{1 << 30, 1, 8},          // absurd ratio still clamps
	} {
		if got := pickRadixBits(tc.estRows, tc.limit); got != tc.want {
			t.Errorf("pickRadixBits(%d, %d) = %d, want %d", tc.estRows, tc.limit, got, tc.want)
		}
	}
}

// TestJoinFanOutFollowsEstimate checks the estimate actually reaches
// the constructed operator: partition count, shift, and table slice all
// agree with pickRadixBits.
func TestJoinFanOutFollowsEstimate(t *testing.T) {
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(4096)
	hj := ex.JoinOp(NewSource(nil), 0, NewSource(nil), 0, JoinOptions{BuildRowsEst: 10_000}).(*hashJoinOp)
	if hj.nParts != 256 || hj.radixBits != 8 || hj.radixShift != 56 || len(hj.parts) != 256 {
		t.Fatalf("estimated join fan-out = %d bits / %d parts / shift %d", hj.radixBits, hj.nParts, hj.radixShift)
	}
	hj = ex.JoinOp(NewSource(nil), 0, NewSource(nil), 0, JoinOptions{}).(*hashJoinOp)
	if hj.nParts != joinPartitions {
		t.Fatalf("estimate-free join fan-out = %d parts, want default %d", hj.nParts, joinPartitions)
	}
}

// TestSpillRoleReversal starves a build≫probe join so every partition
// spills with a large build run and a tiny probe run; the second pass
// must load the probe side instead (role reversal) and still produce
// the exact join.
func TestSpillRoleReversal(t *testing.T) {
	build := keyedRows(4000, func(i int) int64 { return int64(i % 500) })
	probe := keyedRows(60, func(i int) int64 { return int64(i) })
	got, hj := runDynJoin(t, build, probe, 2048, JoinOptions{})
	rowsEqualSorted(t, got, NestedLoopJoin(build, probe, 0, 0))
	if hj.spillReversals() == 0 {
		t.Fatal("build≫probe second pass never reversed roles")
	}
}

// TestSpillNoReversalWhenBuildSmaller is the control: with the build
// side already the smaller one, the second pass must keep its
// orientation.
func TestSpillNoReversalWhenBuildSmaller(t *testing.T) {
	build := keyedRows(60, func(i int) int64 { return int64(i) })
	probe := keyedRows(4000, func(i int) int64 { return int64(i % 500) })
	got, hj := runDynJoin(t, build, probe, 1024, JoinOptions{})
	rowsEqualSorted(t, got, NestedLoopJoin(build, probe, 0, 0))
	if n := hj.spillReversals(); n != 0 {
		t.Fatalf("probe≫build second pass reversed roles %d times", n)
	}
}

// TestSpillBloomSkipDisjointKeys probes a spilled build with entirely
// disjoint keys: the Bloom filters must drop the probe-side spill
// writes (metered as SpillSkippedRows), and the A/B run with filters
// disabled must spill strictly more bytes for the same (empty) result.
func TestSpillBloomSkipDisjointKeys(t *testing.T) {
	build := keyedRows(1000, func(i int) int64 { return int64(i) })
	probe := keyedRows(2000, func(i int) int64 { return int64(10_000 + i) })

	got, hj := runDynJoin(t, build, probe, 4096, JoinOptions{})
	if len(got) != 0 {
		t.Fatalf("disjoint join produced %d rows", len(got))
	}
	skipped := hj.SpillSkippedRows()
	if skipped == 0 {
		t.Fatal("no probe rows skipped the spill write")
	}
	if c := hj.e.Meter.Snapshot().SpillSkippedRows; c != float64(skipped) {
		t.Fatalf("meter saw %.0f skipped rows, join counted %d", c, skipped)
	}

	gotAB, hjAB := runDynJoin(t, build, probe, 4096, JoinOptions{DisableBloom: true})
	if len(gotAB) != 0 {
		t.Fatalf("disjoint join (no bloom) produced %d rows", len(gotAB))
	}
	if hjAB.SpillSkippedRows() != 0 {
		t.Fatal("DisableBloom join still skipped rows")
	}
	if hj.SpilledBytes() >= hjAB.SpilledBytes() {
		t.Fatalf("bloom run spilled %d bytes, no-bloom run %d — filter saved nothing",
			hj.SpilledBytes(), hjAB.SpilledBytes())
	}
}

// TestVictimScorePrefersDistinct exercises the scoring function
// directly: a duplicate-heavy partition must score below a distinct-key
// partition even when it holds more bytes, and empty partitions score
// zero.
func TestVictimScorePrefersDistinct(t *testing.T) {
	sp := newJoinSpill(&hashJoinOp{nParts: 4})
	for i := 0; i < 200; i++ {
		sp.noteBuildRow(0, 0, 60) // one hot key: 12000 bytes, 1 sample bit
	}
	for i := 0; i < 50; i++ {
		sp.noteBuildRow(1, uint64(i), 160) // distinct keys: 8000 bytes
	}
	dup, distinct := sp.victimScore(0), sp.victimScore(1)
	if dup <= 0 {
		t.Fatal("non-empty partition scored zero: demotion could stall")
	}
	if distinct <= dup {
		t.Fatalf("distinct partition scored %.0f ≤ duplicate-heavy %.0f despite fewer bytes", distinct, dup)
	}
	if sp.victimScore(2) != 0 {
		t.Fatal("empty partition scored non-zero")
	}
}

// TestPressureSpillsDistinctKeepsDuplicates drives pressure() itself:
// with both partitions over budget together, the distinct-key
// partition must be demoted (and get its Bloom filter) while the
// larger duplicate-heavy one stays in memory.
func TestPressureSpillsDistinctKeepsDuplicates(t *testing.T) {
	store := dfs.NewStore(2, 1, 1)
	ex := New(store, &cluster.Meter{})
	ex.Mem = NewMemBudget(13_000)
	sp := newJoinSpill(&hashJoinOp{e: ex, nParts: 4})
	for i := 0; i < 200; i++ {
		sp.noteBuildRow(0, 0, 60) // duplicates: 12000 bytes
	}
	for i := 0; i < 50; i++ {
		sp.noteBuildRow(1, uint64(i), 160) // distinct: 8000 bytes
	}
	ex.Mem.Charge(20_000)
	defer ex.Mem.Release(20_000)
	sp.pressure()
	if !sp.isSpilled(1) {
		t.Fatal("distinct-key partition was not demoted")
	}
	if sp.isSpilled(0) {
		t.Fatal("duplicate-heavy partition was demoted despite lower score")
	}
	if sp.bloomAt(1) == nil {
		t.Fatal("demoted partition has no Bloom filter")
	}
	if sp.bloomAt(0) != nil {
		t.Fatal("in-memory partition grew a Bloom filter")
	}
}
