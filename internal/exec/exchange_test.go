package exec

import (
	"errors"
	"sync"
	"testing"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// nodeSetOf builds an N-node fabric over an empty store for pure
// exchange tests (no blocks involved).
func nodeSetOf(t *testing.T, n int) (*NodeSet, *Executor) {
	t.Helper()
	store := dfs.NewStore(n, 1, 1)
	ex := New(store, &cluster.Meter{})
	return ex.EnableNodes(1), ex
}

func keyRows(keys []int64) []tuple.Tuple {
	out := make([]tuple.Tuple, len(keys))
	for i, k := range keys {
		out[i] = tuple.Tuple{value.NewInt(k), value.NewInt(int64(i))}
	}
	return out
}

// drainOutputs collects every output of an exchange concurrently (the
// contract: all outputs must be drained for the exchange to finish).
func drainOutputs(t *testing.T, x *Exchange, n int) [][]tuple.Tuple {
	t.Helper()
	got := make([][]tuple.Tuple, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = Collect(x.Output(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("output %d: %v", i, err)
		}
	}
	return got
}

// TestShuffleExchangeHash64Routing: hash partitioning is deterministic
// and value.Hash64-consistent — every row lands exactly on node
// Hash64(key) % N, and nothing is lost or duplicated.
func TestShuffleExchangeHash64Routing(t *testing.T) {
	const n = 4
	ns, _ := nodeSetOf(t, n)
	var keys []int64
	for i := int64(0); i < 1000; i++ {
		keys = append(keys, i%123)
	}
	rows := keyRows(keys)
	parts := make([]Operator, n)
	for i := range parts {
		// Spread the input over the nodes unevenly, like a skewed scan.
		lo, hi := i*len(rows)/n, (i+1)*len(rows)/n
		parts[i] = NewSource(rows[lo:hi])
	}
	x := ns.Shuffle(parts, 0)
	got := drainOutputs(t, x, n)
	total := 0
	for node, rs := range got {
		total += len(rs)
		for _, r := range rs {
			want := int(r[0].Hash64() % uint64(n))
			if want != node {
				t.Fatalf("row with key %v routed to node %d, Hash64%%%d says %d", r[0], node, n, want)
			}
		}
	}
	if total != len(rows) {
		t.Fatalf("exchange delivered %d rows, want %d", total, len(rows))
	}
	// Determinism: a second identical exchange routes identically.
	parts2 := make([]Operator, n)
	for i := range parts2 {
		lo, hi := i*len(rows)/n, (i+1)*len(rows)/n
		parts2[i] = NewSource(rows[lo:hi])
	}
	got2 := drainOutputs(t, ns.Shuffle(parts2, 0), n)
	for node := range got {
		if len(got[node]) != len(got2[node]) {
			t.Fatalf("node %d: %d rows on first run, %d on second", node, len(got[node]), len(got2[node]))
		}
	}
}

// TestBroadcastDuplicatesExactlyOnce: every node's output is exactly
// the input multiset — no drops, no double delivery.
func TestBroadcastDuplicatesExactlyOnce(t *testing.T) {
	const n = 4
	ns, _ := nodeSetOf(t, n)
	rows := keyRows([]int64{7, 7, 1, 2, 3, 3, 3, 99})
	x := ns.Broadcast(NewSource(rows))
	got := drainOutputs(t, x, n)
	want := append([]tuple.Tuple(nil), rows...)
	SortRows(want)
	for node, rs := range got {
		if len(rs) != len(rows) {
			t.Fatalf("node %d got %d rows, want %d", node, len(rs), len(rows))
		}
		SortRows(rs)
		for i := range rs {
			if value.Compare(rs[i][0], want[i][0]) != 0 || value.Compare(rs[i][1], want[i][1]) != 0 {
				t.Fatalf("node %d row %d = %v, want %v", node, i, rs[i], want[i])
			}
		}
	}
}

// TestExchangeNullKeysNeverMatch: NULL join keys survive the exchange
// (routed deterministically to node 0) but never produce a match in the
// downstream per-node joins, exactly like the centralized join.
func TestExchangeNullKeysNeverMatch(t *testing.T) {
	const n = 3
	ns, _ := nodeSetOf(t, n)
	null := value.Value{}
	build := []tuple.Tuple{
		{null, value.NewInt(100)},
		{value.NewInt(1), value.NewInt(101)},
		{value.NewInt(2), value.NewInt(102)},
	}
	probe := []tuple.Tuple{
		{null, value.NewInt(200)},
		{value.NewInt(1), value.NewInt(201)},
		{null, value.NewInt(202)},
		{value.NewInt(3), value.NewInt(203)},
	}
	bx := ns.ShuffleGlobal(NewSource(build), 0)
	px := ns.ShuffleGlobal(NewSource(probe), 0)
	parts := make([]Operator, n)
	for i := 0; i < n; i++ {
		parts[i] = ns.At(i).JoinOp(bx.Output(i), 0, px.Output(i), 0, JoinOptions{})
	}
	got, err := Collect(Gather(parts...))
	if err != nil {
		t.Fatal(err)
	}
	want := NestedLoopJoin(build, probe, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("exchanged join produced %d rows, oracle %d", len(got), len(want))
	}
	for _, r := range got {
		if r[0].IsNull() || r[2].IsNull() {
			t.Fatalf("NULL key matched across the exchange: %v", r)
		}
	}
}

// TestExchangeMetering: same-node deliveries are free, cross-node ones
// are charged with bytes, and a single-node fabric never pays.
func TestExchangeMetering(t *testing.T) {
	ns1, ex1 := nodeSetOf(t, 1)
	rows := keyRows([]int64{1, 2, 3, 4, 5})
	drainOutputs(t, ns1.Shuffle([]Operator{NewSource(rows)}, 0), 1)
	ns1.Flush()
	c := ex1.Meter.Snapshot()
	if c.ExchRemoteRows != 0 {
		t.Fatalf("single-node exchange metered %v remote rows", c.ExchRemoteRows)
	}
	if c.ExchLocalRows != float64(len(rows)) {
		t.Fatalf("single-node exchange metered %v local rows, want %d", c.ExchLocalRows, len(rows))
	}

	const n = 4
	ns, ex := nodeSetOf(t, n)
	var keys []int64
	for i := int64(0); i < 400; i++ {
		keys = append(keys, i)
	}
	all := keyRows(keys)
	parts := make([]Operator, n)
	for i := range parts {
		lo, hi := i*len(all)/n, (i+1)*len(all)/n
		parts[i] = NewSource(all[lo:hi])
	}
	drainOutputs(t, ns.Shuffle(parts, 0), n)
	ns.Flush()
	c = ex.Meter.Snapshot()
	if got := c.ExchRows(); got != float64(len(all)) {
		t.Fatalf("exchange metered %v rows total, want %d", got, len(all))
	}
	if c.ExchRemoteRows == 0 {
		t.Fatal("4-node exchange should meter some remote rows")
	}
	if c.ExchBytes <= 0 {
		t.Fatal("remote exchange rows should carry bytes")
	}

	// Broadcast from a coordinator stream: every copy is remote.
	nsb, exb := nodeSetOf(t, n)
	drainOutputs(t, nsb.Broadcast(NewSource(rows)), n)
	nsb.Flush()
	c = exb.Meter.Snapshot()
	if c.ExchRemoteRows != float64(n*len(rows)) {
		t.Fatalf("broadcast metered %v remote rows, want %d", c.ExchRemoteRows, n*len(rows))
	}
}

// TestGatherMergesAndPropagatesErrors: Gather unions child streams and
// surfaces the first child error after the merge drains.
func TestGatherMergesAndPropagatesErrors(t *testing.T) {
	a := NewSource(keyRows([]int64{1, 2, 3}))
	b := NewSource(keyRows([]int64{4, 5}))
	rows, err := Collect(Gather(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("gather produced %d rows, want 5", len(rows))
	}

	boom := errors.New("boom")
	_, err = Collect(Gather(NewSource(keyRows([]int64{1})), &failingOp{err: boom}))
	if !errors.Is(err, boom) {
		t.Fatalf("gather error = %v, want %v", err, boom)
	}
}

// TestExchangeCloseWithoutOpen: closing an output of an exchange whose
// producers never started must return immediately instead of blocking
// on a channel nothing will ever close — the teardown path when a
// join's build side errors before its probe exchange is opened.
func TestExchangeCloseWithoutOpen(t *testing.T) {
	const n = 3
	ns, _ := nodeSetOf(t, n)
	x := ns.Broadcast(NewSource(keyRows([]int64{1, 2, 3})))
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			x.Output(i).Close()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close on a never-opened exchange output hung")
	}
}

type failingOp struct{ err error }

func (f *failingOp) Open() error           { return nil }
func (f *failingOp) Next() (*Batch, error) { return nil, f.err }
func (f *failingOp) Close() error          { return nil }
