// Hash aggregation: the GroupByOp operator closes queries end-to-end —
// instead of returning raw join tuples, a query can group its output
// and reduce each group with COUNT/SUM/MIN/MAX/AVG. The operator
// consumes its child fully at Open (aggregation is a pipeline breaker),
// holds one accumulator set per distinct group key, and emits the
// groups in key order — a deterministic output independent of the
// child's batch arrival order, which parallel scans do not fix.
//
// Grouping semantics follow value.Compare's total order, not join
// semantics: NULL keys form their own group (NULL groups with NULL),
// and NaN groups with NaN. Aggregates skip NULL inputs; SUM and AVG
// accumulate int64 exactly while every input is integer-kinded
// (Int/Date/Bool) and promote to float64 on the first float — so
// integer aggregates are bit-identical across any execution order,
// which the differential oracles rely on.
//
// Group state is charged against the executor's memory budget
// (advisory, like the joins' build charges) and released at Close;
// aggregation does not spill — the ROADMAP tracks spill-aware
// aggregation as an open item.
package exec

import (
	"sort"

	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// AggFn identifies an aggregate function.
type AggFn uint8

// The supported aggregate functions.
const (
	AggCount AggFn = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// AggSpec is one aggregate over an input column; Col -1 means COUNT(*)
// (row count, NULLs included). Any other function counts or folds only
// non-NULL values of its column.
type AggSpec struct {
	Fn  AggFn
	Col int
}

// GroupBySpec configures a hash aggregation: the input columns to
// group on (empty = one global group, which emits exactly one row even
// over an empty input) and the aggregates to compute per group. Output
// rows are the group columns followed by the aggregate values.
type GroupBySpec struct {
	GroupCols []int
	Aggs      []AggSpec
}

// groupStateBytes approximates the fixed per-group footprint (bucket
// entry, accumulators) for budget charging; the key's own bytes are
// charged exactly.
const groupStateBytes = 96

// GroupByOp builds a hash-aggregation operator over child.
func (e *Executor) GroupByOp(child Operator, spec GroupBySpec) Operator {
	return &groupByOp{e: e, child: child, spec: spec}
}

// aggAcc is one aggregate's running state within one group.
type aggAcc struct {
	count    int64
	sumI     int64
	sumF     float64
	floatSum bool
	fold     value.Value
	seen     bool
}

func (a *aggAcc) add(fn AggFn, v value.Value) {
	switch fn {
	case AggCount:
		a.count++
	case AggSum, AggAvg:
		if v.IsNull() {
			return
		}
		a.count++
		switch v.K {
		case value.Int, value.Date, value.Bool:
			if a.floatSum {
				a.sumF += float64(v.I)
			} else {
				a.sumI += v.I
			}
		default:
			// First float (or string, folding in as NaN) promotes the
			// exact integer sum to the float track, once.
			if !a.floatSum {
				a.floatSum = true
				a.sumF = float64(a.sumI)
				a.sumI = 0
			}
			a.sumF += v.Float64()
		}
	case AggMin:
		if v.IsNull() {
			return
		}
		if !a.seen {
			a.fold, a.seen = v, true
		} else {
			a.fold = value.Min(a.fold, v)
		}
	case AggMax:
		if v.IsNull() {
			return
		}
		if !a.seen {
			a.fold, a.seen = v, true
		} else {
			a.fold = value.Max(a.fold, v)
		}
	}
}

func (a *aggAcc) result(fn AggFn) value.Value {
	switch fn {
	case AggCount:
		return value.NewInt(a.count)
	case AggSum:
		if a.count == 0 {
			return value.Value{}
		}
		if a.floatSum {
			return value.NewFloat(a.sumF)
		}
		return value.NewInt(a.sumI)
	case AggAvg:
		if a.count == 0 {
			return value.Value{}
		}
		if a.floatSum {
			return value.NewFloat(a.sumF / float64(a.count))
		}
		// Integer inputs: one exact sum, one divide — deterministic
		// regardless of accumulation order.
		return value.NewFloat(float64(a.sumI) / float64(a.count))
	case AggMin, AggMax:
		if !a.seen {
			return value.Value{}
		}
		return a.fold
	}
	return value.Value{}
}

type groupState struct {
	key  tuple.Tuple
	accs []aggAcc
}

type groupByOp struct {
	e     *Executor
	child Operator
	spec  GroupBySpec

	groups  []*groupState
	buckets map[uint64][]int
	charged int64
	keybuf  tuple.Tuple // scratch for key extraction
	pos     int
	closed  bool
}

func (g *groupByOp) Open() error {
	if err := g.child.Open(); err != nil {
		return err
	}
	g.buckets = make(map[uint64][]int)
	g.keybuf = make(tuple.Tuple, len(g.spec.GroupCols))
	for {
		if err := g.e.ctxErr(); err != nil {
			return err
		}
		b, err := g.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if cb := b.Cols(); cb != nil {
			// Columnar input: read cells straight from the vectors
			// through the selection — no row materialization.
			n := cb.Len()
			sel := cb.Sel()
			for k := 0; k < n; k++ {
				i := k
				if sel != nil {
					i = int(sel[k])
				}
				for ci, col := range g.spec.GroupCols {
					g.keybuf[ci] = cb.Value(col, i)
				}
				gs := g.lookup(g.keybuf)
				for ai := range g.spec.Aggs {
					a := g.spec.Aggs[ai]
					if a.Fn == AggCount && a.Col < 0 {
						gs.accs[ai].add(a.Fn, value.Value{})
						continue
					}
					gs.accs[ai].add(a.Fn, cb.Value(a.Col, i))
				}
			}
		} else {
			for _, r := range b.Rows() {
				for ci, col := range g.spec.GroupCols {
					g.keybuf[ci] = r[col]
				}
				gs := g.lookup(g.keybuf)
				for ai := range g.spec.Aggs {
					a := g.spec.Aggs[ai]
					if a.Fn == AggCount && a.Col < 0 {
						gs.accs[ai].add(a.Fn, value.Value{})
						continue
					}
					gs.accs[ai].add(a.Fn, r[a.Col])
				}
			}
		}
		b.Release()
	}
	if len(g.spec.GroupCols) == 0 && len(g.groups) == 0 {
		// Global aggregate over an empty input still emits one row
		// (COUNT 0, NULL sums) — SQL's scalar-aggregate contract.
		g.groups = append(g.groups, &groupState{accs: make([]aggAcc, len(g.spec.Aggs))})
	}
	// Key order makes the output deterministic whatever order the
	// child's batches arrived in.
	sort.Slice(g.groups, func(i, j int) bool {
		a, b := g.groups[i].key, g.groups[j].key
		for c := range a {
			if cmp := value.Compare(a[c], b[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return nil
}

// lookup finds or creates the group for key (scratch — copied on
// insert). Hashing combines the per-column Hash64 order-sensitively;
// collisions resolve by value.Equal, so NULL groups with NULL and NaN
// with NaN (value.Compare semantics, unlike join keys).
func (g *groupByOp) lookup(key tuple.Tuple) *groupState {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range key {
		h ^= v.Hash64()
		h *= prime
	}
	for _, idx := range g.buckets[h] {
		gs := g.groups[idx]
		same := true
		for c := range key {
			if !value.Equal(gs.key[c], key[c]) {
				same = false
				break
			}
		}
		if same {
			return gs
		}
	}
	gs := &groupState{
		key:  append(tuple.Tuple(nil), key...),
		accs: make([]aggAcc, len(g.spec.Aggs)),
	}
	g.buckets[h] = append(g.buckets[h], len(g.groups))
	g.groups = append(g.groups, gs)
	cost := int64(groupStateBytes + gs.key.MemBytes())
	g.charged += cost
	g.e.Mem.Charge(cost) // advisory: aggregation has no spill path yet
	return gs
}

func (g *groupByOp) Next() (*Batch, error) {
	if g.pos >= len(g.groups) {
		return nil, nil
	}
	out := NewBatch()
	vals := make(tuple.Tuple, len(g.spec.Aggs))
	for g.pos < len(g.groups) && !out.Full() {
		gs := g.groups[g.pos]
		for ai := range g.spec.Aggs {
			vals[ai] = gs.accs[ai].result(g.spec.Aggs[ai].Fn)
		}
		out.AppendConcat(gs.key, vals)
		g.pos++
	}
	return out, nil
}

func (g *groupByOp) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	g.e.Mem.Release(g.charged)
	g.charged = 0
	g.groups, g.buckets = nil, nil
	return g.child.Close()
}
