// Per-query execution state over a shared long-lived executor. A
// serving process keeps ONE template Executor per store (flags, spill
// fs, store handle) and derives a private view per query: own meter,
// own memory-budget share, own spill directory, own context. The view
// shares the immutable parts (store, pruning/columnar flags, fault-
// injection fs) and owns everything a query mutates, so any number of
// queries run concurrently against one store without sharing operator
// state.
package exec

import (
	"context"

	"adaptdb/internal/cluster"
)

// QueryCtx is the per-query state a serving layer owns: the context
// that cancels the query's operators, the meter its costs accumulate
// into, its private memory-budget share, and its spill directory.
type QueryCtx struct {
	// Ctx cancels the query: operator drain loops check it at batch
	// boundaries and surface ctx.Err() through Next. nil means
	// non-cancellable (context.Background semantics).
	Ctx context.Context
	// Meter receives the query's cost accounting. nil allocates a
	// private meter.
	Meter *cluster.Meter
	// Mem is the query's memory-budget share (typically sized to the
	// admission reservation); nil means unlimited.
	Mem *MemBudget
	// SpillDir overrides the template's spill directory when non-empty.
	SpillDir string
	// Workers overrides the template's task parallelism when > 0.
	Workers int
	// Distributed attaches a per-node fabric (EnableNodes) to the view;
	// WorkersPerNode bounds each node's parallelism as in EnableNodes.
	Distributed    bool
	WorkersPerNode int
}

// ForQuery derives a per-query executor view from a long-lived
// template. The view shares the store and behavior flags but owns its
// meter, budget, spill dir and context; when q.Distributed it also gets
// a private NodeSet (per-node executor views and meter shards), so two
// concurrent queries never share exchange or metering state.
//
// The returned executor is single-query: use it for one Compile/drain
// cycle, then drop it.
func (e *Executor) ForQuery(q QueryCtx) *Executor {
	meter := q.Meter
	if meter == nil {
		meter = &cluster.Meter{}
	}
	spill := e.SpillDir
	if q.SpillDir != "" {
		spill = q.SpillDir
	}
	workers := e.Workers
	if q.Workers > 0 {
		workers = q.Workers
	}
	v := &Executor{
		Store:           e.Store,
		Meter:           meter,
		Workers:         workers,
		RoundRobin:      e.RoundRobin,
		NoPrune:         e.NoPrune,
		Mem:             q.Mem,
		SpillDir:        spill,
		DisableColumnar: e.DisableColumnar,
		fs:              e.fs,
		ctx:             q.Ctx,
	}
	if q.Distributed {
		v.EnableNodes(q.WorkersPerNode)
	}
	return v
}

// BindContext attaches a cancellation context to the executor and its
// node views (if any). Operator drain loops check it at batch
// boundaries; once ctx is done, in-flight operators wind down and
// surface ctx.Err() through Next. Not safe to call concurrently with a
// running query — bind before Compile, as Session.ExecuteContext does.
func (e *Executor) BindContext(ctx context.Context) {
	e.ctx = ctx
	if e.nodes != nil {
		for _, ne := range e.nodes.execs {
			ne.ctx = ctx
		}
	}
}

// Ctx returns the bound execution context (nil when none was bound) —
// the network fabric threads it into attempt lifecycles.
func (e *Executor) Ctx() context.Context { return e.ctx }

// ctxErr reports the executor's cancellation state: nil while the
// query may proceed, ctx.Err() once it is cancelled or past deadline.
// Hot loops call this once per batch, not per row.
func (e *Executor) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	select {
	case <-e.ctx.Done():
		return e.ctx.Err()
	default:
		return nil
	}
}
