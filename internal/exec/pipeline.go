// Batched, pipelined execution: the Operator/Batch data plane.
//
// The original executor materialized a full []tuple.Tuple at every
// operator boundary, so a scan→filter→join chain paid O(total rows)
// allocation before the first output row existed. The pipeline API
// streams fixed-capacity Batches through Open/Next/Close operators
// instead: scans read blocks on a bounded worker pool and emit batches
// as they fill, joins build a hash table from their build input and
// then stream probe batches through it. The legacy slice-returning
// Executor methods (Scan, ScanRefs, ShuffleJoin*, HyperJoin) are thin
// Collect() adapters over these operators, so existing callers keep
// working while new code can consume batches without materializing
// anything.
package exec

import (
	"sync"
	"sync/atomic"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/hyperjoin"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
)

// DefaultBatchSize is the row capacity of pipeline batches. 1024 rows
// keeps a batch of pointers well inside L2 while amortizing channel and
// interface-call overhead across the chunk.
const DefaultBatchSize = 1024

// Batch is a fixed-capacity chunk of rows flowing between operators.
// A batch received from Next is owned by the caller until it calls
// Release; the rows are immutable and must not be mutated.
//
// Rows come in two lifetimes, reported by OwnsRows: view rows (scans,
// sources) reference storage that outlives the batch, while owned rows
// (join outputs) are carved from the batch's recycled value arena and
// die at Release. Consumers that retain rows past Release must copy
// owned rows first — Collect does. This is what lets a streaming join
// produce zero garbage per row: the output arena cycles through the
// batch pool instead of through the garbage collector.
type Batch struct {
	rows []tuple.Tuple
	// vals is the batch-owned value arena AppendConcat carves output
	// rows from; it is recycled (uncleared) with the batch.
	vals tuple.Tuple
	// cols is the batch's columnar payload (typed vectors, validity
	// bitmaps, selection vector — see tuple.Columns), live while colsOn
	// is set. Columnar batches keep rows empty until a consumer asks for
	// the row view; Rows() then materializes once and flips colsOn off.
	// The Columns value is retained across pool cycles so its vectors
	// recycle like the row arena does.
	cols   *tuple.Columns
	colsOn bool
	// pooled marks batches whose backing array the pool owns. Batches
	// that alias caller-provided slices (Source views) are never
	// recycled, so releasing them cannot corrupt the source rows.
	pooled bool
	// owned marks batches whose rows live in vals (see OwnsRows).
	owned bool
}

// Rows returns the batch's rows. The slice is only valid until Release;
// so are the rows themselves when OwnsRows reports true.
//
// On a columnar batch this is the adapter seam: the first call boxes
// the selected rows into the batch's value arena (string payload bytes
// are shared with the vectors' backing, never copied — only headers
// move) and the batch behaves as an owned-row batch from then on. Cold
// operators — Collect, sorts — keep working unchanged; hot operators
// ask for Cols() first and never pay this.
func (b *Batch) Rows() []tuple.Tuple {
	if b.colsOn {
		b.materializeRows()
	}
	return b.rows
}

// Cols returns the batch's live columnar payload, nil for row batches
// (including columnar batches already materialized through Rows).
func (b *Batch) Cols() *tuple.Columns {
	if b.colsOn {
		return b.cols
	}
	return nil
}

// OwnsRows reports whether the rows are carved from the batch's own
// storage and become invalid at Release. Consumers that retain such
// rows must copy them first.
func (b *Batch) OwnsRows() bool { return b.owned }

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if b.colsOn {
		return b.cols.Len()
	}
	return len(b.rows)
}

// Full reports whether the batch reached its capacity.
func (b *Batch) Full() bool {
	if b.colsOn {
		return b.cols.Len() >= DefaultBatchSize
	}
	return len(b.rows) == cap(b.rows)
}

// Append adds a row. Appending beyond capacity grows the batch rather
// than failing; operators check Full() to keep batches fixed-size. A
// pooled batch that grows is un-pooled first, so the pool never
// accumulates oversized backing arrays. Appending a row to a columnar
// batch materializes its row view first.
func (b *Batch) Append(t tuple.Tuple) {
	if b.colsOn {
		b.materializeRows()
	}
	if b.pooled && len(b.rows) == cap(b.rows) {
		b.pooled = false
	}
	b.rows = append(b.rows, t)
}

// AppendColRow adds one row to a columnar batch's vectors — the
// transpose step scans and columnar sources use. Mirroring Append's
// rule for row batches, growing the vectors past the standard batch
// capacity un-pools the batch so the pool never accumulates oversized
// vector storage (the columnar pool-poisoning defense; string payloads
// are shared headers, so vectors never balloon on payload bytes).
func (b *Batch) AppendColRow(t tuple.Tuple) {
	if b.pooled && b.cols.FullLen() >= DefaultBatchSize {
		b.pooled = false
	}
	b.cols.AppendRow(t)
}

// AppendColRowFrom appends physical row i of src to a columnar batch's
// vectors — flat copies, string headers shared. Same un-pool rule as
// AppendColRow.
func (b *Batch) AppendColRowFrom(src *tuple.Columns, i int) {
	if b.pooled && b.cols.FullLen() >= DefaultBatchSize {
		b.pooled = false
	}
	b.cols.AppendRowFrom(src, i)
}

// AppendColGather bulk-appends the listed physical rows of src to a
// columnar batch — one monomorphic gather loop per column, the exchange
// repack path. Same un-pool rule as AppendColRow.
func (b *Batch) AppendColGather(src *tuple.Columns, idxs []int32) {
	if b.pooled && b.cols.FullLen()+len(idxs) > DefaultBatchSize {
		b.pooled = false
	}
	for ci, ncols := 0, src.NumCols(); ci < ncols; ci++ {
		b.cols.AppendColumnGather(ci, src, ci, idxs)
	}
	b.cols.AddRows(len(idxs))
}

// AppendColRows bulk-transposes rows into a columnar batch — the scan
// path's block-at-a-time form of AppendColRow, with the same un-pool
// rule for growth past the standard capacity.
func (b *Batch) AppendColRows(rows []tuple.Tuple) {
	if b.pooled && b.cols.FullLen()+len(rows) > DefaultBatchSize {
		b.pooled = false
	}
	b.cols.AppendRows(rows)
}

// materializeRows converts the columnar payload into owned rows, once.
func (b *Batch) materializeRows() {
	c := b.cols
	b.colsOn = false
	b.owned = true
	n := c.Len()
	if n == 0 {
		return
	}
	ncols := c.NumCols()
	if need := n * ncols; cap(b.vals)-len(b.vals) < need {
		b.vals = make(tuple.Tuple, 0, need)
	}
	if b.pooled && n > cap(b.rows) {
		b.pooled = false
	}
	sel := c.Sel()
	for k := 0; k < n; k++ {
		i := k
		if sel != nil {
			i = int(sel[k])
		}
		off := len(b.vals)
		for ci := 0; ci < ncols; ci++ {
			b.vals = append(b.vals, c.Value(ci, i))
		}
		b.rows = append(b.rows, b.vals[off:off+ncols:off+ncols])
	}
}

// AppendConcat carves x‖y into the batch's own value arena and appends
// the row — the allocation-free emit path for join outputs. The arena
// grows at most once per batch fill (sized for the remaining row
// capacity) and is recycled with the batch; rows appended this way are
// only valid until Release (see OwnsRows).
func (b *Batch) AppendConcat(x, y tuple.Tuple) {
	b.owned = true
	n := len(x) + len(y)
	if n == 0 {
		b.Append(tuple.Tuple{})
		return
	}
	if cap(b.vals)-len(b.vals) < n {
		// Earlier rows keep the outgrown array alive until Release; the
		// new array is sized so a uniform-width fill never regrows.
		need := n * (cap(b.rows) - len(b.rows))
		if need < n {
			need = n
		}
		b.vals = make(tuple.Tuple, 0, need)
	}
	off := len(b.vals)
	b.vals = append(b.vals, x...)
	b.vals = append(b.vals, y...)
	b.Append(b.vals[off : off+n : off+n])
}

var batchPool = sync.Pool{
	New: func() any {
		return &Batch{rows: make([]tuple.Tuple, 0, DefaultBatchSize), pooled: true}
	},
}

// NewBatch returns an empty pooled batch with DefaultBatchSize capacity.
func NewBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.rows = b.rows[:0]
	b.owned = false
	b.colsOn = false
	return b
}

// NewColBatch returns an empty pooled batch in columnar form with ncols
// columns. Columnar batches always own their storage (vectors and
// string arenas die at Release), so OwnsRows reports true from birth.
func NewColBatch(ncols int) *Batch {
	b := batchPool.Get().(*Batch)
	b.rows = b.rows[:0]
	b.owned = true
	if b.cols == nil {
		b.cols = tuple.NewColumns(ncols)
	} else {
		b.cols.Reset(ncols)
	}
	b.colsOn = true
	return b
}

// Release returns a pooled batch's backing arrays (rows and value
// arena) for reuse. Safe to call on view batches (no-op) and required
// etiquette for every batch a consumer finishes with — Collect and
// Count do it automatically. The arena is truncated, not cleared: stale
// values linger until overwritten, a bounded retention the zero-GC emit
// path deliberately trades for.
func (b *Batch) Release() {
	if b.pooled {
		b.vals = b.vals[:0]
		b.colsOn = false
		batchPool.Put(b)
	}
}

// Operator is a pull-based batch stream — the pipeline analogue of the
// Volcano iterator, widened from row-at-a-time to batch-at-a-time.
//
// Contract: Open must be called once before the first Next; Next returns
// (nil, nil) at end of stream and must not be called again after that;
// Close must be called exactly once, is valid after a partial drain, and
// releases any worker goroutines the operator started. Ownership of a
// returned batch passes to the caller, who should Release it when done.
type Operator interface {
	Open() error
	Next() (*Batch, error)
	Close() error
}

// Collect drains an operator into a materialized row slice — the bridge
// from the pipelined world back to the legacy slice APIs. Rows owned by
// their batch (join outputs) are copied out through an arena before the
// batch is released; view rows are referenced directly.
func Collect(op Operator) ([]tuple.Tuple, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []tuple.Tuple
	var arena tuple.Arena
	for {
		b, err := op.Next()
		if err != nil {
			return out, err
		}
		if b == nil {
			return out, nil
		}
		rows := b.Rows()
		if b.OwnsRows() {
			for _, r := range rows {
				out = append(out, arena.Concat(r, nil))
			}
		} else {
			out = append(out, rows...)
		}
		b.Release()
	}
}

// MustCollect is Collect for callers with no error path — the legacy
// slice-returning adapters. None of the built-in operators can fail
// today, but future ones (spill-to-disk joins, remote shuffles) can;
// panicking here is loud, whereas dropping the error would silently
// truncate query results.
func MustCollect(op Operator) []tuple.Tuple {
	rows, err := Collect(op)
	if err != nil {
		panic("exec: pipeline error in materializing adapter: " + err.Error())
	}
	return rows
}

// Count drains an operator and returns its row count without
// materializing any output — what a pipelined consumer that aggregates
// in place pays.
func Count(op Operator) (int, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	n := 0
	for {
		b, err := op.Next()
		if err != nil {
			return n, err
		}
		if b == nil {
			return n, nil
		}
		n += b.Len()
		b.Release()
	}
}

// Source adapts an in-memory row slice into an Operator. Batches are
// zero-copy views of the slice (see tuple.Views), so a Source costs no
// allocation beyond the view headers.
type Source struct {
	views [][]tuple.Tuple
	pos   int
}

// NewSource builds a source over rows.
func NewSource(rows []tuple.Tuple) *Source {
	return &Source{views: tuple.Views(rows, DefaultBatchSize)}
}

// Open resets the source to the first batch.
func (s *Source) Open() error { s.pos = 0; return nil }

// Next returns the next view batch.
func (s *Source) Next() (*Batch, error) {
	if s.pos >= len(s.views) {
		return nil, nil
	}
	b := &Batch{rows: s.views[s.pos]}
	s.pos++
	return b, nil
}

// Close is a no-op for sources.
func (s *Source) Close() error { return nil }

// ColSource adapts an in-memory row slice into a columnar Operator:
// each batch is a fresh transpose of up to DefaultBatchSize rows — the
// in-memory analogue of the columnar scan path. Tests and the
// differential harness use it to drive the vectorized operators with
// columnar inputs directly.
type ColSource struct {
	views [][]tuple.Tuple
	pos   int
}

// NewColSource builds a columnar source over rows.
func NewColSource(rows []tuple.Tuple) *ColSource {
	return &ColSource{views: tuple.Views(rows, DefaultBatchSize)}
}

// Open resets the source to the first batch.
func (s *ColSource) Open() error { s.pos = 0; return nil }

// Next transposes and returns the next batch.
func (s *ColSource) Next() (*Batch, error) {
	if s.pos >= len(s.views) {
		return nil, nil
	}
	rows := s.views[s.pos]
	s.pos++
	ncols := 0
	if len(rows) > 0 {
		ncols = len(rows[0])
	}
	b := NewColBatch(ncols)
	b.AppendColRows(rows)
	return b, nil
}

// Close is a no-op for sources.
func (s *ColSource) Close() error { return nil }

// ScanOp returns an operator that reads the refs' blocks on the
// executor's bounded worker pool, filters by the predicate conjunction,
// and streams matching rows in batches. Block reads are metered as
// scans; vanished blocks (concurrent repartition) are skipped, matching
// ScanRefs. Batch order across blocks is nondeterministic when more
// than one worker runs.
func (e *Executor) ScanOp(refs []core.BlockRef, preds []predicate.Predicate) Operator {
	return &scanOp{e: e, refs: refs, preds: preds}
}

// TableScanOp returns a scan operator over every live tree of a table
// with predicate and zone-map pruning (or none under NoPrune) — the
// pipelined form of Scan.
func (e *Executor) TableScanOp(tbl *core.Table, preds []predicate.Predicate) Operator {
	return e.ScanOp(e.TableRefs(tbl, preds), preds)
}

// TableRefs resolves a table's scan set under the executor's pruning
// mode — the blocks TableScanOp will read. The planner prices
// strategies and picks build sides from the same set, so cost estimates
// always match what a scan would actually touch.
func (e *Executor) TableRefs(tbl *core.Table, preds []predicate.Predicate) []core.BlockRef {
	if e.NoPrune {
		return tbl.AllRefs(nil)
	}
	return tbl.AllRefs(preds)
}

type scanOp struct {
	e     *Executor
	refs  []core.BlockRef
	preds []predicate.Predicate

	next  atomic.Int64
	empty bool
	out   chan *Batch
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
	errMu sync.Mutex
	err   error // first worker error (cancellation); published before out closes
}

// setErr records the first worker error; Next surfaces it once the
// output channel closes (the workers have all exited by then, so the
// write happens-before the read).
func (s *scanOp) setErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

func (s *scanOp) Open() error {
	if len(s.refs) == 0 {
		// Predicate pruning often eliminates every block; skip the pool.
		s.empty = true
		return nil
	}
	w := s.e.workers()
	if w > len(s.refs) {
		w = len(s.refs)
	}
	if w < 1 {
		w = 1
	}
	// The channel buffer bounds how far scans run ahead of the consumer:
	// at most ~2 batches per worker are in flight, the pipelined
	// equivalent of the old code's single giant result slice.
	s.out = make(chan *Batch, 2*w)
	s.done = make(chan struct{})
	for i := 0; i < w; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	go func() {
		s.wg.Wait()
		close(s.out)
	}()
	return nil
}

func (s *scanOp) worker() {
	defer s.wg.Done()
	n := s.e.Store.NumNodes()
	if n < 1 {
		n = 1
	}
	var match []tuple.Tuple // per-worker scratch for predicate survivors
	for {
		if cerr := s.e.ctxErr(); cerr != nil {
			s.setErr(cerr)
			return
		}
		idx := int(s.next.Add(1) - 1)
		if idx >= len(s.refs) {
			return
		}
		ref := s.refs[idx]
		node := s.e.taskNode(ref.Path)
		if s.e.RoundRobin {
			node = dfs.NodeID(idx % n)
		}
		blk, local, err := s.e.Store.GetBlock(ref.Path, node)
		if err != nil {
			continue // vanished (concurrent repartition): rows moved elsewhere
		}
		s.e.Meter.AddScan(blk.Len(), local)
		if !s.e.DisableColumnar && len(blk.Tuples) > 0 {
			// Columnar emit: transpose matching rows into typed vectors a
			// block at a time (Columns.AppendRows hoists kind dispatch out
			// of the per-value loop). Repeated string payloads dedup
			// against the previous row in the column arena
			// (ColVec.appendStr), so runs of TPC-H flags/modes share bytes
			// across the whole batch.
			rows := blk.Tuples
			if len(s.preds) > 0 {
				match = match[:0]
				for _, r := range rows {
					if predicate.MatchesAll(s.preds, r) {
						match = append(match, r)
					}
				}
				rows = match
			}
			ncols := len(blk.Tuples[0])
			b := NewColBatch(ncols)
			for len(rows) > 0 {
				take := DefaultBatchSize - b.Len()
				if take > len(rows) {
					take = len(rows)
				}
				b.AppendColRows(rows[:take])
				rows = rows[take:]
				if b.Full() {
					if !s.send(b) {
						return
					}
					b = NewColBatch(ncols)
				}
			}
			if b.Len() > 0 {
				if !s.send(b) {
					return
				}
			} else {
				b.Release()
			}
			continue
		}
		b := NewBatch()
		for _, r := range blk.Tuples {
			if predicate.MatchesAll(s.preds, r) {
				b.Append(r)
				if b.Full() {
					if !s.send(b) {
						return
					}
					b = NewBatch()
				}
			}
		}
		if b.Len() > 0 {
			if !s.send(b) {
				return
			}
		} else {
			b.Release()
		}
	}
}

func (s *scanOp) send(b *Batch) bool {
	select {
	case s.out <- b:
		return true
	case <-s.done:
		b.Release()
		return false
	}
}

func (s *scanOp) Next() (*Batch, error) {
	if s.empty {
		return nil, nil
	}
	b, ok := <-s.out
	if !ok {
		s.errMu.Lock()
		err := s.err
		s.errMu.Unlock()
		return nil, err
	}
	return b, nil
}

func (s *scanOp) Close() error {
	if s.empty {
		return nil
	}
	s.once.Do(func() {
		close(s.done)
		// Drain so no worker stays blocked on send; the closer goroutine
		// closes out once every worker exits.
		for b := range s.out {
			b.Release()
		}
	})
	return nil
}

// Where wraps an operator with an extra predicate conjunction, repacking
// surviving rows into fresh batches. Scans push predicates down already;
// Where exists for filters that only apply mid-pipeline (e.g. on join
// outputs).
func Where(child Operator, preds []predicate.Predicate) Operator {
	return &filterOp{child: child, preds: preds}
}

type filterOp struct {
	child   Operator
	preds   []predicate.Predicate
	scratch tuple.Tuple
}

func (f *filterOp) Open() error { return f.child.Open() }

func (f *filterOp) Next() (*Batch, error) {
	for {
		in, err := f.child.Next()
		if err != nil || in == nil {
			return nil, err
		}
		if cb := in.Cols(); cb != nil {
			// Columnar batch: refine the selection vector in place — no
			// row moves, no new batch. Rejected rows just leave the
			// selection; downstream operators iterate what survives.
			cb.FilterSel(func(i int) bool {
				f.scratch = cb.RowTo(f.scratch, i)
				return predicate.MatchesAll(f.preds, f.scratch)
			})
			if cb.Len() > 0 {
				return in, nil
			}
			in.Release()
			continue
		}
		out := NewBatch()
		owned := in.OwnsRows()
		for _, r := range in.Rows() {
			if predicate.MatchesAll(f.preds, r) {
				if owned {
					// The child batch's rows die when it is released;
					// carve survivors into this batch's own arena.
					out.AppendConcat(r, nil)
				} else {
					out.Append(r)
				}
			}
		}
		in.Release()
		if out.Len() > 0 {
			return out, nil
		}
		out.Release()
	}
}

func (f *filterOp) Close() error { return f.child.Close() }

// JoinCharge selects how a join operator meters its input rows.
type JoinCharge int

const (
	// ChargeNone meters nothing — callers meter the I/O that produced
	// the inputs (HashJoinRows semantics).
	ChargeNone JoinCharge = iota
	// ChargeShuffle charges the CSJ shuffle factor per row (eq. 1: each
	// record is read, partitioned and written, and read again).
	ChargeShuffle
	// ChargeIntermediate charges the cheaper pipelined-shuffle factor
	// per row (§4.3's shuffle of materialized intermediates).
	ChargeIntermediate
)

// JoinOptions configures a pipelined hash join.
type JoinOptions struct {
	// BuildIsRight emits output rows as probe‖build instead of
	// build‖probe, so callers can build on either side while keeping
	// (left, right) column order.
	BuildIsRight bool
	// BuildCharge / ProbeCharge meter the respective input's rows as
	// they stream through the join.
	BuildCharge, ProbeCharge JoinCharge
	// BuildRowsEst is the planner's build-side cardinality estimate
	// (zone-map row counts); 0 means unknown. It sizes the radix
	// fan-out (pickRadixBits) and the Bloom filters of demoted
	// partitions. Estimates steer only performance — a wrong one costs
	// extra recursion or filter saturation, never correctness.
	BuildRowsEst int
	// DisableBloom turns off the Bloom filters on demoted partitions
	// (every probe row of a spilled partition is then written, as in
	// the classic Grace join) — the A/B knob the -spill bench and
	// difftest use to isolate the filter's effect.
	DisableBloom bool
}

// Radix partitioning constants for the parallel hash join: the top
// radix bits of a key's Hash64 pick its partition, leaving the low
// bits (which index the partition table's buckets) uniform within each
// partition. The default 32 partitions oversplit the default worker
// pools (≤ ~10 workers) for load balance while keeping per-partition
// tables cache-friendly; joins carrying a build-size estimate pick
// their own fan-out in [minJoinRadixBits, maxJoinRadixBits] instead
// (pickRadixBits).
const (
	joinRadixBits    = 5
	joinPartitions   = 1 << joinRadixBits
	minJoinRadixBits = 2
	maxJoinRadixBits = 8
)

// pickRadixBits selects the join's radix fan-out from the planner's
// build-side estimate. Without an estimate the fixed default stands.
// With one, a budgeted join targets partitions of about one eighth of
// the memory budget: demotion then frees memory in fine steps (the
// resident set can fill close to the limit before another victim goes
// to disk), and second-pass loads are small enough that several run
// concurrently under the byte semaphore instead of serializing on one
// budget-sized load. Unbudgeted joins scale by rows alone (~16k rows
// per partition). The clamp keeps any estimate error inside one extra
// recursion level.
func pickRadixBits(estRows int, limit int64) int {
	if estRows <= 0 {
		return joinRadixBits
	}
	var target int
	if limit > 0 {
		target = int(8 * int64(estRows) * estRowBytes / limit)
	} else {
		target = estRows >> 14
	}
	bits := minJoinRadixBits
	for 1<<bits < target && bits < maxJoinRadixBits {
		bits++
	}
	return bits
}

// estRowBytes approximates a row's in-memory footprint when only a row
// count is known. Deliberately generous: real rows carry strings (TPC-H
// orders average ~300 bytes), and the two failure directions are not
// symmetric — overestimating splits a small build a little finer, which
// costs almost nothing, while underestimating yields partitions that
// dwarf the budget and a second pass with no load parallelism.
const estRowBytes = 256

// ChargeRows wraps an operator so every row flowing through it is
// metered at the given rate — the virtual-shuffle accounting point. The
// join itself no longer calls Meter.Add* anywhere: in centralized mode
// its inputs are wrapped here, and in distributed mode the Exchange
// operators meter the rows that physically move instead.
func ChargeRows(child Operator, m *cluster.Meter, charge JoinCharge) Operator {
	if charge == ChargeNone {
		return child
	}
	return &chargeOp{child: child, m: m, charge: charge}
}

type chargeOp struct {
	child  Operator
	m      *cluster.Meter
	charge JoinCharge
}

func (c *chargeOp) Open() error { return c.child.Open() }

func (c *chargeOp) Next() (*Batch, error) {
	b, err := c.child.Next()
	if b != nil {
		switch c.charge {
		case ChargeShuffle:
			c.m.AddShuffle(b.Len())
		case ChargeIntermediate:
			c.m.AddIntermediateShuffle(b.Len())
		}
	}
	return b, err
}

func (c *chargeOp) Close() error { return c.child.Close() }

// JoinOp returns a pipelined, partition-parallel hash join: Open drains
// the build input, radix-partitioning rows by key hash across the
// executor's worker pool and sealing one joinTable per partition; Next
// then streams probe batches through the tables, with probe workers
// emitting concatenated match rows into partition-local output batches
// (per-worker arenas, no per-row allocation). Result rows are metered
// once at end of stream. The probe side is never materialized — this is
// where the pipeline beats the slice APIs on wide joins. Output batch
// order is nondeterministic when more than one worker runs.
//
// The input-charge options are applied by wrapping the inputs in
// ChargeRows; the join body itself never touches the meter beyond its
// result-row count.
func (e *Executor) JoinOp(build Operator, buildCol int, probe Operator, probeCol int, opts JoinOptions) Operator {
	build = ChargeRows(build, e.Meter, opts.BuildCharge)
	probe = ChargeRows(probe, e.Meter, opts.ProbeCharge)
	bits := pickRadixBits(opts.BuildRowsEst, e.Mem.Limit())
	return &hashJoinOp{
		e: e, build: build, probe: probe, bCol: buildCol, pCol: probeCol, opts: opts,
		radixBits: bits, radixShift: uint(64 - bits), nParts: 1 << bits,
		parts: make([]*joinTable, 1<<bits),
	}
}

type hashJoinOp struct {
	e            *Executor
	build, probe Operator
	bCol, pCol   int
	opts         JoinOptions

	// radixBits/radixShift/nParts are the join's dynamic radix fan-out,
	// fixed at construction (pickRadixBits) so build, probe, and spill
	// recursion all agree on the partition function.
	radixBits  int
	radixShift uint
	nParts     int

	parts []*joinTable
	// cbuild is the columnar build store + per-partition hash tables,
	// non-nil exactly when the columnar path is on (coljoin.go); parts
	// stays nil then.
	cbuild    *colBuild
	buildRows int
	// spill is the hybrid-hash-join state, non-nil exactly when the
	// executor carries a MemBudget; hasSpilled is frozen after the build
	// phase so probe routing never races a demotion.
	spill      *joinSpill
	hasSpilled bool

	in      chan *Batch // probe batches awaiting a worker
	out     chan *Batch // output batches awaiting the consumer
	done    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
	results atomic.Int64
	perr    error // probe-side error; published before in closes
	werrMu  sync.Mutex
	werr    error       // first worker/spill error; published before out closes
	failed  atomic.Bool // workers stop doing real work once set
	metered bool
}

// fail records the first worker or spill error; the stream surfaces it
// from Next once the output channel closes.
func (j *hashJoinOp) fail(err error) {
	j.werrMu.Lock()
	if j.werr == nil {
		j.werr = err
	}
	j.werrMu.Unlock()
	j.failed.Store(true)
}

func (j *hashJoinOp) workerCount() int {
	w := j.e.workers()
	if w < 1 {
		w = 1
	}
	return w
}

func (j *hashJoinOp) Open() error {
	if j.e.Mem != nil {
		j.spill = newJoinSpill(j)
	}
	if err := j.build.Open(); err != nil {
		return err
	}
	if err := j.buildTables(); err != nil {
		// Callers need not Close after a failed Open (Collect doesn't);
		// release spill state here. cleanup is idempotent, so callers
		// that do Close anyway (Gather) stay safe.
		if j.spill != nil {
			j.spill.cleanup()
		}
		return err
	}
	if j.spill != nil {
		j.hasSpilled = j.spill.anySpilled()
	}
	if err := j.probe.Open(); err != nil {
		if j.spill != nil {
			j.spill.cleanup()
		}
		return err
	}
	w := j.workerCount()
	j.in = make(chan *Batch, w)
	// The out buffer bounds how far probe workers run ahead of the
	// consumer, like the scan operator's bounded channel.
	j.out = make(chan *Batch, 2*w)
	j.done = make(chan struct{})
	for i := 0; i < w; i++ {
		j.wg.Add(1)
		go j.probeWorker(i)
	}
	go func() {
		j.wg.Wait()
		// Every probe worker has exited (their spilled probe runs are
		// sealed), so the second pass can join the demoted partitions
		// before the stream ends.
		if j.hasSpilled && !j.failed.Load() {
			j.secondPass()
		}
		close(j.out)
	}()
	go j.dispatchProbe()
	return nil
}

// buildTables drains the build input, partitioning rows by hash radix
// across the worker pool (each worker owns one joinBuf per partition, so
// no locks), then seals one joinTable per partition in parallel.
//
// Under a memory budget each retained row also charges the MemBudget;
// on pressure the largest partition is demoted (joinSpill.pressure) and
// its rows — resident and future — stream to run files instead, each
// worker flushing its own share locklessly (spill.go).
func (j *hashJoinOp) buildTables() error {
	if !j.e.DisableColumnar {
		return j.buildTablesCol()
	}
	w := j.workerCount()
	bufs := make([][]joinBuf, w)
	in := make(chan *Batch, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		bufs[i] = make([]joinBuf, j.nParts)
		wg.Add(1)
		go func(id int, my []joinBuf) {
			defer wg.Done()
			var arena tuple.Arena
			sp := j.spill
			var spw *partSpiller
			myBytes := make([]int64, j.nParts)
			if sp != nil {
				spw = sp.newPartSpiller(id, false)
			}
			for b := range in {
				if cerr := j.e.ctxErr(); cerr != nil {
					j.fail(cerr)
				}
				if j.failed.Load() {
					b.Release()
					continue // keep draining so the feeder never blocks
				}
				owned := b.OwnsRows()
				for _, r := range b.Rows() {
					key := r[j.bCol]
					if key.IsNull() {
						continue // NULL never equals NULL in a join
					}
					h := key.Hash64()
					p := int(h >> j.radixShift)
					if sp != nil && sp.isSpilled(p) {
						// Demoted partition: flush this worker's resident
						// rows first (table and run file stay disjoint),
						// then the new row goes straight to disk (copied
						// when the batch owns it — those rows die at
						// Release).
						if err := spw.evict(p, &my[p], &myBytes[p]); err != nil {
							j.fail(err)
							break
						}
						if err := spw.write(p, h, r, owned); err != nil {
							j.fail(err)
							break
						}
						continue
					}
					if owned {
						// The batch's rows die at Release (a join feeding
						// this join's build side); copy what the table
						// retains.
						r = arena.Concat(r, nil)
					}
					my[p].add(h, r)
					if sp != nil {
						n := int64(r.MemBytes())
						myBytes[p] += n
						sp.noteBuildRow(p, h, n)
						if sp.charge(n) {
							sp.pressure()
						}
					}
				}
				b.Release()
			}
			if spw != nil {
				// Final sweep: partitions demoted after this worker last
				// touched them still hold resident rows here.
				for p := range my {
					if sp.isSpilled(p) {
						if err := spw.evict(p, &my[p], &myBytes[p]); err != nil {
							j.fail(err)
							break
						}
					}
				}
				if err := spw.finish(); err != nil {
					j.fail(err)
				}
			}
		}(i, bufs[i])
	}
	// A single goroutine owns build.Next (operators need not be
	// concurrency-safe); input charging happens in the ChargeRows
	// wrappers JoinOp installed, not here.
	var err error
	for {
		if cerr := j.e.ctxErr(); cerr != nil {
			j.fail(cerr) // workers drop in-flight batches instead of retaining rows
			err = cerr
			break
		}
		b, berr := j.build.Next()
		if berr != nil {
			err = berr
			break
		}
		if b == nil {
			break
		}
		in <- b
	}
	close(in)
	wg.Wait()
	if cerr := j.build.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		j.werrMu.Lock()
		err = j.werr
		j.werrMu.Unlock()
	}
	if err != nil {
		return err
	}
	if j.spill != nil {
		// A partition demoted after some worker already finished leaves
		// rows stranded in that worker's buffer; flush every demoted
		// partition's leftovers now that the spilled set is frozen and
		// no worker is running.
		if err := j.spill.flushLeftovers(bufs); err != nil {
			return err
		}
	}
	// Seal tables: partitions are handed to workers via an atomic
	// counter; each table merges the same partition's buffer from every
	// build worker. Demoted partitions seal empty — their rows live in
	// run files and join in the second pass. Buckets are raised toward
	// the planner's per-partition estimate so skewed partitions seal at
	// load factor ≤ 1 without a hash-time penalty on their siblings.
	perHint := 0
	if j.opts.BuildRowsEst > 0 {
		perHint = j.opts.BuildRowsEst >> uint(j.radixBits)
	}
	var next atomic.Int64
	var swg sync.WaitGroup
	for i := 0; i < w; i++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			srcs := make([]*joinBuf, w)
			for {
				p := int(next.Add(1) - 1)
				if p >= j.nParts {
					return
				}
				if j.spill != nil && j.spill.isSpilled(p) {
					j.parts[p] = newJoinTable(j.bCol)
					continue
				}
				for wi := range bufs {
					srcs[wi] = &bufs[wi][p]
				}
				j.parts[p] = newJoinTableHint(j.bCol, perHint, srcs...)
			}
		}()
	}
	swg.Wait()
	for _, t := range j.parts {
		j.buildRows += t.len()
	}
	return nil
}

// dispatchProbe feeds probe batches to the workers. A single goroutine
// owns probe.Next; even with an empty hash table the probe side drains
// so its rows pass the ChargeRows wrapper and are metered, matching
// ShuffleJoinRows on an empty side.
func (j *hashJoinOp) dispatchProbe() {
	defer close(j.in)
	for {
		if cerr := j.e.ctxErr(); cerr != nil {
			// fail too, so workers stop joining and the closer goroutine
			// skips the second pass.
			j.fail(cerr)
			j.perr = cerr
			return
		}
		b, err := j.probe.Next()
		if err != nil {
			j.perr = err
			return
		}
		if b == nil {
			return
		}
		select {
		case j.in <- b:
		case <-j.done:
			b.Release()
			return
		}
	}
}

// probeWorker streams probe batches through the partition tables,
// concatenating matches into a partition-local output batch's own value
// arena (AppendConcat — no per-row allocation, and the arena recycles
// through the batch pool). The worker owns cur exclusively until it
// rotates a full batch into the shared out channel, so output batches
// are never written by two goroutines.
func (j *hashJoinOp) probeWorker(id int) {
	defer j.wg.Done()
	var cur *Batch
	var spw *partSpiller
	if j.hasSpilled {
		spw = j.spill.newPartSpiller(id, true)
	}
	if j.cbuild != nil {
		j.probeWorkerCol(spw)
		return
	}
	skipped := int64(0)
	for pb := range j.in {
		if cerr := j.e.ctxErr(); cerr != nil {
			j.fail(cerr)
		}
		if (j.buildRows == 0 && spw == nil) || j.failed.Load() {
			pb.Release() // metered by the dispatcher; nothing can match
			continue
		}
		powned := pb.OwnsRows()
		for _, p := range pb.Rows() {
			key := p[j.pCol]
			if key.IsNull() {
				continue // NULL never equals NULL in a join
			}
			h := key.Hash64()
			part := int(h >> j.radixShift)
			if spw != nil && j.spill.isSpilled(part) {
				// The partition's build rows are on disk. Ask its Bloom
				// filter first: a negative is exact (the key matches no
				// build row), so the probe row needs no spill round-trip
				// at all. Otherwise park it beside the build runs for
				// the second pass (copied when the batch owns it).
				if bf := j.spill.bloomAt(part); bf != nil && !bf.mayContain(h) {
					skipped++
					continue
				}
				if err := spw.write(part, h, p, powned); err != nil {
					j.fail(err)
					break
				}
				continue
			}
			it := j.parts[part].lookup(h, key)
			for {
				b, ok := it.next()
				if !ok {
					break
				}
				if cur == nil {
					cur = NewBatch()
				}
				if j.opts.BuildIsRight {
					cur.AppendConcat(p, b)
				} else {
					cur.AppendConcat(b, p)
				}
				if cur.Full() {
					if !j.send(cur) {
						pb.Release()
						return
					}
					cur = nil
				}
			}
		}
		pb.Release()
	}
	if spw != nil {
		if skipped > 0 {
			j.spill.skipped.Add(skipped)
		}
		if err := spw.finish(); err != nil {
			j.fail(err)
		}
	}
	if cur != nil {
		if cur.Len() > 0 {
			j.send(cur)
		} else {
			cur.Release()
		}
	}
}

func (j *hashJoinOp) send(b *Batch) bool {
	j.results.Add(int64(b.Len()))
	select {
	case j.out <- b:
		return true
	case <-j.done:
		b.Release()
		return false
	}
}

func (j *hashJoinOp) Next() (*Batch, error) {
	b, ok := <-j.out
	if !ok {
		// out closes only after every worker exits, which happens after
		// the dispatcher published any probe error and closed in, and
		// after any worker/spill error landed in werr.
		if j.perr != nil {
			return nil, j.perr
		}
		j.werrMu.Lock()
		werr := j.werr
		j.werrMu.Unlock()
		if werr != nil {
			return nil, werr
		}
		if !j.metered {
			j.metered = true
			j.e.Meter.AddResultRows(int(j.results.Load()))
			if j.spill != nil {
				if n := j.spill.skipped.Load(); n > 0 {
					j.e.Meter.AddSpillSkip(int(n))
				}
			}
		}
		return nil, nil
	}
	return b, nil
}

func (j *hashJoinOp) Close() error {
	j.once.Do(func() {
		if j.done != nil {
			close(j.done)
			// Drain so no worker stays blocked on send; the closer
			// goroutine closes out once every worker exits.
			for b := range j.out {
				b.Release()
			}
		}
		if j.spill != nil {
			// The out drain above only returns after the closer goroutine
			// (and with it the second pass) has exited, so nothing is
			// reading the run files any more.
			j.spill.cleanup()
		}
	})
	j.cbuild = nil
	for i := range j.parts {
		j.parts[i] = nil
	}
	return j.probe.Close()
}

// HyperJoinOp is the streaming form of HyperJoin: Open computes the
// block-read schedule (§4.1) and starts the bounded worker pool; Next
// streams joined batches as groups complete. Stats is valid once the
// stream is drained.
type HyperJoinOp struct {
	e            *Executor
	rRefs, sRefs []core.BlockRef
	rPreds       []predicate.Predicate
	sPreds       []predicate.Predicate
	rCol, sCol   int
	budget       int

	plan    HyperPlan
	stats   HyperStats
	statsMu sync.Mutex
	results atomic.Int64
	empty   bool
	metered bool
	errMu   sync.Mutex
	err     error // first worker error (cancellation); published before out closes

	next atomic.Int64
	out  chan *Batch
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewHyperJoinOp builds the streaming hyper-join over pre-pruned build
// (R) and probe (S) refs.
func (e *Executor) NewHyperJoinOp(rRefs []core.BlockRef, rPreds []predicate.Predicate, rCol int,
	sRefs []core.BlockRef, sPreds []predicate.Predicate, sCol int, budget int) *HyperJoinOp {
	return &HyperJoinOp{
		e: e, rRefs: rRefs, sRefs: sRefs, rPreds: rPreds, sPreds: sPreds,
		rCol: rCol, sCol: sCol, budget: budget,
	}
}

// Stats reports what the hyper-join did; complete only after Next has
// returned nil (the stream is drained).
func (h *HyperJoinOp) Stats() HyperStats { return h.stats }

func (h *HyperJoinOp) Open() error {
	if len(h.rRefs) == 0 || len(h.sRefs) == 0 {
		h.empty = true
		return nil
	}
	h.plan = PlanHyper(h.rRefs, h.rCol, h.sRefs, h.sCol, h.budget)
	h.stats = HyperStats{
		Groups:       len(h.plan.Grouping),
		SBlocks:      len(h.sRefs),
		GroupingCost: hyperjoin.Cost(h.plan.Grouping, h.plan.V),
	}
	w := h.e.workers()
	if w > len(h.plan.Grouping) {
		w = len(h.plan.Grouping)
	}
	if w < 1 {
		w = 1
	}
	h.out = make(chan *Batch, 2*w)
	h.done = make(chan struct{})
	for i := 0; i < w; i++ {
		h.wg.Add(1)
		go h.worker()
	}
	go func() {
		h.wg.Wait()
		close(h.out)
	}()
	return nil
}

func (h *HyperJoinOp) worker() {
	defer h.wg.Done()
	for {
		if cerr := h.e.ctxErr(); cerr != nil {
			h.errMu.Lock()
			if h.err == nil {
				h.err = cerr
			}
			h.errMu.Unlock()
			return
		}
		gi := int(h.next.Add(1) - 1)
		if gi >= len(h.plan.Grouping) {
			return
		}
		if !h.runGroup(h.plan.Grouping[gi]) {
			return
		}
	}
}

// runGroup executes one group of the §4.1 algorithm: build a join table
// over the group's R blocks, probe it with every overlapping S block,
// streaming output batches. Returns false when the operator was closed.
func (h *HyperJoinOp) runGroup(group []int) bool {
	// The group's task runs where its first R block lives. Block metadata
	// knows the group's exact row count up front, so the table is built
	// incrementally into pre-sized buckets — zero rehash-grows whenever
	// the predicates keep at least half the rows.
	node := h.e.taskNode(h.rRefs[group[0]].Path)
	est := 0
	for _, i := range group {
		est += h.rRefs[i].Meta.Count
	}
	ht := newJoinTableCap(h.rCol, est)
	for _, i := range group {
		blk, local, err := h.e.Store.GetBlock(h.rRefs[i].Path, node)
		if err != nil {
			continue
		}
		h.e.Meter.AddBuild(blk.Len(), local)
		for _, r := range blk.Tuples {
			if predicate.MatchesAll(h.rPreds, r) {
				key := r[h.rCol]
				if key.IsNull() {
					continue // NULL never equals NULL in a join
				}
				ht.insert(key.Hash64(), r)
			}
		}
	}
	// Probe phase: only overlapping S blocks.
	union := hyperjoin.Union(h.plan.V, group)
	probed := 0
	b := NewBatch()
	for _, j := range union.Ones() {
		if j >= len(h.sRefs) {
			break
		}
		blk, local, err := h.e.Store.GetBlock(h.sRefs[j].Path, node)
		if err != nil {
			continue
		}
		h.e.Meter.AddProbe(blk.Len(), local)
		probed++
		for _, s := range blk.Tuples {
			if !predicate.MatchesAll(h.sPreds, s) {
				continue
			}
			key := s[h.sCol]
			if key.IsNull() {
				continue // NULL never equals NULL in a join
			}
			it := ht.lookup(key.Hash64(), key)
			for {
				r, ok := it.next()
				if !ok {
					break
				}
				b.AppendConcat(r, s)
				if b.Full() {
					if !h.send(b) {
						return false
					}
					b = NewBatch()
				}
			}
		}
	}
	h.statsMu.Lock()
	h.stats.BuildBlocks += len(group)
	h.stats.ProbeBlocks += probed
	h.statsMu.Unlock()
	if b.Len() > 0 {
		return h.send(b)
	}
	b.Release()
	return true
}

func (h *HyperJoinOp) send(b *Batch) bool {
	h.results.Add(int64(b.Len()))
	select {
	case h.out <- b:
		return true
	case <-h.done:
		b.Release()
		return false
	}
}

func (h *HyperJoinOp) Next() (*Batch, error) {
	if h.empty {
		return nil, nil
	}
	b, ok := <-h.out
	if !ok {
		h.errMu.Lock()
		err := h.err
		h.errMu.Unlock()
		if err != nil {
			return nil, err
		}
		h.finish()
		return nil, nil
	}
	return b, nil
}

// finish seals the stats once the stream is drained.
func (h *HyperJoinOp) finish() {
	if h.metered {
		return
	}
	h.metered = true
	if h.stats.SBlocks > 0 {
		h.stats.CHyJ = float64(h.stats.ProbeBlocks) / float64(h.stats.SBlocks)
	}
	h.e.Meter.AddResultRows(int(h.results.Load()))
}

func (h *HyperJoinOp) Close() error {
	if h.empty {
		return nil
	}
	h.once.Do(func() {
		close(h.done)
		for b := range h.out {
			b.Release()
		}
	})
	return nil
}
