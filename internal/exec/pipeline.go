// Batched, pipelined execution: the Operator/Batch data plane.
//
// The original executor materialized a full []tuple.Tuple at every
// operator boundary, so a scan→filter→join chain paid O(total rows)
// allocation before the first output row existed. The pipeline API
// streams fixed-capacity Batches through Open/Next/Close operators
// instead: scans read blocks on a bounded worker pool and emit batches
// as they fill, joins build a hash table from their build input and
// then stream probe batches through it. The legacy slice-returning
// Executor methods (Scan, ScanRefs, ShuffleJoin*, HyperJoin) are thin
// Collect() adapters over these operators, so existing callers keep
// working while new code can consume batches without materializing
// anything.
package exec

import (
	"sync"
	"sync/atomic"

	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/hyperjoin"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
)

// DefaultBatchSize is the row capacity of pipeline batches. 1024 rows
// keeps a batch of pointers well inside L2 while amortizing channel and
// interface-call overhead across the chunk.
const DefaultBatchSize = 1024

// Batch is a fixed-capacity chunk of rows flowing between operators.
// A batch received from Next is owned by the caller until it calls
// Release; the rows themselves are shared, immutable views of block or
// join-output tuples and must not be mutated.
type Batch struct {
	rows []tuple.Tuple
	// pooled marks batches whose backing array the pool owns. Batches
	// that alias caller-provided slices (Source views) are never
	// recycled, so releasing them cannot corrupt the source rows.
	pooled bool
}

// Rows returns the batch's rows. The slice is only valid until Release.
func (b *Batch) Rows() []tuple.Tuple { return b.rows }

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return len(b.rows) }

// Full reports whether the batch reached its capacity.
func (b *Batch) Full() bool { return len(b.rows) == cap(b.rows) }

// Append adds a row. Appending beyond capacity grows the batch rather
// than failing; operators check Full() to keep batches fixed-size.
func (b *Batch) Append(t tuple.Tuple) { b.rows = append(b.rows, t) }

var batchPool = sync.Pool{
	New: func() any {
		return &Batch{rows: make([]tuple.Tuple, 0, DefaultBatchSize), pooled: true}
	},
}

// NewBatch returns an empty pooled batch with DefaultBatchSize capacity.
func NewBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.rows = b.rows[:0]
	return b
}

// Release returns a pooled batch's backing array for reuse. Safe to call
// on view batches (no-op) and required etiquette for every batch a
// consumer finishes with — Collect and Count do it automatically.
func (b *Batch) Release() {
	if b.pooled {
		batchPool.Put(b)
	}
}

// Operator is a pull-based batch stream — the pipeline analogue of the
// Volcano iterator, widened from row-at-a-time to batch-at-a-time.
//
// Contract: Open must be called once before the first Next; Next returns
// (nil, nil) at end of stream and must not be called again after that;
// Close must be called exactly once, is valid after a partial drain, and
// releases any worker goroutines the operator started. Ownership of a
// returned batch passes to the caller, who should Release it when done.
type Operator interface {
	Open() error
	Next() (*Batch, error)
	Close() error
}

// Collect drains an operator into a materialized row slice — the bridge
// from the pipelined world back to the legacy slice APIs.
func Collect(op Operator) ([]tuple.Tuple, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []tuple.Tuple
	for {
		b, err := op.Next()
		if err != nil {
			return out, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b.rows...)
		b.Release()
	}
}

// MustCollect is Collect for callers with no error path — the legacy
// slice-returning adapters. None of the built-in operators can fail
// today, but future ones (spill-to-disk joins, remote shuffles) can;
// panicking here is loud, whereas dropping the error would silently
// truncate query results.
func MustCollect(op Operator) []tuple.Tuple {
	rows, err := Collect(op)
	if err != nil {
		panic("exec: pipeline error in materializing adapter: " + err.Error())
	}
	return rows
}

// Count drains an operator and returns its row count without
// materializing any output — what a pipelined consumer that aggregates
// in place pays.
func Count(op Operator) (int, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	n := 0
	for {
		b, err := op.Next()
		if err != nil {
			return n, err
		}
		if b == nil {
			return n, nil
		}
		n += b.Len()
		b.Release()
	}
}

// Source adapts an in-memory row slice into an Operator. Batches are
// zero-copy views of the slice (see tuple.Views), so a Source costs no
// allocation beyond the view headers.
type Source struct {
	views [][]tuple.Tuple
	pos   int
}

// NewSource builds a source over rows.
func NewSource(rows []tuple.Tuple) *Source {
	return &Source{views: tuple.Views(rows, DefaultBatchSize)}
}

// Open resets the source to the first batch.
func (s *Source) Open() error { s.pos = 0; return nil }

// Next returns the next view batch.
func (s *Source) Next() (*Batch, error) {
	if s.pos >= len(s.views) {
		return nil, nil
	}
	b := &Batch{rows: s.views[s.pos]}
	s.pos++
	return b, nil
}

// Close is a no-op for sources.
func (s *Source) Close() error { return nil }

// ScanOp returns an operator that reads the refs' blocks on the
// executor's bounded worker pool, filters by the predicate conjunction,
// and streams matching rows in batches. Block reads are metered as
// scans; vanished blocks (concurrent repartition) are skipped, matching
// ScanRefs. Batch order across blocks is nondeterministic when more
// than one worker runs.
func (e *Executor) ScanOp(refs []core.BlockRef, preds []predicate.Predicate) Operator {
	return &scanOp{e: e, refs: refs, preds: preds}
}

// TableScanOp returns a scan operator over every live tree of a table
// with predicate and zone-map pruning (or none under NoPrune) — the
// pipelined form of Scan.
func (e *Executor) TableScanOp(tbl *core.Table, preds []predicate.Predicate) Operator {
	return e.ScanOp(e.tableRefs(tbl, preds), preds)
}

// tableRefs resolves a table's scan set under the executor's pruning
// mode.
func (e *Executor) tableRefs(tbl *core.Table, preds []predicate.Predicate) []core.BlockRef {
	if e.NoPrune {
		return tbl.AllRefs(nil)
	}
	return tbl.AllRefs(preds)
}

type scanOp struct {
	e     *Executor
	refs  []core.BlockRef
	preds []predicate.Predicate

	next  atomic.Int64
	empty bool
	out   chan *Batch
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

func (s *scanOp) Open() error {
	if len(s.refs) == 0 {
		// Predicate pruning often eliminates every block; skip the pool.
		s.empty = true
		return nil
	}
	w := s.e.workers()
	if w > len(s.refs) {
		w = len(s.refs)
	}
	if w < 1 {
		w = 1
	}
	// The channel buffer bounds how far scans run ahead of the consumer:
	// at most ~2 batches per worker are in flight, the pipelined
	// equivalent of the old code's single giant result slice.
	s.out = make(chan *Batch, 2*w)
	s.done = make(chan struct{})
	for i := 0; i < w; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	go func() {
		s.wg.Wait()
		close(s.out)
	}()
	return nil
}

func (s *scanOp) worker() {
	defer s.wg.Done()
	n := s.e.Store.NumNodes()
	if n < 1 {
		n = 1
	}
	for {
		idx := int(s.next.Add(1) - 1)
		if idx >= len(s.refs) {
			return
		}
		ref := s.refs[idx]
		node := s.e.taskNode(ref.Path)
		if s.e.RoundRobin {
			node = dfs.NodeID(idx % n)
		}
		blk, local, err := s.e.Store.GetBlock(ref.Path, node)
		if err != nil {
			continue // vanished (concurrent repartition): rows moved elsewhere
		}
		s.e.Meter.AddScan(blk.Len(), local)
		b := NewBatch()
		for _, r := range blk.Tuples {
			if predicate.MatchesAll(s.preds, r) {
				b.Append(r)
				if b.Full() {
					if !s.send(b) {
						return
					}
					b = NewBatch()
				}
			}
		}
		if b.Len() > 0 {
			if !s.send(b) {
				return
			}
		} else {
			b.Release()
		}
	}
}

func (s *scanOp) send(b *Batch) bool {
	select {
	case s.out <- b:
		return true
	case <-s.done:
		b.Release()
		return false
	}
}

func (s *scanOp) Next() (*Batch, error) {
	if s.empty {
		return nil, nil
	}
	b, ok := <-s.out
	if !ok {
		return nil, nil
	}
	return b, nil
}

func (s *scanOp) Close() error {
	if s.empty {
		return nil
	}
	s.once.Do(func() {
		close(s.done)
		// Drain so no worker stays blocked on send; the closer goroutine
		// closes out once every worker exits.
		for b := range s.out {
			b.Release()
		}
	})
	return nil
}

// Where wraps an operator with an extra predicate conjunction, repacking
// surviving rows into fresh batches. Scans push predicates down already;
// Where exists for filters that only apply mid-pipeline (e.g. on join
// outputs).
func Where(child Operator, preds []predicate.Predicate) Operator {
	return &filterOp{child: child, preds: preds}
}

type filterOp struct {
	child Operator
	preds []predicate.Predicate
}

func (f *filterOp) Open() error { return f.child.Open() }

func (f *filterOp) Next() (*Batch, error) {
	for {
		in, err := f.child.Next()
		if err != nil || in == nil {
			return nil, err
		}
		out := NewBatch()
		for _, r := range in.Rows() {
			if predicate.MatchesAll(f.preds, r) {
				out.Append(r)
			}
		}
		in.Release()
		if out.Len() > 0 {
			return out, nil
		}
		out.Release()
	}
}

func (f *filterOp) Close() error { return f.child.Close() }

// JoinCharge selects how a join operator meters its input rows.
type JoinCharge int

const (
	// ChargeNone meters nothing — callers meter the I/O that produced
	// the inputs (HashJoinRows semantics).
	ChargeNone JoinCharge = iota
	// ChargeShuffle charges the CSJ shuffle factor per row (eq. 1: each
	// record is read, partitioned and written, and read again).
	ChargeShuffle
	// ChargeIntermediate charges the cheaper pipelined-shuffle factor
	// per row (§4.3's shuffle of materialized intermediates).
	ChargeIntermediate
)

// JoinOptions configures a pipelined hash join.
type JoinOptions struct {
	// BuildIsRight emits output rows as probe‖build instead of
	// build‖probe, so callers can build on either side while keeping
	// (left, right) column order.
	BuildIsRight bool
	// BuildCharge / ProbeCharge meter the respective input's rows as
	// they stream through the join.
	BuildCharge, ProbeCharge JoinCharge
}

// JoinOp returns a pipelined hash join: Open drains the build input into
// a hash table, then Next streams probe batches through it, emitting
// concatenated match rows. Result rows are metered once at end of
// stream. The probe side is never materialized — this is where the
// pipeline beats the slice APIs on wide joins.
func (e *Executor) JoinOp(build Operator, buildCol int, probe Operator, probeCol int, opts JoinOptions) Operator {
	return &hashJoinOp{e: e, build: build, probe: probe, bCol: buildCol, pCol: probeCol, opts: opts}
}

type hashJoinOp struct {
	e            *Executor
	build, probe Operator
	bCol, pCol   int
	opts         JoinOptions

	ht      map[string][]tuple.Tuple
	keyBuf  []byte
	queue   []*Batch // full output batches not yet handed out
	cur     *Batch   // partial output batch being filled
	eos     bool
	results int
}

func (j *hashJoinOp) charge(c JoinCharge, rows int) {
	switch c {
	case ChargeShuffle:
		j.e.Meter.AddShuffle(rows)
	case ChargeIntermediate:
		j.e.Meter.AddIntermediateShuffle(rows)
	}
}

func (j *hashJoinOp) Open() error {
	if err := j.build.Open(); err != nil {
		return err
	}
	j.ht = make(map[string][]tuple.Tuple)
	for {
		b, err := j.build.Next()
		if err != nil {
			j.build.Close()
			return err
		}
		if b == nil {
			break
		}
		j.charge(j.opts.BuildCharge, b.Len())
		for _, r := range b.Rows() {
			j.keyBuf = r[j.bCol].AppendBinary(j.keyBuf[:0])
			j.ht[string(j.keyBuf)] = append(j.ht[string(j.keyBuf)], r)
		}
		b.Release()
	}
	if err := j.build.Close(); err != nil {
		return err
	}
	return j.probe.Open()
}

// emit appends one output row, rotating full batches into the queue.
func (j *hashJoinOp) emit(row tuple.Tuple) {
	if j.cur == nil {
		j.cur = NewBatch()
	}
	j.cur.Append(row)
	j.results++
	if j.cur.Full() {
		j.queue = append(j.queue, j.cur)
		j.cur = nil
	}
}

func (j *hashJoinOp) Next() (*Batch, error) {
	for {
		if len(j.queue) > 0 {
			b := j.queue[0]
			j.queue = j.queue[1:]
			return b, nil
		}
		if j.eos {
			return nil, nil
		}
		pb, err := j.probe.Next()
		if err != nil {
			return nil, err
		}
		if pb == nil {
			j.eos = true
			j.e.Meter.AddResultRows(j.results)
			if j.cur != nil && j.cur.Len() > 0 {
				b := j.cur
				j.cur = nil
				return b, nil
			}
			return nil, nil
		}
		j.charge(j.opts.ProbeCharge, pb.Len())
		// Even with an empty hash table the probe side must drain so its
		// rows are metered, matching ShuffleJoinRows on an empty side.
		for _, p := range pb.Rows() {
			j.keyBuf = p[j.pCol].AppendBinary(j.keyBuf[:0])
			for _, b := range j.ht[string(j.keyBuf)] {
				if j.opts.BuildIsRight {
					j.emit(tuple.Concat(p, b))
				} else {
					j.emit(tuple.Concat(b, p))
				}
			}
		}
		pb.Release()
	}
}

func (j *hashJoinOp) Close() error {
	for _, b := range j.queue {
		b.Release()
	}
	j.queue = nil
	if j.cur != nil {
		j.cur.Release()
		j.cur = nil
	}
	j.ht = nil
	return j.probe.Close()
}

// HyperJoinOp is the streaming form of HyperJoin: Open computes the
// block-read schedule (§4.1) and starts the bounded worker pool; Next
// streams joined batches as groups complete. Stats is valid once the
// stream is drained.
type HyperJoinOp struct {
	e            *Executor
	rRefs, sRefs []core.BlockRef
	rPreds       []predicate.Predicate
	sPreds       []predicate.Predicate
	rCol, sCol   int
	budget       int

	plan    HyperPlan
	stats   HyperStats
	statsMu sync.Mutex
	results atomic.Int64
	empty   bool
	metered bool

	next atomic.Int64
	out  chan *Batch
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewHyperJoinOp builds the streaming hyper-join over pre-pruned build
// (R) and probe (S) refs.
func (e *Executor) NewHyperJoinOp(rRefs []core.BlockRef, rPreds []predicate.Predicate, rCol int,
	sRefs []core.BlockRef, sPreds []predicate.Predicate, sCol int, budget int) *HyperJoinOp {
	return &HyperJoinOp{
		e: e, rRefs: rRefs, sRefs: sRefs, rPreds: rPreds, sPreds: sPreds,
		rCol: rCol, sCol: sCol, budget: budget,
	}
}

// Stats reports what the hyper-join did; complete only after Next has
// returned nil (the stream is drained).
func (h *HyperJoinOp) Stats() HyperStats { return h.stats }

func (h *HyperJoinOp) Open() error {
	if len(h.rRefs) == 0 || len(h.sRefs) == 0 {
		h.empty = true
		return nil
	}
	h.plan = PlanHyper(h.rRefs, h.rCol, h.sRefs, h.sCol, h.budget)
	h.stats = HyperStats{
		Groups:       len(h.plan.Grouping),
		SBlocks:      len(h.sRefs),
		GroupingCost: hyperjoin.Cost(h.plan.Grouping, h.plan.V),
	}
	w := h.e.workers()
	if w > len(h.plan.Grouping) {
		w = len(h.plan.Grouping)
	}
	if w < 1 {
		w = 1
	}
	h.out = make(chan *Batch, 2*w)
	h.done = make(chan struct{})
	for i := 0; i < w; i++ {
		h.wg.Add(1)
		go h.worker()
	}
	go func() {
		h.wg.Wait()
		close(h.out)
	}()
	return nil
}

func (h *HyperJoinOp) worker() {
	defer h.wg.Done()
	for {
		gi := int(h.next.Add(1) - 1)
		if gi >= len(h.plan.Grouping) {
			return
		}
		if !h.runGroup(h.plan.Grouping[gi]) {
			return
		}
	}
}

// runGroup executes one group of the §4.1 algorithm: build a hash table
// over the group's R blocks, probe it with every overlapping S block,
// streaming output batches. Returns false when the operator was closed.
func (h *HyperJoinOp) runGroup(group []int) bool {
	// The group's task runs where its first R block lives.
	node := h.e.taskNode(h.rRefs[group[0]].Path)
	ht := make(map[int64][]tuple.Tuple)
	built := 0
	for _, i := range group {
		blk, local, err := h.e.Store.GetBlock(h.rRefs[i].Path, node)
		if err != nil {
			continue
		}
		h.e.Meter.AddBuild(blk.Len(), local)
		built++
		for _, r := range blk.Tuples {
			if predicate.MatchesAll(h.rPreds, r) {
				ht[hashKey(r[h.rCol])] = append(ht[hashKey(r[h.rCol])], r)
			}
		}
	}
	// Probe phase: only overlapping S blocks.
	union := hyperjoin.Union(h.plan.V, group)
	probed := 0
	b := NewBatch()
	for _, j := range union.Ones() {
		if j >= len(h.sRefs) {
			break
		}
		blk, local, err := h.e.Store.GetBlock(h.sRefs[j].Path, node)
		if err != nil {
			continue
		}
		h.e.Meter.AddProbe(blk.Len(), local)
		probed++
		for _, s := range blk.Tuples {
			if !predicate.MatchesAll(h.sPreds, s) {
				continue
			}
			for _, r := range ht[hashKey(s[h.sCol])] {
				if tupleKeyEqual(r[h.rCol], s[h.sCol]) {
					b.Append(tuple.Concat(r, s))
					if b.Full() {
						if !h.send(b) {
							return false
						}
						b = NewBatch()
					}
				}
			}
		}
	}
	h.statsMu.Lock()
	h.stats.BuildBlocks += len(group)
	h.stats.ProbeBlocks += probed
	h.statsMu.Unlock()
	if b.Len() > 0 {
		return h.send(b)
	}
	b.Release()
	return true
}

func (h *HyperJoinOp) send(b *Batch) bool {
	h.results.Add(int64(b.Len()))
	select {
	case h.out <- b:
		return true
	case <-h.done:
		b.Release()
		return false
	}
}

func (h *HyperJoinOp) Next() (*Batch, error) {
	if h.empty {
		return nil, nil
	}
	b, ok := <-h.out
	if !ok {
		h.finish()
		return nil, nil
	}
	return b, nil
}

// finish seals the stats once the stream is drained.
func (h *HyperJoinOp) finish() {
	if h.metered {
		return
	}
	h.metered = true
	if h.stats.SBlocks > 0 {
		h.stats.CHyJ = float64(h.stats.ProbeBlocks) / float64(h.stats.SBlocks)
	}
	h.e.Meter.AddResultRows(int(h.results.Load()))
}

func (h *HyperJoinOp) Close() error {
	if h.empty {
		return nil
	}
	h.once.Do(func() {
		close(h.done)
		for b := range h.out {
			b.Release()
		}
	})
	return nil
}
