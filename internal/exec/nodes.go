// The per-node execution fabric: one executor per simulated cluster
// node, locality-aware scan placement, and the Gather operator that
// merges per-node fragment streams while driving every node
// concurrently. Exchanges (exchange.go) move batches between the node
// executors; this file owns the nodes themselves.
package exec

import (
	"hash/fnv"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
)

// NodeSet turns one Executor into an N-node simulated cluster: each dfs
// node gets its own executor view — a bounded worker pool pinned to that
// node plus a private meter shard — and scan work is assigned to the
// node holding a local replica of each block, falling back to metered
// remote reads for blocks placed nowhere the set can see. The planner
// compiles per-node plan fragments against these views and wires
// Exchange operators between them; Flush folds the shards back into the
// parent executor's meter once per query.
type NodeSet struct {
	parent  *Executor
	execs   []*Executor
	shards  []*cluster.Meter
	flush   func(dst *cluster.Meter)
	perNode int
}

// EnableNodes attaches a per-node execution fabric to the executor, one
// node executor per store node. workersPerNode bounds each node's task
// parallelism (0 = one worker per node — the cluster's aggregate
// parallelism then scales with its size, which is what the -nodes bench
// sweep measures). Returns the set for fluent use; Nodes() retrieves it
// later.
func (e *Executor) EnableNodes(workersPerNode int) *NodeSet {
	n := e.Store.NumNodes()
	if n < 1 {
		n = 1
	}
	if workersPerNode < 1 {
		workersPerNode = 1
	}
	shards, flush := cluster.NewShards(n)
	// Each node executor gets an equal share of the parent's memory
	// budget — the paper's per-node grouping budget generalized to every
	// operator. A nil parent budget splits into nil (unlimited) shares.
	mems := e.Mem.Split(n)
	ns := &NodeSet{parent: e, shards: shards, flush: flush, perNode: workersPerNode}
	for i := 0; i < n; i++ {
		ns.execs = append(ns.execs, &Executor{
			Store:           e.Store,
			Meter:           shards[i],
			Workers:         workersPerNode,
			NoPrune:         e.NoPrune,
			Mem:             mems[i],
			SpillDir:        e.SpillDir,
			DisableColumnar: e.DisableColumnar,
			fs:              e.fs,
			pin:             dfs.NodeID(i),
			pinned:          true,
			ctx:             e.ctx,
		})
	}
	e.nodes = ns
	return ns
}

// Nodes returns the executor's node fabric, or nil when execution is
// centralized (the legacy single-pool mode).
func (e *Executor) Nodes() *NodeSet { return e.nodes }

// N returns the cluster size.
func (ns *NodeSet) N() int { return len(ns.execs) }

// At returns node i's executor view: same store, worker pool bounded to
// the node's width, meter shard private to the node, and every task
// pinned to run at that node (reads of non-replica blocks are metered
// remote, the §4.2 fallback path).
func (ns *NodeSet) At(i int) *Executor { return ns.execs[i] }

// NodeFor assigns a block to its execution node: the primary replica
// when the store knows the path (HDFS-style locality scheduling — the
// read is local by construction), else a deterministic hash of the path
// (the fallback; such reads are metered remote when the hashed node
// holds no replica).
func (ns *NodeSet) NodeFor(path string) int {
	if p := ns.parent.Store.Placement(path); len(p) > 0 {
		return int(p[0]) % ns.N()
	}
	h := fnv.New64a()
	h.Write([]byte(path))
	return int(h.Sum64() % uint64(ns.N()))
}

// SplitRefs partitions a scan set by execution node — out[i] lists the
// blocks node i will read locally (or remotely, for fallback-placed
// paths).
func (ns *NodeSet) SplitRefs(refs []core.BlockRef) [][]core.BlockRef {
	out := make([][]core.BlockRef, ns.N())
	for _, r := range refs {
		i := ns.NodeFor(r.Path)
		out[i] = append(out[i], r)
	}
	return out
}

// ScanAt returns node i's share of a table scan: the refs assigned to
// node i, read on node i's own worker pool and metered into its shard.
func (ns *NodeSet) ScanAt(i int, refs []core.BlockRef, preds []predicate.Predicate) Operator {
	return ns.At(i).ScanOp(refs, preds)
}

// Flush folds every node's meter shard into the parent executor's meter
// and zeroes the shards — call once per query, after the DAG is
// drained. Safe against concurrent metering (each shard is internally
// locked), but the single-merge-point contract means callers should
// only flush between queries.
func (ns *NodeSet) Flush() {
	ns.flush(ns.parent.Meter)
}

// Gather merges per-node fragment streams into one operator, opening
// and draining every child concurrently — each node's fragment runs on
// its own goroutine, so cross-node parallelism survives the merge. This
// is the coordinator's side of the cluster: the root of every
// distributed plan is a Gather (or an operator over gathered inputs).
//
// Each child is owned entirely by its drain goroutine (Open, Next,
// Close), which keeps the Operator single-goroutine contract intact.
// Batch ownership passes from the fragment to the Gather consumer
// untouched. Output order across children is nondeterministic.
func Gather(children ...Operator) Operator {
	if len(children) == 1 {
		return children[0]
	}
	return &gatherOp{children: children}
}

type gatherOp struct {
	children []Operator

	out  chan *Batch
	done chan struct{}
	errs chan error
	err  error
}

func (g *gatherOp) Open() error {
	g.out = make(chan *Batch, 2*len(g.children))
	g.done = make(chan struct{})
	g.errs = make(chan error, len(g.children))
	for _, c := range g.children {
		go g.drain(c)
	}
	go func() {
		for range g.children {
			if err := <-g.errs; err != nil && g.err == nil {
				// g.err is only read by the consumer after out closes,
				// which happens after this goroutine finishes — no race.
				g.err = err
			}
		}
		close(g.out)
	}()
	return nil
}

// drain runs one child to exhaustion: open, forward batches, close.
func (g *gatherOp) drain(c Operator) {
	if err := c.Open(); err != nil {
		// Close even though Open failed: a fragment's inputs may be
		// exchange outputs shared with sibling fragments, and an output
		// that is never drained nor closed would block the exchange's
		// producers (and with them every other node) forever. All exec
		// operators tolerate Close after a failed Open.
		c.Close()
		g.errs <- err
		return
	}
	for {
		b, err := c.Next()
		if err != nil || b == nil {
			cerr := c.Close()
			if err == nil {
				err = cerr
			}
			g.errs <- err
			return
		}
		select {
		case g.out <- b:
		case <-g.done:
			b.Release()
			c.Close()
			g.errs <- nil
			return
		}
	}
}

func (g *gatherOp) Next() (*Batch, error) {
	b, ok := <-g.out
	if !ok {
		return nil, g.err
	}
	return b, nil
}

func (g *gatherOp) Close() error {
	if g.done == nil {
		return nil
	}
	select {
	case <-g.done:
	default:
		close(g.done)
	}
	// Drain so no child goroutine stays blocked on send; the collector
	// goroutine closes out once every child reports in.
	for b := range g.out {
		b.Release()
	}
	return nil
}
