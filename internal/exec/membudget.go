// Operator-level memory accounting: the MemBudget that joins, spill
// buffers, and exchanges charge against. AdaptDB's hyper-join already
// bounds its build side by grouping splits under a per-node budget
// (§4.1); MemBudget extends that discipline to the whole data plane, so
// a hash join whose build side outgrows its share demotes partitions to
// disk (spill.go) instead of OOMing the process.
package exec

import "sync/atomic"

// MemBudget tracks bytes of operator state against a fixed limit. All
// methods are safe for concurrent use, and all are nil-safe: a nil
// *MemBudget is the unlimited budget, so call sites charge
// unconditionally and pay one branch when no budget is configured.
//
// Charging is advisory, not blocking: Charge always succeeds and
// reports whether the budget is now exceeded. The caller decides how to
// get back under — the hash join spills its largest build partition,
// exchanges merely account (their channels already bound buffering).
// This mirrors how a real per-operator memory manager grants
// reservations optimistically and triggers spilling on pressure rather
// than deadlocking producers.
type MemBudget struct {
	limit int64
	used  atomic.Int64
}

// NewMemBudget builds a budget of limit bytes. Non-positive limits
// return nil — the unlimited budget.
func NewMemBudget(limit int64) *MemBudget {
	if limit <= 0 {
		return nil
	}
	return &MemBudget{limit: limit}
}

// Limit returns the budget's byte limit, or 0 for the unlimited (nil)
// budget.
func (m *MemBudget) Limit() int64 {
	if m == nil {
		return 0
	}
	return m.limit
}

// Used returns the bytes currently charged.
func (m *MemBudget) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}

// Charge records n more bytes of operator state and reports whether the
// budget is now over its limit — the caller's cue to spill. Nil budgets
// never report pressure.
func (m *MemBudget) Charge(n int64) bool {
	if m == nil {
		return false
	}
	return m.used.Add(n) > m.limit
}

// Release returns n bytes to the budget.
func (m *MemBudget) Release(n int64) {
	if m == nil {
		return
	}
	m.used.Add(-n)
}

// Over reports whether charged bytes currently exceed the limit.
func (m *MemBudget) Over() bool {
	if m == nil {
		return false
	}
	return m.used.Load() > m.limit
}

// Split divides the budget into n equal per-node shares — how
// EnableNodes hands each node executor its slice of the cluster's
// memory, matching the paper's per-node grouping budget. A nil budget
// splits into n nil (unlimited) budgets.
func (m *MemBudget) Split(n int) []*MemBudget {
	if n < 1 {
		n = 1
	}
	out := make([]*MemBudget, n)
	if m == nil {
		return out
	}
	share := m.limit / int64(n)
	if share < 1 {
		share = 1
	}
	for i := range out {
		out[i] = NewMemBudget(share)
	}
	return out
}
