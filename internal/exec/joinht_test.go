package exec

import (
	"testing"

	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func jtRow(key value.Value, tag int64) tuple.Tuple {
	return tuple.Tuple{key, value.NewInt(tag)}
}

// drainMatches collects the tags of every build row the table yields for
// the probe key.
func drainMatches(t *joinTable, key value.Value) []int64 {
	var tags []int64
	it := t.lookup(key.Hash64(), key)
	for {
		row, ok := it.next()
		if !ok {
			return tags
		}
		tags = append(tags, row[1].Int64())
	}
}

func TestJoinTableBasicMultiset(t *testing.T) {
	var buf joinBuf
	for i := int64(0); i < 100; i++ {
		key := value.NewInt(i % 10) // 10 dup rows per key
		buf.add(key.Hash64(), jtRow(key, i))
	}
	jt := newJoinTable(0, &buf)
	if jt.len() != 100 {
		t.Fatalf("table has %d rows, want 100", jt.len())
	}
	for k := int64(0); k < 10; k++ {
		tags := drainMatches(jt, value.NewInt(k))
		if len(tags) != 10 {
			t.Fatalf("key %d matched %d rows, want 10", k, len(tags))
		}
		for _, tag := range tags {
			if tag%10 != k {
				t.Errorf("key %d yielded row tagged %d", k, tag)
			}
		}
	}
	if got := drainMatches(jt, value.NewInt(999)); got != nil {
		t.Errorf("absent key matched %v", got)
	}
}

func TestJoinTableForcedHashCollision(t *testing.T) {
	// Distinct values inserted under the SAME forced hash must still be
	// told apart by the value.Equal check on probe.
	a, b, c := value.NewInt(1), value.NewString("one"), value.NewDate(1)
	const h = uint64(0xDEADBEEF)
	var buf joinBuf
	buf.add(h, jtRow(a, 100))
	buf.add(h, jtRow(b, 200))
	buf.add(h, jtRow(c, 300))
	buf.add(h, jtRow(a, 101))
	jt := newJoinTable(0, &buf)
	for _, tc := range []struct {
		key  value.Value
		want []int64
	}{
		{a, []int64{101, 100}}, // chain order is LIFO
		{b, []int64{200}},
		{c, []int64{300}},
	} {
		it := jt.lookup(h, tc.key)
		var got []int64
		for {
			row, ok := it.next()
			if !ok {
				break
			}
			got = append(got, row[1].Int64())
		}
		if len(got) != len(tc.want) {
			t.Fatalf("colliding key %v matched %v, want %v", tc.key, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("colliding key %v matched %v, want %v", tc.key, got, tc.want)
			}
		}
	}
	// A fourth distinct value probing the same hash matches nothing.
	if it := jt.lookup(h, value.NewFloat(1)); func() bool { _, ok := it.next(); return ok }() {
		t.Errorf("uninserted value matched via forced hash collision")
	}
}

func TestJoinTableMixedKindKeys(t *testing.T) {
	// Int 5, Date 5 and Float 5.0 are distinct join keys (value.Equal is
	// kind-sensitive); each probe kind must only see its own rows.
	keys := []value.Value{value.NewInt(5), value.NewDate(5), value.NewFloat(5)}
	var buf joinBuf
	for i, k := range keys {
		buf.add(k.Hash64(), jtRow(k, int64(i)))
	}
	jt := newJoinTable(0, &buf)
	for i, k := range keys {
		tags := drainMatches(jt, k)
		if len(tags) != 1 || tags[0] != int64(i) {
			t.Errorf("kind %s matched %v, want [%d]", k.K, tags, i)
		}
	}
	if tags := drainMatches(jt, value.NewBool(true)); tags != nil {
		t.Errorf("Bool probe matched %v", tags)
	}
}

func TestJoinTableNullProbeMatchesNothing(t *testing.T) {
	// Even if a careless caller inserted a null-keyed row, the lookup
	// guard keeps NULL probes from matching anything — including that
	// row: NULL never equals NULL.
	var buf joinBuf
	null := value.Value{}
	buf.add(null.Hash64(), jtRow(null, 1)) // builders must skip nulls; simulate one that didn't
	key := value.NewInt(7)
	buf.add(key.Hash64(), jtRow(key, 2))
	jt := newJoinTable(0, &buf)
	if tags := drainMatches(jt, null); tags != nil {
		t.Errorf("null probe key matched %v — NULL must never equal NULL", tags)
	}
	if tags := drainMatches(jt, key); len(tags) != 1 || tags[0] != 2 {
		t.Errorf("non-null key matched %v, want [2]", tags)
	}
}

func TestJoinTableEmpty(t *testing.T) {
	jt := newJoinTable(0, &joinBuf{})
	if jt.len() != 0 {
		t.Fatalf("empty table len %d", jt.len())
	}
	if tags := drainMatches(jt, value.NewInt(1)); tags != nil {
		t.Errorf("empty table matched %v", tags)
	}
}

func TestJoinTableMergesBuffersAcrossChunks(t *testing.T) {
	// Seal several buffers (as the parallel build does, one per worker)
	// with enough rows to span many chunks; every row must survive.
	const perBuf = 3*joinChunkSize + 17
	bufs := make([]*joinBuf, 3)
	for w := range bufs {
		bufs[w] = &joinBuf{}
		for i := 0; i < perBuf; i++ {
			key := value.NewInt(int64(i % 97))
			bufs[w].add(key.Hash64(), jtRow(key, int64(w*perBuf+i)))
		}
	}
	jt := newJoinTable(0, bufs...)
	if jt.len() != 3*perBuf {
		t.Fatalf("merged table has %d rows, want %d", jt.len(), 3*perBuf)
	}
	total := 0
	for k := int64(0); k < 97; k++ {
		total += len(drainMatches(jt, value.NewInt(k)))
	}
	if total != 3*perBuf {
		t.Errorf("probing every key found %d rows, want %d", total, 3*perBuf)
	}
}

// TestParallelJoinBuildProbeRace exercises the full parallel radix join
// under the race detector (CI runs this package with -race): multiple
// workers partition the build side, seal tables, and probe concurrently.
func TestParallelJoinBuildProbeRace(t *testing.T) {
	l := genLineitem(20000, 31)
	r := genOrders(8000, 32)
	f := newFixture(t, true)
	f.ex.Workers = 4
	got, err := Collect(f.ex.JoinOp(NewSource(r), 0, NewSource(l), 0, JoinOptions{BuildIsRight: true}))
	if err != nil {
		t.Fatal(err)
	}
	want := HashJoinRows(l, r, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("parallel join %d rows, reference %d", len(got), len(want))
	}
	SortRows(got)
	SortRows(want)
	for i := range got {
		for c := range got[i] {
			if value.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("row %d differs between parallel and reference join", i)
			}
		}
	}
}

// TestJoinTableCapNoGrow pins the pre-sizing contract of incremental
// tables: a planner estimate within 2x of the true build cardinality
// (high or low) yields ZERO bucket-array rehash-grows, so a join with a
// sane estimate never pays rehash cost. A badly low estimate must still
// grow (and stay correct) rather than degrade to long chains.
func TestJoinTableCapNoGrow(t *testing.T) {
	const n = 1000
	build := func(capHint int) *joinTable {
		jt := newJoinTableCap(0, capHint)
		for i := int64(0); i < n; i++ {
			key := value.NewInt(i % 50)
			jt.insert(key.Hash64(), jtRow(key, i))
		}
		return jt
	}
	for _, est := range []int{n / 2, n, 2 * n, 4 * n} {
		if jt := build(est); jt.grows != 0 {
			t.Errorf("estimate %d for %d rows: %d rehash-grows, want 0", est, n, jt.grows)
		}
	}
	// 10x under-estimate: must grow, and lookups must survive the rehash.
	jt := build(n / 10)
	if jt.grows == 0 {
		t.Fatalf("estimate %d for %d rows grew 0 times — load factor unbounded", n/10, n)
	}
	if jt.len() != n {
		t.Fatalf("table has %d rows, want %d", jt.len(), n)
	}
	for k := int64(0); k < 50; k++ {
		if got := len(drainMatches(jt, value.NewInt(k))); got != n/50 {
			t.Fatalf("after rehash, key %d matched %d rows, want %d", k, got, n/50)
		}
	}
}

// TestJoinTableHintPresize covers the sealed-table variant: the bucket
// array is sized from the planner hint (clamped to 4x the actual rows),
// not just the sealed row count, so partitions sealed early don't start
// undersized relative to what the estimate promised.
func TestJoinTableHintPresize(t *testing.T) {
	var buf joinBuf
	for i := int64(0); i < 100; i++ {
		key := value.NewInt(i)
		buf.add(key.Hash64(), jtRow(key, i))
	}
	plain := newJoinTable(0, &buf)
	hinted := newJoinTableHint(0, 300, &buf)
	if len(hinted.buckets) < 300 {
		t.Errorf("hint 300 sized %d buckets, want >= 300", len(hinted.buckets))
	}
	if len(plain.buckets) >= len(hinted.buckets) {
		t.Errorf("hint had no effect: plain %d buckets, hinted %d", len(plain.buckets), len(hinted.buckets))
	}
	// The clamp: an absurd hint must not allocate more than 4x rows
	// rounded up to a power of two.
	huge := newJoinTableHint(0, 1<<20, &buf)
	if len(huge.buckets) > 512 { // pow2 >= 4*100
		t.Errorf("hint 1<<20 for 100 rows sized %d buckets, want <= 512", len(huge.buckets))
	}
}
