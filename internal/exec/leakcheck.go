// A dependency-free goroutine-leak checker shared by every test suite:
// after a test drains its operators, VerifyNoLeaks asserts that no
// goroutine started by this module's code is still running. Operator
// workers, exchange producers, gather drains and spill second-pass
// pools all terminate on Close, so anything left over is a real leak —
// typically a worker blocked on an undrained channel.
package exec

import (
	"runtime"
	"strings"
	"time"
)

// leakCheckT is the slice of testing.T the checker needs; declaring it
// locally keeps the testing package out of the production build.
type leakCheckT interface {
	Helper()
	Errorf(format string, args ...any)
}

// VerifyNoLeaks fails the test if goroutines created by this module are
// still alive after a grace period. Workers that are mid-shutdown when
// the test body returns get a few scheduling rounds to finish (Close
// guarantees eventual exit, not synchronous exit of the closer
// goroutine itself), so the checker retries with backoff before
// reporting. Call it deferred, or at the end of the test body:
//
//	defer exec.VerifyNoLeaks(t)
func VerifyNoLeaks(t leakCheckT) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var leaked []string
	for {
		leaked = moduleGoroutines()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("exec: %d leaked goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n---\n"))
}

// moduleGoroutines returns the stacks of goroutines running (or created
// by) this module's packages, excluding the calling goroutine and the
// runtime/testing machinery.
func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(g, "adaptdb/") {
			continue // runtime, testing, OS threads
		}
		head, _, _ := strings.Cut(g, "\n")
		if strings.HasPrefix(head, "goroutine") && strings.Contains(head, "[running]") &&
			strings.Contains(g, "moduleGoroutines") {
			continue // the checker itself
		}
		// Test driver goroutines (testing.tRunner frames) are the suite's
		// own, not operator workers.
		if strings.Contains(g, "testing.tRunner") || strings.Contains(g, "testing.(*T).Run") {
			continue
		}
		out = append(out, g)
	}
	return out
}
