// Columnar row storage: typed vectors, validity bitmaps, selection
// vectors. This is the payload of the executor's columnar batches and
// of the vectorized join's build-side stores.
//
// A column is stored by kind class: Int/Date/Bool payloads in a flat
// []int64, Float in []float64, String as a flat []string of headers.
// NULLs live in a per-column validity bitmap that is only materialized
// once the first null arrives, so the common all-valid column costs
// nothing. Columns whose values mix kinds (legal in this engine's
// dynamically typed tuples, rare in practice) demote to a boxed
// []value.Value fallback and keep working at the old speed.
//
// The win over []tuple.Tuple is that the hot loops — hashing a key
// column, comparing join keys, appending join output — run over flat
// memory: numeric columns are pointer-free (no write barriers when
// appending, nothing for the GC to traverse, one cache line holds
// eight keys), and string columns move 16-byte headers instead of
// 40-byte boxed Values. String payload bytes are never copied: Go
// strings are immutable and GC-managed, so header aliasing is safe
// across batch recycling — the same property the row path's
// slice-of-Values storage relies on.
//
// A selection vector (Sel) narrows the live rows without moving data:
// filters refine it in place, and every consumer iterates selected
// indices. Physical row indices (as taken by Value, RowTo, hash and
// gather methods) always address the unselected storage.
package tuple

import (
	"encoding/binary"
	"math"

	"adaptdb/internal/value"
)

// ColVec is one column of a Columns: a typed vector plus optional
// validity bitmap. The zero ColVec is an empty, kindless column.
type ColVec struct {
	kind   value.Kind // storage kind; value.Null until the first non-null
	n      int
	ints   []int64
	floats []float64
	strs   []string
	boxed  []value.Value // mixed-kind fallback; authoritative when non-nil
	valid  []uint64      // validity bitmap; nil = every row valid

	// res is the Reserve hint: typed vectors allocate at least this
	// capacity when the column adopts its kind.
	res int
}

// Kind reports the column's storage kind: value.Null while the column
// is empty/all-null or boxed (see Boxed).
func (v *ColVec) Kind() value.Kind {
	if v.boxed != nil {
		return value.Null
	}
	return v.kind
}

// Ints exposes the flat payload of an Int/Date/Bool column.
func (v *ColVec) Ints() []int64 { return v.ints }

// Floats exposes the flat payload of a Float column.
func (v *ColVec) Floats() []float64 { return v.floats }

// Strs exposes the flat header payload of a String column.
func (v *ColVec) Strs() []string { return v.strs }

// Str returns row i's string payload (a shared header, never a copy).
func (v *ColVec) Str(i int) string { return v.strs[i] }

// Boxed exposes the mixed-kind fallback storage, nil for typed columns.
func (v *ColVec) Boxed() []value.Value { return v.boxed }

// Valid exposes the validity bitmap; nil means every row is valid.
func (v *ColVec) Valid() []uint64 { return v.valid }

// IsValid reports whether row i holds a non-null value.
func (v *ColVec) IsValid(i int) bool {
	if v.boxed != nil {
		return !v.boxed[i].IsNull()
	}
	return v.valid == nil || v.valid[i>>6]>>(uint(i)&63)&1 == 1
}

// noteValid records the validity of the row being appended (index v.n).
// The bitmap materializes on the first null; until then it is nil.
func (v *ColVec) noteValid(ok bool) {
	i := v.n
	if v.valid == nil {
		if ok {
			return
		}
		// Materialize: all prior rows are valid.
		words := i>>6 + 1
		v.valid = append(v.valid[:0], make([]uint64, words)...)
		for w := 0; w < i>>6; w++ {
			v.valid[w] = ^uint64(0)
		}
		if r := i & 63; r > 0 {
			v.valid[i>>6] = 1<<uint(r) - 1
		}
		return // bit i stays 0 (null)
	}
	for len(v.valid) <= i>>6 {
		v.valid = append(v.valid, 0)
	}
	if ok {
		v.valid[i>>6] |= 1 << (uint(i) & 63)
	}
}

// adopt fixes the column's kind on its first non-null value, backfilling
// zero payloads for any leading nulls and honoring the Reserve hint.
func (v *ColVec) adopt(k value.Kind) {
	v.kind = k
	capHint := v.res
	if capHint < v.n {
		capHint = v.n
	}
	switch {
	case value.IntClass(k):
		v.ints = growZero(v.ints, v.n, capHint)
	case k == value.Float:
		v.floats = growZero(v.floats, v.n, capHint)
	case k == value.String:
		v.strs = growZero(v.strs, v.n, capHint)
	default:
		v.demote()
	}
}

// growZero returns s resized to n zeroed elements with capacity ≥ c,
// reusing the backing array when it is big enough.
func growZero[T int64 | float64 | string](s []T, n, c int) []T {
	if cap(s) < c {
		return make([]T, n, c)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// demote converts the column to boxed storage — the escape hatch for
// mixed-kind columns. Existing rows are reconstructed.
func (v *ColVec) demote() {
	boxed := make([]value.Value, v.n)
	for i := 0; i < v.n; i++ {
		boxed[i] = v.value(i)
	}
	v.boxed = boxed
	v.ints, v.floats, v.strs, v.valid = nil, nil, nil, nil
}

// append adds one value to the column.
func (v *ColVec) append(val value.Value) {
	if v.boxed != nil {
		v.boxed = append(v.boxed, val)
		v.n++
		return
	}
	if val.K == value.Null {
		v.noteValid(false)
		// Keep the payload vector aligned when the kind is known; before
		// adoption there is nothing to pad (adopt backfills).
		switch {
		case value.IntClass(v.kind):
			v.ints = append(v.ints, 0)
		case v.kind == value.Float:
			v.floats = append(v.floats, 0)
		case v.kind == value.String:
			v.strs = append(v.strs, "")
		}
		v.n++
		return
	}
	if v.kind == value.Null {
		v.adopt(val.K)
		if v.boxed != nil {
			v.boxed = append(v.boxed, val)
			v.n++
			return
		}
	} else if val.K != v.kind {
		v.demote()
		v.boxed = append(v.boxed, val)
		v.n++
		return
	}
	v.noteValid(true)
	switch {
	case value.IntClass(v.kind):
		v.ints = append(v.ints, val.I)
	case v.kind == value.Float:
		v.floats = append(v.floats, val.F)
	default:
		v.strs = append(v.strs, val.S)
	}
	v.n++
}

// value reconstructs row i as a boxed Value. String payloads are shared
// headers — immutable and GC-managed, so the result stays valid after
// the column is reset, the safety property every row-view adapter
// relies on.
func (v *ColVec) value(i int) value.Value {
	if v.boxed != nil {
		return v.boxed[i]
	}
	if !v.IsValid(i) {
		return value.Value{}
	}
	switch {
	case value.IntClass(v.kind):
		return value.Value{K: v.kind, I: v.ints[i]}
	case v.kind == value.Float:
		return value.Value{K: value.Float, F: v.floats[i]}
	default:
		return value.Value{K: value.String, S: v.strs[i]}
	}
}

// appendFrom appends row i of src — the single-row gather primitive.
// Typed same-kind columns copy the flat payload; anything else falls
// back to boxed reconstruction.
func (v *ColVec) appendFrom(src *ColVec, i int) {
	if v.boxed == nil && src.boxed == nil && src.kind == v.kind && v.kind != value.Null {
		ok := src.IsValid(i)
		if ok || v.valid != nil || src.valid != nil {
			v.noteValid(ok)
		}
		switch {
		case value.IntClass(v.kind):
			v.ints = append(v.ints, src.ints[i])
		case v.kind == value.Float:
			v.floats = append(v.floats, src.floats[i])
		default:
			if ok {
				v.strs = append(v.strs, src.strs[i])
			} else {
				v.strs = append(v.strs, "")
			}
		}
		v.n++
		return
	}
	v.append(src.value(i))
}

// appendGather appends src rows idxs in order. The monomorphic fast
// paths keep join-output gathering free of per-value branching.
func (v *ColVec) appendGather(src *ColVec, idxs []int32) {
	if v.boxed == nil && src.boxed == nil && src.valid == nil && v.valid == nil {
		if v.kind == value.Null && src.kind != value.Null && v.n == 0 {
			v.adopt(src.kind)
		}
		if src.kind == v.kind && v.kind != value.Null {
			switch {
			case value.IntClass(v.kind):
				for _, i := range idxs {
					v.ints = append(v.ints, src.ints[i])
				}
				v.n += len(idxs)
				return
			case v.kind == value.Float:
				for _, i := range idxs {
					v.floats = append(v.floats, src.floats[i])
				}
				v.n += len(idxs)
				return
			default:
				for _, i := range idxs {
					v.strs = append(v.strs, src.strs[i])
				}
				v.n += len(idxs)
				return
			}
		}
	}
	for _, i := range idxs {
		v.appendFrom(src, int(i))
	}
}

// appendAll bulk-appends every row of src (no selection). Same-kind
// all-valid typed columns concatenate flat payloads; otherwise it
// degrades to per-row appends.
func (v *ColVec) appendAll(src *ColVec) {
	if src.n == 0 {
		return
	}
	if v.boxed == nil && src.boxed == nil && src.valid == nil && v.valid == nil {
		if v.kind == value.Null && src.kind != value.Null && v.n == 0 {
			v.adopt(src.kind)
		}
		if src.kind == v.kind && v.kind != value.Null {
			switch {
			case value.IntClass(v.kind):
				v.ints = append(v.ints, src.ints...)
			case v.kind == value.Float:
				v.floats = append(v.floats, src.floats...)
			default:
				v.strs = append(v.strs, src.strs...)
			}
			v.n += src.n
			return
		}
	}
	for i := 0; i < src.n; i++ {
		v.appendFrom(src, i)
	}
}

// reset empties the column for reuse, keeping payload capacity. String
// headers are cleared through the full capacity: the GC scans a backing
// array's whole allocation, so stale headers in the tail would pin
// their payloads across pool dwell time.
func (v *ColVec) reset() {
	v.kind = value.Null
	v.n = 0
	v.ints = v.ints[:0]
	v.floats = v.floats[:0]
	if v.strs != nil {
		v.strs = v.strs[:cap(v.strs)]
		clear(v.strs)
		v.strs = v.strs[:0]
	}
	v.boxed = nil
	v.valid = nil
	v.res = 0
}

// Columns is a columnar row set: one ColVec per column plus an optional
// selection vector. Not safe for concurrent mutation; sealed instances
// (join build stores) may be read concurrently.
type Columns struct {
	vecs []ColVec
	n    int
	sel  []int32
	selB []int32 // recycled backing for FilterSel
}

// NewColumns returns an empty columnar row set with ncols columns.
func NewColumns(ncols int) *Columns {
	return &Columns{vecs: make([]ColVec, ncols)}
}

// Reset empties the set and re-shapes it to ncols columns, keeping
// backing capacity.
func (c *Columns) Reset(ncols int) {
	if cap(c.vecs) < ncols {
		c.vecs = append(c.vecs[:cap(c.vecs)], make([]ColVec, ncols-cap(c.vecs))...)
	}
	c.vecs = c.vecs[:ncols]
	for i := range c.vecs {
		c.vecs[i].reset()
	}
	c.n = 0
	c.sel = nil
}

// NumCols returns the column count.
func (c *Columns) NumCols() int { return len(c.vecs) }

// Reserve hints the expected row count: typed vectors allocate at least
// this capacity when they adopt their kind, so a pre-sized build store
// never regrows mid-merge.
func (c *Columns) Reserve(rows int) {
	for i := range c.vecs {
		c.vecs[i].res = rows
	}
}

// FullLen returns the physical row count, ignoring any selection.
func (c *Columns) FullLen() int { return c.n }

// Len returns the live row count: the selection's length when one is
// set, else the physical count.
func (c *Columns) Len() int {
	if c.sel != nil {
		return len(c.sel)
	}
	return c.n
}

// Sel returns the selection vector (physical indices of live rows), nil
// when every row is live.
func (c *Columns) Sel() []int32 { return c.sel }

// SetSel installs a selection vector. The slice is aliased, not copied.
func (c *Columns) SetSel(sel []int32) { c.sel = sel }

// FilterSel refines the selection in place: keep is called with each
// live physical row index, and rows it rejects leave the selection.
// This is how a filter narrows a columnar batch without moving a byte.
func (c *Columns) FilterSel(keep func(phys int) bool) {
	out := c.selB[:0]
	if c.sel != nil {
		for _, i := range c.sel {
			if keep(int(i)) {
				out = append(out, i)
			}
		}
	} else {
		for i := 0; i < c.n; i++ {
			if keep(i) {
				out = append(out, int32(i))
			}
		}
	}
	if out == nil {
		// Zero survivors on a fresh backing: the selection must still be
		// non-nil — nil means "every row live", not "no rows".
		out = make([]int32, 0, 1)
	}
	c.selB = out[:0]
	c.sel = out
}

// Col returns column i's vector.
func (c *Columns) Col(i int) *ColVec { return &c.vecs[i] }

// IsNull reports whether physical row i's column col holds NULL.
func (c *Columns) IsNull(col, i int) bool { return !c.vecs[col].IsValid(i) }

// Value reconstructs one cell as a boxed Value (deep-copied strings).
func (c *Columns) Value(col, i int) value.Value { return c.vecs[col].value(i) }

// AppendRow appends one row. The tuple's arity must match NumCols.
func (c *Columns) AppendRow(t Tuple) {
	for i := range c.vecs {
		c.vecs[i].append(t[i])
	}
	c.n++
}

// AppendRows bulk-transposes row-major tuples into the columns — the
// scan hot path. Unlike per-row AppendRow, each column is filled by one
// tight loop with the kind dispatch hoisted out of the per-value work:
// the common homogeneous column costs one predictable branch and one
// append per value.
func (c *Columns) AppendRows(rows []Tuple) {
	for ci := range c.vecs {
		c.vecs[ci].appendColumn(rows, ci)
	}
	c.n += len(rows)
}

// appendColumn appends rows[*][ci] with per-kind monomorphic loops.
func (v *ColVec) appendColumn(rows []Tuple, ci int) {
	i := 0
	for v.boxed == nil && v.kind == value.Null {
		// Skip leading nulls, then adopt the first real kind and fall
		// through to its loop (or to boxed if adoption demoted).
		if i == len(rows) {
			return
		}
		if k := rows[i][ci].K; k != value.Null {
			v.adopt(k)
			break
		}
		v.noteValid(false)
		v.n++
		i++
	}
	if v.boxed != nil {
		v.appendColumnBoxed(rows, ci, i)
		return
	}
	// The loops below take each cell by pointer and read only the fields
	// the column kind needs — copying the whole 40-byte Value would drag
	// the string-header half of the struct through the cache even for
	// numeric columns.
	switch k := v.kind; {
	case value.IntClass(k):
		for ; i < len(rows); i++ {
			val := &rows[i][ci]
			if val.K != k {
				if val.K != value.Null {
					v.appendColumnBoxed(rows, ci, i)
					return
				}
				v.noteValid(false)
				v.ints = append(v.ints, 0)
				v.n++
				continue
			}
			if v.valid != nil {
				v.noteValid(true)
			}
			v.ints = append(v.ints, val.I)
			v.n++
		}
	case k == value.Float:
		for ; i < len(rows); i++ {
			val := &rows[i][ci]
			if val.K != value.Float {
				if val.K != value.Null {
					v.appendColumnBoxed(rows, ci, i)
					return
				}
				v.noteValid(false)
				v.floats = append(v.floats, 0)
				v.n++
				continue
			}
			if v.valid != nil {
				v.noteValid(true)
			}
			v.floats = append(v.floats, val.F)
			v.n++
		}
	default: // String
		for ; i < len(rows); i++ {
			val := &rows[i][ci]
			if val.K != value.String {
				if val.K != value.Null {
					v.appendColumnBoxed(rows, ci, i)
					return
				}
				v.noteValid(false)
				v.strs = append(v.strs, "")
				v.n++
				continue
			}
			if v.valid != nil {
				v.noteValid(true)
			}
			v.strs = append(v.strs, val.S)
			v.n++
		}
	}
}

// appendColumnBoxed finishes appendColumn's tail after a mixed-kind
// value forced demotion.
func (v *ColVec) appendColumnBoxed(rows []Tuple, ci, i int) {
	if v.boxed == nil {
		v.demote()
	}
	for ; i < len(rows); i++ {
		v.boxed = append(v.boxed, rows[i][ci])
		v.n++
	}
}

// AppendRowFrom appends physical row i of src (same column layout).
func (c *Columns) AppendRowFrom(src *Columns, i int) {
	for ci := range c.vecs {
		c.vecs[ci].appendFrom(&src.vecs[ci], i)
	}
	c.n++
}

// AppendColumns appends every live row of src. Layouts must match.
func (c *Columns) AppendColumns(src *Columns) {
	if src.sel != nil {
		for _, i := range src.sel {
			c.AppendRowFrom(src, int(i))
		}
		return
	}
	for ci := range c.vecs {
		c.vecs[ci].appendAll(&src.vecs[ci])
	}
	c.n += src.n
}

// AppendColumnGather appends src's column srcCol at physical rows idxs
// onto this set's column dst. It does not advance the row count — the
// caller gathers every column, then calls AddRows once.
func (c *Columns) AppendColumnGather(dst int, src *Columns, srcCol int, idxs []int32) {
	c.vecs[dst].appendGather(&src.vecs[srcCol], idxs)
}

// AppendColumnValues appends rows[idx][col] for each idx onto column
// dst — the gather primitive for row-shaped (boxed) probe batches.
func (c *Columns) AppendColumnValues(dst int, rows []Tuple, col int, idxs []int32) {
	v := &c.vecs[dst]
	for _, i := range idxs {
		v.append(rows[i][col])
	}
}

// AddRows advances the row count after per-column gathers. Every column
// must have been extended by exactly k rows.
func (c *Columns) AddRows(k int) { c.n += k }

// RowTo materializes physical row i into dst (reused across calls).
// String cells are deep copies: the returned tuple does not alias the
// column arena and survives a Reset — what spill writers and row-view
// adapters require.
func (c *Columns) RowTo(dst Tuple, i int) Tuple {
	dst = dst[:0]
	for ci := range c.vecs {
		dst = append(dst, c.vecs[ci].value(i))
	}
	return dst
}

// AppendRowBinary appends physical row i's encoding to dst, byte-for-
// byte identical to RowTo(nil, i).AppendBinary(dst) — checksum and wire
// paths walk columns without boxing a single value.
func (c *Columns) AppendRowBinary(dst []byte, i int) []byte {
	for ci := range c.vecs {
		v := &c.vecs[ci]
		if v.boxed != nil {
			dst = v.boxed[i].AppendBinary(dst)
			continue
		}
		if !v.IsValid(i) {
			dst = append(dst, byte(value.Null))
			continue
		}
		dst = append(dst, byte(v.kind))
		switch {
		case value.IntClass(v.kind):
			dst = binary.AppendVarint(dst, v.ints[i])
		case v.kind == value.Float:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.floats[i]))
			dst = append(dst, buf[:]...)
		default:
			s := v.strs[i]
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	}
	return dst
}

// AppendFrame encodes every physical row of the set as one run-file
// frame, byte-identical to AppendFrame on the materialized rows — the
// run frame format is column-major, so a columnar spill buffer encodes
// straight from its vectors with the kind dispatch hoisted per column.
// Selections are ignored: spill buffers hold exactly the rows to write.
func (c *Columns) AppendFrame(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(c.n))
	dst = binary.AppendUvarint(dst, uint64(len(c.vecs)))
	if c.n == 0 {
		return dst
	}
	for ci := range c.vecs {
		v := &c.vecs[ci]
		if v.boxed != nil {
			for i := 0; i < c.n; i++ {
				dst = v.boxed[i].AppendBinary(dst)
			}
			continue
		}
		switch {
		case value.IntClass(v.kind):
			for i, x := range v.ints {
				if v.valid != nil && !v.IsValid(i) {
					dst = append(dst, byte(value.Null))
					continue
				}
				dst = append(dst, byte(v.kind))
				dst = binary.AppendVarint(dst, x)
			}
		case v.kind == value.Float:
			for i, f := range v.floats {
				if v.valid != nil && !v.IsValid(i) {
					dst = append(dst, byte(value.Null))
					continue
				}
				dst = append(dst, byte(value.Float))
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
				dst = append(dst, buf[:]...)
			}
		case v.kind == value.String:
			for i, s := range v.strs {
				if v.valid != nil && !v.IsValid(i) {
					dst = append(dst, byte(value.Null))
					continue
				}
				dst = append(dst, byte(value.String))
				dst = binary.AppendUvarint(dst, uint64(len(s)))
				dst = append(dst, s...)
			}
		default: // kindless: every row is null
			for i := 0; i < c.n; i++ {
				dst = append(dst, byte(value.Null))
			}
		}
	}
	return dst
}

// Hash64Column hashes column col of every physical row into dst
// (resized to FullLen), consistent with value.Hash64 on the boxed
// equivalents. Null rows get value.HashNull; callers that must skip
// nulls consult IsNull, exactly like the boxed path checks IsNull
// before hashing.
func (c *Columns) Hash64Column(col int, dst []uint64) []uint64 {
	v := &c.vecs[col]
	if cap(dst) < c.n {
		dst = make([]uint64, c.n)
	}
	dst = dst[:c.n]
	if v.boxed != nil {
		for i := range dst {
			dst[i] = v.boxed[i].Hash64()
		}
		return dst
	}
	switch {
	case value.IntClass(v.kind):
		for i, x := range v.ints {
			dst[i] = value.HashInt64(v.kind, x)
		}
	case v.kind == value.Float:
		for i, f := range v.floats {
			dst[i] = value.HashFloat64(f)
		}
	case v.kind == value.String:
		for i, s := range v.strs {
			dst[i] = value.HashString(s)
		}
	default: // all-null (kindless) column
		for i := range dst {
			dst[i] = value.HashNull
		}
		return dst
	}
	if v.valid != nil {
		for i := range dst {
			if !v.IsValid(i) {
				dst[i] = value.HashNull
			}
		}
	}
	return dst
}

// MemBytesRow estimates physical row i's boxed in-memory footprint,
// matching Tuple.MemBytes on the materialized row so budget accounting
// agrees across the columnar and row paths.
func (c *Columns) MemBytesRow(i int) int {
	n := 24 + 40*len(c.vecs)
	for ci := range c.vecs {
		v := &c.vecs[ci]
		switch {
		case v.boxed != nil:
			if v.boxed[i].K == value.String {
				n += len(v.boxed[i].S)
			}
		case v.kind == value.String && v.IsValid(i):
			n += len(v.strs[i])
		}
	}
	return n
}
